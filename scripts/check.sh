#!/usr/bin/env bash
# CI-style gate: tier-1 verify (configure + build + full ctest), then a
# ThreadSanitizer pass over the deterministic-parallelism surface (the
# thread pool and the threaded engine tests).
#
# Usage: scripts/check.sh [--unit-only|--tier1-only|--tsan-only|--vm|--faults|--transport|--jobs|--spmd|--kernels]
#   --vm           build + the VirtualMachine runtime surface only (the
#                  distributed time-step tests and the VM golden matrix)
#   --spmd         build + the full SPMD execution surface: every test
#                  that runs worker-owned physics over a byte wire (VM
#                  conformance, fault matrix, crash/SIGKILL recovery,
#                  corrupted-frame rollback, wire codec, cross-backend
#                  golden matrix) plus the vm_step benchmark, which
#                  writes BENCH_vm_step.json
#   --faults       build + the fault-tolerance surface (reliable transport,
#                  fault-matrix bitwise recovery, crash rollback, the
#                  corrupted-checkpoint torture tests, checkpoint/resume)
#   --transport    build + the wire-format and byte-transport surface (the
#                  codec property/adversarial tests, the frame fuzzer, the
#                  per-backend smoke tests, shm-fork/SIGKILL recovery, and
#                  the slow cross-backend golden conformance matrix)
#   --kernels      build + the SoA/SIMD kernel surface: the batched-vs-
#                  scalar bitwise property tests, the pair-list reuse
#                  suite, and the bench_kernels smoke run (which itself
#                  asserts bitwise identity and writes BENCH_kernels.json)
#   --jobs         build + the multi-tenant job runtime surface (scheduler
#                  units, TaskGroup sharing, tenant-isolation/recovery
#                  integration tests, and the jobs/hour + fairness bench,
#                  which writes BENCH_jobs.json)
#   JOBS=N         parallelism for build/test (default: nproc)
#   TSAN_FILTER=…  override the gtest filter for the TSan pass
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

# Fast gate: build + the `unit`-labelled tests only (no engine
# construction, no golden matrix). Run this on every edit; run tier1
# before pushing.
unit() {
  echo "== unit gate: configure + build + ctest -L unit =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  (cd build && ctest -L unit --output-on-failure -j"$JOBS")
}

tier1() {
  echo "== tier-1: configure + build + ctest =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  (cd build && ctest --output-on-failure -j"$JOBS")
}

# VM-focused gate: the message-passing runtime's own tests plus the
# engine-vs-VM golden matrix. Run after touching src/parallel/.
vm() {
  echo "== VM gate: build + VirtualMachine + VM golden matrix =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  (cd build && ctest -R 'VirtualMachine|VmGoldenTrajectory' \
    --output-on-failure -j"$JOBS")
}

# Fault-tolerance gate: the reliable-delivery transport, the seeded
# fault matrix (every fault kind recovered bitwise), coordinated crash
# rollback, and the corrupted-checkpoint torture suite. Run after
# touching src/parallel/fault.*, the VM recovery path or io::Checkpoint.
faults() {
  echo "== faults gate: build + fault-tolerance + checkpoint torture =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  (cd build && ctest -R 'FaultTransport|FaultToleranceVm|CheckpointTorture|Checkpoint\.|Simulation\.Resume' \
    --output-on-failure -j"$JOBS")
}

# Transport gate: everything that proves the serialized wire. The codec
# suite and fuzzer are seconds; the cross-backend golden matrix forks
# real workers and is the slow tail. Run after touching src/parallel/
# wire.*, transport.* or the frame path in fault.* / virtual_machine.*.
transport() {
  echo "== transport gate: wire codec + fuzzer + backend conformance =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  (cd build && ctest -R 'WireFormat|WireFuzz|AllTransportBackends|OverShmFork|KillsRealWorker|ExternalSigkill|VmTransportGoldenTrajectory' \
    --output-on-failure -j"$JOBS")
}

# Job-runtime gate: the fair scheduler, the budgeted TaskGroups the
# tenants share one pool through, the JobManager integration surface
# (bitwise tenant isolation, kill/recovery stitching, ensembles), and
# the jobs/hour benchmark with its fairness-skew assertion. Run after
# touching src/jobs/, util/thread_pool.* or core/simulation.*.
jobs_gate() {
  echo "== jobs gate: scheduler + TaskGroup + JobManager + bench =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  (cd build && ctest -R 'JobsScheduler|JobsRuntime|ThreadPoolGroup|Simulation\.' \
    --output-on-failure -j"$JOBS")
  ./build/bench/bench_jobs BENCH_jobs.json
}

# Kernel gate: the SoA batched datapaths against their scalar references.
# The ctest filter covers the bitwise property tests (pair block, batched
# tables, mesh kernels, pair-list reuse) plus the golden matrix that
# gates the batched stepping path end to end; the bench then re-proves
# scalar-vs-batched identity on a bigger system and records the measured
# speedups in BENCH_kernels.json. Run after touching src/tables/,
# src/htis/, src/pairlist/ or the node-program/engine pair loops.
kernels() {
  echo "== kernels gate: SoA batched datapaths vs scalar, bitwise =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  (cd build && ctest -R 'KernelsSimd|TieredTable|ErfcTableSpline|VerletList|CellGrid|GoldenTrajectory\.' \
    --output-on-failure -j"$JOBS")
  ./build/bench/bench_kernels BENCH_kernels.json
}

# SPMD gate: everything that proves the workers own the physics and the
# coordinator only orchestrates -- the VM conformance + golden surface,
# the fault/rollback matrix over real forked workers, and the wire codec
# it all rides on. Finishes with the per-backend vm_step benchmark so the
# measured cost of SPMD execution is recorded in BENCH_vm_step.json.
spmd() {
  echo "== SPMD gate: worker-owned physics over every byte wire =="
  cmake -B build -S .
  cmake --build build -j"$JOBS"
  (cd build && ctest -R 'VirtualMachine|VmGoldenTrajectory|VmTransportGoldenTrajectory|FaultTransport|FaultToleranceVm|WireFormat|WireFuzz' \
    --output-on-failure -j"$JOBS")
  ./build/bench/bench_vm_step BENCH_vm_step.json
}

tsan() {
  echo "== TSan: engine + thread pool under -fsanitize=thread =="
  cmake -B build-tsan -S . -DANTON_SANITIZE=thread
  cmake --build build-tsan -j"$JOBS" --target anton_tests
  # The threaded surface: the pool itself, the thread-invariance and
  # decomposition-invariance engine tests, the threaded workload counters,
  # and the checkpoint-restart-with-different-thread-count driver test.
  local filter="${TSAN_FILTER:-ThreadPool.*:ThreadPoolGroup.*:ThreadCounts/*:AntonEngine.*:ParallelInvariance*:Decompositions/*:Workload.CountersAggregatedFromThreadShardsMatchSingleThread:Simulation.ResumeContinuesBitwise:VirtualMachine.RunCyclesMatchesEngineEveryCycle:JobsRuntime.SixteenConcurrentJobsMatchSoloRunsBitwise:JobsRuntime.KilledJobResumesBitwiseAndStitchesFrames:JobsRuntime.PauseHoldsAndUnpauseCompletes}"
  TSAN_OPTIONS="halt_on_error=1 history_size=7" \
    ./build-tsan/tests/anton_tests --gtest_filter="$filter"
}

case "$MODE" in
  --unit-only) unit ;;
  --tier1-only) tier1 ;;
  --tsan-only) tsan ;;
  --vm) vm ;;
  --faults) faults ;;
  --transport) transport ;;
  --jobs) jobs_gate ;;
  --spmd) spmd ;;
  --kernels) kernels ;;
  all|"") tier1; tsan ;;
  *) echo "unknown mode: $MODE" >&2; exit 2 ;;
esac

echo "== all checks passed =="
