#!/usr/bin/env bash
# Regenerates the golden-trajectory fixtures in tests/golden/.
#
# Run this ONLY when a change intentionally alters the trajectory (new
# kernel tables, different quantization, reordered integration); commit
# the regenerated fixtures together with that change. Do not run it to
# silence an unexplained test_golden failure -- an unexplained bitwise
# divergence is exactly what the fixtures exist to catch.
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake --build "$build" --target anton_golden_gen -j "$(nproc)"
"$build/tests/anton_golden_gen" "$repo/tests/golden"

echo "Fixtures regenerated. Review the diff and commit them with the"
echo "change that made the trajectory move:"
git -C "$repo" --no-pager diff --stat -- tests/golden || true
