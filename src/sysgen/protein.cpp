#include "sysgen/protein.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ff/params.hpp"

namespace anton::sysgen {

namespace {

std::int32_t ensure_type(Topology& top, ff::AtomClass c,
                         std::vector<std::int32_t>& cache) {
  auto& idx = cache[static_cast<int>(c)];
  if (idx < 0) {
    idx = static_cast<std::int32_t>(top.lj_types.size());
    top.lj_types.push_back(ff::lj_for(c));
  }
  return idx;
}

/// Compact space-filling CA trace: a serpentine (boustrophedon) walk over
/// a cubic lattice with ~3.8 A spacing, jittered slightly. Consecutive
/// residues are exactly one lattice step apart (correct bond lengths) and
/// non-consecutive residues are at least one lattice spacing apart, so the
/// trace is collision-free BY CONSTRUCTION at any protein size -- a random
/// self-avoiding walk cannot pack thousands of residues into a globule
/// without getting stuck.
std::vector<Vec3d> build_ca_trace(int n, const Vec3d& center, double radius,
                                  Xoshiro256& rng) {
  const double spacing = 3.8;
  int side = 1;
  while (side * side * side < n) ++side;
  const double extent = spacing * (side - 1);
  (void)radius;  // the cube edge is set by the residue count

  std::vector<Vec3d> ca;
  ca.reserve(n);
  for (int r = 0; r < n; ++r) {
    const int iz = r / (side * side);
    const int rem = r % (side * side);
    int iy = rem / side;
    int ix = rem % side;
    if (iy % 2 == 1) ix = side - 1 - ix;   // serpentine within a layer
    if (iz % 2 == 1) iy = side - 1 - iy;   // serpentine across layers
    Vec3d p{center.x - 0.5 * extent + spacing * ix,
            center.y - 0.5 * extent + spacing * iy,
            center.z - 0.5 * extent + spacing * iz};
    p += Vec3d{rng.uniform(-0.25, 0.25), rng.uniform(-0.25, 0.25),
               rng.uniform(-0.25, 0.25)};
    ca.push_back(p);
  }
  return ca;
}

}  // namespace

void add_protein(System& sys, const ProteinSpec& spec, Xoshiro256& rng) {
  Topology& top = sys.top;
  std::vector<std::int32_t> cache(static_cast<int>(ff::AtomClass::kCount), -1);
  const std::int32_t tC = ensure_type(top, ff::AtomClass::kCarbon, cache);
  const std::int32_t tN = ensure_type(top, ff::AtomClass::kNitrogen, cache);
  const std::int32_t tO = ensure_type(top, ff::AtomClass::kOxygen, cache);
  const std::int32_t tH = ensure_type(top, ff::AtomClass::kPolarHydrogen, cache);
  const std::int32_t tS = ensure_type(top, ff::AtomClass::kSidechain, cache);

  const int mol = top.molecule.empty()
                      ? 0
                      : 1 + *std::max_element(top.molecule.begin(),
                                              top.molecule.end());

  // 6 atoms per residue (N, H, CA, CB, C, O); leftover atoms become extra
  // side-chain beads on the first residues.
  const int nres = std::max(1, spec.atom_count / 6);
  const int extra = spec.atom_count - nres * 6;

  const std::vector<Vec3d> ca =
      build_ca_trace(nres, spec.center, spec.radius, rng);

  const ff::BondParam bb = ff::backbone_bond();
  const ff::BondParam sb = ff::sidechain_bond();
  const ff::BondParam nh = ff::nh_bond();
  const ff::AngleParam ang = ff::backbone_angle();
  const ff::DihedralParam dih = ff::backbone_dihedral();

  auto push_atom = [&](const Vec3d& r, ff::AtomClass cls, double q,
                       std::int32_t type) {
    sys.positions.push_back(sys.box.wrap(r));
    top.mass.push_back(ff::mass_for(cls));
    top.charge.push_back(q);
    top.type.push_back(type);
    top.molecule.push_back(mol);
    return top.natoms++;
  };

  std::vector<std::int32_t> idx_n(nres), idx_ca(nres), idx_c(nres);
  int extra_left = extra;
  // Parallel-transported frame: u follows the chain smoothly, so adjacent
  // residues' substituents point in similar directions and do not collide.
  Vec3d u_prev{0, 0, 1};
  for (int r = 0; r < nres; ++r) {
    Vec3d t = (r + 1 < nres)
                  ? (ca[r + 1] - ca[r]) / (ca[r + 1] - ca[r]).norm()
                  : Vec3d{1, 0, 0};
    Vec3d u = u_prev - t * u_prev.dot(t);
    if (u.norm() < 0.1) {
      u = t.cross(Vec3d{0, 0, 1});
      if (u.norm() < 0.1) u = t.cross(Vec3d{0, 1, 0});
    }
    u = u / u.norm();
    u_prev = u;
    const Vec3d w = t.cross(u);

    // Geometry: N behind CA, C ahead, O off C, H off N, CB sideways.
    const Vec3d pN = ca[r] - t * 1.46 + u * 0.3;
    const Vec3d pH = pN + (u * 0.8 - t * 0.6) * (1.01 / 1.0);
    const Vec3d pCB = ca[r] + w * 1.53;
    const Vec3d pC = ca[r] + t * 1.52 - u * 0.3;
    const Vec3d pO = pC + (u * -0.9 + w * 0.7) * (1.23 / std::sqrt(0.81 + 0.49));

    // Partial charges per residue sum to zero.
    idx_n[r] = push_atom(pN, ff::AtomClass::kNitrogen, -0.40, tN);
    const auto iH = push_atom(pH, ff::AtomClass::kPolarHydrogen, 0.25, tH);
    idx_ca[r] = push_atom(ca[r], ff::AtomClass::kCarbon, 0.05, tC);
    const auto iCB = push_atom(pCB, ff::AtomClass::kSidechain, 0.10, tS);
    idx_c[r] = push_atom(pC, ff::AtomClass::kCarbon, 0.50, tC);
    const auto iO = push_atom(pO, ff::AtomClass::kOxygen, -0.50, tO);

    // Bonds (N-H is constrained rather than bonded: bond-to-hydrogen).
    top.bonds.push_back({idx_n[r], idx_ca[r], bb.k, 1.46});
    top.bonds.push_back({idx_ca[r], iCB, sb.k, sb.r0});
    top.bonds.push_back({idx_ca[r], idx_c[r], bb.k, bb.r0});
    top.bonds.push_back({idx_c[r], iO, 570.0, 1.23});
    top.constraints.push_back({idx_n[r], iH, nh.r0});

    // Extra side beads soak up the atom-count remainder.
    if (extra_left > 0) {
      const Vec3d pX = pCB + w * 1.53;
      const auto iX = push_atom(pX, ff::AtomClass::kSidechain, 0.0, tS);
      top.bonds.push_back({iCB, iX, sb.k, sb.r0});
      --extra_left;
    }

    // Angles within the residue.
    top.angles.push_back({idx_n[r], idx_ca[r], idx_c[r], ang.kf, ang.theta0});
    top.angles.push_back({idx_n[r], idx_ca[r], iCB, ang.kf, ang.theta0});
    top.angles.push_back({iCB, idx_ca[r], idx_c[r], ang.kf, ang.theta0});
    top.angles.push_back({idx_ca[r], idx_c[r], iO, 80.0, 2.10});

    if (r > 0) {
      // Peptide bond and inter-residue angles/dihedrals.
      top.bonds.push_back({idx_c[r - 1], idx_n[r], 490.0, 1.335});
      top.angles.push_back(
          {idx_ca[r - 1], idx_c[r - 1], idx_n[r], ang.kf, ang.theta0});
      top.angles.push_back(
          {idx_c[r - 1], idx_n[r], idx_ca[r], ang.kf, ang.theta0});
      top.dihedrals.push_back({idx_c[r - 1], idx_n[r], idx_ca[r], idx_c[r],
                               dih.kf, dih.n, dih.phase});  // phi-like
      top.dihedrals.push_back({idx_n[r - 1], idx_ca[r - 1], idx_c[r - 1],
                               idx_n[r], dih.kf, dih.n, dih.phase});  // psi
      top.dihedrals.push_back({idx_ca[r - 1], idx_c[r - 1], idx_n[r],
                               idx_ca[r], 2.5, 2, M_PI});  // omega-like
    }
  }
  top.protein_atoms += spec.atom_count;
}

void add_ion(System& sys, const Vec3d& r, double charge) {
  Topology& top = sys.top;
  // Reuse or create the chloride-like LJ type for both ion signs (a
  // monovalent-ion stand-in; sign only affects the charge).
  std::int32_t t = -1;
  const LJType want = ff::lj_for(ff::AtomClass::kChloride);
  for (std::size_t i = 0; i < top.lj_types.size(); ++i) {
    if (top.lj_types[i].sigma == want.sigma &&
        top.lj_types[i].epsilon == want.epsilon) {
      t = static_cast<std::int32_t>(i);
      break;
    }
  }
  if (t < 0) {
    t = static_cast<std::int32_t>(top.lj_types.size());
    top.lj_types.push_back(want);
  }
  const int mol = top.molecule.empty()
                      ? 0
                      : 1 + *std::max_element(top.molecule.begin(),
                                              top.molecule.end());
  sys.positions.push_back(sys.box.wrap(r));
  top.mass.push_back(ff::mass_for(ff::AtomClass::kChloride));
  top.charge.push_back(charge);
  top.type.push_back(t);
  top.molecule.push_back(mol);
  ++top.natoms;
}

}  // namespace anton::sysgen
