#include "sysgen/systems.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "ff/params.hpp"
#include "pairlist/cell_grid.hpp"
#include "bonded/bonded.hpp"
#include "constraints/shake.hpp"
#include "pairlist/exclusion_table.hpp"
#include "sysgen/protein.hpp"
#include "util/units.hpp"

namespace anton::sysgen {

std::vector<PaperSystemSpec> paper_systems() {
  // Table 4 of the paper, plus the BPTI system of Section 5.3.
  return {
      {"gpW", "1HYW", 9865, 46.8, 10.5, 32, 18.7, WaterModel::k3Site, 0},
      {"DHFR", "5DFR", 23558, 62.2, 13.0, 32, 16.4, WaterModel::k3Site, 0},
      {"aSFP", "1SFP", 48423, 78.8, 15.5, 32, 11.2, WaterModel::k3Site, 0},
      {"NADHOx", "1NOX", 78017, 92.6, 10.5, 64, 6.4, WaterModel::k3Site, 0},
      {"FtsZ", "1FSZ", 98236, 99.8, 11.0, 64, 5.8, WaterModel::k3Site, 0},
      {"T7Lig", "1A0I", 116650, 105.6, 11.0, 64, 5.5, WaterModel::k3Site, 0},
      // BPTI: 892 protein atoms + 6 ions + 4215 four-site waters = 17758
      // particles in a 51.3 A box (Section 5.3). The paper used 6 Cl- to
      // neutralize BPTI's +6; our synthetic protein is neutral, so we use
      // 3 anion/cation pairs to keep the same particle count.
      {"BPTI", "(1BPI)", 17758, 51.3, 10.4, 32, 9.8, WaterModel::k4Site, 892},
  };
}

PaperSystemSpec spec_by_name(const std::string& name) {
  for (const PaperSystemSpec& s : paper_systems())
    if (s.name == name) return s;
  throw std::invalid_argument("spec_by_name: unknown system " + name);
}

core::SimParams params_for(const PaperSystemSpec& spec) {
  core::SimParams p;
  p.cutoff = spec.cutoff;
  p.mesh = spec.mesh;
  p.dt = 2.5;
  p.long_range_every = 2;
  return p;
}

void init_velocities(System& sys, double temperature, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x76656c6f63ULL);
  sys.velocities.resize(sys.top.natoms);
  for (std::int32_t i = 0; i < sys.top.natoms; ++i) {
    if (sys.top.mass[i] == 0.0) {  // massless virtual site
      sys.velocities[i] = {0, 0, 0};
      // Burn the generator draws so vsites do not shift the stream.
      rng.normal();
      rng.normal();
      rng.normal();
      continue;
    }
    const double sigma = std::sqrt(units::kB * temperature *
                                   units::kForceToAccel / sys.top.mass[i]);
    sys.velocities[i] = {sigma * rng.normal(), sigma * rng.normal(),
                         sigma * rng.normal()};
  }
  // Remove center-of-mass drift.
  Vec3d p{0, 0, 0};
  double m = 0;
  for (std::int32_t i = 0; i < sys.top.natoms; ++i) {
    p += sys.velocities[i] * sys.top.mass[i];
    m += sys.top.mass[i];
  }
  const Vec3d v_com = p / m;
  for (auto& v : sys.velocities) v -= v_com;
}

void relax_overlaps(System& sys, double min_dist, int iters) {
  const Topology& top = sys.top;
  if (top.natoms == 0) return;
  pairlist::ExclusionTable excl(top);
  const bool have_mol = !top.molecule.empty();
  const int nmol = have_mol ? 1 + *std::max_element(top.molecule.begin(),
                                                    top.molecule.end())
                            : top.natoms;
  // Per-pair target separation: sub-sigma contacts are what explode a
  // simulation, so relax toward ~0.9 sigma_ij for LJ-active pairs and a
  // small fixed floor otherwise (e.g. water hydrogens, which carry no LJ).
  auto pair_target = [&](std::int32_t i, std::int32_t j, double cap) {
    const LJType& a = top.lj_types[top.type[i]];
    const LJType& b = top.lj_types[top.type[j]];
    if (a.epsilon > 0.0 && b.epsilon > 0.0)
      return std::min(cap, 0.9 * 0.5 * (a.sigma + b.sigma));
    return 1.2;
  };
  // Atoms that belong to rigid constraint groups must move as a body;
  // free (unconstrained) atoms may be nudged individually, which is what
  // untangles intra-protein contacts.
  std::vector<char> in_group(top.natoms, 0);
  for (const auto& g : top.constraint_groups)
    for (std::int32_t a : g) in_group[a] = 1;

  for (int it = 0; it < iters; ++it) {
    pairlist::CellGrid grid(sys.box, std::max(min_dist, 3.5));
    grid.bin(sys.positions);
    std::vector<Vec3d> mol_push(nmol, {0, 0, 0});
    std::vector<int> mol_touched(nmol, 0);
    std::vector<Vec3d> atom_push(top.natoms, {0, 0, 0});
    bool any = false;
    grid.for_each_pair(
        sys.positions, min_dist,
        [&](std::int32_t i, std::int32_t j, const Vec3d& dr, double r2) {
          const int mi = have_mol ? top.molecule[i] : i;
          const int mj = have_mol ? top.molecule[j] : j;
          // Skip fully excluded pairs (1-2/1-3 and rigid-water internals);
          // scaled 1-4 pairs relax toward a shorter target distance.
          double target = pair_target(i, j, min_dist);
          if (const auto scale = excl.find(i, j)) {
            if (scale->lj == 0.0 && scale->coul == 0.0) return;
            target *= 0.85;
          }
          const double r = std::sqrt(std::max(r2, 1e-8));
          if (r >= target) return;
          const double overlap = target - r;
          const Vec3d dir = dr / r;
          any = true;
          if (mi != mj) {
            mol_push[mi] += dir * (0.6 * overlap);
            mol_push[mj] -= dir * (0.6 * overlap);
            ++mol_touched[mi];
            ++mol_touched[mj];
          } else {
            // Intra-molecular: nudge the atoms themselves (rigid-group
            // members drag their whole group below).
            atom_push[i] += dir * (0.5 * overlap);
            atom_push[j] -= dir * (0.5 * overlap);
          }
        });
    if (!any) break;
    for (std::int32_t a = 0; a < top.natoms; ++a) {
      Vec3d move = atom_push[a];
      const int m = have_mol ? top.molecule[a] : a;
      if (mol_touched[m] > 0)
        move += mol_push[m] / static_cast<double>(mol_touched[m]);
      if (move.norm2() > 0.0)
        sys.positions[a] = sys.box.wrap(sys.positions[a] + move);
    }
    // Bonded-force descent: the pushes above stretch bonds/angles, so walk
    // a few capped steepest-descent steps downhill on the bonded terms.
    {
      std::vector<Vec3d> f(top.natoms, {0, 0, 0});
      for (int sweep = 0; sweep < 4; ++sweep) {
        for (auto& fi : f) fi = {0, 0, 0};
        bonded::eval_all_bonded(top, sys.positions, sys.box, f);
        for (std::int32_t a = 0; a < top.natoms; ++a) {
          Vec3d step = f[a] * 5e-4;
          const double n = step.norm();
          if (n > 0.15) step = step * (0.15 / n);
          sys.positions[a] = sys.box.wrap(sys.positions[a] + step);
        }
      }
    }
    // Re-rigidify constraint groups disturbed by atom-level pushes.
    if (!top.constraints.empty()) {
      std::vector<Vec3d> ref = sys.positions;
      constraints::shake(top.constraints, top.mass, ref, sys.positions,
                         sys.box, {128, 1e-8});
    }
  }
}

namespace {

void add_ions_randomly(System& sys, int n_pairs, int n_extra_anions,
                       Xoshiro256& rng) {
  const Vec3d L = sys.box.side();
  auto random_site = [&]() {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      Vec3d r{rng.uniform(-L.x / 2, L.x / 2), rng.uniform(-L.y / 2, L.y / 2),
              rng.uniform(-L.z / 2, L.z / 2)};
      bool ok = true;
      for (const Vec3d& e : sys.positions) {
        if (sys.box.min_image(r, e).norm2() < 12.25) {  // 3.5 A clearance
          ok = false;
          break;
        }
      }
      if (ok) return r;
    }
    throw std::runtime_error("add_ions_randomly: no free site found");
  };
  for (int i = 0; i < n_pairs; ++i) {
    add_ion(sys, random_site(), +1.0);
    add_ion(sys, random_site(), -1.0);
  }
  for (int i = 0; i < n_extra_anions; ++i) {
    // Extra ions are added as +/- alternating to preserve neutrality in
    // pairs; callers only request even extras.
    add_ion(sys, random_site(), (i % 2 == 0) ? +1.0 : -1.0);
  }
}

void finalize(System& sys, std::uint64_t seed) {
  sys.top.build_exclusions(ff::kLJ14Scale, ff::kCoul14Scale);
  sys.top.build_constraint_groups();
  sys.top.validate();
  relax_overlaps(sys);
  init_velocities(sys, 300.0, seed);
}

}  // namespace

System build_paper_system(const PaperSystemSpec& spec, std::uint64_t seed) {
  System sys;
  sys.name_ = spec.name;
  sys.box = PeriodicBox(spec.side);
  Xoshiro256 rng(seed);

  const int sites = water_sites(spec.water);
  int protein_atoms = spec.protein_atoms > 0
                          ? spec.protein_atoms
                          : static_cast<int>(0.10 * spec.atoms);
  int n_ions = spec.water == WaterModel::k4Site ? 6 : 12;
  // Absorb the divisibility remainder into the protein so the total
  // particle count matches the paper exactly.
  int remainder = (spec.atoms - protein_atoms - n_ions) % sites;
  protein_atoms += remainder;
  const int n_waters = (spec.atoms - protein_atoms - n_ions) / sites;

  ProteinSpec ps;
  ps.atom_count = protein_atoms;
  // Confinement radius sized for ~60 A^3 per residue (realistic protein
  // packing) with 15% slack so the self-avoiding walk can actually fit;
  // never larger than 40% of the half-box.
  ps.radius = std::min(1.15 * std::cbrt(2.39 * protein_atoms),
                       0.40 * spec.side);
  add_protein(sys, ps, rng);
  add_ions_randomly(sys, n_ions / 2, 0, rng);
  const int placed = add_waters(sys, n_waters, spec.water, 2.3, rng);
  if (placed != n_waters)
    throw std::runtime_error("build_paper_system: water placement shortfall");
  if (sys.top.natoms != spec.atoms)
    throw std::runtime_error("build_paper_system: atom count mismatch");
  finalize(sys, seed);
  return sys;
}

System build_water_system(int atoms, double side, WaterModel model,
                          std::uint64_t seed) {
  System sys;
  sys.name_ = "water";
  sys.box = PeriodicBox(side);
  Xoshiro256 rng(seed);
  const int sites = water_sites(model);
  int n_ions = atoms % sites;
  if (n_ions % 2 != 0) {
    if (sites % 2 == 0)
      throw std::invalid_argument(
          "build_water_system: atom count incompatible with neutral 4-site "
          "water (needs atoms % 4 even)");
    n_ions += sites;  // keep ion count even (neutral)
  }
  const int n_waters = (atoms - n_ions) / sites;
  if (n_ions > 0) add_ions_randomly(sys, n_ions / 2, 0, rng);
  const int placed = add_waters(sys, n_waters, model, 2.3, rng);
  if (placed != n_waters)
    throw std::runtime_error("build_water_system: water placement shortfall");
  if (sys.top.natoms != atoms)
    throw std::runtime_error("build_water_system: atom count mismatch");
  finalize(sys, seed);
  return sys;
}

System build_test_system(int n_waters, double side, std::uint64_t seed,
                         bool constrained, int protein_atoms) {
  System sys;
  sys.name_ = "test";
  sys.box = PeriodicBox(side);
  Xoshiro256 rng(seed);
  if (protein_atoms > 0) {
    ProteinSpec ps;
    ps.atom_count = protein_atoms;
    ps.radius = 0.25 * side;
    add_protein(sys, ps, rng);
    if (!constrained) {
      // Convert the N-H constraints to stiff bonds.
      for (const ConstraintBond& c : sys.top.constraints)
        sys.top.bonds.push_back({c.i, c.j, 434.0, c.length});
      sys.top.constraints.clear();
    }
  }
  add_waters(sys, n_waters, WaterModel::k3Site, 2.3, rng, constrained);
  finalize(sys, seed);
  return sys;
}

}  // namespace anton::sysgen
