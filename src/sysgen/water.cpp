#include "sysgen/water.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace anton::sysgen {

namespace {

/// Ensures an LJ type for a class exists in the topology; returns its index.
std::int32_t type_for(Topology& top, ff::AtomClass c,
                      std::vector<std::int32_t>& cache) {
  auto& idx = cache[static_cast<int>(c)];
  if (idx < 0) {
    idx = static_cast<std::int32_t>(top.lj_types.size());
    top.lj_types.push_back(ff::lj_for(c));
  }
  return idx;
}

/// Random rotation matrix columns (uniform via random axis + angle is
/// biased, but orientation uniformity is irrelevant here; we only need
/// decorrelated orientations).
void random_frame(Xoshiro256& rng, Vec3d& ex, Vec3d& ey) {
  // Random unit vector.
  double z = rng.uniform(-1.0, 1.0);
  double phi = rng.uniform(0.0, 2.0 * M_PI);
  double s = std::sqrt(std::max(0.0, 1.0 - z * z));
  ex = {s * std::cos(phi), s * std::sin(phi), z};
  // A second vector orthogonal to ex.
  Vec3d t = std::fabs(ex.x) < 0.9 ? Vec3d{1, 0, 0} : Vec3d{0, 1, 0};
  ey = ex.cross(t);
  ey = ey / ey.norm();
}

}  // namespace

int add_waters(System& sys, int count, WaterModel model, double clearance,
               Xoshiro256& rng, bool rigid) {
  Topology& top = sys.top;
  std::vector<std::int32_t> type_cache(static_cast<int>(ff::AtomClass::kCount),
                                       -1);
  const std::int32_t t_o = type_for(top, ff::AtomClass::kWaterOxygen, type_cache);
  const std::int32_t t_h =
      type_for(top, ff::AtomClass::kWaterHydrogen, type_cache);
  const std::int32_t t_m =
      model == WaterModel::k4Site
          ? type_for(top, ff::AtomClass::kWaterMSite, type_cache)
          : -1;

  const ff::Water3Site w3 = ff::water3();
  const ff::Water4Site w4 = ff::water4();
  const double r_oh = model == WaterModel::k3Site ? w3.r_oh : w4.r_oh;
  const double theta = model == WaterModel::k3Site ? w3.theta_hoh : w4.theta_hoh;
  const double r_hh = 2.0 * r_oh * std::sin(0.5 * theta);

  // Lattice of candidate oxygen sites sized for the requested count.
  const Vec3d L = sys.box.side();
  int n_side = 1;
  while (n_side * n_side * n_side < count * 5 / 4 + 1) ++n_side;
  const Vec3d spacing{L.x / n_side, L.y / n_side, L.z / n_side};

  // Hash-grid over existing (solute) atoms for O(1) clash rejection.
  const std::vector<Vec3d> existing = sys.positions;  // snapshot of solute
  const double cell = std::max(clearance, 1.0);
  const int gx = std::max(1, static_cast<int>(L.x / cell));
  const int gy = std::max(1, static_cast<int>(L.y / cell));
  const int gz = std::max(1, static_cast<int>(L.z / cell));
  auto cell_key = [&](const Vec3d& r) {
    int cx = static_cast<int>((r.x / L.x + 0.5) * gx);
    int cy = static_cast<int>((r.y / L.y + 0.5) * gy);
    int cz = static_cast<int>((r.z / L.z + 0.5) * gz);
    cx = std::clamp(cx, 0, gx - 1);
    cy = std::clamp(cy, 0, gy - 1);
    cz = std::clamp(cz, 0, gz - 1);
    return (static_cast<std::int64_t>(cz) * gy + cy) * gx + cx;
  };
  std::unordered_map<std::int64_t, std::vector<std::int32_t>> solute_grid;
  for (std::size_t i = 0; i < existing.size(); ++i)
    solute_grid[cell_key(existing[i])].push_back(static_cast<std::int32_t>(i));
  auto clashes = [&](const Vec3d& r) {
    if (existing.empty()) return false;
    const double c2 = clearance * clearance;
    int cx = static_cast<int>((r.x / L.x + 0.5) * gx);
    int cy = static_cast<int>((r.y / L.y + 0.5) * gy);
    int cz = static_cast<int>((r.z / L.z + 0.5) * gz);
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = ((cx + dx) % gx + gx) % gx;
          const int ny = ((cy + dy) % gy + gy) % gy;
          const int nz = ((cz + dz) % gz + gz) % gz;
          const std::int64_t key =
              (static_cast<std::int64_t>(nz) * gy + ny) * gx + nx;
          auto it = solute_grid.find(key);
          if (it == solute_grid.end()) continue;
          for (std::int32_t i : it->second) {
            if (sys.box.min_image(r, existing[i]).norm2() < c2) return true;
          }
        }
      }
    }
    return false;
  };

  int placed = 0;
  const int mol0 = top.natoms == 0
                       ? 0
                       : (top.molecule.empty()
                              ? 1
                              : 1 + *std::max_element(top.molecule.begin(),
                                                      top.molecule.end()));
  int mol = mol0;
  for (int iz = 0; iz < n_side && placed < count; ++iz) {
    for (int iy = 0; iy < n_side && placed < count; ++iy) {
      for (int ix = 0; ix < n_side && placed < count; ++ix) {
        Vec3d o{-0.5 * L.x + (ix + 0.5) * spacing.x,
                -0.5 * L.y + (iy + 0.5) * spacing.y,
                -0.5 * L.z + (iz + 0.5) * spacing.z};
        // Small jitter decorrelates the lattice.
        o += Vec3d{rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1),
                   rng.uniform(-0.1, 0.1)};
        if (clashes(o)) continue;

        Vec3d ex, ey;
        random_frame(rng, ex, ey);
        const double half = 0.5 * theta;
        const Vec3d h1 = o + (ex * std::cos(half) + ey * std::sin(half)) * r_oh;
        const Vec3d h2 = o + (ex * std::cos(half) - ey * std::sin(half)) * r_oh;

        const std::int32_t base = top.natoms;
        auto push_atom = [&](const Vec3d& r, double mass, double q,
                             std::int32_t type) {
          sys.positions.push_back(sys.box.wrap(r));
          top.mass.push_back(mass);
          top.charge.push_back(q);
          top.type.push_back(type);
          top.molecule.push_back(mol);
          ++top.natoms;
        };

        if (model == WaterModel::k3Site) {
          push_atom(o, ff::mass_for(ff::AtomClass::kWaterOxygen), w3.q_o, t_o);
          push_atom(h1, ff::mass_for(ff::AtomClass::kWaterHydrogen), w3.q_h,
                    t_h);
          push_atom(h2, ff::mass_for(ff::AtomClass::kWaterHydrogen), w3.q_h,
                    t_h);
          if (rigid) {
            top.constraints.push_back({base, base + 1, r_oh});
            top.constraints.push_back({base, base + 2, r_oh});
            top.constraints.push_back({base + 1, base + 2, r_hh});
          } else {
            top.bonds.push_back({base, base + 1, 450.0, r_oh});
            top.bonds.push_back({base, base + 2, 450.0, r_oh});
            top.angles.push_back({base + 1, base, base + 2, 55.0, theta});
          }
        } else {
          // 4-site: rigid O-H-H triangle plus a massless M charge site on
          // the HOH bisector, built as the linear virtual site
          // r_M = r_O + a (r_H1 + r_H2 - 2 r_O) with a = r_om / (2 d_bis).
          // The paper treats all four particles "computationally as an
          // atom"; the massless-site construction is the standard TIP4P
          // treatment and is what we substitute (DESIGN.md).
          const Vec3d m = o + ex * w4.r_om;
          push_atom(o, ff::mass_for(ff::AtomClass::kWaterOxygen), 0.0, t_o);
          push_atom(h1, ff::mass_for(ff::AtomClass::kWaterHydrogen), w4.q_h,
                    t_h);
          push_atom(h2, ff::mass_for(ff::AtomClass::kWaterHydrogen), w4.q_h,
                    t_h);
          push_atom(m, 0.0, w4.q_m, t_m);
          const double d_bis = r_oh * std::cos(half);
          top.constraints.push_back({base, base + 1, r_oh});
          top.constraints.push_back({base, base + 2, r_oh});
          top.constraints.push_back({base + 1, base + 2, r_hh});
          top.virtual_sites.push_back(
              {base + 3, base, base + 1, base + 2, w4.r_om / (2.0 * d_bis)});
        }
        ++mol;
        ++placed;
      }
    }
  }
  return placed;
}

}  // namespace anton::sysgen
