// Water construction: rigid 3-site and 4-site models.
//
// Waters are placed on a simple-cubic lattice of molecules with uniformly
// random orientations (deterministic RNG), skipping lattice sites that
// would clash with already-present solute atoms. Internal geometry is held
// rigid by distance constraints, so water molecules contribute no bond
// terms -- which is why the paper's water-only systems run 3-24% faster
// than protein systems of the same size (Section 5.1).
#pragma once

#include <cstdint>

#include "ff/params.hpp"
#include "ff/topology.hpp"
#include "util/rng.hpp"

namespace anton::sysgen {

enum class WaterModel { k3Site, k4Site };

/// Appends `count` water molecules to the system, avoiding positions
/// within `clearance` of existing atoms. Returns the number actually
/// placed (== count unless the box is too crowded). With rigid == false,
/// 3-site waters get harmonic bonds and an angle instead of constraints
/// (used by the bitwise-reversibility tests, which must run
/// constraint-free as in the paper's Section 4 experiment).
int add_waters(System& sys, int count, WaterModel model, double clearance,
               Xoshiro256& rng, bool rigid = true);

/// Number of particles per molecule for a model.
inline int water_sites(WaterModel m) { return m == WaterModel::k3Site ? 3 : 4; }

}  // namespace anton::sysgen
