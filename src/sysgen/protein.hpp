// Synthetic pseudo-protein builder.
//
// Generates a protein-like polymer with the term densities of a real
// protein force field: a backbone of N-CA-C repeats with carbonyl oxygens,
// amide hydrogens (constrained, as the paper constrains bonds to
// hydrogen), and side-chain beads; harmonic bonds and angles, periodic
// dihedrals, 1-2/1-3 exclusions and scaled 1-4 pairs. Per-residue partial
// charges sum to zero so systems stay neutral. The backbone path is a
// compact self-avoiding random walk confined to a sphere, giving a
// globular solute like the paper's systems.
//
// This stands in for the PDB structures + AMBER99SB/OPLS-AA parameters we
// cannot redistribute; see DESIGN.md's substitution table.
#pragma once

#include "ff/topology.hpp"
#include "util/rng.hpp"

namespace anton::sysgen {

struct ProteinSpec {
  int atom_count = 600;    // exact atom count to produce
  Vec3d center{0, 0, 0};   // placement center
  double radius = 12.0;    // confinement sphere radius (A)
};

/// Appends a pseudo-protein to the system (topology + coordinates).
/// Bond/angle/dihedral terms, constraints (N-H), and molecule ids are
/// added; exclusions are NOT rebuilt here (call top.build_exclusions once
/// after all molecules are present).
void add_protein(System& sys, const ProteinSpec& spec, Xoshiro256& rng);

/// Appends a monatomic ion. charge should be +1 or -1.
void add_ion(System& sys, const Vec3d& r, double charge);

}  // namespace anton::sysgen
