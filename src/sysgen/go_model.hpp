// Coarse-grained Go-model mini-protein (Figure 7 substitution).
//
// The paper simulated the viral protein gpW for 236 us at its melting
// temperature and observed repeated folding/unfolding transitions. A
// structure-based (Go) model reproduces that two-state behaviour at
// laptop scale: beads on a native hairpin topology, native contacts
// rewarded with Lennard-Jones-like wells, non-native contacts purely
// repulsive, Langevin dynamics at a tunable temperature. Near the model's
// melting temperature the fraction of native contacts Q(t) hops between a
// folded (~1) and an unfolded (~0.2) basin, exactly the phenomenology of
// Figure 7 (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec3.hpp"
#include "util/rng.hpp"

namespace anton::sysgen {

struct GoModelParams {
  int residues = 32;
  double contact_eps = 1.1;   // native contact depth (kcal/mol)
  double temperature = 360;   // K
  double gamma = 0.02;        // Langevin friction (1/fs)
  double dt = 8.0;            // fs (coarse model; large steps are stable)
  double bead_mass = 110.0;   // amu (average residue)
  std::uint64_t seed = 1234;
};

class GoModel {
 public:
  explicit GoModel(const GoModelParams& p);

  void step(int n);

  int residues() const { return static_cast<int>(pos_.size()); }
  const std::vector<Vec3d>& positions() const { return pos_; }
  const std::vector<Vec3d>& native() const { return native_; }

  /// Fraction of native contacts currently formed (within 1.2 x native
  /// distance). ~1 folded, ~0.2 unfolded.
  double native_fraction() const;
  int native_contact_count() const {
    return static_cast<int>(contacts_.size());
  }

  double potential_energy() const { return last_potential_; }
  std::int64_t steps_done() const { return steps_; }

 private:
  void compute_forces();

  GoModelParams p_;
  Xoshiro256 rng_;
  std::vector<Vec3d> native_;
  std::vector<Vec3d> pos_, vel_, force_;
  struct Contact {
    std::int32_t i, j;
    double r0;
  };
  std::vector<Contact> contacts_;
  std::vector<double> bond_r0_;
  double last_potential_ = 0.0;
  std::int64_t steps_ = 0;
};

}  // namespace anton::sysgen
