#include "sysgen/go_model.hpp"

#include <cmath>

#include "util/units.hpp"

namespace anton::sysgen {

GoModel::GoModel(const GoModelParams& p) : p_(p), rng_(p.seed) {
  // Native structure: a beta-hairpin -- two antiparallel strands joined by
  // a tight turn. Strand spacing ~5 A gives cross-strand contacts.
  const int n = p.residues;
  native_.resize(n);
  const int half = n / 2;
  for (int i = 0; i < n; ++i) {
    if (i < half) {
      native_[i] = {0.0, i * 3.8, (i % 2) * 0.8};
    } else {
      const int k = i - half;
      native_[i] = {5.0, (half - 1 - k) * 3.8 + 1.9, (k % 2) * 0.8};
    }
  }

  // Native contact map: |i - j| >= 3 and native distance < 8 A.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 3; j < n; ++j) {
      const double d = (native_[i] - native_[j]).norm();
      if (d < 8.0) contacts_.push_back({i, j, d});
    }
  }
  bond_r0_.resize(n - 1);
  for (int i = 0; i + 1 < n; ++i)
    bond_r0_[i] = (native_[i + 1] - native_[i]).norm();

  pos_ = native_;
  vel_.assign(n, {0, 0, 0});
  force_.assign(n, {0, 0, 0});
  const double sigma_v = std::sqrt(units::kB * p.temperature *
                                   units::kForceToAccel / p.bead_mass);
  for (auto& v : vel_)
    v = {sigma_v * rng_.normal(), sigma_v * rng_.normal(),
         sigma_v * rng_.normal()};
  compute_forces();
}

void GoModel::compute_forces() {
  const int n = residues();
  for (auto& f : force_) f = {0, 0, 0};
  double e = 0.0;

  // Chain bonds (stiff harmonic).
  const double kb = 40.0;
  for (int i = 0; i + 1 < n; ++i) {
    const Vec3d dr = pos_[i] - pos_[i + 1];
    const double r = dr.norm();
    const double dev = r - bond_r0_[i];
    e += kb * dev * dev;
    const Vec3d f = dr * (-2.0 * kb * dev / r);
    force_[i] += f;
    force_[i + 1] -= f;
  }

  // Native contacts: eps [ (r0/r)^12 - 2 (r0/r)^6 ], minimum -eps at r0.
  for (const Contact& c : contacts_) {
    const Vec3d dr = pos_[c.i] - pos_[c.j];
    const double r2 = dr.norm2();
    const double s2 = c.r0 * c.r0 / r2;
    const double s6 = s2 * s2 * s2;
    e += p_.contact_eps * (s6 * s6 - 2.0 * s6);
    const double coef = p_.contact_eps * 12.0 * (s6 * s6 - s6) / r2;
    force_[c.i] += dr * coef;
    force_[c.j] -= dr * coef;
  }

  // Non-native repulsion: (sigma/r)^12, sigma = 4 A, for |i-j| >= 3 pairs
  // that are not native contacts.
  std::size_t ci = 0;
  const double sig2 = 16.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 3; j < n; ++j) {
      while (ci < contacts_.size() &&
             (contacts_[ci].i < i ||
              (contacts_[ci].i == i && contacts_[ci].j < j)))
        ++ci;
      if (ci < contacts_.size() && contacts_[ci].i == i &&
          contacts_[ci].j == j)
        continue;
      const Vec3d dr = pos_[i] - pos_[j];
      const double r2 = dr.norm2();
      if (r2 > 64.0) continue;  // negligible beyond 8 A
      const double s2 = sig2 / r2;
      const double s6 = s2 * s2 * s2;
      e += 0.5 * s6 * s6;
      const double coef = 0.5 * 12.0 * s6 * s6 / r2;
      force_[i] += dr * coef;
      force_[j] -= dr * coef;
    }
  }
  last_potential_ = e;
}

void GoModel::step(int nsteps) {
  // BAOAB-like Langevin integration (velocity half-kicks around an
  // Ornstein-Uhlenbeck velocity refresh).
  const double dt = p_.dt;
  const double c_kick = 0.5 * dt * units::kForceToAccel / p_.bead_mass;
  const double a = std::exp(-p_.gamma * dt);
  const double sigma_v = std::sqrt(units::kB * p_.temperature *
                                   units::kForceToAccel / p_.bead_mass *
                                   (1.0 - a * a));
  for (int s = 0; s < nsteps; ++s) {
    for (int i = 0; i < residues(); ++i) vel_[i] += force_[i] * c_kick;
    for (int i = 0; i < residues(); ++i) pos_[i] += vel_[i] * (0.5 * dt);
    for (int i = 0; i < residues(); ++i) {
      vel_[i] = vel_[i] * a +
                Vec3d{sigma_v * rng_.normal(), sigma_v * rng_.normal(),
                      sigma_v * rng_.normal()};
    }
    for (int i = 0; i < residues(); ++i) pos_[i] += vel_[i] * (0.5 * dt);
    compute_forces();
    for (int i = 0; i < residues(); ++i) vel_[i] += force_[i] * c_kick;
    ++steps_;
  }
}

double GoModel::native_fraction() const {
  if (contacts_.empty()) return 0.0;
  int formed = 0;
  for (const Contact& c : contacts_) {
    const double r = (pos_[c.i] - pos_[c.j]).norm();
    if (r < 1.2 * c.r0) ++formed;
  }
  return static_cast<double>(formed) / contacts_.size();
}

}  // namespace anton::sysgen
