// Named benchmark systems matching the paper's Table 4 / Section 5.3,
// plus generic builders used by tests and parameter sweeps.
//
// Each builder reproduces the published particle count, box side, cutoff
// and mesh size exactly; the coordinates and parameters are synthetic
// (DESIGN.md substitution table). Simulation parameters follow the paper:
// 2.5 fs steps, long-range every other step, bonds to hydrogen (and
// waters) constrained.
#pragma once

#include <string>
#include <vector>

#include "core/engine_types.hpp"
#include "ff/topology.hpp"
#include "sysgen/water.hpp"

namespace anton::sysgen {

struct PaperSystemSpec {
  std::string name;
  std::string pdb_id;   // the paper's crystal-structure reference
  int atoms = 0;        // total particles
  double side = 0.0;    // cubic box side (A)
  double cutoff = 0.0;  // range-limited cutoff (A)
  int mesh = 32;        // FFT mesh per axis
  double perf_us_day = 0.0;  // paper-reported 512-node rate (for reports)
  WaterModel water = WaterModel::k3Site;
  int protein_atoms = 0;  // 0 -> ~10% of total
};

/// The six protein-in-water systems of Table 4 (gpW, DHFR, aSFP, NADHOx,
/// FtsZ, T7Lig) and the BPTI system of Section 5.3.
std::vector<PaperSystemSpec> paper_systems();
PaperSystemSpec spec_by_name(const std::string& name);

/// Builds a solvated system for a spec (exact atom count). `seed` controls
/// every random choice.
System build_paper_system(const PaperSystemSpec& spec, std::uint64_t seed);

/// Water-only system of the same size/parameters (Figure 5's water series).
System build_water_system(int atoms, double side, WaterModel model,
                          std::uint64_t seed);

/// A small solvated-peptide test system (fast; used across the test
/// suite). If `constrained` is false, water is built with harmonic bonds
/// instead of rigid constraints -- required by the reversibility tests.
System build_test_system(int n_waters, double side, std::uint64_t seed,
                         bool constrained = true, int protein_atoms = 0);

/// SimParams matching a paper spec.
core::SimParams params_for(const PaperSystemSpec& spec);

/// Assigns Maxwell-Boltzmann velocities at T and removes center-of-mass
/// drift. Deterministic under the seed.
void init_velocities(System& sys, double temperature, std::uint64_t seed);

/// Pushes apart non-excluded pairs closer than min_dist (removes builder
/// overlaps that would destabilize the first steps).
void relax_overlaps(System& sys, double min_dist = 3.2, int iters = 90);

}  // namespace anton::sysgen
