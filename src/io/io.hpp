// Minimal I/O: XYZ trajectory frames, bit-exact binary checkpoints of
// fixed-point engine state, and CSV tables for the benchmark harness.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "geom/vec3.hpp"

namespace anton::io {

/// Writes one XYZ frame (element symbols optional; defaults to "X").
void write_xyz_frame(std::ostream& os, std::span<const Vec3d> pos,
                     const std::string& comment = "",
                     std::span<const std::string> symbols = {});

/// Bit-exact checkpoint of fixed-point state (lattice positions +
/// velocities). Restoring and resuming reproduces the original
/// trajectory bitwise -- the property that lets Anton runs span months.
///
/// On-disk format (v2): magic | version | step | atom count | payload
/// CRC32 | positions | velocities. save() writes `<path>.tmp` and then
/// atomically renames it over `path`, so a crash mid-save never corrupts
/// the previous checkpoint; load() validates magic, version, the declared
/// atom count against the file size (before allocating) and the payload
/// CRC, throwing std::runtime_error on any mismatch.
struct Checkpoint {
  std::int64_t step = 0;
  std::vector<Vec3i> positions;
  std::vector<Vec3l> velocities;

  void save(const std::string& path) const;
  static Checkpoint load(const std::string& path);
  bool operator==(const Checkpoint& o) const = default;
};

/// Streams a CSV row; values are written with enough precision to
/// round-trip doubles.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void header(std::span<const std::string> names);
  void row(std::span<const double> values);

 private:
  std::ostream& os_;
};

}  // namespace anton::io
