#include "io/trajectory.hpp"

#include <cstring>
#include <stdexcept>

#include "fixed/fixed.hpp"

namespace anton::io {

namespace {
constexpr std::uint32_t kMagic = 0x4a544e41u;  // "ANTJ"

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
template <typename T>
bool get(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(is);
}

inline bool fits16(std::int32_t d) { return d >= -32768 && d <= 32767; }
}  // namespace

TrajectoryWriter::TrajectoryWriter(const std::string& path,
                                   std::int32_t natoms, int keyframe_every)
    : out_(path, std::ios::binary), natoms_(natoms),
      keyframe_every_(keyframe_every) {
  if (!out_) throw std::runtime_error("TrajectoryWriter: cannot open " + path);
  put(out_, kMagic);
  put(out_, natoms_);
  put(out_, std::uint64_t{0});
  bytes_ = 16;
}

TrajectoryWriter::~TrajectoryWriter() = default;

void TrajectoryWriter::append(std::int64_t step,
                              const std::vector<Vec3i>& positions) {
  if (static_cast<std::int32_t>(positions.size()) != natoms_)
    throw std::invalid_argument("TrajectoryWriter: atom count mismatch");
  put(out_, step);
  const bool keyframe =
      prev_.empty() || (frames_ % keyframe_every_ == 0);
  put(out_, static_cast<std::uint8_t>(keyframe ? 0 : 1));
  bytes_ += 9;
  if (keyframe) {
    out_.write(reinterpret_cast<const char*>(positions.data()),
               static_cast<std::streamsize>(natoms_ * sizeof(Vec3i)));
    bytes_ += natoms_ * static_cast<std::int64_t>(sizeof(Vec3i));
  } else {
    // Wrapping deltas (the lattice is periodic, so wrap subtraction gives
    // the short way around the box).
    std::vector<std::uint8_t> bitmap((natoms_ + 7) / 8, 0);
    std::vector<Vec3i> deltas(natoms_);
    for (std::int32_t i = 0; i < natoms_; ++i) {
      deltas[i] = {fixed::wrap_sub32(positions[i].x, prev_[i].x),
                   fixed::wrap_sub32(positions[i].y, prev_[i].y),
                   fixed::wrap_sub32(positions[i].z, prev_[i].z)};
      if (!(fits16(deltas[i].x) && fits16(deltas[i].y) &&
            fits16(deltas[i].z)))
        bitmap[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
    out_.write(reinterpret_cast<const char*>(bitmap.data()),
               static_cast<std::streamsize>(bitmap.size()));
    bytes_ += static_cast<std::int64_t>(bitmap.size());
    for (std::int32_t i = 0; i < natoms_; ++i) {
      if (bitmap[i / 8] & (1u << (i % 8))) {
        put(out_, deltas[i].x);
        put(out_, deltas[i].y);
        put(out_, deltas[i].z);
        bytes_ += 12;
      } else {
        put(out_, static_cast<std::int16_t>(deltas[i].x));
        put(out_, static_cast<std::int16_t>(deltas[i].y));
        put(out_, static_cast<std::int16_t>(deltas[i].z));
        bytes_ += 6;
      }
    }
  }
  prev_ = positions;
  ++frames_;
}

TrajectoryReader::TrajectoryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("TrajectoryReader: cannot open " + path);
  std::uint32_t magic = 0;
  std::uint64_t reserved = 0;
  if (!get(in_, magic) || magic != kMagic)
    throw std::runtime_error("TrajectoryReader: bad magic");
  get(in_, natoms_);
  get(in_, reserved);
}

bool TrajectoryReader::next(std::int64_t& step,
                            std::vector<Vec3i>& positions) {
  std::uint8_t kind = 0;
  if (!get(in_, step)) return false;
  if (!get(in_, kind)) return false;
  positions.resize(natoms_);
  if (kind == 0) {
    in_.read(reinterpret_cast<char*>(positions.data()),
             static_cast<std::streamsize>(natoms_ * sizeof(Vec3i)));
    if (!in_) throw std::runtime_error("TrajectoryReader: truncated keyframe");
  } else {
    std::vector<std::uint8_t> bitmap((natoms_ + 7) / 8);
    in_.read(reinterpret_cast<char*>(bitmap.data()),
             static_cast<std::streamsize>(bitmap.size()));
    for (std::int32_t i = 0; i < natoms_; ++i) {
      Vec3i d;
      if (bitmap[i / 8] & (1u << (i % 8))) {
        get(in_, d.x);
        get(in_, d.y);
        get(in_, d.z);
      } else {
        std::int16_t x, y, z;
        get(in_, x);
        get(in_, y);
        get(in_, z);
        d = {x, y, z};
      }
      positions[i] = {fixed::wrap_add32(prev_[i].x, d.x),
                      fixed::wrap_add32(prev_[i].y, d.y),
                      fixed::wrap_add32(prev_[i].z, d.z)};
    }
    if (!in_) throw std::runtime_error("TrajectoryReader: truncated frame");
  }
  prev_ = positions;
  return true;
}

}  // namespace anton::io
