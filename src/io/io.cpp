#include "io/io.hpp"

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace anton::io {

void write_xyz_frame(std::ostream& os, std::span<const Vec3d> pos,
                     const std::string& comment,
                     std::span<const std::string> symbols) {
  const std::ios::fmtflags flags = os.flags();
  const std::streamsize prec = os.precision();
  os << pos.size() << "\n" << comment << "\n";
  os << std::setprecision(6) << std::fixed;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const std::string& sym = i < symbols.size() ? symbols[i] : "X";
    os << sym << ' ' << pos[i].x << ' ' << pos[i].y << ' ' << pos[i].z
       << "\n";
  }
  os.flags(flags);
  os.precision(prec);
}

namespace {

constexpr std::uint32_t kMagic = 0x414e544eu;  // "ANTN"
/// v1 had no version/CRC fields; v2 = versioned header + payload CRC32 +
/// atomic tmp-then-rename persistence.
constexpr std::uint32_t kVersion = 2;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the standard
/// zlib/PNG checksum. Table-driven, byte at a time.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

std::uint32_t crc32(std::uint32_t crc, const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

void Checkpoint::save(const std::string& path) const {
  // Write the whole file to a sibling temp path, then atomically rename
  // over the target: a crash mid-write can never leave a torn checkpoint
  // at `path` (the previous complete checkpoint survives).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f)
      throw std::runtime_error("Checkpoint::save: cannot open " + tmp);
    const std::uint32_t magic = kMagic;
    const std::uint32_t version = kVersion;
    const std::uint64_t n = positions.size();
    // The CRC covers everything after the version field: step, count and
    // both payload arrays, so any single corrupted byte fails the load.
    std::uint32_t crc = 0;
    crc = crc32(crc, &step, sizeof step);
    crc = crc32(crc, &n, sizeof n);
    crc = crc32(crc, positions.data(), n * sizeof(Vec3i));
    crc = crc32(crc, velocities.data(), n * sizeof(Vec3l));
    f.write(reinterpret_cast<const char*>(&magic), sizeof magic);
    f.write(reinterpret_cast<const char*>(&version), sizeof version);
    f.write(reinterpret_cast<const char*>(&step), sizeof step);
    f.write(reinterpret_cast<const char*>(&n), sizeof n);
    f.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    f.write(reinterpret_cast<const char*>(positions.data()),
            static_cast<std::streamsize>(n * sizeof(Vec3i)));
    f.write(reinterpret_cast<const char*>(velocities.data()),
            static_cast<std::streamsize>(n * sizeof(Vec3l)));
    f.flush();
    if (!f) {
      std::remove(tmp.c_str());
      throw std::runtime_error("Checkpoint::save: write failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("Checkpoint::save: rename to " + path +
                             " failed: " + ec.message());
  }
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("Checkpoint::load: cannot open " + path);
  std::uint32_t magic = 0, version = 0, crc = 0;
  Checkpoint c;
  std::uint64_t n = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!f || magic != kMagic)
    throw std::runtime_error("Checkpoint::load: bad magic");
  f.read(reinterpret_cast<char*>(&version), sizeof version);
  if (!f || version != kVersion)
    throw std::runtime_error("Checkpoint::load: unsupported version");
  f.read(reinterpret_cast<char*>(&c.step), sizeof c.step);
  f.read(reinterpret_cast<char*>(&n), sizeof n);
  f.read(reinterpret_cast<char*>(&crc), sizeof crc);
  if (!f) throw std::runtime_error("Checkpoint::load: truncated header");
  // Validate the declared atom count against what the file actually
  // holds BEFORE allocating: a corrupt header must throw, not trigger a
  // multi-gigabyte resize.
  const std::streampos payload_start = f.tellg();
  f.seekg(0, std::ios::end);
  const std::streampos file_end = f.tellg();
  if (payload_start < 0 || file_end < payload_start)
    throw std::runtime_error("Checkpoint::load: cannot size file");
  const std::uint64_t remaining =
      static_cast<std::uint64_t>(file_end - payload_start);
  const std::uint64_t record = sizeof(Vec3i) + sizeof(Vec3l);
  if (n > remaining / record || n * record != remaining)
    throw std::runtime_error(
        "Checkpoint::load: atom count inconsistent with file size");
  f.seekg(payload_start);
  c.positions.resize(n);
  c.velocities.resize(n);
  f.read(reinterpret_cast<char*>(c.positions.data()),
         static_cast<std::streamsize>(n * sizeof(Vec3i)));
  f.read(reinterpret_cast<char*>(c.velocities.data()),
         static_cast<std::streamsize>(n * sizeof(Vec3l)));
  if (!f) throw std::runtime_error("Checkpoint::load: truncated file");
  std::uint32_t actual = 0;
  actual = crc32(actual, &c.step, sizeof c.step);
  actual = crc32(actual, &n, sizeof n);
  actual = crc32(actual, c.positions.data(), n * sizeof(Vec3i));
  actual = crc32(actual, c.velocities.data(), n * sizeof(Vec3l));
  if (actual != crc)
    throw std::runtime_error("Checkpoint::load: payload CRC mismatch");
  return c;
}

void CsvWriter::header(std::span<const std::string> names) {
  for (std::size_t i = 0; i < names.size(); ++i)
    os_ << (i ? "," : "") << names[i];
  os_ << "\n";
}

void CsvWriter::row(std::span<const double> values) {
  const std::ios::fmtflags flags = os_.flags();
  const std::streamsize prec = os_.precision();
  os_ << std::setprecision(17);
  for (std::size_t i = 0; i < values.size(); ++i)
    os_ << (i ? "," : "") << values[i];
  os_ << "\n";
  os_.flags(flags);
  os_.precision(prec);
}

}  // namespace anton::io
