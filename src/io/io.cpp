#include "io/io.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <stdexcept>
#include <vector>

#include "io/crc32.hpp"
#include "io/endian.hpp"

namespace anton::io {

void write_xyz_frame(std::ostream& os, std::span<const Vec3d> pos,
                     const std::string& comment,
                     std::span<const std::string> symbols) {
  const std::ios::fmtflags flags = os.flags();
  const std::streamsize prec = os.precision();
  os << pos.size() << "\n" << comment << "\n";
  os << std::setprecision(6) << std::fixed;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const std::string& sym = i < symbols.size() ? symbols[i] : "X";
    os << sym << ' ' << pos[i].x << ' ' << pos[i].y << ' ' << pos[i].z
       << "\n";
  }
  os.flags(flags);
  os.precision(prec);
}

namespace {

constexpr std::uint32_t kMagic = 0x414e544eu;  // "ANTN"
/// v1 had no version/CRC fields; v2 = versioned header + payload CRC32 +
/// atomic tmp-then-rename persistence. The byte layout is defined as
/// little-endian fixed-width fields (io/endian.hpp); on LE hosts the v2
/// bytes are unchanged from the memcpy era, and on any host the format is
/// now portable.
constexpr std::uint32_t kVersion = 2;

}  // namespace

void Checkpoint::save(const std::string& path) const {
  // Write the whole file to a sibling temp path, then atomically rename
  // over the target: a crash mid-write can never leave a torn checkpoint
  // at `path` (the previous complete checkpoint survives).
  //
  // File layout (all fields little-endian):
  //   magic u32 | version u32 | step i64 | count u64 | crc u32 |
  //   count x (pos.x i32, pos.y i32, pos.z i32) |
  //   count x (vel.x i64, vel.y i64, vel.z i64)
  // The CRC covers everything after the version field (step, count,
  // both payload arrays) so any single corrupted byte fails the load.
  const std::string tmp = path + ".tmp";
  const std::uint64_t n = positions.size();
  // Encode [step | count | positions | velocities] field by field; the
  // CRC is computed over these exact bytes.
  std::vector<unsigned char> body(16 + n * (sizeof(Vec3i) + sizeof(Vec3l)));
  unsigned char* p = body.data();
  store_i64le(p, step);
  p += 8;
  store_u64le(p, n);
  p += 8;
  for (const Vec3i& v : positions) {
    store_i32le(p, v.x);
    store_i32le(p + 4, v.y);
    store_i32le(p + 8, v.z);
    p += 12;
  }
  for (const Vec3l& v : velocities) {
    store_i64le(p, v.x);
    store_i64le(p + 8, v.y);
    store_i64le(p + 16, v.z);
    p += 24;
  }
  const std::uint32_t crc = crc32(0, body.data(), body.size());
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f)
      throw std::runtime_error("Checkpoint::save: cannot open " + tmp);
    unsigned char head[8], crcb[4];
    store_u32le(head, kMagic);
    store_u32le(head + 4, kVersion);
    store_u32le(crcb, crc);
    f.write(reinterpret_cast<const char*>(head), sizeof head);
    f.write(reinterpret_cast<const char*>(body.data()), 16);
    f.write(reinterpret_cast<const char*>(crcb), sizeof crcb);
    f.write(reinterpret_cast<const char*>(body.data() + 16),
            static_cast<std::streamsize>(body.size() - 16));
    f.flush();
    if (!f) {
      std::remove(tmp.c_str());
      throw std::runtime_error("Checkpoint::save: write failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("Checkpoint::save: rename to " + path +
                             " failed: " + ec.message());
  }
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("Checkpoint::load: cannot open " + path);
  unsigned char head[28];
  f.read(reinterpret_cast<char*>(head), sizeof head);
  if (!f) throw std::runtime_error("Checkpoint::load: truncated header");
  if (load_u32le(head) != kMagic)
    throw std::runtime_error("Checkpoint::load: bad magic");
  if (load_u32le(head + 4) != kVersion)
    throw std::runtime_error("Checkpoint::load: unsupported version");
  Checkpoint c;
  c.step = load_i64le(head + 8);
  const std::uint64_t n = load_u64le(head + 16);
  const std::uint32_t crc = load_u32le(head + 24);
  // Validate the declared atom count against what the file actually
  // holds BEFORE allocating: a corrupt header must throw, not trigger a
  // multi-gigabyte resize.
  const std::streampos payload_start = f.tellg();
  f.seekg(0, std::ios::end);
  const std::streampos file_end = f.tellg();
  if (payload_start < 0 || file_end < payload_start)
    throw std::runtime_error("Checkpoint::load: cannot size file");
  const std::uint64_t remaining =
      static_cast<std::uint64_t>(file_end - payload_start);
  const std::uint64_t record = sizeof(Vec3i) + sizeof(Vec3l);
  if (n > remaining / record || n * record != remaining)
    throw std::runtime_error(
        "Checkpoint::load: atom count inconsistent with file size");
  f.seekg(payload_start);
  std::vector<unsigned char> payload(remaining);
  f.read(reinterpret_cast<char*>(payload.data()),
         static_cast<std::streamsize>(payload.size()));
  if (!f) throw std::runtime_error("Checkpoint::load: truncated file");
  // The CRC is defined over [step | count | payload] in LE byte order --
  // exactly the header bytes already in hand plus the payload.
  std::uint32_t actual = crc32(0, head + 8, 16);
  actual = crc32(actual, payload.data(), payload.size());
  if (actual != crc)
    throw std::runtime_error("Checkpoint::load: payload CRC mismatch");
  const unsigned char* p = payload.data();
  c.positions.resize(n);
  c.velocities.resize(n);
  for (std::uint64_t i = 0; i < n; ++i, p += 12)
    c.positions[i] = {load_i32le(p), load_i32le(p + 4), load_i32le(p + 8)};
  for (std::uint64_t i = 0; i < n; ++i, p += 24)
    c.velocities[i] = {load_i64le(p), load_i64le(p + 8), load_i64le(p + 16)};
  return c;
}

void CsvWriter::header(std::span<const std::string> names) {
  for (std::size_t i = 0; i < names.size(); ++i)
    os_ << (i ? "," : "") << names[i];
  os_ << "\n";
}

void CsvWriter::row(std::span<const double> values) {
  const std::ios::fmtflags flags = os_.flags();
  const std::streamsize prec = os_.precision();
  os_ << std::setprecision(17);
  for (std::size_t i = 0; i < values.size(); ++i)
    os_ << (i ? "," : "") << values[i];
  os_ << "\n";
  os_.flags(flags);
  os_.precision(prec);
}

}  // namespace anton::io
