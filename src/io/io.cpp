#include "io/io.hpp"

#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace anton::io {

void write_xyz_frame(std::ostream& os, std::span<const Vec3d> pos,
                     const std::string& comment,
                     std::span<const std::string> symbols) {
  os << pos.size() << "\n" << comment << "\n";
  os << std::setprecision(6) << std::fixed;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const std::string& sym = i < symbols.size() ? symbols[i] : "X";
    os << sym << ' ' << pos[i].x << ' ' << pos[i].y << ' ' << pos[i].z
       << "\n";
  }
}

namespace {
constexpr std::uint32_t kMagic = 0x414e544eu;  // "ANTN"
}

void Checkpoint::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("Checkpoint::save: cannot open " + path);
  const std::uint32_t magic = kMagic;
  const std::uint64_t n = positions.size();
  f.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  f.write(reinterpret_cast<const char*>(&step), sizeof step);
  f.write(reinterpret_cast<const char*>(&n), sizeof n);
  f.write(reinterpret_cast<const char*>(positions.data()),
          static_cast<std::streamsize>(n * sizeof(Vec3i)));
  f.write(reinterpret_cast<const char*>(velocities.data()),
          static_cast<std::streamsize>(n * sizeof(Vec3l)));
  if (!f) throw std::runtime_error("Checkpoint::save: write failed");
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("Checkpoint::load: cannot open " + path);
  std::uint32_t magic = 0;
  Checkpoint c;
  std::uint64_t n = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (magic != kMagic) throw std::runtime_error("Checkpoint::load: bad magic");
  f.read(reinterpret_cast<char*>(&c.step), sizeof c.step);
  f.read(reinterpret_cast<char*>(&n), sizeof n);
  c.positions.resize(n);
  c.velocities.resize(n);
  f.read(reinterpret_cast<char*>(c.positions.data()),
         static_cast<std::streamsize>(n * sizeof(Vec3i)));
  f.read(reinterpret_cast<char*>(c.velocities.data()),
         static_cast<std::streamsize>(n * sizeof(Vec3l)));
  if (!f) throw std::runtime_error("Checkpoint::load: truncated file");
  return c;
}

void CsvWriter::header(std::span<const std::string> names) {
  for (std::size_t i = 0; i < names.size(); ++i)
    os_ << (i ? "," : "") << names[i];
  os_ << "\n";
}

void CsvWriter::row(std::span<const double> values) {
  os_ << std::setprecision(17);
  for (std::size_t i = 0; i < values.size(); ++i)
    os_ << (i ? "," : "") << values[i];
  os_ << "\n";
}

}  // namespace anton::io
