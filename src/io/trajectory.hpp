// Compact binary trajectory streaming.
//
// Anton streams simulation output through its host interface; frames are
// fixed-point, so they compress naturally. This writer stores lattice
// positions with per-frame delta encoding against the previous frame:
// most atoms move a handful of lattice steps between saved frames, so
// deltas pack into 16-bit components with an escape to full 32-bit when
// an atom moved far (or wrapped). Reading back is bit-exact.
//
// Format (little-endian):
//   header:  magic 'ANTJ', u32 natoms, u64 reserved
//   frame:   u64 step, u8 kind (0 = keyframe, 1 = delta)
//     keyframe: natoms * 3 * i32
//     delta:    bitmap (natoms bits, padded to bytes) marking escaped
//               atoms, then for each atom either 3 * i16 (packed delta)
//               or 3 * i32 (escape)
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "geom/vec3.hpp"

namespace anton::io {

class TrajectoryWriter {
 public:
  TrajectoryWriter(const std::string& path, std::int32_t natoms,
                   int keyframe_every = 50);
  ~TrajectoryWriter();

  void append(std::int64_t step, const std::vector<Vec3i>& positions);
  std::int64_t frames_written() const { return frames_; }
  /// Bytes written so far (for compression-ratio reporting).
  std::int64_t bytes_written() const { return bytes_; }

 private:
  std::ofstream out_;
  std::int32_t natoms_;
  int keyframe_every_;
  std::int64_t frames_ = 0;
  std::int64_t bytes_ = 0;
  std::vector<Vec3i> prev_;
};

class TrajectoryReader {
 public:
  explicit TrajectoryReader(const std::string& path);

  std::int32_t natoms() const { return natoms_; }

  /// Reads the next frame; returns false at end of stream.
  bool next(std::int64_t& step, std::vector<Vec3i>& positions);

 private:
  std::ifstream in_;
  std::int32_t natoms_ = 0;
  std::vector<Vec3i> prev_;
};

}  // namespace anton::io
