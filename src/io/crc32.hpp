// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the standard
// zlib/PNG checksum. The one implementation shared by every format that
// needs corruption detection: io::Checkpoint payloads and the
// parallel::wire frame format.
#pragma once

#include <cstddef>
#include <cstdint>

namespace anton::io {

/// Extends `crc` over `len` bytes (pass 0 to start a fresh checksum).
std::uint32_t crc32(std::uint32_t crc, const void* data, std::size_t len);

}  // namespace anton::io
