// Explicit little-endian integer encoding.
//
// Everything this codebase persists or puts on a wire -- io::Checkpoint
// files and the parallel::wire frame format -- is defined as a sequence of
// little-endian fixed-width integers, encoded field by field. Nothing is
// ever memcpy'd as a struct: that would bake the host's endianness,
// padding and type widths into the format. These helpers are the one
// implementation of that rule, shared by both producers, and they compile
// to plain loads/stores on little-endian hosts.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace anton::io {

inline void store_u16le(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

inline void store_u32le(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

inline void store_u64le(unsigned char* p, std::uint64_t v) {
  store_u32le(p, static_cast<std::uint32_t>(v));
  store_u32le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint16_t load_u16le(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

inline std::uint32_t load_u32le(const unsigned char* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

inline std::uint64_t load_u64le(const unsigned char* p) {
  return std::uint64_t{load_u32le(p)} |
         (std::uint64_t{load_u32le(p + 4)} << 32);
}

// Signed values travel as their two's-complement bit pattern.

inline void store_i32le(unsigned char* p, std::int32_t v) {
  store_u32le(p, static_cast<std::uint32_t>(v));
}

inline void store_i64le(unsigned char* p, std::int64_t v) {
  store_u64le(p, static_cast<std::uint64_t>(v));
}

inline std::int32_t load_i32le(const unsigned char* p) {
  return static_cast<std::int32_t>(load_u32le(p));
}

inline std::int64_t load_i64le(const unsigned char* p) {
  return static_cast<std::int64_t>(load_u64le(p));
}

// Doubles travel as the IEEE-754 bit pattern in a little-endian u64 --
// bit-exact, which is what the determinism contract requires.

inline void store_f64le(unsigned char* p, double v) {
  store_u64le(p, std::bit_cast<std::uint64_t>(v));
}

inline double load_f64le(const unsigned char* p) {
  return std::bit_cast<double>(load_u64le(p));
}

}  // namespace anton::io
