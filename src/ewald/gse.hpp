// Gaussian Split Ewald (GSE) -- the paper's long-range electrostatics
// method (Shan et al., J. Chem. Phys. 122, 054101; Section 3.1 here).
//
// The Ewald decomposition splits the Coulomb interaction with parameter
// beta: a direct-space part erfc(beta r)/r summed over nearby pairs, and a
// smooth reciprocal part evaluated on a mesh. GSE's twist -- the reason it
// maps onto Anton's HTIS -- is that both charge spreading and force
// interpolation use *radially symmetric Gaussians* instead of the
// B-splines of Smooth PME, so they are "interactions between atoms and
// nearby mesh points" computable by the pairwise point interaction
// pipelines.
//
// The split used here: spreading/interpolation Gaussians of width sigma_s
// each contribute exp(-k^2 sigma_s^2 / 2) in Fourier space; the on-mesh
// convolution kernel supplies the remainder,
//     G(k) = kC * (4 pi / k^2) * exp(-k^2 (sigma^2 - 2 sigma_s^2) / 2),
// with sigma = 1/(sqrt(2) beta), which requires sigma_s <= sigma/sqrt(2).
// Together: spreading x kernel x interpolation = the standard Ewald
// reciprocal-space damping exp(-k^2 / 4 beta^2).
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "fft/fft3d.hpp"
#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::ewald {

struct GseParams {
  double beta = 0.35;     // Ewald splitting parameter, 1/A
  double sigma_s = 1.0;   // spreading/interpolation Gaussian width, A
  double rs = 5.0;        // spreading/interpolation cutoff, A
  int mesh = 32;          // mesh points per axis (power of two)

  double sigma() const { return 1.0 / (1.4142135623730951 * beta); }
  /// Width^2 remaining in the k-space kernel; must be >= 0.
  double sigma_k2() const {
    const double s = sigma();
    return s * s - 2.0 * sigma_s * sigma_s;
  }

  /// A reasonable parameter set for a given direct-space cutoff: beta
  /// chosen so erfc(beta rc) ~ 1e-5 at the cutoff, sigma_s at its maximum
  /// (sigma/sqrt(2)) shrunk slightly to leave smoothing in k-space, and
  /// rs covering ~4.2 sigma_s of the spreading Gaussian.
  static GseParams for_cutoff(double rc, int mesh);
};

/// Structure-of-arrays batch of mesh points within rs of one atom
/// (indices, displacement components, squared distances in lanes).
struct MeshPointBatch {
  std::vector<std::size_t> idx;
  std::vector<double> dx, dy, dz, r2;

  std::size_t size() const { return idx.size(); }
  void clear() {
    idx.clear();
    dx.clear();
    dy.clear();
    dz.clear();
    r2.clear();
  }
};

class Gse {
 public:
  Gse(const PeriodicBox& box, const GseParams& p);

  const GseParams& params() const { return p_; }
  std::size_t mesh_total() const {
    return static_cast<std::size_t>(p_.mesh) * p_.mesh * p_.mesh;
  }
  double mesh_spacing() const { return h_; }

  /// Charge spreading: accumulates the Gaussian-smeared charge density
  /// (units e/A^3) of each atom onto mesh points within rs. Q must have
  /// mesh_total() entries, pre-zeroed by the caller.
  void spread(std::span<const Vec3d> pos, std::span<const double> q,
              std::span<double> Q) const;

  /// On-mesh convolution: forward FFT, multiply by G(k), inverse FFT.
  /// Writes the mesh potential phi (kcal/mol per e) and returns the
  /// reciprocal-space energy (kcal/mol).
  double convolve(std::span<const double> Q, std::span<double> phi) const;

  /// Force interpolation: F_i += q_i * sum_m phi(m) h^3 * grad G terms.
  /// Also accumulates the per-atom reciprocal potential energy if
  /// `atom_energy` is non-empty.
  void interpolate(std::span<const Vec3d> pos, std::span<const double> q,
                   std::span<const double> phi, std::span<Vec3d> force) const;

  /// Ewald self-energy (constant per configuration): -kC beta/sqrt(pi) sum q^2.
  double self_energy(std::span<const double> q) const;

  /// The k-space kernel G(k) on the DFT index grid. Exposed so a
  /// distributed convolution (the VM's block-owned slabs) applies exactly
  /// the per-point multiply convolve() applies.
  const std::vector<double>& green() const { return green_; }

  /// Enumerates (index, weight) of mesh points within rs of a position;
  /// used by both the double path above and the Anton engine's HTIS-style
  /// mesh interaction pass. f(mesh_index, dr, r2) with dr = r_atom - r_mesh.
  template <typename F>
  void for_each_mesh_point(const Vec3d& r, F&& f) const {
    const int M = p_.mesh;
    const double half = 0.5 * box_.side().x;
    const double rs2 = p_.rs * p_.rs;
    // Index window along each axis around the atom.
    int lo[3], hi[3];
    const double rr[3] = {r.x, r.y, r.z};
    for (int a = 0; a < 3; ++a) {
      lo[a] = static_cast<int>(std::floor((rr[a] + half - p_.rs) / h_));
      hi[a] = static_cast<int>(std::ceil((rr[a] + half + p_.rs) / h_));
    }
    for (int mz = lo[2]; mz <= hi[2]; ++mz) {
      const double dz = rr[2] - (mz * h_ - half);
      for (int my = lo[1]; my <= hi[1]; ++my) {
        const double dy = rr[1] - (my * h_ - half);
        for (int mx = lo[0]; mx <= hi[0]; ++mx) {
          const double dx = rr[0] - (mx * h_ - half);
          const double r2 = dx * dx + dy * dy + dz * dz;
          if (r2 > rs2) continue;
          const int wx = ((mx % M) + M) % M;
          const int wy = ((my % M) + M) % M;
          const int wz = ((mz % M) + M) % M;
          const std::size_t idx =
              (static_cast<std::size_t>(wz) * M + wy) * M + wx;
          f(idx, Vec3d{dx, dy, dz}, r2);
        }
      }
    }
  }

  /// SoA batch of the mesh points for_each_mesh_point would visit, in the
  /// same order with the same doubles. Gathering first lets callers run
  /// the Gaussian table over all ~(2 rs/h)^3 points of an atom in one
  /// vectorized eval_fixed_n sweep instead of a branchy per-point call.
  void gather_mesh_points(const Vec3d& r, MeshPointBatch& out) const {
    out.clear();
    for_each_mesh_point(r, [&out](std::size_t idx, const Vec3d& d, double r2) {
      out.idx.push_back(idx);
      out.dx.push_back(d.x);
      out.dy.push_back(d.y);
      out.dz.push_back(d.z);
      out.r2.push_back(r2);
    });
  }

 private:
  PeriodicBox box_;
  GseParams p_;
  double h_;  // mesh spacing
  fft::Fft3D fft_;
  std::vector<double> green_;  // G(k) on the DFT index grid
};

}  // namespace anton::ewald
