// Pairwise interaction kernels: Lennard-Jones and Ewald-split Coulomb.
//
// Every kernel is expressed as a radially symmetric coefficient f(r) such
// that the force vector is f * dr -- the functional form the PPIP computes
// as "a table-driven function of the distance between two points"
// (Section 3.1). The Anton engine tabulates these with TieredTable; the
// reference engine evaluates them directly in double precision.
//
// Conventions:
//   Coulomb:  E = kC q1 q2 / r, Ewald-split with parameter beta (1/A):
//             direct part erfc(beta r)/r, reciprocal part erf(beta r)/r.
//   LJ:       E = A/r^12 - B/r^6 with A = 4 eps sigma^12, B = 4 eps sigma^6.
//   Force coefficient: F_vec = coef(r) * dr_vec with dr = r_i - r_j giving
//             the force ON atom i (repulsive = positive coef).
#pragma once

#include <cmath>

#include "util/units.hpp"

namespace anton::ewald {

/// Direct-space Coulomb energy per unit charge product: erfc(beta r)/r,
/// times the Coulomb constant.
inline double coul_direct_energy(double r, double beta) {
  return units::kCoulomb * std::erfc(beta * r) / r;
}

/// Direct-space Coulomb force coefficient per unit charge product:
/// -(1/r) d/dr [kC erfc(beta r)/r].
inline double coul_direct_force(double r, double beta) {
  const double r2 = r * r;
  const double two_over_sqrt_pi = 1.1283791670955126;
  return units::kCoulomb *
         (std::erfc(beta * r) / (r2 * r) +
          two_over_sqrt_pi * beta * std::exp(-beta * beta * r2) / r2);
}

/// coul_direct_energy with the caller supplying erfc(beta r) -- the hook
/// for a spline lookup (ErfcTable) in the reference engine's pair loop.
inline double coul_direct_energy_erfc(double r, double erfc_br) {
  return units::kCoulomb * erfc_br / r;
}

/// coul_direct_force with the caller supplying erfc(beta r); the exp term
/// stays exact (it is cheap next to libm's erfc).
inline double coul_direct_force_erfc(double r, double beta, double erfc_br) {
  const double r2 = r * r;
  const double two_over_sqrt_pi = 1.1283791670955126;
  return units::kCoulomb *
         (erfc_br / (r2 * r) +
          two_over_sqrt_pi * beta * std::exp(-beta * beta * r2) / r2);
}

/// Reciprocal-space (to be subtracted for excluded pairs) energy per unit
/// charge product: erf(beta r)/r, times the Coulomb constant.
inline double coul_recip_energy(double r, double beta) {
  return units::kCoulomb * std::erf(beta * r) / r;
}

/// Reciprocal-space force coefficient per unit charge product.
inline double coul_recip_force(double r, double beta) {
  const double r2 = r * r;
  const double two_over_sqrt_pi = 1.1283791670955126;
  return units::kCoulomb *
         (std::erf(beta * r) / (r2 * r) -
          two_over_sqrt_pi * beta * std::exp(-beta * beta * r2) / r2);
}

/// Bare Coulomb energy / force coefficient per unit charge product.
inline double coul_bare_energy(double r) { return units::kCoulomb / r; }
inline double coul_bare_force(double r) {
  return units::kCoulomb / (r * r * r);
}

/// LJ A/B coefficients from sigma/epsilon.
inline double lj_A(double sigma, double eps) {
  const double s6 = std::pow(sigma, 6);
  return 4.0 * eps * s6 * s6;
}
inline double lj_B(double sigma, double eps) {
  return 4.0 * eps * std::pow(sigma, 6);
}

/// LJ energy and force coefficient given A, B.
inline double lj_energy(double r2, double A, double B) {
  const double ir2 = 1.0 / r2;
  const double ir6 = ir2 * ir2 * ir2;
  return (A * ir6 - B) * ir6;
}
inline double lj_force(double r2, double A, double B) {
  const double ir2 = 1.0 / r2;
  const double ir6 = ir2 * ir2 * ir2;
  return (12.0 * A * ir6 - 6.0 * B) * ir6 * ir2;
}

/// Normalized 3-D Gaussian of width sigma: (2 pi s^2)^{-3/2} e^{-r^2/2s^2}.
inline double gaussian3d(double r2, double sigma) {
  const double s2 = sigma * sigma;
  const double norm = std::pow(2.0 * M_PI * s2, -1.5);
  return norm * std::exp(-0.5 * r2 / s2);
}

}  // namespace anton::ewald
