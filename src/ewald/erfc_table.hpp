// Cubic-spline erfc lookup for the direct-space Ewald sum.
//
// The reference engine calls erfc(beta r) once per pair inside the cutoff;
// libm's erfc dominates that loop. Conventional MD codes (the cpptraj
// idiom referenced in SNIPPETS.md) replace it with a spline table over
// x = beta r. Here each interval [k dx, (k+1) dx) stores the cubic Hermite
// interpolant matched to erfc's exact value AND exact analytic derivative
// (erfc'(x) = -2/sqrt(pi) e^{-x^2}) at both endpoints: C^1 across the
// table with O(dx^4) error -- ~1e-11 absolute at the default spacing,
// far below the fixed-point engines' quantization and every accuracy
// tolerance the reference engine is compared under.
//
// This is an approximation by design: the reference engine is the
// double-precision foil, compared against AntonEngine within tolerances,
// not a bitwise-gated path.
#pragma once

#include <vector>

namespace anton::ewald {

class ErfcTable {
 public:
  ErfcTable() = default;

  /// Builds the table over [0, x_max] with spacing dx. x_max should cover
  /// beta * (cutoff + skin) of every pair loop that uses the table.
  ErfcTable(double x_max, double dx = 1.0 / 256.0);

  bool empty() const { return coef_.empty(); }
  double x_max() const { return x_max_; }

  /// erfc(x) via the spline; falls back to std::erfc outside [0, x_max]
  /// (cold: pairs beyond the build domain only appear if the caller's
  /// cutoff grew after construction).
  double value(double x) const {
    if (x < 0.0 || x >= x_max_) return slow_value(x);
    const double s = x * inv_dx_;
    const int k = static_cast<int>(s);
    const double t = s - k;
    const double* c = &coef_[4 * static_cast<std::size_t>(k)];
    return ((c[3] * t + c[2]) * t + c[1]) * t + c[0];
  }

  /// Largest |erfc(x) - value(x)| observed over a dense scan at build.
  double max_error() const { return max_error_; }

 private:
  double slow_value(double x) const;

  std::vector<double> coef_;  // 4 cubic coefficients per interval, in t
  double inv_dx_ = 0.0;
  double x_max_ = 0.0;
  double max_error_ = 0.0;
};

}  // namespace anton::ewald
