#include "ewald/reference_ewald.hpp"

#include <cmath>
#include <complex>

#include "util/units.hpp"

namespace anton::ewald {

ReferenceEwald::ReferenceEwald(const PeriodicBox& box, double beta, int kmax)
    : box_(box), beta_(beta) {
  const Vec3d L = box.side();
  const double V = box.volume();
  for (int nx = -kmax; nx <= kmax; ++nx) {
    for (int ny = -kmax; ny <= kmax; ++ny) {
      for (int nz = -kmax; nz <= kmax; ++nz) {
        if (nx == 0 && ny == 0 && nz == 0) continue;
        const Vec3d k{2.0 * M_PI * nx / L.x, 2.0 * M_PI * ny / L.y,
                      2.0 * M_PI * nz / L.z};
        const double k2 = k.norm2();
        const double coeff = units::kCoulomb * 4.0 * M_PI / (V * k2) *
                             std::exp(-k2 / (4.0 * beta * beta));
        kvecs_.push_back({k, coeff});
      }
    }
  }
}

double ReferenceEwald::compute(std::span<const Vec3d> pos,
                               std::span<const double> q,
                               std::span<Vec3d> force) const {
  const std::size_t n = pos.size();
  double energy = 0.0;
  for (const KVec& kv : kvecs_) {
    // Structure factor S(k) = sum q_i e^{i k . r_i}.
    double sr = 0.0, si = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ph = kv.k.dot(pos[i]);
      sr += q[i] * std::cos(ph);
      si += q[i] * std::sin(ph);
    }
    energy += 0.5 * kv.coeff * (sr * sr + si * si);
    for (std::size_t i = 0; i < n; ++i) {
      const double ph = kv.k.dot(pos[i]);
      // F_i = q_i coeff * k * Im(S*(k) e^{i k r_i})
      //     = q_i coeff * k * (Re S sin(ph) - Im S cos(ph)).
      const double im = std::sin(ph) * sr - std::cos(ph) * si;
      force[i] += kv.k * (q[i] * kv.coeff * im);
    }
  }
  return energy;
}

double ReferenceEwald::self_energy(std::span<const double> q) const {
  double s = 0.0;
  for (double qi : q) s += qi * qi;
  return -units::kCoulomb * beta_ / std::sqrt(M_PI) * s;
}

}  // namespace anton::ewald
