// Exact (well-converged) Ewald reciprocal sum, used as the accuracy
// baseline. This plays the role of the paper's Desmond-with-conservative-
// parameters reference (Section 5.2): forces computed here in double
// precision with an explicit structure-factor sum have no mesh or
// interpolation error, so differences against the mesh methods isolate
// their approximation error.
#pragma once

#include <span>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::ewald {

class ReferenceEwald {
 public:
  /// kmax: include reciprocal vectors with |n|_inf <= kmax.
  ReferenceEwald(const PeriodicBox& box, double beta, int kmax);

  /// Adds reciprocal-space forces to `force` and returns the reciprocal
  /// energy. O(natoms * kvectors).
  double compute(std::span<const Vec3d> pos, std::span<const double> q,
                 std::span<Vec3d> force) const;

  double self_energy(std::span<const double> q) const;

  std::size_t kvector_count() const { return kvecs_.size(); }

 private:
  struct KVec {
    Vec3d k;
    double coeff;  // kC * (4 pi / V k^2) exp(-k^2 / 4 beta^2)
  };
  PeriodicBox box_;
  double beta_;
  std::vector<KVec> kvecs_;
};

}  // namespace anton::ewald
