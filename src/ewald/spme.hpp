// Smooth Particle Mesh Ewald (Essmann et al. 1995).
//
// "Most high-performance codes use the Smooth Particle Mesh Ewald (SPME)
// algorithm, in which the interaction between an atom and a mesh point is
// based on B-spline interpolation. Anton's PPIPs, on the other hand,
// compute interactions between two points as a table-driven function of
// the distance between them -- a radially symmetric functional form that
// is incompatible with B-splines." (Section 3.1.)
//
// This is that incompatible baseline, implemented in full: cardinal
// B-spline charge assignment (separable per axis -- NOT a function of
// |r_atom - r_mesh|), the Euler-spline |b(k)|^2 correction in k-space, and
// analytic B-spline-derivative forces. It serves two purposes here:
//  * an independent mesh-Ewald implementation to cross-check GSE against;
//  * the ablation subject of bench_ablation_gse: what accuracy per mesh
//    point each method buys, and why only one of them maps onto the HTIS.
#pragma once

#include <span>
#include <vector>

#include "fft/fft3d.hpp"
#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::ewald {

struct SpmeParams {
  double beta = 0.35;  // Ewald splitting (1/A)
  int mesh = 32;       // mesh points per axis (power of two)
  int order = 4;       // B-spline order (4 or 6 in production codes)
};

class Spme {
 public:
  Spme(const PeriodicBox& box, const SpmeParams& p);

  const SpmeParams& params() const { return p_; }
  std::size_t mesh_total() const {
    return static_cast<std::size_t>(p_.mesh) * p_.mesh * p_.mesh;
  }

  /// Computes the reciprocal-space energy and adds reciprocal forces.
  /// Self-energy and exclusion corrections are the caller's business
  /// (identical to the GSE path; see ewald/kernels.hpp).
  double compute(std::span<const Vec3d> pos, std::span<const double> q,
                 std::span<Vec3d> force) const;

  /// Cardinal B-spline M_n(u) for u in [0, n] (exposed for tests).
  static double bspline(int n, double u);

  /// dM_n/du = M_{n-1}(u) - M_{n-1}(u - 1).
  static double bspline_deriv(int n, double u);

 private:
  PeriodicBox box_;
  SpmeParams p_;
  fft::Fft3D fft_;
  std::vector<double> influence_;  // C(n): kC 4pi/(V k^2) e^{-k^2/4b^2} B(n)
};

}  // namespace anton::ewald
