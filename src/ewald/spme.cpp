#include "ewald/spme.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "util/units.hpp"

namespace anton::ewald {

double Spme::bspline(int n, double u) {
  if (u <= 0.0 || u >= n) return 0.0;
  if (n == 2) return 1.0 - std::fabs(u - 1.0);
  return u / (n - 1) * bspline(n - 1, u) +
         (n - u) / (n - 1) * bspline(n - 1, u - 1.0);
}

double Spme::bspline_deriv(int n, double u) {
  return bspline(n - 1, u) - bspline(n - 1, u - 1.0);
}

Spme::Spme(const PeriodicBox& box, const SpmeParams& p)
    : box_(box), p_(p), fft_(p.mesh) {
  if (!box.is_cubic()) throw std::invalid_argument("Spme: cubic box only");
  if (p.order < 3 || p.order > 8)
    throw std::invalid_argument("Spme: order must be in [3, 8]");

  const int K = p_.mesh;
  const double L = box.side().x;
  const double V = box.volume();

  // Euler exponential-spline moduli |b(m)|^2 per axis (identical axes for
  // a cubic box): b(m) = e^{2 pi i (n-1) m / K} / sum_{j=0}^{n-2}
  // M_n(j+1) e^{2 pi i m j / K}.
  std::vector<double> bmod2(K);
  for (int m = 0; m < K; ++m) {
    std::complex<double> denom{0.0, 0.0};
    for (int j = 0; j <= p_.order - 2; ++j) {
      const double ang = 2.0 * M_PI * m * j / K;
      denom += bspline(p_.order, j + 1.0) *
               std::complex<double>{std::cos(ang), std::sin(ang)};
    }
    const double d2 = std::norm(denom);
    // For even orders the denominator vanishes at m = K/2; the standard
    // remedy is to zero that mode (its weight is negligible).
    bmod2[m] = d2 > 1e-10 ? 1.0 / d2 : 0.0;
  }

  influence_.assign(mesh_total(), 0.0);
  for (int nz = 0; nz < K; ++nz) {
    const int fz = (nz <= K / 2) ? nz : nz - K;
    for (int ny = 0; ny < K; ++ny) {
      const int fy = (ny <= K / 2) ? ny : ny - K;
      for (int nx = 0; nx < K; ++nx) {
        const int fx = (nx <= K / 2) ? nx : nx - K;
        if (fx == 0 && fy == 0 && fz == 0) continue;
        const double kx = 2.0 * M_PI * fx / L;
        const double ky = 2.0 * M_PI * fy / L;
        const double kz = 2.0 * M_PI * fz / L;
        const double k2 = kx * kx + ky * ky + kz * kz;
        const std::size_t idx =
            (static_cast<std::size_t>(nz) * K + ny) * K + nx;
        influence_[idx] = units::kCoulomb * 4.0 * M_PI / (V * k2) *
                          std::exp(-k2 / (4.0 * p_.beta * p_.beta)) *
                          bmod2[nx] * bmod2[ny] * bmod2[nz];
      }
    }
  }
}

double Spme::compute(std::span<const Vec3d> pos, std::span<const double> q,
                     std::span<Vec3d> force) const {
  const int K = p_.mesh;
  const int n = p_.order;
  const double L = box_.side().x;
  const double scale = K / L;  // du/dx

  // Per-atom spline weights along each axis.
  struct AtomSpline {
    int base[3];          // first mesh index of the support
    double w[3][8];       // weights  M_n(u - m)
    double dw[3][8];      // derivatives dM_n/du
  };
  std::vector<AtomSpline> splines(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    AtomSpline& s = splines[i];
    const double rr[3] = {pos[i].x, pos[i].y, pos[i].z};
    for (int a = 0; a < 3; ++a) {
      const double u = (rr[a] / L + 0.5) * K;  // in [0, K)
      const int fl = static_cast<int>(std::floor(u));
      s.base[a] = fl - n + 1;
      for (int j = 0; j < n; ++j) {
        const double arg = u - (s.base[a] + j);  // in (0, n)
        s.w[a][j] = bspline(n, arg);
        s.dw[a][j] = bspline_deriv(n, arg);
      }
    }
  }

  // Charge assignment.
  std::vector<fft::cplx> grid(mesh_total(), {0.0, 0.0});
  auto wrap = [K](int m) { return ((m % K) + K) % K; };
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (q[i] == 0.0) continue;
    const AtomSpline& s = splines[i];
    for (int jz = 0; jz < n; ++jz) {
      const int mz = wrap(s.base[2] + jz);
      for (int jy = 0; jy < n; ++jy) {
        const int my = wrap(s.base[1] + jy);
        const double wyz = s.w[2][jz] * s.w[1][jy] * q[i];
        for (int jx = 0; jx < n; ++jx) {
          const int mx = wrap(s.base[0] + jx);
          grid[(static_cast<std::size_t>(mz) * K + my) * K + mx] +=
              wyz * s.w[0][jx];
        }
      }
    }
  }

  // Convolution: E = 1/2 sum_n C(n) |Q^(n)|^2; phi = K^3 IFFT[C Q^].
  fft_.forward(grid);
  double energy = 0.0;
  for (std::size_t idx = 0; idx < grid.size(); ++idx) {
    energy += influence_[idx] * std::norm(grid[idx]);
    grid[idx] *= influence_[idx];
  }
  energy *= 0.5;
  fft_.inverse(grid);
  const double k3 = static_cast<double>(K) * K * K;

  // Forces: F_i = -q_i sum_m phi(m) grad_i w_i(m).
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (q[i] == 0.0) continue;
    const AtomSpline& s = splines[i];
    Vec3d f{0, 0, 0};
    for (int jz = 0; jz < n; ++jz) {
      const int mz = wrap(s.base[2] + jz);
      for (int jy = 0; jy < n; ++jy) {
        const int my = wrap(s.base[1] + jy);
        for (int jx = 0; jx < n; ++jx) {
          const int mx = wrap(s.base[0] + jx);
          const double phi =
              grid[(static_cast<std::size_t>(mz) * K + my) * K + mx].real() *
              k3;
          f.x -= phi * s.dw[0][jx] * s.w[1][jy] * s.w[2][jz];
          f.y -= phi * s.w[0][jx] * s.dw[1][jy] * s.w[2][jz];
          f.z -= phi * s.w[0][jx] * s.w[1][jy] * s.dw[2][jz];
        }
      }
    }
    force[i] += f * (q[i] * scale);
  }
  return energy;
}

}  // namespace anton::ewald
