#include "ewald/gse.hpp"

#include <cmath>
#include <stdexcept>

#include "ewald/kernels.hpp"
#include "util/units.hpp"

namespace anton::ewald {

GseParams GseParams::for_cutoff(double rc, int mesh) {
  GseParams p;
  // erfc(x) ~ 1e-5 at x ~ 3.1; beta = 3.1 / rc.
  p.beta = 3.1 / rc;
  const double sigma = p.sigma();
  p.sigma_s = 0.85 * sigma / std::sqrt(2.0);
  p.rs = 4.2 * p.sigma_s;
  p.mesh = mesh;
  return p;
}

Gse::Gse(const PeriodicBox& box, const GseParams& p)
    : box_(box), p_(p), h_(box.side().x / p.mesh), fft_(p.mesh) {
  if (!box.is_cubic())
    throw std::invalid_argument("Gse: requires a cubic box");
  if (p.sigma_k2() < 0.0)
    throw std::invalid_argument("Gse: sigma_s too large for beta");
  // Precompute the k-space kernel on the DFT index grid.
  const int M = p_.mesh;
  const double L = box.side().x;
  green_.resize(mesh_total());
  const double sk2 = p_.sigma_k2();
  for (int nz = 0; nz < M; ++nz) {
    const int fz = (nz <= M / 2) ? nz : nz - M;
    for (int ny = 0; ny < M; ++ny) {
      const int fy = (ny <= M / 2) ? ny : ny - M;
      for (int nx = 0; nx < M; ++nx) {
        const int fx = (nx <= M / 2) ? nx : nx - M;
        const std::size_t idx = (static_cast<std::size_t>(nz) * M + ny) * M + nx;
        if (fx == 0 && fy == 0 && fz == 0) {
          green_[idx] = 0.0;  // k = 0: tinfoil boundary, neutral system
          continue;
        }
        const double kx = 2.0 * M_PI * fx / L;
        const double ky = 2.0 * M_PI * fy / L;
        const double kz = 2.0 * M_PI * fz / L;
        const double k2 = kx * kx + ky * ky + kz * kz;
        green_[idx] =
            units::kCoulomb * 4.0 * M_PI / k2 * std::exp(-0.5 * k2 * sk2);
      }
    }
  }
}

void Gse::spread(std::span<const Vec3d> pos, std::span<const double> q,
                 std::span<double> Q) const {
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const double qi = q[i];
    if (qi == 0.0) continue;
    for_each_mesh_point(pos[i], [&](std::size_t idx, const Vec3d&, double r2) {
      Q[idx] += qi * gaussian3d(r2, p_.sigma_s);
    });
  }
}

double Gse::convolve(std::span<const double> Q, std::span<double> phi) const {
  const std::size_t n = mesh_total();
  std::vector<fft::cplx> grid(n);
  for (std::size_t i = 0; i < n; ++i) grid[i] = {Q[i], 0.0};
  fft_.forward(grid);
  for (std::size_t i = 0; i < n; ++i) grid[i] *= green_[i];
  fft_.inverse(grid);
  const double h3 = h_ * h_ * h_;
  double energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    phi[i] = grid[i].real();
    energy += phi[i] * Q[i];
  }
  return 0.5 * h3 * energy;
}

void Gse::interpolate(std::span<const Vec3d> pos, std::span<const double> q,
                      std::span<const double> phi,
                      std::span<Vec3d> force) const {
  const double h3 = h_ * h_ * h_;
  const double inv_s2 = 1.0 / (p_.sigma_s * p_.sigma_s);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const double qi = q[i];
    if (qi == 0.0) continue;
    Vec3d f{0, 0, 0};
    for_each_mesh_point(pos[i],
                        [&](std::size_t idx, const Vec3d& dr, double r2) {
                          const double g = gaussian3d(r2, p_.sigma_s);
                          // F = -q grad_i sum phi G(r_i - r_m) h^3
                          //   = +q sum phi (dr / s^2) G h^3
                          f += dr * (phi[idx] * g);
                        });
    force[i] += f * (qi * h3 * inv_s2);
  }
}

double Gse::self_energy(std::span<const double> q) const {
  double s = 0.0;
  for (double qi : q) s += qi * qi;
  return -units::kCoulomb * p_.beta / std::sqrt(M_PI) * s;
}

}  // namespace anton::ewald
