#include "ewald/erfc_table.hpp"

#include <cmath>
#include <stdexcept>

namespace anton::ewald {

namespace {
constexpr double kTwoOverSqrtPi = 1.1283791670955126;

double erfc_deriv(double x) {
  return -kTwoOverSqrtPi * std::exp(-x * x);
}
}  // namespace

ErfcTable::ErfcTable(double x_max, double dx) {
  if (x_max <= 0.0 || dx <= 0.0)
    throw std::invalid_argument("ErfcTable: bad domain");
  const int n = static_cast<int>(std::ceil(x_max / dx));
  inv_dx_ = 1.0 / dx;
  x_max_ = n * dx;
  coef_.resize(4 * static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double x0 = k * dx;
    const double x1 = x0 + dx;
    const double f0 = std::erfc(x0);
    const double f1 = std::erfc(x1);
    // Derivatives in the local coordinate t = (x - x0)/dx.
    const double d0 = erfc_deriv(x0) * dx;
    const double d1 = erfc_deriv(x1) * dx;
    double* c = &coef_[4 * static_cast<std::size_t>(k)];
    // Cubic Hermite basis: p(0)=f0, p(1)=f1, p'(0)=d0, p'(1)=d1.
    c[0] = f0;
    c[1] = d0;
    c[2] = 3.0 * (f1 - f0) - 2.0 * d0 - d1;
    c[3] = 2.0 * (f0 - f1) + d0 + d1;
  }
  // Record the observed fit error (diagnostics + tests).
  double worst = 0.0;
  const int scan = 8 * n;
  for (int i = 0; i < scan; ++i) {
    const double x = (i + 0.5) * x_max_ / scan;
    const double err = std::fabs(std::erfc(x) - value(x));
    if (err > worst) worst = err;
  }
  max_error_ = worst;
}

double ErfcTable::slow_value(double x) const { return std::erfc(x); }

}  // namespace anton::ewald
