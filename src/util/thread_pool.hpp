// Deterministic fork-join thread pool.
//
// The engine's parallelism contract (Section 4 of the paper) is that the
// *results* of a parallel pass are bitwise independent of how the work is
// split, because every shared quantity is accumulated with wrapping
// fixed-point adds (associative and commutative) into per-lane shards.
// The pool therefore only has to guarantee memory safety, not any
// particular execution order. It still uses a static block partition so
// that per-lane intermediate state (shards, counters) is reproducible
// run-to-run, which makes failures debuggable.
//
// Structure: a pool of `lanes() - 1` worker threads plus the calling
// thread, which participates as lane 0. run_lanes(fn) invokes fn(lane)
// once per lane and blocks until all lanes finish (a fork-join barrier).
// Exceptions thrown by lane bodies are captured per lane and the
// lowest-lane exception is rethrown -- a deterministic choice no matter
// which lane faulted first in wall-clock time.
//
// Nested submits (run_lanes from inside a lane body) execute all lanes
// inline on the calling thread instead of deadlocking on the barrier;
// results are identical because of the order-invariance contract above.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace anton::util {

class ThreadPool {
 public:
  /// Creates a pool with `nthreads` lanes (clamped to >= 1). One lane is
  /// the calling thread; nthreads - 1 worker threads are spawned.
  explicit ThreadPool(int nthreads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int lanes() const { return nlanes_; }

  /// Runs fn(lane) once for every lane in [0, lanes()) and waits for all
  /// of them. Lane 0 runs on the calling thread. Rethrows the lowest-lane
  /// exception after the barrier.
  void run_lanes(const std::function<void(int)>& fn);

  /// Static block partition of [0, n): body(lane, begin, end) is invoked
  /// with disjoint contiguous ranges that cover [0, n) exactly once.
  /// Lanes whose range is empty are not invoked.
  void parallel_for(
      std::int64_t n,
      const std::function<void(int, std::int64_t, std::int64_t)>& body);

  /// The half-open range lane `lane` owns in a static partition of [0, n)
  /// over `nlanes` lanes: sizes differ by at most one, earlier lanes get
  /// the remainder. Pure function -- the partition depends only on
  /// (n, nlanes), never on timing.
  static std::pair<std::int64_t, std::int64_t> partition(std::int64_t n,
                                                         int nlanes,
                                                         int lane);

 private:
  void worker_loop(int lane);

  int nlanes_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  const std::function<void(int)>* job_ = nullptr;  // valid while pending_ > 0
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace anton::util
