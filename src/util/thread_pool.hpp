// Deterministic fork-join thread pool with budgeted task groups.
//
// The engine's parallelism contract (Section 4 of the paper) is that the
// *results* of a parallel pass are bitwise independent of how the work is
// split, because every shared quantity is accumulated with wrapping
// fixed-point adds (associative and commutative) into per-lane shards.
// The pool therefore only has to guarantee memory safety, not any
// particular execution order. It still uses a static block partition so
// that per-lane intermediate state (shards, counters) is reproducible
// run-to-run, which makes failures debuggable.
//
// Structure: the pool owns `lanes() - 1` worker threads servicing one
// shared task queue. A fork-join invocation (run_lanes) enqueues its
// lanes 1..k-1 onto the queue, executes lane 0 on the calling thread,
// then helps drain its own remaining lanes before blocking on the join
// barrier. Because which OS thread executes a lane is unobservable (the
// order-invariance contract above), this queueing design is bitwise
// identical to a dedicated fork-join pool -- and it additionally allows
// *several* fork-join callers to share the workers concurrently.
//
// That concurrent sharing is packaged as TaskGroup: a budgeted view of
// the pool with its own lane count (`budget`). Independent callers (the
// job runtime's executors, each driving its own engine) hold independent
// TaskGroups and fork-join through them simultaneously; a group's lanes
// beyond the caller's own thread are serviced by whichever workers are
// free, so a group can never consume more than `budget` threads at once
// -- the per-job thread cap the fair scheduler relies on. Lane bodies
// never block on the queue, so barriers cannot deadlock: every queued
// lane is eventually run by a worker or by its own waiting caller.
//
// Exceptions thrown by lane bodies are captured per lane and the
// lowest-lane exception is rethrown -- a deterministic choice no matter
// which lane faulted first in wall-clock time.
//
// Nested submits (run_lanes from inside a lane body) execute all lanes
// inline on the calling thread instead of deadlocking on the barrier;
// results are identical because of the order-invariance contract above.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace anton::util {

class ThreadPool {
 public:
  /// Creates a pool with `nthreads` lanes (clamped to >= 1). One lane is
  /// the calling thread; nthreads - 1 worker threads are spawned.
  explicit ThreadPool(int nthreads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int lanes() const { return nlanes_; }

  /// Runs fn(lane) once for every lane in [0, lanes()) and waits for all
  /// of them. Lane 0 runs on the calling thread. Rethrows the lowest-lane
  /// exception after the barrier.
  void run_lanes(const std::function<void(int)>& fn);

  /// Static block partition of [0, n): body(lane, begin, end) is invoked
  /// with disjoint contiguous ranges that cover [0, n) exactly once.
  /// Lanes whose range is empty are not invoked.
  void parallel_for(
      std::int64_t n,
      const std::function<void(int, std::int64_t, std::int64_t)>& body);

  /// The half-open range lane `lane` owns in a static partition of [0, n)
  /// over `nlanes` lanes: sizes differ by at most one, earlier lanes get
  /// the remainder. Pure function -- the partition depends only on
  /// (n, nlanes), never on timing.
  static std::pair<std::int64_t, std::int64_t> partition(std::int64_t n,
                                                         int nlanes,
                                                         int lane);

  /// A budgeted fork-join view of the pool: lanes() == budget, and
  /// run_lanes/parallel_for behave exactly like a dedicated
  /// ThreadPool(budget) -- bitwise identical results -- while borrowing
  /// at most budget - 1 of the shared workers per invocation. Groups are
  /// cheap value handles; independent groups may fork-join concurrently
  /// from different threads. A default-constructed group is a 1-lane
  /// inline executor (no pool attached).
  class TaskGroup {
   public:
    TaskGroup() = default;

    int lanes() const { return budget_; }

    /// Runs fn(lane) for every lane in [0, budget) and waits; lane 0 on
    /// the calling thread, the rest on shared workers (or inline, helped
    /// by the caller while it waits). Lowest-lane exception rethrown.
    void run_lanes(const std::function<void(int)>& fn);

    /// Static block partition of [0, n) over this group's budget lanes.
    void parallel_for(
        std::int64_t n,
        const std::function<void(int, std::int64_t, std::int64_t)>& body);

   private:
    friend class ThreadPool;
    TaskGroup(ThreadPool* pool, int budget) : pool_(pool), budget_(budget) {}
    ThreadPool* pool_ = nullptr;  // nullptr -> inline execution
    int budget_ = 1;
  };

  /// A budgeted view of this pool; budget is clamped to [1, lanes()].
  TaskGroup group(int budget);

 private:
  /// Join state for one in-flight fork (one run_lanes invocation).
  struct Fork {
    const std::function<void(int)>* fn = nullptr;
    int pending = 0;  // lanes enqueued or running, not yet finished
    std::vector<std::exception_ptr> errors;
    std::condition_variable done;
  };

  void worker_loop();
  void run_fork(const std::function<void(int)>& fn, int nlanes);
  static void execute_inline(const std::function<void(int)>& fn, int nlanes);

  int nlanes_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::deque<std::pair<Fork*, int>> queue_;  // (fork, lane)
  bool stop_ = false;
};

}  // namespace anton::util
