#include "util/thread_pool.hpp"

#include <algorithm>

namespace anton::util {

namespace {
// True while the current thread is executing a lane body (of any pool);
// used to run nested submits inline instead of deadlocking on the
// fork-join barrier.
thread_local bool tls_in_lane = false;

// Runs one lane body, capturing its exception into the fork's slot.
void run_lane_body(const std::function<void(int)>& fn, int lane,
                   std::exception_ptr& slot) {
  tls_in_lane = true;
  try {
    fn(lane);
  } catch (...) {
    slot = std::current_exception();
  }
  tls_in_lane = false;
}
}  // namespace

ThreadPool::ThreadPool(int nthreads) : nlanes_(std::max(1, nthreads)) {
  workers_.reserve(nlanes_ - 1);
  for (int i = 1; i < nlanes_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    auto [fork, lane] = queue_.front();
    queue_.pop_front();
    lk.unlock();
    std::exception_ptr err;
    run_lane_body(*fork->fn, lane, err);
    lk.lock();
    fork->errors[lane] = err;
    if (--fork->pending == 0) fork->done.notify_all();
  }
}

void ThreadPool::execute_inline(const std::function<void(int)>& fn,
                                int nlanes) {
  // Single lane, or a nested submit from inside a lane body: execute
  // every lane inline on this thread. The order-invariant accumulation
  // contract makes the result identical to the threaded execution.
  std::exception_ptr first;
  for (int lane = 0; lane < nlanes; ++lane) {
    const bool saved = tls_in_lane;
    tls_in_lane = true;
    try {
      fn(lane);
    } catch (...) {
      if (!first) first = std::current_exception();
    }
    tls_in_lane = saved;
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::run_fork(const std::function<void(int)>& fn, int nlanes) {
  if (nlanes <= 1 || tls_in_lane) {
    execute_inline(fn, nlanes);
    return;
  }

  Fork fork;
  fork.fn = &fn;
  fork.pending = nlanes - 1;
  fork.errors.assign(nlanes, nullptr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int lane = 1; lane < nlanes; ++lane) queue_.emplace_back(&fork, lane);
  }
  cv_work_.notify_all();

  run_lane_body(fn, 0, fork.errors[0]);

  std::unique_lock<std::mutex> lk(mu_);
  // Help drain this fork's still-queued lanes while waiting: keeps the
  // caller busy when all workers are serving other groups, and makes
  // progress possible even if every worker is blocked elsewhere.
  for (;;) {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const auto& e) { return e.first == &fork; });
    if (it == queue_.end()) break;  // drained; lanes never requeue
    const int lane = it->second;
    queue_.erase(it);
    lk.unlock();
    std::exception_ptr err;
    run_lane_body(fn, lane, err);
    lk.lock();
    fork.errors[lane] = err;
    --fork.pending;
  }
  fork.done.wait(lk, [&] { return fork.pending == 0; });
  lk.unlock();

  // Deterministic propagation: the lowest faulting lane wins, independent
  // of which lane hit its exception first in wall-clock time.
  for (int lane = 0; lane < nlanes; ++lane)
    if (fork.errors[lane]) std::rethrow_exception(fork.errors[lane]);
}

void ThreadPool::run_lanes(const std::function<void(int)>& fn) {
  run_fork(fn, nlanes_);
}

void ThreadPool::parallel_for(
    std::int64_t n,
    const std::function<void(int, std::int64_t, std::int64_t)>& body) {
  if (n <= 0) return;
  run_lanes([&](int lane) {
    const auto [begin, end] = partition(n, nlanes_, lane);
    if (begin < end) body(lane, begin, end);
  });
}

std::pair<std::int64_t, std::int64_t> ThreadPool::partition(std::int64_t n,
                                                            int nlanes,
                                                            int lane) {
  const std::int64_t chunk = n / nlanes;
  const std::int64_t rem = n % nlanes;
  const std::int64_t begin =
      lane * chunk + std::min<std::int64_t>(lane, rem);
  const std::int64_t end = begin + chunk + (lane < rem ? 1 : 0);
  return {begin, end};
}

ThreadPool::TaskGroup ThreadPool::group(int budget) {
  return TaskGroup(this, std::clamp(budget, 1, nlanes_));
}

void ThreadPool::TaskGroup::run_lanes(const std::function<void(int)>& fn) {
  if (!pool_) {
    ThreadPool::execute_inline(fn, budget_);
    return;
  }
  pool_->run_fork(fn, budget_);
}

void ThreadPool::TaskGroup::parallel_for(
    std::int64_t n,
    const std::function<void(int, std::int64_t, std::int64_t)>& body) {
  if (n <= 0) return;
  run_lanes([&](int lane) {
    const auto [begin, end] = partition(n, budget_, lane);
    if (begin < end) body(lane, begin, end);
  });
}

}  // namespace anton::util
