#include "util/thread_pool.hpp"

#include <algorithm>

namespace anton::util {

namespace {
// True while the current thread is executing a lane body (of any pool);
// used to run nested submits inline instead of deadlocking on the
// fork-join barrier.
thread_local bool tls_in_lane = false;
}  // namespace

ThreadPool::ThreadPool(int nthreads) : nlanes_(std::max(1, nthreads)) {
  errors_.assign(nlanes_, nullptr);
  workers_.reserve(nlanes_ - 1);
  for (int lane = 1; lane < nlanes_; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int lane) {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* job = job_;
    lk.unlock();
    std::exception_ptr err;
    tls_in_lane = true;
    try {
      (*job)(lane);
    } catch (...) {
      err = std::current_exception();
    }
    tls_in_lane = false;
    lk.lock();
    errors_[lane] = err;
    if (--pending_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::run_lanes(const std::function<void(int)>& fn) {
  if (nlanes_ == 1 || tls_in_lane) {
    // Single lane, or a nested submit from inside a lane body: execute
    // every lane inline on this thread. The order-invariant accumulation
    // contract makes the result identical to the threaded execution.
    std::exception_ptr first;
    for (int lane = 0; lane < nlanes_; ++lane) {
      try {
        fn(lane);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    std::fill(errors_.begin(), errors_.end(), nullptr);
    job_ = &fn;
    pending_ = nlanes_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr err0;
  tls_in_lane = true;
  try {
    fn(0);
  } catch (...) {
    err0 = std::current_exception();
  }
  tls_in_lane = false;

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
  job_ = nullptr;
  errors_[0] = err0;
  // Deterministic propagation: the lowest faulting lane wins, independent
  // of which lane hit its exception first in wall-clock time.
  for (int lane = 0; lane < nlanes_; ++lane)
    if (errors_[lane]) std::rethrow_exception(errors_[lane]);
}

void ThreadPool::parallel_for(
    std::int64_t n,
    const std::function<void(int, std::int64_t, std::int64_t)>& body) {
  if (n <= 0) return;
  run_lanes([&](int lane) {
    const auto [begin, end] = partition(n, nlanes_, lane);
    if (begin < end) body(lane, begin, end);
  });
}

std::pair<std::int64_t, std::int64_t> ThreadPool::partition(std::int64_t n,
                                                            int nlanes,
                                                            int lane) {
  const std::int64_t chunk = n / nlanes;
  const std::int64_t rem = n % nlanes;
  const std::int64_t begin =
      lane * chunk + std::min<std::int64_t>(lane, rem);
  const std::int64_t end = begin + chunk + (lane < rem ? 1 : 0);
  return {begin, end};
}

}  // namespace anton::util
