#include "util/rng.hpp"

#include <cmath>

namespace anton {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Xoshiro256::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on (0,1] uniforms to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  // Debiased modulo via rejection; n is small in all our uses.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return x % n;
}

}  // namespace anton
