// Deterministic pseudo-random number generation.
//
// Every stochastic choice in this codebase (system construction, initial
// velocities, synthetic experiment noise) flows through this generator so
// that repeated runs -- and runs on different virtual-node counts -- are
// bitwise reproducible. The generator is xoshiro256** seeded via SplitMix64,
// a small, well-studied combination with 256 bits of state.
#pragma once

#include <cstdint>

namespace anton {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box-Muller; consumes two uniforms per pair).
  double normal();

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace anton
