// Physical units and constants used throughout the library.
//
// Internal unit system (the "academic" MD convention):
//   length  : angstrom (A)
//   time    : femtosecond (fs)
//   mass    : atomic mass unit (amu, g/mol)
//   energy  : kcal/mol
//   charge  : elementary charge (e)
//   temperature : kelvin (K)
//
// Derived conversions are provided as constexpr factors so every kernel
// agrees bit-for-bit on the constants it uses.
#pragma once

namespace anton::units {

/// Boltzmann constant, kcal/(mol K).
inline constexpr double kB = 1.987204259e-3;

/// Coulomb constant: E = kCoulomb * q1*q2 / r with q in e, r in A,
/// E in kcal/mol.
inline constexpr double kCoulomb = 332.06371;

/// Converts (kcal/mol/A) / amu to acceleration in A/fs^2.
/// 1 kcal/mol/A / 1 amu = 4.184e26 A/s^2 = 4.184e-4 A/fs^2.
inline constexpr double kForceToAccel = 4.184e-4;

/// Femtoseconds per day of wall-clock time (used for us/day rate math).
inline constexpr double kFsPerDay = 86400.0e15;

/// Microseconds of simulated time per femtosecond.
inline constexpr double kUsPerFs = 1.0e-9;

}  // namespace anton::units
