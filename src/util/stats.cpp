#include "util/stats.hpp"

#include <cmath>

namespace anton {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  LinearFit f;
  const std::size_t n = x.size();
  if (n < 2 || y.size() != n) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  return f;
}

double rms(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

}  // namespace anton
