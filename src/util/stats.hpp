// Small statistics helpers shared by analysis code and benchmarks.
#pragma once

#include <cstddef>
#include <span>

namespace anton {

/// Running mean/variance (Welford). Numerically stable for long series.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ordinary least-squares fit y = a + b*x; returns {intercept, slope}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_line(std::span<const double> x, std::span<const double> y);

/// Root-mean-square of a series.
double rms(std::span<const double> v);

}  // namespace anton
