#include "htis/pair_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "ewald/kernels.hpp"

namespace anton::htis {

PairKernels::PairKernels(const PairKernelParams& p,
                         const std::vector<LJType>& types)
    : p_(p), ntypes_(static_cast<int>(types.size())) {
  a_.resize(static_cast<std::size_t>(ntypes_) * ntypes_);
  b_.resize(a_.size());
  for (int i = 0; i < ntypes_; ++i) {
    for (int j = 0; j < ntypes_; ++j) {
      // Lorentz-Berthelot combining.
      const double sigma = 0.5 * (types[i].sigma + types[j].sigma);
      const double eps = std::sqrt(types[i].epsilon * types[j].epsilon);
      a_[idx(i, j)] = ewald::lj_A(sigma, eps);
      b_[idx(i, j)] = ewald::lj_B(sigma, eps);
    }
  }

  const double R = p.cutoff;
  const double u_min = (p.r_min * p.r_min) / (R * R);
  auto r_of = [R](double u) { return R * std::sqrt(u); };

  // Energy tables are POTENTIAL-SHIFTED to vanish at the cutoff, so pairs
  // entering/leaving the range-limited set cause no energy discontinuity
  // (forces are unaffected; this is the standard truncation treatment and
  // what keeps NVE drift down).
  const double e_elec_rc = ewald::coul_direct_energy(R, p_.beta);
  const double rc2 = R * R;
  const double e12_rc = 1.0 / std::pow(rc2, 6);
  const double e6_rc = 1.0 / (rc2 * rc2 * rc2);
  f_elec_ = tables::TieredTable::build(
      [&](double u) {
        const double r = r_of(u);
        return ewald::coul_direct_force(r, p_.beta);
      },
      p.layout, p.mantissa_bits, u_min);
  e_elec_ = tables::TieredTable::build(
      [&](double u) {
        return ewald::coul_direct_energy(r_of(u), p_.beta) - e_elec_rc;
      },
      p.layout, p.mantissa_bits, u_min);
  f_lj12_ = tables::TieredTable::build(
      [&](double u) {
        const double r2 = u * R * R;
        return 12.0 / (r2 * r2 * r2 * r2 * r2 * r2 * r2);
      },
      p.layout_vdw, p.mantissa_bits, u_min);
  e_lj12_ = tables::TieredTable::build(
      [&](double u) {
        const double r2 = u * R * R;
        return 1.0 / (r2 * r2 * r2 * r2 * r2 * r2) - e12_rc;
      },
      p.layout_vdw, p.mantissa_bits, u_min);
  f_lj6_ = tables::TieredTable::build(
      [&](double u) {
        const double r2 = u * R * R;
        return 6.0 / (r2 * r2 * r2 * r2);
      },
      p.layout_vdw, p.mantissa_bits, u_min);
  e_lj6_ = tables::TieredTable::build(
      [&](double u) {
        const double r2 = u * R * R;
        return 1.0 / (r2 * r2 * r2) - e6_rc;
      },
      p.layout_vdw, p.mantissa_bits, u_min);
  g_spread_ = tables::TieredTable::build(
      [&](double u) {
        return ewald::gaussian3d(u * p_.rs * p_.rs, p_.sigma_s);
      },
      p.layout, p.mantissa_bits, 0.0);

  inv_cut2_ = 1.0 / (R * R);
  inv_rs2_ = 1.0 / (p.rs * p.rs);
}

PairForceEnergy PairKernels::eval_nonbonded(double r2, double qiqj, int ti,
                                            int tj, bool with_energy) const {
  const double u = r2 * inv_cut2_;
  const double A = a_[idx(ti, tj)];
  const double B = b_[idx(ti, tj)];
  PairForceEnergy out;
  out.force_coef = qiqj * f_elec_.eval_fixed(u) + A * f_lj12_.eval_fixed(u) -
                   B * f_lj6_.eval_fixed(u);
  if (with_energy) {
    out.energy_elec = qiqj * e_elec_.eval_fixed(u);
    out.energy_lj = A * e_lj12_.eval_fixed(u) - B * e_lj6_.eval_fixed(u);
  }
  return out;
}

void PairKernels::eval_nonbonded_coef_n(std::size_t n, const double* r2,
                                        const double* qq, const double* a,
                                        const double* b, double* coef) const {
  // Per-thread scratch: PairKernels is shared read-only across engine
  // lanes, so batch intermediates cannot live in members.
  thread_local std::vector<double> u, fe, f12, f6;
  u.resize(n);
  fe.resize(n);
  f12.resize(n);
  f6.resize(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = r2[i] * inv_cut2_;
  f_elec_.eval_fixed_n(u.data(), fe.data(), n);
  f_lj12_.eval_fixed_n(u.data(), f12.data(), n);
  f_lj6_.eval_fixed_n(u.data(), f6.data(), n);
  // Same association as eval_nonbonded: (qq*fe + A*f12) - B*f6.
  for (std::size_t i = 0; i < n; ++i)
    coef[i] = qq[i] * fe[i] + a[i] * f12[i] - b[i] * f6[i];
}

double PairKernels::eval_spread(double r2) const {
  return g_spread_.eval_fixed(r2 * inv_rs2_);
}

void PairKernels::eval_spread_n(std::size_t n, const double* r2,
                                double* g) const {
  thread_local std::vector<double> u;
  u.resize(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = r2[i] * inv_rs2_;
  g_spread_.eval_fixed_n(u.data(), g, n);
}

double PairKernels::eval_interp(double r2) const {
  return g_spread_.eval_fixed(r2 * inv_rs2_);
}

void PairKernels::eval_interp_n(std::size_t n, const double* r2,
                                double* g) const {
  eval_spread_n(n, r2, g);
}

double PairKernels::worst_force_table_error() const {
  return std::max({f_elec_.max_fit_error(), f_lj12_.max_fit_error(),
                   f_lj6_.max_fit_error(), g_spread_.max_fit_error()});
}

}  // namespace anton::htis
