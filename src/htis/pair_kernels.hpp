// PPIP pair-kernel emulation.
//
// "Each PPIP computes two arbitrary functions of a distance r, to evaluate
// the electrostatic and van der Waals forces between two atoms"
// (Section 4), as tabulated piecewise-cubic polynomials indexed by r^2.
// This class owns those tables -- direct-space Ewald electrostatics and
// the two Lennard-Jones terms, for force and energy, plus the Gaussian
// kernels for charge spreading and force interpolation -- all built over
// the tiered layout with block-floating-point coefficients, and evaluates
// pairs through the integer (PPIP-datapath) path.
//
// Conventions: u = r^2 / R^2 in [0, 1). Force tables return the scalar
// coefficient c with F_on_i = c * (r_i - r_j); energy tables return the
// pair energy. Per-pair parameters (q_i q_j, LJ A/B by type pair) are the
// PPIP's "user-specified parameter values".
#pragma once

#include <vector>

#include "ff/topology.hpp"
#include "tables/tiered_table.hpp"

namespace anton::htis {

struct PairKernelParams {
  double cutoff = 13.0;  // direct-space cutoff R (A)
  double beta = 0.25;    // Ewald splitting (1/A)
  double sigma_s = 1.0;  // GSE spreading Gaussian width (A)
  double rs = 5.0;       // GSE spreading cutoff (A)
  int mantissa_bits = 22;
  /// Electrostatic-table layout (the paper's Section 4 example).
  tables::TieredLayout layout = tables::TieredLayout::anton_default();
  /// Van der Waals-table layout: the PPIP's two function evaluators are
  /// configured independently ("user-specified lookup tables"), and the
  /// r^-14 kernel needs a denser mid-range than erfc does -- with a 13 A
  /// cutoff, sigma-contact repulsion lands in (r/R)^2 ~ 0.03-0.08, where
  /// the electrostatic layout's third tier is coarse.
  tables::TieredLayout layout_vdw = tables::TieredLayout{{
      {0.0, 96},
      {1.0 / 128.0, 128},
      {1.0 / 32.0, 192},
      {1.0 / 4.0, 48},
  }};
  /// Minimum pair distance the LJ tables resolve (clamped below), A.
  double r_min = 0.8;
};

struct PairForceEnergy {
  double force_coef = 0.0;  // F_i = force_coef * dr (dr = r_i - r_j)
  double energy_elec = 0.0;
  double energy_lj = 0.0;
};

class PairKernels {
 public:
  PairKernels() = default;
  PairKernels(const PairKernelParams& p, const std::vector<LJType>& types);

  const PairKernelParams& params() const { return p_; }

  /// Direct-space nonbonded interaction through the PPIP datapath.
  /// r2 in A^2 (must be < cutoff^2), qiqj the charge product, (ti, tj)
  /// the LJ types. Set with_energy to also evaluate the energy tables.
  PairForceEnergy eval_nonbonded(double r2, double qiqj, int ti, int tj,
                                 bool with_energy) const;

  /// Batched force-coefficient evaluation: coef[i] is bitwise equal to
  /// eval_nonbonded(r2[i], qq[i], ti, tj, false).force_coef where the
  /// caller has pre-gathered a[i] = lj_a(ti, tj), b[i] = lj_b(ti, tj).
  /// All three tables run their vectorized eval_fixed_n path.
  void eval_nonbonded_coef_n(std::size_t n, const double* r2,
                             const double* qq, const double* a,
                             const double* b, double* coef) const;

  /// Charge-spreading kernel: Gaussian density value at r2 (<= rs^2).
  double eval_spread(double r2) const;

  /// Batched spreading kernel: g[i] == eval_spread(r2[i]) bitwise.
  void eval_spread_n(std::size_t n, const double* r2, double* g) const;

  /// Force-interpolation kernel: the same Gaussian; the caller multiplies
  /// by q_i phi_m h^3 / sigma_s^2 and the displacement vector.
  double eval_interp(double r2) const;

  /// Batched interpolation kernel: g[i] == eval_interp(r2[i]) bitwise.
  void eval_interp_n(std::size_t n, const double* r2, double* g) const;

  /// Worst-case fit error across the force tables (diagnostics).
  double worst_force_table_error() const;

  /// LJ A/B combined parameters for a type pair.
  double lj_a(int ti, int tj) const { return a_[idx(ti, tj)]; }
  double lj_b(int ti, int tj) const { return b_[idx(ti, tj)]; }

 private:
  std::size_t idx(int ti, int tj) const {
    return static_cast<std::size_t>(ti) * ntypes_ + tj;
  }

  PairKernelParams p_;
  int ntypes_ = 0;
  std::vector<double> a_, b_;  // type-pair LJ coefficients
  // Tables over u = r^2/R^2.
  tables::TieredTable f_elec_, e_elec_;  // erfc kernels (per unit qq)
  tables::TieredTable f_lj12_, e_lj12_;  // 12/r^14 and 1/r^12
  tables::TieredTable f_lj6_, e_lj6_;    // 6/r^8 and 1/r^6
  // Tables over u = r^2/rs^2.
  tables::TieredTable g_spread_;
  double inv_cut2_ = 0.0;
  double inv_rs2_ = 0.0;
};

}  // namespace anton::htis
