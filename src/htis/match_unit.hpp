// Match-unit emulation: the low-precision distance check (Figure 4b).
//
// Each PPIP is fed by eight match units that "consider pairs of atoms and
// determine whether they may be required to interact"; pairs that pass
// move through a concentrator into the PPIP input queue. The check is
// conservative: it may pass pairs that the exact cutoff test later
// rejects, but must never reject a pair within the cutoff. We emulate the
// 8-bit datapath of the hardware by truncating each |delta| component to
// its top 8 bits (a lower bound), so the squared-distance estimate is a
// lower bound on the true squared distance.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "geom/vec3.hpp"

namespace anton::htis {

/// Lower-bound squared distance from 8-bit truncated lattice deltas.
inline std::uint64_t low_precision_r2(const Vec3i& d) {
  auto lb = [](std::int32_t c) {
    // |c| truncated to its top 8 bits (floor): a lower bound on |c|.
    std::uint32_t a = static_cast<std::uint32_t>(c < 0 ? -static_cast<std::int64_t>(c) : c);
    a &= 0xff000000u;
    return static_cast<std::uint64_t>(a);
  };
  const std::uint64_t x = lb(d.x), y = lb(d.y), z = lb(d.z);
  return x * x + y * y + z * z;
}

/// Conservative pass/fail: true if the pair may be within the cutoff
/// (r2_limit_lattice is the exact lattice-unit squared-cutoff threshold).
inline bool match_plausible(const Vec3i& d, std::uint64_t r2_limit_lattice) {
  return low_precision_r2(d) <= r2_limit_lattice;
}

/// Exact squared distance in lattice units (fits in uint64: each
/// component squared is at most 2^62).
inline std::uint64_t exact_r2_lattice(const Vec3i& d) {
  const std::int64_t x = d.x, y = d.y, z = d.z;
  return static_cast<std::uint64_t>(x * x) +
         static_cast<std::uint64_t>(y * y) +
         static_cast<std::uint64_t>(z * z);
}

}  // namespace anton::htis
