#include "fft/fft3d.hpp"

#include <stdexcept>

namespace anton::fft {

Fft3D::Fft3D(std::size_t n) : n_(n), line_(n) {}

void Fft3D::all_lines(std::vector<cplx>& grid, int axis, bool inverse) const {
  const std::size_t n = n_;
  // Line starts and strides for each axis; lines are processed in a fixed
  // canonical order so the arithmetic sequence never depends on who owns
  // which pencil in a distributed setting.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      std::size_t start, stride;
      switch (axis) {
        case 0:  // x lines, indexed by (y=a, z=b)
          start = (b * n + a) * n;
          stride = 1;
          break;
        case 1:  // y lines, indexed by (x=a, z=b)
          start = (b * n) * n + a;
          stride = n;
          break;
        default:  // z lines, indexed by (x=a, y=b)
          start = b * n + a;
          stride = n * n;
          break;
      }
      if (inverse)
        line_.inverse_strided(grid.data() + start, stride);
      else
        line_.forward_strided(grid.data() + start, stride);
    }
  }
}

void Fft3D::forward(std::vector<cplx>& grid) const {
  if (grid.size() != total()) throw std::invalid_argument("Fft3D: bad grid size");
  all_lines(grid, 0, false);
  all_lines(grid, 1, false);
  all_lines(grid, 2, false);
}

void Fft3D::inverse(std::vector<cplx>& grid) const {
  if (grid.size() != total()) throw std::invalid_argument("Fft3D: bad grid size");
  all_lines(grid, 2, true);
  all_lines(grid, 1, true);
  all_lines(grid, 0, true);
}

}  // namespace anton::fft
