// Iterative radix-2 complex FFT.
//
// Anton's 3D FFT (Section 3.2.2, and Young et al. 2009) decomposes into
// sets of 1-D FFTs along each axis. We implement the 1-D kernel once, with
// a fixed butterfly order and precomputed twiddles, so that every caller --
// serial or distributed -- performs bitwise-identical arithmetic on each
// line. That property is what makes the distributed transform bitwise
// invariant to the node decomposition.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace anton::fft {

using cplx = std::complex<double>;

/// A cached plan (bit-reversal permutation + twiddle factors) for a fixed
/// power-of-two length.
class Fft1D {
 public:
  explicit Fft1D(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT (sign -1 convention), stride-1 data.
  void forward(cplx* data) const;

  /// In-place inverse DFT, including the 1/n normalization.
  void inverse(cplx* data) const;

  /// Strided transforms gather into a contiguous scratch line first; the
  /// arithmetic applied to the line is identical to the stride-1 case.
  void forward_strided(cplx* data, std::size_t stride) const;
  void inverse_strided(cplx* data, std::size_t stride) const;

 private:
  void transform(cplx* data, bool inverse) const;

  std::size_t n_;
  std::vector<std::size_t> bitrev_;
  std::vector<cplx> twiddle_fwd_;  // e^{-2 pi i k / n}
  std::vector<cplx> twiddle_inv_;  // e^{+2 pi i k / n}
  mutable std::vector<cplx> scratch_;
};

}  // namespace anton::fft
