// 3-D FFT over a cubic mesh, expressed as axis-ordered sets of 1-D FFTs
// (the same decomposition Anton parallelizes across its torus). Data is
// row-major with x fastest: index = (z * n + y) * n + x.
#pragma once

#include <memory>
#include <vector>

#include "fft/fft1d.hpp"

namespace anton::fft {

class Fft3D {
 public:
  explicit Fft3D(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t total() const { return n_ * n_ * n_; }

  void forward(std::vector<cplx>& grid) const;
  void inverse(std::vector<cplx>& grid) const;

 private:
  void all_lines(std::vector<cplx>& grid, int axis, bool inverse) const;

  std::size_t n_;
  Fft1D line_;
};

}  // namespace anton::fft
