#include "fft/fft1d.hpp"

#include <cmath>
#include <stdexcept>

namespace anton::fft {

Fft1D::Fft1D(std::size_t n) : n_(n) {
  if (n == 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("Fft1D: length must be a power of two");
  bitrev_.resize(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    bitrev_[i] = r;
  }
  twiddle_fwd_.resize(n / 2);
  twiddle_inv_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
    twiddle_fwd_[k] = {std::cos(ang), std::sin(ang)};
    twiddle_inv_[k] = {std::cos(ang), -std::sin(ang)};
  }
  scratch_.resize(n);
}

void Fft1D::transform(cplx* data, bool inverse) const {
  const auto& tw = inverse ? twiddle_inv_ : twiddle_fwd_;
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (j > i) std::swap(data[i], data[j]);
  }
  // Fixed-order butterflies.
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx w = tw[k * step];
        cplx& a = data[start + k];
        cplx& b = data[start + k + half];
        const cplx t = b * w;
        b = a - t;
        a = a + t;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
  }
}

void Fft1D::forward(cplx* data) const { transform(data, false); }
void Fft1D::inverse(cplx* data) const { transform(data, true); }

void Fft1D::forward_strided(cplx* data, std::size_t stride) const {
  for (std::size_t i = 0; i < n_; ++i) scratch_[i] = data[i * stride];
  transform(scratch_.data(), false);
  for (std::size_t i = 0; i < n_; ++i) data[i * stride] = scratch_[i];
}

void Fft1D::inverse_strided(cplx* data, std::size_t stride) const {
  for (std::size_t i = 0; i < n_; ++i) scratch_[i] = data[i * stride];
  transform(scratch_.data(), true);
  for (std::size_t i = 0; i < n_; ++i) data[i * stride] = scratch_[i];
}

}  // namespace anton::fft
