// Communication plan for the distributed 3-D FFT (Section 3.2.2 and Young
// et al., "A 32x32x32, spatially distributed 3D FFT in four microseconds
// on Anton").
//
// The mesh is block-distributed over an nx x ny x nz node torus (the same
// spatial decomposition as the particles). Each of the three axis stages
// transforms full 1-D lines; a line along axis A spans every node in that
// torus row, so before the stage each node exchanges its line segments
// with the other nodes of the row, and after the stage sends results back.
// This "straightforward decomposition into sets of one-dimensional FFTs"
// sends hundreds of small messages per node -- exactly the regime Anton's
// low-latency links favor (Section 3.2).
//
// This class computes, per node and per stage, the message and byte counts
// that the machine performance model consumes; the numerical transform
// itself is performed by Fft3D (whose per-line arithmetic is what each
// node would execute, so results are bitwise decomposition-independent).
#pragma once

#include <cstddef>

#include "geom/vec3.hpp"

namespace anton::fft {

struct FftStageComm {
  /// Messages each node sends during the stage (gather + scatter).
  std::size_t messages_per_node = 0;
  /// Payload bytes each node sends during the stage.
  std::size_t bytes_per_node = 0;
  /// Complex points each node transforms during the stage.
  std::size_t points_per_node = 0;
  /// 1-D FFT lines each node computes during the stage.
  std::size_t lines_per_node = 0;
  /// Maximum hop distance of any message in the stage (torus hops).
  int max_hops = 0;
};

struct DistFftPlan {
  std::size_t mesh = 0;       // mesh points per axis
  Vec3i nodes{1, 1, 1};       // torus extent
  std::size_t bytes_per_point = 16;  // complex<double>-equivalent payload

  /// Plan one axis stage (0 = x, 1 = y, 2 = z) of a forward or inverse
  /// transform; forward and inverse stages have identical communication.
  FftStageComm stage(int axis) const;

  /// Sum over the three stages of one transform direction.
  FftStageComm one_direction_total() const;
};

}  // namespace anton::fft
