#include "fft/dist_plan.hpp"

#include <algorithm>

namespace anton::fft {

FftStageComm DistFftPlan::stage(int axis) const {
  FftStageComm c;
  const std::size_t n = mesh;
  const int pa = (axis == 0) ? nodes.x : (axis == 1 ? nodes.y : nodes.z);
  const std::size_t nodes_total =
      static_cast<std::size_t>(nodes.x) * nodes.y * nodes.z;
  const std::size_t points_total = n * n * n;
  const std::size_t points_per_node = points_total / nodes_total;

  // Lines along `axis`: n^2 of them, distributed over the (pb * pc) node
  // columns perpendicular to the axis; each torus row of pa nodes
  // cooperates on its share of lines. Line ownership within a row is
  // round-robin, so each node computes lines_per_node full lines.
  const std::size_t rows = nodes_total / static_cast<std::size_t>(pa);
  const std::size_t lines_total = n * n;
  const std::size_t lines_per_row = lines_total / rows;
  c.lines_per_node = (lines_per_row + pa - 1) / pa;
  c.points_per_node = c.lines_per_node * n;

  // Gather: each node owns a segment of length n/pa of every line in its
  // row; it sends each segment that belongs to a line computed elsewhere
  // (pa-1 of every pa lines) as one message to the computing node, and
  // symmetrically receives. Scatter reverses the exchange.
  if (pa > 1) {
    const std::size_t segments_sent =
        lines_per_row - c.lines_per_node;  // segments going to other nodes
    c.messages_per_node = 2 * segments_sent;  // gather + scatter
    const std::size_t seg_len = n / static_cast<std::size_t>(pa);
    c.bytes_per_node = c.messages_per_node * seg_len * bytes_per_point;
    c.max_hops = pa / 2;  // torus: worst case half-way around the ring
  }
  (void)points_per_node;
  return c;
}

FftStageComm DistFftPlan::one_direction_total() const {
  FftStageComm t;
  for (int a = 0; a < 3; ++a) {
    const FftStageComm s = stage(a);
    t.messages_per_node += s.messages_per_node;
    t.bytes_per_node += s.bytes_per_node;
    t.points_per_node += s.points_per_node;
    t.lines_per_node += s.lines_per_node;
    t.max_hops = std::max(t.max_hops, s.max_hops);
  }
  return t;
}

}  // namespace anton::fft
