// Structural and transport observables: radial distribution functions,
// optimal-superposition RMSD (Kabsch), and mean-square displacement.
//
// These are the standard sanity instruments for an MD engine: liquid
// water must show the ~2.8 A O-O first solvation peak, a rigid body must
// have zero Kabsch RMSD to any rotated copy of itself, and diffusive
// motion must have MSD linear in time. They also back the repository's
// examples (hydration structure around the solvated peptides).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::analysis {

/// Radial distribution function accumulator for one point set (e.g. water
/// oxygens). Accumulate frames, then g(r) bins are normalized against the
/// ideal-gas shell counts.
class Rdf {
 public:
  Rdf(double r_max, int bins);

  void add_frame(std::span<const Vec3d> pos, const PeriodicBox& box);

  /// Normalized g(r) per bin (empty before any frame).
  std::vector<double> g() const;
  /// Bin-center radii.
  std::vector<double> r() const;

  /// Location of the first maximum of g(r) beyond r_min (A); 0 if none.
  double first_peak(double r_min = 1.0) const;

 private:
  double r_max_;
  int bins_;
  std::vector<double> counts_;
  std::int64_t frames_ = 0;
  std::int64_t atoms_ = 0;
  double volume_ = 0.0;
};

/// Root-mean-square deviation after optimal rigid superposition (Kabsch).
/// Both sets are centered; the optimal rotation comes from the SVD-free
/// quaternion formulation (largest eigenvalue of the 4x4 key matrix).
double rmsd_kabsch(std::span<const Vec3d> a, std::span<const Vec3d> b);

/// Mean-square displacement tracker with periodic unwrapping: feed
/// wrapped positions each frame; displacement jumps larger than half the
/// box are unwrapped. msd(k) is the average over atoms of
/// |r(t_k) - r(t_0)|^2.
class Msd {
 public:
  explicit Msd(const PeriodicBox& box);
  void add_frame(std::span<const Vec3d> pos);
  const std::vector<double>& msd() const { return msd_; }

  /// Self-diffusion coefficient from a linear fit of the tail
  /// (A^2 per frame-interval / 6); multiply by frame spacing to get D.
  double slope_per_frame() const;

 private:
  PeriodicBox box_;
  std::vector<Vec3d> origin_, prev_, unwrapped_;
  std::vector<double> msd_;
};

}  // namespace anton::analysis
