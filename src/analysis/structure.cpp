#include "analysis/structure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pairlist/cell_grid.hpp"
#include "util/stats.hpp"

namespace anton::analysis {

Rdf::Rdf(double r_max, int bins) : r_max_(r_max), bins_(bins) {
  if (r_max <= 0 || bins <= 0) throw std::invalid_argument("Rdf: bad params");
  counts_.assign(bins, 0.0);
}

void Rdf::add_frame(std::span<const Vec3d> pos, const PeriodicBox& box) {
  pairlist::CellGrid grid(box, std::max(r_max_, 3.0));
  grid.bin(pos);
  grid.for_each_pair(pos, r_max_,
                     [&](std::int32_t, std::int32_t, const Vec3d&,
                         double r2) {
                       const double r = std::sqrt(r2);
                       const int b = static_cast<int>(r / r_max_ * bins_);
                       if (b >= 0 && b < bins_) counts_[b] += 2.0;  // i and j
                     });
  ++frames_;
  atoms_ = static_cast<std::int64_t>(pos.size());
  volume_ = box.volume();
}

std::vector<double> Rdf::g() const {
  std::vector<double> out(bins_, 0.0);
  if (frames_ == 0 || atoms_ < 2) return out;
  const double rho = atoms_ / volume_;
  const double dr = r_max_ / bins_;
  for (int b = 0; b < bins_; ++b) {
    const double r_lo = b * dr, r_hi = r_lo + dr;
    const double shell =
        4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = rho * shell * atoms_;
    out[b] = counts_[b] / (frames_ * ideal);
  }
  return out;
}

std::vector<double> Rdf::r() const {
  std::vector<double> out(bins_);
  const double dr = r_max_ / bins_;
  for (int b = 0; b < bins_; ++b) out[b] = (b + 0.5) * dr;
  return out;
}

double Rdf::first_peak(double r_min) const {
  const std::vector<double> gv = g();
  const std::vector<double> rv = r();
  int best = -1;
  for (int b = 1; b + 1 < bins_; ++b) {
    if (rv[b] < r_min) continue;
    if (gv[b] >= gv[b - 1] && gv[b] >= gv[b + 1] && gv[b] > 1.2) {
      best = b;
      break;
    }
  }
  return best >= 0 ? rv[best] : 0.0;
}

// ---------------------------------------------------------------------------

double rmsd_kabsch(std::span<const Vec3d> a, std::span<const Vec3d> b) {
  const std::size_t n = a.size();
  if (n == 0 || b.size() != n) return 0.0;
  // Center both sets.
  Vec3d ca{0, 0, 0}, cb{0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    ca += a[i];
    cb += b[i];
  }
  ca = ca / static_cast<double>(n);
  cb = cb / static_cast<double>(n);

  // Covariance matrix R = sum (a - ca) (b - cb)^T and inner products.
  double R[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  double ga = 0, gb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3d x = a[i] - ca;
    const Vec3d y = b[i] - cb;
    const double xv[3] = {x.x, x.y, x.z};
    const double yv[3] = {y.x, y.y, y.z};
    for (int p = 0; p < 3; ++p)
      for (int q = 0; q < 3; ++q) R[p][q] += xv[p] * yv[q];
    ga += x.norm2();
    gb += y.norm2();
  }

  // Quaternion (Kearsley) 4x4 key matrix; its largest eigenvalue lambda
  // gives rmsd^2 = (ga + gb - 2 lambda) / n.
  double K[4][4];
  K[0][0] = R[0][0] + R[1][1] + R[2][2];
  K[0][1] = K[1][0] = R[1][2] - R[2][1];
  K[0][2] = K[2][0] = R[2][0] - R[0][2];
  K[0][3] = K[3][0] = R[0][1] - R[1][0];
  K[1][1] = R[0][0] - R[1][1] - R[2][2];
  K[1][2] = K[2][1] = R[0][1] + R[1][0];
  K[1][3] = K[3][1] = R[0][2] + R[2][0];
  K[2][2] = -R[0][0] + R[1][1] - R[2][2];
  K[2][3] = K[3][2] = R[1][2] + R[2][1];
  K[3][3] = -R[0][0] - R[1][1] + R[2][2];

  // Largest eigenvalue by power iteration with a generous shift (the key
  // matrix spectrum is bounded by ga+gb in magnitude).
  const double shift = ga + gb + 1.0;
  double v[4] = {1, 0.5, 0.25, 0.125};
  for (int it = 0; it < 200; ++it) {
    double w[4] = {0, 0, 0, 0};
    for (int p = 0; p < 4; ++p)
      for (int q = 0; q < 4; ++q) w[p] += (K[p][q] + (p == q ? shift : 0)) * v[q];
    double norm = 0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    for (int p = 0; p < 4; ++p) v[p] = w[p] / norm;
  }
  double lambda = 0;
  for (int p = 0; p < 4; ++p) {
    double w = 0;
    for (int q = 0; q < 4; ++q) w += K[p][q] * v[q];
    lambda += v[p] * w;
  }
  const double msd = std::max(0.0, (ga + gb - 2.0 * lambda) / n);
  return std::sqrt(msd);
}

// ---------------------------------------------------------------------------

Msd::Msd(const PeriodicBox& box) : box_(box) {}

void Msd::add_frame(std::span<const Vec3d> pos) {
  if (origin_.empty()) {
    origin_.assign(pos.begin(), pos.end());
    prev_ = origin_;
    unwrapped_ = origin_;
    msd_.push_back(0.0);
    return;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const Vec3d step = box_.min_image(pos[i], prev_[i]);
    unwrapped_[i] += step;
    prev_[i] = pos[i];
    sum += (unwrapped_[i] - origin_[i]).norm2();
  }
  msd_.push_back(sum / pos.size());
}

double Msd::slope_per_frame() const {
  if (msd_.size() < 4) return 0.0;
  // Fit the second half (diffusive regime).
  std::vector<double> x, y;
  for (std::size_t i = msd_.size() / 2; i < msd_.size(); ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(msd_[i]);
  }
  return fit_line(x, y).slope;
}

}  // namespace anton::analysis
