#include "analysis/analysis.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace anton::analysis {

void EnergyDrift::add(std::int64_t step, double total_energy) {
  steps_.push_back(static_cast<double>(step));
  energy_.push_back(total_energy);
}

double EnergyDrift::drift(double dof, double dt_fs) const {
  if (steps_.size() < 2 || dof <= 0.0) return 0.0;
  const LinearFit f = fit_line(steps_, energy_);
  // slope: kcal/mol per step -> per fs -> per us (1e9 fs).
  return std::fabs(f.slope) / dt_fs * 1.0e9 / dof;
}

double EnergyDrift::fluctuation() const {
  if (steps_.size() < 2) return 0.0;
  const LinearFit f = fit_line(steps_, energy_);
  double s = 0.0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const double resid = energy_[i] - (f.intercept + f.slope * steps_[i]);
    s += resid * resid;
  }
  return std::sqrt(s / steps_.size());
}

double rms_force_error(std::span<const Vec3d> test,
                       std::span<const Vec3d> ref) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    num += (test[i] - ref[i]).norm2();
    den += ref[i].norm2();
  }
  return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

OrderParameters::OrderParameters(int n_vectors) : n_(n_vectors) {
  uu_.assign(n_, {0, 0, 0, 0, 0, 0});
}

void OrderParameters::add_frame(std::span<const Vec3d> u) {
  for (int i = 0; i < n_; ++i) {
    const Vec3d& v = u[i];
    auto& a = uu_[i];
    a[0] += v.x * v.x;
    a[1] += v.y * v.y;
    a[2] += v.z * v.z;
    a[3] += v.x * v.y;
    a[4] += v.x * v.z;
    a[5] += v.y * v.z;
  }
  ++frames_;
}

std::vector<double> OrderParameters::s2() const {
  std::vector<double> out(n_, 0.0);
  if (frames_ == 0) return out;
  const double inv = 1.0 / static_cast<double>(frames_);
  for (int i = 0; i < n_; ++i) {
    const auto& a = uu_[i];
    const double xx = a[0] * inv, yy = a[1] * inv, zz = a[2] * inv;
    const double xy = a[3] * inv, xz = a[4] * inv, yz = a[5] * inv;
    const double sum =
        xx * xx + yy * yy + zz * zz + 2.0 * (xy * xy + xz * xz + yz * yz);
    out[i] = 0.5 * (3.0 * sum - 1.0);
  }
  return out;
}

double radius_of_gyration(std::span<const Vec3d> pos) {
  if (pos.empty()) return 0.0;
  Vec3d c{0, 0, 0};
  for (const Vec3d& r : pos) c += r;
  c = c / static_cast<double>(pos.size());
  double s = 0.0;
  for (const Vec3d& r : pos) s += (r - c).norm2();
  return std::sqrt(s / pos.size());
}

double rmsd_no_superposition(std::span<const Vec3d> a,
                             std::span<const Vec3d> b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]).norm2();
  return std::sqrt(s / a.size());
}

int count_transitions(std::span<const double> series, double lo, double hi) {
  int transitions = 0;
  int state = -1;  // -1 unknown, 0 low, 1 high
  for (double x : series) {
    if (x <= lo) {
      if (state == 1) ++transitions;
      state = 0;
    } else if (x >= hi) {
      if (state == 0) ++transitions;
      state = 1;
    }
  }
  return transitions;
}

}  // namespace anton::analysis
