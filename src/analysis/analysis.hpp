// Trajectory analysis: the observables the paper's evaluation reports.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec3.hpp"

namespace anton::analysis {

/// Energy-conservation diagnostic (Table 4's "energy drift" column).
/// Feed (step, total energy) samples from an unthermostatted run; the
/// drift is the fitted linear slope, normalized per degree of freedom and
/// per microsecond of simulated time.
class EnergyDrift {
 public:
  void add(std::int64_t step, double total_energy);
  std::size_t samples() const { return steps_.size(); }

  /// |slope| in kcal/mol/DoF/us. dt in fs.
  double drift(double dof, double dt_fs) const;

  /// RMS fluctuation around the fitted line (kcal/mol).
  double fluctuation() const;

 private:
  std::vector<double> steps_, energy_;
};

/// RMS force error as a fraction of the rms force (Table 4):
/// sqrt(mean |F_test - F_ref|^2) / sqrt(mean |F_ref|^2).
double rms_force_error(std::span<const Vec3d> test,
                       std::span<const Vec3d> ref);

/// Backbone amide S^2 order parameters (Figure 6): for each residue's N-H
/// unit vector u(t), S^2 = (3 sum_ab <u_a u_b>^2 - 1) / 2 over the
/// trajectory. Feed one call per frame with all residues' unit vectors.
class OrderParameters {
 public:
  explicit OrderParameters(int n_vectors);
  void add_frame(std::span<const Vec3d> unit_vectors);
  std::vector<double> s2() const;
  std::int64_t frames() const { return frames_; }

 private:
  int n_;
  std::int64_t frames_ = 0;
  // Running sums of the 6 distinct components of u (x) u per vector.
  std::vector<std::array<double, 6>> uu_;
};

/// Radius of gyration of a point set.
double radius_of_gyration(std::span<const Vec3d> pos);

/// RMSD without superposition (useful for rigid-lattice comparisons).
double rmsd_no_superposition(std::span<const Vec3d> a,
                             std::span<const Vec3d> b);

/// Counts transitions of a scalar time series between two basins with
/// hysteresis: a transition is recorded each time the series crosses from
/// below `lo` to above `hi` or vice versa (Figure 7's folding/unfolding
/// event count).
int count_transitions(std::span<const double> series, double lo, double hi);

}  // namespace anton::analysis
