// Weighted fair scheduling of jobs over MTS-cycle quanta.
//
// Stride scheduling: each runnable job holds a `pass` value; the
// scheduler always picks the runnable job with the smallest (pass, id)
// and charges it stride = kStrideOne / weight per quantum it runs, where
// weight is 1/2/4 for low/normal/high priority. Consequences:
//
//  * long-run CPU shares converge to the weight ratios (weighted
//    round-robin), so a big job cannot starve small ones -- it just
//    accumulates pass faster whenever it runs;
//  * equal-weight jobs interleave with progress skew bounded by one
//    quantum per executor, the fairness bound bench_jobs measures;
//  * picks are a pure function of (pass, id) state, so a single-executor
//    schedule is fully deterministic -- which trajectories never depend
//    on anyway (engine determinism), but makes scheduler tests exact.
//
// A job leaves the runnable set while it executes a quantum (a job never
// runs on two executors at once) and re-enters it charged. Jobs
// (re)entering the set start at max(own pass, min runnable pass): a job
// that slept (paused, crashed, just submitted) does not get to monopolize
// executors paying back virtual time it never consumed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "jobs/job_spec.hpp"

namespace anton::jobs {

class FairScheduler {
 public:
  /// Pass units one quantum costs a weight-1 job (divisible by every
  /// priority weight, so shares are exact integers).
  static constexpr std::int64_t kStrideOne = 840;

  /// Makes `job` runnable with the given priority. New jobs (and jobs
  /// re-entering after pause/crash) join at the current virtual time.
  void add(int job, Priority priority);

  /// Removes `job` from the runnable set (terminal, paused, cancelled).
  /// Its pass value is forgotten.
  void remove(int job);

  bool has_runnable() const { return !runnable_.empty(); }
  int runnable_count() const { return static_cast<int>(runnable_.size()); }

  /// Picks the runnable job with the smallest (pass, id), removes it
  /// from the runnable set and returns it; std::nullopt when empty. The
  /// caller runs one quantum and then requeue()s it.
  std::optional<int> pick();

  /// Re-enters a picked job, charged `quanta` quanta at its weight.
  void requeue(int job, int quanta = 1);

  /// Current pass value (introspection / tests); 0 if unknown.
  std::int64_t pass_of(int job) const;

  std::vector<int> runnable_jobs() const;

 private:
  struct Entry {
    std::int64_t pass = 0;
    std::int64_t stride = kStrideOne;
    bool runnable = false;
  };
  std::int64_t min_runnable_pass() const;

  std::map<int, Entry> entries_;  // picked-but-not-requeued jobs included
  std::map<int, Entry*> runnable_;
};

}  // namespace anton::jobs
