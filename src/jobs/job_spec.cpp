#include "jobs/job_spec.hpp"

#include <stdexcept>

#include "sysgen/systems.hpp"

namespace anton::jobs {

System build_system(const ScenarioSpec& sc) {
  System sys;
  if (sc.kind == "test") {
    sys = sysgen::build_test_system(sc.n_waters, sc.side, sc.seed,
                                    sc.constrained, sc.protein_atoms);
  } else if (sc.kind == "water") {
    sys = sysgen::build_water_system(sc.atoms, sc.side, sc.water, sc.seed);
  } else if (sc.kind == "paper") {
    sys = sysgen::build_paper_system(sysgen::spec_by_name(sc.name), sc.seed);
  } else {
    throw std::invalid_argument("build_system: unknown scenario kind \"" +
                                sc.kind + "\"");
  }
  if (sc.temperature > 0.0)
    sysgen::init_velocities(sys, sc.temperature, sc.seed);
  return sys;
}

}  // namespace anton::jobs
