#include "jobs/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace anton::jobs {

std::int64_t FairScheduler::min_runnable_pass() const {
  std::int64_t m = std::numeric_limits<std::int64_t>::max();
  for (const auto& [id, e] : runnable_) m = std::min(m, e->pass);
  return m == std::numeric_limits<std::int64_t>::max() ? 0 : m;
}

void FairScheduler::add(int job, Priority priority) {
  Entry& e = entries_[job];
  e.stride = kStrideOne / priority_weight(priority);
  // Join at the current virtual time: never below the runnable minimum,
  // so a sleeper cannot claim back executor time it never consumed.
  e.pass = std::max(e.pass, min_runnable_pass());
  e.runnable = true;
  runnable_[job] = &e;
}

void FairScheduler::remove(int job) {
  runnable_.erase(job);
  entries_.erase(job);
}

std::optional<int> FairScheduler::pick() {
  if (runnable_.empty()) return std::nullopt;
  auto best = runnable_.begin();
  for (auto it = std::next(best); it != runnable_.end(); ++it)
    if (it->second->pass < best->second->pass) best = it;
  // std::map iteration is id-ascending, so ties break to the lowest id.
  const int job = best->first;
  best->second->runnable = false;
  runnable_.erase(best);
  return job;
}

void FairScheduler::requeue(int job, int quanta) {
  auto it = entries_.find(job);
  if (it == entries_.end()) return;  // removed (cancelled) while running
  it->second.pass += it->second.stride * std::max(1, quanta);
  it->second.runnable = true;
  runnable_[job] = &it->second;
}

std::int64_t FairScheduler::pass_of(int job) const {
  auto it = entries_.find(job);
  return it == entries_.end() ? 0 : it->second.pass;
}

std::vector<int> FairScheduler::runnable_jobs() const {
  std::vector<int> out;
  out.reserve(runnable_.size());
  for (const auto& [id, e] : runnable_) out.push_back(id);
  return out;
}

}  // namespace anton::jobs
