#include "jobs/job_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <unistd.h>

#include "io/trajectory.hpp"

namespace anton::jobs {

namespace fs = std::filesystem;

const char* status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kPaused: return "paused";
    case JobStatus::kCrashed: return "crashed";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

bool is_terminal(JobStatus s) {
  return s == JobStatus::kDone || s == JobStatus::kFailed ||
         s == JobStatus::kCancelled;
}

namespace {
std::string make_root_dir(const std::string& configured) {
  if (!configured.empty()) {
    fs::create_directories(configured);
    return configured;
  }
  // A fresh unique directory per manager: tenants never share output
  // paths with each other or with a previous run.
  std::string tmpl =
      (fs::temp_directory_path() / "anton-jobs-XXXXXX").string();
  if (!mkdtemp(tmpl.data()))
    throw std::runtime_error("JobManager: mkdtemp failed for " + tmpl);
  return tmpl;
}
}  // namespace

int JobManager::steps_per_cycle(const JobSpec& spec) {
  return std::max(1, spec.engine.sim.long_range_every);
}

JobManager::JobManager(const RuntimeConfig& cfg)
    : cfg_(cfg), root_dir_(make_root_dir(cfg.root_dir)),
      pool_(std::max(1, cfg.threads)), fleet_(1, "jobs.") {
  owns_root_ = cfg.root_dir.empty();
  cfg_.threads = pool_.lanes();
  if (cfg_.executors <= 0) cfg_.executors = cfg_.threads;
  if (cfg_.default_quantum < 1) cfg_.default_quantum = 1;
  fid_.submitted = fleet_.counter("submitted");
  fid_.completed = fleet_.counter("completed");
  fid_.failed = fleet_.counter("failed");
  fid_.cancelled = fleet_.counter("cancelled");
  fid_.crashed = fleet_.counter("crashed");
  fid_.recovered = fleet_.counter("recovered");
  fid_.quanta = fleet_.counter("quanta");
  fid_.cycles = fleet_.counter("mts_cycles");
  executors_.reserve(cfg_.executors);
  for (int i = 0; i < cfg_.executors; ++i)
    executors_.emplace_back([this] { executor_loop(); });
}

JobManager::~JobManager() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : executors_) t.join();
  // Clean up a temp root we created ourselves. A configured root_dir
  // belongs to the caller; and after any failed job we keep everything
  // (checkpoints, partial trajectories) for post-mortem inspection.
  if (owns_root_) {
    if (any_failed_) {
      std::fprintf(stderr,
                   "JobManager: keeping %s (failed jobs left outputs)\n",
                   root_dir_.c_str());
    } else {
      std::error_code ec;
      fs::remove_all(root_dir_, ec);
      if (ec)
        std::fprintf(stderr, "JobManager: could not remove %s: %s\n",
                     root_dir_.c_str(), ec.message().c_str());
    }
  }
}

JobId JobManager::submit(const JobSpec& spec) {
  std::lock_guard<std::mutex> lk(mu_);
  auto j = std::make_unique<Job>();
  j->id = static_cast<JobId>(jobs_.size());
  j->spec = spec;
  j->spec.cycles = std::max(1, spec.cycles);
  j->spec.thread_budget =
      std::clamp(spec.thread_budget, 1, pool_.lanes());
  fs::create_directories(job_dir(j->id));
  scheduler_.add(j->id, j->spec.priority);
  jobs_.push_back(std::move(j));
  fleet_.count(fid_.submitted, 0);
  cv_work_.notify_one();
  return static_cast<JobId>(jobs_.size()) - 1;
}

std::vector<JobId> JobManager::submit_ensemble(const EnsembleSpec& ensemble) {
  std::vector<JobId> ids;
  ids.reserve(ensemble.seeds.size());
  for (std::size_t i = 0; i < ensemble.seeds.size(); ++i) {
    JobSpec replica = ensemble.base;
    replica.scenario.seed = ensemble.seeds[i];
    replica.name = ensemble.base.name + "/r" + std::to_string(i);
    ids.push_back(submit(replica));
  }
  return ids;
}

void JobManager::ensure_simulation(Job& j) {
  if (j.sim) return;
  System sys = build_system(j.spec.scenario);
  core::SimulationConfig scfg;
  scfg.engine = j.spec.engine;
  scfg.trajectory_every = j.spec.trajectory_every;
  scfg.trajectory_path = trajectory_path(j.id, j.segments);
  scfg.checkpoint_every = j.spec.checkpoint_every;
  scfg.checkpoint_path = checkpoint_path(j.id);
  const int budget = j.spec.thread_budget;
  if (!j.registry)
    j.registry = std::make_unique<obs::MetricsRegistry>(
        budget, "job." + std::to_string(j.id) + ".");
  // A restarted job resumes bitwise from its last good checkpoint; a
  // job that crashed before its first checkpoint restarts from the
  // spec's initial conditions (same thing: the empty prefix).
  if (j.restarts > 0 && fs::exists(scfg.checkpoint_path)) {
    j.sim = std::make_unique<core::Simulation>(core::Simulation::resume(
        std::move(sys), scfg, scfg.checkpoint_path, &pool_, budget));
  } else {
    j.sim =
        std::make_unique<core::Simulation>(std::move(sys), scfg, &pool_,
                                           budget);
  }
  ++j.segments;
  j.sim->engine().set_metrics(j.registry.get());
}

JobManager::QuantumOutcome JobManager::run_quantum(Job& j,
                                                   std::string& error) {
  try {
    ensure_simulation(j);
    const int spc = steps_per_cycle(j.spec);
    const int quantum =
        j.spec.quantum_cycles > 0 ? j.spec.quantum_cycles
                                  : cfg_.default_quantum;
    const int remaining = j.spec.cycles - j.cycles_done.load();
    const int n = std::min(quantum, std::max(1, remaining));
    j.sim->run_cycles(n, [&](core::AntonEngine& eng) {
      j.cycles_done.store(
          static_cast<int>(eng.steps_done() / spc));
      if (j.kill_flag.load())
        throw std::runtime_error("job killed (simulated crash)");
      return !j.cancel_flag.load() && !j.pause_flag.load();
    });
    j.cycles_done.store(static_cast<int>(j.sim->steps_done() / spc));
    if (j.cycles_done.load() >= j.spec.cycles) return QuantumOutcome::kDone;
    if (j.cancel_flag.load()) return QuantumOutcome::kCancelled;
    if (j.pause_flag.load()) return QuantumOutcome::kPaused;
    return QuantumOutcome::kYield;
  } catch (const std::exception& e) {
    error = e.what();
    return QuantumOutcome::kCrashed;
  }
}

void JobManager::finalize_locked(Job& j, JobStatus status) {
  if (status == JobStatus::kDone && j.sim)
    j.final_hash = j.sim->engine().state_hash();
  j.sim.reset();  // closes the trajectory segment + checkpoint handles
  j.status = status;
  scheduler_.remove(j.id);
  if (status == JobStatus::kDone) fleet_.count(fid_.completed, 0);
  if (status == JobStatus::kFailed) {
    fleet_.count(fid_.failed, 0);
    any_failed_ = true;
  }
  if (status == JobStatus::kCancelled) fleet_.count(fid_.cancelled, 0);
  cv_state_.notify_all();
}

int JobManager::recovery_sweep_locked() {
  int recovered = 0;
  for (auto& up : jobs_) {
    Job& j = *up;
    if (j.status != JobStatus::kCrashed) continue;
    if (j.restarts >= cfg_.max_restarts) {
      finalize_locked(j, JobStatus::kFailed);
      continue;
    }
    ++j.restarts;
    j.status = JobStatus::kQueued;
    scheduler_.add(j.id, j.spec.priority);
    fleet_.count(fid_.recovered, 0);
    ++recovered;
  }
  if (recovered > 0) cv_work_.notify_all();
  return recovered;
}

int JobManager::recovery_sweep() {
  std::lock_guard<std::mutex> lk(mu_);
  const int n = recovery_sweep_locked();
  cv_state_.notify_all();
  return n;
}

void JobManager::executor_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || scheduler_.has_runnable(); });
    if (stop_) return;
    const auto picked = scheduler_.pick();
    if (!picked) continue;
    Job& j = *jobs_[*picked];
    j.status = JobStatus::kRunning;
    ++running_;
    const int cycles_before = j.cycles_done.load();
    lk.unlock();

    std::string error;
    const QuantumOutcome oc = run_quantum(j, error);

    lk.lock();
    --running_;
    fleet_.count(fid_.quanta, 0);
    fleet_.count(fid_.cycles, 0, j.cycles_done.load() - cycles_before);
    // Quantum over: the job's engine is quiescent, so folding its metric
    // shards here (under the manager lock) is race-free.
    if (j.registry) j.registry->flush();
    switch (oc) {
      case QuantumOutcome::kDone:
        finalize_locked(j, JobStatus::kDone);
        break;
      case QuantumOutcome::kCancelled:
        finalize_locked(j, JobStatus::kCancelled);
        break;
      case QuantumOutcome::kPaused:
        j.pause_flag.store(false);
        j.status = JobStatus::kPaused;
        break;
      case QuantumOutcome::kYield:
        if (j.cancel_flag.load()) {
          finalize_locked(j, JobStatus::kCancelled);
        } else if (j.pause_flag.load()) {
          j.pause_flag.store(false);
          j.status = JobStatus::kPaused;
        } else {
          j.status = JobStatus::kQueued;
          scheduler_.requeue(j.id);
          cv_work_.notify_one();
        }
        break;
      case QuantumOutcome::kCrashed:
        j.error = error;
        j.sim.reset();  // drop in-memory state, keep checkpoint on disk
        j.kill_flag.store(false);
        j.status = JobStatus::kCrashed;
        fleet_.count(fid_.crashed, 0);
        if (cfg_.recover_crashed) recovery_sweep_locked();
        break;
    }
    cv_state_.notify_all();
  }
}

bool JobManager::pause(JobId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (id < 0 || id >= static_cast<int>(jobs_.size())) return false;
  Job& j = *jobs_[id];
  if (j.status == JobStatus::kQueued) {
    scheduler_.remove(j.id);
    j.status = JobStatus::kPaused;
    cv_state_.notify_all();
    return true;
  }
  if (j.status == JobStatus::kRunning) {
    j.pause_flag.store(true);
    return true;
  }
  return false;
}

bool JobManager::unpause(JobId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (id < 0 || id >= static_cast<int>(jobs_.size())) return false;
  Job& j = *jobs_[id];
  if (j.status != JobStatus::kPaused) return false;
  j.status = JobStatus::kQueued;
  scheduler_.add(j.id, j.spec.priority);
  cv_work_.notify_one();
  cv_state_.notify_all();
  return true;
}

bool JobManager::cancel(JobId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (id < 0 || id >= static_cast<int>(jobs_.size())) return false;
  Job& j = *jobs_[id];
  if (is_terminal(j.status)) return false;
  if (j.status == JobStatus::kRunning) {
    j.cancel_flag.store(true);  // lands at the next cycle boundary
    return true;
  }
  finalize_locked(j, JobStatus::kCancelled);
  return true;
}

bool JobManager::kill(JobId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (id < 0 || id >= static_cast<int>(jobs_.size())) return false;
  Job& j = *jobs_[id];
  if (j.status != JobStatus::kRunning && j.status != JobStatus::kQueued)
    return false;
  j.kill_flag.store(true);
  return true;
}

JobInfo JobManager::info_locked(const Job& j) const {
  JobInfo out;
  out.id = j.id;
  out.name = j.spec.name;
  out.status = j.status;
  out.priority = j.spec.priority;
  out.thread_budget = j.spec.thread_budget;
  out.cycles_target = j.spec.cycles;
  out.cycles_done = j.cycles_done.load();
  out.restarts = j.restarts;
  out.segments = j.segments;
  out.error = j.error;
  out.final_hash = j.final_hash;
  out.dir = job_dir(j.id);
  return out;
}

JobInfo JobManager::info(JobId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (id < 0 || id >= static_cast<int>(jobs_.size()))
    throw std::out_of_range("JobManager::info: no job " +
                            std::to_string(id));
  return info_locked(*jobs_[id]);
}

std::vector<JobId> JobManager::queued_jobs() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobId> out;
  for (const auto& j : jobs_)
    if (j->status == JobStatus::kQueued) out.push_back(j->id);
  return out;
}

std::vector<JobId> JobManager::running_jobs() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobId> out;
  for (const auto& j : jobs_)
    if (j->status == JobStatus::kRunning) out.push_back(j->id);
  return out;
}

int JobManager::jobs_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(jobs_.size());
}

std::vector<std::pair<JobId, int>> JobManager::progress() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<JobId, int>> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_)
    out.emplace_back(j->id, j->cycles_done.load());
  return out;
}

JobInfo JobManager::await(JobId id) {
  std::unique_lock<std::mutex> lk(mu_);
  if (id < 0 || id >= static_cast<int>(jobs_.size()))
    throw std::out_of_range("JobManager::await: no job " +
                            std::to_string(id));
  cv_state_.wait(lk, [&] { return is_terminal(jobs_[id]->status); });
  return info_locked(*jobs_[id]);
}

void JobManager::await_all() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_state_.wait(lk, [&] {
    return running_ == 0 && !scheduler_.has_runnable();
  });
}

EnsembleStats JobManager::stats_for(const std::vector<JobId>& ids) const {
  std::lock_guard<std::mutex> lk(mu_);
  EnsembleStats st;
  st.replicas = static_cast<int>(ids.size());
  for (JobId id : ids) {
    if (id < 0 || id >= static_cast<int>(jobs_.size())) continue;
    const Job& j = *jobs_[id];
    st.total_cycles += j.cycles_done.load();
    st.total_restarts += j.restarts;
    if (j.status == JobStatus::kDone) {
      ++st.completed;
      st.final_hashes.push_back(j.final_hash);
    } else if (j.status == JobStatus::kFailed) {
      ++st.failed;
    } else if (j.status == JobStatus::kCancelled) {
      ++st.cancelled;
    }
  }
  return st;
}

std::vector<std::pair<std::string, std::int64_t>> JobManager::metrics()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  // Fleet counters are only ever written under mu_; job registries are
  // written by their job's executor, which is quiescent for any job not
  // currently kRunning (and flushed at every quantum boundary), so this
  // read is race-free for everything it reports.
  fleet_.flush();
  auto out = fleet_.counters();
  for (const auto& j : jobs_) {
    if (!j->registry || j->status == JobStatus::kRunning) continue;
    for (auto& kv : j->registry->counters()) out.push_back(std::move(kv));
  }
  return out;
}

std::string JobManager::job_dir(JobId id) const {
  return root_dir_ + "/job-" + std::to_string(id);
}

std::string JobManager::checkpoint_path(JobId id) const {
  return job_dir(id) + "/job.ckpt";
}

std::string JobManager::trajectory_path(JobId id, int segment) const {
  return job_dir(id) + "/traj.s" + std::to_string(segment) + ".antj";
}

std::vector<std::pair<std::int64_t, std::vector<Vec3i>>>
JobManager::stitched_frames(JobId id) const {
  int segments = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (id < 0 || id >= static_cast<int>(jobs_.size()))
      throw std::out_of_range("JobManager::stitched_frames: no job " +
                              std::to_string(id));
    segments = jobs_[id]->segments;
  }
  std::vector<std::pair<std::int64_t, std::vector<Vec3i>>> out;
  for (int s = 0; s < segments; ++s) {
    const std::string path = trajectory_path(id, s);
    if (!fs::exists(path)) continue;
    io::TrajectoryReader r(path);
    std::int64_t step = 0;
    std::vector<Vec3i> pos;
    bool first = true;
    while (r.next(step, pos)) {
      if (first) {
        // A resumed leg restarts its frame cursor at the checkpoint it
        // recovered from: drop the crashed leg's frames past that point
        // (they are re-emitted, bitwise, by this leg).
        while (!out.empty() && out.back().first >= step) out.pop_back();
        first = false;
      }
      out.emplace_back(step, pos);
    }
  }
  return out;
}

}  // namespace anton::jobs
