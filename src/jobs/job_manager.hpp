// Multi-tenant job runtime: simulation-as-a-service over one shared pool.
//
// The JobManager runs N independent core::Simulations concurrently:
//
//  * a shared util::ThreadPool supplies the lanes; each job's engine
//    borrows a budgeted TaskGroup of `thread_budget` lanes, so a big job
//    can never occupy more than its cap while small jobs wait;
//  * `executors` driver threads pull runnable jobs from a FairScheduler
//    (weighted round-robin over MTS-cycle quanta, priority classes) and
//    run one quantum at a time -- job progress interleaves fairly while
//    each trajectory stays bitwise identical to running its spec alone
//    (engine state, accumulator shards and metric registries are all
//    job-private; asserted in test_jobs);
//  * every job owns an isolated output directory (trajectory segments +
//    checkpoint v2) and an isolated metric namespace `job.<id>.*`;
//  * a job that crashes -- or is kill()ed mid-run -- is picked up by the
//    recovery sweep: the manager rebuilds the System from the job's
//    declarative spec, resumes from the last checkpoint bitwise (the
//    PR 4 invariant at fleet level) and requeues it, up to max_restarts;
//  * ensembles (template + K seeds) submit as K replica jobs and report
//    aggregated completion statistics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/simulation.hpp"
#include "jobs/job_spec.hpp"
#include "jobs/scheduler.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace anton::jobs {

using JobId = int;

enum class JobStatus {
  kQueued,     // waiting for an executor
  kRunning,    // executing a quantum
  kPaused,     // held; unpause() requeues
  kCrashed,    // transient: awaiting the recovery sweep
  kDone,       // completed spec.cycles
  kFailed,     // crashed past max_restarts (or recovery disabled)
  kCancelled,  // cancelled before completion
};

const char* status_name(JobStatus s);
bool is_terminal(JobStatus s);

struct JobInfo {
  JobId id = -1;
  std::string name;
  JobStatus status = JobStatus::kQueued;
  Priority priority = Priority::kNormal;
  int thread_budget = 1;
  int cycles_target = 0;
  int cycles_done = 0;
  int restarts = 0;   // crash recoveries performed
  int segments = 0;   // trajectory segments written (one per start/resume)
  std::string error;  // last crash/failure reason
  std::uint64_t final_hash = 0;  // engine state hash at completion
  std::string dir;               // the job's isolated output directory
};

struct RuntimeConfig {
  /// Lanes in the shared pool (the machine the tenants divide up).
  int threads = 8;
  /// Concurrent quantum executors (0 -> same as threads). Each running
  /// job occupies one executor plus thread_budget - 1 pool workers
  /// during its force passes.
  int executors = 0;
  /// Default MTS cycles per scheduling quantum.
  int default_quantum = 1;
  /// Root for per-job output directories ("" -> a fresh unique directory
  /// under the system temp dir).
  std::string root_dir;
  /// Crashed jobs are automatically resumed from their last checkpoint.
  bool recover_crashed = true;
  int max_restarts = 3;
};

class JobManager {
 public:
  explicit JobManager(const RuntimeConfig& cfg = {});
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  const RuntimeConfig& config() const { return cfg_; }
  const std::string& root_dir() const { return root_dir_; }

  // --- submission ---
  JobId submit(const JobSpec& spec);
  std::vector<JobId> submit_ensemble(const EnsembleSpec& ensemble);

  // --- control ---
  /// Pauses a queued/running job at its next cycle boundary.
  bool pause(JobId id);
  /// Requeues a paused job.
  bool unpause(JobId id);
  /// Cancels a non-terminal job (stops a running one at its next cycle
  /// boundary).
  bool cancel(JobId id);
  /// Simulated crash: the job dies at its next MTS-cycle boundary, as a
  /// whole-node crash would (PR 4 crashes also land on cycle
  /// boundaries). The recovery sweep then resumes it from checkpoint.
  bool kill(JobId id);

  // --- introspection ---
  JobInfo info(JobId id) const;
  std::vector<JobId> queued_jobs() const;
  std::vector<JobId> running_jobs() const;
  int jobs_total() const;
  /// Point-in-time cycles_done per job id (fairness probes).
  std::vector<std::pair<JobId, int>> progress() const;

  // --- completion ---
  /// Blocks until the job is terminal; returns its final info.
  JobInfo await(JobId id);
  /// Blocks until no job is queued or running (paused jobs excluded).
  void await_all();

  /// Re-examines crashed jobs and requeues those still eligible;
  /// returns how many it recovered. Runs automatically after every
  /// crash when cfg.recover_crashed.
  int recovery_sweep();

  EnsembleStats stats_for(const std::vector<JobId>& ids) const;

  // --- metrics ---
  /// Fleet counters (jobs.*) plus every job's namespaced counters
  /// (job.<id>.engine.*), one flat list.
  std::vector<std::pair<std::string, std::int64_t>> metrics() const;

  // --- per-job outputs ---
  std::string job_dir(JobId id) const;
  std::string checkpoint_path(JobId id) const;
  std::string trajectory_path(JobId id, int segment) const;

  /// The job's frames stitched across crash/recovery segments: a
  /// resumed leg restarts its output cursor at the checkpoint step, so
  /// stitching drops any frames a crashed leg wrote past the checkpoint
  /// it was recovered from. The result is frame-for-frame identical to
  /// an uninterrupted run (asserted in test_jobs).
  std::vector<std::pair<std::int64_t, std::vector<Vec3i>>> stitched_frames(
      JobId id) const;

 private:
  struct Job {
    JobId id = -1;
    JobSpec spec;
    JobStatus status = JobStatus::kQueued;
    /// Written by the owning executor each cycle; read by fairness
    /// probes without the manager lock.
    std::atomic<int> cycles_done{0};
    // Bumped by the owning executor outside the manager lock (the
    // executor is the only writer); read by info()/stats under it.
    std::atomic<int> restarts{0};
    std::atomic<int> segments{0};
    // Control flags: written under the manager lock, polled lock-free by
    // the running quantum's per-cycle callback.
    std::atomic<bool> kill_flag{false};
    std::atomic<bool> cancel_flag{false};
    std::atomic<bool> pause_flag{false};
    std::string error;
    std::uint64_t final_hash = 0;
    std::unique_ptr<core::Simulation> sim;  // live while running/paused
    std::unique_ptr<obs::MetricsRegistry> registry;
  };

  enum class QuantumOutcome { kYield, kDone, kPaused, kCancelled, kCrashed };

  void executor_loop();
  QuantumOutcome run_quantum(Job& j, std::string& error);
  void ensure_simulation(Job& j);
  JobInfo info_locked(const Job& j) const;
  int recovery_sweep_locked();
  void finalize_locked(Job& j, JobStatus status);
  static int steps_per_cycle(const JobSpec& spec);

  RuntimeConfig cfg_;
  std::string root_dir_;
  /// True when root_dir_ was mkdtemp'd by this manager (cfg.root_dir
  /// empty): the destructor removes it after a clean run, but keeps it
  /// when any job failed so the outputs stay inspectable.
  bool owns_root_ = false;
  bool any_failed_ = false;  // written under mu_, read after joins
  util::ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // executors: runnable work exists
  std::condition_variable cv_state_;  // waiters: some job changed state
  std::vector<std::unique_ptr<Job>> jobs_;  // index == JobId
  FairScheduler scheduler_;
  int running_ = 0;
  bool stop_ = false;

  mutable obs::MetricsRegistry fleet_;  // jobs.* counters (under mu_)
  struct FleetIds {
    int submitted, completed, failed, cancelled, crashed, recovered, quanta,
        cycles;
  } fid_;

  std::vector<std::thread> executors_;
};

}  // namespace anton::jobs
