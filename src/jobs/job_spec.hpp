// Declarative job specifications for the multi-tenant job runtime.
//
// Production MD is a service, not a single run: the dominant workload is
// many concurrent simulations (often ensembles of hundreds of short
// replicas in the Markov-state-model style) sharing one machine. A job is
// therefore described *declaratively* -- a system recipe plus engine
// parameters plus run length and output cadences -- never as live
// objects. Two consequences the runtime depends on:
//
//  * the spec is a pure value, so the recovery sweep can rebuild the
//    exact System after a crash and resume from the last checkpoint v2
//    with a bitwise-identical continuation (the PR 4 invariant lifted to
//    the fleet level);
//  * an EnsembleSpec is just a template spec plus K seeds -- replica
//    construction stays trivially reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/anton_engine.hpp"
#include "ff/topology.hpp"
#include "sysgen/water.hpp"

namespace anton::jobs {

/// Scheduler priority classes; weight doubles per class (weighted
/// round-robin shares 1 : 2 : 4).
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };

inline int priority_weight(Priority p) { return 1 << static_cast<int>(p); }

inline const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

/// A deterministic system recipe: build_system(spec) always returns the
/// same System for the same spec, which is what makes crashed jobs
/// rebuildable.
struct ScenarioSpec {
  /// "test"  -> sysgen::build_test_system(n_waters, side, seed,
  ///            constrained, protein_atoms)
  /// "water" -> sysgen::build_water_system(atoms, side, water, seed)
  /// "paper" -> sysgen::build_paper_system(spec_by_name(name), seed)
  std::string kind = "test";
  std::string name;  // paper-system name when kind == "paper"
  int n_waters = 60;
  double side = 13.0;
  int protein_atoms = 12;
  bool constrained = true;
  int atoms = 216;  // "water" kind
  sysgen::WaterModel water = sysgen::WaterModel::k3Site;
  std::uint64_t seed = 1;
  /// > 0: Maxwell-Boltzmann velocities at this temperature (K), seeded
  /// by `seed` -- still a pure function of the spec.
  double temperature = 0.0;
};

/// Builds the scenario's System. Pure: identical specs yield identical
/// (bitwise) initial conditions.
System build_system(const ScenarioSpec& scenario);

struct JobSpec {
  std::string name = "job";
  ScenarioSpec scenario;
  /// Engine/forcefield parameters. `engine.nthreads` is ignored: under
  /// the runtime a job's parallelism is `thread_budget` lanes borrowed
  /// from the shared pool.
  core::AntonConfig engine;
  /// Total MTS cycles the job must complete.
  int cycles = 10;
  /// Lanes this job may borrow from the shared pool per force pass. The
  /// trajectory is bitwise independent of the value (lane-count
  /// invariance); the scheduler uses it as the job's concurrency cap.
  int thread_budget = 1;
  Priority priority = Priority::kNormal;
  /// Inner steps between trajectory frames / checkpoints (0 disables).
  int trajectory_every = 0;
  int checkpoint_every = 0;
  /// MTS cycles per scheduling quantum (0 -> the runtime default).
  int quantum_cycles = 0;
};

/// One template + K seeds -> K replica jobs (the ACEMD / Markov-state
/// ensemble use case). Replica i runs `base` with scenario.seed =
/// seeds[i] and name "<base.name>/r<i>".
struct EnsembleSpec {
  JobSpec base;
  std::vector<std::uint64_t> seeds;
};

/// Aggregated completion statistics for a set of jobs (an ensemble).
struct EnsembleStats {
  int replicas = 0;
  int completed = 0;
  int failed = 0;
  int cancelled = 0;
  std::int64_t total_cycles = 0;   // MTS cycles completed across replicas
  std::int64_t total_restarts = 0; // crash recoveries across replicas
  std::vector<std::uint64_t> final_hashes;  // per completed replica
};

}  // namespace anton::jobs
