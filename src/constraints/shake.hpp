// Holonomic constraint solvers (Section 3.2.4).
//
// "Most MD simulations can be accelerated by incorporating constraints
// during integration that fix the lengths of bonds to hydrogen atoms as
// well as angles between certain bonds." Rigid waters (3- and 4-site) and
// bonds-to-hydrogen are expressed as distance constraints and solved with
// SHAKE (positions) and RATTLE (velocities).
//
// Determinism: the solvers are pure functions of their inputs -- the
// iteration, including the convergence test, depends only on the values
// passed in -- so the Anton engine keeps its bitwise determinism and
// parallel invariance (every constraint group is solved entirely on its
// home node, per the paper's design choice).
#pragma once

#include <span>

#include "ff/topology.hpp"
#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::constraints {

struct SolverParams {
  int max_iters = 500;
  double rel_tol = 1e-10;  // on |r|^2 - d^2, relative to d^2
};

/// SHAKE: adjusts `pos_new` (post-drift positions) so every constraint is
/// satisfied, using the pre-drift `pos_ref` directions. Returns the
/// iteration count used, or -1 if the tolerance was not met (the caller
/// treats that as a fatal integration error).
int shake(std::span<const ConstraintBond> bonds, std::span<const double> mass,
          std::span<const Vec3d> pos_ref, std::span<Vec3d> pos_new,
          const PeriodicBox& box, const SolverParams& p = {});

/// RATTLE velocity stage: removes velocity components along constrained
/// bonds so that d/dt |r_ij|^2 = 0. Returns iterations or -1.
int rattle(std::span<const ConstraintBond> bonds, std::span<const double> mass,
           std::span<const Vec3d> pos, std::span<Vec3d> vel,
           const PeriodicBox& box, const SolverParams& p = {});

/// Convenience: largest relative constraint violation max |r^2 - d^2| / d^2.
double max_violation(std::span<const ConstraintBond> bonds,
                     std::span<const Vec3d> pos, const PeriodicBox& box);

}  // namespace anton::constraints
