#include "constraints/shake.hpp"

#include <cmath>

namespace anton::constraints {

int shake(std::span<const ConstraintBond> bonds, std::span<const double> mass,
          std::span<const Vec3d> pos_ref, std::span<Vec3d> pos_new,
          const PeriodicBox& box, const SolverParams& p) {
  for (int iter = 0; iter < p.max_iters; ++iter) {
    bool converged = true;
    for (const ConstraintBond& c : bonds) {
      const Vec3d s = box.min_image(pos_new[c.i], pos_new[c.j]);
      const double d2 = c.length * c.length;
      const double diff = s.norm2() - d2;
      if (std::fabs(diff) <= p.rel_tol * d2) continue;
      converged = false;
      // Correction direction: classic SHAKE projects along the pre-drift
      // reference bond -- the choice that keeps the constrained integrator
      // symplectic (energy-conserving). If the bond has rotated so far
      // that the projection degenerates, fall back to the current
      // direction; either way corrections are equal-and-opposite along a
      // line, so momentum is conserved and the solver stays a pure
      // function of its inputs (determinism).
      Vec3d dir = box.min_image(pos_ref[c.i], pos_ref[c.j]);
      if (std::fabs(s.dot(dir)) < 0.25 * d2) dir = s;
      const double inv_mi = 1.0 / mass[c.i];
      const double inv_mj = 1.0 / mass[c.j];
      const double denom = 2.0 * (inv_mi + inv_mj) * s.dot(dir);
      if (denom == 0.0) return -1;  // degenerate geometry
      const double g = diff / denom;
      pos_new[c.i] -= dir * (g * inv_mi);
      pos_new[c.j] += dir * (g * inv_mj);
    }
    if (converged) return iter;
  }
  return -1;
}

int rattle(std::span<const ConstraintBond> bonds, std::span<const double> mass,
           std::span<const Vec3d> pos, std::span<Vec3d> vel,
           const PeriodicBox& box, const SolverParams& p) {
  // Velocity tolerance: constraint-direction relative velocity small
  // compared to (length * rel_tol_v). Use an absolute scale derived from
  // rel_tol to stay unitful.
  for (int iter = 0; iter < p.max_iters; ++iter) {
    bool converged = true;
    for (const ConstraintBond& c : bonds) {
      const Vec3d r = box.min_image(pos[c.i], pos[c.j]);
      const Vec3d dv = vel[c.i] - vel[c.j];
      const double d2 = c.length * c.length;
      const double rv = r.dot(dv);
      if (std::fabs(rv) <= p.rel_tol * d2) continue;  // (A^2/fs units)
      converged = false;
      const double inv_mi = 1.0 / mass[c.i];
      const double inv_mj = 1.0 / mass[c.j];
      const double g = rv / ((inv_mi + inv_mj) * d2);
      vel[c.i] -= r * (g * inv_mi);
      vel[c.j] += r * (g * inv_mj);
    }
    if (converged) return iter;
  }
  return -1;
}

double max_violation(std::span<const ConstraintBond> bonds,
                     std::span<const Vec3d> pos, const PeriodicBox& box) {
  double worst = 0.0;
  for (const ConstraintBond& c : bonds) {
    const Vec3d s = box.min_image(pos[c.i], pos[c.j]);
    const double d2 = c.length * c.length;
    worst = std::max(worst, std::fabs(s.norm2() - d2) / d2);
  }
  return worst;
}

}  // namespace anton::constraints
