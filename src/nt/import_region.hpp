// Import-region volumes for the parallelization methods of Figure 3.
//
// The import region is the volume from which a node imports atom
// positions (and to which it exports computed forces). The NT method's
// import region is smaller than the traditional half-shell for typical
// system sizes, "an advantage that grows asymptotically as the level of
// parallelism increases" (Section 3.2.1).
#pragma once

namespace anton::nt {

struct RegionInput {
  double box_side = 16.0;  // home box side (A)
  double cutoff = 13.0;    // interaction cutoff (A)
};

/// NT method import volume (tower + plate minus the home box), continuous
/// regions (Figure 3a).
double nt_import_volume(const RegionInput& in);

/// Traditional half-shell import volume (Figure 3b): half of the
/// R-neighborhood shell around the home box.
double halfshell_import_volume(const RegionInput& in);

/// NT variant for charge spreading / force interpolation (Figure 3c):
/// the plate is the full (symmetric) disc because atom-mesh interactions
/// have no Newton-pair symmetry to exploit; mesh points are computed
/// locally, so only the tower contributes atom imports.
double mesh_nt_import_volume(const RegionInput& in);

/// Import volume of the full-shell (no symmetry) method, for reference.
double fullshell_import_volume(const RegionInput& in);

}  // namespace anton::nt
