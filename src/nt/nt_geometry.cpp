#include "nt/nt_geometry.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <stdexcept>

namespace anton::nt {

std::int32_t wrap_centered(std::int32_t d, std::int32_t n) {
  std::int32_t r = ((d % n) + n) % n;
  if (r > n / 2) r -= n;
  if (n % 2 == 0 && r == -n / 2) r = n / 2;  // canonical representative
  return r;
}

bool wrap_ambiguous(std::int32_t d, std::int32_t n) {
  if (n % 2 != 0) return false;
  const std::int32_t r = ((d % n) + n) % n;
  return r == n / 2;
}

NtGeometry::NtGeometry(const NtConfig& cfg) : cfg_(cfg) {
  grid_ = {cfg.node_grid.x * cfg.subbox_div.x,
           cfg.node_grid.y * cfg.subbox_div.y,
           cfg.node_grid.z * cfg.subbox_div.z};
  if (grid_.x < 1 || grid_.y < 1 || grid_.z < 1)
    throw std::invalid_argument("NtGeometry: bad grid");
  const Vec3d s = cfg.box.side();
  sb_size_ = {s.x / grid_.x, s.y / grid_.y, s.z / grid_.z};

  const double reach = cfg.cutoff + cfg.margin;

  // Tower offsets along z: all distinct wrapped residues whose z-gap to
  // the home subbox can be within reach. Boxes at offset dz have minimum
  // z separation (|dz| - 1) * sz.
  {
    std::set<std::int32_t> seen;
    const std::int32_t dmax =
        static_cast<std::int32_t>(std::floor(reach / sb_size_.z)) + 1;
    for (std::int32_t d = -dmax; d <= dmax; ++d) {
      seen.insert(wrap_centered(d, grid_.z));
    }
    tower_dz_.assign(seen.begin(), seen.end());
  }

  // Plate xy offsets: distinct wrapped residues whose footprint distance
  // can be within reach, restricted to the half-disc: lex(dx,dy) > 0, the
  // home column (0,0), and ambiguous offsets (resolved pairwise later).
  {
    const std::int32_t dmax_x =
        static_cast<std::int32_t>(std::floor(reach / sb_size_.x)) + 1;
    const std::int32_t dmax_y =
        static_cast<std::int32_t>(std::floor(reach / sb_size_.y)) + 1;
    std::set<std::pair<std::int32_t, std::int32_t>> seen;
    for (std::int32_t dy = -dmax_y; dy <= dmax_y; ++dy) {
      for (std::int32_t dx = -dmax_x; dx <= dmax_x; ++dx) {
        const double gx = std::max(0, std::abs(dx) - 1) * sb_size_.x;
        const double gy = std::max(0, std::abs(dy) - 1) * sb_size_.y;
        if (gx * gx + gy * gy > reach * reach) continue;
        const std::int32_t wx = wrap_centered(dx, grid_.x);
        const std::int32_t wy = wrap_centered(dy, grid_.y);
        const bool amb_x = wrap_ambiguous(dx, grid_.x);
        const bool amb_y = wrap_ambiguous(dy, grid_.y);
        // Half-disc selection on unambiguous offsets.
        bool keep;
        if (amb_y || (wy == 0 && amb_x)) {
          keep = true;  // ambiguous: ownership decided per box pair
        } else if (wy != 0) {
          keep = wy > 0;
        } else {
          keep = wx >= 0;  // includes the home column (0,0)
        }
        if (keep) seen.insert({wx, wy});
      }
    }
    for (const auto& [dx, dy] : seen) plate_half_.push_back({dx, dy, 0});
  }
}

Vec3i NtGeometry::coords_of(std::int32_t idx) const {
  const std::int32_t x = idx % grid_.x;
  const std::int32_t y = (idx / grid_.x) % grid_.y;
  const std::int32_t z = idx / (grid_.x * grid_.y);
  return {x, y, z};
}

Vec3i NtGeometry::wrap_coords(Vec3i c) const {
  c.x = ((c.x % grid_.x) + grid_.x) % grid_.x;
  c.y = ((c.y % grid_.y) + grid_.y) % grid_.y;
  c.z = ((c.z % grid_.z) + grid_.z) % grid_.z;
  return c;
}

Vec3i NtGeometry::node_of(const Vec3i& subbox) const {
  return {subbox.x / cfg_.subbox_div.x, subbox.y / cfg_.subbox_div.y,
          subbox.z / cfg_.subbox_div.z};
}

std::int32_t NtGeometry::node_index_of(const Vec3i& subbox) const {
  const Vec3i n = node_of(subbox);
  return (n.z * cfg_.node_grid.y + n.y) * cfg_.node_grid.x + n.x;
}

Vec3i NtGeometry::subbox_of(const Vec3d& r) const {
  const Vec3d s = cfg_.box.side();
  auto coord = [](double x, double L, std::int32_t n) {
    std::int32_t c = static_cast<std::int32_t>((x / L + 0.5) * n);
    if (c < 0) c = 0;
    if (c >= n) c = n - 1;
    return c;
  };
  return {coord(r.x, s.x, grid_.x), coord(r.y, s.y, grid_.y),
          coord(r.z, s.z, grid_.z)};
}

std::vector<Vec3i> NtGeometry::plate_full(double radius) const {
  const std::int32_t dmax_x =
      static_cast<std::int32_t>(std::floor(radius / sb_size_.x)) + 1;
  const std::int32_t dmax_y =
      static_cast<std::int32_t>(std::floor(radius / sb_size_.y)) + 1;
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (std::int32_t dy = -dmax_y; dy <= dmax_y; ++dy) {
    for (std::int32_t dx = -dmax_x; dx <= dmax_x; ++dx) {
      const double gx = std::max(0, std::abs(dx) - 1) * sb_size_.x;
      const double gy = std::max(0, std::abs(dy) - 1) * sb_size_.y;
      if (gx * gx + gy * gy > radius * radius) continue;
      seen.insert({wrap_centered(dx, grid_.x), wrap_centered(dy, grid_.y)});
    }
  }
  std::vector<Vec3i> out;
  out.reserve(seen.size());
  for (const auto& [dx, dy] : seen) out.push_back({dx, dy, 0});
  return out;
}

bool NtGeometry::owns_pair(const Vec3i& home, std::int32_t dz,
                           const Vec3i& dxy) const {
  const bool amb_x = (grid_.x % 2 == 0) && (dxy.x == grid_.x / 2);
  const bool amb_y = (grid_.y % 2 == 0) && (dxy.y == grid_.y / 2);
  const bool amb_z = (grid_.z % 2 == 0) && (dz == grid_.z / 2);

  // Tie-break on the absolute coordinates of the two boxes: the box pair
  // here is tower A = home + (0,0,dz), plate B = home + (dx,dy,0); the
  // mirror candidate evaluates the same comparison with roles swapped, so
  // exactly one side owns the pair.
  auto tuple_tiebreak = [&]() {
    const Vec3i A = wrap_coords({home.x, home.y, home.z + dz});
    const Vec3i B = wrap_coords({home.x + dxy.x, home.y + dxy.y, home.z});
    const auto ta = std::array<std::int32_t, 3>{A.x, A.y, A.z};
    const auto tb = std::array<std::int32_t, 3>{B.x, B.y, B.z};
    return ta < tb;
  };

  // Lexicographic xy decision (y major, then x).
  if (amb_y) return tuple_tiebreak();
  if (dxy.y != 0) return dxy.y > 0;
  if (amb_x) return tuple_tiebreak();
  if (dxy.x != 0) return dxy.x > 0;
  // Home column: decide on dz.
  if (amb_z) return tuple_tiebreak();
  if (dz != 0) return dz > 0;
  return true;  // same box; caller restricts to atom pairs i < j
}

std::int64_t NtGeometry::imported_subboxes_per_node() const {
  // Union of tower + plate subboxes over all home subboxes of one node,
  // minus the node's own subboxes. By symmetry every node is identical, so
  // evaluate for node (0,0,0).
  std::set<std::int32_t> region;
  for (std::int32_t sz = 0; sz < cfg_.subbox_div.z; ++sz) {
    for (std::int32_t sy = 0; sy < cfg_.subbox_div.y; ++sy) {
      for (std::int32_t sx = 0; sx < cfg_.subbox_div.x; ++sx) {
        const Vec3i h{sx, sy, sz};
        for (std::int32_t dz : tower_dz_)
          region.insert(index_of(wrap_coords({h.x, h.y, h.z + dz})));
        for (const Vec3i& p : plate_half_)
          region.insert(index_of(wrap_coords({h.x + p.x, h.y + p.y, h.z})));
      }
    }
  }
  std::int64_t imported = 0;
  for (std::int32_t idx : region) {
    if (node_index_of(coords_of(idx)) != 0) ++imported;
  }
  return imported;
}

double NtGeometry::import_volume_per_node() const {
  return static_cast<double>(imported_subboxes_per_node()) * sb_size_.x *
         sb_size_.y * sb_size_.z;
}

}  // namespace anton::nt
