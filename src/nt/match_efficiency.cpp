#include "nt/match_efficiency.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "nt/nt_geometry.hpp"

namespace anton::nt {

double match_efficiency_analytic(const MatchEfficiencyInput& in) {
  const double b = in.box_side / in.subbox_div;  // subbox side
  const double R = in.cutoff;
  const double v = b * b * b;
  // Continuous NT regions for one (cubic) subbox:
  //   tower:  b x b x (b + 2R)
  //   plate:  thickness b; footprint + half of its R-neighborhood ring
  const double vol_tower = b * b * (b + 2.0 * R);
  const double plate_area = b * b + R * (b + b) + 0.5 * M_PI * R * R;
  const double vol_plate = b * plate_area;
  // Necessary interactions per subbox: each of the rho*v home atoms pairs
  // with rho * (4/3) pi R^3 partners, halved for double counting; pairs
  // considered: all tower-plate combinations.
  const double necessary = v * (4.0 / 3.0) * M_PI * R * R * R / 2.0;
  const double considered = vol_tower * vol_plate;
  return necessary / considered;
}

double match_efficiency_monte_carlo(const MatchEfficiencyInput& in,
                                    double density, Xoshiro256& rng,
                                    int trials) {
  // Build a grid of boxes large enough that tower/plate offsets never
  // wrap ambiguously.
  const double b = in.box_side / in.subbox_div;
  const int reach = static_cast<int>(std::floor(in.cutoff / b)) + 1;
  int nodes = 1;
  while (nodes * in.subbox_div < 2 * reach + 3) ++nodes;

  NtConfig cfg;
  cfg.node_grid = {nodes, nodes, nodes};
  cfg.subbox_div = {in.subbox_div, in.subbox_div, in.subbox_div};
  cfg.cutoff = in.cutoff;
  cfg.box = PeriodicBox(in.box_side * nodes);
  NtGeometry geom(cfg);

  const double L = in.box_side * nodes;
  const std::int64_t natoms =
      static_cast<std::int64_t>(density * L * L * L + 0.5);

  double considered_total = 0.0;
  double necessary_total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<Vec3d> pos(natoms);
    for (auto& r : pos)
      r = {rng.uniform(-L / 2, L / 2), rng.uniform(-L / 2, L / 2),
           rng.uniform(-L / 2, L / 2)};
    // Bin atoms into subboxes.
    const std::int64_t nsub = geom.subbox_count();
    std::vector<std::vector<std::int32_t>> bins(nsub);
    for (std::int64_t i = 0; i < natoms; ++i)
      bins[geom.index_of(geom.subbox_of(pos[i]))].push_back(
          static_cast<std::int32_t>(i));

    // Evaluate the home subboxes of node (0,0,0) only (all nodes are
    // statistically identical); count considered pairs and in-range pairs.
    const double cut2 = in.cutoff * in.cutoff;
    for (std::int32_t sz = 0; sz < in.subbox_div; ++sz) {
      for (std::int32_t sy = 0; sy < in.subbox_div; ++sy) {
        for (std::int32_t sx = 0; sx < in.subbox_div; ++sx) {
          const Vec3i h{sx, sy, sz};
          for (std::int32_t dz : geom.tower_dz()) {
            const Vec3i tbox = geom.wrap_coords({h.x, h.y, h.z + dz});
            const auto& tower = bins[geom.index_of(tbox)];
            for (const Vec3i& p : geom.plate_half()) {
              if (!geom.owns_pair(h, dz, p)) continue;
              const Vec3i pbox = geom.wrap_coords({h.x + p.x, h.y + p.y, h.z});
              const auto& plate = bins[geom.index_of(pbox)];
              const bool same = geom.index_of(tbox) == geom.index_of(pbox);
              for (std::size_t a = 0; a < tower.size(); ++a) {
                const std::size_t b0 = same ? a + 1 : 0;
                for (std::size_t bi = b0; bi < plate.size(); ++bi) {
                  ++considered_total;
                  const Vec3d dr =
                      cfg.box.min_image(pos[tower[a]], pos[plate[bi]]);
                  if (dr.norm2() <= cut2) ++necessary_total;
                }
              }
            }
          }
        }
      }
    }
  }
  return considered_total > 0 ? necessary_total / considered_total : 0.0;
}

}  // namespace anton::nt
