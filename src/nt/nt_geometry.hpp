// The NT method (Shaw 2005; Section 3.2.1 of the paper).
//
// Anton parallelizes range-limited pairwise interactions with a neutral
// territory scheme: each node computes interactions between atoms in a
// *tower* region (its home-box column, extended +-R along z) and atoms in
// a *plate* region (its home slab, extended through a half-disc in xy).
// The interaction between two atoms may be computed by a node on which
// neither resides. To keep PPIP utilization high as systems shrink, each
// home box is divided into a regular array of subboxes and the NT method
// is applied to each subbox separately (Table 3, Figure 3e/f).
//
// This module provides the geometry: the tower/plate offset sets at subbox
// granularity, and -- the correctness heart of the engine -- the pair
// OWNERSHIP predicate deciding which (tower-subbox, plate-subbox) pair of
// boxes is interacted at which home subbox, such that every atom pair
// within the cutoff is computed exactly once, on any grid, including tiny
// and even-sized grids where wrapped offsets are ambiguous.
//
// Ownership rule for a box pair (A, B) considered at home subbox
// H = (A.x, A.y, B.z), with wrapped offsets dxy = B.xy - H.xy and
// dz = A.z - H.z:
//   * lex(dxy) > 0                         -> owned here
//   * lex(dxy) < 0                         -> owned at the mirror node
//   * dxy == 0 and dz > 0                  -> owned here (upper tower)
//   * dxy == 0 and dz == 0 (same box)      -> owned here, atom pairs i < j
//   * any wrapped offset equal to n/2 is its own negation ("ambiguous");
//     the tie is broken by a total order on the two boxes' coordinate
//     tuples, which both candidate nodes evaluate identically.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::nt {

struct NtConfig {
  Vec3i node_grid{1, 1, 1};   // nodes per axis
  Vec3i subbox_div{1, 1, 1};  // subboxes per node per axis
  double cutoff = 0.0;        // interaction cutoff R (A)
  double margin = 0.0;        // import expansion (constraint groups +
                              // delayed migration; Section 3.2.4)
  PeriodicBox box;
};

/// Centered wrap of an offset on a ring of size n, to (-n/2, n/2]. The
/// value n/2 (even n) is ambiguous: +n/2 and -n/2 are the same box.
std::int32_t wrap_centered(std::int32_t d, std::int32_t n);

/// True when |wrap| == n/2 with n even (offset is its own negation).
bool wrap_ambiguous(std::int32_t d, std::int32_t n);

class NtGeometry {
 public:
  explicit NtGeometry(const NtConfig& cfg);

  const NtConfig& config() const { return cfg_; }

  /// Total subbox grid: node_grid * subbox_div per axis.
  const Vec3i& grid() const { return grid_; }
  Vec3d subbox_size() const { return sb_size_; }
  std::int64_t subbox_count() const {
    return std::int64_t{1} * grid_.x * grid_.y * grid_.z;
  }

  /// Linear subbox index <-> coordinates.
  std::int32_t index_of(const Vec3i& c) const {
    return (c.z * grid_.y + c.y) * grid_.x + c.x;
  }
  Vec3i coords_of(std::int32_t idx) const;

  /// Wraps subbox coordinates into the grid.
  Vec3i wrap_coords(Vec3i c) const;

  /// Node owning a subbox.
  Vec3i node_of(const Vec3i& subbox) const;
  std::int32_t node_index_of(const Vec3i& subbox) const;

  /// Subbox containing a physical position in [-L/2, L/2)^3.
  Vec3i subbox_of(const Vec3d& r) const;

  /// Tower z-offsets: (0, 0, dz) for dz in [-tz, +tz].
  const std::vector<std::int32_t>& tower_dz() const { return tower_dz_; }

  /// Plate xy-offsets for the pairwise (half-disc) plate, including (0,0).
  const std::vector<Vec3i>& plate_half() const { return plate_half_; }

  /// Plate xy-offsets for the symmetric (full-disc) plate used by charge
  /// spreading / force interpolation (Figure 3c), for a given radius.
  std::vector<Vec3i> plate_full(double radius) const;

  /// The ownership predicate described in the header comment. `home` is
  /// the home subbox H; `dz` the tower offset (A = H + (0,0,dz)); `dxy`
  /// the plate offset (B = H + (dx,dy,0)). Returns true if this (A,B) box
  /// pair is interacted at H. For dz == 0 && dxy == 0 the caller must
  /// restrict to atom pairs i < j.
  bool owns_pair(const Vec3i& home, std::int32_t dz, const Vec3i& dxy) const;

  /// Import region statistics at whole-subbox granularity (Figure 3f):
  /// number of subboxes a node imports (tower + plate of all its home
  /// subboxes, minus the home subboxes themselves).
  std::int64_t imported_subboxes_per_node() const;
  double import_volume_per_node() const;

 private:
  NtConfig cfg_;
  Vec3i grid_;
  Vec3d sb_size_;
  std::vector<std::int32_t> tower_dz_;
  std::vector<Vec3i> plate_half_;
};

}  // namespace anton::nt
