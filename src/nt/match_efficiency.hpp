// Match efficiency of the NT method (Table 3).
//
// "Match efficiency" is the ratio of necessary interactions (atom pairs
// within the cutoff) to pairs of atoms considered by the match units
// (tower atoms x plate atoms). As chemical systems grow, efficiency falls
// until even eight match units per PPIP cannot keep the pipeline fed;
// dividing each home box into subboxes restores it (Section 3.2.1).
//
// Two estimators are provided: a closed-form one over the continuous
// tower/plate regions (the idealization Table 3 tabulates) and a
// Monte-Carlo one over the box-granular import regions our engine (and
// Anton's multicast, Figure 3f) actually uses.
#pragma once

#include "util/rng.hpp"

namespace anton::nt {

struct MatchEfficiencyInput {
  double box_side = 16.0;  // home box side (A)
  int subbox_div = 1;      // subboxes per axis within the home box
  double cutoff = 13.0;    // interaction cutoff (A)
};

/// Closed-form estimate over continuous NT regions at uniform density.
double match_efficiency_analytic(const MatchEfficiencyInput& in);

/// Monte-Carlo estimate over whole-subbox regions: samples uniform atoms
/// at `density` atoms/A^3 in a periodic grid of boxes and counts pairs
/// considered vs pairs within the cutoff.
double match_efficiency_monte_carlo(const MatchEfficiencyInput& in,
                                    double density, Xoshiro256& rng,
                                    int trials = 4);

}  // namespace anton::nt
