#include "nt/import_region.hpp"

#include <cmath>

namespace anton::nt {

namespace {
/// Volume of the R-neighborhood of a cube of side b (cube + slabs on the
/// faces + quarter-cylinders on the edges + sphere octants on corners).
double neighborhood_volume(double b, double R) {
  return b * b * b + 6.0 * b * b * R + 3.0 * M_PI * b * R * R +
         (4.0 / 3.0) * M_PI * R * R * R;
}
}  // namespace

double nt_import_volume(const RegionInput& in) {
  const double b = in.box_side, R = in.cutoff;
  const double v = b * b * b;
  const double tower = b * b * (b + 2.0 * R);
  const double plate = b * (b * b + 2.0 * b * R + 0.5 * M_PI * R * R);
  // Tower and plate overlap exactly in the home box.
  return (tower - v) + (plate - v);
}

double halfshell_import_volume(const RegionInput& in) {
  const double b = in.box_side, R = in.cutoff;
  return 0.5 * (neighborhood_volume(b, R) - b * b * b);
}

double fullshell_import_volume(const RegionInput& in) {
  const double b = in.box_side, R = in.cutoff;
  return neighborhood_volume(b, R) - b * b * b;
}

double mesh_nt_import_volume(const RegionInput& in) {
  const double b = in.box_side, R = in.cutoff;
  // Only tower atoms are imported; mesh plate points are generated
  // locally (Section 3.2.1). The tower import is the column minus home.
  return b * b * (b + 2.0 * R) - b * b * b;
}

}  // namespace anton::nt
