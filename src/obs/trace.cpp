#include "obs/trace.hpp"

#include <cstdio>
#include <stdexcept>

namespace anton::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::begin(const char* name, int tid) {
  auto& stack = open_[tid];
  SpanRecord r;
  r.name = name;
  r.tid = tid;
  r.depth = static_cast<int>(stack.size());
  r.seq = next_seq_++;
  r.t0_us = now_us();
  stack.push_back(spans_.size());
  spans_.push_back(std::move(r));
}

void Tracer::end(int tid) {
  auto it = open_.find(tid);
  if (it == open_.end() || it->second.empty())
    throw std::logic_error("Tracer::end with no open span on track");
  SpanRecord& r = spans_[it->second.back()];
  it->second.pop_back();
  r.dur_us = now_us() - r.t0_us;
}

void Tracer::append_span(const std::string& name, int tid, double dur_us) {
  SpanRecord r;
  r.name = name;
  r.tid = tid;
  r.depth = 0;
  r.seq = next_seq_++;
  r.t0_us = now_us();
  r.dur_us = dur_us;
  spans_.push_back(std::move(r));
}

std::map<std::string, double> Tracer::totals_by_name() const {
  std::map<std::string, double> totals;
  for (const SpanRecord& s : spans_) totals[s.name] += s.dur_us * 1e-6;
  return totals;
}

core::PhaseTimes Tracer::phase_times() const {
  core::PhaseTimes t;
  core::Phase p;
  for (const SpanRecord& s : spans_)
    if (phase_of_span(s.name, &p)) t[p] += s.dur_us * 1e-6;
  return t;
}

std::string Tracer::chrome_json() const {
  // Trace-event format: https://chromium.googlesource.com/catapult --
  // complete events carry ts + dur in microseconds; pid/tid place them on
  // tracks. Span names contain only [A-Za-z0-9._] so no escaping needed.
  std::string out = "[\n";
  char buf[256];
  bool first = true;
  for (const SpanRecord& s : spans_) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"cat\":\"anton\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"seq\":%lld,\"depth\":%d}}",
                  first ? "" : ",\n", s.name.c_str(), s.t0_us, s.dur_us,
                  s.tid, static_cast<long long>(s.seq), s.depth);
    out += buf;
    first = false;
  }
  out += "\n]\n";
  return out;
}

std::string Tracer::summary() const {
  struct Agg {
    std::int64_t count = 0;
    double total_s = 0;
  };
  std::map<std::string, Agg> agg;
  for (const SpanRecord& s : spans_) {
    Agg& a = agg[s.name];
    ++a.count;
    a.total_s += s.dur_us * 1e-6;
  }
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-24s %10s %14s %14s\n", "span", "count",
                "total (ms)", "mean (us)");
  out += buf;
  for (const auto& [name, a] : agg) {
    std::snprintf(buf, sizeof buf, "%-24s %10lld %14.3f %14.3f\n",
                  name.c_str(), static_cast<long long>(a.count),
                  a.total_s * 1e3, a.count ? a.total_s * 1e6 / a.count : 0.0);
    out += buf;
  }
  return out;
}

void Tracer::reset() {
  spans_.clear();
  open_.clear();
  next_seq_ = 0;
  workload_ = core::WorkloadProfile{};
  has_workload_ = false;
  epoch_ = std::chrono::steady_clock::now();
}

bool phase_of_span(const std::string& name, core::Phase* p) {
  using core::Phase;
  if (name == "range_limited") {
    *p = Phase::kRangeLimited;
  } else if (name == "gse.fft") {
    *p = Phase::kFft;
  } else if (name == "gse.spread" || name == "gse.interpolate" ||
             name == "mesh_interpolation") {
    *p = Phase::kMeshInterpolation;
  } else if (name == "correction") {
    *p = Phase::kCorrection;
  } else if (name == "bonded") {
    *p = Phase::kBonded;
  } else if (name == "integrate" || name == "constraints") {
    *p = Phase::kIntegration;
  } else {
    return false;
  }
  return true;
}

const char* span_name(core::Phase p) {
  switch (p) {
    case core::Phase::kRangeLimited:
      return "range_limited";
    case core::Phase::kFft:
      return "gse.fft";
    case core::Phase::kMeshInterpolation:
      return "mesh_interpolation";
    case core::Phase::kCorrection:
      return "correction";
    case core::Phase::kBonded:
      return "bonded";
    case core::Phase::kIntegration:
      return "integrate";
    default:
      return "unknown";
  }
}

}  // namespace anton::obs
