#include "obs/perf_xval.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace anton::obs {

std::string CrossValidation::summary() const {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof buf, "%-24s %14s %8s %14s %8s %9s\n", "phase",
                "model (us)", "model %", "traced (us)", "traced %",
                "d(frac)");
  out += buf;
  for (const PhaseDelta& d : phases) {
    std::snprintf(buf, sizeof buf,
                  "%-24s %14.3f %7.1f%% %14.3f %7.1f%% %+8.1f%%\n",
                  core::phase_name(d.phase), d.predicted_s * 1e6,
                  100.0 * d.predicted_frac, d.measured_s * 1e6,
                  100.0 * d.measured_frac, 100.0 * d.frac_delta());
    out += buf;
  }
  return out;
}

CrossValidation cross_validate(const Tracer& tracer,
                               const machine::WorkloadParams& wp,
                               const machine::MachineConfig& mc,
                               const Vec3i& node_grid, int natoms,
                               int mesh) {
  if (!tracer.has_workload())
    throw std::logic_error(
        "cross_validate: tracer holds no workload snapshot (attach it to "
        "an engine and run at least one cycle)");

  CrossValidation cv;
  cv.long_range_every = std::max(1, wp.long_range_every);
  cv.workload = machine::workload_from_profile(tracer.workload(), wp,
                                               node_grid, natoms, mesh);
  cv.predicted =
      machine::PerfModel(mc).evaluate(cv.workload, cv.long_range_every);
  cv.measured = tracer.phase_times();
  cv.steps_measured = tracer.workload().steps_accumulated;

  // Per-MTS-cycle seconds on both sides. Measured: total traced phase
  // seconds over the cycles covered. Predicted: every-step tasks occur
  // long_range_every times per cycle; mesh/FFT/correction tasks once.
  const double cycles = std::max<double>(
      1.0, static_cast<double>(cv.steps_measured) / cv.long_range_every);
  const double k = cv.long_range_every;
  const machine::TaskTimes& t = cv.predicted.tasks;
  const double pred[static_cast<int>(core::Phase::kCount)] = {
      k * (t.import_s + t.range_limited_s),          // range-limited
      t.fft_s,                                       // FFT
      t.mesh_interp_s,                               // mesh interpolation
      t.correction_s,                                // correction
      k * t.bonded_s,                                // bonded
      k * (t.integration_s + t.force_reduce_s),      // integration
  };
  double pred_total = 0.0;
  for (double v : pred) pred_total += v;
  const double meas_total = cv.measured.total();

  for (int p = 0; p < static_cast<int>(core::Phase::kCount); ++p) {
    PhaseDelta d;
    d.phase = static_cast<core::Phase>(p);
    d.predicted_s = pred[p];
    d.measured_s = cv.measured.seconds[p] / cycles;
    d.predicted_frac = pred_total > 0 ? pred[p] / pred_total : 0.0;
    d.measured_frac =
        meas_total > 0 ? cv.measured.seconds[p] / meas_total : 0.0;
    cv.phases.push_back(d);
  }
  return cv;
}

}  // namespace anton::obs
