// Perf-model cross-validation: the bridge between the functional engine
// (repro point 1) and the cycle-approximate machine model (repro point 2).
//
// A traced AntonEngine run leaves two artifacts in the Tracer: the
// measured per-phase wall-clock spans, and a snapshot of the measured
// per-node workload counters (captured at the end of run_cycles). This
// module feeds those measured counters straight into
// machine::workload_from_profile -- the exact same path
// AntonEngine::workload() consumers use, asserted bit-for-bit equal in
// test_obs -- evaluates the calibrated PerfModel on them, and reports
// predicted-vs-measured per-phase numbers side by side.
//
// The two columns are different machines (modelled Anton vs this host),
// so the meaningful delta is the *fraction* of a step each phase takes:
// the Table 2 comparison. Absolute seconds are reported too.
#pragma once

#include <string>
#include <vector>

#include "core/engine_types.hpp"
#include "machine/perf_model.hpp"
#include "machine/workload_model.hpp"
#include "obs/trace.hpp"

namespace anton::obs {

struct PhaseDelta {
  core::Phase phase = core::Phase::kRangeLimited;
  double predicted_s = 0.0;  // modelled Anton seconds per MTS cycle
  double measured_s = 0.0;   // traced host seconds per MTS cycle
  double predicted_frac = 0.0;  // share of the summed per-cycle phase time
  double measured_frac = 0.0;
  double frac_delta() const { return predicted_frac - measured_frac; }
};

struct CrossValidation {
  machine::StepWorkload workload;    // from the tracer-captured counters
  machine::StepTimeReport predicted; // PerfModel on that workload
  core::PhaseTimes measured;         // tracer spans folded onto phases
  std::int64_t steps_measured = 0;   // inner steps the spans cover
  int long_range_every = 1;
  std::vector<PhaseDelta> phases;    // one row per Table 2 phase

  std::string summary() const;
};

/// Requires tracer.has_workload() (run the engine with the tracer
/// attached through at least one run_cycles call). `node_grid`, `natoms`
/// and `mesh` describe the traced engine, as for workload_from_profile.
CrossValidation cross_validate(const Tracer& tracer,
                               const machine::WorkloadParams& wp,
                               const machine::MachineConfig& mc,
                               const Vec3i& node_grid, int natoms,
                               int mesh);

}  // namespace anton::obs
