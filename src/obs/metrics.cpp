#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace anton::obs {

MetricsRegistry::MetricsRegistry(int lanes, std::string prefix)
    : prefix_(std::move(prefix)) {
  if (lanes < 1) lanes = 1;
  shards_.resize(lanes);
}

std::string MetricsRegistry::qualify(const std::string& name) const {
  return prefix_.empty() ? name : prefix_ + name;
}

int MetricsRegistry::counter(const std::string& name) {
  const std::string full = qualify(name);
  for (std::size_t i = 0; i < counters_.size(); ++i)
    if (counters_[i].name == full) return static_cast<int>(i);
  counters_.push_back({full, 0});
  for (auto& shard : shards_) shard.push_back(0);
  return static_cast<int>(counters_.size()) - 1;
}

int MetricsRegistry::gauge(const std::string& name) {
  const std::string full = qualify(name);
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    if (gauges_[i].name == full) return static_cast<int>(i);
  gauges_.push_back({full, 0.0});
  return static_cast<int>(gauges_.size()) - 1;
}

int MetricsRegistry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const std::string full = qualify(name);
  for (std::size_t i = 0; i < histograms_.size(); ++i)
    if (histograms_[i].name == full) return static_cast<int>(i);
  if (!std::is_sorted(bounds.begin(), bounds.end()))
    throw std::invalid_argument("histogram bounds must be ascending");
  Histogram h;
  h.name = full;
  h.data.bounds = std::move(bounds);
  h.data.counts.assign(h.data.bounds.size() + 1, 0);
  histograms_.push_back(std::move(h));
  return static_cast<int>(histograms_.size()) - 1;
}

void MetricsRegistry::observe(int id, double value) {
  HistogramData& d = histograms_[id].data;
  const auto it =
      std::upper_bound(d.bounds.begin(), d.bounds.end(), value);
  ++d.counts[static_cast<std::size_t>(it - d.bounds.begin())];
  ++d.total_count;
  d.sum += value;
}

void MetricsRegistry::flush() {
  for (auto& shard : shards_) {
    for (std::size_t id = 0; id < shard.size(); ++id) {
      counters_[id].total += shard[id];
      shard[id] = 0;
    }
  }
}

std::int64_t MetricsRegistry::counter_by_name(const std::string& name) const {
  const std::string full = qualify(name);
  for (const Counter& c : counters_)
    if (c.name == full || c.name == name) return c.total;
  throw std::out_of_range("no counter named " + name);
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::counters()
    const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const Counter& c : counters_) out.emplace_back(c.name, c.total);
  return out;
}

std::string MetricsRegistry::summary() const {
  std::string out;
  char buf[192];
  for (const Counter& c : counters_) {
    std::snprintf(buf, sizeof buf, "counter   %-32s %20lld\n",
                  c.name.c_str(), static_cast<long long>(c.total));
    out += buf;
  }
  for (const Gauge& g : gauges_) {
    std::snprintf(buf, sizeof buf, "gauge     %-32s %20.6g\n",
                  g.name.c_str(), g.value);
    out += buf;
  }
  for (const Histogram& h : histograms_) {
    std::snprintf(buf, sizeof buf,
                  "histogram %-32s count=%lld sum=%.6g mean=%.6g\n",
                  h.name.c_str(),
                  static_cast<long long>(h.data.total_count), h.data.sum,
                  h.data.total_count ? h.data.sum / h.data.total_count : 0.0);
    out += buf;
  }
  return out;
}

void MetricsRegistry::reset() {
  for (Counter& c : counters_) c.total = 0;
  for (auto& shard : shards_) std::fill(shard.begin(), shard.end(), 0);
  for (Gauge& g : gauges_) g.value = 0.0;
  for (Histogram& h : histograms_) {
    std::fill(h.data.counts.begin(), h.data.counts.end(), 0);
    h.data.total_count = 0;
    h.data.sum = 0.0;
  }
}

}  // namespace anton::obs
