// Phase tracer: nested wall-clock spans over the engines' per-step phases.
//
// The paper's performance claims (Tables 1-4, Figures 5-7) are statements
// about *per-phase* time -- range-limited vs. GSE vs. bonded vs.
// integration vs. communication -- so the engines emit one span per phase
// per step through this tracer. Spans nest (an MTS cycle contains steps,
// a step contains force phases), export to chrome://tracing JSON, and
// aggregate into the Table 2 phase taxonomy for the perf-model
// cross-validation (obs/perf_xval.hpp).
//
// Determinism contract: spans are begun and ended only from the thread
// driving the engine, in program order, so the span *sequence* (names,
// nesting, per-step structure) is identical for any nthreads or node
// decomposition; only the wall-clock timestamps vary run to run. Tracing
// writes exclusively to tracer-owned memory, never to engine state, so an
// attached tracer cannot perturb the trajectory (asserted in test_obs).
//
// Disabled cost: engines hold a `Tracer*` that defaults to nullptr; the
// RAII `Tracer::Span` guard is a no-op through a null pointer. For code
// that wants tracing compiled out entirely, `BasicSpan<NullSink>` is a
// compile-time-checked empty type (static_asserts below).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "core/engine_types.hpp"

namespace anton::obs {

/// A sink that discards every span at compile time. Kept empty and
/// trivial -- the static_asserts are the "zero-cost when disabled" check.
struct NullSink {
  static constexpr bool kEnabled = false;
  void begin(const char*, int) {}
  void end(int) {}
};
static_assert(std::is_empty_v<NullSink>);
static_assert(std::is_trivially_destructible_v<NullSink>);

/// RAII span against any sink type. With NullSink it is an empty type the
/// optimizer erases; with Tracer (below) it brackets a real span.
template <class Sink>
class BasicSpan {
 public:
  BasicSpan(Sink& sink, const char* name, int tid = 0) : sink_(sink),
                                                         tid_(tid) {
    sink_.begin(name, tid_);
  }
  ~BasicSpan() { sink_.end(tid_); }
  BasicSpan(const BasicSpan&) = delete;
  BasicSpan& operator=(const BasicSpan&) = delete;

 private:
  [[no_unique_address]] Sink& sink_;
  int tid_;
};
static_assert(!NullSink::kEnabled, "NullSink must advertise disabled");

/// One completed (or still-open) span. `seq` is the begin order -- the
/// deterministic part of the record; t0/dur are wall-clock measurements.
struct SpanRecord {
  std::string name;
  int tid = 0;    // track id (0 = engine main; VM uses node index + 1)
  int depth = 0;  // nesting depth within its track
  std::int64_t seq = 0;
  double t0_us = 0.0;   // begin, relative to the tracer epoch
  double dur_us = 0.0;  // 0 while open
};

class Tracer {
 public:
  static constexpr bool kEnabled = true;

  Tracer();

  /// Begin/end a span on track `tid`. Spans on one track must nest.
  void begin(const char* name, int tid = 0);
  void end(int tid = 0);

  /// Append an already-measured span (depth 0) on track `tid`. Used by
  /// the SPMD coordinator to replay per-rank spans reported over the
  /// wire: the duration was measured on the worker, so only the begin
  /// timestamp is local.
  void append_span(const std::string& name, int tid, double dur_us);

  /// RAII guard that is a no-op when `t` is nullptr, so instrumented code
  /// needs no branches at the call sites.
  class Span {
   public:
    Span(Tracer* t, const char* name, int tid = 0) : t_(t), tid_(tid) {
      if (t_) t_->begin(name, tid_);
    }
    ~Span() {
      if (t_) t_->end(tid_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Tracer* t_;
    int tid_;
  };

  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Wall-clock seconds summed per span name (all tracks).
  std::map<std::string, double> totals_by_name() const;

  /// Wall-clock seconds folded onto the Table 2 phase taxonomy via
  /// phase_of_span(); spans with no phase mapping are dropped.
  core::PhaseTimes phase_times() const;

  /// Snapshot of the engine's measured workload counters, captured by
  /// AntonEngine::run_cycles when a tracer is attached; the bridge that
  /// feeds measured counters into machine::WorkloadModel (perf_xval).
  void capture_workload(const core::WorkloadProfile& p) {
    workload_ = p;
    has_workload_ = true;
  }
  bool has_workload() const { return has_workload_; }
  const core::WorkloadProfile& workload() const { return workload_; }

  /// chrome://tracing "trace event" JSON: an array of complete ("X")
  /// events in begin (seq) order. Load via chrome://tracing or Perfetto.
  std::string chrome_json() const;

  /// Plain-text per-phase summary (name, count, total, mean).
  std::string summary() const;

  void reset();

 private:
  double now_us() const;

  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> spans_;
  std::map<int, std::vector<std::size_t>> open_;  // per-track span stack
  std::int64_t next_seq_ = 0;
  core::WorkloadProfile workload_;
  bool has_workload_ = false;
};

/// Maps a span name onto the Table 2 phase taxonomy. Returns true and
/// sets `p` for force/integration phases; returns false for structural
/// spans ("mts_cycle", "step", "migrate", "force_reduce", "vm.*").
bool phase_of_span(const std::string& name, core::Phase* p);

/// Canonical span name the instrumented engines use for each phase.
const char* span_name(core::Phase p);

/// Accumulates one phase interval into a PhaseTimes AND emits the
/// matching span when `tracer` is non-null: the single timing primitive
/// shared by ReferenceEngine and the benches, so phase tables and traces
/// always agree.
class PhaseTimer {
 public:
  PhaseTimer(core::PhaseTimes& t, core::Phase p, Tracer* tracer)
      : t_(t), p_(p), tracer_(tracer),
        start_(std::chrono::steady_clock::now()) {
    if (tracer_) tracer_->begin(span_name(p_));
  }
  ~PhaseTimer() {
    t_[p_] += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    if (tracer_) tracer_->end();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  core::PhaseTimes& t_;
  core::Phase p_;
  Tracer* tracer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace anton::obs
