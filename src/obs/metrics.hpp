// Metrics registry: named counters, gauges and histograms with lock-free
// per-lane counter shards.
//
// Counters follow the same sharding discipline as the engine's force and
// workload accumulators (PR 1): each pool lane increments only its own
// shard slot, and the shards are reduced serially at step boundaries
// (flush()). Two consequences:
//
//  * the hot path is a plain add to lane-private memory -- no locks, no
//    atomics, no cross-lane cache traffic;
//  * metrics touch only registry-owned memory, never engine state, so an
//    attached registry cannot perturb the trajectory, exactly as the
//    per-thread force shards cannot (asserted in test_obs).
//
// Registration is serial-phase only (before the parallel passes start);
// ids are dense ints so the hot path indexes, never hashes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anton::obs {

struct HistogramData {
  std::vector<double> bounds;        // ascending upper bounds
  std::vector<std::int64_t> counts;  // bounds.size() + 1 buckets
  std::int64_t total_count = 0;
  double sum = 0.0;
};

class MetricsRegistry {
 public:
  /// `lanes` must cover every lane id that will write counters (the
  /// engine's thread-pool lane count). A non-empty `prefix` namespaces
  /// the registry: every registered name is stored (and reported) as
  /// `prefix + name`, so per-tenant registries publish isolated
  /// namespaces like `job.3.engine.steps` while instrumented code keeps
  /// registering plain names. Readout by name accepts either form.
  explicit MetricsRegistry(int lanes = 1, std::string prefix = "");

  int lanes() const { return static_cast<int>(shards_.size()); }
  const std::string& prefix() const { return prefix_; }

  // --- registration (serial phase only; idempotent by name) ---
  int counter(const std::string& name);
  int gauge(const std::string& name);
  int histogram(const std::string& name, std::vector<double> bounds);

  // --- hot path ---
  /// Adds `delta` to lane `lane`'s shard of counter `id`. Lock-free:
  /// lanes write disjoint slots.
  void count(int id, int lane, std::int64_t delta = 1) {
    shards_[lane][id] += delta;
  }
  void set_gauge(int id, double value) { gauges_[id].value = value; }
  /// Serial contexts only (per-step timings observed by the driver).
  void observe(int id, double value);

  /// Step-boundary reduction: folds every lane shard into the counter
  /// totals and zeroes the shards.
  void flush();

  // --- readout (after flush) ---
  std::int64_t counter_value(int id) const { return counters_[id].total; }
  double gauge_value(int id) const { return gauges_[id].value; }
  const HistogramData& histogram_data(int id) const {
    return histograms_[id].data;
  }
  std::int64_t counter_by_name(const std::string& name) const;

  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::string summary() const;

  /// Zeroes every counter total, shard, gauge and histogram.
  void reset();

 private:
  struct Counter {
    std::string name;
    std::int64_t total = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    HistogramData data;
  };

  std::string qualify(const std::string& name) const;

  std::string prefix_;
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
  std::vector<std::vector<std::int64_t>> shards_;  // [lane][counter id]
};

}  // namespace anton::obs
