// Tiered-index, block-floating-point, piecewise-cubic function tables.
//
// The PPIP evaluates the electrostatic and van der Waals kernels as
// "tabulated piecewise-cubic polynomials ... indexed by r^2 rather than r"
// (Section 4). A tiered indexing scheme divides the domain of (r/R)^2 into
// non-uniform power-of-two tiers, denser where the function varies fast;
// the paper's example layout (64 entries on [0,1/128), 96 on [1/128,1/32),
// 56 on [1/32,1/4), 24 on [1/4,1)) is the default here. Each table entry
// holds four cubic coefficients plus one shared exponent, "as in
// block-floating-point schemes"; the minimax fit per segment comes from
// the Remez exchange algorithm, with endpoint adjustment for continuity.
//
// Two evaluation paths are provided:
//  * eval()       -- double-precision Horner; used for accuracy baselines.
//  * eval_fixed() -- integer Horner with round-to-nearest/even at every
//                    stage, emulating the PPIP's narrow (19-22 bit)
//                    datapaths. A pure function of its inputs, hence
//                    deterministic and decomposition-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace anton::tables {

/// One tier: `entries` equal-width segments covering [lo, hi) where hi is
/// the next tier's lo (or 1.0 for the last tier).
struct Tier {
  double lo = 0.0;
  int entries = 0;
};

struct TieredLayout {
  std::vector<Tier> tiers;

  /// The layout from the paper's Section 4 example (240 entries total).
  static TieredLayout anton_default();

  /// A flat layout (single tier) for comparison/ablation.
  static TieredLayout uniform(int entries);

  int total_entries() const;

  /// Maps u in [0, 1) to a global segment index and the local coordinate
  /// t in [0, 1) within that segment. u outside [0,1) is clamped.
  int find_segment(double u, double& t) const;

  /// [lo, hi) bounds of a global segment index.
  void segment_bounds(int index, double& lo, double& hi) const;
};

/// One table entry: cubic coefficients as signed integers sharing a single
/// power-of-two exponent. value(t) = (c0 + c1 t + c2 t^2 + c3 t^3) * 2^exp.
struct Segment {
  std::int32_t c[4] = {0, 0, 0, 0};
  int exponent = 0;
};

class TieredTable {
 public:
  TieredTable() = default;

  /// Fits `f` (a function of u in [u_min, 1)) over the layout. Below u_min
  /// the table clamps to f(u_min); this guards kernels that diverge at
  /// contact (e.g. 1/r^14) -- a stable simulation never samples there.
  static TieredTable build(std::function<double(double)> f,
                           const TieredLayout& layout, int mantissa_bits = 22,
                           double u_min = 0.0);

  bool empty() const { return segs_.empty(); }

  /// Double-precision evaluation of the fitted (quantized) table.
  double eval(double u) const;

  /// Integer-datapath evaluation (PPIP emulation); bitwise deterministic.
  double eval_fixed(double u) const;

  /// Batched eval_fixed over n inputs: out[i] == eval_fixed(u[i]) bitwise,
  /// for every input. The hot path runs the whole PPIP pipeline (segment
  /// search, 24-bit fraction, RNE Horner, block-exponent scale) in flat
  /// branch-free lanes the compiler can vectorize; the integer Horner is
  /// carried in doubles, which is exact because every intermediate is an
  /// integer below 2^52 (see the proof at the implementation). Tables
  /// whose parameters fall outside that proof fall back to scalar calls.
  void eval_fixed_n(const double* u, double* out, std::size_t n) const;

  /// Largest |f - table| observed during the fit scan.
  double max_fit_error() const { return worst_fit_error_; }

  const TieredLayout& layout() const { return layout_; }
  const std::vector<Segment>& segments() const { return segs_; }

 private:
  void build_batch_lanes(int mantissa_bits);

  TieredLayout layout_;
  std::vector<Segment> segs_;
  double u_min_ = 0.0;
  double worst_fit_error_ = 0.0;

  // Flattened lanes for eval_fixed_n: per-tier constants of the segment
  // search and the per-segment scale 2^exponent, precomputed at build.
  std::vector<double> tier_lo_, tier_w_;
  std::vector<std::int32_t> tier_base_, tier_entries_;
  std::vector<double> seg_scale_;
  bool fast_batch_ = false;
};

}  // namespace anton::tables
