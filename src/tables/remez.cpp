#include "tables/remez.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace anton::tables {

double polyval(const std::vector<double>& coeffs, double t) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * t + coeffs[i];
  return acc;
}

namespace {

// Solves A x = b in place by Gaussian elimination with partial pivoting.
// Dimensions are tiny (degree + 2), so no fancier method is warranted.
std::vector<double> solve(std::vector<std::vector<double>> A,
                          std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(A[r][col]) > std::fabs(A[piv][col])) piv = r;
    std::swap(A[piv], A[col]);
    std::swap(b[piv], b[col]);
    if (A[col][col] == 0.0) throw std::runtime_error("remez: singular system");
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = A[r][col] / A[col][col];
      if (m == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) A[r][c] -= m * A[col][c];
      b[r] -= m * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= A[i][c] * x[c];
    x[i] = s / A[i][i];
  }
  return x;
}

}  // namespace

RemezResult remez_minimax(const std::function<double(double)>& f, double a,
                          double b, int degree, int iterations,
                          int grid_points) {
  if (!(b > a)) throw std::invalid_argument("remez: empty interval");
  const int n = degree + 2;  // reference points for equioscillation

  // Work in the normalized variable u in [0,1] for conditioning; convert
  // the coefficients back at the end.
  auto g = [&](double u) { return f(a + (b - a) * u); };

  // Initial reference: Chebyshev extrema mapped to [0,1].
  std::vector<double> ref(n);
  for (int i = 0; i < n; ++i)
    ref[i] = 0.5 * (1.0 - std::cos(M_PI * i / (n - 1)));

  std::vector<double> coeffs(degree + 1, 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    // Solve for coefficients and the levelled error E:
    //   sum_k c_k u_i^k + (-1)^i E = g(u_i)
    std::vector<std::vector<double>> A(n, std::vector<double>(n));
    std::vector<double> rhs(n);
    for (int i = 0; i < n; ++i) {
      double p = 1.0;
      for (int k = 0; k <= degree; ++k) {
        A[i][k] = p;
        p *= ref[i];
      }
      A[i][degree + 1] = (i % 2 == 0) ? 1.0 : -1.0;
      rhs[i] = g(ref[i]);
    }
    std::vector<double> sol = solve(std::move(A), std::move(rhs));
    coeffs.assign(sol.begin(), sol.begin() + degree + 1);

    // Scan a dense grid for the extrema of the error and build the next
    // reference from local maxima of |err| (classic multi-point exchange).
    std::vector<double> grid(grid_points + 1), err(grid_points + 1);
    for (int i = 0; i <= grid_points; ++i) {
      grid[i] = static_cast<double>(i) / grid_points;
      err[i] = g(grid[i]) - polyval(coeffs, grid[i]);
    }
    std::vector<double> extrema;
    extrema.push_back(grid.front());
    for (int i = 1; i < grid_points; ++i) {
      if ((err[i] - err[i - 1]) * (err[i + 1] - err[i]) <= 0.0)
        extrema.push_back(grid[i]);
    }
    extrema.push_back(grid.back());

    // Keep the n extrema with alternating error signs and largest
    // magnitudes: greedily walk the list, starting a new run whenever the
    // sign flips, keeping the best point of each run.
    std::vector<double> picked;
    double best_u = extrema[0];
    double best_e = err[static_cast<int>(best_u * grid_points + 0.5)];
    for (std::size_t i = 1; i < extrema.size(); ++i) {
      const double e = err[static_cast<int>(extrema[i] * grid_points + 0.5)];
      if ((e >= 0) == (best_e >= 0)) {
        if (std::fabs(e) > std::fabs(best_e)) {
          best_e = e;
          best_u = extrema[i];
        }
      } else {
        picked.push_back(best_u);
        best_u = extrema[i];
        best_e = e;
      }
    }
    picked.push_back(best_u);

    if (static_cast<int>(picked.size()) >= n) {
      // Keep the n consecutive points with the largest minimum |err|.
      // For smooth f a simple choice -- the last n points -- works; prefer
      // the window containing the global max error.
      std::size_t best_start = 0;
      double best_min = -1.0;
      for (std::size_t s = 0; s + n <= picked.size(); ++s) {
        double mn = 1e300;
        for (int k = 0; k < n; ++k) {
          const double e =
              err[static_cast<int>(picked[s + k] * grid_points + 0.5)];
          mn = std::min(mn, std::fabs(e));
        }
        if (mn > best_min) {
          best_min = mn;
          best_start = s;
        }
      }
      for (int i = 0; i < n; ++i) ref[i] = picked[best_start + i];
    }
    // If we found fewer alternations than needed, keep the old reference;
    // the solve above still improves the fit each iteration.
  }

  // Final error scan.
  double max_err = 0.0;
  for (int i = 0; i <= grid_points; ++i) {
    const double u = static_cast<double>(i) / grid_points;
    max_err = std::max(max_err, std::fabs(g(u) - polyval(coeffs, u)));
  }

  // Convert coefficients from u in [0,1] back to t in [a,b]:
  // p(u) with u = (t - a) / (b - a).
  const double inv = 1.0 / (b - a);
  std::vector<double> out(degree + 1, 0.0);
  // Expand sum c_k ((t-a)*inv)^k via binomial theorem.
  for (int k = 0; k <= degree; ++k) {
    double scale = coeffs[k] * std::pow(inv, k);
    // (t - a)^k = sum_j C(k,j) t^j (-a)^(k-j)
    double binom = 1.0;
    for (int j = 0; j <= k; ++j) {
      out[j] += scale * binom * std::pow(-a, k - j);
      binom = binom * (k - j) / (j + 1);
    }
  }
  return {std::move(out), max_err};
}

}  // namespace anton::tables
