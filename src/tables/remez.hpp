// Remez exchange algorithm for minimax polynomial approximation.
//
// The paper (Section 4): "the Remez exchange algorithm is used to compute
// the minimax polynomial on each segment, after which the coefficients are
// adjusted to make the function continuous across segment boundaries."
// This is that offline fitting step. Degree is small (cubic in the PPIP),
// so a dense-grid exchange with Gaussian elimination is entirely adequate.
#pragma once

#include <functional>
#include <vector>

namespace anton::tables {

struct RemezResult {
  /// Monomial coefficients c[0..degree] of p(t) = sum c_k t^k on [a, b]
  /// (t is the raw variable, not rescaled).
  std::vector<double> coeffs;
  /// Final equioscillation error estimate (max |f - p| over the grid).
  double max_error = 0.0;
};

/// Computes the (approximately) minimax polynomial of the given degree for
/// f on [a, b]. `grid_points` controls the density of the error scan.
RemezResult remez_minimax(const std::function<double(double)>& f, double a,
                          double b, int degree, int iterations = 12,
                          int grid_points = 512);

/// Evaluates a monomial polynomial via Horner's rule.
double polyval(const std::vector<double>& coeffs, double t);

}  // namespace anton::tables
