#include "tables/tiered_table.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fixed/fixed.hpp"
#include "tables/remez.hpp"

namespace anton::tables {

TieredLayout TieredLayout::anton_default() {
  return TieredLayout{{
      {0.0, 64},
      {1.0 / 128.0, 96},
      {1.0 / 32.0, 56},
      {1.0 / 4.0, 24},
  }};
}

TieredLayout TieredLayout::uniform(int entries) {
  return TieredLayout{{{0.0, entries}}};
}

int TieredLayout::total_entries() const {
  int n = 0;
  for (const Tier& t : tiers) n += t.entries;
  return n;
}

int TieredLayout::find_segment(double u, double& t) const {
  if (u < 0.0) u = 0.0;
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  int base = 0;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const double lo = tiers[i].lo;
    const double hi = (i + 1 < tiers.size()) ? tiers[i + 1].lo : 1.0;
    if (u < hi) {
      const double w = (hi - lo) / tiers[i].entries;
      int k = static_cast<int>((u - lo) / w);
      if (k >= tiers[i].entries) k = tiers[i].entries - 1;
      t = (u - (lo + k * w)) / w;
      if (t < 0.0) t = 0.0;
      if (t >= 1.0) t = std::nextafter(1.0, 0.0);
      return base + k;
    }
    base += tiers[i].entries;
  }
  // Unreachable: the clamp above guarantees u < 1.
  t = 0.0;
  return total_entries() - 1;
}

void TieredLayout::segment_bounds(int index, double& lo, double& hi) const {
  int base = 0;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const double tlo = tiers[i].lo;
    const double thi = (i + 1 < tiers.size()) ? tiers[i + 1].lo : 1.0;
    if (index < base + tiers[i].entries) {
      const double w = (thi - tlo) / tiers[i].entries;
      lo = tlo + (index - base) * w;
      hi = lo + w;
      return;
    }
    base += tiers[i].entries;
  }
  throw std::out_of_range("TieredLayout::segment_bounds");
}

namespace {

Segment quantize_segment(const double d[4], int mantissa_bits) {
  Segment s;
  double m = 0.0;
  for (int i = 0; i < 4; ++i) m = std::max(m, std::fabs(d[i]));
  if (m == 0.0) return s;
  const double limit = static_cast<double>((1 << (mantissa_bits - 1)) - 1);
  int e = 0;
  // Smallest exponent such that all |d_i| / 2^e <= limit.
  e = static_cast<int>(std::ceil(std::log2(m / limit)));
  // Guard against log2 rounding.
  while (m / std::ldexp(1.0, e) > limit) ++e;
  s.exponent = e;
  const double inv = std::ldexp(1.0, -e);
  for (int i = 0; i < 4; ++i)
    s.c[i] = static_cast<std::int32_t>(std::llrint(d[i] * inv));
  return s;
}

}  // namespace

TieredTable TieredTable::build(std::function<double(double)> f,
                               const TieredLayout& layout, int mantissa_bits,
                               double u_min) {
  if (mantissa_bits < 8 || mantissa_bits > 30)
    throw std::invalid_argument("TieredTable: mantissa bits out of range");
  TieredTable tbl;
  tbl.layout_ = layout;
  tbl.u_min_ = u_min;
  const int n = layout.total_entries();
  tbl.segs_.resize(n);

  for (int k = 0; k < n; ++k) {
    double lo, hi;
    layout.segment_bounds(k, lo, hi);
    const double w = hi - lo;
    // Clamp the sampled domain at u_min; a constant segment below it.
    auto sample = [&](double t) {
      const double u = std::max(lo + t * w, u_min);
      return f(u);
    };
    double d[4];
    if (hi <= u_min) {
      d[0] = f(u_min);
      d[1] = d[2] = d[3] = 0.0;
    } else {
      RemezResult r = remez_minimax(sample, 0.0, 1.0, 3);
      for (int i = 0; i < 4; ++i)
        d[i] = (i < static_cast<int>(r.coeffs.size())) ? r.coeffs[i] : 0.0;
      // Endpoint adjustment for continuity across segment boundaries
      // (shifts the fit so p(0) and p(1) match f exactly, at the cost of a
      // bounded increase in interior error).
      const double e0 = sample(0.0) - polyval(r.coeffs, 0.0);
      const double e1 = sample(1.0) - polyval(r.coeffs, 1.0);
      d[0] += e0;
      d[1] += e1 - e0;
    }
    tbl.segs_[k] = quantize_segment(d, mantissa_bits);
  }
  tbl.build_batch_lanes(mantissa_bits);

  // Record the worst-case error of the quantized integer path over a scan.
  double worst = 0.0;
  const int scan = 16 * n;
  for (int i = 0; i < scan; ++i) {
    const double u = (i + 0.5) / scan;
    if (u < u_min) continue;
    worst = std::max(worst, std::fabs(f(u) - tbl.eval_fixed(u)));
  }
  tbl.worst_fit_error_ = worst;
  return tbl;
}

double TieredTable::eval(double u) const {
  double t;
  const int k = layout_.find_segment(std::max(u, u_min_), t);
  const Segment& s = segs_[k];
  const double acc =
      ((s.c[3] * t + s.c[2]) * t + s.c[1]) * t + s.c[0];
  return std::ldexp(acc, s.exponent);
}

void TieredTable::build_batch_lanes(int mantissa_bits) {
  tier_lo_.clear();
  tier_w_.clear();
  tier_base_.clear();
  tier_entries_.clear();
  seg_scale_.clear();

  std::int32_t base = 0;
  for (std::size_t i = 0; i < layout_.tiers.size(); ++i) {
    const double lo = layout_.tiers[i].lo;
    const double hi =
        (i + 1 < layout_.tiers.size()) ? layout_.tiers[i + 1].lo : 1.0;
    tier_lo_.push_back(lo);
    tier_w_.push_back((hi - lo) / layout_.tiers[i].entries);
    tier_base_.push_back(base);
    tier_entries_.push_back(layout_.tiers[i].entries);
    base += layout_.tiers[i].entries;
  }

  // The batched path replaces eval_fixed's ldexp with a multiply by a
  // precomputed 2^exponent, and carries the integer Horner in doubles.
  // Both are exact only under provable bounds:
  //  * |c_i| <= 2^(mb-1), so every Horner intermediate |acc| < 2^(mb+1)
  //    and every product |acc * tf| < 2^(mb+25); for mb <= 26 that stays
  //    below 2^51, where doubles represent integers exactly and the
  //    magic-number RNE round equals llrint.
  //  * acc * 2^e == ldexp(acc, e) bitwise iff the result is normal; with
  //    |e| <= 960 and |acc| < 2^27 both the scale and the product are far
  //    from the subnormal/overflow ranges.
  fast_batch_ = mantissa_bits <= 26;
  seg_scale_.reserve(segs_.size());
  for (const Segment& s : segs_) {
    if (s.exponent < -960 || s.exponent > 960) fast_batch_ = false;
    seg_scale_.push_back(std::ldexp(1.0, s.exponent));
  }
}

double TieredTable::eval_fixed(double u) const {
  double t;
  const int k = layout_.find_segment(std::max(u, u_min_), t);
  const Segment& s = segs_[k];
  // t as a 24-bit fraction; Horner with RNE rounding after each multiply,
  // mirroring the PPIP datapath of Figure 4a.
  const std::int64_t tf = std::min<std::int64_t>(
      static_cast<std::int64_t>(std::llrint(t * 16777216.0)), 16777215);
  std::int64_t acc = s.c[3];
  for (int i = 2; i >= 0; --i)
    acc = fixed::rshift_rne(acc * tf, 24) + s.c[i];
  return std::ldexp(static_cast<double>(acc), s.exponent);
}

void TieredTable::eval_fixed_n(const double* u, double* out,
                               std::size_t n) const {
  if (!fast_batch_) {
    for (std::size_t i = 0; i < n; ++i) out[i] = eval_fixed(u[i]);
    return;
  }
  // Why carrying the "integer" PPIP pipeline in double lanes is exact:
  //  * tf = llrint(t * 2^24) with t in [0,1) is an integer < 2^24; the
  //    magic-number round (fixed::rne_round) equals llrint on |x| < 2^51.
  //  * Each Horner stage computes rshift_rne(acc * tf, 24) + c. In doubles
  //    that is rne_round((acc * tf) * 2^-24) + c: the product is an
  //    integer < 2^51 (exact), the power-of-two scale only changes the
  //    exponent (exact), and rne_round reproduces the shift's
  //    round-to-nearest/even on the now-fractional value. Floor-shift +
  //    half/even fixup over 24 bits and RNE on x/2^24 are the same
  //    function, so every stage matches rshift_rne bit for bit.
  //  * The final acc * seg_scale_ equals ldexp(acc, exponent) because the
  //    result is normal (exponent range checked at build).
  constexpr std::size_t kChunk = 64;
  constexpr double kInv24 = 1.0 / 16777216.0;
  const double one_below = std::nextafter(1.0, 0.0);
  const int ntiers = static_cast<int>(tier_lo_.size());
  double tf[kChunk];
  std::int32_t seg[kChunk];

  for (std::size_t i0 = 0; i0 < n; i0 += kChunk) {
    const std::size_t m = std::min(kChunk, n - i0);
    // Segment search as flat arithmetic: the tiers partition [0,1) in
    // ascending order, so the tier index is the count of tier lower
    // bounds <= u; the in-tier math then mirrors find_segment exactly
    // (the divisions must stay divisions -- a reciprocal multiply would
    // round differently and break bitwise identity with the scalar path).
    for (std::size_t i = 0; i < m; ++i) {
      double uu = std::max(u[i0 + i], u_min_);
      if (uu < 0.0) uu = 0.0;
      if (uu >= 1.0) uu = one_below;
      int ti = 0;
      for (int j = 1; j < ntiers; ++j) ti += uu >= tier_lo_[j] ? 1 : 0;
      const double lo = tier_lo_[ti];
      const double w = tier_w_[ti];
      int k = static_cast<int>((uu - lo) / w);
      if (k >= tier_entries_[ti]) k = tier_entries_[ti] - 1;
      double t = (uu - (lo + k * w)) / w;
      if (t < 0.0) t = 0.0;
      if (t >= 1.0) t = one_below;
      seg[i] = tier_base_[ti] + k;
      double f = fixed::rne_round(t * 16777216.0);
      if (f > 16777215.0) f = 16777215.0;
      tf[i] = f;
    }
    // RNE Horner + block-exponent scale, gathered per segment.
    for (std::size_t i = 0; i < m; ++i) {
      const Segment& s = segs_[seg[i]];
      double acc = s.c[3];
      acc = fixed::rne_round(acc * tf[i] * kInv24) + s.c[2];
      acc = fixed::rne_round(acc * tf[i] * kInv24) + s.c[1];
      acc = fixed::rne_round(acc * tf[i] * kInv24) + s.c[0];
      out[i0 + i] = acc * seg_scale_[seg[i]];
    }
  }
}

}  // namespace anton::tables
