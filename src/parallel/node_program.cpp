#include "parallel/node_program.hpp"

#include <cmath>

#include "constraints/shake.hpp"
#include "ewald/kernels.hpp"
#include "htis/match_unit.hpp"
#include "integrate/kinetic.hpp"
#include "util/units.hpp"

namespace anton::parallel {

namespace {
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

PairResult eval_pair(const NodeProgram& np, std::int32_t i0, std::int32_t j0,
                     const Vec3i& p0, const Vec3i& p1, bool with_energy) {
  const Topology& top = *np.top;
  PairResult out;
  // Canonical pair orientation: lower global index first, so the computed
  // (quantized) force is identical no matter which node or decomposition
  // evaluates the pair.
  const bool in_order = i0 < j0;
  out.lo = in_order ? i0 : j0;
  out.hi = in_order ? j0 : i0;
  const Vec3i d = fixed::PositionLattice::delta(in_order ? p0 : p1,
                                                in_order ? p1 : p0);
  if (!htis::match_plausible(d, np.r2_limit_lattice)) return out;
  out.status = PairStatus::kBeyondCutoff;
  const std::uint64_t r2lat = htis::exact_r2_lattice(d);
  if (r2lat > np.r2_limit_lattice) return out;
  if (np.have_molecules && top.molecule[out.lo] == top.molecule[out.hi] &&
      np.excl->excluded(out.lo, out.hi)) {
    out.status = PairStatus::kExcluded;
    return out;
  }
  out.status = PairStatus::kComputed;
  const double r2 = static_cast<double>(r2lat) * np.lat2_to_phys2;
  const double qq = top.charge[out.lo] * top.charge[out.hi];
  const htis::PairForceEnergy pfe = np.kernels->eval_nonbonded(
      r2, qq, top.type[out.lo], top.type[out.hi], with_energy);
  const Vec3d drp = np.lat->delta_to_phys(d);
  out.f = {fixed::quantize(pfe.force_coef * drp.x, fixed::kForceScale),
           fixed::quantize(pfe.force_coef * drp.y, fixed::kForceScale),
           fixed::quantize(pfe.force_coef * drp.z, fixed::kForceScale)};
  if (with_energy) {
    out.e_coul_q = fixed::quantize_energy(pfe.energy_elec);
    out.e_lj_q = fixed::quantize_energy(pfe.energy_lj);
    // Pair virial trace: r_ij . F_ij = coef * r^2.
    out.virial_q = fixed::quantize(pfe.force_coef * r2, fixed::kVirialScale);
  }
  return out;
}

void BinSoA::clear() {
  id.clear();
  x.clear();
  y.clear();
  z.clear();
  charge.clear();
  type.clear();
}

void BinSoA::reserve(std::size_t n) {
  id.reserve(n);
  x.reserve(n);
  y.reserve(n);
  z.reserve(n);
  charge.reserve(n);
  type.reserve(n);
}

void BinSoA::push_atom(const Topology& top, std::int32_t a, const Vec3i& p) {
  id.push_back(a);
  x.push_back(p.x);
  y.push_back(p.y);
  z.push_back(p.z);
  charge.push_back(top.charge[a]);
  type.push_back(top.type[a]);
}

void eval_pair_block(const NodeProgram& np, const BinSoA& tower,
                     const BinSoA& plate, bool same_bin, PairBlockScratch& scr,
                     PairBlockCounters& counters) {
  const Topology& top = *np.top;
  const std::uint64_t limit = np.r2_limit_lattice;
  // The match unit's 8-bit operands have their low 24 bits zeroed, so the
  // low-precision r^2 is S * 2^48 with S < 2^18; comparing S against
  // limit >> 48 is exactly the u64 comparison, in pure 32-bit lanes.
  const std::uint32_t limit48 = static_cast<std::uint32_t>(limit >> 48);
  const Vec3d lsb = np.lat->lsb();
  const std::size_t na = tower.size();
  const std::size_t nb = plate.size();
  counters = PairBlockCounters{};
  scr.hits.clear();
  scr.c_lo.clear();
  scr.c_hi.clear();
  scr.c_dx.clear();
  scr.c_dy.clear();
  scr.c_dz.clear();
  scr.c_qq.clear();
  scr.c_a.clear();
  scr.c_b.clear();
  scr.c_r2.clear();
  scr.match.resize(nb);
  scr.dx.resize(nb);
  scr.dy.resize(nb);
  scr.dz.resize(nb);

  for (std::size_t a = 0; a < na; ++a) {
    const std::size_t b0 = same_bin ? a + 1 : 0;
    if (b0 >= nb) continue;
    counters.considered += static_cast<std::int64_t>(nb - b0);
    const std::int32_t i0 = tower.id[a];
    const std::int32_t ix = tower.x[a];
    const std::int32_t iy = tower.y[a];
    const std::int32_t iz = tower.z[a];

    // Phase 1 -- the match unit as flat 32-bit lanes (vectorizable).
    // d = p_i - p_j; the match test and the exact r^2 are invariant under
    // wrapping negation (|c| survives, INT32_MIN wraps to itself), so the
    // canonical orientation is fixed up only for the survivors.
    for (std::size_t b = b0; b < nb; ++b) {
      const std::int32_t dx = fixed::wrap_sub32(ix, plate.x[b]);
      const std::int32_t dy = fixed::wrap_sub32(iy, plate.y[b]);
      const std::int32_t dz = fixed::wrap_sub32(iz, plate.z[b]);
      const std::uint32_t ux =
          (dx < 0 ? 0u - static_cast<std::uint32_t>(dx)
                  : static_cast<std::uint32_t>(dx)) >> 24;
      const std::uint32_t uy =
          (dy < 0 ? 0u - static_cast<std::uint32_t>(dy)
                  : static_cast<std::uint32_t>(dy)) >> 24;
      const std::uint32_t uz =
          (dz < 0 ? 0u - static_cast<std::uint32_t>(dz)
                  : static_cast<std::uint32_t>(dz)) >> 24;
      const std::uint32_t s2 = ux * ux + uy * uy + uz * uz;
      scr.dx[b] = dx;
      scr.dy[b] = dy;
      scr.dz[b] = dz;
      scr.match[b] = s2 <= limit48 ? 1 : 0;
    }

    // Phase 2 -- counters, exact cutoff, exclusions, compaction (scalar;
    // only the sparse match survivors reach the 64-bit arithmetic).
    for (std::size_t b = b0; b < nb; ++b) {
      if (!scr.match[b]) continue;
      ++counters.queued;
      const Vec3i d{scr.dx[b], scr.dy[b], scr.dz[b]};
      const std::uint64_t r2lat = htis::exact_r2_lattice(d);
      if (r2lat > limit) continue;
      const std::int32_t j0 = plate.id[b];
      const bool in_order = i0 < j0;
      const std::int32_t lo = in_order ? i0 : j0;
      const std::int32_t hi = in_order ? j0 : i0;
      if (np.have_molecules && top.molecule[lo] == top.molecule[hi] &&
          np.excl->excluded(lo, hi))
        continue;
      ++counters.computed;
      scr.c_lo.push_back(lo);
      scr.c_hi.push_back(hi);
      scr.c_dx.push_back(in_order ? d.x : fixed::wrap_sub32(0, d.x));
      scr.c_dy.push_back(in_order ? d.y : fixed::wrap_sub32(0, d.y));
      scr.c_dz.push_back(in_order ? d.z : fixed::wrap_sub32(0, d.z));
      scr.c_r2.push_back(static_cast<double>(r2lat) * np.lat2_to_phys2);
      scr.c_qq.push_back(tower.charge[a] * plate.charge[b]);
      const std::int32_t t_lo = in_order ? tower.type[a] : plate.type[b];
      const std::int32_t t_hi = in_order ? plate.type[b] : tower.type[a];
      scr.c_a.push_back(np.kernels->lj_a(t_lo, t_hi));
      scr.c_b.push_back(np.kernels->lj_b(t_lo, t_hi));
    }
  }

  // Phase 3 -- one batched PPIP sweep over every candidate of the block.
  const std::size_t m = scr.c_lo.size();
  if (m == 0) return;
  scr.c_coef.resize(m);
  np.kernels->eval_nonbonded_coef_n(m, scr.c_r2.data(), scr.c_qq.data(),
                                    scr.c_a.data(), scr.c_b.data(),
                                    scr.c_coef.data());

  // Phase 4 -- quantize onto the force grid, same expressions as
  // eval_pair, hits in the scalar loop's (a, b) order.
  scr.hits.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double coef = scr.c_coef[i];
    const double drx = scr.c_dx[i] * lsb.x;
    const double dry = scr.c_dy[i] * lsb.y;
    const double drz = scr.c_dz[i] * lsb.z;
    PairHit& h = scr.hits[i];
    h.lo = scr.c_lo[i];
    h.hi = scr.c_hi[i];
    h.f = {fixed::quantize(coef * drx, fixed::kForceScale),
           fixed::quantize(coef * dry, fixed::kForceScale),
           fixed::quantize(coef * drz, fixed::kForceScale)};
  }
}

CorrectionResult eval_correction_short(const NodeProgram& np,
                                       const ExclusionPair& e, const Vec3i& pi,
                                       const Vec3i& pj, bool with_energy) {
  CorrectionResult out;
  if (e.lj_scale == 0.0 && e.coul_scale == 0.0) return out;
  out.computed = true;
  const Topology& top = *np.top;
  const Vec3i d = fixed::PositionLattice::delta(pi, pj);
  const Vec3d drp = np.lat->delta_to_phys(d);
  const double r2 = drp.norm2();
  const double r = std::sqrt(r2);
  const double A = np.kernels->lj_a(top.type[e.i], top.type[e.j]);
  const double B = np.kernels->lj_b(top.type[e.i], top.type[e.j]);
  const double qq = top.charge[e.i] * top.charge[e.j];
  const double coef = e.lj_scale * ewald::lj_force(r2, A, B) +
                      e.coul_scale * qq * ewald::coul_bare_force(r);
  out.f = {fixed::quantize(coef * drp.x, fixed::kForceScale),
           fixed::quantize(coef * drp.y, fixed::kForceScale),
           fixed::quantize(coef * drp.z, fixed::kForceScale)};
  if (with_energy) {
    out.energy_q =
        fixed::quantize_energy(e.lj_scale * ewald::lj_energy(r2, A, B) +
                               e.coul_scale * qq * ewald::coul_bare_energy(r));
    out.virial_q = fixed::quantize(coef * r2, fixed::kVirialScale);
  }
  return out;
}

CorrectionResult eval_correction_long(const NodeProgram& np,
                                      const ExclusionPair& e, const Vec3i& pi,
                                      const Vec3i& pj, bool with_energy) {
  CorrectionResult out;
  out.computed = true;
  const Topology& top = *np.top;
  const double beta = np.gse_params.beta;
  const Vec3i d = fixed::PositionLattice::delta(pi, pj);
  const Vec3d drp = np.lat->delta_to_phys(d);
  const double r2 = drp.norm2();
  const double r = std::sqrt(r2);
  const double qq = top.charge[e.i] * top.charge[e.j];
  const double coef = -qq * ewald::coul_recip_force(r, beta);
  out.f = {fixed::quantize(coef * drp.x, fixed::kForceScale),
           fixed::quantize(coef * drp.y, fixed::kForceScale),
           fixed::quantize(coef * drp.z, fixed::kForceScale)};
  if (with_energy) {
    out.energy_q =
        fixed::quantize_energy(-qq * ewald::coul_recip_energy(r, beta));
    out.virial_q = fixed::quantize(coef * r2, fixed::kVirialScale);
  }
  return out;
}

QuantizedTerm quantize_term(const NodeProgram& np, const bonded::TermForces& t,
                            const Vec3d* term_pos, bool with_energy) {
  QuantizedTerm out;
  out.n = t.n;
  if (with_energy) {
    out.energy_q = fixed::quantize_energy(t.energy);
    if (t.n > 0) {
      // Term virial: sum F_a . (r_a - r_ref); any reference works because
      // the term forces sum to zero.
      const Vec3d ref_pos = term_pos[0];
      double w = 0.0;
      for (int i = 0; i < t.n; ++i)
        w += t.f[i].dot(np.box->min_image(term_pos[i], ref_pos));
      out.virial_q = fixed::quantize(w, fixed::kVirialScale);
    }
  }
  for (int i = 0; i < t.n; ++i) {
    out.atom[i] = t.atom[i];
    out.f[i] = {fixed::quantize(t.f[i].x, fixed::kForceScale),
                fixed::quantize(t.f[i].y, fixed::kForceScale),
                fixed::quantize(t.f[i].z, fixed::kForceScale)};
  }
  return out;
}

IntegrationCoefs make_integration_coefs(const Topology& top, double dt,
                                        int long_range_every,
                                        const fixed::PositionLattice& lat) {
  IntegrationCoefs c;
  const std::int32_t n = top.natoms;
  c.kick_short.resize(n);
  c.kick_long.resize(n);
  const int k = long_range_every < 1 ? 1 : long_range_every;
  for (std::int32_t i = 0; i < n; ++i) {
    // Massless virtual sites are never kicked; their positions are rebuilt
    // from their parents after every drift.
    const double base =
        top.mass[i] > 0.0
            ? 0.5 * dt * units::kForceToAccel / top.mass[i] *
                  fixed::kVelScale / fixed::kForceScale
            : 0.0;
    c.kick_short[i] = base;
    c.kick_long[i] = base * k;
  }
  const Vec3d lsb = lat.lsb();
  c.drift = {dt / (fixed::kVelScale * lsb.x), dt / (fixed::kVelScale * lsb.y),
             dt / (fixed::kVelScale * lsb.z)};
  return c;
}

bool shake_unit(const NodeProgram& np, std::span<const std::int32_t> atoms,
                std::span<const ConstraintBond> bonds, double dt,
                std::span<const Vec3d> ref, std::span<Vec3d> pos_phys,
                std::span<Vec3i> pos, std::span<Vec3l> vel) {
  const Topology& top = *np.top;
  const std::size_t n = atoms.size();
  // Remap the bonds' global atom ids onto unit-local slots. The solver
  // then reads exactly the same doubles in the same order as a solve over
  // global arrays would, so the remap is bitwise-neutral.
  std::vector<ConstraintBond> local(bonds.begin(), bonds.end());
  std::vector<double> mass(n);
  auto slot = [&](std::int32_t a) {
    for (std::size_t k = 0; k < n; ++k)
      if (atoms[k] == a) return static_cast<std::int32_t>(k);
    return std::int32_t{-1};
  };
  for (std::size_t k = 0; k < n; ++k) mass[k] = top.mass[atoms[k]];
  for (ConstraintBond& c : local) {
    c.i = slot(c.i);
    c.j = slot(c.j);
  }
  const std::vector<Vec3d> unconstrained(pos_phys.begin(), pos_phys.end());
  if (constraints::shake(local, mass, ref, pos_phys, *np.box) < 0)
    return false;
  // The position correction implies a velocity correction
  // dv = (x_constrained - x_unconstrained) / dt; without it the
  // constraints systematically pump energy out of the system.
  // Re-quantize the unit onto the lattice and re-sync the phys view so
  // every consumer sees exactly the lattice-resolved positions.
  const double inv_dt = 1.0 / dt;
  for (std::size_t k = 0; k < n; ++k) {
    if (top.mass[atoms[k]] == 0.0) continue;  // vsites rebuilt separately
    const Vec3d dv = (pos_phys[k] - unconstrained[k]) * inv_dt;
    vel[k].x =
        fixed::wrap_add(vel[k].x, fixed::quantize(dv.x, fixed::kVelScale));
    vel[k].y =
        fixed::wrap_add(vel[k].y, fixed::quantize(dv.y, fixed::kVelScale));
    vel[k].z =
        fixed::wrap_add(vel[k].z, fixed::quantize(dv.z, fixed::kVelScale));
    pos[k] = np.lat->to_lattice(pos_phys[k]);
    pos_phys[k] = np.lat->to_phys(pos[k]);
  }
  return true;
}

bool rattle_unit(const NodeProgram& np, std::span<const std::int32_t> atoms,
                 std::span<const ConstraintBond> bonds,
                 std::span<const Vec3d> pos_phys, std::span<Vec3l> vel) {
  const Topology& top = *np.top;
  const std::size_t n = atoms.size();
  std::vector<ConstraintBond> local(bonds.begin(), bonds.end());
  std::vector<double> mass(n);
  auto slot = [&](std::int32_t a) {
    for (std::size_t k = 0; k < n; ++k)
      if (atoms[k] == a) return static_cast<std::int32_t>(k);
    return std::int32_t{-1};
  };
  for (std::size_t k = 0; k < n; ++k) mass[k] = top.mass[atoms[k]];
  for (ConstraintBond& c : local) {
    c.i = slot(c.i);
    c.j = slot(c.j);
  }
  std::vector<Vec3d> v(n);
  for (std::size_t k = 0; k < n; ++k)
    v[k] = {fixed::vel_to_phys(vel[k].x), fixed::vel_to_phys(vel[k].y),
            fixed::vel_to_phys(vel[k].z)};
  if (constraints::rattle(local, mass, pos_phys, v, *np.box) < 0)
    return false;
  for (std::size_t k = 0; k < n; ++k) {
    vel[k] = {fixed::quantize(v[k].x, fixed::kVelScale),
              fixed::quantize(v[k].y, fixed::kVelScale),
              fixed::quantize(v[k].z, fixed::kVelScale)};
  }
  return true;
}

double thermostat_lambda(const Topology& top, double mv2_sum, double dt_long,
                         double target_temperature, double tau) {
  double ke = mv2_sum;
  ke *= 0.5 / units::kForceToAccel;
  const double T = integrate::temperature(ke, top.degrees_of_freedom());
  return integrate::berendsen_lambda(T, target_temperature, dt_long, tau);
}

MigrationUnits build_migration_units(const Topology& top) {
  MigrationUnits u;
  std::vector<std::int32_t> unit_of(top.natoms, -1);
  for (const auto& g : top.constraint_groups) {
    const auto id = static_cast<std::int32_t>(u.atoms.size());
    u.atoms.push_back(g);
    for (std::int32_t a : g) unit_of[a] = id;
  }
  for (std::int32_t a = 0; a < top.natoms; ++a) {
    if (unit_of[a] < 0) {
      unit_of[a] = static_cast<std::int32_t>(u.atoms.size());
      u.atoms.push_back({a});
    }
  }
  u.constraints.assign(u.atoms.size(), {});
  for (const ConstraintBond& c : top.constraints)
    u.constraints[unit_of[c.i]].push_back(c);
  return u;
}

std::uint64_t state_hash(std::span<const Vec3i> pos,
                         std::span<const Vec3l> vel) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(h, pos.data(), pos.size() * sizeof(Vec3i));
  h = fnv1a(h, vel.data(), vel.size() * sizeof(Vec3l));
  return h;
}

}  // namespace anton::parallel
