// An explicit message-passing execution of Anton's time step.
//
// The AntonEngine computes with global arrays (its bitwise invariants make
// the decomposition unobservable). This runtime is the stricter
// demonstration: every virtual node gets its OWN storage, holding only the
// atoms it owns plus what arrives in messages, and the time step's data
// choreography (Section 3.2) happens through explicit mailboxes. Two modes:
//
//  * the legacy one-shot evaluate(): a single distributed range-limited
//    force evaluation (position multicast -> NT pair phase -> force
//    return), kept as the minimal demonstration and unit-test surface;
//
//  * the full distributed time-step runtime (construct from a
//    core::AntonConfig, then run_cycles()): each node owns its home atoms'
//    positions/velocities/forces and advances the complete MTS cycle --
//      - subbox position multicast to tower/plate consumers,
//      - node-local match/PPIP pair phase over home + imported subboxes,
//      - bond-destination position dispatch, bonded + correction terms
//        evaluated where their destination atom lives,
//      - GSE charge spreading into node-local mesh accumulators, a charge
//        halo exchange into block-owned FFT slabs, the distributed 3D FFT
//        (per-torus-row line exchange, the fft::DistFftPlan pattern),
//        k-space convolution, potential halo-back, force interpolation,
//      - force return to home nodes, virtual-site force splitting,
//      - fixed-point kick/drift with SHAKE/RATTLE solved on co-resident
//        constraint units, ordered thermostat reduction,
//      - migration-by-message every migration_interval steps with
//        directory announcements.
//    Every phase drives the SAME parallel::NodeProgram kernels the engine
//    runs, and every accumulation is quantize-then-wrapping-add, so the
//    distributed trajectory is bitwise identical to AntonEngine's on any
//    node grid -- asserted step for step on the golden fixtures.
//
// All message and byte counts are measured into a parallel::CommLedger
// (per phase), substantiating the paper's "a typical time step on Anton
// involves thousands of inter-node messages per ASIC", and cross-validated
// in tests against the comm_stats estimators and fft::DistFftPlan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/anton_engine.hpp"
#include "ewald/gse.hpp"
#include "ff/topology.hpp"
#include "fft/fft1d.hpp"
#include "fixed/lattice.hpp"
#include "htis/pair_kernels.hpp"
#include "nt/nt_geometry.hpp"
#include "io/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pairlist/exclusion_table.hpp"
#include "parallel/comm_stats.hpp"
#include "parallel/fault.hpp"
#include "parallel/node_program.hpp"
#include "parallel/transport.hpp"
#include "parallel/wire.hpp"

namespace anton::parallel {

/// Configuration for the legacy one-shot range-limited evaluate() mode.
struct VmConfig {
  Vec3i node_grid{2, 2, 2};
  Vec3i subbox_div{1, 1, 1};
  double cutoff = 9.0;
  double margin = 0.0;
  double beta = 0.3;  // Ewald splitting for the direct-space kernel
  int table_mantissa_bits = 22;
};

class VirtualMachine {
 public:
  /// Legacy mode: a one-shot distributed range-limited evaluator.
  VirtualMachine(const System& sys, const VmConfig& cfg);

  /// Full distributed time-step runtime, configured exactly like the
  /// engine (same kernels, geometry, integrator and migration cadence).
  /// Every inter-node delivery is serialized into a wire frame and
  /// traverses the selected byte transport (in-process by default).
  VirtualMachine(System sys, const core::AntonConfig& cfg);
  VirtualMachine(System sys, const core::AntonConfig& cfg,
                 const TransportOptions& topts);

  int node_count() const;

  /// One distributed range-limited force evaluation from the given
  /// lattice positions (legacy mode; usable in dynamics mode too, but
  /// does not touch the per-node dynamic state). Returns per-atom
  /// fixed-point forces in global indexing for the caller's convenience;
  /// internally every node only ever touched its own mailbox.
  std::vector<Vec3l> evaluate(const std::vector<Vec3i>& positions,
                              CommLedger* stats = nullptr);

  // --- distributed time-step runtime (dynamics mode only) ---

  /// Runs n MTS cycles (n * long_range_every inner time steps) through
  /// the mailbox choreography. Bitwise identical to AntonEngine.
  void run_cycles(int ncycles);
  std::int64_t steps_done() const { return steps_; }

  /// FNV-1a hash over the fixed-point state in global atom order
  /// (diagnostic gather; equal to AntonEngine::state_hash() on the same
  /// trajectory).
  std::uint64_t state_hash() const;

  /// Raw fixed-point state assembled from the node memories in global
  /// atom order (diagnostic gather, not part of the choreography).
  std::vector<Vec3i> lattice_positions() const;
  std::vector<Vec3l> fixed_velocities() const;

  /// Negates all velocities (exact in fixed point); with constraints and
  /// thermostat off, running forward again retraces the trajectory.
  void negate_velocities();

  /// Reciprocal-space energy from the most recent long-range phase
  /// (computed by the ordered reduce on the master node).
  double reciprocal_energy() const { return e_recip_; }

  /// Measured message/byte accounting accumulated since the last reset.
  const CommLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_ = CommLedger{}; }

  /// Workload counters accumulated since the last reset, attributed to
  /// virtual nodes exactly as the engine attributes them (so the VM's
  /// profile cross-validates against machine::WorkloadModel the same way
  /// the engine's does).
  const core::WorkloadProfile& workload();
  void reset_workload();

  /// Attaches a phase tracer (nullptr detaches). Phases emit spans on
  /// track 0 plus one child span per virtual node on track (node index
  /// + 1), making the per-node comm pattern visible in the exported
  /// trace. Tracing never touches the node memories: the trajectory with
  /// a tracer attached is bitwise identical to without.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry (nullptr detaches). The ledger's
  /// per-phase message/byte counters are published under "vm.*" at every
  /// cycle boundary, and -- when fault tolerance is enabled -- so are the
  /// vm.fault.* / vm.retry.* counters.
  void set_metrics(obs::MetricsRegistry* m);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // --- fault tolerance (dynamics mode only) ---

  /// Arms the seeded fault injector and the distributed checkpoint /
  /// rollback machinery. Every inter-node message already flows through
  /// the reliable transport; this attaches the adversary to its wire and
  /// starts per-node state capture every cfg.checkpoint_cycles cycle
  /// boundaries. With all probabilities zero and no crash schedule the
  /// trajectory is bitwise identical to an unarmed run and every
  /// vm.retry.* counter stays zero.
  void set_fault_config(const FaultConfig& cfg);

  /// Detaches the injector and stops checkpoint capture.
  void clear_fault_config();

  /// Injected-fault and recovery-work counters since construction.
  const FaultCounters& fault_counters() const {
    return transport_.counters();
  }

  /// Gathers the distributed per-node state into a host-format checkpoint
  /// (bit-exact: Simulation could resume an engine from it). Diagnostic
  /// gather, not part of the choreography.
  io::Checkpoint export_checkpoint() const;

  /// The byte-level wire under the reliable layer (dynamics mode only;
  /// null in legacy mode). Tests reach through this to inspect measured
  /// traffic or SIGKILL a forked worker.
  ByteTransport* wire() const { return wire_.get(); }
  const TransportOptions& transport_options() const { return topts_; }

 private:
  /// One position record (id + lattice position) -- exactly the wire
  /// record, so mailboxes hold what the frames carry.
  using AtomRecord = wire::PosRec;

  /// Dynamic state of one home atom, owned by exactly one node at a time
  /// and moved whole during migration; the wire's migration record.
  using AtomState = wire::AtomDyn;

  /// One virtual node's private memory. Nothing here is ever read by
  /// another node: inter-node data flow happens only through the
  /// deliver_* helpers, which model messages (count/bytes into the
  /// ledger) and append into the RECEIVER's mailbox fields.
  struct NodeState {
    // Home ownership.
    std::vector<std::int32_t> units;  // unit ids homed here
    std::unordered_map<std::int32_t, AtomState> atoms;
    std::map<std::int32_t, std::vector<std::int32_t>> bins;  // sb -> ids

    // Mailboxes (refilled every step).
    std::map<std::int32_t, std::vector<AtomRecord>> recs;  // pair phase
    std::vector<Vec3i> rpos;         // dispatched positions, by atom id
    std::vector<Vec3l> partial;      // force partials, by atom id
    std::vector<char> ptouched;      // partial[i] valid flags
    std::vector<std::int32_t> plist; // touched partial ids

    // Term ownership (rebuilt at migration; destination atom lives here).
    std::vector<std::int32_t> bonds, angles, dihedrals, exclusions, vsites;

    // Mesh state: node-local spread accumulator over the full mesh plus
    // the block-owned FFT slab (block origin/extent in the members below).
    std::vector<std::int64_t> spread_q;   // full mesh, wrapping accum
    std::vector<char> stouched;           // spread_q[i] touched flags
    std::vector<std::int32_t> touched;    // touched mesh indices
    std::vector<std::int64_t> mesh_q;     // owned block, quantized charge
    std::vector<double> scratch_q;        // owned block, double charge
    std::vector<fft::cplx> fft_grid;      // owned block, transform state
    std::vector<std::int64_t> mesh_phi;   // owned block, quantized phi
    std::vector<std::int64_t> halo_phi;   // full mesh, phi at touched pts
    std::vector<std::vector<std::int32_t>> halo_req;  // per src: indices
    std::vector<fft::cplx> fft_line;      // assembled line (as FFT owner)

    Vec3i block_lo{0, 0, 0};  // owned mesh block origin
    Vec3i block_sz{0, 0, 0};  // owned mesh block extent

    std::int64_t sent = 0;  // messages sent in the current cycle window
  };

  // --- construction helpers ---
  void init_pair_tables(double cutoff, double beta, double sigma_s,
                        double rs, int mantissa_bits);
  void build_geometry(const Vec3i& node_grid, const Vec3i& subbox_div,
                      double cutoff, double margin);
  void build_consumers();
  void build_feeds();
  void build_mesh_blocks();
  void initial_distribution(const std::vector<Vec3i>& gpos,
                            const std::vector<Vec3l>& gvel);
  void rebuild_bins_and_terms();

  /// Coordinated distributed checkpoint: every node's private state at
  /// one cycle boundary, plus the replicated directory/ownership tables.
  /// The rollback target after an injected node crash.
  struct NodeSnapshot {
    std::vector<std::int32_t> units;
    std::vector<std::pair<std::int32_t, AtomState>> atoms;  // sorted by id
  };
  struct VmCheckpoint {
    std::int64_t steps = 0;
    double e_recip = 0.0;
    std::vector<std::int32_t> unit_sb;
    std::vector<std::int32_t> directory;
    std::vector<NodeSnapshot> nodes;
  };

  /// Channel tags for the reliable transport (one stream per
  /// (src, dst, phase) triple).
  enum Phase : int {
    kChPosition = 0,
    kChForce,
    kChBond,
    kChMesh,
    kChFft,
    kChMigration,
    kChReduce,
  };

  // --- message accounting + reliable delivery ---
  int torus_hops(int src, int dst) const;
  void account(PhaseComm& phase, int src, int dst, std::int64_t bytes);
  /// Delivers one typed message: local (src == dst) applies immediately
  /// with no accounting; remote is serialized into a wire frame, routed
  /// through the reliable transport over the byte wire (exactly-once,
  /// per-channel FIFO, survives the fault injector) and accounted at its
  /// measured frame size. Each phase barrier calls transport_.flush().
  void deliver(PhaseComm& phase, int channel_phase, int src, int dst,
               wire::Payload payload);
  /// The reliable layer's sink: typed dispatch of one delivered frame.
  void dispatch_frame(const wire::Frame& f);
  /// Applies one decoded message to the destination node's state -- the
  /// receiver-side half of every choreography phase.
  void apply_payload(int src, int dst, const wire::Payload& p);

  // --- fault tolerance ---
  void capture_vm_checkpoint();
  void restore_vm_checkpoint();
  void sync_retransmit_ledger();
  void run_one_cycle();

  // --- choreography phases ---
  std::vector<AtomRecord>& records_of(NodeState& nd, std::int32_t sb);
  void position_multicast();
  void pair_phase();
  void bond_dispatch_and_terms(bool long_range);
  void force_return(bool long_range);
  void vsite_force_round(bool long_range);
  void compute_short_forces();
  void compute_long_forces();
  void spread_and_halo();
  void distributed_fft_stage(int axis, bool inverse);
  void convolve_and_energy();
  void phi_halo_back_and_interpolate();
  void kick_all(bool long_kick);
  void drift_and_constrain();
  void finish_drift();
  void rattle_groups();
  void apply_thermostat();
  void migrate_by_message();
  void publish_metrics();

  void touch_partial(NodeState& nd, std::int32_t id);
  Vec3i pos_of(const NodeState& nd, std::int32_t id) const;

  // --- static replicated context (every node holds a copy) ---
  System sys_;
  VmConfig cfg_;              // legacy mode parameters
  core::AntonConfig acfg_;    // dynamics mode parameters
  bool dynamic_ = false;
  fixed::PositionLattice lat_;
  std::unique_ptr<nt::NtGeometry> geom_;
  htis::PairKernels kernels_;
  pairlist::ExclusionTable excl_;
  ewald::GseParams gse_params_;
  std::unique_ptr<ewald::Gse> gse_;
  std::unique_ptr<fft::Fft1D> fft1_;
  NodeProgram np_;
  IntegrationCoefs coefs_;
  std::uint64_t r2_limit_lattice_ = 0;
  double lat2_to_phys2_ = 0.0;

  // Shared decomposition structure (replicated, static between builds).
  std::vector<std::vector<std::int32_t>> units_;
  std::vector<std::vector<ConstraintBond>> group_constraints_;
  std::vector<std::int32_t> unit_sb_;    // unit -> assigned subbox
  std::vector<std::int32_t> directory_;  // atom -> home node (replicated)
  std::vector<std::vector<int>> consumers_;  // subbox -> consumer nodes
  std::vector<std::vector<std::int32_t>> node_subboxes_;
  std::vector<std::vector<std::int32_t>> node_import_subboxes_;
  /// Static bond-destination feeds: dest_feed_[x] lists the destination
  /// atoms whose terms read atom x's position; vsite_feed_[x] lists the
  /// virtual sites x parents.
  std::vector<std::vector<std::int32_t>> dest_feed_;
  std::vector<std::vector<std::int32_t>> vsite_feed_;

  // Mesh block partition (per axis: coordinate -> owning node coord).
  std::vector<int> mesh_owner_[3];
  std::vector<int> mesh_start_[3];

  // The virtual nodes.
  std::vector<NodeState> nodes_;

  std::int64_t steps_ = 0;
  double e_recip_ = 0.0;
  // Master-side gather scratch (node 0's convolution view and the global
  // kinetic reduction); every index is rewritten each cycle before use.
  std::vector<double> master_q_full_;
  std::vector<double> master_phi_full_;
  std::vector<double> red_kin_;
  CommLedger ledger_;
  CommLedger pub_base_;  // ledger snapshot at last metrics publish
  core::WorkloadProfile workload_;

  // Reliable delivery + fault tolerance. The transport is always in the
  // message path (pass-through when no injector is attached); the
  // injector, checkpoint capture and rollback engage via
  // set_fault_config. The byte wire underneath is selected at
  // construction (dynamics mode only).
  TransportOptions topts_;
  std::unique_ptr<ByteTransport> wire_;
  ReliableTransport transport_;
  std::unique_ptr<FaultInjector> injector_;
  bool ft_enabled_ = false;
  VmCheckpoint ckpt_;
  bool have_ckpt_ = false;
  // Retransmit totals already folded into ledger_.retransmit (the
  // transport counters are lifetime-monotonic; the ledger is resettable).
  std::int64_t retrans_synced_msgs_ = 0;
  std::int64_t retrans_synced_bytes_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct MetricIds {
    int steps = -1, cycles = -1, migrations = -1;
    int position_messages = -1, position_bytes = -1;
    int force_messages = -1, force_bytes = -1;
    int bond_messages = -1, bond_bytes = -1;
    int mesh_messages = -1, mesh_bytes = -1;
    int fft_messages = -1, fft_bytes = -1;
    int migration_messages = -1, migration_bytes = -1;
    int reduce_messages = -1, reduce_bytes = -1;
    int fault_drops = -1, fault_duplicates = -1, fault_reorders = -1;
    int fault_delays = -1, fault_crashes = -1;
    int retry_retransmits = -1, retry_retransmit_bytes = -1;
    int retry_dups_suppressed = -1, retry_out_of_order = -1;
    int retry_rollbacks = -1, retry_replayed_cycles = -1;
    int wire_roundtrips = -1, wire_bytes = -1;
  } mid_;
  FaultCounters fc_base_;  // fault-counter snapshot at last publish
  WireStats ws_base_;      // wire-stats snapshot at last publish
};

}  // namespace anton::parallel
