// An explicit message-passing execution of Anton's range-limited phase.
//
// The AntonEngine computes with global arrays (its bitwise invariants make
// the decomposition unobservable). This runtime is the stricter
// demonstration: every virtual node gets its OWN storage, holding only the
// atoms it owns plus what arrives in messages, and the time step's data
// choreography (Section 3.2) happens through explicit mailboxes:
//
//   phase 1  position multicast -- each node sends each of its home
//            subboxes' atoms, as one multicast message per (subbox,
//            consumer-node), to every node whose tower or plate imports
//            that subbox;
//   phase 2  local interaction -- each node runs the match-unit/PPIP pair
//            loop over exactly the atoms it holds (never reaching into
//            any other node's memory);
//   phase 3  force return -- per-atom force contributions for non-home
//            atoms are sent back to their home nodes ("the resulting
//            forces on atoms in the tower and plate are sent back to the
//            nodes on which those atoms reside");
//   phase 4  reduction -- home nodes combine contributions with wrapping
//            adds (order-invariant).
//
// The result is bitwise identical to the monolithic engine's range-limited
// forces on ANY node grid -- asserted in tests -- and the mailbox
// statistics substantiate the paper's "a typical time step on Anton
// involves thousands of inter-node messages per ASIC".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ff/topology.hpp"
#include "fixed/lattice.hpp"
#include "htis/pair_kernels.hpp"
#include "nt/nt_geometry.hpp"
#include "obs/trace.hpp"
#include "pairlist/exclusion_table.hpp"

namespace anton::parallel {

struct VmConfig {
  Vec3i node_grid{2, 2, 2};
  Vec3i subbox_div{1, 1, 1};
  double cutoff = 9.0;
  double margin = 0.0;
  double beta = 0.3;  // Ewald splitting for the direct-space kernel
  int table_mantissa_bits = 22;
};

struct VmStats {
  std::int64_t position_messages = 0;
  std::int64_t position_bytes = 0;
  std::int64_t force_messages = 0;
  std::int64_t force_bytes = 0;
  std::int64_t interactions = 0;
  std::int64_t pairs_considered = 0;
  /// Maximum over nodes of messages sent in one evaluation.
  std::int64_t max_messages_per_node = 0;
};

class VirtualMachine {
 public:
  VirtualMachine(const System& sys, const VmConfig& cfg);

  int node_count() const;

  /// One distributed range-limited force evaluation from the given
  /// lattice positions. Returns per-atom fixed-point forces (global
  /// indexing for the caller's convenience; internally every node only
  /// ever touched its own mailbox).
  std::vector<Vec3l> evaluate(const std::vector<Vec3i>& positions,
                              VmStats* stats = nullptr);

  /// Attaches a phase tracer (nullptr detaches). evaluate() then emits a
  /// span per choreography phase on track 0 plus one child span per
  /// virtual node on track (node index + 1), making the per-node comm
  /// pattern visible in the exported trace. Tracing never touches the
  /// node memories, so the returned forces are unchanged.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  struct AtomRecord {
    std::int32_t id;
    Vec3i pos;
  };
  struct ForceRecord {
    std::int32_t id;
    Vec3l f;
  };

  System sys_;
  VmConfig cfg_;
  fixed::PositionLattice lat_;
  std::unique_ptr<nt::NtGeometry> geom_;
  htis::PairKernels kernels_;
  pairlist::ExclusionTable excl_;
  std::uint64_t r2_limit_lattice_ = 0;
  double lat2_to_phys2_ = 0.0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace anton::parallel
