// The coordinator of the SPMD virtual-node runtime.
//
// The AntonEngine computes with global arrays (its bitwise invariants make
// the decomposition unobservable). This runtime is the stricter
// demonstration: every virtual node is a real rank -- a thread under the
// in-process transport, a forked OS process under shm-fork/tcp -- running
// its own parallel::WorkerRuntime event loop against its own private
// memory, and the time step's data choreography (Section 3.2) happens
// through genuine one-way wire frames. Two modes:
//
//  * the legacy one-shot evaluate(): a single distributed range-limited
//    force evaluation (position multicast -> NT pair phase -> force
//    return) modeled inside one process, kept as the minimal demonstration
//    and unit-test surface;
//
//  * the full distributed time-step runtime (construct from a
//    core::AntonConfig, then run_cycles()): since the full-SPMD split
//    (DESIGN.md section 5h) the physics runs in the workers. This class is
//    only the coordinator: it builds the static world, spawns one worker
//    per rank, broadcasts Control commands, routes rank-to-rank frames
//    (hub-and-spoke), sequences phase barriers, folds per-rank RankReport
//    diagnostics, collects checkpoints and drives coordinated rollback.
//    It executes no per-phase physics. Every phase in the workers drives
//    the SAME parallel::NodeProgram kernels the engine runs, so the
//    distributed trajectory is bitwise identical to AntonEngine's on any
//    node grid and any backend -- asserted step for step on the golden
//    fixtures.
//
// All message and byte counts are measured into a parallel::CommLedger
// (per phase, folded from the ranks' reports), substantiating the paper's
// "a typical time step on Anton involves thousands of inter-node messages
// per ASIC", and cross-validated in tests against the comm_stats
// estimators and fft::DistFftPlan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/anton_engine.hpp"
#include "ewald/gse.hpp"
#include "ff/topology.hpp"
#include "fft/fft1d.hpp"
#include "fixed/lattice.hpp"
#include "htis/pair_kernels.hpp"
#include "nt/nt_geometry.hpp"
#include "io/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pairlist/exclusion_table.hpp"
#include "parallel/comm_stats.hpp"
#include "parallel/fault.hpp"
#include "parallel/node_program.hpp"
#include "parallel/transport.hpp"
#include "parallel/wire.hpp"
#include "parallel/worker_runtime.hpp"

namespace anton::parallel {

/// Configuration for the legacy one-shot range-limited evaluate() mode.
struct VmConfig {
  Vec3i node_grid{2, 2, 2};
  Vec3i subbox_div{1, 1, 1};
  double cutoff = 9.0;
  double margin = 0.0;
  double beta = 0.3;  // Ewald splitting for the direct-space kernel
  int table_mantissa_bits = 22;
};

class VirtualMachine {
 public:
  /// Legacy mode: a one-shot distributed range-limited evaluator.
  VirtualMachine(const System& sys, const VmConfig& cfg);

  /// Full distributed time-step runtime, configured exactly like the
  /// engine (same kernels, geometry, integrator and migration cadence).
  /// Spawns one WorkerRuntime per rank on the selected byte transport
  /// (in-process by default); every inter-node delivery is a serialized
  /// one-way frame consumed by the destination rank.
  VirtualMachine(System sys, const core::AntonConfig& cfg);
  VirtualMachine(System sys, const core::AntonConfig& cfg,
                 const TransportOptions& topts);

  /// Shuts the worker ranks down (Shutdown broadcast, then join/reap).
  ~VirtualMachine();
  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  int node_count() const;

  /// One distributed range-limited force evaluation from the given
  /// lattice positions (legacy mode; usable in dynamics mode too, but
  /// does not touch the per-rank dynamic state). Returns per-atom
  /// fixed-point forces in global indexing for the caller's convenience;
  /// internally every node only ever touched its own mailbox.
  std::vector<Vec3l> evaluate(const std::vector<Vec3i>& positions,
                              CommLedger* stats = nullptr);

  // --- distributed time-step runtime (dynamics mode only) ---

  /// Runs n MTS cycles (n * long_range_every inner time steps) through
  /// the SPMD choreography. Bitwise identical to AntonEngine.
  void run_cycles(int ncycles);
  std::int64_t steps_done() const { return steps_; }

  /// FNV-1a hash over the fixed-point state in global atom order
  /// (diagnostic gather from the coordinator's mirror, refreshed from the
  /// ranks at every run_cycles boundary; equal to
  /// AntonEngine::state_hash() on the same trajectory).
  std::uint64_t state_hash() const;

  /// Raw fixed-point state assembled from the rank mirror in global atom
  /// order (diagnostic gather, not part of the choreography).
  std::vector<Vec3i> lattice_positions() const;
  std::vector<Vec3l> fixed_velocities() const;

  /// Negates all velocities (exact in fixed point); with constraints and
  /// thermostat off, running forward again retraces the trajectory.
  void negate_velocities();

  /// Reciprocal-space energy from the most recent long-range phase
  /// (computed by the ordered reduce on rank 0, reported per cycle).
  double reciprocal_energy() const { return e_recip_; }

  /// Measured message/byte accounting accumulated since the last reset
  /// (folded from the ranks' per-cycle reports).
  const CommLedger& ledger() const { return ledger_; }
  void reset_ledger() { ledger_ = CommLedger{}; }

  /// Workload counters accumulated since the last reset, attributed to
  /// virtual nodes exactly as the engine attributes them (so the VM's
  /// profile cross-validates against machine::WorkloadModel the same way
  /// the engine's does).
  const core::WorkloadProfile& workload();
  void reset_workload();

  /// Attaches a phase tracer (nullptr detaches). Worker ranks time their
  /// choreography phases and report them per cycle; the coordinator
  /// appends them as spans on track (rank + 1), making the per-rank comm
  /// pattern visible in the exported trace. Tracing never touches the
  /// rank memories: the trajectory with a tracer attached is bitwise
  /// identical to without.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry (nullptr detaches). The ledger's
  /// per-phase message/byte counters are published under "vm.*" at every
  /// cycle boundary, and -- when fault tolerance is enabled -- so are the
  /// vm.fault.* / vm.retry.* counters.
  void set_metrics(obs::MetricsRegistry* m);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // --- fault tolerance (dynamics mode only) ---

  /// Arms the seeded fault injectors (each rank derives its own stream
  /// from cfg.seed) and the distributed checkpoint / rollback machinery.
  /// Every inter-node message already flows through each rank's reliable
  /// link; this attaches the adversary to its wire and starts per-rank
  /// state capture every cfg.checkpoint_cycles cycle boundaries. With all
  /// probabilities zero and no crash schedule the trajectory is bitwise
  /// identical to an unarmed run and every vm.retry.* counter stays zero.
  void set_fault_config(const FaultConfig& cfg);

  /// Detaches the injectors and stops checkpoint capture.
  void clear_fault_config();

  /// Injected-fault and recovery-work counters since construction
  /// (merged across the ranks' reports).
  const FaultCounters& fault_counters() const { return merged_fc_; }

  /// Gathers the distributed per-rank state into a host-format checkpoint
  /// (bit-exact: Simulation could resume an engine from it). Diagnostic
  /// gather, not part of the choreography.
  io::Checkpoint export_checkpoint() const;

  /// The byte-level wire under the ranks (dynamics mode only; null in
  /// legacy mode). Tests reach through this to inspect measured traffic
  /// or SIGKILL a forked worker.
  ByteTransport* wire() const { return wire_.get(); }
  const TransportOptions& transport_options() const { return topts_; }

 private:
  /// One position record, as in the legacy evaluate() path.
  using AtomRecord = wire::PosRec;
  using AtomState = wire::AtomDyn;

  // --- construction helpers ---
  void init_pair_tables(double cutoff, double beta, double sigma_s,
                        double rs, int mantissa_bits);
  void build_geometry(const Vec3i& node_grid, const Vec3i& subbox_div,
                      double cutoff, double margin);
  void build_consumers();
  void build_feeds();
  void build_mesh_blocks();
  void initial_distribution(const std::vector<Vec3i>& gpos,
                            const std::vector<Vec3l>& gvel);
  void rebuild_bins_and_terms();
  void spawn_ranks();

  /// Coordinated distributed checkpoint: every rank's private state at
  /// one cycle boundary, plus the replicated directory/ownership tables.
  /// The rollback target after an injected node crash.
  struct NodeSnapshot {
    std::vector<std::int32_t> units;
    std::vector<std::pair<std::int32_t, AtomState>> atoms;  // sorted by id
  };
  struct VmCheckpoint {
    std::int64_t steps = 0;
    double e_recip = 0.0;
    std::vector<std::int32_t> unit_sb;
    std::vector<std::int32_t> directory;
    std::vector<NodeSnapshot> nodes;
  };

  // --- control plane (coordinator -> rank commands, raw frames) ---
  void send_frame_raw(int dst, const std::vector<std::uint8_t>& bytes);
  void send_ctl_to(int dst, const wire::Payload& p);
  void broadcast_ctl(const wire::Payload& p);

  // --- hub routing + diagnostics folding ---
  /// Receives frames, forwarding rank-to-rank traffic raw (the hub peeks
  /// only the destination field) and counting/releasing barriers, until a
  /// coordinator-bound non-barrier frame arrives; returns it decoded.
  wire::Frame next_coordinator_frame(int* src);
  void on_barrier(int src, std::uint32_t id);
  /// Drains the hub until `n` RankReports arrived, folding each into the
  /// ledger/workload/fault aggregates. A WorkerError frame surfaces as a
  /// WorkerErrorSignal exception (caught by run_cycles -> rollback).
  void collect_reports(int n);
  void fold_report(int src, const wire::RankReport& r);
  /// Collects a StateBlock from every rank and merges them into the
  /// coordinator's mirror (directory/unit tables, per-rank atoms).
  void state_sync();
  void merge_state_block(int src, const wire::StateBlock& b);

  // --- fault tolerance ---
  void capture_vm_checkpoint();
  void restore_vm_checkpoint();
  /// Coordinated rollback: restart dead ranks, Abort-drain every rank,
  /// restore the coordinator mirror from the checkpoint and push
  /// authoritative StateBlocks back out to all ranks.
  void rollback(const std::vector<int>& dead, bool restart);
  void send_restore_block(int rank);
  void run_one_cycle();
  void publish_metrics();

  // --- static replicated context (every rank holds a copy) ---
  System sys_;
  VmConfig cfg_;              // legacy mode parameters
  core::AntonConfig acfg_;    // dynamics mode parameters
  bool dynamic_ = false;
  fixed::PositionLattice lat_;
  std::unique_ptr<nt::NtGeometry> geom_;
  htis::PairKernels kernels_;
  pairlist::ExclusionTable excl_;
  ewald::GseParams gse_params_;
  std::unique_ptr<ewald::Gse> gse_;
  NodeProgram np_;
  IntegrationCoefs coefs_;
  std::uint64_t r2_limit_lattice_ = 0;
  double lat2_to_phys2_ = 0.0;

  // Shared decomposition structure (replicated, static between builds).
  std::vector<std::vector<std::int32_t>> units_;
  std::vector<std::vector<ConstraintBond>> group_constraints_;
  std::vector<std::int32_t> unit_sb_;    // unit -> assigned subbox
  std::vector<std::int32_t> directory_;  // atom -> home node (replicated)
  std::vector<std::vector<int>> consumers_;  // subbox -> consumer nodes
  std::vector<std::vector<std::int32_t>> node_subboxes_;
  std::vector<std::vector<std::int32_t>> node_import_subboxes_;
  /// Static bond-destination feeds: dest_feed_[x] lists the destination
  /// atoms whose terms read atom x's position; vsite_feed_[x] lists the
  /// virtual sites x parents.
  std::vector<std::vector<std::int32_t>> dest_feed_;
  std::vector<std::vector<std::int32_t>> vsite_feed_;

  // Mesh block partition (per axis: coordinate -> owning node coord).
  std::vector<int> mesh_owner_[3];
  std::vector<int> mesh_start_[3];

  // The coordinator's mirror of the rank states: authoritative only at
  // sync points (end of run_cycles, checkpoint cadence boundaries), used
  // for diagnostics gathers, checkpoint capture and worker (re)spawn
  // seeding. The ranks own the live state.
  std::vector<NodeState> nodes_;

  std::int64_t steps_ = 0;
  double e_recip_ = 0.0;
  CommLedger ledger_;
  CommLedger pub_base_;  // ledger snapshot at last metrics publish
  core::WorkloadProfile workload_;

  // The byte wire underneath the ranks plus the static world the spawn
  // lambda seeds each WorkerRuntime from (dynamics mode only).
  TransportOptions topts_;
  VmWorld world_;
  std::unique_ptr<ByteTransport> wire_;

  // Fault tolerance: the coordinator keeps the crash schedule authority;
  // the message-fault injectors live in the ranks (per-rank derived
  // seeds) and their counters are merged here from the reports.
  std::unique_ptr<FaultInjector> injector_;
  bool ft_enabled_ = false;
  VmCheckpoint ckpt_;
  bool have_ckpt_ = false;
  FaultCounters merged_fc_;

  // Control-plane sequencing: barrier arrival counts per id, and the raw
  // sequence for coordinator-originated frames.
  std::map<std::uint32_t, int> bar_count_;
  std::uint64_t ctl_seq_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct MetricIds {
    int steps = -1, cycles = -1, migrations = -1;
    int position_messages = -1, position_bytes = -1;
    int force_messages = -1, force_bytes = -1;
    int bond_messages = -1, bond_bytes = -1;
    int mesh_messages = -1, mesh_bytes = -1;
    int fft_messages = -1, fft_bytes = -1;
    int migration_messages = -1, migration_bytes = -1;
    int reduce_messages = -1, reduce_bytes = -1;
    int fault_drops = -1, fault_duplicates = -1, fault_reorders = -1;
    int fault_delays = -1, fault_crashes = -1;
    int retry_retransmits = -1, retry_retransmit_bytes = -1;
    int retry_dups_suppressed = -1, retry_out_of_order = -1;
    int retry_rollbacks = -1, retry_replayed_cycles = -1;
    int wire_roundtrips = -1, wire_bytes = -1;
  } mid_;
  FaultCounters fc_base_;  // fault-counter snapshot at last publish
  WireStats ws_base_;      // wire-stats snapshot at last publish
};

}  // namespace anton::parallel
