// The serialized wire format of the virtual-node runtime.
//
// Every inter-node delivery of the VirtualMachine choreography -- position
// multicast, bond dispatch, force return, mesh/FFT halos, reductions,
// migration, directory announcements -- is one *frame*: a 28-byte
// little-endian header followed by an explicitly serialized payload,
// protected end to end by a CRC-32 over header and payload. Nothing is
// memcpy'd as a struct (no host padding, endianness or type-width leaks
// into the format; see io/endian.hpp), and fixed-point values travel as
// their exact two's-complement / IEEE-754 bit patterns, so
// encode -> decode -> encode is byte-identical and a decoded trajectory is
// bitwise the sender's.
//
// Frame layout (all integers little-endian):
//
//   offset size field
//        0    4 magic        0x45524957 ("WIRE")
//        4    1 version      kWireVersion
//        5    1 phase        channel phase (VirtualMachine::Phase)
//        6    2 msg_type     MsgType discriminator
//        8    2 src          source virtual node
//       10    2 dst          destination virtual node
//       12    8 seq          per-(src,dst,phase) channel sequence number
//       20    4 payload_len  payload bytes following the header
//       24    4 crc          CRC-32 over bytes [0,24) + payload
//
// Decoding is defensive: every length is validated against the buffer
// before any allocation, any mismatch (truncation, bad magic/version,
// flipped byte anywhere, spliced payload) raises a typed WireError, and a
// frame never decodes to anything but exactly what was encoded.
#pragma once

#include <complex>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "geom/vec3.hpp"

namespace anton::parallel::wire {

constexpr std::uint32_t kWireMagic = 0x45524957u;  // "WIRE"
constexpr std::uint8_t kWireVersion = 1;
constexpr std::size_t kHeaderBytes = 28;
/// Hard cap on payload_len: a corrupt header must never provoke a huge
/// allocation, and no phase of the choreography legitimately exceeds it.
constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 23;  // 8 MiB

/// Payload discriminator carried in the frame header.
enum class MsgType : std::uint16_t {
  kPositionBatch = 1,    // subbox position multicast
  kBondPositions = 2,    // bond-destination / vsite-parent dispatch
  kForceBatch = 3,       // force return + vsite force share
  kMeshCharge = 4,       // charge halo into block owners
  kMeshPhi = 5,          // potential halo back to sources
  kFftSegment = 6,       // distributed-FFT line segment (gather/scatter)
  kMeshEnergyBlock = 7,  // (q, phi) block gather for the energy reduce
  kKineticTerms = 8,     // per-atom kinetic terms to the master
  kScaleVelocities = 9,  // thermostat lambda broadcast
  kMigrationBatch = 10,  // whole atom states changing home
  kDirectoryUpdate = 11, // new-home announcements after migration
  // --- SPMD control plane (coordinator <-> worker ranks) ---
  kControl = 12,         // commands + lifecycle (CtrlOp below)
  kBarrier = 13,         // phase barrier arrival / release
  kAck = 14,             // reliable-delivery ack riding the return path
  kRankReport = 15,      // per-cycle worker diagnostics export
  kStateBlock = 16,      // rank state (checkpoint collect / restore)
  kWorkerError = 17,     // typed worker-side failure report
};

/// Virtual node id the coordinator uses in control-frame headers. Real
/// ranks are dense [0, nnodes); this value can never collide.
constexpr int kCoordinator = 0xFFFE;

/// Channel-phase tag for control-plane frames (the data phases occupy
/// VirtualMachine::Phase 0..6).
constexpr int kChControl = 7;

/// Operations carried by a Control frame.
enum class CtrlOp : std::uint8_t {
  kInitForces = 1,       // run the initial short+long force evaluation
  kRunCycle = 2,         // execute one MTS cycle
  kNegateVelocities = 3, // time-reversal support
  kSetFault = 4,         // arm the rank-side injector (seed/probs in args)
  kClearFault = 5,       // disarm the rank-side injector
  kStateRequest = 6,     // reply with a StateBlock of your owned state
  kAbort = 7,            // unwind to the event loop (coordinated rollback)
  kAbortAck = 8,         // rank acknowledges the abort
  kShutdown = 9,         // exit the worker event loop
};

/// Typed decode failure. `kind` names the first check that failed.
class WireError : public std::runtime_error {
 public:
  enum class Kind {
    kTruncated,    // buffer shorter than the declared frame
    kBadMagic,
    kBadVersion,
    kBadLength,    // payload_len impossible (over cap / past buffer end)
    kBadCrc,
    kBadMsgType,
    kBadPayload,   // payload bytes inconsistent with the message type
  };
  WireError(Kind kind, const std::string& what)
      : std::runtime_error("wire: " + what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

// --- record types -----------------------------------------------------------

/// One atom position record: id + 3x32-bit lattice coordinates (16 bytes).
struct PosRec {
  std::int32_t id = 0;
  Vec3i pos{0, 0, 0};
  friend bool operator==(const PosRec&, const PosRec&) = default;
};

/// One force contribution: id + 3x64-bit fixed point (28 bytes).
struct ForceRec {
  std::int32_t id = 0;
  Vec3l f{0, 0, 0};
  friend bool operator==(const ForceRec&, const ForceRec&) = default;
};

/// The full dynamic state of one atom (84 bytes on the wire); the unit of
/// migration, and the VirtualMachine's per-atom storage.
struct AtomDyn {
  Vec3i pos{0, 0, 0};
  Vec3l vel{0, 0, 0};
  Vec3l f_short{0, 0, 0};
  Vec3l f_long{0, 0, 0};
  friend bool operator==(const AtomDyn&, const AtomDyn&) = default;
};

// --- message payloads -------------------------------------------------------

/// Position multicast: one subbox's atoms for one consumer node.
struct PositionBatch {
  std::int32_t sb = 0;
  std::vector<PosRec> recs;
  friend bool operator==(const PositionBatch&, const PositionBatch&) = default;
};

/// Bond-destination (or vsite-parent) position dispatch.
struct BondPositions {
  std::vector<PosRec> recs;
  friend bool operator==(const BondPositions&, const BondPositions&) = default;
};

/// Force partials returned to the atoms' home node.
struct ForceBatch {
  bool long_range = false;
  std::vector<ForceRec> recs;
  friend bool operator==(const ForceBatch&, const ForceBatch&) = default;
};

/// Charge halo: quantized spread charge at global mesh indices, wrap-added
/// into the owner's block. The owner records the index list per source to
/// route the potential halo back.
struct MeshCharge {
  std::vector<std::int32_t> idx;
  std::vector<std::int64_t> q;
  friend bool operator==(const MeshCharge&, const MeshCharge&) = default;
};

/// Potential halo-back: quantized phi at exactly the requested indices.
struct MeshPhi {
  std::vector<std::int32_t> idx;
  std::vector<std::int64_t> phi;
  friend bool operator==(const MeshPhi&, const MeshPhi&) = default;
};

/// One segment of a distributed-FFT line. kind 0 = gather (holder ->
/// line owner, lands at [s0, s0+pts) of the owner's assembled line);
/// kind 1 = scatter (owner -> holder, who recomputes the strided slab
/// indices from axis/a/b and its own block origin).
struct FftSegment {
  std::uint8_t axis = 0;
  std::uint8_t kind = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t s0 = 0;
  std::vector<std::complex<double>> pts;
  friend bool operator==(const FftSegment&, const FftSegment&) = default;
};

/// (q, phi) block gather to the master for the ordered energy reduction.
struct MeshEnergyBlock {
  std::vector<std::uint64_t> gidx;
  std::vector<double> q;
  std::vector<double> phi;
  friend bool operator==(const MeshEnergyBlock&,
                         const MeshEnergyBlock&) = default;
};

/// Per-atom kinetic terms gathered to the master for the thermostat.
struct KineticTerms {
  std::vector<std::int32_t> id;
  std::vector<double> term;
  friend bool operator==(const KineticTerms&, const KineticTerms&) = default;
};

/// Thermostat scale factor broadcast from the master.
struct ScaleVelocities {
  double lambda = 1.0;
  friend bool operator==(const ScaleVelocities&,
                         const ScaleVelocities&) = default;
};

/// Whole atom states moving to a new home node.
struct MigrationBatch {
  std::vector<std::int32_t> id;
  std::vector<AtomDyn> atoms;
  friend bool operator==(const MigrationBatch&,
                         const MigrationBatch&) = default;
};

/// New-home announcements replicated to every other node after migration.
struct DirectoryUpdate {
  std::vector<std::int32_t> id;
  std::vector<std::int32_t> home;
  friend bool operator==(const DirectoryUpdate&,
                         const DirectoryUpdate&) = default;
};

/// Coordinator command / rank lifecycle message. The op decides which of
/// the generic argument slots are meaningful (kSetFault: i0 = seed,
/// i1 = max_attempts, f0..f3 = drop/duplicate/reorder/delay).
struct Control {
  CtrlOp op = CtrlOp::kRunCycle;
  std::int64_t i0 = 0;
  std::int64_t i1 = 0;
  double f0 = 0.0;
  double f1 = 0.0;
  double f2 = 0.0;
  double f3 = 0.0;
  friend bool operator==(const Control&, const Control&) = default;
};

/// Phase-barrier token: rank -> coordinator announces arrival at barrier
/// `id`; coordinator -> rank is the matching release. Ids are a monotonic
/// per-cycle sequence identical on every rank.
struct Barrier {
  std::uint32_t id = 0;
  friend bool operator==(const Barrier&, const Barrier&) = default;
};

/// Reliable-delivery acknowledgment on the return path: confirms receipt
/// of the data frame with sequence `seq` on channel phase `phase` from the
/// frame's destination back to its original sender.
struct Ack {
  std::uint8_t phase = 0;
  std::uint64_t seq = 0;
  friend bool operator==(const Ack&, const Ack&) = default;
};

/// Per-cycle diagnostics a rank exports to the coordinator: flat deltas of
/// its workload counters, per-phase comm ledger, fault counters and span
/// totals, in fixed orders the VirtualMachine packs/unpacks.
struct RankReport {
  std::int64_t pid = 0;    // OS pid of the reporting process
  std::int64_t sent = 0;   // messages this rank sent this cycle
  double e_recip = 0.0;    // reciprocal energy (meaningful from rank 0)
  std::vector<std::int64_t> counters;  // NodeCounters fields, fixed order
  std::vector<std::int64_t> ledger;    // 8 phases x {messages,bytes,hops}
  std::vector<std::int64_t> faults;    // FaultCounters subset, fixed order
  std::vector<std::uint16_t> span_id;  // per-phase span table indices
  std::vector<double> span_us;         // matching durations
  friend bool operator==(const RankReport&, const RankReport&) = default;
};

/// One rank's dynamic state: checkpoint collection (rank -> coordinator)
/// and rollback restore (coordinator -> rank). `directory`/`unit_sb` are
/// full per-unit tables (authoritative on restore; the sender's replica on
/// collect); `unit_id` lists the subject rank's owned units and
/// `atom_id`/`atoms` its owned atom states.
struct StateBlock {
  std::uint64_t steps = 0;
  double e_recip = 0.0;
  std::vector<std::int32_t> directory;
  std::vector<std::int32_t> unit_sb;
  std::vector<std::int32_t> unit_id;
  std::vector<std::int32_t> atom_id;
  std::vector<AtomDyn> atoms;
  friend bool operator==(const StateBlock&, const StateBlock&) = default;
};

/// Typed worker-side failure (e.g. a corrupted frame surfaced as a
/// WireError at the rank): reported to the coordinator, which answers with
/// a coordinated rollback instead of letting the worker abort.
struct WorkerError {
  std::uint8_t code = 0;    // WireError::Kind + 1, or 0 for generic
  std::uint32_t detail = 0;
  friend bool operator==(const WorkerError&, const WorkerError&) = default;
};

using Payload =
    std::variant<PositionBatch, BondPositions, ForceBatch, MeshCharge,
                 MeshPhi, FftSegment, MeshEnergyBlock, KineticTerms,
                 ScaleVelocities, MigrationBatch, DirectoryUpdate, Control,
                 Barrier, Ack, RankReport, StateBlock, WorkerError>;

/// Returns the MsgType tag of a payload alternative.
MsgType type_of(const Payload& p);

// --- per-type wire sizes (exported for the traffic cross-checks) -----------

constexpr std::int64_t kPosRecBytes = 16;
constexpr std::int64_t kForceRecBytes = 28;
constexpr std::int64_t kMeshRecBytes = 12;       // i32 idx + i64 value
constexpr std::int64_t kFftPointBytes = 16;      // one complex double
constexpr std::int64_t kEnergyRecBytes = 24;     // u64 gidx + f64 q + f64 phi
constexpr std::int64_t kKineticRecBytes = 12;    // i32 id + f64 term
constexpr std::int64_t kAtomDynBytes = 84;
constexpr std::int64_t kMigrationRecBytes = 88;  // i32 id + AtomDyn
constexpr std::int64_t kDirectoryRecBytes = 8;   // i32 id + i32 home

/// Payload metadata bytes (between the frame header and the records).
constexpr std::int64_t kPositionBatchMeta = 8;   // i32 sb + u32 count
constexpr std::int64_t kBondPositionsMeta = 4;   // u32 count
constexpr std::int64_t kForceBatchMeta = 5;      // u8 long_range + u32 count
constexpr std::int64_t kMeshValuesMeta = 4;      // u32 count
constexpr std::int64_t kFftSegmentMeta = 18;     // axis,kind,a,b,s0 + count
constexpr std::int64_t kEnergyBlockMeta = 4;     // u32 count
constexpr std::int64_t kKineticTermsMeta = 4;    // u32 count
constexpr std::int64_t kScaleVelocitiesBytes = 8;
constexpr std::int64_t kMigrationMeta = 4;       // u32 count
constexpr std::int64_t kDirectoryMeta = 4;       // u32 count
constexpr std::int64_t kControlBytes = 49;       // u8 op + 2xi64 + 4xf64
constexpr std::int64_t kBarrierBytes = 4;        // u32 id
constexpr std::int64_t kAckBytes = 9;            // u8 phase + u64 seq

// --- frame ------------------------------------------------------------------

struct FrameHeader {
  std::uint8_t version = kWireVersion;
  std::uint8_t phase = 0;
  MsgType msg_type{};
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload_len = 0;
  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

struct Frame {
  FrameHeader header;
  Payload payload;
  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serializes one message into a self-contained frame (header stamped with
/// the given channel coordinates and sequence number, CRC computed last).
std::vector<std::uint8_t> encode_frame(int phase, int src, int dst,
                                       std::uint64_t seq, const Payload& p);

/// Parses exactly one frame from `bytes`. The buffer must hold the frame
/// and nothing else (trailing bytes are a kBadLength error: frames are
/// exchanged whole, never streamed). Throws WireError on any corruption.
Frame decode_frame(const std::vector<std::uint8_t>& bytes);

/// Header-and-CRC validation without payload decode (what a forwarding
/// endpoint checks before echoing a frame it does not interpret). Returns
/// 0 on success, otherwise a nonzero code identifying the failed check
/// (1 truncated, 2 magic, 3 version, 4 length, 5 crc). Allocation-free:
/// safe in a forked worker.
int validate_frame(const std::uint8_t* data, std::size_t len);

}  // namespace anton::parallel::wire
