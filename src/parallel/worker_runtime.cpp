#include "parallel/worker_runtime.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>
#include <variant>

#include "bonded/bonded.hpp"
#include "fixed/fixed.hpp"

namespace anton::parallel {

namespace {

inline void acc3(Vec3l& a, const Vec3l& d) {
  a.x = fixed::wrap_add(a.x, d.x);
  a.y = fixed::wrap_add(a.y, d.y);
  a.z = fixed::wrap_add(a.z, d.z);
}

inline void sub3(Vec3l& a, const Vec3l& d) {
  a.x = fixed::wrap_sub(a.x, d.x);
  a.y = fixed::wrap_sub(a.y, d.y);
  a.z = fixed::wrap_sub(a.z, d.z);
}

/// Coordinator ordered an abort: unwind to the event loop, acknowledge,
/// and wait for the StateBlock restore.
struct AbortException {};

/// Coordinator ordered shutdown: unwind out of run().
struct ShutdownException {};

}  // namespace

const char* const WorkerRuntime::kSpanNames[WorkerRuntime::kNumSpans] = {
    "vm.position_multicast", "vm.compute",  "vm.bond_dispatch",
    "vm.bond_terms",         "vm.force_return", "vm.gse.spread",
    "vm.gse.fft",            "vm.gse.interpolate", "vm.correction",
    "vm.integrate",          "vm.migrate",  "vm.mts_cycle",
};

void rebuild_node_bins_and_terms(
    const Topology& top, const std::vector<std::vector<std::int32_t>>& units,
    const std::vector<std::int32_t>& unit_sb,
    const std::vector<std::int32_t>& directory, int self, NodeState& nd) {
  nd.bins.clear();
  nd.bonds.clear();
  nd.angles.clear();
  nd.dihedrals.clear();
  nd.exclusions.clear();
  nd.vsites.clear();
  for (std::int32_t u : nd.units) {
    auto& bin = nd.bins[unit_sb[u]];
    for (std::int32_t a : units[u]) bin.push_back(a);
  }
  for (auto& [sb, ids] : nd.bins) std::sort(ids.begin(), ids.end());
  for (std::size_t k = 0; k < top.bonds.size(); ++k)
    if (directory[top.bonds[k].i] == self)
      nd.bonds.push_back(static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.angles.size(); ++k)
    if (directory[top.angles[k].i] == self)
      nd.angles.push_back(static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.dihedrals.size(); ++k)
    if (directory[top.dihedrals[k].i] == self)
      nd.dihedrals.push_back(static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.exclusions.size(); ++k)
    if (directory[top.exclusions[k].i] == self)
      nd.exclusions.push_back(static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.virtual_sites.size(); ++k)
    if (directory[top.virtual_sites[k].site] == self)
      nd.vsites.push_back(static_cast<std::int32_t>(k));
}

// ---------------------------------------------------------------------------
// Construction.
// ---------------------------------------------------------------------------

WorkerRuntime::WorkerRuntime(const VmWorld& w, int rank, WorkerEndpoint& ep,
                             NodeState initial,
                             std::vector<std::int32_t> directory,
                             std::vector<std::int32_t> unit_sb,
                             std::int64_t steps)
    : w_(w),
      rank_(rank),
      ep_(ep),
      np_(*w.np),
      fft1_(static_cast<std::size_t>(w.np->gse_params.mesh)),
      link_(rank,
            [this](const std::vector<std::uint8_t>& f) { ep_.send(f); }),
      nd_(std::move(initial)),
      directory_(std::move(directory)),
      unit_sb_(std::move(unit_sb)),
      steps_(steps) {
  if (rank_ == 0) {
    const int M = np_.gse_params.mesh;
    const std::size_t mesh_total = static_cast<std::size_t>(M) * M * M;
    master_q_full_.assign(mesh_total, 0.0);
    master_phi_full_.assign(mesh_total, 0.0);
    red_kin_.assign(static_cast<std::size_t>(np_.top->natoms), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Event loop.
// ---------------------------------------------------------------------------

wire::Frame WorkerRuntime::recv_frame() {
  return wire::decode_frame(ep_.recv());
}

void WorkerRuntime::send_ctl(wire::Payload payload) {
  ep_.send(wire::encode_frame(wire::kChControl, rank_, wire::kCoordinator,
                              ctl_seq_++, payload));
}

void WorkerRuntime::run() {
  try {
    for (;;) {
      wire::Frame f;
      try {
        f = recv_frame();
      } catch (const wire::WireError& we) {
        // A corrupted frame reached this rank. Surface it as a typed
        // report; the coordinator answers with a coordinated rollback
        // instead of letting the worker abort.
        report_error(we);
        await_rollback();
        continue;
      }
      try {
        handle(f);
      } catch (const AbortException&) {
        ack_abort();
      } catch (const wire::WireError& we) {
        report_error(we);
        await_rollback();
      }
    }
  } catch (const ShutdownException&) {
    // Graceful exit: the coordinator is joining us.
  }
}

void WorkerRuntime::handle(const wire::Frame& f) {
  switch (f.header.msg_type) {
    case wire::MsgType::kControl: {
      const auto& c = std::get<wire::Control>(f.payload);
      switch (c.op) {
        case wire::CtrlOp::kInitForces:
          init_forces();
          send_report();
          break;
        case wire::CtrlOp::kRunCycle:
          run_cycle();
          send_report();
          break;
        case wire::CtrlOp::kNegateVelocities:
          for (auto& [id, st] : nd_.atoms) {
            st.vel.x = fixed::wrap_sub(0, st.vel.x);
            st.vel.y = fixed::wrap_sub(0, st.vel.y);
            st.vel.z = fixed::wrap_sub(0, st.vel.z);
          }
          break;
        case wire::CtrlOp::kSetFault: {
          FaultConfig fc;
          fc.seed = ReliableLink::derive_seed(
              static_cast<std::uint64_t>(c.i0), rank_);
          fc.max_attempts = static_cast<int>(c.i1);
          fc.drop = c.f0;
          fc.duplicate = c.f1;
          fc.reorder = c.f2;
          fc.delay = c.f3;
          link_.arm(fc);
          break;
        }
        case wire::CtrlOp::kClearFault:
          link_.disarm();
          break;
        case wire::CtrlOp::kStateRequest:
          send_state_block();
          break;
        case wire::CtrlOp::kAbort:
          throw AbortException{};
        case wire::CtrlOp::kShutdown:
          throw ShutdownException{};
        case wire::CtrlOp::kAbortAck:
          break;  // coordinator-bound; never meaningful here
      }
      break;
    }
    case wire::MsgType::kStateBlock:
      restore(std::get<wire::StateBlock>(f.payload));
      break;
    case wire::MsgType::kAck:
      link_.on_ack(f.header.src, std::get<wire::Ack>(f.payload));
      break;
    case wire::MsgType::kBarrier:
      break;  // stale release (pre-rollback); already satisfied
    default:
      // A data frame surfacing outside a barrier wait (e.g. an ack-less
      // straggler after this rank left its wait): same reliable path.
      link_.on_data(f, [this](const wire::Frame& df) {
        apply_payload(df.header.src, df.payload);
      });
      break;
  }
}

void WorkerRuntime::report_error(const wire::WireError& we) {
  wire::WorkerError err;
  err.code = static_cast<std::uint8_t>(we.kind()) + 1;
  send_ctl(err);
}

void WorkerRuntime::await_rollback() {
  // Everything inbound before the coordinator's Abort belongs to the
  // abandoned cycle: discard it (further decode failures included).
  for (;;) {
    wire::Frame f;
    try {
      f = recv_frame();
    } catch (const wire::WireError&) {
      continue;
    }
    if (f.header.msg_type == wire::MsgType::kControl) {
      const auto& c = std::get<wire::Control>(f.payload);
      if (c.op == wire::CtrlOp::kAbort) {
        ack_abort();
        return;
      }
      if (c.op == wire::CtrlOp::kShutdown) throw ShutdownException{};
    }
  }
}

void WorkerRuntime::ack_abort() {
  wire::Control c;
  c.op = wire::CtrlOp::kAbortAck;
  send_ctl(c);
}

void WorkerRuntime::restore(const wire::StateBlock& b) {
  steps_ = static_cast<std::int64_t>(b.steps);
  e_recip_ = b.e_recip;
  directory_ = b.directory;
  unit_sb_ = b.unit_sb;
  nd_.units = b.unit_id;
  nd_.atoms.clear();
  for (std::size_t i = 0; i < b.atom_id.size(); ++i)
    nd_.atoms.emplace(b.atom_id[i], b.atoms[i]);
  // Scrub per-step mailbox residue (checkpoints are taken at quiescent
  // cycle boundaries, but the replay must not see partial sums).
  nd_.recs.clear();
  for (std::int32_t id : nd_.plist) {
    nd_.partial[id] = {0, 0, 0};
    nd_.ptouched[id] = 0;
  }
  nd_.plist.clear();
  for (std::int32_t idx : nd_.touched) {
    nd_.spread_q[idx] = 0;
    nd_.stouched[idx] = 0;
  }
  nd_.touched.clear();
  for (auto& l : nd_.halo_req) l.clear();
  fft_lines_.clear();
  // Both ends of every channel restart from sequence zero; so does the
  // barrier sequence. (Diagnostics bases are NOT reset: partial-cycle
  // deltas fold into the next successful report.)
  link_.reset_channels();
  bar_id_ = 0;
  rebuild_node_bins_and_terms(top(), *w_.units, unit_sb_, directory_, rank_,
                              nd_);
}

void WorkerRuntime::send_state_block() {
  wire::StateBlock b;
  b.steps = static_cast<std::uint64_t>(steps_);
  b.e_recip = e_recip_;
  b.directory = directory_;
  b.unit_sb = unit_sb_;
  b.unit_id = nd_.units;
  b.atom_id.reserve(nd_.atoms.size());
  for (const auto& [id, st] : nd_.atoms) b.atom_id.push_back(id);
  std::sort(b.atom_id.begin(), b.atom_id.end());
  b.atoms.reserve(b.atom_id.size());
  for (std::int32_t id : b.atom_id) b.atoms.push_back(nd_.atoms.at(id));
  send_ctl(std::move(b));
}

void WorkerRuntime::send_report() {
  wire::RankReport r;
  r.pid = static_cast<std::int64_t>(::getpid());
  r.sent = sent_;
  r.e_recip = e_recip_;

  r.counters = {
      nc_.pairs_considered - nc_base_.pairs_considered,
      nc_.ppip_queue - nc_base_.ppip_queue,
      nc_.interactions - nc_base_.interactions,
      nc_.spread_ops - nc_base_.spread_ops,
      nc_.interp_ops - nc_base_.interp_ops,
      nc_.bond_terms - nc_base_.bond_terms,
      nc_.correction_pairs - nc_base_.correction_pairs,
  };

  r.ledger.reserve(kReportLedger);
  auto phase = [&](const PhaseComm& cur, const PhaseComm& base) {
    r.ledger.push_back(cur.messages - base.messages);
    r.ledger.push_back(cur.bytes - base.bytes);
    r.ledger.push_back(cur.max_hops);  // lifetime max, max-folded
  };
  phase(led_.position, led_base_.position);
  phase(led_.force, led_base_.force);
  phase(led_.bond, led_base_.bond);
  phase(led_.mesh, led_base_.mesh);
  phase(led_.fft, led_base_.fft);
  phase(led_.migration, led_base_.migration);
  phase(led_.reduce, led_base_.reduce);
  r.ledger.push_back(led_.pairs_considered - led_base_.pairs_considered);
  r.ledger.push_back(led_.interactions - led_base_.interactions);

  const FaultCounters& fc = link_.counters();
  r.faults = {
      fc.drops - fc_base_.drops,
      fc.duplicates - fc_base_.duplicates,
      fc.reorders - fc_base_.reorders,
      fc.delays - fc_base_.delays,
      fc.retransmits - fc_base_.retransmits,
      fc.retransmit_bytes - fc_base_.retransmit_bytes,
      fc.dups_suppressed - fc_base_.dups_suppressed,
      fc.out_of_order_held - fc_base_.out_of_order_held,
  };

  for (int i = 0; i < kNumSpans; ++i) {
    if (span_acc_[i] > 0.0) {
      r.span_id.push_back(static_cast<std::uint16_t>(i));
      r.span_us.push_back(span_acc_[i]);
    }
    span_acc_[i] = 0.0;
  }

  nc_base_ = nc_;
  led_base_ = led_;
  fc_base_ = fc;
  send_ctl(std::move(r));
}

void WorkerRuntime::init_forces() {
  sent_ = 0;
  compute_short_forces();
  compute_long_forces();
}

void WorkerRuntime::run_cycle() {
  const int k = std::max(1, w_.acfg->sim.long_range_every);
  SpanTimer cycle_t(span_acc_[kSpanMtsCycle]);
  sent_ = 0;
  if (w_.acfg->migration_interval > 0 &&
      steps_ % w_.acfg->migration_interval == 0) {
    SpanTimer t(span_acc_[kSpanMigrate]);
    migrate_by_message();
  }
  {
    SpanTimer t(span_acc_[kSpanIntegrate]);
    kick_all(true);
  }
  for (int s = 0; s < k; ++s) {
    {
      SpanTimer t(span_acc_[kSpanIntegrate]);
      kick_all(false);
      drift_and_constrain();
      finish_drift();
    }
    compute_short_forces();
    {
      SpanTimer t(span_acc_[kSpanIntegrate]);
      kick_all(false);
      rattle_groups();
    }
    ++steps_;
  }
  compute_long_forces();
  {
    SpanTimer t(span_acc_[kSpanIntegrate]);
    kick_all(true);
    rattle_groups();
    if (w_.acfg->sim.thermostat) apply_thermostat();
  }
}

// ---------------------------------------------------------------------------
// Delivery, application, barrier.
// ---------------------------------------------------------------------------

int WorkerRuntime::torus_hops(int dst) const {
  const Vec3i p = w_.geom->config().node_grid;
  auto ring = [](int a, int b, int n) {
    const int d = std::abs(a - b);
    return std::min(d, n - d);
  };
  const int sx = rank_ % p.x, sy = (rank_ / p.x) % p.y,
            sz = rank_ / (p.x * p.y);
  const int dx = dst % p.x, dy = (dst / p.x) % p.y, dz = dst / (p.x * p.y);
  return ring(sx, dx, p.x) + ring(sy, dy, p.y) + ring(sz, dz, p.z);
}

void WorkerRuntime::deliver(PhaseComm& phase, int channel_phase, int dst,
                            wire::Payload payload) {
  if (dst == rank_) {
    // Rank-local handoff: never touches the wire (and is never counted).
    apply_payload(rank_, payload);
    return;
  }
  const std::int64_t bytes =
      link_.send(dst, channel_phase, std::move(payload));
  ++phase.messages;
  phase.bytes += bytes;
  const int h = torus_hops(dst);
  if (h > phase.max_hops) phase.max_hops = h;
  ++sent_;
}

void WorkerRuntime::apply_payload(int src, const wire::Payload& p) {
  NodeState& nd = nd_;
  const int M = np_.gse_params.mesh;
  // Block-local index of global mesh point (x, y, z) on `b`'s block.
  auto block_index = [](const NodeState& b, int x, int y, int z) {
    return (static_cast<std::size_t>(z - b.block_lo.z) * b.block_sz.y +
            (y - b.block_lo.y)) *
               b.block_sz.x +
           (x - b.block_lo.x);
  };
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, wire::PositionBatch>) {
          records_of(m.sb) = m.recs;
        } else if constexpr (std::is_same_v<T, wire::BondPositions>) {
          for (const wire::PosRec& r : m.recs) nd.rpos[r.id] = r.pos;
        } else if constexpr (std::is_same_v<T, wire::ForceBatch>) {
          for (const wire::ForceRec& r : m.recs) {
            AtomState& st = nd.atoms.at(r.id);
            acc3(m.long_range ? st.f_long : st.f_short, r.f);
          }
        } else if constexpr (std::is_same_v<T, wire::MeshCharge>) {
          // Wrap-add the halo charges into the owned block; remember which
          // points the source touched so the potential halo can route
          // straight back.
          for (std::size_t i = 0; i < m.idx.size(); ++i) {
            const std::int32_t idx = m.idx[i];
            const int x = idx % M;
            const int y = (idx / M) % M;
            const int z = idx / (M * M);
            const std::size_t l = block_index(nd, x, y, z);
            nd.mesh_q[l] = fixed::wrap_add(nd.mesh_q[l], m.q[i]);
          }
          nd.halo_req[src] = m.idx;
        } else if constexpr (std::is_same_v<T, wire::MeshPhi>) {
          for (std::size_t i = 0; i < m.idx.size(); ++i)
            nd.halo_phi[m.idx[i]] = m.phi[i];
        } else if constexpr (std::is_same_v<T, wire::FftSegment>) {
          if (m.kind == 0) {
            // Gather: segment lands in the owner's assembled line for
            // (a, b) on this axis.
            auto& line = fft_lines_[{m.a, m.b}];
            if (line.empty())
              line.assign(static_cast<std::size_t>(M), fft::cplx{});
            std::copy(m.pts.begin(), m.pts.end(), line.begin() + m.s0);
          } else {
            // Scatter: transformed points return to the holder's slab at
            // the line's (a, b) coordinates on the message's axis.
            for (std::size_t i = 0; i < m.pts.size(); ++i) {
              const int k = m.s0 + static_cast<int>(i);
              int x, y, z;
              if (m.axis == 0) {
                x = k; y = m.a; z = m.b;
              } else if (m.axis == 1) {
                x = m.a; y = k; z = m.b;
              } else {
                x = m.a; y = m.b; z = k;
              }
              nd.fft_grid[block_index(nd, x, y, z)] = m.pts[i];
            }
          }
        } else if constexpr (std::is_same_v<T, wire::MeshEnergyBlock>) {
          for (std::size_t i = 0; i < m.gidx.size(); ++i) {
            master_q_full_[m.gidx[i]] = m.q[i];
            master_phi_full_[m.gidx[i]] = m.phi[i];
          }
        } else if constexpr (std::is_same_v<T, wire::KineticTerms>) {
          for (std::size_t i = 0; i < m.id.size(); ++i)
            red_kin_[m.id[i]] = m.term[i];
        } else if constexpr (std::is_same_v<T, wire::ScaleVelocities>) {
          for (auto& [id, st] : nd.atoms) scale_velocity(st.vel, m.lambda);
        } else if constexpr (std::is_same_v<T, wire::MigrationBatch>) {
          for (std::size_t i = 0; i < m.id.size(); ++i)
            nd.atoms[m.id[i]] = m.atoms[i];
        } else if constexpr (std::is_same_v<T, wire::DirectoryUpdate>) {
          for (std::size_t i = 0; i < m.id.size(); ++i)
            directory_[m.id[i]] = m.home[i];
        }
        // Control-plane payloads never reach apply_payload.
      },
      p);
}

void WorkerRuntime::barrier() {
  const std::uint32_t want = bar_id_++;
  send_ctl(wire::Barrier{want});
  for (;;) {
    const wire::Frame f = recv_frame();
    switch (f.header.msg_type) {
      case wire::MsgType::kBarrier: {
        const auto& b = std::get<wire::Barrier>(f.payload);
        if (b.id == want) return;
        break;  // stale release from before a rollback
      }
      case wire::MsgType::kAck:
        link_.on_ack(f.header.src, std::get<wire::Ack>(f.payload));
        break;
      case wire::MsgType::kControl: {
        const auto& c = std::get<wire::Control>(f.payload);
        if (c.op == wire::CtrlOp::kAbort) throw AbortException{};
        if (c.op == wire::CtrlOp::kShutdown) throw ShutdownException{};
        break;
      }
      default:
        // Data for this phase (or the next one racing ahead): the
        // reliable layer applies exactly once in channel order.
        link_.on_data(f, [this](const wire::Frame& df) {
          apply_payload(df.header.src, df.payload);
        });
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

std::vector<AtomRecord>& WorkerRuntime::records_of(std::int32_t sb) {
  return nd_.recs[sb];
}

void WorkerRuntime::touch_partial(std::int32_t id) {
  if (!nd_.ptouched[id]) {
    nd_.ptouched[id] = 1;
    nd_.partial[id] = {0, 0, 0};
    nd_.plist.push_back(id);
  }
}

Vec3i WorkerRuntime::pos_of(std::int32_t id) const {
  const auto it = nd_.atoms.find(id);
  return it != nd_.atoms.end() ? it->second.pos : nd_.rpos[id];
}

// ---------------------------------------------------------------------------
// Range-limited choreography (shared by both compute passes).
// ---------------------------------------------------------------------------

void WorkerRuntime::position_multicast() {
  SpanTimer t(span_acc_[kSpanPositionMulticast]);
  nd_.recs.clear();
  for (const auto& [sb, ids] : nd_.bins) {
    std::vector<AtomRecord> payload;
    payload.reserve(ids.size());
    for (std::int32_t a : ids) payload.push_back({a, nd_.atoms.at(a).pos});
    for (int dst : (*w_.consumers)[sb])
      deliver(led_.position, kChPosition, dst,
              wire::PositionBatch{sb, payload});
  }
  link_.flush();
  barrier();  // pair phase reads the consumer mailboxes
}

void WorkerRuntime::pair_phase() {
  SpanTimer t(span_acc_[kSpanCompute]);
  NodeState& nd = nd_;
  core::NodeCounters& nc = nc_;
  // Pack the delivered position records into SoA lanes (keyed on recs, so
  // a bin absent from this step's mailboxes is never read stale).
  for (const auto& [sb, v] : nd.recs) {
    BinSoA& s = nd.soa[sb];
    s.clear();
    s.reserve(v.size());
    for (const AtomRecord& r : v) s.push_atom(top(), r.id, r.pos);
  }
  for (std::int32_t hidx : (*w_.node_subboxes)[rank_]) {
    const Vec3i h = w_.geom->coords_of(hidx);
    for (std::int32_t dz : w_.geom->tower_dz()) {
      const std::int32_t tidx =
          w_.geom->index_of(w_.geom->wrap_coords({h.x, h.y, h.z + dz}));
      const auto t_it = nd.recs.find(tidx);
      if (t_it == nd.recs.end() || t_it->second.empty()) continue;
      for (const Vec3i& poff : w_.geom->plate_half()) {
        if (!w_.geom->owns_pair(h, dz, poff)) continue;
        const std::int32_t pidx = w_.geom->index_of(
            w_.geom->wrap_coords({h.x + poff.x, h.y + poff.y, h.z}));
        const auto p_it = nd.recs.find(pidx);
        if (p_it == nd.recs.end() || p_it->second.empty()) continue;
        const bool same = tidx == pidx;
        // SoA block path: bitwise identical forces/counters to the scalar
        // eval_pair loop, hits emitted in its (a, b) order (so the
        // first-touch plist order -- and with it the force-return wire
        // frames -- are unchanged).
        PairBlockCounters pc;
        eval_pair_block(np_, nd.soa.at(tidx), nd.soa.at(pidx), same, nd.pscr,
                        pc);
        nc.pairs_considered += pc.considered;
        led_.pairs_considered += pc.considered;
        nc.ppip_queue += pc.queued;
        nc.interactions += pc.computed;
        led_.interactions += pc.computed;
        for (const PairHit& ph : nd.pscr.hits) {
          touch_partial(ph.lo);
          acc3(nd.partial[ph.lo], ph.f);
          touch_partial(ph.hi);
          sub3(nd.partial[ph.hi], ph.f);
        }
      }
    }
  }
}

void WorkerRuntime::bond_dispatch_and_terms(bool long_range) {
  const Topology& tp = top();
  NodeState& nd = nd_;
  if (!long_range) {
    // Bond-destination position dispatch: this rank sends the positions
    // of its home atoms to every rank evaluating a term (bonded or
    // correction) whose destination atom reads them. The long-range
    // correction pass reuses these mailboxes: positions have not changed
    // since the cycle's last short-range dispatch.
    SpanTimer t(span_acc_[kSpanBondDispatch]);
    std::vector<std::vector<AtomRecord>> out(w_.nnodes);
    std::vector<int> dsts;
    for (const auto& [sb, ids] : nd.bins) {
      for (std::int32_t a : ids) {
        if ((*w_.dest_feed)[a].empty()) continue;
        dsts.clear();
        for (std::int32_t dest : (*w_.dest_feed)[a]) {
          const int dst = directory_[dest];
          if (dst == rank_) continue;
          if (std::find(dsts.begin(), dsts.end(), dst) == dsts.end())
            dsts.push_back(dst);
        }
        const Vec3i p = nd.atoms.at(a).pos;
        for (int dst : dsts) out[dst].push_back({a, p});
      }
    }
    for (int dst = 0; dst < w_.nnodes; ++dst) {
      if (out[dst].empty()) continue;
      deliver(led_.bond, kChBond, dst,
              wire::BondPositions{std::move(out[dst])});
    }
    link_.flush();
    barrier();  // term evaluation reads the rpos mailboxes
  }

  SpanTimer t(span_acc_[long_range ? kSpanCorrection : kSpanBondTerms]);
  core::NodeCounters& nc = nc_;
  if (!long_range) {
    auto apply = [&](const bonded::TermForces& tf) {
      ++nc.bond_terms;
      Vec3d tpos[4];
      for (int i = 0; i < tf.n; ++i)
        tpos[i] = lat().to_phys(pos_of(tf.atom[i]));
      const QuantizedTerm qt = quantize_term(np_, tf, tpos, false);
      for (int i = 0; i < qt.n; ++i) {
        touch_partial(qt.atom[i]);
        acc3(nd.partial[qt.atom[i]], qt.f[i]);
      }
    };
    for (std::int32_t k : nd.bonds) {
      const BondTerm& b = tp.bonds[k];
      apply(bonded::eval_bond(b, lat().to_phys(pos_of(b.i)),
                              lat().to_phys(pos_of(b.j)), *np_.box));
    }
    for (std::int32_t k : nd.angles) {
      const AngleTerm& a = tp.angles[k];
      apply(bonded::eval_angle(a, lat().to_phys(pos_of(a.i)),
                               lat().to_phys(pos_of(a.j)),
                               lat().to_phys(pos_of(a.k)), *np_.box));
    }
    for (std::int32_t k : nd.dihedrals) {
      const DihedralTerm& d = tp.dihedrals[k];
      apply(bonded::eval_dihedral(d, lat().to_phys(pos_of(d.i)),
                                  lat().to_phys(pos_of(d.j)),
                                  lat().to_phys(pos_of(d.k)),
                                  lat().to_phys(pos_of(d.l)), *np_.box));
    }
    for (std::int32_t k : nd.exclusions) {
      const ExclusionPair& e = tp.exclusions[k];
      const CorrectionResult cr =
          eval_correction_short(np_, e, pos_of(e.i), pos_of(e.j), false);
      if (!cr.computed) continue;
      touch_partial(e.i);
      acc3(nd.partial[e.i], cr.f);
      touch_partial(e.j);
      sub3(nd.partial[e.j], cr.f);
    }
  } else {
    for (std::int32_t k : nd.exclusions) {
      const ExclusionPair& e = tp.exclusions[k];
      ++nc.correction_pairs;
      const CorrectionResult cr =
          eval_correction_long(np_, e, pos_of(e.i), pos_of(e.j), false);
      touch_partial(e.i);
      acc3(nd.partial[e.i], cr.f);
      touch_partial(e.j);
      sub3(nd.partial[e.j], cr.f);
    }
  }
}

void WorkerRuntime::force_return(bool long_range) {
  SpanTimer t(span_acc_[kSpanForceReturn]);
  NodeState& nd = nd_;
  std::sort(nd.plist.begin(), nd.plist.end());
  std::vector<std::vector<wire::ForceRec>> out(w_.nnodes);
  for (std::int32_t id : nd.plist) {
    out[directory_[id]].push_back({id, nd.partial[id]});
    nd.partial[id] = {0, 0, 0};
    nd.ptouched[id] = 0;
  }
  nd.plist.clear();
  for (int dst = 0; dst < w_.nnodes; ++dst) {
    if (out[dst].empty()) continue;
    deliver(led_.force, kChForce, dst,
            wire::ForceBatch{long_range, std::move(out[dst])});
  }
  link_.flush();
  barrier();  // the vsite round reads the home accumulators
}

void WorkerRuntime::vsite_force_round(bool long_range) {
  const Topology& tp = top();
  if (tp.virtual_sites.empty()) return;
  NodeState& nd = nd_;
  std::vector<std::vector<wire::ForceRec>> out(w_.nnodes);
  auto share = [&](std::int32_t target, const Vec3l& f) {
    out[directory_[target]].push_back({target, f});
  };
  for (std::int32_t k : nd.vsites) {
    const VirtualSite& v = tp.virtual_sites[k];
    AtomState& site = nd.atoms.at(v.site);
    Vec3l& f = long_range ? site.f_long : site.f_short;
    const VsiteForceShare s = split_virtual_site_force(v, f);
    f = {0, 0, 0};
    share(v.h1, s.fh);
    share(v.h2, s.fh);
    share(v.o, s.fo);
  }
  for (int dst = 0; dst < w_.nnodes; ++dst) {
    if (out[dst].empty()) continue;
    deliver(led_.force, kChForce, dst,
            wire::ForceBatch{long_range, std::move(out[dst])});
  }
  link_.flush();
  barrier();
}

void WorkerRuntime::compute_short_forces() {
  for (auto& [id, st] : nd_.atoms) st.f_short = {0, 0, 0};
  position_multicast();
  pair_phase();
  bond_dispatch_and_terms(false);
  force_return(false);
  vsite_force_round(false);
}

// ---------------------------------------------------------------------------
// Long-range (GSE) choreography.
// ---------------------------------------------------------------------------

void WorkerRuntime::spread_and_halo() {
  SpanTimer t(span_acc_[kSpanSpread]);
  const Topology& tp = top();
  const int M = np_.gse_params.mesh;
  const Vec3i pg = w_.geom->config().node_grid;
  NodeState& nd = nd_;

  for (std::int32_t idx : nd.touched) {
    nd.spread_q[idx] = 0;
    nd.stouched[idx] = 0;
  }
  nd.touched.clear();
  for (auto& l : nd.halo_req) l.clear();
  std::fill(nd.mesh_q.begin(), nd.mesh_q.end(), 0);

  // Node-local spreading of this rank's home atoms.
  core::NodeCounters& nc = nc_;
  for (const auto& [sb, ids] : nd.bins) {
    for (std::int32_t a : ids) {
      const double qi = tp.charge[a];
      if (qi == 0.0) continue;
      const Vec3d r = lat().to_phys(nd.atoms.at(a).pos);
      spread_atom(np_, qi, r, nd.mscr, [&](std::size_t idx, std::int64_t dq) {
        ++nc.spread_ops;
        const auto i32 = static_cast<std::int32_t>(idx);
        if (!nd.stouched[idx]) {
          nd.stouched[idx] = 1;
          nd.touched.push_back(i32);
        }
        nd.spread_q[idx] = fixed::wrap_add(nd.spread_q[idx], dq);
      });
    }
  }

  // Charge halo: this rank's touched mesh points, grouped by owning rank,
  // are wrap-added into the owners' block accumulators. The owner records
  // which points each source touched -- the same lists route the
  // potential halo back.
  auto owner_of_mesh = [&](std::int32_t idx) {
    const int x = idx % M;
    const int y = (idx / M) % M;
    const int z = idx / (M * M);
    return (w_.mesh_owner[2][z] * pg.y + w_.mesh_owner[1][y]) * pg.x +
           w_.mesh_owner[0][x];
  };
  std::sort(nd.touched.begin(), nd.touched.end());
  std::map<int, std::vector<std::int32_t>> by_owner;
  for (std::int32_t idx : nd.touched)
    by_owner[owner_of_mesh(idx)].push_back(idx);
  for (auto& [o, list] : by_owner) {
    std::vector<std::int64_t> charge;
    charge.reserve(list.size());
    for (std::int32_t idx : list) charge.push_back(nd.spread_q[idx]);
    deliver(led_.mesh, kChMesh, o,
            wire::MeshCharge{std::move(list), std::move(charge)});
  }
  link_.flush();
  barrier();  // the owned-block accumulators are read below

  for (std::size_t l = 0; l < nd.mesh_q.size(); ++l) {
    nd.scratch_q[l] = static_cast<double>(nd.mesh_q[l]) / kMeshChargeScale;
    nd.fft_grid[l] = fft::cplx{nd.scratch_q[l], 0.0};
  }
}

void WorkerRuntime::distributed_fft_stage(int axis, bool inverse) {
  // One axis pass of the distributed 3D FFT (the fft::DistFftPlan
  // pattern): every mesh line along `axis` is assigned round-robin to one
  // rank of the torus row holding its segments; the owner gathers the
  // segments, runs the shared 1-D plan, and scatters them back. Under
  // SPMD the pass is two bulk exchanges -- a gather sweep over every line
  // (each rank ships its own segment to the line's owner), one barrier, a
  // transform-and-scatter sweep over the lines this rank owns, one
  // barrier -- with the same message multiset and bytes as a per-line
  // exchange. The gathered line is contiguous in ascending axis
  // coordinate, so the arithmetic is bitwise identical to fft::Fft3D's
  // strided transform.
  const int M = np_.gse_params.mesh;
  const Vec3i pg = w_.geom->config().node_grid;
  const int pa = axis == 0 ? pg.x : axis == 1 ? pg.y : pg.z;
  const int gx = rank_ % pg.x;
  const int gy = (rank_ / pg.x) % pg.y;
  const int gz = rank_ / (pg.x * pg.y);
  const int hc_self = axis == 0 ? gx : axis == 1 ? gy : gz;
  const int s0 = w_.mesh_start[axis][hc_self];
  const int s1 = w_.mesh_start[axis][hc_self + 1];

  auto row_ord_size = [&]() -> std::size_t {
    if (axis == 0) return static_cast<std::size_t>(pg.y) * pg.z;
    if (axis == 1) return static_cast<std::size_t>(pg.x) * pg.z;
    return static_cast<std::size_t>(pg.x) * pg.y;
  };
  // Line ownership is a deterministic function of (axis, a, b) every rank
  // recomputes identically: round-robin over the torus row via row_ord.
  auto owner_of = [&](std::vector<int>& row_ord, int a, int b) {
    // axis 0: (y, z) = (a, b); axis 1: (x, z) = (a, b);
    // axis 2: (x, y) = (a, b).
    if (axis == 0) {
      const int ly = w_.mesh_owner[1][a], lz = w_.mesh_owner[2][b];
      const int rid = lz * pg.y + ly;
      const int oc = row_ord[rid]++ % pa;
      return (lz * pg.y + ly) * pg.x + oc;
    }
    if (axis == 1) {
      const int lx = w_.mesh_owner[0][a], lz = w_.mesh_owner[2][b];
      const int rid = lz * pg.x + lx;
      const int oc = row_ord[rid]++ % pa;
      return (lz * pg.y + oc) * pg.x + lx;
    }
    const int lx = w_.mesh_owner[0][a], ly = w_.mesh_owner[1][b];
    const int rid = ly * pg.x + lx;
    const int oc = row_ord[rid]++ % pa;
    return (oc * pg.y + ly) * pg.x + lx;
  };
  auto point = [&](int k, int a, int b) -> std::size_t {
    int x, y, z;
    if (axis == 0) {
      x = k; y = a; z = b;
    } else if (axis == 1) {
      x = a; y = k; z = b;
    } else {
      x = a; y = b; z = k;
    }
    return (static_cast<std::size_t>(z - nd_.block_lo.z) * nd_.block_sz.y +
            (y - nd_.block_lo.y)) *
               nd_.block_sz.x +
           (x - nd_.block_lo.x);
  };

  // Gather sweep: ship this rank's segment of every line it holds to the
  // line's owner (the row_ord replay keeps ownership identical on every
  // rank whether or not a segment is sent).
  {
    std::vector<int> row_ord(row_ord_size(), 0);
    for (int a = 0; a < M; ++a) {
      for (int b = 0; b < M; ++b) {
        const int owner = owner_of(row_ord, a, b);
        bool holds;
        if (axis == 0)
          holds = w_.mesh_owner[1][a] == gy && w_.mesh_owner[2][b] == gz;
        else if (axis == 1)
          holds = w_.mesh_owner[0][a] == gx && w_.mesh_owner[2][b] == gz;
        else
          holds = w_.mesh_owner[0][a] == gx && w_.mesh_owner[1][b] == gy;
        if (!holds || s0 == s1) continue;
        std::vector<fft::cplx> seg(static_cast<std::size_t>(s1 - s0));
        for (int k = s0; k < s1; ++k)
          seg[static_cast<std::size_t>(k - s0)] = nd_.fft_grid[point(k, a, b)];
        deliver(led_.fft, kChFft, owner,
                wire::FftSegment{static_cast<std::uint8_t>(axis), 0, a, b,
                                 s0, std::move(seg)});
      }
    }
  }
  link_.flush();
  barrier();  // owners transform fully assembled lines

  // Transform-and-scatter sweep over the lines this rank owns.
  {
    std::vector<int> row_ord(row_ord_size(), 0);
    for (int a = 0; a < M; ++a) {
      for (int b = 0; b < M; ++b) {
        const int owner = owner_of(row_ord, a, b);
        if (owner != rank_) continue;
        auto& line = fft_lines_[{a, b}];
        if (line.empty()) line.assign(static_cast<std::size_t>(M), fft::cplx{});
        if (inverse)
          fft1_.inverse(line.data());
        else
          fft1_.forward(line.data());
        auto holder_index = [&](int hc) {
          if (axis == 0) return owner - owner % pg.x + hc;
          if (axis == 1) {
            const int lx = owner % pg.x;
            const int lz = owner / (pg.x * pg.y);
            return (lz * pg.y + hc) * pg.x + lx;
          }
          const int lx = owner % pg.x;
          const int ly = (owner / pg.x) % pg.y;
          return (hc * pg.y + ly) * pg.x + lx;
        };
        for (int hc = 0; hc < pa; ++hc) {
          const int t0 = w_.mesh_start[axis][hc];
          const int t1 = w_.mesh_start[axis][hc + 1];
          if (t0 == t1) continue;
          const int holder = holder_index(hc);
          std::vector<fft::cplx> seg(line.begin() + t0, line.begin() + t1);
          deliver(led_.fft, kChFft, holder,
                  wire::FftSegment{static_cast<std::uint8_t>(axis), 1, a, b,
                                   t0, std::move(seg)});
        }
      }
    }
  }
  link_.flush();
  barrier();  // the next stage reads every holder's settled slab
  fft_lines_.clear();
}

void WorkerRuntime::convolve_and_energy() {
  // Quantize the block-owned potentials, then gather (Q, phi) to rank 0
  // for the ordered reciprocal-energy reduction -- the sum must run in
  // global mesh-index order to match the engine's serial convolve bit for
  // bit.
  const int M = np_.gse_params.mesh;
  NodeState& nd = nd_;
  std::vector<std::uint64_t> gidx;
  std::vector<double> qv, phiv;
  gidx.reserve(nd.mesh_q.size());
  qv.reserve(nd.mesh_q.size());
  phiv.reserve(nd.mesh_q.size());
  std::size_t l = 0;
  for (int z = nd.block_lo.z; z < nd.block_lo.z + nd.block_sz.z; ++z)
    for (int y = nd.block_lo.y; y < nd.block_lo.y + nd.block_sz.y; ++y)
      for (int x = nd.block_lo.x; x < nd.block_lo.x + nd.block_sz.x;
           ++x, ++l) {
        const double phi = nd.fft_grid[l].real();
        nd.mesh_phi[l] = fixed::quantize(phi, kPhiScale);
        gidx.push_back((static_cast<std::uint64_t>(z) * M + y) * M + x);
        qv.push_back(nd.scratch_q[l]);
        phiv.push_back(phi);
      }
  if (!gidx.empty())
    deliver(led_.reduce, kChReduce, 0,
            wire::MeshEnergyBlock{std::move(gidx), std::move(qv),
                                  std::move(phiv)});
  link_.flush();
  barrier();  // the ordered reduction reads the gathered blocks
  if (rank_ == 0) {
    const std::size_t mesh_total = static_cast<std::size_t>(M) * M * M;
    double energy = 0.0;
    for (std::size_t i = 0; i < mesh_total; ++i)
      energy += master_phi_full_[i] * master_q_full_[i];
    const double h = np_.gse->mesh_spacing();
    e_recip_ = 0.5 * h * h * h * energy;
  }
}

void WorkerRuntime::phi_halo_back_and_interpolate() {
  SpanTimer t(span_acc_[kSpanInterpolate]);
  const Topology& tp = top();
  const int M = np_.gse_params.mesh;
  NodeState& nd = nd_;

  // Potential halo-back: this rank (as block owner) returns phi at
  // exactly the points each source spread to (recorded in halo_req
  // during the charge halo).
  for (int src = 0; src < w_.nnodes; ++src) {
    const auto& list = nd.halo_req[src];
    if (list.empty()) continue;
    std::vector<std::int64_t> phis;
    phis.reserve(list.size());
    for (std::int32_t idx : list) {
      const int x = idx % M;
      const int y = (idx / M) % M;
      const int z = idx / (M * M);
      const std::size_t l =
          (static_cast<std::size_t>(z - nd.block_lo.z) * nd.block_sz.y +
           (y - nd.block_lo.y)) *
              nd.block_sz.x +
          (x - nd.block_lo.x);
      phis.push_back(nd.mesh_phi[l]);
    }
    deliver(led_.mesh, kChMesh, src, wire::MeshPhi{list, std::move(phis)});
  }
  link_.flush();
  barrier();  // interpolation reads the node-local phi halos

  // Force interpolation against the node-local phi halo; each atom's
  // contribution lands directly on the home atom.
  core::NodeCounters& nc = nc_;
  for (const auto& [sb, ids] : nd.bins) {
    for (std::int32_t a : ids) {
      const double qi = tp.charge[a];
      if (qi == 0.0) continue;
      AtomState& st = nd.atoms.at(a);
      const Vec3l acc = interpolate_atom(
          np_, qi, lat().to_phys(st.pos), nd.mscr,
          [&](std::size_t idx) { return nd.halo_phi[idx]; }, &nc.interp_ops);
      acc3(st.f_long, acc);
    }
  }
}

void WorkerRuntime::compute_long_forces() {
  for (auto& [id, st] : nd_.atoms) st.f_long = {0, 0, 0};
  spread_and_halo();
  {
    SpanTimer t(span_acc_[kSpanFft]);
    distributed_fft_stage(0, false);
    distributed_fft_stage(1, false);
    distributed_fft_stage(2, false);
    const int M = np_.gse_params.mesh;
    const std::vector<double>& green = np_.gse->green();
    NodeState& nd = nd_;
    std::size_t l = 0;
    for (int z = nd.block_lo.z; z < nd.block_lo.z + nd.block_sz.z; ++z)
      for (int y = nd.block_lo.y; y < nd.block_lo.y + nd.block_sz.y; ++y)
        for (int x = nd.block_lo.x; x < nd.block_lo.x + nd.block_sz.x;
             ++x, ++l)
          nd.fft_grid[l] *=
              green[(static_cast<std::size_t>(z) * M + y) * M + x];
    distributed_fft_stage(2, true);
    distributed_fft_stage(1, true);
    distributed_fft_stage(0, true);
    convolve_and_energy();
  }
  phi_halo_back_and_interpolate();
  bond_dispatch_and_terms(true);
  force_return(true);
  vsite_force_round(true);
}

// ---------------------------------------------------------------------------
// Integration, constraints, thermostat.
// ---------------------------------------------------------------------------

void WorkerRuntime::kick_all(bool long_kick) {
  const auto& coef = long_kick ? w_.coefs->kick_long : w_.coefs->kick_short;
  for (auto& [id, st] : nd_.atoms)
    kick_atom(st.vel, long_kick ? st.f_long : st.f_short, coef[id]);
}

void WorkerRuntime::drift_and_constrain() {
  const bool constrained = !top().constraints.empty();
  NodeState& nd = nd_;
  // Pre-drift references for the co-resident constraint units.
  std::vector<std::int32_t> cunits;
  std::vector<std::vector<Vec3d>> refs;
  if (constrained) {
    for (std::int32_t u : nd.units) {
      if ((*w_.group_constraints)[u].empty()) continue;
      cunits.push_back(u);
      std::vector<Vec3d> ref((*w_.units)[u].size());
      for (std::size_t k = 0; k < (*w_.units)[u].size(); ++k)
        ref[k] = lat().to_phys(nd.atoms.at((*w_.units)[u][k]).pos);
      refs.push_back(std::move(ref));
    }
  }
  for (auto& [id, st] : nd.atoms)
    st.pos = drift_atom(st.pos, st.vel, w_.coefs->drift);
  for (std::size_t c = 0; c < cunits.size(); ++c) {
    const std::int32_t u = cunits[c];
    const auto& unit = (*w_.units)[u];
    const std::size_t nu = unit.size();
    std::vector<Vec3d> upos(nu);
    std::vector<Vec3i> ulat(nu);
    std::vector<Vec3l> uvel(nu);
    for (std::size_t k = 0; k < nu; ++k) {
      AtomState& st = nd.atoms.at(unit[k]);
      ulat[k] = st.pos;
      upos[k] = lat().to_phys(st.pos);
      uvel[k] = st.vel;
    }
    if (!shake_unit(np_, unit, (*w_.group_constraints)[u], w_.acfg->sim.dt,
                    refs[c], upos, ulat, uvel))
      throw std::runtime_error("WorkerRuntime: SHAKE failed to converge");
    for (std::size_t k = 0; k < nu; ++k) {
      AtomState& st = nd.atoms.at(unit[k]);
      st.pos = ulat[k];
      st.vel = uvel[k];
    }
  }
}

void WorkerRuntime::finish_drift() {
  const Topology& tp = top();
  if (tp.virtual_sites.empty()) return;
  NodeState& nd = nd_;
  // Parent position dispatch for off-node virtual sites.
  std::vector<std::vector<AtomRecord>> out(w_.nnodes);
  std::vector<int> dsts;
  for (const auto& [sb, ids] : nd.bins) {
    for (std::int32_t a : ids) {
      if ((*w_.vsite_feed)[a].empty()) continue;
      dsts.clear();
      for (std::int32_t site : (*w_.vsite_feed)[a]) {
        const int dst = directory_[site];
        if (dst == rank_) continue;
        if (std::find(dsts.begin(), dsts.end(), dst) == dsts.end())
          dsts.push_back(dst);
      }
      const Vec3i p = nd.atoms.at(a).pos;
      for (int dst : dsts) out[dst].push_back({a, p});
    }
  }
  for (int dst = 0; dst < w_.nnodes; ++dst) {
    if (out[dst].empty()) continue;
    deliver(led_.bond, kChBond, dst,
            wire::BondPositions{std::move(out[dst])});
  }
  link_.flush();
  barrier();  // site rebuild reads the parent positions
  for (std::int32_t k : nd.vsites) {
    const VirtualSite& v = tp.virtual_sites[k];
    AtomState& st = nd.atoms.at(v.site);
    st.pos = rebuild_virtual_site(np_, v, lat().to_phys(pos_of(v.o)),
                                  lat().to_phys(pos_of(v.h1)),
                                  lat().to_phys(pos_of(v.h2)));
    st.vel = {0, 0, 0};
  }
}

void WorkerRuntime::rattle_groups() {
  if (top().constraints.empty()) return;
  NodeState& nd = nd_;
  for (std::int32_t u : nd.units) {
    if ((*w_.group_constraints)[u].empty()) continue;
    const auto& unit = (*w_.units)[u];
    const std::size_t nu = unit.size();
    std::vector<Vec3d> upos(nu);
    std::vector<Vec3l> uvel(nu);
    for (std::size_t k = 0; k < nu; ++k) {
      const AtomState& st = nd.atoms.at(unit[k]);
      upos[k] = lat().to_phys(st.pos);
      uvel[k] = st.vel;
    }
    if (!rattle_unit(np_, unit, (*w_.group_constraints)[u], upos, uvel))
      throw std::runtime_error("WorkerRuntime: RATTLE failed to converge");
    for (std::size_t k = 0; k < nu; ++k)
      nd.atoms.at(unit[k]).vel = uvel[k];
  }
}

void WorkerRuntime::apply_thermostat() {
  // The one order-sensitive double reduction of the cycle: per-atom
  // kinetic terms are gathered to rank 0 and summed in global atom-index
  // order, exactly the engine's loop order.
  const Topology& tp = top();
  wire::KineticTerms out;
  out.id.reserve(nd_.atoms.size());
  out.term.reserve(nd_.atoms.size());
  for (const auto& [id, st] : nd_.atoms) {
    out.id.push_back(id);
    out.term.push_back(kinetic_term(tp.mass[id], st.vel));
  }
  if (!out.id.empty()) deliver(led_.reduce, kChReduce, 0, std::move(out));
  link_.flush();
  barrier();  // rank 0 sums in global atom-index order
  if (rank_ == 0) {
    double mv2 = 0.0;
    for (std::int32_t i = 0; i < tp.natoms; ++i) mv2 += red_kin_[i];
    const int k = std::max(1, w_.acfg->sim.long_range_every);
    const double lambda = thermostat_lambda(tp, mv2, k * w_.acfg->sim.dt,
                                            w_.acfg->sim.target_temperature,
                                            w_.acfg->sim.berendsen_tau);
    for (int n = 0; n < w_.nnodes; ++n)
      deliver(led_.reduce, kChReduce, n, wire::ScaleVelocities{lambda});
    link_.flush();
  }
  barrier();
}

// ---------------------------------------------------------------------------
// Migration by message.
// ---------------------------------------------------------------------------

void WorkerRuntime::migrate_by_message() {
  NodeState& nd = nd_;
  std::vector<std::vector<std::int32_t>> move_units(w_.nnodes);
  std::int64_t moved_atoms = 0;
  for (std::int32_t u : nd.units) {
    const std::int32_t head = (*w_.units)[u][0];
    const Vec3i sb =
        w_.geom->subbox_of(lat().to_phys(nd.atoms.at(head).pos));
    unit_sb_[u] = w_.geom->index_of(sb);
    const int dst = w_.geom->node_index_of(sb);
    if (dst != rank_) move_units[dst].push_back(u);
  }
  wire::DirectoryUpdate moved;
  for (int dst = 0; dst < w_.nnodes; ++dst) {
    if (move_units[dst].empty()) continue;
    // The sender evicts the unit and updates its directory replica
    // immediately; the receiver's copy (and everyone else's directory
    // entries) land via the reliable channel.
    wire::MigrationBatch payload;
    for (std::int32_t u : move_units[dst]) {
      for (std::int32_t a : (*w_.units)[u]) {
        payload.id.push_back(a);
        payload.atoms.push_back(nd.atoms.at(a));
        nd.atoms.erase(a);
        directory_[a] = dst;
        moved.id.push_back(a);
        moved.home.push_back(dst);
      }
    }
    moved_atoms += static_cast<std::int64_t>(payload.id.size());
    deliver(led_.migration, kChMigration, dst, std::move(payload));
  }
  // Directory announcement: every other rank learns the new homes.
  if (moved_atoms > 0)
    for (int o = 0; o < w_.nnodes; ++o)
      if (o != rank_) deliver(led_.migration, kChMigration, o, moved);
  link_.flush();
  barrier();  // unit reassignment reads the migrated atom states

  // Rescan ownership from the settled directory. Subbox assignments are
  // recomputed for every unit now homed here -- including arrivals, whose
  // unit_sb entry this rank never saw -- from the head atom's position,
  // which is deterministic and identical to what the sender computed.
  nd.units.clear();
  for (std::size_t u = 0; u < w_.units->size(); ++u)
    if (directory_[(*w_.units)[u][0]] == rank_)
      nd.units.push_back(static_cast<std::int32_t>(u));
  for (std::int32_t u : nd.units) {
    const std::int32_t head = (*w_.units)[u][0];
    const Vec3i sb =
        w_.geom->subbox_of(lat().to_phys(nd.atoms.at(head).pos));
    unit_sb_[u] = w_.geom->index_of(sb);
  }
  rebuild_node_bins_and_terms(top(), *w_.units, unit_sb_, directory_, rank_,
                              nd_);
}

}  // namespace anton::parallel
