// Fault injection and reliable end-to-end frame delivery for the
// virtual-node runtime.
//
// Anton's millisecond runs only exist because the machine survives faults:
// the network layer provides reliable end-to-end delivery over lossy links
// (the Anton 3 network paper devotes a whole layer to it), and the
// determinism guarantees of Section 2.5 make checkpoint/restart recovery
// *bitwise verifiable*. This module supplies both halves for the
// VirtualMachine:
//
//  * FaultInjector -- a seeded, deterministic adversary that perturbs
//    individual frame transmissions (drop / duplicate / reorder / delay)
//    and schedules whole-node crashes at MTS-cycle boundaries. Same seed,
//    same fault schedule, every run.
//
//  * ReliableLink -- the SPMD rank-side half: sender-side injection and
//    bounded retransmit over genuine one-way frame sends, receiver-side
//    sequence check / duplicate suppression / reorder buffering, and real
//    acknowledgment frames riding the return path through the hub. Every
//    rank owns one link; the injector is seeded per rank so the fault
//    schedule stays deterministic across backends.
//
//  * ReliableTransport -- the original single-process delivery engine,
//    kept as the loopback unit-test harness for the protocol (sequence
//    numbers, reorder buffers, retransmit budget) independent of any wire.
//
// A "channel" is one (src node, dst node, phase) stream; each carries its
// own monotonically increasing sequence number, mirroring the per-channel
// ordering guarantee of Anton's communication subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/wire.hpp"
#include "util/rng.hpp"

namespace anton::parallel {

/// Configuration for one seeded fault schedule.
struct FaultConfig {
  std::uint64_t seed = 1;
  /// Per-transmission perturbation probabilities in [0, 1). Evaluated in
  /// this order; at most one fault fires per transmission attempt.
  double drop = 0.0;       // transmission lost; sender must retransmit
  double duplicate = 0.0;  // delivered twice; receiver must suppress one
  double reorder = 0.0;    // held back behind the next transmission
  double delay = 0.0;      // held until the end-of-phase retry sweep
  /// Retransmission attempts per message before the transport declares the
  /// link dead and throws (end-to-end delivery is *reliable*, not
  /// best-effort: a healthy schedule always completes under this bound).
  int max_attempts = 64;
  /// Whole-node crash schedule: node `crash_node` crashes at the boundary
  /// of each listed absolute MTS cycle (before the cycle executes). The
  /// runtime recovers by coordinated rollback to its last checkpoint.
  std::vector<std::int64_t> crash_cycles;
  int crash_node = 0;
  /// Distributed checkpoint cadence in MTS cycles (per-node state capture
  /// at cycle boundaries; the rollback target after a crash).
  int checkpoint_cycles = 1;
};

/// Counters describing what the adversary did and what the reliable layer
/// paid to hide it. Published by the VM as vm.fault.* / vm.retry.*.
struct FaultCounters {
  // Injected faults (vm.fault.*).
  std::int64_t drops = 0;
  std::int64_t duplicates = 0;
  std::int64_t reorders = 0;
  std::int64_t delays = 0;
  std::int64_t crashes = 0;
  // Recovery work (vm.retry.*).
  std::int64_t retransmits = 0;        // extra transmissions sent
  std::int64_t retransmit_bytes = 0;   // frame bytes retransmitted
  std::int64_t dups_suppressed = 0;    // deliveries discarded by seq check
  std::int64_t out_of_order_held = 0;  // deliveries parked in reorder bufs
  std::int64_t rollbacks = 0;          // coordinated checkpoint restores
  std::int64_t replayed_cycles = 0;    // cycles re-executed after rollback

  FaultCounters& operator+=(const FaultCounters& o);
};

/// What the wire does to one transmission attempt.
enum class WireFault : std::uint8_t {
  kNone,       // delivered as sent
  kDrop,       // lost
  kDuplicate,  // delivered, then delivered again
  kReorder,    // swapped behind the next transmission on the wire
  kDelay,      // parked until the end-of-phase sweep
};

/// Seeded deterministic fault source. All randomness the fault layer ever
/// consumes flows through this one generator, in transmission order, so a
/// (seed, trajectory) pair fully determines the fault schedule.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  const FaultConfig& config() const { return cfg_; }

  /// Decides the fate of one transmission attempt.
  WireFault next_fault() {
    const bool any = cfg_.drop > 0.0 || cfg_.duplicate > 0.0 ||
                     cfg_.reorder > 0.0 || cfg_.delay > 0.0;
    if (!any) return WireFault::kNone;
    const double u = rng_.uniform();
    if (u < cfg_.drop) return WireFault::kDrop;
    if (u < cfg_.drop + cfg_.duplicate) return WireFault::kDuplicate;
    if (u < cfg_.drop + cfg_.duplicate + cfg_.reorder)
      return WireFault::kReorder;
    if (u < cfg_.drop + cfg_.duplicate + cfg_.reorder + cfg_.delay)
      return WireFault::kDelay;
    return WireFault::kNone;
  }

  /// True if `node` is scheduled to crash at the boundary of absolute
  /// cycle `cycle` (each scheduled crash fires once).
  bool crash_due(int node, std::int64_t cycle) {
    if (node != cfg_.crash_node) return false;
    for (std::int64_t& c : cfg_.crash_cycles) {
      if (c == cycle) {
        c = -1;  // consume
        return true;
      }
    }
    return false;
  }

 private:
  FaultConfig cfg_;
  Xoshiro256 rng_;
};

/// Reliable in-order exactly-once frame delivery through an injector-
/// perturbed loopback. This is the protocol reference implementation the
/// unit tests exercise directly; the SPMD runtime itself uses
/// ReliableLink below, which splits the same protocol across real ranks.
///
/// Usage per communication phase:
///   transport.send(src, dst, phase, payload);   // any number of times
///   transport.flush();                          // barrier: all delivered
///
/// send() serializes the message into a frame, transmits eagerly (an
/// unperturbed frame reaches the sink immediately, in sequence order) and
/// keeps the encoded bytes for retransmission. flush() runs the bounded
/// retransmit sweep until every channel has delivered its full prefix,
/// then asserts quiescence.
///
/// Fast path: with verify off, the frame the sender already holds is
/// dispatched without re-decoding the encoded bytes -- encode, CRC and
/// byte accounting still happen, so ledger bytes stay measured. With
/// verify on the sink receives the *decoded* frame, proving the codec
/// round-trip on every single delivery.
class ReliableTransport {
 public:
  /// Receives each delivered frame exactly once, in per-channel order.
  using Sink = std::function<void(const wire::Frame&)>;

  /// Channel key: (src << 20 | dst << 8 | phase) packed by the caller via
  /// channel(). 4096 nodes and 256 phases are plenty for this host.
  static std::uint64_t channel(int src, int dst, int phase) {
    return (static_cast<std::uint64_t>(src) << 20) |
           (static_cast<std::uint64_t>(dst) << 8) |
           static_cast<std::uint64_t>(phase);
  }

  void set_injector(FaultInjector* inj) { injector_ = inj; }
  FaultInjector* injector() const { return injector_; }

  /// Forces a decode of the encoded bytes on every delivery
  /// (conformance mode).
  void set_verify(bool v) { verify_ = v; }
  bool verify() const { return verify_; }

  void set_sink(Sink s) { sink_ = std::move(s); }

  FaultCounters& counters() { return counters_; }
  const FaultCounters& counters() const { return counters_; }

  /// Serializes and sends one message on the (src, dst, phase) channel.
  /// Returns the encoded frame size in bytes -- the measured wire bytes
  /// the caller accounts. Delivery (possibly deferred) is exactly-once
  /// and per-channel FIFO into the sink.
  std::int64_t send(int src, int dst, int phase, wire::Payload payload);

  /// Delivers everything still in flight: retransmits lost/parked frames
  /// (bounded by max_attempts) until every channel's receive window is
  /// closed. Throws if a message exceeds its retry budget.
  void flush();

  /// Discards all in-flight and sequencing state (coordinated rollback:
  /// both ends of every channel restart from sequence zero).
  void reset_channels();

  /// True when nothing is buffered anywhere (post-flush invariant).
  bool quiescent() const;

 private:
  using Bytes = std::shared_ptr<const std::vector<std::uint8_t>>;

  struct Channel {
    std::uint64_t next_seq = 0;    // sender side
    std::uint64_t expect_seq = 0;  // receiver side (cumulative ack)
    /// Sent but not yet acknowledged encoded frames, in sequence order.
    std::vector<std::pair<std::uint64_t, Bytes>> unacked;
    /// Received out of order, parked until the gap fills.
    std::map<std::uint64_t, wire::Frame> reorder_buf;
  };

  /// One transmission attempt of (ch, seq). `inhand` is the decoded frame
  /// the sender still holds (fast-path dispatch); null on retransmits.
  /// Returns true if the wire delivered it (possibly twice); false if it
  /// was lost or parked.
  bool transmit(std::uint64_t ch, std::uint64_t seq, const Bytes& bytes,
                wire::Frame* inhand);
  /// Produces the frame to dispatch (decode of the encoded bytes, or
  /// `inhand` on the fast path).
  wire::Frame through_wire(const Bytes& bytes, wire::Frame* inhand);
  /// Hands one arriving frame to the receiver (seq check + reorder buf).
  void receive(Channel& c, std::uint64_t seq, wire::Frame&& frame);

  std::map<std::uint64_t, Channel> channels_;
  /// Transmissions the injector parked (kDelay) or displaced (kReorder):
  /// the encoded bytes are in flight, delivered (through the wire) by the
  /// flush sweep.
  struct Parked {
    std::uint64_t ch;
    std::uint64_t seq;
    Bytes bytes;
  };
  std::vector<Parked> parked_;
  FaultInjector* injector_ = nullptr;
  bool verify_ = false;
  Sink sink_;
  FaultCounters counters_;
};

/// Rank-side reliable delivery for the SPMD runtime: the sender half of
/// the protocol runs where the data originates, the receiver half where
/// it lands, and acknowledgments travel as real kAck frames on the return
/// path through the hub.
///
/// Injection is sender-side only: the injector decides the fate of a
/// transmission *before* the frame is handed to the transport, so any
/// frame physically sent WILL arrive (the transports themselves are
/// lossless). That keeps retransmit decisions local to the sender -- the
/// retransmit set is exactly the frames whose every attempt so far was
/// dropped -- while acks serve to bound the unacked-frame memory. There
/// is deliberately no "all acks arrived" assertion: a barrier release can
/// legitimately overtake the last ack.
///
/// Usage inside a rank's phase:
///   link.send(dst, phase, payload);  // any number of times
///   link.flush();                    // parked copies out + retransmits
///   // ... then the rank enters its barrier wait, during which arriving
///   // data frames go through link.on_data() and acks through on_ack().
class ReliableLink {
 public:
  /// Hands one encoded frame to the transport (worker endpoint send).
  using RawSend = std::function<void(const std::vector<std::uint8_t>&)>;
  /// Receives each delivered data frame exactly once, in channel order.
  using Apply = std::function<void(const wire::Frame&)>;

  ReliableLink(int self, RawSend raw) : self_(self), raw_(std::move(raw)) {}

  /// Arms sender-side injection. `cfg.seed` should already be the
  /// per-rank derived seed (see derive_seed).
  void arm(const FaultConfig& cfg) {
    injector_ = std::make_unique<FaultInjector>(cfg);
  }
  void disarm() { injector_.reset(); }
  FaultInjector* injector() const { return injector_.get(); }

  /// Decorrelates per-rank fault schedules from one shared config seed.
  static std::uint64_t derive_seed(std::uint64_t seed, int rank) {
    return seed ^ (0x9e3779b97f4a7c15ull *
                   (static_cast<std::uint64_t>(rank) + 1));
  }

  FaultCounters& counters() { return counters_; }
  const FaultCounters& counters() const { return counters_; }

  /// Serializes and sends one data message on the (self, dst, phase)
  /// channel. Returns the encoded frame size in bytes (the ledger bytes
  /// the caller accounts).
  std::int64_t send(int dst, int phase, wire::Payload payload);

  /// End-of-phase sweep: parked (reordered/delayed) copies finally reach
  /// the wire in held order, then dropped frames are retransmitted --
  /// each attempt faces the injector again -- bounded by max_attempts.
  /// Throws when a message exceeds its retry budget.
  void flush();

  /// Receiver path for one arriving data frame: acks it, then applies it
  /// exactly once in per-channel order (dup suppression + reorder
  /// buffering).
  void on_data(const wire::Frame& frame, const Apply& apply);

  /// Sender path for one arriving ack from rank `from`: prunes the
  /// acknowledged frame from the unacked list.
  void on_ack(int from, const wire::Ack& ack);

  /// Coordinated rollback: both halves of every channel restart from
  /// sequence zero.
  void reset_channels();

 private:
  using Bytes = std::shared_ptr<const std::vector<std::uint8_t>>;
  struct SendChannel {
    std::uint64_t next_seq = 0;
    /// Sent but not yet acknowledged (memory bound only; never drives
    /// retransmission).
    std::vector<std::pair<std::uint64_t, Bytes>> unacked;
  };
  struct RecvChannel {
    std::uint64_t expect_seq = 0;
    std::map<std::uint64_t, wire::Frame> reorder_buf;
  };
  struct Held {
    std::uint64_t ch;
    std::uint64_t seq;
    Bytes bytes;
  };

  /// One transmission attempt; true when the frame physically went out.
  bool attempt(std::uint64_t ch, std::uint64_t seq, const Bytes& bytes);

  int self_;
  RawSend raw_;
  std::unique_ptr<FaultInjector> injector_;
  std::map<std::uint64_t, SendChannel> out_;
  std::map<std::uint64_t, RecvChannel> in_;
  std::vector<Held> parked_;   // reordered/delayed, in held order
  std::vector<Held> dropped_;  // lost; the flush sweep retransmits
  std::uint64_t ack_seq_ = 0;
  FaultCounters counters_;
};

}  // namespace anton::parallel
