// Fault injection and reliable end-to-end frame delivery for the
// virtual-node runtime.
//
// Anton's millisecond runs only exist because the machine survives faults:
// the network layer provides reliable end-to-end delivery over lossy links
// (the Anton 3 network paper devotes a whole layer to it), and the
// determinism guarantees of Section 2.5 make checkpoint/restart recovery
// *bitwise verifiable*. This module supplies both halves for the
// VirtualMachine:
//
//  * FaultInjector -- a seeded, deterministic adversary that perturbs
//    individual frame transmissions (drop / duplicate / reorder / delay)
//    and schedules whole-node crashes at MTS-cycle boundaries. Same seed,
//    same fault schedule, every run.
//
//  * ReliableTransport -- per-channel sequence numbers, receiver-side
//    reorder buffers, duplicate suppression and bounded retransmit of
//    serialized wire frames (parallel/wire.hpp) over a byte-level
//    ByteTransport (parallel/transport.hpp). Every message is encoded into
//    a frame at send time; the encoded bytes are what gets retransmitted,
//    what the injector perturbs, and what crosses the wire. The sink above
//    it observes exactly-once, in-order typed frames regardless of what
//    the injector does, so the recovered trajectory is bitwise identical
//    to the fault-free run. With no injector attached the transport is a
//    pass-through: zero retries, zero retransmit bytes, and delivery order
//    identical to the direct-dispatch choreography (bitwise-neutral).
//
// A "channel" is one (src node, dst node, phase) stream; each carries its
// own monotonically increasing sequence number, mirroring the per-channel
// ordering guarantee of Anton's communication subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/wire.hpp"
#include "util/rng.hpp"

namespace anton::parallel {

class ByteTransport;

/// Configuration for one seeded fault schedule.
struct FaultConfig {
  std::uint64_t seed = 1;
  /// Per-transmission perturbation probabilities in [0, 1). Evaluated in
  /// this order; at most one fault fires per transmission attempt.
  double drop = 0.0;       // transmission lost; sender must retransmit
  double duplicate = 0.0;  // delivered twice; receiver must suppress one
  double reorder = 0.0;    // held back behind the next transmission
  double delay = 0.0;      // held until the end-of-phase retry sweep
  /// Retransmission attempts per message before the transport declares the
  /// link dead and throws (end-to-end delivery is *reliable*, not
  /// best-effort: a healthy schedule always completes under this bound).
  int max_attempts = 64;
  /// Whole-node crash schedule: node `crash_node` crashes at the boundary
  /// of each listed absolute MTS cycle (before the cycle executes). The
  /// runtime recovers by coordinated rollback to its last checkpoint.
  std::vector<std::int64_t> crash_cycles;
  int crash_node = 0;
  /// Distributed checkpoint cadence in MTS cycles (per-node state capture
  /// at cycle boundaries; the rollback target after a crash).
  int checkpoint_cycles = 1;
};

/// Counters describing what the adversary did and what the reliable layer
/// paid to hide it. Published by the VM as vm.fault.* / vm.retry.*.
struct FaultCounters {
  // Injected faults (vm.fault.*).
  std::int64_t drops = 0;
  std::int64_t duplicates = 0;
  std::int64_t reorders = 0;
  std::int64_t delays = 0;
  std::int64_t crashes = 0;
  // Recovery work (vm.retry.*).
  std::int64_t retransmits = 0;        // extra transmissions sent
  std::int64_t retransmit_bytes = 0;   // frame bytes retransmitted
  std::int64_t dups_suppressed = 0;    // deliveries discarded by seq check
  std::int64_t out_of_order_held = 0;  // deliveries parked in reorder bufs
  std::int64_t rollbacks = 0;          // coordinated checkpoint restores
  std::int64_t replayed_cycles = 0;    // cycles re-executed after rollback

  FaultCounters& operator+=(const FaultCounters& o);
};

/// What the wire does to one transmission attempt.
enum class WireFault : std::uint8_t {
  kNone,       // delivered as sent
  kDrop,       // lost
  kDuplicate,  // delivered, then delivered again
  kReorder,    // swapped behind the next transmission on the wire
  kDelay,      // parked until the end-of-phase sweep
};

/// Seeded deterministic fault source. All randomness the fault layer ever
/// consumes flows through this one generator, in transmission order, so a
/// (seed, trajectory) pair fully determines the fault schedule.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  const FaultConfig& config() const { return cfg_; }

  /// Decides the fate of one transmission attempt.
  WireFault next_fault() {
    const bool any = cfg_.drop > 0.0 || cfg_.duplicate > 0.0 ||
                     cfg_.reorder > 0.0 || cfg_.delay > 0.0;
    if (!any) return WireFault::kNone;
    const double u = rng_.uniform();
    if (u < cfg_.drop) return WireFault::kDrop;
    if (u < cfg_.drop + cfg_.duplicate) return WireFault::kDuplicate;
    if (u < cfg_.drop + cfg_.duplicate + cfg_.reorder)
      return WireFault::kReorder;
    if (u < cfg_.drop + cfg_.duplicate + cfg_.reorder + cfg_.delay)
      return WireFault::kDelay;
    return WireFault::kNone;
  }

  /// True if `node` is scheduled to crash at the boundary of absolute
  /// cycle `cycle` (each scheduled crash fires once).
  bool crash_due(int node, std::int64_t cycle) {
    if (node != cfg_.crash_node) return false;
    for (std::int64_t& c : cfg_.crash_cycles) {
      if (c == cycle) {
        c = -1;  // consume
        return true;
      }
    }
    return false;
  }

 private:
  FaultConfig cfg_;
  Xoshiro256 rng_;
};

/// Reliable in-order exactly-once frame delivery over an injector-
/// perturbed byte wire. Every phase of the VM choreography (position
/// records, force partials, mesh halos, FFT segments, migration units,
/// reductions) rides this one layer as typed wire::Payload messages.
///
/// Usage per communication phase:
///   transport.send(src, dst, phase, payload);   // any number of times
///   transport.flush();                          // barrier: all delivered
///
/// send() serializes the message into a frame, transmits eagerly (an
/// unperturbed frame round-trips the wire and reaches the sink
/// immediately, in sequence order, so with no injector the delivery order
/// is exactly the direct-dispatch order of the original choreography) and
/// keeps the encoded bytes for retransmission. flush() runs the bounded
/// retransmit sweep until every channel has delivered its full prefix,
/// then asserts quiescence.
///
/// Fast path: on a local (in-process) wire with verify off, the frame the
/// sender already holds is dispatched without re-decoding the echoed
/// bytes -- encode, CRC and byte accounting still happen, so ledger bytes
/// stay measured. With verify on (or any out-of-process wire) the sink
/// receives the *decoded echo*, proving the codec round-trip on every
/// single delivery.
class ReliableTransport {
 public:
  /// Receives each delivered frame exactly once, in per-channel order.
  using Sink = std::function<void(const wire::Frame&)>;

  /// Channel key: (src << 20 | dst << 8 | phase) packed by the caller via
  /// channel(). 4096 nodes and 256 phases are plenty for this host.
  static std::uint64_t channel(int src, int dst, int phase) {
    return (static_cast<std::uint64_t>(src) << 20) |
           (static_cast<std::uint64_t>(dst) << 8) |
           static_cast<std::uint64_t>(phase);
  }

  void set_injector(FaultInjector* inj) { injector_ = inj; }
  FaultInjector* injector() const { return injector_; }

  /// Attaches the byte-level wire frames traverse (nullptr: loop frames
  /// back without a wire, still encoded/decoded -- the unit-test mode).
  void set_wire(ByteTransport* w) { wire_ = w; }
  ByteTransport* wire() const { return wire_; }

  /// Forces a decode of the echoed bytes on every delivery even when the
  /// wire is local (conformance mode).
  void set_verify(bool v) { verify_ = v; }
  bool verify() const { return verify_; }

  void set_sink(Sink s) { sink_ = std::move(s); }

  FaultCounters& counters() { return counters_; }
  const FaultCounters& counters() const { return counters_; }

  /// Serializes and sends one message on the (src, dst, phase) channel.
  /// Returns the encoded frame size in bytes -- the measured wire bytes
  /// the caller accounts. Delivery (possibly deferred) is exactly-once
  /// and per-channel FIFO into the sink.
  std::int64_t send(int src, int dst, int phase, wire::Payload payload);

  /// Delivers everything still in flight: retransmits lost/parked frames
  /// (bounded by max_attempts) until every channel's receive window is
  /// closed. Throws if a message exceeds its retry budget.
  void flush();

  /// Discards all in-flight and sequencing state (coordinated rollback:
  /// both ends of every channel restart from sequence zero).
  void reset_channels();

  /// True when nothing is buffered anywhere (post-flush invariant).
  bool quiescent() const;

 private:
  using Bytes = std::shared_ptr<const std::vector<std::uint8_t>>;

  struct Channel {
    std::uint64_t next_seq = 0;    // sender side
    std::uint64_t expect_seq = 0;  // receiver side (cumulative ack)
    /// Sent but not yet acknowledged encoded frames, in sequence order.
    std::vector<std::pair<std::uint64_t, Bytes>> unacked;
    /// Received out of order, parked until the gap fills.
    std::map<std::uint64_t, wire::Frame> reorder_buf;
  };

  static int dst_of(std::uint64_t ch) {
    return static_cast<int>((ch >> 8) & 0xFFFu);
  }

  /// One transmission attempt of (ch, seq). `inhand` is the decoded frame
  /// the sender still holds (fast-path dispatch); null on retransmits.
  /// Returns true if the wire delivered it (possibly twice); false if it
  /// was lost or parked.
  bool transmit(std::uint64_t ch, std::uint64_t seq, const Bytes& bytes,
                wire::Frame* inhand);
  /// Sends the bytes through the wire and produces the frame to dispatch
  /// (the decoded echo, or `inhand` on the local fast path).
  wire::Frame through_wire(const Bytes& bytes, int dst, wire::Frame* inhand);
  /// Hands one arriving frame to the receiver (seq check + reorder buf).
  void receive(Channel& c, std::uint64_t seq, wire::Frame&& frame);

  std::map<std::uint64_t, Channel> channels_;
  /// Transmissions the injector parked (kDelay) or displaced (kReorder):
  /// the encoded bytes are in flight, delivered (through the wire) by the
  /// flush sweep.
  struct Parked {
    std::uint64_t ch;
    std::uint64_t seq;
    Bytes bytes;
  };
  std::vector<Parked> parked_;
  FaultInjector* injector_ = nullptr;
  ByteTransport* wire_ = nullptr;
  bool verify_ = false;
  Sink sink_;
  FaultCounters counters_;
};

}  // namespace anton::parallel
