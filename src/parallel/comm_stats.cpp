#include "parallel/comm_stats.hpp"

namespace anton::parallel {

PhaseComm position_import(std::int64_t import_atoms, int imported_subboxes,
                          const CommConfig& cfg) {
  PhaseComm c;
  c.bytes = static_cast<std::int64_t>(import_atoms) * cfg.bytes_per_position;
  // One multicast stream per imported subbox, chunked.
  const std::int64_t atoms_per_box =
      imported_subboxes > 0
          ? static_cast<std::int64_t>(import_atoms) / imported_subboxes + 1
          : 0;
  c.messages = static_cast<std::int64_t>(imported_subboxes) *
               (atoms_per_box / cfg.atoms_per_message + 1);
  c.max_hops = 2;  // import regions span at most a couple of node shells
  return c;
}

PhaseComm force_export(std::int64_t import_atoms, int imported_subboxes,
                       const CommConfig& cfg) {
  PhaseComm c = position_import(import_atoms, imported_subboxes, cfg);
  c.bytes = static_cast<std::int64_t>(import_atoms) * cfg.bytes_per_force;
  return c;
}

PhaseComm mesh_exchange(std::int64_t mesh_points_touched,
                        const CommConfig& cfg) {
  PhaseComm c;
  c.bytes = static_cast<std::int64_t>(mesh_points_touched) *
            cfg.bytes_per_mesh_value;
  c.messages = static_cast<std::int64_t>(mesh_points_touched) / 64 + 1;
  c.max_hops = 2;
  return c;
}

}  // namespace anton::parallel
