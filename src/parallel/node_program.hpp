// The node program: the per-phase kernels one virtual node executes
// during an MD time step, extracted from AntonEngine so that the
// global-array engine and the message-passing VirtualMachine drive the
// SAME arithmetic.
//
// Every kernel here is a pure function of node-local inputs (lattice
// positions, fixed-point velocities/forces, static topology), and every
// force/energy output is quantized onto the fixed-point grids BEFORE the
// caller accumulates it with wrapping adds. That combination is the whole
// bitwise-parity story: the engine accumulates into per-lane shards over
// global arrays, the VM accumulates into per-node mailboxes over message
// payloads, and because wrapping addition is associative and commutative
// the two runtimes produce identical sums from the identical contribution
// multiset. Tests assert the equality step for step on the golden
// fixtures.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "bonded/bonded.hpp"
#include "ewald/gse.hpp"
#include "ff/topology.hpp"
#include "fixed/fixed.hpp"
#include "fixed/lattice.hpp"
#include "geom/box.hpp"
#include "geom/vec3.hpp"
#include "htis/pair_kernels.hpp"
#include "pairlist/exclusion_table.hpp"

namespace anton::parallel {

// Fixed-point scales for the mesh quantities (shared by the engine's
// global mesh and the VM's node-local slabs). Charge densities on the
// mesh are O(0.1) e/A^3; potentials are O(100) kcal/mol/e. Both grids
// leave orders of magnitude of headroom in int64.
inline constexpr double kMeshChargeScale = 1099511627776.0;  // 2^40
inline constexpr double kPhiScale = 4294967296.0;            // 2^32

/// Read-only context a node program runs against: the static replicated
/// data (topology, tables, geometry constants) every node holds a copy of.
/// Positions/velocities/forces are NOT here -- they are the dynamic state
/// the caller owns (global arrays or per-node memories).
struct NodeProgram {
  const Topology* top = nullptr;
  const PeriodicBox* box = nullptr;
  const fixed::PositionLattice* lat = nullptr;
  const htis::PairKernels* kernels = nullptr;
  const pairlist::ExclusionTable* excl = nullptr;
  /// Mesh geometry + k-space kernel; null when the caller only runs
  /// range-limited phases (the legacy VM evaluate() path).
  const ewald::Gse* gse = nullptr;
  ewald::GseParams gse_params;
  std::uint64_t r2_limit_lattice = 0;
  double lat2_to_phys2 = 0.0;  // lattice r^2 -> A^2
  bool have_molecules = false;
};

// ---------------------------------------------------------------------------
// Range-limited pair phase (match unit -> PPIP datapath).
// ---------------------------------------------------------------------------

/// Where a candidate pair exited the datapath; callers attribute their
/// workload counters from this (pairs_considered is counted by the caller,
/// ppip_queue when status != kFailedMatch, interactions when kComputed).
enum class PairStatus { kFailedMatch, kBeyondCutoff, kExcluded, kComputed };

struct PairResult {
  PairStatus status = PairStatus::kFailedMatch;
  std::int32_t lo = 0, hi = 0;  // canonical order: lo < hi
  /// Quantized force on `lo` (the caller wrap-subtracts it from `hi`).
  Vec3l f{0, 0, 0};
  std::int64_t e_lj_q = 0;    // with_energy only
  std::int64_t e_coul_q = 0;  // with_energy only
  std::int64_t virial_q = 0;  // with_energy only
};

/// One candidate pair through the match-unit/PPIP datapath. The pair is
/// reoriented to canonical (lower global index first) order internally, so
/// the quantized force is identical no matter which node or decomposition
/// evaluates the pair.
PairResult eval_pair(const NodeProgram& np, std::int32_t i0, std::int32_t j0,
                     const Vec3i& p0, const Vec3i& p1, bool with_energy);

// ---------------------------------------------------------------------------
// SoA pair-block path: the same datapath over whole bins at once.
// ---------------------------------------------------------------------------

/// Structure-of-arrays view of one bin: atom ids, the three lattice
/// coordinates, and the static per-pair parameters (charge, LJ type) in
/// contiguous lanes. The match unit and exact-cutoff filter then run as
/// flat branch-free loops over these lanes; ids/charges/types are packed
/// once per migration, positions are refreshed in place each pass.
struct BinSoA {
  std::vector<std::int32_t> id;
  std::vector<std::int32_t> x, y, z;
  std::vector<double> charge;
  std::vector<std::int32_t> type;

  std::size_t size() const { return id.size(); }
  bool empty() const { return id.empty(); }
  void clear();
  void reserve(std::size_t n);
  /// Appends atom `a` at lattice position `p` (charge/type from `top`).
  void push_atom(const Topology& top, std::int32_t a, const Vec3i& p);
  /// Overwrites slot `s`'s position lanes (id/charge/type unchanged).
  void set_pos(std::size_t s, const Vec3i& p) {
    x[s] = p.x;
    y[s] = p.y;
    z[s] = p.z;
  }
};

/// Workload counter deltas of one pair block, in the exact semantics of
/// the scalar loop: `considered` counts every tower x plate candidate,
/// `queued` those passing the match unit (including beyond-cutoff and
/// excluded -- they enter the PPIP queue), `computed` the pairs that
/// produced a force.
struct PairBlockCounters {
  std::int64_t considered = 0;
  std::int64_t queued = 0;
  std::int64_t computed = 0;
};

/// One computed pair: quantized force on `lo` (canonical lo < hi; the
/// caller wrap-adds to lo's accumulator and wrap-subtracts from hi's).
struct PairHit {
  std::int32_t lo = 0, hi = 0;
  Vec3l f{0, 0, 0};
};

/// Reusable lane buffers for eval_pair_block (one per engine lane / per
/// worker; never shared across threads).
struct PairBlockScratch {
  std::vector<PairHit> hits;
  // Per-plate-row filter lanes.
  std::vector<unsigned char> match;
  std::vector<std::int32_t> dx, dy, dz;
  // Compacted candidates of the whole block.
  std::vector<std::int32_t> c_lo, c_hi, c_dx, c_dy, c_dz;
  std::vector<double> c_r2, c_qq, c_a, c_b, c_coef;
};

/// Evaluates every tower[a] x plate[b] pair of a bin pair (b starting at
/// a+1 when same_bin) through the match unit -> PPIP datapath, batched:
/// a vectorized filter over the SoA lanes, scalar compaction of the
/// survivors, then one batched table sweep. Forces, counter deltas and
/// hit order are bitwise identical to the scalar eval_pair loop with
/// with_energy = false (the energy path stays scalar). Appends nothing
/// but scr.hits; counters are overwritten.
void eval_pair_block(const NodeProgram& np, const BinSoA& tower,
                     const BinSoA& plate, bool same_bin, PairBlockScratch& scr,
                     PairBlockCounters& counters);

// ---------------------------------------------------------------------------
// Correction pipeline (excluded/scaled pairs).
// ---------------------------------------------------------------------------

struct CorrectionResult {
  /// False for short-range corrections on fully excluded pairs (both
  /// scales zero): nothing to compute, no force.
  bool computed = false;
  Vec3l f{0, 0, 0};  // quantized force on e.i (negate for e.j)
  std::int64_t energy_q = 0;
  std::int64_t virial_q = 0;
};

/// Scaled 1-4 direct-space interaction for one exclusion pair.
CorrectionResult eval_correction_short(const NodeProgram& np,
                                       const ExclusionPair& e, const Vec3i& pi,
                                       const Vec3i& pj, bool with_energy);

/// Reciprocal-space subtraction (-erf term) for one exclusion pair.
CorrectionResult eval_correction_long(const NodeProgram& np,
                                      const ExclusionPair& e, const Vec3i& pi,
                                      const Vec3i& pj, bool with_energy);

// ---------------------------------------------------------------------------
// Bonded terms (bond destinations / geometry cores).
// ---------------------------------------------------------------------------

/// A bonded term's forces quantized onto the fixed force grid, plus the
/// quantized energy/virial contributions.
struct QuantizedTerm {
  int n = 0;
  std::int32_t atom[4] = {0, 0, 0, 0};
  Vec3l f[4] = {};
  std::int64_t energy_q = 0;  // with_energy only
  std::int64_t virial_q = 0;  // with_energy only
};

/// Quantizes an evaluated term. `term_pos[k]` must be the physical
/// position of `t.atom[k]` (lat->to_phys of its lattice position); it is
/// only read for the virial, whose reference is the term's first atom.
QuantizedTerm quantize_term(const NodeProgram& np, const bonded::TermForces& t,
                            const Vec3d* term_pos, bool with_energy);

// ---------------------------------------------------------------------------
// GSE mesh phases (HTIS atom-mesh interactions).
// ---------------------------------------------------------------------------

/// Reusable mesh-batch buffers (one per engine lane / per worker): the
/// gathered mesh points of one atom and the batched Gaussian values.
struct MeshScratch {
  ewald::MeshPointBatch pts;
  std::vector<double> g;
};

/// Spreads one atom's Gaussian charge onto nearby mesh points.
/// `sink(mesh_index, dq)` receives each quantized contribution; the caller
/// wrap-adds it into whatever storage it owns (lane shard or node slab).
/// The mesh points are gathered in for_each_mesh_point order and the
/// Gaussian runs as one batched table sweep; each emitted dq is bitwise
/// what the per-point scalar path produced.
template <typename Sink>
void spread_atom(const NodeProgram& np, double qi, const Vec3d& r,
                 MeshScratch& ms, Sink&& sink) {
  np.gse->gather_mesh_points(r, ms.pts);
  const std::size_t n = ms.pts.size();
  ms.g.resize(n);
  np.kernels->eval_spread_n(n, ms.pts.r2.data(), ms.g.data());
  for (std::size_t i = 0; i < n; ++i)
    sink(ms.pts.idx[i], fixed::quantize(qi * ms.g[i], kMeshChargeScale));
}

/// Interpolates the mesh force on one atom. `phi_q(mesh_index)` returns
/// the quantized potential at a mesh point (the caller resolves it from
/// its global array or from its halo mailbox); the whole contribution is
/// accumulated locally and returned as one Vec3l. `ops`, if non-null, is
/// incremented once per (atom, mesh point) interaction. Batched like
/// spread_atom; bitwise identical to the per-point path (the wrap-adds
/// commute, and the gather preserves the visit order anyway).
template <typename PhiQ>
Vec3l interpolate_atom(const NodeProgram& np, double qi, const Vec3d& r,
                       MeshScratch& ms, PhiQ&& phi_q,
                       std::int64_t* ops = nullptr) {
  const double h3 = std::pow(np.gse->mesh_spacing(), 3);
  const double inv_s2 =
      1.0 / (np.gse_params.sigma_s * np.gse_params.sigma_s);
  const double pref = qi * h3 * inv_s2;
  np.gse->gather_mesh_points(r, ms.pts);
  const std::size_t n = ms.pts.size();
  ms.g.resize(n);
  np.kernels->eval_interp_n(n, ms.pts.r2.data(), ms.g.data());
  if (ops) *ops += static_cast<std::int64_t>(n);
  Vec3l acc{0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const double phi =
        static_cast<double>(phi_q(ms.pts.idx[i])) / kPhiScale;
    const double c = pref * phi * ms.g[i];
    acc.x = fixed::wrap_add(
        acc.x, fixed::quantize(c * ms.pts.dx[i], fixed::kForceScale));
    acc.y = fixed::wrap_add(
        acc.y, fixed::quantize(c * ms.pts.dy[i], fixed::kForceScale));
    acc.z = fixed::wrap_add(
        acc.z, fixed::quantize(c * ms.pts.dz[i], fixed::kForceScale));
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Fixed-point integration (kick / drift), per atom.
// ---------------------------------------------------------------------------

/// Per-atom integration coefficients. dv[counts] = F[counts] * kick coef;
/// dx[counts] = v[counts] * drift coef.
struct IntegrationCoefs {
  std::vector<double> kick_short;  // zero for massless virtual sites
  std::vector<double> kick_long;
  Vec3d drift{0, 0, 0};  // lattice counts per velocity count, per axis
};

IntegrationCoefs make_integration_coefs(const Topology& top, double dt,
                                        int long_range_every,
                                        const fixed::PositionLattice& lat);

inline void kick_atom(Vec3l& v, const Vec3l& f, double c) {
  v.x = fixed::wrap_add(v.x, std::llrint(static_cast<double>(f.x) * c));
  v.y = fixed::wrap_add(v.y, std::llrint(static_cast<double>(f.y) * c));
  v.z = fixed::wrap_add(v.z, std::llrint(static_cast<double>(f.z) * c));
}

inline Vec3i drift_atom(const Vec3i& p, const Vec3l& v, const Vec3d& dc) {
  const std::int32_t dx = static_cast<std::int32_t>(
      static_cast<std::uint64_t>(
          std::llrint(static_cast<double>(v.x) * dc.x)));
  const std::int32_t dy = static_cast<std::int32_t>(
      static_cast<std::uint64_t>(
          std::llrint(static_cast<double>(v.y) * dc.y)));
  const std::int32_t dz = static_cast<std::int32_t>(
      static_cast<std::uint64_t>(
          std::llrint(static_cast<double>(v.z) * dc.z)));
  return {fixed::wrap_add32(p.x, dx), fixed::wrap_add32(p.y, dy),
          fixed::wrap_add32(p.z, dz)};
}

// ---------------------------------------------------------------------------
// Constraint groups (co-resident units; Section 3.2.4).
// ---------------------------------------------------------------------------

/// SHAKE one co-resident unit after its drift: constrains the post-drift
/// positions against the pre-drift reference, applies the implied velocity
/// correction dv = (constrained - unconstrained)/dt, and re-quantizes the
/// unit onto the lattice. All spans are unit-local arrays parallel to
/// `atoms` (the constraint bonds carry global ids and are remapped
/// internally), so a node can solve a unit it hosts without any global
/// state. Returns false if the solver failed to converge.
bool shake_unit(const NodeProgram& np, std::span<const std::int32_t> atoms,
                std::span<const ConstraintBond> bonds, double dt,
                std::span<const Vec3d> ref, std::span<Vec3d> pos_phys,
                std::span<Vec3i> pos, std::span<Vec3l> vel);

/// RATTLE one unit's velocities against its current positions;
/// re-quantizes every unit atom's velocity. Returns false on
/// non-convergence.
bool rattle_unit(const NodeProgram& np, std::span<const std::int32_t> atoms,
                 std::span<const ConstraintBond> bonds,
                 std::span<const Vec3d> pos_phys, std::span<Vec3l> vel);

// ---------------------------------------------------------------------------
// Virtual sites (massless interaction sites; 4-site water).
// ---------------------------------------------------------------------------

/// r_site = r_o + a (r_h1 + r_h2 - 2 r_o), assembled from minimum-image
/// displacements so molecules straddling the boundary stay intact. A pure
/// function of the parent positions: bitwise decomposition-independent.
inline Vec3i rebuild_virtual_site(const NodeProgram& np, const VirtualSite& v,
                                  const Vec3d& o, const Vec3d& h1,
                                  const Vec3d& h2) {
  const Vec3d d1 = np.box->min_image(h1, o);
  const Vec3d d2 = np.box->min_image(h2, o);
  const Vec3d m = o + (d1 + d2) * v.a;
  return np.lat->to_lattice(m);
}

/// F_o += (1-2a) F_m, F_h += a F_m; the oxygen share is computed as the
/// exact remainder so the redistribution conserves the total force
/// bit-for-bit. `fh` applies to BOTH hydrogens.
struct VsiteForceShare {
  Vec3l fh{0, 0, 0};
  Vec3l fo{0, 0, 0};
};

inline VsiteForceShare split_virtual_site_force(const VirtualSite& v,
                                                const Vec3l& fm) {
  VsiteForceShare s;
  s.fh = {fixed::quantize(static_cast<double>(fm.x) * v.a, 1.0),
          fixed::quantize(static_cast<double>(fm.y) * v.a, 1.0),
          fixed::quantize(static_cast<double>(fm.z) * v.a, 1.0)};
  s.fo = {fixed::wrap_sub(fixed::wrap_sub(fm.x, s.fh.x), s.fh.x),
          fixed::wrap_sub(fixed::wrap_sub(fm.y, s.fh.y), s.fh.y),
          fixed::wrap_sub(fixed::wrap_sub(fm.z, s.fh.z), s.fh.z)};
  return s;
}

// ---------------------------------------------------------------------------
// Thermostat (the one serial double reduction of the cycle).
// ---------------------------------------------------------------------------

/// One atom's m|v|^2 term. The SUM of these is order-sensitive double
/// arithmetic, so both runtimes must add the terms in canonical (global
/// atom index) order -- the engine's loop order, which the VM reproduces
/// with an ordered gather.
inline double kinetic_term(double mass, const Vec3l& v) {
  const Vec3d vp{fixed::vel_to_phys(v.x), fixed::vel_to_phys(v.y),
                 fixed::vel_to_phys(v.z)};
  return mass * vp.norm2();
}

/// Berendsen scale factor from the canonical-order sum of kinetic_term.
double thermostat_lambda(const Topology& top, double mv2_sum, double dt_long,
                         double target_temperature, double tau);

inline void scale_velocity(Vec3l& v, double lambda) {
  v.x = std::llrint(static_cast<double>(v.x) * lambda);
  v.y = std::llrint(static_cast<double>(v.y) * lambda);
  v.z = std::llrint(static_cast<double>(v.z) * lambda);
}

// ---------------------------------------------------------------------------
// Shared structure helpers.
// ---------------------------------------------------------------------------

/// Migration units: constraint groups move as one; all other atoms are
/// singleton units. Unit order follows the lowest atom index so the
/// decomposition is deterministic; `constraints[u]` are the bonds solved
/// on unit u's home node.
struct MigrationUnits {
  std::vector<std::vector<std::int32_t>> atoms;
  std::vector<std::vector<ConstraintBond>> constraints;
};

MigrationUnits build_migration_units(const Topology& top);

/// FNV-1a over the fixed-point state in global atom order: the one hash
/// both runtimes report, equal iff the trajectories are bitwise equal.
std::uint64_t state_hash(std::span<const Vec3i> pos,
                         std::span<const Vec3l> vel);

}  // namespace anton::parallel
