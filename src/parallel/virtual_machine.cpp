#include "parallel/virtual_machine.hpp"

#include <algorithm>
#include <map>

#include "fixed/fixed.hpp"
#include "htis/match_unit.hpp"

namespace anton::parallel {

VirtualMachine::VirtualMachine(const System& sys, const VmConfig& cfg)
    : sys_(sys), cfg_(cfg), lat_(sys.box), excl_(sys.top) {
  nt::NtConfig nc;
  nc.node_grid = cfg.node_grid;
  nc.subbox_div = cfg.subbox_div;
  nc.cutoff = cfg.cutoff;
  nc.margin = cfg.margin;
  nc.box = sys.box;
  geom_ = std::make_unique<nt::NtGeometry>(nc);

  htis::PairKernelParams tp;
  tp.cutoff = cfg.cutoff;
  tp.beta = cfg.beta;
  tp.mantissa_bits = cfg.table_mantissa_bits;
  kernels_ = htis::PairKernels(tp, sys.top.lj_types);

  const double cut_lat = cfg.cutoff / lat_.lsb().x;
  r2_limit_lattice_ = static_cast<std::uint64_t>(cut_lat * cut_lat);
  lat2_to_phys2_ = lat_.lsb().x * lat_.lsb().x;
}

int VirtualMachine::node_count() const {
  return cfg_.node_grid.x * cfg_.node_grid.y * cfg_.node_grid.z;
}

std::vector<Vec3l> VirtualMachine::evaluate(
    const std::vector<Vec3i>& positions, VmStats* stats) {
  const Topology& top = sys_.top;
  const int nnodes = node_count();
  const std::int64_t nsub = geom_->subbox_count();

  // --- ownership: bin atoms into subboxes by position ---
  std::vector<std::vector<std::int32_t>> bins(nsub);
  for (std::int32_t a = 0; a < top.natoms; ++a) {
    const Vec3d r = lat_.to_phys(positions[a]);
    bins[geom_->index_of(geom_->subbox_of(r))].push_back(a);
  }

  // --- per-node private memories ---
  // Each node stores the atom records it owns or received, keyed by the
  // subbox index the data belongs to. No node ever reads another node's
  // memory; data moves only through the mailboxes below.
  struct NodeMemory {
    std::map<std::int32_t, std::vector<AtomRecord>> subbox_atoms;
    std::vector<ForceRecord> partial_forces;  // for atoms owned elsewhere
    std::vector<Vec3l> home_accumulators;     // indexed by local slot
    std::vector<std::int32_t> home_ids;
  };
  std::vector<NodeMemory> nodes(nnodes);
  std::vector<std::int64_t> sent_msgs(nnodes, 0);

  // Home data placement (a node owns its own subboxes' atoms).
  for (std::int32_t sb = 0; sb < nsub; ++sb) {
    const int owner = geom_->node_index_of(geom_->coords_of(sb));
    auto& mem = nodes[owner];
    auto& recs = mem.subbox_atoms[sb];
    for (std::int32_t a : bins[sb]) recs.push_back({a, positions[a]});
  }

  // --- phase 1: position multicast ---
  // consumers[sb] = sorted set of nodes whose tower/plate imports sb.
  std::vector<std::vector<int>> consumers(nsub);
  {
    std::vector<std::vector<char>> seen(nsub,
                                        std::vector<char>(nnodes, 0));
    for (std::int32_t hidx = 0; hidx < nsub; ++hidx) {
      const Vec3i h = geom_->coords_of(hidx);
      const int node = geom_->node_index_of(h);
      auto mark = [&](const Vec3i& c) {
        const std::int32_t idx = geom_->index_of(geom_->wrap_coords(c));
        if (!seen[idx][node]) {
          seen[idx][node] = 1;
          consumers[idx].push_back(node);
        }
      };
      for (std::int32_t dz : geom_->tower_dz()) mark({h.x, h.y, h.z + dz});
      for (const Vec3i& p : geom_->plate_half())
        mark({h.x + p.x, h.y + p.y, h.z});
    }
  }
  // Owner-node grouping: the multicast and compute phases below run node
  // by node so a tracer sees one span per virtual node. Within a node the
  // subbox order is preserved, and all accumulation is per-node state
  // combined with wrapping adds, so the regrouping is unobservable in the
  // returned forces.
  std::vector<std::vector<std::int32_t>> node_subboxes(nnodes);
  for (std::int32_t sb = 0; sb < nsub; ++sb)
    node_subboxes[geom_->node_index_of(geom_->coords_of(sb))].push_back(sb);

  VmStats st;
  {
    obs::Tracer::Span phase_span(tracer_, "vm.position_multicast");
    for (int owner = 0; owner < nnodes; ++owner) {
      obs::Tracer::Span node_span(tracer_, "vm.node.multicast", owner + 1);
      for (std::int32_t sb : node_subboxes[owner]) {
        const auto& payload = nodes[owner].subbox_atoms[sb];
        for (int dst : consumers[sb]) {
          if (dst == owner) continue;
          // One multicast message per (subbox, consumer): id + 3x32-bit
          // pos.
          nodes[dst].subbox_atoms[sb] = payload;  // message delivery
          ++st.position_messages;
          ++sent_msgs[owner];
          st.position_bytes +=
              16 * static_cast<std::int64_t>(payload.size()) + 8;
        }
      }
    }
  }

  // --- phase 2: local interactions ---
  // Partial force accumulators live per node, keyed by atom id; purely
  // local state.
  const bool have_mol = !top.molecule.empty();
  std::vector<std::map<std::int32_t, Vec3l>> partials(nnodes);
  {
  obs::Tracer::Span compute_span(tracer_, "vm.compute");
  for (int node = 0; node < nnodes; ++node) {
  obs::Tracer::Span node_span(tracer_, "vm.node.compute", node + 1);
  NodeMemory& mem = nodes[node];
  auto& acc = partials[node];
  for (std::int32_t hidx : node_subboxes[node]) {
    const Vec3i h = geom_->coords_of(hidx);
    for (std::int32_t dz : geom_->tower_dz()) {
      const std::int32_t tidx =
          geom_->index_of(geom_->wrap_coords({h.x, h.y, h.z + dz}));
      const auto t_it = mem.subbox_atoms.find(tidx);
      if (t_it == mem.subbox_atoms.end() || t_it->second.empty()) continue;
      const auto& tower = t_it->second;
      for (const Vec3i& poff : geom_->plate_half()) {
        if (!geom_->owns_pair(h, dz, poff)) continue;
        const std::int32_t pidx = geom_->index_of(
            geom_->wrap_coords({h.x + poff.x, h.y + poff.y, h.z}));
        const auto p_it = mem.subbox_atoms.find(pidx);
        if (p_it == mem.subbox_atoms.end() || p_it->second.empty()) continue;
        const auto& plate = p_it->second;
        const bool same = tidx == pidx;
        for (std::size_t a = 0; a < tower.size(); ++a) {
          for (std::size_t b = same ? a + 1 : 0; b < plate.size(); ++b) {
            ++st.pairs_considered;
            const AtomRecord& ra =
                tower[a].id < plate[b].id ? tower[a] : plate[b];
            const AtomRecord& rb =
                tower[a].id < plate[b].id ? plate[b] : tower[a];
            const Vec3i d = fixed::PositionLattice::delta(ra.pos, rb.pos);
            if (!htis::match_plausible(d, r2_limit_lattice_)) continue;
            const std::uint64_t r2lat = htis::exact_r2_lattice(d);
            if (r2lat > r2_limit_lattice_) continue;
            if (have_mol && top.molecule[ra.id] == top.molecule[rb.id] &&
                excl_.excluded(ra.id, rb.id))
              continue;
            ++st.interactions;
            const double r2 = static_cast<double>(r2lat) * lat2_to_phys2_;
            const double qq = top.charge[ra.id] * top.charge[rb.id];
            const auto pfe = kernels_.eval_nonbonded(
                r2, qq, top.type[ra.id], top.type[rb.id], false);
            const Vec3d drp = lat_.delta_to_phys(d);
            const Vec3l fq{
                fixed::quantize(pfe.force_coef * drp.x, fixed::kForceScale),
                fixed::quantize(pfe.force_coef * drp.y, fixed::kForceScale),
                fixed::quantize(pfe.force_coef * drp.z, fixed::kForceScale)};
            Vec3l& fa = acc[ra.id];
            fa.x = fixed::wrap_add(fa.x, fq.x);
            fa.y = fixed::wrap_add(fa.y, fq.y);
            fa.z = fixed::wrap_add(fa.z, fq.z);
            Vec3l& fb = acc[rb.id];
            fb.x = fixed::wrap_sub(fb.x, fq.x);
            fb.y = fixed::wrap_sub(fb.y, fq.y);
            fb.z = fixed::wrap_sub(fb.z, fq.z);
          }
        }
      }
    }
  }
  }
  }

  // --- phase 3 + 4: force return and reduction ---
  // Home node of each atom (by position binning above).
  std::vector<int> home_node(top.natoms);
  for (std::int32_t sb = 0; sb < nsub; ++sb) {
    const int owner = geom_->node_index_of(geom_->coords_of(sb));
    for (std::int32_t a : bins[sb]) home_node[a] = owner;
  }
  std::vector<Vec3l> total(top.natoms, {0, 0, 0});
  obs::Tracer::Span return_span(tracer_, "vm.force_return");
  for (int n = 0; n < nnodes; ++n) {
    obs::Tracer::Span node_span(tracer_, "vm.node.force_return", n + 1);
    // Group this node's non-home contributions by destination: one force
    // message per (node, destination) pair with all its records.
    std::map<int, std::int64_t> batch_count;
    for (const auto& [id, f] : partials[n]) {
      const int dst = home_node[id];
      if (dst != n) {
        ++batch_count[dst];
      }
      // Delivery: the destination's accumulator combines with wrap adds.
      total[id].x = fixed::wrap_add(total[id].x, f.x);
      total[id].y = fixed::wrap_add(total[id].y, f.y);
      total[id].z = fixed::wrap_add(total[id].z, f.z);
    }
    for (const auto& [dst, count] : batch_count) {
      ++st.force_messages;
      ++sent_msgs[n];
      st.force_bytes += 28 * count + 8;  // id + 3x64-bit force
    }
  }

  for (int n = 0; n < nnodes; ++n)
    st.max_messages_per_node = std::max(st.max_messages_per_node,
                                        sent_msgs[n]);
  if (stats) *stats = st;
  return total;
}

}  // namespace anton::parallel
