#include "parallel/virtual_machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "fixed/fixed.hpp"

namespace anton::parallel {

namespace {

inline void acc3(Vec3l& a, const Vec3l& d) {
  a.x = fixed::wrap_add(a.x, d.x);
  a.y = fixed::wrap_add(a.y, d.y);
  a.z = fixed::wrap_add(a.z, d.z);
}

inline void sub3(Vec3l& a, const Vec3l& d) {
  a.x = fixed::wrap_sub(a.x, d.x);
  a.y = fixed::wrap_sub(a.y, d.y);
  a.z = fixed::wrap_sub(a.z, d.z);
}

// Byte model for the legacy evaluate() path only (no wire underneath):
// an 8-byte header plus fixed-size records. Dynamics mode accounts
// *measured* frame bytes from the serialized wire format instead.
constexpr std::int64_t kMsgHeader = 8;
constexpr std::int64_t kPosRecord = 16;
constexpr std::int64_t kForceRecord = 28;

/// Internal control-flow signal: a rank reported a typed WorkerError
/// (e.g. a corrupted frame). Thrown out of collect_reports and answered
/// by run_cycles with a coordinated rollback.
struct WorkerErrorSignal {
  int rank = -1;
  std::uint8_t code = 0;
};

/// Destination field of a serialized frame (u16 little-endian at byte
/// offset 10). A buffer too short to hold a header is classified as
/// coordinator-bound so the decode path raises the typed WireError.
std::uint16_t peek_dst(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < wire::kHeaderBytes)
    return static_cast<std::uint16_t>(wire::kCoordinator);
  return static_cast<std::uint16_t>(bytes[10] |
                                    (static_cast<unsigned>(bytes[11]) << 8));
}

wire::WireError::Kind validate_kind(int rc) {
  switch (rc) {
    case 1:
      return wire::WireError::Kind::kTruncated;
    case 2:
      return wire::WireError::Kind::kBadMagic;
    case 3:
      return wire::WireError::Kind::kBadVersion;
    case 4:
      return wire::WireError::Kind::kBadLength;
    default:
      return wire::WireError::Kind::kBadCrc;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction.
// ---------------------------------------------------------------------------

VirtualMachine::VirtualMachine(const System& sys, const VmConfig& cfg)
    : sys_(sys), cfg_(cfg), lat_(sys_.box), excl_(sys_.top) {
  build_geometry(cfg.node_grid, cfg.subbox_div, cfg.cutoff, cfg.margin);

  htis::PairKernelParams tp;
  tp.cutoff = cfg.cutoff;
  tp.beta = cfg.beta;
  tp.mantissa_bits = cfg.table_mantissa_bits;
  kernels_ = htis::PairKernels(tp, sys_.top.lj_types);

  init_pair_tables(cfg.cutoff, cfg.beta, 0.0, 0.0, cfg.table_mantissa_bits);
}

VirtualMachine::VirtualMachine(System sys, const core::AntonConfig& cfg)
    : VirtualMachine(std::move(sys), cfg, TransportOptions{}) {}

VirtualMachine::VirtualMachine(System sys, const core::AntonConfig& cfg,
                               const TransportOptions& topts)
    : sys_(std::move(sys)), acfg_(cfg), dynamic_(true), lat_(sys_.box),
      excl_(sys_.top), topts_(topts) {
  sys_.top.validate();
  if (!sys_.box.is_cubic())
    throw std::invalid_argument("VirtualMachine: requires a cubic box");

  const Topology& top = sys_.top;
  const std::int32_t n = top.natoms;
  gse_params_ = acfg_.sim.resolved_gse();

  // Quantize the initial conditions onto the fixed-point grids (identical
  // to the engine's quantization).
  std::vector<Vec3i> gpos(n);
  std::vector<Vec3l> gvel(n);
  for (std::int32_t i = 0; i < n; ++i) {
    gpos[i] = lat_.to_lattice(sys_.positions[i]);
    gvel[i] = {fixed::quantize(sys_.velocities[i].x, fixed::kVelScale),
               fixed::quantize(sys_.velocities[i].y, fixed::kVelScale),
               fixed::quantize(sys_.velocities[i].z, fixed::kVelScale)};
  }

  coefs_ = parallel::make_integration_coefs(top, acfg_.sim.dt,
                                            acfg_.sim.long_range_every, lat_);

  htis::PairKernelParams tp;
  tp.cutoff = acfg_.sim.cutoff;
  tp.beta = gse_params_.beta;
  tp.sigma_s = gse_params_.sigma_s;
  tp.rs = gse_params_.rs;
  tp.mantissa_bits = acfg_.table_mantissa_bits;
  kernels_ = htis::PairKernels(tp, top.lj_types);

  gse_ = std::make_unique<ewald::Gse>(sys_.box, gse_params_);

  init_pair_tables(acfg_.sim.cutoff, gse_params_.beta, gse_params_.sigma_s,
                   gse_params_.rs, acfg_.table_mantissa_bits);
  np_.gse = gse_.get();
  np_.gse_params = gse_params_;

  build_geometry(acfg_.node_grid, acfg_.subbox_div, acfg_.sim.cutoff,
                 acfg_.import_margin);

  parallel::MigrationUnits mu = parallel::build_migration_units(top);
  units_ = std::move(mu.atoms);
  group_constraints_ = std::move(mu.constraints);

  build_consumers();
  build_feeds();

  const int nnodes = node_count();
  nodes_.assign(nnodes, NodeState{});
  for (NodeState& nd : nodes_) {
    nd.rpos.assign(n, Vec3i{0, 0, 0});
    nd.partial.assign(n, Vec3l{0, 0, 0});
    nd.ptouched.assign(n, 0);
  }
  build_mesh_blocks();
  workload_.nodes.assign(nnodes, {});

  // Virtual sites are rebuilt globally once before distribution, so the
  // initial binning sees the same site positions the engine's does.
  for (const VirtualSite& v : top.virtual_sites) {
    gpos[v.site] = parallel::rebuild_virtual_site(
        np_, v, lat_.to_phys(gpos[v.o]), lat_.to_phys(gpos[v.h1]),
        lat_.to_phys(gpos[v.h2]));
    gvel[v.site] = {0, 0, 0};
  }

  initial_distribution(gpos, gvel);
  rebuild_bins_and_terms();

  // Stand up the byte wire and launch one WorkerRuntime per rank seeded
  // from the freshly distributed state; the ranks own the live state and
  // the physics from here on. The initial force evaluation runs in the
  // workers, exactly like a cycle's force phases.
  spawn_ranks();
}

VirtualMachine::~VirtualMachine() {
  if (!wire_) return;
  try {
    wire::Control c;
    c.op = wire::CtrlOp::kShutdown;
    for (int n = 0; n < node_count(); ++n) send_ctl_to(n, wire::Payload{c});
    wire_->join_workers();
  } catch (...) {
    // Teardown is best-effort; the transport destructor reaps whatever
    // is left by force.
  }
}

void VirtualMachine::spawn_ranks() {
  const int nnodes = node_count();
  world_.np = &np_;
  world_.geom = geom_.get();
  world_.coefs = &coefs_;
  world_.acfg = &acfg_;
  world_.units = &units_;
  world_.group_constraints = &group_constraints_;
  world_.consumers = &consumers_;
  world_.node_subboxes = &node_subboxes_;
  world_.dest_feed = &dest_feed_;
  world_.vsite_feed = &vsite_feed_;
  world_.mesh_owner = mesh_owner_;
  world_.mesh_start = mesh_start_;
  world_.nnodes = nnodes;

  wire_ = make_transport(nnodes, topts_);
  wire_->spawn_workers([this](int rank, WorkerEndpoint& ep) {
    WorkerRuntime wr(world_, rank, ep, nodes_[rank], directory_, unit_sb_,
                     steps_);
    wr.run();
  });

  wire::Control c;
  c.op = wire::CtrlOp::kInitForces;
  broadcast_ctl(wire::Payload{c});
  collect_reports(nnodes);
}

void VirtualMachine::init_pair_tables(double cutoff, double beta,
                                      double sigma_s, double rs,
                                      int mantissa_bits) {
  (void)beta;
  (void)sigma_s;
  (void)rs;
  (void)mantissa_bits;
  const double cut_lat = cutoff / lat_.lsb().x;
  r2_limit_lattice_ = static_cast<std::uint64_t>(cut_lat * cut_lat);
  lat2_to_phys2_ = lat_.lsb().x * lat_.lsb().x;

  np_.top = &sys_.top;
  np_.box = &sys_.box;
  np_.lat = &lat_;
  np_.kernels = &kernels_;
  np_.excl = &excl_;
  np_.r2_limit_lattice = r2_limit_lattice_;
  np_.lat2_to_phys2 = lat2_to_phys2_;
  np_.have_molecules = !sys_.top.molecule.empty();
}

void VirtualMachine::build_geometry(const Vec3i& node_grid,
                                    const Vec3i& subbox_div, double cutoff,
                                    double margin) {
  nt::NtConfig nc;
  nc.node_grid = node_grid;
  nc.subbox_div = subbox_div;
  nc.cutoff = cutoff;
  nc.margin = margin;
  nc.box = sys_.box;
  geom_ = std::make_unique<nt::NtGeometry>(nc);
}

int VirtualMachine::node_count() const {
  const Vec3i& g = geom_->config().node_grid;
  return g.x * g.y * g.z;
}

void VirtualMachine::build_consumers() {
  const int nnodes = node_count();
  const std::int64_t nsub = geom_->subbox_count();
  consumers_.assign(nsub, {});
  node_subboxes_.assign(nnodes, {});
  node_import_subboxes_.assign(nnodes, {});
  std::vector<std::vector<char>> seen(nnodes);
  for (auto& s : seen) s.assign(nsub, 0);
  for (std::int32_t hidx = 0; hidx < nsub; ++hidx) {
    const Vec3i h = geom_->coords_of(hidx);
    const int node = geom_->node_index_of(h);
    node_subboxes_[node].push_back(hidx);
    auto mark = [&](const Vec3i& c) {
      const std::int32_t idx = geom_->index_of(geom_->wrap_coords(c));
      if (seen[node][idx]) return;
      seen[node][idx] = 1;
      consumers_[idx].push_back(node);
      if (geom_->node_index_of(geom_->coords_of(idx)) != node)
        node_import_subboxes_[node].push_back(idx);
    };
    for (std::int32_t dz : geom_->tower_dz()) mark({h.x, h.y, h.z + dz});
    for (const Vec3i& p : geom_->plate_half())
      mark({h.x + p.x, h.y + p.y, h.z});
  }
}

void VirtualMachine::build_feeds() {
  const Topology& top = sys_.top;
  dest_feed_.assign(top.natoms, {});
  vsite_feed_.assign(top.natoms, {});
  auto feed = [&](std::int32_t from, std::int32_t dest) {
    if (from != dest) dest_feed_[from].push_back(dest);
  };
  for (const BondTerm& b : top.bonds) feed(b.j, b.i);
  for (const AngleTerm& a : top.angles) {
    feed(a.j, a.i);
    feed(a.k, a.i);
  }
  for (const DihedralTerm& d : top.dihedrals) {
    feed(d.j, d.i);
    feed(d.k, d.i);
    feed(d.l, d.i);
  }
  for (const ExclusionPair& e : top.exclusions) feed(e.j, e.i);
  for (auto& f : dest_feed_) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
  for (const VirtualSite& v : top.virtual_sites) {
    vsite_feed_[v.o].push_back(v.site);
    vsite_feed_[v.h1].push_back(v.site);
    vsite_feed_[v.h2].push_back(v.site);
  }
  for (auto& f : vsite_feed_) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
}

void VirtualMachine::build_mesh_blocks() {
  const int M = gse_params_.mesh;
  const Vec3i pg = geom_->config().node_grid;
  const int p[3] = {pg.x, pg.y, pg.z};
  for (int a = 0; a < 3; ++a) {
    mesh_start_[a].assign(p[a] + 1, 0);
    for (int c = 0; c <= p[a]; ++c)
      mesh_start_[a][c] =
          static_cast<int>((static_cast<std::int64_t>(M) * c) / p[a]);
    mesh_owner_[a].assign(M, 0);
    int c = 0;
    for (int m = 0; m < M; ++m) {
      while (m >= mesh_start_[a][c + 1]) ++c;
      mesh_owner_[a][m] = c;
    }
  }
  const std::size_t mesh_total =
      static_cast<std::size_t>(M) * M * M;
  const int nnodes = node_count();
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    const int gx = n % pg.x;
    const int gy = (n / pg.x) % pg.y;
    const int gz = n / (pg.x * pg.y);
    nd.block_lo = {mesh_start_[0][gx], mesh_start_[1][gy],
                   mesh_start_[2][gz]};
    nd.block_sz = {mesh_start_[0][gx + 1] - mesh_start_[0][gx],
                   mesh_start_[1][gy + 1] - mesh_start_[1][gy],
                   mesh_start_[2][gz + 1] - mesh_start_[2][gz]};
    const std::size_t vol = static_cast<std::size_t>(nd.block_sz.x) *
                            nd.block_sz.y * nd.block_sz.z;
    nd.mesh_q.assign(vol, 0);
    nd.scratch_q.assign(vol, 0.0);
    nd.fft_grid.assign(vol, fft::cplx{});
    nd.mesh_phi.assign(vol, 0);
    nd.spread_q.assign(mesh_total, 0);
    nd.stouched.assign(mesh_total, 0);
    nd.halo_phi.assign(mesh_total, 0);
    nd.halo_req.assign(nnodes, {});
    nd.fft_line.assign(static_cast<std::size_t>(M), fft::cplx{});
  }
}

void VirtualMachine::initial_distribution(const std::vector<Vec3i>& gpos,
                                          const std::vector<Vec3l>& gvel) {
  unit_sb_.assign(units_.size(), 0);
  directory_.assign(sys_.top.natoms, 0);
  for (std::size_t u = 0; u < units_.size(); ++u) {
    const std::int32_t head = units_[u][0];
    const Vec3i sb = geom_->subbox_of(lat_.to_phys(gpos[head]));
    const std::int32_t idx = geom_->index_of(sb);
    unit_sb_[u] = idx;
    const int node = geom_->node_index_of(sb);
    nodes_[node].units.push_back(static_cast<std::int32_t>(u));
    for (std::int32_t a : units_[u]) {
      directory_[a] = node;
      AtomState st;
      st.pos = gpos[a];
      st.vel = gvel[a];
      nodes_[node].atoms[a] = st;
    }
  }
}

void VirtualMachine::rebuild_bins_and_terms() {
  const Topology& top = sys_.top;
  for (NodeState& nd : nodes_) {
    nd.bins.clear();
    nd.bonds.clear();
    nd.angles.clear();
    nd.dihedrals.clear();
    nd.exclusions.clear();
    nd.vsites.clear();
  }
  for (NodeState& nd : nodes_) {
    for (std::int32_t u : nd.units) {
      auto& bin = nd.bins[unit_sb_[u]];
      for (std::int32_t a : units_[u]) bin.push_back(a);
    }
    for (auto& [sb, ids] : nd.bins) std::sort(ids.begin(), ids.end());
  }
  for (std::size_t k = 0; k < top.bonds.size(); ++k)
    nodes_[directory_[top.bonds[k].i]].bonds.push_back(
        static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.angles.size(); ++k)
    nodes_[directory_[top.angles[k].i]].angles.push_back(
        static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.dihedrals.size(); ++k)
    nodes_[directory_[top.dihedrals[k].i]].dihedrals.push_back(
        static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.exclusions.size(); ++k)
    nodes_[directory_[top.exclusions[k].i]].exclusions.push_back(
        static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.virtual_sites.size(); ++k)
    nodes_[directory_[top.virtual_sites[k].site]].vsites.push_back(
        static_cast<std::int32_t>(k));
}

// ---------------------------------------------------------------------------
// Control plane: coordinator-originated raw frames.
// ---------------------------------------------------------------------------

void VirtualMachine::send_frame_raw(int dst,
                                    const std::vector<std::uint8_t>& bytes) {
  wire_->send_to(dst, bytes);
}

void VirtualMachine::send_ctl_to(int dst, const wire::Payload& p) {
  send_frame_raw(dst, wire::encode_frame(wire::kChControl, wire::kCoordinator,
                                         dst, ctl_seq_++, p));
}

void VirtualMachine::broadcast_ctl(const wire::Payload& p) {
  for (int n = 0; n < node_count(); ++n) send_ctl_to(n, p);
}

// ---------------------------------------------------------------------------
// Hub routing + diagnostics folding.
// ---------------------------------------------------------------------------

wire::Frame VirtualMachine::next_coordinator_frame(int* src) {
  for (;;) {
    int from = -1;
    const std::vector<std::uint8_t> bytes = wire_->recv_any(&from);
    const std::uint16_t dst = peek_dst(bytes);
    if (dst != wire::kCoordinator) {
      // Rank-to-rank traffic (deliveries, acks): the hub forwards it raw,
      // re-validating header + CRC first when the wire is in verify mode.
      if (topts_.verify) {
        const int rc = wire::validate_frame(bytes.data(), bytes.size());
        if (rc != 0)
          throw wire::WireError(validate_kind(rc),
                                "routed frame failed validation");
      }
      wire_->send_to(static_cast<int>(dst), bytes);
      continue;
    }
    wire::Frame f = wire::decode_frame(bytes);
    if (f.header.msg_type == wire::MsgType::kBarrier) {
      on_barrier(from, std::get<wire::Barrier>(f.payload).id);
      continue;
    }
    if (src) *src = from;
    return f;
  }
}

void VirtualMachine::on_barrier(int src, std::uint32_t id) {
  (void)src;
  if (++bar_count_[id] < node_count()) return;
  // Everyone arrived: release in rank order. Per-link FIFO through this
  // hub guarantees each rank has already consumed (or queued before the
  // release) every data frame its peers sent in the closing phase.
  bar_count_.erase(id);
  wire::Barrier rel;
  rel.id = id;
  for (int r = 0; r < node_count(); ++r) send_ctl_to(r, wire::Payload{rel});
}

void VirtualMachine::collect_reports(int n) {
  int got = 0;
  while (got < n) {
    int src = -1;
    wire::Frame f = next_coordinator_frame(&src);
    switch (f.header.msg_type) {
      case wire::MsgType::kRankReport:
        fold_report(src, std::get<wire::RankReport>(f.payload));
        ++got;
        break;
      case wire::MsgType::kWorkerError:
        throw WorkerErrorSignal{
            src, std::get<wire::WorkerError>(f.payload).code};
      default:
        break;  // stale control residue; drop
    }
  }
}

void VirtualMachine::fold_report(int src, const wire::RankReport& r) {
  if (r.counters.size() != WorkerRuntime::kReportCounters ||
      r.ledger.size() != WorkerRuntime::kReportLedger ||
      r.faults.size() != WorkerRuntime::kReportFaults ||
      r.span_id.size() != r.span_us.size())
    throw wire::WireError(wire::WireError::Kind::kBadPayload,
                          "rank report shape mismatch");
  if (src == 0) e_recip_ = r.e_recip;

  std::size_t i = 0;
  auto phase = [&](PhaseComm& p) {
    p.messages += r.ledger[i++];
    p.bytes += r.ledger[i++];
    p.max_hops = std::max(p.max_hops, static_cast<int>(r.ledger[i++]));
  };
  phase(ledger_.position);
  phase(ledger_.force);
  phase(ledger_.bond);
  phase(ledger_.mesh);
  phase(ledger_.fft);
  phase(ledger_.migration);
  phase(ledger_.reduce);
  ledger_.pairs_considered += r.ledger[i++];
  ledger_.interactions += r.ledger[i++];
  ledger_.max_messages_per_node =
      std::max(ledger_.max_messages_per_node, r.sent);

  core::NodeCounters& nc = workload_.nodes[static_cast<std::size_t>(src)];
  nc.pairs_considered += r.counters[0];
  nc.ppip_queue += r.counters[1];
  nc.interactions += r.counters[2];
  nc.spread_ops += r.counters[3];
  nc.interp_ops += r.counters[4];
  nc.bond_terms += r.counters[5];
  nc.correction_pairs += r.counters[6];

  merged_fc_.drops += r.faults[0];
  merged_fc_.duplicates += r.faults[1];
  merged_fc_.reorders += r.faults[2];
  merged_fc_.delays += r.faults[3];
  merged_fc_.retransmits += r.faults[4];
  merged_fc_.retransmit_bytes += r.faults[5];
  merged_fc_.dups_suppressed += r.faults[6];
  merged_fc_.out_of_order_held += r.faults[7];
  ledger_.retransmit.messages += r.faults[4];
  ledger_.retransmit.bytes += r.faults[5];

  if (tracer_) {
    for (std::size_t j = 0; j < r.span_id.size(); ++j)
      if (r.span_id[j] < WorkerRuntime::kNumSpans)
        tracer_->append_span(WorkerRuntime::kSpanNames[r.span_id[j]],
                             src + 1, r.span_us[j]);
  }
}

void VirtualMachine::state_sync() {
  const int nnodes = node_count();
  wire::Control c;
  c.op = wire::CtrlOp::kStateRequest;
  broadcast_ctl(wire::Payload{c});
  int got = 0;
  while (got < nnodes) {
    int src = -1;
    wire::Frame f = next_coordinator_frame(&src);
    if (f.header.msg_type == wire::MsgType::kStateBlock) {
      merge_state_block(src, std::get<wire::StateBlock>(f.payload));
      ++got;
    } else if (f.header.msg_type == wire::MsgType::kWorkerError) {
      // A rank in error recovery will not answer the state request until
      // it has been rolled back; surface the error instead of waiting.
      throw WorkerErrorSignal{src,
                              std::get<wire::WorkerError>(f.payload).code};
    }
    // Anything else arriving at a sync point is stale and dropped.
  }
  rebuild_bins_and_terms();
}

void VirtualMachine::merge_state_block(int src, const wire::StateBlock& b) {
  steps_ = static_cast<std::int64_t>(b.steps);
  if (src == 0) e_recip_ = b.e_recip;
  // The directory is a full replica, identical on every rank at a sync
  // point; unit_sb is authoritative only for the sender's own units.
  directory_ = b.directory;
  for (std::int32_t u : b.unit_id)
    unit_sb_[static_cast<std::size_t>(u)] =
        b.unit_sb[static_cast<std::size_t>(u)];
  NodeState& nd = nodes_[static_cast<std::size_t>(src)];
  nd.units = b.unit_id;
  nd.atoms.clear();
  for (std::size_t i = 0; i < b.atom_id.size(); ++i)
    nd.atoms.emplace(b.atom_id[i], b.atoms[i]);
}

// ---------------------------------------------------------------------------
// The distributed MTS cycle (coordinator side: command + fold).
// ---------------------------------------------------------------------------

void VirtualMachine::run_one_cycle() {
  const int k = std::max(1, acfg_.sim.long_range_every);
  // Deterministic mirror of the workers' migration predicate, evaluated
  // before the step counter advances.
  const bool migrates = acfg_.migration_interval > 0 &&
                        steps_ % acfg_.migration_interval == 0;
  wire::Control c;
  c.op = wire::CtrlOp::kRunCycle;
  broadcast_ctl(wire::Payload{c});
  collect_reports(node_count());
  steps_ += k;
  workload_.steps_accumulated += k;
  if (metrics_) {
    metrics_->count(mid_.steps, 0, k);
    if (migrates) metrics_->count(mid_.migrations, 0, 1);
  }
  publish_metrics();
}

void VirtualMachine::run_cycles(int ncycles) {
  if (!dynamic_)
    throw std::logic_error(
        "VirtualMachine::run_cycles: requires the dynamics-mode "
        "constructor");
  const int k = std::max(1, acfg_.sim.long_range_every);
  // steps_ only ever advances in whole cycles, so steps_ / k is the
  // absolute cycle index -- stable across run_cycles calls and rollbacks,
  // which is what the crash schedule is keyed on.
  const std::int64_t target = steps_ / k + ncycles;
  while (steps_ / k < target) {
    const std::int64_t cycle = steps_ / k;
    try {
      if (injector_) {
        std::vector<int> dead;
        for (int n = 0; n < node_count(); ++n)
          if (injector_->crash_due(n, cycle)) dead.push_back(n);
        if (!dead.empty()) {
          // A rank died at this cycle boundary: its volatile state (and
          // every in-flight message) is gone. On a forked wire the worker
          // process is genuinely SIGKILLed and a fresh one forked.
          // Recovery is coordinated rollback -- all ranks restore the
          // last distributed checkpoint, every channel restarts from
          // sequence zero, and the replay is bitwise identical to the
          // fault-free execution by the determinism invariants.
          obs::Tracer::Span sp(tracer_, "vm.rollback");
          const std::int64_t restored_cycle = ckpt_.steps / k;
          rollback(dead, /*restart=*/true);
          ++merged_fc_.crashes;
          ++merged_fc_.rollbacks;
          merged_fc_.replayed_cycles += cycle - restored_cycle;
          continue;
        }
        const int cadence =
            std::max(1, injector_->config().checkpoint_cycles);
        if (ft_enabled_ && (!have_ckpt_ || cycle % cadence == 0)) {
          state_sync();
          capture_vm_checkpoint();
        }
      }
      run_one_cycle();
    } catch (const TransportError& te) {
      // A worker endpoint died mid-cycle without being scheduled (e.g. an
      // external SIGKILL). Same recovery as a scheduled crash: re-fork
      // the endpoint and roll everyone back to the last checkpoint.
      if (!ft_enabled_ || !have_ckpt_) throw;
      obs::Tracer::Span sp(tracer_, "vm.rollback");
      const std::int64_t restored_cycle = ckpt_.steps / k;
      rollback({te.node()}, /*restart=*/true);
      ++merged_fc_.crashes;
      ++merged_fc_.rollbacks;
      merged_fc_.replayed_cycles += cycle - restored_cycle;
    } catch (const WorkerErrorSignal& we) {
      // A rank surfaced a typed wire error (e.g. a corrupted frame). The
      // worker survives; recovery is rollback without a re-fork.
      if (!ft_enabled_ || !have_ckpt_)
        throw wire::WireError(
            we.code > 0 ? static_cast<wire::WireError::Kind>(we.code - 1)
                        : wire::WireError::Kind::kBadPayload,
            "rank " + std::to_string(we.rank) + " reported a wire error");
      obs::Tracer::Span sp(tracer_, "vm.rollback");
      const std::int64_t restored_cycle = ckpt_.steps / k;
      rollback({}, /*restart=*/false);
      ++merged_fc_.rollbacks;
      merged_fc_.replayed_cycles += cycle - restored_cycle;
    }
  }
  // Refresh the coordinator mirror so diagnostics gathers (state_hash,
  // export_checkpoint, workload) see the post-run rank state.
  try {
    state_sync();
  } catch (const WorkerErrorSignal& we) {
    throw wire::WireError(
        we.code > 0 ? static_cast<wire::WireError::Kind>(we.code - 1)
                    : wire::WireError::Kind::kBadPayload,
        "rank " + std::to_string(we.rank) + " reported a wire error");
  }
  if (tracer_ && ncycles > 0) tracer_->capture_workload(workload());
}

// ---------------------------------------------------------------------------
// Fault tolerance: distributed checkpoint, coordinated rollback.
// ---------------------------------------------------------------------------

void VirtualMachine::capture_vm_checkpoint() {
  ckpt_.steps = steps_;
  ckpt_.e_recip = e_recip_;
  ckpt_.unit_sb = unit_sb_;
  ckpt_.directory = directory_;
  ckpt_.nodes.assign(nodes_.size(), NodeSnapshot{});
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeSnapshot& s = ckpt_.nodes[n];
    s.units = nodes_[n].units;
    s.atoms.assign(nodes_[n].atoms.begin(), nodes_[n].atoms.end());
    std::sort(s.atoms.begin(), s.atoms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  have_ckpt_ = true;
}

void VirtualMachine::restore_vm_checkpoint() {
  if (!have_ckpt_)
    throw std::logic_error(
        "VirtualMachine: rollback requested with no checkpoint captured");
  steps_ = ckpt_.steps;
  e_recip_ = ckpt_.e_recip;
  unit_sb_ = ckpt_.unit_sb;
  directory_ = ckpt_.directory;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeState& nd = nodes_[n];
    nd.units = ckpt_.nodes[n].units;
    nd.atoms.clear();
    for (const auto& [id, st] : ckpt_.nodes[n].atoms) nd.atoms.emplace(id, st);
  }
  rebuild_bins_and_terms();
}

void VirtualMachine::rollback(const std::vector<int>& dead, bool restart) {
  const int nnodes = node_count();
  for (int n : dead) {
    wire_->kill_node(n);
    wire_->clear_pending(n);
    if (restart) wire_->restart_node(n);
  }
  // Abort everyone: survivors unwind whatever phase they are in back to
  // the event loop and acknowledge; freshly restarted ranks acknowledge
  // from idle. The drain discards every stale frame in flight.
  wire::Control abort;
  abort.op = wire::CtrlOp::kAbort;
  for (int n = 0; n < nnodes; ++n) send_ctl_to(n, wire::Payload{abort});
  std::vector<char> acked(nnodes, 0);
  int got = 0;
  while (got < nnodes) {
    int src = -1;
    std::vector<std::uint8_t> bytes;
    try {
      bytes = wire_->recv_any(&src);
    } catch (const TransportError& te) {
      // Another rank died while the abort drained: bring it back. A fresh
      // rank has nothing in flight, which is all the ack certifies.
      wire_->kill_node(te.node());
      wire_->clear_pending(te.node());
      wire_->restart_node(te.node());
      if (!acked[te.node()]) {
        acked[te.node()] = 1;
        ++got;
      }
      continue;
    }
    if (peek_dst(bytes) != wire::kCoordinator) continue;
    wire::Frame f;
    try {
      f = wire::decode_frame(bytes);
    } catch (const wire::WireError&) {
      continue;  // corrupt residue dies with the aborted cycle
    }
    if (f.header.msg_type != wire::MsgType::kControl) continue;
    if (std::get<wire::Control>(f.payload).op == wire::CtrlOp::kAbortAck &&
        src >= 0 && !acked[src]) {
      acked[src] = 1;
      ++got;
    }
  }
  // All channels are quiet. Restore the coordinator mirror and push the
  // authoritative state back out; per-link FIFO puts each StateBlock
  // ahead of any later command.
  bar_count_.clear();
  restore_vm_checkpoint();
  for (int n = 0; n < nnodes; ++n) send_restore_block(n);
}

void VirtualMachine::send_restore_block(int rank) {
  wire::StateBlock b;
  b.steps = static_cast<std::uint64_t>(ckpt_.steps);
  b.e_recip = ckpt_.e_recip;
  b.directory = ckpt_.directory;
  b.unit_sb = ckpt_.unit_sb;
  const NodeSnapshot& s = ckpt_.nodes[static_cast<std::size_t>(rank)];
  b.unit_id = s.units;
  b.atom_id.reserve(s.atoms.size());
  b.atoms.reserve(s.atoms.size());
  for (const auto& [id, st] : s.atoms) {
    b.atom_id.push_back(id);
    b.atoms.push_back(st);
  }
  send_ctl_to(rank, wire::Payload{std::move(b)});
}

void VirtualMachine::set_fault_config(const FaultConfig& cfg) {
  if (!dynamic_)
    throw std::logic_error(
        "VirtualMachine::set_fault_config: requires the dynamics-mode "
        "constructor");
  injector_ = std::make_unique<FaultInjector>(cfg);
  ft_enabled_ = true;
  // Each rank arms its own injector with a seed derived from (cfg.seed,
  // rank); the crash schedule stays coordinator-side.
  wire::Control c;
  c.op = wire::CtrlOp::kSetFault;
  c.i0 = static_cast<std::int64_t>(cfg.seed);
  c.i1 = cfg.max_attempts;
  c.f0 = cfg.drop;
  c.f1 = cfg.duplicate;
  c.f2 = cfg.reorder;
  c.f3 = cfg.delay;
  broadcast_ctl(wire::Payload{c});
  // Arm-time capture: a crash scheduled before the first cadence boundary
  // still has a rollback target.
  state_sync();
  capture_vm_checkpoint();
}

void VirtualMachine::clear_fault_config() {
  if (wire_) {
    wire::Control c;
    c.op = wire::CtrlOp::kClearFault;
    broadcast_ctl(wire::Payload{c});
  }
  injector_.reset();
  ft_enabled_ = false;
  have_ckpt_ = false;
  ckpt_ = VmCheckpoint{};
}

io::Checkpoint VirtualMachine::export_checkpoint() const {
  io::Checkpoint ck;
  ck.step = steps_;
  ck.positions = lattice_positions();
  ck.velocities = fixed_velocities();
  return ck;
}

// ---------------------------------------------------------------------------
// Diagnostics (global gathers from the mirror; not part of the
// choreography).
// ---------------------------------------------------------------------------

std::vector<Vec3i> VirtualMachine::lattice_positions() const {
  std::vector<Vec3i> out(sys_.top.natoms, Vec3i{0, 0, 0});
  for (const NodeState& nd : nodes_)
    for (const auto& [id, st] : nd.atoms) out[id] = st.pos;
  return out;
}

std::vector<Vec3l> VirtualMachine::fixed_velocities() const {
  std::vector<Vec3l> out(sys_.top.natoms, Vec3l{0, 0, 0});
  for (const NodeState& nd : nodes_)
    for (const auto& [id, st] : nd.atoms) out[id] = st.vel;
  return out;
}

std::uint64_t VirtualMachine::state_hash() const {
  return parallel::state_hash(lattice_positions(), fixed_velocities());
}

void VirtualMachine::negate_velocities() {
  if (wire_) {
    wire::Control c;
    c.op = wire::CtrlOp::kNegateVelocities;
    broadcast_ctl(wire::Payload{c});
  }
  for (NodeState& nd : nodes_) {
    for (auto& [id, st] : nd.atoms) {
      st.vel.x = fixed::wrap_sub(0, st.vel.x);
      st.vel.y = fixed::wrap_sub(0, st.vel.y);
      st.vel.z = fixed::wrap_sub(0, st.vel.z);
    }
  }
}

const core::WorkloadProfile& VirtualMachine::workload() {
  for (auto& nc : workload_.nodes) {
    nc.atoms = 0;
    nc.tower_import_atoms = 0;
    nc.plate_import_atoms = 0;
    nc.constraint_bonds = 0;
  }
  std::vector<std::int64_t> bin_sz(geom_->subbox_count(), 0);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (const auto& [sb, ids] : nodes_[n].bins) {
      bin_sz[sb] = static_cast<std::int64_t>(ids.size());
      workload_.nodes[n].atoms += static_cast<std::int64_t>(ids.size());
    }
  }
  for (std::size_t n = 0; n < node_import_subboxes_.size(); ++n)
    for (std::int32_t sb : node_import_subboxes_[n])
      workload_.nodes[n].tower_import_atoms += bin_sz[sb];
  for (std::size_t u = 0; u < units_.size(); ++u) {
    if (group_constraints_[u].empty()) continue;
    workload_.nodes[directory_[units_[u][0]]].constraint_bonds +=
        static_cast<std::int64_t>(group_constraints_[u].size());
  }
  return workload_;
}

void VirtualMachine::reset_workload() {
  for (auto& nc : workload_.nodes) nc = core::NodeCounters{};
  workload_.steps_accumulated = 0;
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

void VirtualMachine::set_metrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  if (!m) return;
  mid_.steps = m->counter("vm.steps");
  mid_.cycles = m->counter("vm.mts_cycles");
  mid_.migrations = m->counter("vm.migrations");
  mid_.position_messages = m->counter("vm.position_messages");
  mid_.position_bytes = m->counter("vm.position_bytes");
  mid_.force_messages = m->counter("vm.force_messages");
  mid_.force_bytes = m->counter("vm.force_bytes");
  mid_.bond_messages = m->counter("vm.bond_messages");
  mid_.bond_bytes = m->counter("vm.bond_bytes");
  mid_.mesh_messages = m->counter("vm.mesh_messages");
  mid_.mesh_bytes = m->counter("vm.mesh_bytes");
  mid_.fft_messages = m->counter("vm.fft_messages");
  mid_.fft_bytes = m->counter("vm.fft_bytes");
  mid_.migration_messages = m->counter("vm.migration_messages");
  mid_.migration_bytes = m->counter("vm.migration_bytes");
  mid_.reduce_messages = m->counter("vm.reduce_messages");
  mid_.reduce_bytes = m->counter("vm.reduce_bytes");
  mid_.fault_drops = m->counter("vm.fault.drops");
  mid_.fault_duplicates = m->counter("vm.fault.duplicates");
  mid_.fault_reorders = m->counter("vm.fault.reorders");
  mid_.fault_delays = m->counter("vm.fault.delays");
  mid_.fault_crashes = m->counter("vm.fault.crashes");
  mid_.retry_retransmits = m->counter("vm.retry.retransmits");
  mid_.retry_retransmit_bytes = m->counter("vm.retry.retransmit_bytes");
  mid_.retry_dups_suppressed = m->counter("vm.retry.dups_suppressed");
  mid_.retry_out_of_order = m->counter("vm.retry.out_of_order_held");
  mid_.retry_rollbacks = m->counter("vm.retry.rollbacks");
  mid_.retry_replayed_cycles = m->counter("vm.retry.replayed_cycles");
  mid_.wire_roundtrips = m->counter("vm.wire.roundtrips");
  mid_.wire_bytes = m->counter("vm.wire.bytes");
  pub_base_ = ledger_;
  fc_base_ = merged_fc_;
  if (wire_) ws_base_ = wire_->stats();
}

void VirtualMachine::publish_metrics() {
  if (!metrics_) {
    pub_base_ = ledger_;
    fc_base_ = merged_fc_;
    if (wire_) ws_base_ = wire_->stats();
    return;
  }
  metrics_->count(mid_.cycles, 0, 1);
  auto pub = [&](int mid_msgs, int mid_bytes, const PhaseComm& cur,
                 const PhaseComm& base) {
    metrics_->count(mid_msgs, 0, cur.messages - base.messages);
    metrics_->count(mid_bytes, 0, cur.bytes - base.bytes);
  };
  pub(mid_.position_messages, mid_.position_bytes, ledger_.position,
      pub_base_.position);
  pub(mid_.force_messages, mid_.force_bytes, ledger_.force, pub_base_.force);
  pub(mid_.bond_messages, mid_.bond_bytes, ledger_.bond, pub_base_.bond);
  pub(mid_.mesh_messages, mid_.mesh_bytes, ledger_.mesh, pub_base_.mesh);
  pub(mid_.fft_messages, mid_.fft_bytes, ledger_.fft, pub_base_.fft);
  pub(mid_.migration_messages, mid_.migration_bytes, ledger_.migration,
      pub_base_.migration);
  pub(mid_.reduce_messages, mid_.reduce_bytes, ledger_.reduce,
      pub_base_.reduce);
  const FaultCounters& fc = merged_fc_;
  auto pubc = [&](int id, std::int64_t cur, std::int64_t base) {
    metrics_->count(id, 0, cur - base);
  };
  pubc(mid_.fault_drops, fc.drops, fc_base_.drops);
  pubc(mid_.fault_duplicates, fc.duplicates, fc_base_.duplicates);
  pubc(mid_.fault_reorders, fc.reorders, fc_base_.reorders);
  pubc(mid_.fault_delays, fc.delays, fc_base_.delays);
  pubc(mid_.fault_crashes, fc.crashes, fc_base_.crashes);
  pubc(mid_.retry_retransmits, fc.retransmits, fc_base_.retransmits);
  pubc(mid_.retry_retransmit_bytes, fc.retransmit_bytes,
       fc_base_.retransmit_bytes);
  pubc(mid_.retry_dups_suppressed, fc.dups_suppressed,
       fc_base_.dups_suppressed);
  pubc(mid_.retry_out_of_order, fc.out_of_order_held,
       fc_base_.out_of_order_held);
  pubc(mid_.retry_rollbacks, fc.rollbacks, fc_base_.rollbacks);
  pubc(mid_.retry_replayed_cycles, fc.replayed_cycles,
       fc_base_.replayed_cycles);
  if (wire_) {
    const WireStats& ws = wire_->stats();
    pubc(mid_.wire_roundtrips, ws.roundtrips, ws_base_.roundtrips);
    pubc(mid_.wire_bytes, ws.bytes, ws_base_.bytes);
    ws_base_ = ws;
  }
  metrics_->flush();
  pub_base_ = ledger_;
  fc_base_ = fc;
}

// ---------------------------------------------------------------------------
// Legacy one-shot distributed evaluation.
// ---------------------------------------------------------------------------

std::vector<Vec3l> VirtualMachine::evaluate(
    const std::vector<Vec3i>& positions, CommLedger* stats) {
  const Topology& top = sys_.top;
  const int nnodes = node_count();
  const std::int64_t nsub = geom_->subbox_count();

  // --- ownership: bin atoms into subboxes by position ---
  std::vector<std::vector<std::int32_t>> bins(nsub);
  for (std::int32_t a = 0; a < top.natoms; ++a) {
    const Vec3d r = lat_.to_phys(positions[a]);
    bins[geom_->index_of(geom_->subbox_of(r))].push_back(a);
  }

  // --- per-node private memories ---
  // Each node stores the atom records it owns or received, keyed by the
  // subbox index the data belongs to. No node ever reads another node's
  // memory; data moves only through the mailboxes below.
  struct NodeMemory {
    std::map<std::int32_t, std::vector<AtomRecord>> subbox_atoms;
  };
  std::vector<NodeMemory> nodes(nnodes);
  std::vector<std::int64_t> sent_msgs(nnodes, 0);

  // Home data placement (a node owns its own subboxes' atoms).
  for (std::int32_t sb = 0; sb < nsub; ++sb) {
    const int owner = geom_->node_index_of(geom_->coords_of(sb));
    auto& recs = nodes[owner].subbox_atoms[sb];
    for (std::int32_t a : bins[sb]) recs.push_back({a, positions[a]});
  }

  // --- phase 1: position multicast ---
  // consumers[sb] = sorted set of nodes whose tower/plate imports sb.
  std::vector<std::vector<int>> consumers(nsub);
  {
    std::vector<std::vector<char>> seen(nsub, std::vector<char>(nnodes, 0));
    for (std::int32_t hidx = 0; hidx < nsub; ++hidx) {
      const Vec3i h = geom_->coords_of(hidx);
      const int node = geom_->node_index_of(h);
      auto mark = [&](const Vec3i& c) {
        const std::int32_t idx = geom_->index_of(geom_->wrap_coords(c));
        if (!seen[idx][node]) {
          seen[idx][node] = 1;
          consumers[idx].push_back(node);
        }
      };
      for (std::int32_t dz : geom_->tower_dz()) mark({h.x, h.y, h.z + dz});
      for (const Vec3i& p : geom_->plate_half())
        mark({h.x + p.x, h.y + p.y, h.z});
    }
  }
  // Owner-node grouping: the multicast and compute phases below run node
  // by node so a tracer sees one span per virtual node. Within a node the
  // subbox order is preserved, and all accumulation is per-node state
  // combined with wrapping adds, so the regrouping is unobservable in the
  // returned forces.
  std::vector<std::vector<std::int32_t>> node_subboxes(nnodes);
  for (std::int32_t sb = 0; sb < nsub; ++sb)
    node_subboxes[geom_->node_index_of(geom_->coords_of(sb))].push_back(sb);

  CommLedger st;
  {
    obs::Tracer::Span phase_span(tracer_, "vm.position_multicast");
    for (int owner = 0; owner < nnodes; ++owner) {
      obs::Tracer::Span node_span(tracer_, "vm.node.multicast", owner + 1);
      for (std::int32_t sb : node_subboxes[owner]) {
        const auto& payload = nodes[owner].subbox_atoms[sb];
        for (int dst : consumers[sb]) {
          if (dst == owner) continue;
          // One multicast message per (subbox, consumer): id + 3x32-bit
          // pos.
          nodes[dst].subbox_atoms[sb] = payload;  // message delivery
          ++st.position.messages;
          ++sent_msgs[owner];
          st.position.bytes +=
              kPosRecord * static_cast<std::int64_t>(payload.size()) +
              kMsgHeader;
        }
      }
    }
  }

  // --- phase 2: local interactions ---
  // Partial force accumulators live per node, keyed by atom id; purely
  // local state. The pairs run through the same match-unit -> PPIP kernel
  // the engine and the dynamics runtime execute.
  std::vector<std::map<std::int32_t, Vec3l>> partials(nnodes);
  {
    obs::Tracer::Span compute_span(tracer_, "vm.compute");
    for (int node = 0; node < nnodes; ++node) {
      obs::Tracer::Span node_span(tracer_, "vm.node.compute", node + 1);
      NodeMemory& mem = nodes[node];
      auto& acc = partials[node];
      for (std::int32_t hidx : node_subboxes[node]) {
        const Vec3i h = geom_->coords_of(hidx);
        for (std::int32_t dz : geom_->tower_dz()) {
          const std::int32_t tidx =
              geom_->index_of(geom_->wrap_coords({h.x, h.y, h.z + dz}));
          const auto t_it = mem.subbox_atoms.find(tidx);
          if (t_it == mem.subbox_atoms.end() || t_it->second.empty())
            continue;
          const auto& tower = t_it->second;
          for (const Vec3i& poff : geom_->plate_half()) {
            if (!geom_->owns_pair(h, dz, poff)) continue;
            const std::int32_t pidx = geom_->index_of(
                geom_->wrap_coords({h.x + poff.x, h.y + poff.y, h.z}));
            const auto p_it = mem.subbox_atoms.find(pidx);
            if (p_it == mem.subbox_atoms.end() || p_it->second.empty())
              continue;
            const auto& plate = p_it->second;
            const bool same = tidx == pidx;
            for (std::size_t a = 0; a < tower.size(); ++a) {
              for (std::size_t b = same ? a + 1 : 0; b < plate.size(); ++b) {
                ++st.pairs_considered;
                const PairResult pr =
                    eval_pair(np_, tower[a].id, plate[b].id, tower[a].pos,
                              plate[b].pos, false);
                if (pr.status != PairStatus::kComputed) continue;
                ++st.interactions;
                Vec3l& fa = acc[pr.lo];
                acc3(fa, pr.f);
                Vec3l& fb = acc[pr.hi];
                sub3(fb, pr.f);
              }
            }
          }
        }
      }
    }
  }

  // --- phase 3 + 4: force return and reduction ---
  // Home node of each atom (by position binning above).
  std::vector<int> home_node(top.natoms);
  for (std::int32_t sb = 0; sb < nsub; ++sb) {
    const int owner = geom_->node_index_of(geom_->coords_of(sb));
    for (std::int32_t a : bins[sb]) home_node[a] = owner;
  }
  std::vector<Vec3l> total(top.natoms, {0, 0, 0});
  obs::Tracer::Span return_span(tracer_, "vm.force_return");
  for (int n = 0; n < nnodes; ++n) {
    obs::Tracer::Span node_span(tracer_, "vm.node.force_return", n + 1);
    // Group this node's non-home contributions by destination: one force
    // message per (node, destination) pair with all its records.
    std::map<int, std::int64_t> batch_count;
    for (const auto& [id, f] : partials[n]) {
      const int dst = home_node[id];
      if (dst != n) ++batch_count[dst];
      // Delivery: the destination's accumulator combines with wrap adds.
      acc3(total[id], f);
    }
    for (const auto& [dst, count] : batch_count) {
      ++st.force.messages;
      ++sent_msgs[n];
      st.force.bytes += kForceRecord * count + kMsgHeader;
    }
  }

  for (int n = 0; n < nnodes; ++n)
    st.max_messages_per_node = std::max(st.max_messages_per_node,
                                        sent_msgs[n]);
  if (stats) *stats = st;
  return total;
}

}  // namespace anton::parallel
