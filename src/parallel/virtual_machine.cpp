#include "parallel/virtual_machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>
#include <variant>

#include "bonded/bonded.hpp"
#include "fixed/fixed.hpp"

namespace anton::parallel {

namespace {

inline void acc3(Vec3l& a, const Vec3l& d) {
  a.x = fixed::wrap_add(a.x, d.x);
  a.y = fixed::wrap_add(a.y, d.y);
  a.z = fixed::wrap_add(a.z, d.z);
}

inline void sub3(Vec3l& a, const Vec3l& d) {
  a.x = fixed::wrap_sub(a.x, d.x);
  a.y = fixed::wrap_sub(a.y, d.y);
  a.z = fixed::wrap_sub(a.z, d.z);
}

// Byte model for the legacy evaluate() path only (no wire underneath):
// an 8-byte header plus fixed-size records. Dynamics mode accounts
// *measured* frame bytes from the serialized wire format instead.
constexpr std::int64_t kMsgHeader = 8;
constexpr std::int64_t kPosRecord = 16;
constexpr std::int64_t kForceRecord = 28;

}  // namespace

// ---------------------------------------------------------------------------
// Construction.
// ---------------------------------------------------------------------------

VirtualMachine::VirtualMachine(const System& sys, const VmConfig& cfg)
    : sys_(sys), cfg_(cfg), lat_(sys_.box), excl_(sys_.top) {
  build_geometry(cfg.node_grid, cfg.subbox_div, cfg.cutoff, cfg.margin);

  htis::PairKernelParams tp;
  tp.cutoff = cfg.cutoff;
  tp.beta = cfg.beta;
  tp.mantissa_bits = cfg.table_mantissa_bits;
  kernels_ = htis::PairKernels(tp, sys_.top.lj_types);

  init_pair_tables(cfg.cutoff, cfg.beta, 0.0, 0.0, cfg.table_mantissa_bits);
}

VirtualMachine::VirtualMachine(System sys, const core::AntonConfig& cfg)
    : VirtualMachine(std::move(sys), cfg, TransportOptions{}) {}

VirtualMachine::VirtualMachine(System sys, const core::AntonConfig& cfg,
                               const TransportOptions& topts)
    : sys_(std::move(sys)), acfg_(cfg), dynamic_(true), lat_(sys_.box),
      excl_(sys_.top), topts_(topts) {
  sys_.top.validate();
  if (!sys_.box.is_cubic())
    throw std::invalid_argument("VirtualMachine: requires a cubic box");

  const Topology& top = sys_.top;
  const std::int32_t n = top.natoms;
  gse_params_ = acfg_.sim.resolved_gse();

  // Quantize the initial conditions onto the fixed-point grids (identical
  // to the engine's quantization).
  std::vector<Vec3i> gpos(n);
  std::vector<Vec3l> gvel(n);
  for (std::int32_t i = 0; i < n; ++i) {
    gpos[i] = lat_.to_lattice(sys_.positions[i]);
    gvel[i] = {fixed::quantize(sys_.velocities[i].x, fixed::kVelScale),
               fixed::quantize(sys_.velocities[i].y, fixed::kVelScale),
               fixed::quantize(sys_.velocities[i].z, fixed::kVelScale)};
  }

  coefs_ = parallel::make_integration_coefs(top, acfg_.sim.dt,
                                            acfg_.sim.long_range_every, lat_);

  htis::PairKernelParams tp;
  tp.cutoff = acfg_.sim.cutoff;
  tp.beta = gse_params_.beta;
  tp.sigma_s = gse_params_.sigma_s;
  tp.rs = gse_params_.rs;
  tp.mantissa_bits = acfg_.table_mantissa_bits;
  kernels_ = htis::PairKernels(tp, top.lj_types);

  gse_ = std::make_unique<ewald::Gse>(sys_.box, gse_params_);
  fft1_ = std::make_unique<fft::Fft1D>(
      static_cast<std::size_t>(gse_params_.mesh));

  init_pair_tables(acfg_.sim.cutoff, gse_params_.beta, gse_params_.sigma_s,
                   gse_params_.rs, acfg_.table_mantissa_bits);
  np_.gse = gse_.get();
  np_.gse_params = gse_params_;

  build_geometry(acfg_.node_grid, acfg_.subbox_div, acfg_.sim.cutoff,
                 acfg_.import_margin);

  parallel::MigrationUnits mu = parallel::build_migration_units(top);
  units_ = std::move(mu.atoms);
  group_constraints_ = std::move(mu.constraints);

  build_consumers();
  build_feeds();

  const int nnodes = node_count();
  nodes_.assign(nnodes, NodeState{});
  for (NodeState& nd : nodes_) {
    nd.rpos.assign(n, Vec3i{0, 0, 0});
    nd.partial.assign(n, Vec3l{0, 0, 0});
    nd.ptouched.assign(n, 0);
  }
  build_mesh_blocks();
  workload_.nodes.assign(nnodes, {});
  red_kin_.assign(static_cast<std::size_t>(n), 0.0);

  // Stand up the byte wire before the first force computation: every
  // remote delivery from here on is a serialized frame on this transport.
  wire_ = make_transport(nnodes, topts_);
  transport_.set_wire(wire_.get());
  transport_.set_verify(topts_.verify);
  transport_.set_sink(
      [this](const wire::Frame& f) { dispatch_frame(f); });

  // Virtual sites are rebuilt globally once before distribution, so the
  // initial binning sees the same site positions the engine's does.
  for (const VirtualSite& v : top.virtual_sites) {
    gpos[v.site] = parallel::rebuild_virtual_site(
        np_, v, lat_.to_phys(gpos[v.o]), lat_.to_phys(gpos[v.h1]),
        lat_.to_phys(gpos[v.h2]));
    gvel[v.site] = {0, 0, 0};
  }

  initial_distribution(gpos, gvel);
  rebuild_bins_and_terms();

  compute_short_forces();
  compute_long_forces();
}

void VirtualMachine::init_pair_tables(double cutoff, double beta,
                                      double sigma_s, double rs,
                                      int mantissa_bits) {
  (void)beta;
  (void)sigma_s;
  (void)rs;
  (void)mantissa_bits;
  const double cut_lat = cutoff / lat_.lsb().x;
  r2_limit_lattice_ = static_cast<std::uint64_t>(cut_lat * cut_lat);
  lat2_to_phys2_ = lat_.lsb().x * lat_.lsb().x;

  np_.top = &sys_.top;
  np_.box = &sys_.box;
  np_.lat = &lat_;
  np_.kernels = &kernels_;
  np_.excl = &excl_;
  np_.r2_limit_lattice = r2_limit_lattice_;
  np_.lat2_to_phys2 = lat2_to_phys2_;
  np_.have_molecules = !sys_.top.molecule.empty();
}

void VirtualMachine::build_geometry(const Vec3i& node_grid,
                                    const Vec3i& subbox_div, double cutoff,
                                    double margin) {
  nt::NtConfig nc;
  nc.node_grid = node_grid;
  nc.subbox_div = subbox_div;
  nc.cutoff = cutoff;
  nc.margin = margin;
  nc.box = sys_.box;
  geom_ = std::make_unique<nt::NtGeometry>(nc);
}

int VirtualMachine::node_count() const {
  const Vec3i& g = geom_->config().node_grid;
  return g.x * g.y * g.z;
}

void VirtualMachine::build_consumers() {
  const int nnodes = node_count();
  const std::int64_t nsub = geom_->subbox_count();
  consumers_.assign(nsub, {});
  node_subboxes_.assign(nnodes, {});
  node_import_subboxes_.assign(nnodes, {});
  std::vector<std::vector<char>> seen(nnodes);
  for (auto& s : seen) s.assign(nsub, 0);
  for (std::int32_t hidx = 0; hidx < nsub; ++hidx) {
    const Vec3i h = geom_->coords_of(hidx);
    const int node = geom_->node_index_of(h);
    node_subboxes_[node].push_back(hidx);
    auto mark = [&](const Vec3i& c) {
      const std::int32_t idx = geom_->index_of(geom_->wrap_coords(c));
      if (seen[node][idx]) return;
      seen[node][idx] = 1;
      consumers_[idx].push_back(node);
      if (geom_->node_index_of(geom_->coords_of(idx)) != node)
        node_import_subboxes_[node].push_back(idx);
    };
    for (std::int32_t dz : geom_->tower_dz()) mark({h.x, h.y, h.z + dz});
    for (const Vec3i& p : geom_->plate_half())
      mark({h.x + p.x, h.y + p.y, h.z});
  }
}

void VirtualMachine::build_feeds() {
  const Topology& top = sys_.top;
  dest_feed_.assign(top.natoms, {});
  vsite_feed_.assign(top.natoms, {});
  auto feed = [&](std::int32_t from, std::int32_t dest) {
    if (from != dest) dest_feed_[from].push_back(dest);
  };
  for (const BondTerm& b : top.bonds) feed(b.j, b.i);
  for (const AngleTerm& a : top.angles) {
    feed(a.j, a.i);
    feed(a.k, a.i);
  }
  for (const DihedralTerm& d : top.dihedrals) {
    feed(d.j, d.i);
    feed(d.k, d.i);
    feed(d.l, d.i);
  }
  for (const ExclusionPair& e : top.exclusions) feed(e.j, e.i);
  for (auto& f : dest_feed_) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
  for (const VirtualSite& v : top.virtual_sites) {
    vsite_feed_[v.o].push_back(v.site);
    vsite_feed_[v.h1].push_back(v.site);
    vsite_feed_[v.h2].push_back(v.site);
  }
  for (auto& f : vsite_feed_) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
}

void VirtualMachine::build_mesh_blocks() {
  const int M = gse_params_.mesh;
  const Vec3i pg = geom_->config().node_grid;
  const int p[3] = {pg.x, pg.y, pg.z};
  for (int a = 0; a < 3; ++a) {
    mesh_start_[a].assign(p[a] + 1, 0);
    for (int c = 0; c <= p[a]; ++c)
      mesh_start_[a][c] =
          static_cast<int>((static_cast<std::int64_t>(M) * c) / p[a]);
    mesh_owner_[a].assign(M, 0);
    int c = 0;
    for (int m = 0; m < M; ++m) {
      while (m >= mesh_start_[a][c + 1]) ++c;
      mesh_owner_[a][m] = c;
    }
  }
  const std::size_t mesh_total =
      static_cast<std::size_t>(M) * M * M;
  master_q_full_.assign(mesh_total, 0.0);
  master_phi_full_.assign(mesh_total, 0.0);
  const int nnodes = node_count();
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    const int gx = n % pg.x;
    const int gy = (n / pg.x) % pg.y;
    const int gz = n / (pg.x * pg.y);
    nd.block_lo = {mesh_start_[0][gx], mesh_start_[1][gy],
                   mesh_start_[2][gz]};
    nd.block_sz = {mesh_start_[0][gx + 1] - mesh_start_[0][gx],
                   mesh_start_[1][gy + 1] - mesh_start_[1][gy],
                   mesh_start_[2][gz + 1] - mesh_start_[2][gz]};
    const std::size_t vol = static_cast<std::size_t>(nd.block_sz.x) *
                            nd.block_sz.y * nd.block_sz.z;
    nd.mesh_q.assign(vol, 0);
    nd.scratch_q.assign(vol, 0.0);
    nd.fft_grid.assign(vol, fft::cplx{});
    nd.mesh_phi.assign(vol, 0);
    nd.spread_q.assign(mesh_total, 0);
    nd.stouched.assign(mesh_total, 0);
    nd.halo_phi.assign(mesh_total, 0);
    nd.halo_req.assign(nnodes, {});
    nd.fft_line.assign(static_cast<std::size_t>(M), fft::cplx{});
  }
}

void VirtualMachine::initial_distribution(const std::vector<Vec3i>& gpos,
                                          const std::vector<Vec3l>& gvel) {
  unit_sb_.assign(units_.size(), 0);
  directory_.assign(sys_.top.natoms, 0);
  for (std::size_t u = 0; u < units_.size(); ++u) {
    const std::int32_t head = units_[u][0];
    const Vec3i sb = geom_->subbox_of(lat_.to_phys(gpos[head]));
    const std::int32_t idx = geom_->index_of(sb);
    unit_sb_[u] = idx;
    const int node = geom_->node_index_of(sb);
    nodes_[node].units.push_back(static_cast<std::int32_t>(u));
    for (std::int32_t a : units_[u]) {
      directory_[a] = node;
      AtomState st;
      st.pos = gpos[a];
      st.vel = gvel[a];
      nodes_[node].atoms[a] = st;
    }
  }
}

void VirtualMachine::rebuild_bins_and_terms() {
  const Topology& top = sys_.top;
  for (NodeState& nd : nodes_) {
    nd.bins.clear();
    nd.bonds.clear();
    nd.angles.clear();
    nd.dihedrals.clear();
    nd.exclusions.clear();
    nd.vsites.clear();
  }
  for (NodeState& nd : nodes_) {
    for (std::int32_t u : nd.units) {
      auto& bin = nd.bins[unit_sb_[u]];
      for (std::int32_t a : units_[u]) bin.push_back(a);
    }
    for (auto& [sb, ids] : nd.bins) std::sort(ids.begin(), ids.end());
  }
  for (std::size_t k = 0; k < top.bonds.size(); ++k)
    nodes_[directory_[top.bonds[k].i]].bonds.push_back(
        static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.angles.size(); ++k)
    nodes_[directory_[top.angles[k].i]].angles.push_back(
        static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.dihedrals.size(); ++k)
    nodes_[directory_[top.dihedrals[k].i]].dihedrals.push_back(
        static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.exclusions.size(); ++k)
    nodes_[directory_[top.exclusions[k].i]].exclusions.push_back(
        static_cast<std::int32_t>(k));
  for (std::size_t k = 0; k < top.virtual_sites.size(); ++k)
    nodes_[directory_[top.virtual_sites[k].site]].vsites.push_back(
        static_cast<std::int32_t>(k));
}

// ---------------------------------------------------------------------------
// Message accounting.
// ---------------------------------------------------------------------------

int VirtualMachine::torus_hops(int src, int dst) const {
  const Vec3i p = geom_->config().node_grid;
  auto ring = [](int a, int b, int n) {
    const int d = std::abs(a - b);
    return std::min(d, n - d);
  };
  const int sx = src % p.x, sy = (src / p.x) % p.y, sz = src / (p.x * p.y);
  const int dx = dst % p.x, dy = (dst / p.x) % p.y, dz = dst / (p.x * p.y);
  return ring(sx, dx, p.x) + ring(sy, dy, p.y) + ring(sz, dz, p.z);
}

void VirtualMachine::account(PhaseComm& phase, int src, int dst,
                             std::int64_t bytes) {
  ++phase.messages;
  phase.bytes += bytes;
  const int h = torus_hops(src, dst);
  if (h > phase.max_hops) phase.max_hops = h;
  ++nodes_[src].sent;
}

void VirtualMachine::deliver(PhaseComm& phase, int channel_phase, int src,
                             int dst, wire::Payload payload) {
  if (src == dst) {
    // Node-local handoff: never touches the wire (and is never counted).
    apply_payload(src, dst, payload);
    return;
  }
  const std::int64_t bytes =
      transport_.send(src, dst, channel_phase, std::move(payload));
  account(phase, src, dst, bytes);
}

void VirtualMachine::dispatch_frame(const wire::Frame& f) {
  apply_payload(f.header.src, f.header.dst, f.payload);
}

void VirtualMachine::apply_payload(int src, int dst,
                                   const wire::Payload& p) {
  NodeState& nd = nodes_[dst];
  const int M = gse_params_.mesh;
  // Block-local index of global mesh point (x, y, z) on `b`'s block.
  auto block_index = [](const NodeState& b, int x, int y, int z) {
    return (static_cast<std::size_t>(z - b.block_lo.z) * b.block_sz.y +
            (y - b.block_lo.y)) *
               b.block_sz.x +
           (x - b.block_lo.x);
  };
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, wire::PositionBatch>) {
          records_of(nd, m.sb) = m.recs;
        } else if constexpr (std::is_same_v<T, wire::BondPositions>) {
          for (const wire::PosRec& r : m.recs) nd.rpos[r.id] = r.pos;
        } else if constexpr (std::is_same_v<T, wire::ForceBatch>) {
          for (const wire::ForceRec& r : m.recs) {
            AtomState& st = nd.atoms.at(r.id);
            acc3(m.long_range ? st.f_long : st.f_short, r.f);
          }
        } else if constexpr (std::is_same_v<T, wire::MeshCharge>) {
          // Wrap-add the halo charges into the owned block; remember which
          // points the source touched so the potential halo can route
          // straight back.
          for (std::size_t i = 0; i < m.idx.size(); ++i) {
            const std::int32_t idx = m.idx[i];
            const int x = idx % M;
            const int y = (idx / M) % M;
            const int z = idx / (M * M);
            const std::size_t l = block_index(nd, x, y, z);
            nd.mesh_q[l] = fixed::wrap_add(nd.mesh_q[l], m.q[i]);
          }
          nd.halo_req[src] = m.idx;
        } else if constexpr (std::is_same_v<T, wire::MeshPhi>) {
          for (std::size_t i = 0; i < m.idx.size(); ++i)
            nd.halo_phi[m.idx[i]] = m.phi[i];
        } else if constexpr (std::is_same_v<T, wire::FftSegment>) {
          if (m.kind == 0) {
            // Gather: segment lands in the owner's assembled line.
            std::copy(m.pts.begin(), m.pts.end(),
                      nd.fft_line.begin() + m.s0);
          } else {
            // Scatter: transformed points return to the holder's slab at
            // the line's (a, b) coordinates on the message's axis.
            for (std::size_t i = 0; i < m.pts.size(); ++i) {
              const int k = m.s0 + static_cast<int>(i);
              int x, y, z;
              if (m.axis == 0) {
                x = k; y = m.a; z = m.b;
              } else if (m.axis == 1) {
                x = m.a; y = k; z = m.b;
              } else {
                x = m.a; y = m.b; z = k;
              }
              nd.fft_grid[block_index(nd, x, y, z)] = m.pts[i];
            }
          }
        } else if constexpr (std::is_same_v<T, wire::MeshEnergyBlock>) {
          for (std::size_t i = 0; i < m.gidx.size(); ++i) {
            master_q_full_[m.gidx[i]] = m.q[i];
            master_phi_full_[m.gidx[i]] = m.phi[i];
          }
        } else if constexpr (std::is_same_v<T, wire::KineticTerms>) {
          for (std::size_t i = 0; i < m.id.size(); ++i)
            red_kin_[m.id[i]] = m.term[i];
        } else if constexpr (std::is_same_v<T, wire::ScaleVelocities>) {
          for (auto& [id, st] : nd.atoms) scale_velocity(st.vel, m.lambda);
        } else if constexpr (std::is_same_v<T, wire::MigrationBatch>) {
          for (std::size_t i = 0; i < m.id.size(); ++i)
            nd.atoms[m.id[i]] = m.atoms[i];
        } else if constexpr (std::is_same_v<T, wire::DirectoryUpdate>) {
          for (std::size_t i = 0; i < m.id.size(); ++i)
            directory_[m.id[i]] = m.home[i];
        }
      },
      p);
}

void VirtualMachine::sync_retransmit_ledger() {
  const FaultCounters& fc = transport_.counters();
  ledger_.retransmit.messages += fc.retransmits - retrans_synced_msgs_;
  ledger_.retransmit.bytes += fc.retransmit_bytes - retrans_synced_bytes_;
  retrans_synced_msgs_ = fc.retransmits;
  retrans_synced_bytes_ = fc.retransmit_bytes;
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

std::vector<VirtualMachine::AtomRecord>& VirtualMachine::records_of(
    NodeState& nd, std::int32_t sb) {
  return nd.recs[sb];
}

void VirtualMachine::touch_partial(NodeState& nd, std::int32_t id) {
  if (!nd.ptouched[id]) {
    nd.ptouched[id] = 1;
    nd.partial[id] = {0, 0, 0};
    nd.plist.push_back(id);
  }
}

Vec3i VirtualMachine::pos_of(const NodeState& nd, std::int32_t id) const {
  const auto it = nd.atoms.find(id);
  return it != nd.atoms.end() ? it->second.pos : nd.rpos[id];
}

// ---------------------------------------------------------------------------
// Range-limited choreography (shared by both compute passes).
// ---------------------------------------------------------------------------

void VirtualMachine::position_multicast() {
  obs::Tracer::Span phase_span(tracer_, "vm.position_multicast");
  const int nnodes = node_count();
  for (NodeState& nd : nodes_) nd.recs.clear();
  for (int n = 0; n < nnodes; ++n) {
    obs::Tracer::Span node_span(tracer_, "vm.node.multicast", n + 1);
    NodeState& nd = nodes_[n];
    for (const auto& [sb, ids] : nd.bins) {
      std::vector<AtomRecord> payload;
      payload.reserve(ids.size());
      for (std::int32_t a : ids) payload.push_back({a, nd.atoms.at(a).pos});
      for (int dst : consumers_[sb])
        deliver(ledger_.position, kChPosition, n, dst,
                wire::PositionBatch{sb, payload});
    }
  }
  transport_.flush();  // pair phase reads the consumer mailboxes
}

void VirtualMachine::pair_phase() {
  obs::Tracer::Span phase_span(tracer_, "vm.compute");
  const int nnodes = node_count();
  for (int n = 0; n < nnodes; ++n) {
    obs::Tracer::Span node_span(tracer_, "vm.node.compute", n + 1);
    NodeState& nd = nodes_[n];
    core::NodeCounters& nc = workload_.nodes[n];
    for (std::int32_t hidx : node_subboxes_[n]) {
      const Vec3i h = geom_->coords_of(hidx);
      for (std::int32_t dz : geom_->tower_dz()) {
        const std::int32_t tidx =
            geom_->index_of(geom_->wrap_coords({h.x, h.y, h.z + dz}));
        const auto t_it = nd.recs.find(tidx);
        if (t_it == nd.recs.end() || t_it->second.empty()) continue;
        const auto& tower = t_it->second;
        for (const Vec3i& poff : geom_->plate_half()) {
          if (!geom_->owns_pair(h, dz, poff)) continue;
          const std::int32_t pidx = geom_->index_of(
              geom_->wrap_coords({h.x + poff.x, h.y + poff.y, h.z}));
          const auto p_it = nd.recs.find(pidx);
          if (p_it == nd.recs.end() || p_it->second.empty()) continue;
          const auto& plate = p_it->second;
          const bool same = tidx == pidx;
          for (std::size_t a = 0; a < tower.size(); ++a) {
            const std::size_t b0 = same ? a + 1 : 0;
            for (std::size_t b = b0; b < plate.size(); ++b) {
              ++nc.pairs_considered;
              ++ledger_.pairs_considered;
              const PairResult pr =
                  eval_pair(np_, tower[a].id, plate[b].id, tower[a].pos,
                            plate[b].pos, false);
              if (pr.status == PairStatus::kFailedMatch) continue;
              ++nc.ppip_queue;
              if (pr.status != PairStatus::kComputed) continue;
              ++nc.interactions;
              ++ledger_.interactions;
              touch_partial(nd, pr.lo);
              acc3(nd.partial[pr.lo], pr.f);
              touch_partial(nd, pr.hi);
              sub3(nd.partial[pr.hi], pr.f);
            }
          }
        }
      }
    }
  }
}

void VirtualMachine::bond_dispatch_and_terms(bool long_range) {
  const Topology& top = sys_.top;
  const int nnodes = node_count();
  if (!long_range) {
    // Bond-destination position dispatch: each node sends the positions
    // of its home atoms to every node evaluating a term (bonded or
    // correction) whose destination atom reads them. The long-range
    // correction pass reuses these mailboxes: positions have not changed
    // since the cycle's last short-range dispatch.
    obs::Tracer::Span sp(tracer_, "vm.bond_dispatch");
    for (int n = 0; n < nnodes; ++n) {
      NodeState& nd = nodes_[n];
      std::vector<std::vector<AtomRecord>> out(nnodes);
      std::vector<int> dsts;
      for (const auto& [sb, ids] : nd.bins) {
        for (std::int32_t a : ids) {
          if (dest_feed_[a].empty()) continue;
          dsts.clear();
          for (std::int32_t dest : dest_feed_[a]) {
            const int dst = directory_[dest];
            if (dst == n) continue;
            if (std::find(dsts.begin(), dsts.end(), dst) == dsts.end())
              dsts.push_back(dst);
          }
          const Vec3i p = nd.atoms.at(a).pos;
          for (int dst : dsts) out[dst].push_back({a, p});
        }
      }
      for (int dst = 0; dst < nnodes; ++dst) {
        if (out[dst].empty()) continue;
        deliver(ledger_.bond, kChBond, n, dst,
                wire::BondPositions{std::move(out[dst])});
      }
    }
    transport_.flush();  // term evaluation reads the rpos mailboxes
  }

  obs::Tracer::Span sp(tracer_,
                       long_range ? "vm.correction" : "vm.bond_terms");
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    core::NodeCounters& nc = workload_.nodes[n];
    if (!long_range) {
      auto apply = [&](const bonded::TermForces& t) {
        ++nc.bond_terms;
        Vec3d tp[4];
        for (int i = 0; i < t.n; ++i)
          tp[i] = lat_.to_phys(pos_of(nd, t.atom[i]));
        const QuantizedTerm qt = quantize_term(np_, t, tp, false);
        for (int i = 0; i < qt.n; ++i) {
          touch_partial(nd, qt.atom[i]);
          acc3(nd.partial[qt.atom[i]], qt.f[i]);
        }
      };
      for (std::int32_t k : nd.bonds) {
        const BondTerm& b = top.bonds[k];
        apply(bonded::eval_bond(b, lat_.to_phys(pos_of(nd, b.i)),
                                lat_.to_phys(pos_of(nd, b.j)), sys_.box));
      }
      for (std::int32_t k : nd.angles) {
        const AngleTerm& a = top.angles[k];
        apply(bonded::eval_angle(a, lat_.to_phys(pos_of(nd, a.i)),
                                 lat_.to_phys(pos_of(nd, a.j)),
                                 lat_.to_phys(pos_of(nd, a.k)), sys_.box));
      }
      for (std::int32_t k : nd.dihedrals) {
        const DihedralTerm& d = top.dihedrals[k];
        apply(bonded::eval_dihedral(d, lat_.to_phys(pos_of(nd, d.i)),
                                    lat_.to_phys(pos_of(nd, d.j)),
                                    lat_.to_phys(pos_of(nd, d.k)),
                                    lat_.to_phys(pos_of(nd, d.l)),
                                    sys_.box));
      }
      for (std::int32_t k : nd.exclusions) {
        const ExclusionPair& e = top.exclusions[k];
        const CorrectionResult cr = eval_correction_short(
            np_, e, pos_of(nd, e.i), pos_of(nd, e.j), false);
        if (!cr.computed) continue;
        touch_partial(nd, e.i);
        acc3(nd.partial[e.i], cr.f);
        touch_partial(nd, e.j);
        sub3(nd.partial[e.j], cr.f);
      }
    } else {
      for (std::int32_t k : nd.exclusions) {
        const ExclusionPair& e = top.exclusions[k];
        ++nc.correction_pairs;
        const CorrectionResult cr = eval_correction_long(
            np_, e, pos_of(nd, e.i), pos_of(nd, e.j), false);
        touch_partial(nd, e.i);
        acc3(nd.partial[e.i], cr.f);
        touch_partial(nd, e.j);
        sub3(nd.partial[e.j], cr.f);
      }
    }
  }
}

void VirtualMachine::force_return(bool long_range) {
  obs::Tracer::Span phase_span(tracer_, "vm.force_return");
  const int nnodes = node_count();
  for (int n = 0; n < nnodes; ++n) {
    obs::Tracer::Span node_span(tracer_, "vm.node.force_return", n + 1);
    NodeState& nd = nodes_[n];
    std::sort(nd.plist.begin(), nd.plist.end());
    std::vector<std::vector<wire::ForceRec>> out(nnodes);
    for (std::int32_t id : nd.plist) {
      out[directory_[id]].push_back({id, nd.partial[id]});
      nd.partial[id] = {0, 0, 0};
      nd.ptouched[id] = 0;
    }
    nd.plist.clear();
    for (int dst = 0; dst < nnodes; ++dst) {
      if (out[dst].empty()) continue;
      deliver(ledger_.force, kChForce, n, dst,
              wire::ForceBatch{long_range, std::move(out[dst])});
    }
  }
  transport_.flush();  // the vsite round reads the home accumulators
}

void VirtualMachine::vsite_force_round(bool long_range) {
  const Topology& top = sys_.top;
  if (top.virtual_sites.empty()) return;
  const int nnodes = node_count();
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    if (nd.vsites.empty()) continue;
    std::vector<std::vector<wire::ForceRec>> out(nnodes);
    auto share = [&](std::int32_t target, const Vec3l& f) {
      out[directory_[target]].push_back({target, f});
    };
    for (std::int32_t k : nd.vsites) {
      const VirtualSite& v = top.virtual_sites[k];
      AtomState& site = nd.atoms.at(v.site);
      Vec3l& f = long_range ? site.f_long : site.f_short;
      const VsiteForceShare s = split_virtual_site_force(v, f);
      f = {0, 0, 0};
      share(v.h1, s.fh);
      share(v.h2, s.fh);
      share(v.o, s.fo);
    }
    for (int dst = 0; dst < nnodes; ++dst) {
      if (out[dst].empty()) continue;
      deliver(ledger_.force, kChForce, n, dst,
              wire::ForceBatch{long_range, std::move(out[dst])});
    }
  }
  transport_.flush();
}

void VirtualMachine::compute_short_forces() {
  for (NodeState& nd : nodes_)
    for (auto& [id, st] : nd.atoms) st.f_short = {0, 0, 0};
  position_multicast();
  pair_phase();
  bond_dispatch_and_terms(false);
  force_return(false);
  vsite_force_round(false);
}

// ---------------------------------------------------------------------------
// Long-range (GSE) choreography.
// ---------------------------------------------------------------------------

void VirtualMachine::spread_and_halo() {
  obs::Tracer::Span sp(tracer_, "vm.gse.spread");
  const Topology& top = sys_.top;
  const int nnodes = node_count();
  const int M = gse_params_.mesh;
  const Vec3i pg = geom_->config().node_grid;

  for (NodeState& nd : nodes_) {
    for (std::int32_t idx : nd.touched) {
      nd.spread_q[idx] = 0;
      nd.stouched[idx] = 0;
    }
    nd.touched.clear();
    for (auto& l : nd.halo_req) l.clear();
    std::fill(nd.mesh_q.begin(), nd.mesh_q.end(), 0);
  }

  // Node-local spreading of each node's home atoms.
  for (int n = 0; n < nnodes; ++n) {
    obs::Tracer::Span node_span(tracer_, "vm.node.spread", n + 1);
    NodeState& nd = nodes_[n];
    core::NodeCounters& nc = workload_.nodes[n];
    for (const auto& [sb, ids] : nd.bins) {
      for (std::int32_t a : ids) {
        const double qi = top.charge[a];
        if (qi == 0.0) continue;
        const Vec3d r = lat_.to_phys(nd.atoms.at(a).pos);
        spread_atom(np_, qi, r, [&](std::size_t idx, std::int64_t dq) {
          ++nc.spread_ops;
          const auto i32 = static_cast<std::int32_t>(idx);
          if (!nd.stouched[idx]) {
            nd.stouched[idx] = 1;
            nd.touched.push_back(i32);
          }
          nd.spread_q[idx] = fixed::wrap_add(nd.spread_q[idx], dq);
        });
      }
    }
  }

  // Charge halo: each node's touched mesh points, grouped by owning node,
  // are wrap-added into the owners' block accumulators. The owner records
  // which points each source touched -- the same lists route the
  // potential halo back after the convolution.
  auto owner_of_mesh = [&](std::int32_t idx) {
    const int x = idx % M;
    const int y = (idx / M) % M;
    const int z = idx / (M * M);
    return (mesh_owner_[2][z] * pg.y + mesh_owner_[1][y]) * pg.x +
           mesh_owner_[0][x];
  };
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    std::sort(nd.touched.begin(), nd.touched.end());
    std::map<int, std::vector<std::int32_t>> by_owner;
    for (std::int32_t idx : nd.touched)
      by_owner[owner_of_mesh(idx)].push_back(idx);
    for (auto& [o, list] : by_owner) {
      std::vector<std::int64_t> charge;
      charge.reserve(list.size());
      for (std::int32_t idx : list) charge.push_back(nd.spread_q[idx]);
      deliver(ledger_.mesh, kChMesh, n, o,
              wire::MeshCharge{std::move(list), std::move(charge)});
    }
  }
  transport_.flush();  // the owned-block accumulators are read below

  for (NodeState& nd : nodes_) {
    for (std::size_t l = 0; l < nd.mesh_q.size(); ++l) {
      nd.scratch_q[l] =
          static_cast<double>(nd.mesh_q[l]) / kMeshChargeScale;
      nd.fft_grid[l] = fft::cplx{nd.scratch_q[l], 0.0};
    }
  }
}

void VirtualMachine::distributed_fft_stage(int axis, bool inverse) {
  // One axis pass of the distributed 3D FFT (the fft::DistFftPlan
  // pattern): every mesh line along `axis` is assigned round-robin to one
  // node of the torus row holding its segments; the owner gathers the
  // segments, runs the shared 1-D plan, and scatters them back. The
  // gathered line is contiguous in ascending axis coordinate, so the
  // arithmetic is bitwise identical to fft::Fft3D's strided transform.
  const int M = gse_params_.mesh;
  const Vec3i pg = geom_->config().node_grid;
  const int pa = axis == 0 ? pg.x : axis == 1 ? pg.y : pg.z;
  std::vector<int> row_ord;
  if (axis == 0)
    row_ord.assign(static_cast<std::size_t>(pg.y) * pg.z, 0);
  else if (axis == 1)
    row_ord.assign(static_cast<std::size_t>(pg.x) * pg.z, 0);
  else
    row_ord.assign(static_cast<std::size_t>(pg.x) * pg.y, 0);
  for (int a = 0; a < M; ++a) {
    for (int b = 0; b < M; ++b) {
      // axis 0: (y, z) = (a, b); axis 1: (x, z) = (a, b);
      // axis 2: (x, y) = (a, b).
      int rid, owner;
      if (axis == 0) {
        const int gy = mesh_owner_[1][a], gz = mesh_owner_[2][b];
        rid = gz * pg.y + gy;
        const int oc = row_ord[rid]++ % pa;
        owner = (gz * pg.y + gy) * pg.x + oc;
      } else if (axis == 1) {
        const int gx = mesh_owner_[0][a], gz = mesh_owner_[2][b];
        rid = gz * pg.x + gx;
        const int oc = row_ord[rid]++ % pa;
        owner = (gz * pg.y + oc) * pg.x + gx;
      } else {
        const int gx = mesh_owner_[0][a], gy = mesh_owner_[1][b];
        rid = gy * pg.x + gx;
        const int oc = row_ord[rid]++ % pa;
        owner = (oc * pg.y + gy) * pg.x + gx;
      }

      auto point = [&](const NodeState& nd, int k) -> std::size_t {
        int x, y, z;
        if (axis == 0) {
          x = k; y = a; z = b;
        } else if (axis == 1) {
          x = a; y = k; z = b;
        } else {
          x = a; y = b; z = k;
        }
        return (static_cast<std::size_t>(z - nd.block_lo.z) * nd.block_sz.y +
                (y - nd.block_lo.y)) *
                   nd.block_sz.x +
               (x - nd.block_lo.x);
      };
      auto holder_index = [&](int hc) {
        if (axis == 0) return owner - owner % pg.x + hc;
        if (axis == 1) {
          const int gx = owner % pg.x;
          const int gz = owner / (pg.x * pg.y);
          return (gz * pg.y + hc) * pg.x + gx;
        }
        const int gx = owner % pg.x;
        const int gy = (owner / pg.x) % pg.y;
        return (hc * pg.y + gy) * pg.x + gx;
      };

      // Gather segments to the owner's assembled line.
      for (int hc = 0; hc < pa; ++hc) {
        const int s0 = mesh_start_[axis][hc];
        const int s1 = mesh_start_[axis][hc + 1];
        if (s0 == s1) continue;
        const int holder = holder_index(hc);
        const NodeState& hd = nodes_[holder];
        std::vector<fft::cplx> seg(static_cast<std::size_t>(s1 - s0));
        for (int k = s0; k < s1; ++k)
          seg[static_cast<std::size_t>(k - s0)] = hd.fft_grid[point(hd, k)];
        deliver(ledger_.fft, kChFft, holder, owner,
                wire::FftSegment{static_cast<std::uint8_t>(axis), 0, a, b,
                                 s0, std::move(seg)});
      }
      transport_.flush();  // the owner transforms the assembled line

      std::vector<fft::cplx>& line = nodes_[owner].fft_line;
      if (inverse)
        fft1_->inverse(line.data());
      else
        fft1_->forward(line.data());

      // Scatter segments back to their holders.
      for (int hc = 0; hc < pa; ++hc) {
        const int s0 = mesh_start_[axis][hc];
        const int s1 = mesh_start_[axis][hc + 1];
        if (s0 == s1) continue;
        const int holder = holder_index(hc);
        std::vector<fft::cplx> seg(line.begin() + s0, line.begin() + s1);
        deliver(ledger_.fft, kChFft, owner, holder,
                wire::FftSegment{static_cast<std::uint8_t>(axis), 1, a, b,
                                 s0, std::move(seg)});
      }
      // The next line may read any holder's slab: settle this one first.
      transport_.flush();
    }
  }
}

void VirtualMachine::convolve_and_energy() {
  // Quantize the block-owned potentials, then gather (Q, phi) to the
  // master node for the ordered reciprocal-energy reduction -- the sum
  // must run in global mesh-index order to match the engine's serial
  // convolve bit for bit.
  const int M = gse_params_.mesh;
  const int nnodes = node_count();
  const std::size_t mesh_total = static_cast<std::size_t>(M) * M * M;
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    // Local quantization of the owned potentials, plus the (q, phi) block
    // payload for the master's ordered energy reduction.
    std::vector<std::uint64_t> gidx;
    std::vector<double> qv, phiv;
    gidx.reserve(nd.mesh_q.size());
    qv.reserve(nd.mesh_q.size());
    phiv.reserve(nd.mesh_q.size());
    std::size_t l = 0;
    for (int z = nd.block_lo.z; z < nd.block_lo.z + nd.block_sz.z; ++z)
      for (int y = nd.block_lo.y; y < nd.block_lo.y + nd.block_sz.y; ++y)
        for (int x = nd.block_lo.x; x < nd.block_lo.x + nd.block_sz.x;
             ++x, ++l) {
          const double phi = nd.fft_grid[l].real();
          nd.mesh_phi[l] = fixed::quantize(phi, kPhiScale);
          gidx.push_back((static_cast<std::uint64_t>(z) * M + y) * M + x);
          qv.push_back(nd.scratch_q[l]);
          phiv.push_back(phi);
        }
    if (gidx.empty()) continue;
    deliver(ledger_.reduce, kChReduce, n, 0,
            wire::MeshEnergyBlock{std::move(gidx), std::move(qv),
                                  std::move(phiv)});
  }
  transport_.flush();  // the ordered reduction reads the gathered blocks
  double energy = 0.0;
  for (std::size_t i = 0; i < mesh_total; ++i)
    energy += master_phi_full_[i] * master_q_full_[i];
  const double h = gse_->mesh_spacing();
  e_recip_ = 0.5 * h * h * h * energy;
}

void VirtualMachine::phi_halo_back_and_interpolate() {
  obs::Tracer::Span sp(tracer_, "vm.gse.interpolate");
  const Topology& top = sys_.top;
  const int nnodes = node_count();
  const int M = gse_params_.mesh;

  // Potential halo-back: every owner returns phi at exactly the points
  // each source spread to (recorded in halo_req during the charge halo).
  for (int o = 0; o < nnodes; ++o) {
    NodeState& od = nodes_[o];
    for (int src = 0; src < nnodes; ++src) {
      const auto& list = od.halo_req[src];
      if (list.empty()) continue;
      std::vector<std::int64_t> phis;
      phis.reserve(list.size());
      for (std::int32_t idx : list) {
        const int x = idx % M;
        const int y = (idx / M) % M;
        const int z = idx / (M * M);
        const std::size_t l =
            (static_cast<std::size_t>(z - od.block_lo.z) * od.block_sz.y +
             (y - od.block_lo.y)) *
                od.block_sz.x +
            (x - od.block_lo.x);
        phis.push_back(od.mesh_phi[l]);
      }
      deliver(ledger_.mesh, kChMesh, o, src,
              wire::MeshPhi{list, std::move(phis)});
    }
  }
  transport_.flush();  // interpolation reads the node-local phi halos

  // Force interpolation against the node-local phi halo; each atom's
  // contribution lands directly on the home atom.
  for (int n = 0; n < nnodes; ++n) {
    obs::Tracer::Span node_span(tracer_, "vm.node.interpolate", n + 1);
    NodeState& nd = nodes_[n];
    core::NodeCounters& nc = workload_.nodes[n];
    for (const auto& [sb, ids] : nd.bins) {
      for (std::int32_t a : ids) {
        const double qi = top.charge[a];
        if (qi == 0.0) continue;
        AtomState& st = nd.atoms.at(a);
        const Vec3l acc = interpolate_atom(
            np_, qi, lat_.to_phys(st.pos),
            [&](std::size_t idx) { return nd.halo_phi[idx]; },
            &nc.interp_ops);
        acc3(st.f_long, acc);
      }
    }
  }
}

void VirtualMachine::compute_long_forces() {
  for (NodeState& nd : nodes_)
    for (auto& [id, st] : nd.atoms) st.f_long = {0, 0, 0};
  spread_and_halo();
  {
    obs::Tracer::Span sp(tracer_, "vm.gse.fft");
    distributed_fft_stage(0, false);
    distributed_fft_stage(1, false);
    distributed_fft_stage(2, false);
    const int M = gse_params_.mesh;
    const std::vector<double>& green = gse_->green();
    for (NodeState& nd : nodes_) {
      std::size_t l = 0;
      for (int z = nd.block_lo.z; z < nd.block_lo.z + nd.block_sz.z; ++z)
        for (int y = nd.block_lo.y; y < nd.block_lo.y + nd.block_sz.y; ++y)
          for (int x = nd.block_lo.x; x < nd.block_lo.x + nd.block_sz.x;
               ++x, ++l)
            nd.fft_grid[l] *=
                green[(static_cast<std::size_t>(z) * M + y) * M + x];
    }
    distributed_fft_stage(2, true);
    distributed_fft_stage(1, true);
    distributed_fft_stage(0, true);
    convolve_and_energy();
  }
  phi_halo_back_and_interpolate();
  bond_dispatch_and_terms(true);
  force_return(true);
  vsite_force_round(true);
}

// ---------------------------------------------------------------------------
// Integration, constraints, thermostat.
// ---------------------------------------------------------------------------

void VirtualMachine::kick_all(bool long_kick) {
  const auto& coef = long_kick ? coefs_.kick_long : coefs_.kick_short;
  for (NodeState& nd : nodes_)
    for (auto& [id, st] : nd.atoms)
      kick_atom(st.vel, long_kick ? st.f_long : st.f_short, coef[id]);
}

void VirtualMachine::drift_and_constrain() {
  const bool constrained = !sys_.top.constraints.empty();
  for (NodeState& nd : nodes_) {
    // Pre-drift references for the co-resident constraint units.
    std::vector<std::int32_t> cunits;
    std::vector<std::vector<Vec3d>> refs;
    if (constrained) {
      for (std::int32_t u : nd.units) {
        if (group_constraints_[u].empty()) continue;
        cunits.push_back(u);
        std::vector<Vec3d> ref(units_[u].size());
        for (std::size_t k = 0; k < units_[u].size(); ++k)
          ref[k] = lat_.to_phys(nd.atoms.at(units_[u][k]).pos);
        refs.push_back(std::move(ref));
      }
    }
    for (auto& [id, st] : nd.atoms)
      st.pos = drift_atom(st.pos, st.vel, coefs_.drift);
    for (std::size_t c = 0; c < cunits.size(); ++c) {
      const std::int32_t u = cunits[c];
      const auto& unit = units_[u];
      const std::size_t nu = unit.size();
      std::vector<Vec3d> upos(nu);
      std::vector<Vec3i> ulat(nu);
      std::vector<Vec3l> uvel(nu);
      for (std::size_t k = 0; k < nu; ++k) {
        AtomState& st = nd.atoms.at(unit[k]);
        ulat[k] = st.pos;
        upos[k] = lat_.to_phys(st.pos);
        uvel[k] = st.vel;
      }
      if (!shake_unit(np_, unit, group_constraints_[u], acfg_.sim.dt,
                      refs[c], upos, ulat, uvel))
        throw std::runtime_error("VirtualMachine: SHAKE failed to converge");
      for (std::size_t k = 0; k < nu; ++k) {
        AtomState& st = nd.atoms.at(unit[k]);
        st.pos = ulat[k];
        st.vel = uvel[k];
      }
    }
  }
}

void VirtualMachine::finish_drift() {
  const Topology& top = sys_.top;
  if (top.virtual_sites.empty()) return;
  const int nnodes = node_count();
  // Parent position dispatch for off-node virtual sites.
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    std::vector<std::vector<AtomRecord>> out(nnodes);
    std::vector<int> dsts;
    for (const auto& [sb, ids] : nd.bins) {
      for (std::int32_t a : ids) {
        if (vsite_feed_[a].empty()) continue;
        dsts.clear();
        for (std::int32_t site : vsite_feed_[a]) {
          const int dst = directory_[site];
          if (dst == n) continue;
          if (std::find(dsts.begin(), dsts.end(), dst) == dsts.end())
            dsts.push_back(dst);
        }
        const Vec3i p = nd.atoms.at(a).pos;
        for (int dst : dsts) out[dst].push_back({a, p});
      }
    }
    for (int dst = 0; dst < nnodes; ++dst) {
      if (out[dst].empty()) continue;
      deliver(ledger_.bond, kChBond, n, dst,
              wire::BondPositions{std::move(out[dst])});
    }
  }
  transport_.flush();  // site rebuild reads the parent positions
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    for (std::int32_t k : nd.vsites) {
      const VirtualSite& v = top.virtual_sites[k];
      AtomState& st = nd.atoms.at(v.site);
      st.pos = rebuild_virtual_site(np_, v, lat_.to_phys(pos_of(nd, v.o)),
                                    lat_.to_phys(pos_of(nd, v.h1)),
                                    lat_.to_phys(pos_of(nd, v.h2)));
      st.vel = {0, 0, 0};
    }
  }
}

void VirtualMachine::rattle_groups() {
  if (sys_.top.constraints.empty()) return;
  for (NodeState& nd : nodes_) {
    for (std::int32_t u : nd.units) {
      if (group_constraints_[u].empty()) continue;
      const auto& unit = units_[u];
      const std::size_t nu = unit.size();
      std::vector<Vec3d> upos(nu);
      std::vector<Vec3l> uvel(nu);
      for (std::size_t k = 0; k < nu; ++k) {
        const AtomState& st = nd.atoms.at(unit[k]);
        upos[k] = lat_.to_phys(st.pos);
        uvel[k] = st.vel;
      }
      if (!rattle_unit(np_, unit, group_constraints_[u], upos, uvel))
        throw std::runtime_error("VirtualMachine: RATTLE failed to converge");
      for (std::size_t k = 0; k < nu; ++k)
        nd.atoms.at(unit[k]).vel = uvel[k];
    }
  }
}

void VirtualMachine::apply_thermostat() {
  // The one order-sensitive double reduction of the cycle: per-atom
  // kinetic terms are gathered to the master node and summed in global
  // atom-index order, exactly the engine's loop order.
  const Topology& top = sys_.top;
  const int nnodes = node_count();
  for (int n = 0; n < nnodes; ++n) {
    const NodeState& nd = nodes_[n];
    wire::KineticTerms out;
    out.id.reserve(nd.atoms.size());
    out.term.reserve(nd.atoms.size());
    for (const auto& [id, st] : nd.atoms) {
      out.id.push_back(id);
      out.term.push_back(kinetic_term(top.mass[id], st.vel));
    }
    if (out.id.empty()) continue;
    deliver(ledger_.reduce, kChReduce, n, 0, std::move(out));
  }
  transport_.flush();  // the master sums in global atom-index order
  double mv2 = 0.0;
  for (std::int32_t i = 0; i < top.natoms; ++i) mv2 += red_kin_[i];
  const int k = std::max(1, acfg_.sim.long_range_every);
  const double lambda = thermostat_lambda(top, mv2, k * acfg_.sim.dt,
                                          acfg_.sim.target_temperature,
                                          acfg_.sim.berendsen_tau);
  for (int n = 0; n < nnodes; ++n)
    deliver(ledger_.reduce, kChReduce, 0, n, wire::ScaleVelocities{lambda});
  transport_.flush();
}

// ---------------------------------------------------------------------------
// Migration by message.
// ---------------------------------------------------------------------------

void VirtualMachine::migrate_by_message() {
  const int nnodes = node_count();
  for (int n = 0; n < nnodes; ++n) {
    NodeState& nd = nodes_[n];
    std::vector<std::vector<std::int32_t>> move_units(nnodes);
    std::int64_t moved_atoms = 0;
    for (std::int32_t u : nd.units) {
      const std::int32_t head = units_[u][0];
      const Vec3i sb = geom_->subbox_of(lat_.to_phys(nd.atoms.at(head).pos));
      unit_sb_[u] = geom_->index_of(sb);
      const int dst = geom_->node_index_of(sb);
      if (dst != n) move_units[dst].push_back(u);
    }
    wire::DirectoryUpdate moved;
    for (int dst = 0; dst < nnodes; ++dst) {
      if (move_units[dst].empty()) continue;
      // The sender evicts the unit and updates the (replicated) directory
      // immediately; the receiver's copy lands via the reliable channel.
      wire::MigrationBatch payload;
      for (std::int32_t u : move_units[dst]) {
        for (std::int32_t a : units_[u]) {
          payload.id.push_back(a);
          payload.atoms.push_back(nd.atoms.at(a));
          nd.atoms.erase(a);
          directory_[a] = dst;
          moved.id.push_back(a);
          moved.home.push_back(dst);
        }
      }
      moved_atoms += static_cast<std::int64_t>(payload.id.size());
      deliver(ledger_.migration, kChMigration, n, dst, std::move(payload));
    }
    // Directory announcement: every other node learns the new homes
    // (idempotent on the replicated directory -- the sender already wrote
    // the same entries).
    if (moved_atoms > 0)
      for (int o = 0; o < nnodes; ++o)
        if (o != n)
          deliver(ledger_.migration, kChMigration, n, o, moved);
  }
  transport_.flush();  // unit reassignment reads the migrated atom states
  for (NodeState& nd : nodes_) nd.units.clear();
  for (std::size_t u = 0; u < units_.size(); ++u)
    nodes_[directory_[units_[u][0]]].units.push_back(
        static_cast<std::int32_t>(u));
  rebuild_bins_and_terms();
}

// ---------------------------------------------------------------------------
// The distributed MTS cycle.
// ---------------------------------------------------------------------------

void VirtualMachine::run_one_cycle() {
  const int k = std::max(1, acfg_.sim.long_range_every);
  obs::Tracer::Span cycle_span(tracer_, "vm.mts_cycle");
  for (NodeState& nd : nodes_) nd.sent = 0;
  if (acfg_.migration_interval > 0 &&
      steps_ % acfg_.migration_interval == 0) {
    obs::Tracer::Span sp(tracer_, "vm.migrate");
    migrate_by_message();
    if (metrics_) metrics_->count(mid_.migrations, 0, 1);
  }
  {
    obs::Tracer::Span sp(tracer_, "vm.integrate");
    kick_all(true);
  }
  for (int s = 0; s < k; ++s) {
    obs::Tracer::Span step_span(tracer_, "vm.step");
    {
      obs::Tracer::Span sp(tracer_, "vm.integrate");
      kick_all(false);
      drift_and_constrain();
      finish_drift();
    }
    compute_short_forces();
    {
      obs::Tracer::Span sp(tracer_, "vm.integrate");
      kick_all(false);
      rattle_groups();
    }
    ++steps_;
    ++workload_.steps_accumulated;
    if (metrics_) metrics_->count(mid_.steps, 0, 1);
  }
  compute_long_forces();
  {
    obs::Tracer::Span sp(tracer_, "vm.integrate");
    kick_all(true);
    rattle_groups();
    if (acfg_.sim.thermostat) apply_thermostat();
  }
  std::int64_t mx = 0;
  for (const NodeState& nd : nodes_) mx = std::max(mx, nd.sent);
  ledger_.max_messages_per_node =
      std::max(ledger_.max_messages_per_node, mx);
  sync_retransmit_ledger();
  publish_metrics();
}

void VirtualMachine::run_cycles(int ncycles) {
  if (!dynamic_)
    throw std::logic_error(
        "VirtualMachine::run_cycles: requires the dynamics-mode "
        "constructor");
  const int k = std::max(1, acfg_.sim.long_range_every);
  // steps_ only ever advances in whole cycles, so steps_ / k is the
  // absolute cycle index -- stable across run_cycles calls and rollbacks,
  // which is what the crash schedule is keyed on.
  const std::int64_t target = steps_ / k + ncycles;
  while (steps_ / k < target) {
    const std::int64_t cycle = steps_ / k;
    if (injector_) {
      std::vector<int> dead;
      for (int n = 0; n < node_count(); ++n)
        if (injector_->crash_due(n, cycle)) dead.push_back(n);
      if (!dead.empty()) {
        // A node died at this cycle boundary: its volatile state (and
        // every in-flight message) is gone. On a forked wire the worker
        // process is genuinely SIGKILLed and a fresh one forked. Recovery
        // is coordinated rollback -- all nodes restore the last
        // distributed checkpoint, every channel restarts from sequence
        // zero, and the replay is bitwise identical to the fault-free
        // execution by the determinism invariants.
        obs::Tracer::Span sp(tracer_, "vm.rollback");
        for (int n : dead) {
          wire_->kill_node(n);
          wire_->restart_node(n);
        }
        FaultCounters& fc = transport_.counters();
        ++fc.crashes;
        ++fc.rollbacks;
        const std::int64_t restored_cycle = ckpt_.steps / k;
        restore_vm_checkpoint();
        fc.replayed_cycles += cycle - restored_cycle;
        continue;
      }
      const int cadence =
          std::max(1, injector_->config().checkpoint_cycles);
      if (ft_enabled_ && (!have_ckpt_ || cycle % cadence == 0))
        capture_vm_checkpoint();
    }
    try {
      run_one_cycle();
    } catch (const TransportError& te) {
      // A worker endpoint died mid-cycle without being scheduled (e.g. an
      // external SIGKILL). Same recovery as a scheduled crash: re-fork
      // the endpoint and roll everyone back to the last checkpoint.
      if (!ft_enabled_ || !have_ckpt_) throw;
      obs::Tracer::Span sp(tracer_, "vm.rollback");
      wire_->restart_node(te.node());
      FaultCounters& fc = transport_.counters();
      ++fc.crashes;
      ++fc.rollbacks;
      const std::int64_t restored_cycle = ckpt_.steps / k;
      restore_vm_checkpoint();
      fc.replayed_cycles += cycle - restored_cycle;
    }
  }
  if (tracer_ && ncycles > 0) tracer_->capture_workload(workload());
}

// ---------------------------------------------------------------------------
// Fault tolerance: distributed checkpoint, coordinated rollback.
// ---------------------------------------------------------------------------

void VirtualMachine::capture_vm_checkpoint() {
  ckpt_.steps = steps_;
  ckpt_.e_recip = e_recip_;
  ckpt_.unit_sb = unit_sb_;
  ckpt_.directory = directory_;
  ckpt_.nodes.assign(nodes_.size(), NodeSnapshot{});
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeSnapshot& s = ckpt_.nodes[n];
    s.units = nodes_[n].units;
    s.atoms.assign(nodes_[n].atoms.begin(), nodes_[n].atoms.end());
    std::sort(s.atoms.begin(), s.atoms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  have_ckpt_ = true;
}

void VirtualMachine::restore_vm_checkpoint() {
  if (!have_ckpt_)
    throw std::logic_error(
        "VirtualMachine: rollback requested with no checkpoint captured");
  steps_ = ckpt_.steps;
  e_recip_ = ckpt_.e_recip;
  unit_sb_ = ckpt_.unit_sb;
  directory_ = ckpt_.directory;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeState& nd = nodes_[n];
    nd.units = ckpt_.nodes[n].units;
    nd.atoms.clear();
    for (const auto& [id, st] : ckpt_.nodes[n].atoms) nd.atoms.emplace(id, st);
    // Scrub per-step mailbox residue (checkpoints are taken at quiescent
    // cycle boundaries, but the replay must not see partial sums).
    nd.recs.clear();
    for (std::int32_t id : nd.plist) {
      nd.partial[id] = {0, 0, 0};
      nd.ptouched[id] = 0;
    }
    nd.plist.clear();
  }
  // Both ends of every channel restart from sequence zero; anything the
  // wire still held is gone with the crashed node.
  transport_.reset_channels();
  rebuild_bins_and_terms();
}

void VirtualMachine::set_fault_config(const FaultConfig& cfg) {
  if (!dynamic_)
    throw std::logic_error(
        "VirtualMachine::set_fault_config: requires the dynamics-mode "
        "constructor");
  injector_ = std::make_unique<FaultInjector>(cfg);
  transport_.set_injector(injector_.get());
  ft_enabled_ = true;
  // Arm-time capture: a crash scheduled before the first cadence boundary
  // still has a rollback target.
  capture_vm_checkpoint();
}

void VirtualMachine::clear_fault_config() {
  transport_.set_injector(nullptr);
  injector_.reset();
  ft_enabled_ = false;
  have_ckpt_ = false;
  ckpt_ = VmCheckpoint{};
}

io::Checkpoint VirtualMachine::export_checkpoint() const {
  io::Checkpoint ck;
  ck.step = steps_;
  ck.positions = lattice_positions();
  ck.velocities = fixed_velocities();
  return ck;
}

// ---------------------------------------------------------------------------
// Diagnostics (global gathers; not part of the choreography).
// ---------------------------------------------------------------------------

std::vector<Vec3i> VirtualMachine::lattice_positions() const {
  std::vector<Vec3i> out(sys_.top.natoms, Vec3i{0, 0, 0});
  for (const NodeState& nd : nodes_)
    for (const auto& [id, st] : nd.atoms) out[id] = st.pos;
  return out;
}

std::vector<Vec3l> VirtualMachine::fixed_velocities() const {
  std::vector<Vec3l> out(sys_.top.natoms, Vec3l{0, 0, 0});
  for (const NodeState& nd : nodes_)
    for (const auto& [id, st] : nd.atoms) out[id] = st.vel;
  return out;
}

std::uint64_t VirtualMachine::state_hash() const {
  return parallel::state_hash(lattice_positions(), fixed_velocities());
}

void VirtualMachine::negate_velocities() {
  for (NodeState& nd : nodes_) {
    for (auto& [id, st] : nd.atoms) {
      st.vel.x = fixed::wrap_sub(0, st.vel.x);
      st.vel.y = fixed::wrap_sub(0, st.vel.y);
      st.vel.z = fixed::wrap_sub(0, st.vel.z);
    }
  }
}

const core::WorkloadProfile& VirtualMachine::workload() {
  for (auto& nc : workload_.nodes) {
    nc.atoms = 0;
    nc.tower_import_atoms = 0;
    nc.plate_import_atoms = 0;
    nc.constraint_bonds = 0;
  }
  std::vector<std::int64_t> bin_sz(geom_->subbox_count(), 0);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (const auto& [sb, ids] : nodes_[n].bins) {
      bin_sz[sb] = static_cast<std::int64_t>(ids.size());
      workload_.nodes[n].atoms += static_cast<std::int64_t>(ids.size());
    }
  }
  for (std::size_t n = 0; n < node_import_subboxes_.size(); ++n)
    for (std::int32_t sb : node_import_subboxes_[n])
      workload_.nodes[n].tower_import_atoms += bin_sz[sb];
  for (std::size_t u = 0; u < units_.size(); ++u) {
    if (group_constraints_[u].empty()) continue;
    workload_.nodes[directory_[units_[u][0]]].constraint_bonds +=
        static_cast<std::int64_t>(group_constraints_[u].size());
  }
  return workload_;
}

void VirtualMachine::reset_workload() {
  for (auto& nc : workload_.nodes) nc = core::NodeCounters{};
  workload_.steps_accumulated = 0;
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

void VirtualMachine::set_metrics(obs::MetricsRegistry* m) {
  metrics_ = m;
  if (!m) return;
  mid_.steps = m->counter("vm.steps");
  mid_.cycles = m->counter("vm.mts_cycles");
  mid_.migrations = m->counter("vm.migrations");
  mid_.position_messages = m->counter("vm.position_messages");
  mid_.position_bytes = m->counter("vm.position_bytes");
  mid_.force_messages = m->counter("vm.force_messages");
  mid_.force_bytes = m->counter("vm.force_bytes");
  mid_.bond_messages = m->counter("vm.bond_messages");
  mid_.bond_bytes = m->counter("vm.bond_bytes");
  mid_.mesh_messages = m->counter("vm.mesh_messages");
  mid_.mesh_bytes = m->counter("vm.mesh_bytes");
  mid_.fft_messages = m->counter("vm.fft_messages");
  mid_.fft_bytes = m->counter("vm.fft_bytes");
  mid_.migration_messages = m->counter("vm.migration_messages");
  mid_.migration_bytes = m->counter("vm.migration_bytes");
  mid_.reduce_messages = m->counter("vm.reduce_messages");
  mid_.reduce_bytes = m->counter("vm.reduce_bytes");
  mid_.fault_drops = m->counter("vm.fault.drops");
  mid_.fault_duplicates = m->counter("vm.fault.duplicates");
  mid_.fault_reorders = m->counter("vm.fault.reorders");
  mid_.fault_delays = m->counter("vm.fault.delays");
  mid_.fault_crashes = m->counter("vm.fault.crashes");
  mid_.retry_retransmits = m->counter("vm.retry.retransmits");
  mid_.retry_retransmit_bytes = m->counter("vm.retry.retransmit_bytes");
  mid_.retry_dups_suppressed = m->counter("vm.retry.dups_suppressed");
  mid_.retry_out_of_order = m->counter("vm.retry.out_of_order_held");
  mid_.retry_rollbacks = m->counter("vm.retry.rollbacks");
  mid_.retry_replayed_cycles = m->counter("vm.retry.replayed_cycles");
  mid_.wire_roundtrips = m->counter("vm.wire.roundtrips");
  mid_.wire_bytes = m->counter("vm.wire.bytes");
  pub_base_ = ledger_;
  fc_base_ = transport_.counters();
  if (wire_) ws_base_ = wire_->stats();
}

void VirtualMachine::publish_metrics() {
  if (!metrics_) {
    pub_base_ = ledger_;
    fc_base_ = transport_.counters();
    if (wire_) ws_base_ = wire_->stats();
    return;
  }
  metrics_->count(mid_.cycles, 0, 1);
  auto pub = [&](int mid_msgs, int mid_bytes, const PhaseComm& cur,
                 const PhaseComm& base) {
    metrics_->count(mid_msgs, 0, cur.messages - base.messages);
    metrics_->count(mid_bytes, 0, cur.bytes - base.bytes);
  };
  pub(mid_.position_messages, mid_.position_bytes, ledger_.position,
      pub_base_.position);
  pub(mid_.force_messages, mid_.force_bytes, ledger_.force, pub_base_.force);
  pub(mid_.bond_messages, mid_.bond_bytes, ledger_.bond, pub_base_.bond);
  pub(mid_.mesh_messages, mid_.mesh_bytes, ledger_.mesh, pub_base_.mesh);
  pub(mid_.fft_messages, mid_.fft_bytes, ledger_.fft, pub_base_.fft);
  pub(mid_.migration_messages, mid_.migration_bytes, ledger_.migration,
      pub_base_.migration);
  pub(mid_.reduce_messages, mid_.reduce_bytes, ledger_.reduce,
      pub_base_.reduce);
  const FaultCounters& fc = transport_.counters();
  auto pubc = [&](int id, std::int64_t cur, std::int64_t base) {
    metrics_->count(id, 0, cur - base);
  };
  pubc(mid_.fault_drops, fc.drops, fc_base_.drops);
  pubc(mid_.fault_duplicates, fc.duplicates, fc_base_.duplicates);
  pubc(mid_.fault_reorders, fc.reorders, fc_base_.reorders);
  pubc(mid_.fault_delays, fc.delays, fc_base_.delays);
  pubc(mid_.fault_crashes, fc.crashes, fc_base_.crashes);
  pubc(mid_.retry_retransmits, fc.retransmits, fc_base_.retransmits);
  pubc(mid_.retry_retransmit_bytes, fc.retransmit_bytes,
       fc_base_.retransmit_bytes);
  pubc(mid_.retry_dups_suppressed, fc.dups_suppressed,
       fc_base_.dups_suppressed);
  pubc(mid_.retry_out_of_order, fc.out_of_order_held,
       fc_base_.out_of_order_held);
  pubc(mid_.retry_rollbacks, fc.rollbacks, fc_base_.rollbacks);
  pubc(mid_.retry_replayed_cycles, fc.replayed_cycles,
       fc_base_.replayed_cycles);
  if (wire_) {
    const WireStats& ws = wire_->stats();
    pubc(mid_.wire_roundtrips, ws.roundtrips, ws_base_.roundtrips);
    pubc(mid_.wire_bytes, ws.bytes, ws_base_.bytes);
    ws_base_ = ws;
  }
  metrics_->flush();
  pub_base_ = ledger_;
  fc_base_ = fc;
}

// ---------------------------------------------------------------------------
// Legacy one-shot distributed evaluation.
// ---------------------------------------------------------------------------

std::vector<Vec3l> VirtualMachine::evaluate(
    const std::vector<Vec3i>& positions, CommLedger* stats) {
  const Topology& top = sys_.top;
  const int nnodes = node_count();
  const std::int64_t nsub = geom_->subbox_count();

  // --- ownership: bin atoms into subboxes by position ---
  std::vector<std::vector<std::int32_t>> bins(nsub);
  for (std::int32_t a = 0; a < top.natoms; ++a) {
    const Vec3d r = lat_.to_phys(positions[a]);
    bins[geom_->index_of(geom_->subbox_of(r))].push_back(a);
  }

  // --- per-node private memories ---
  // Each node stores the atom records it owns or received, keyed by the
  // subbox index the data belongs to. No node ever reads another node's
  // memory; data moves only through the mailboxes below.
  struct NodeMemory {
    std::map<std::int32_t, std::vector<AtomRecord>> subbox_atoms;
  };
  std::vector<NodeMemory> nodes(nnodes);
  std::vector<std::int64_t> sent_msgs(nnodes, 0);

  // Home data placement (a node owns its own subboxes' atoms).
  for (std::int32_t sb = 0; sb < nsub; ++sb) {
    const int owner = geom_->node_index_of(geom_->coords_of(sb));
    auto& recs = nodes[owner].subbox_atoms[sb];
    for (std::int32_t a : bins[sb]) recs.push_back({a, positions[a]});
  }

  // --- phase 1: position multicast ---
  // consumers[sb] = sorted set of nodes whose tower/plate imports sb.
  std::vector<std::vector<int>> consumers(nsub);
  {
    std::vector<std::vector<char>> seen(nsub, std::vector<char>(nnodes, 0));
    for (std::int32_t hidx = 0; hidx < nsub; ++hidx) {
      const Vec3i h = geom_->coords_of(hidx);
      const int node = geom_->node_index_of(h);
      auto mark = [&](const Vec3i& c) {
        const std::int32_t idx = geom_->index_of(geom_->wrap_coords(c));
        if (!seen[idx][node]) {
          seen[idx][node] = 1;
          consumers[idx].push_back(node);
        }
      };
      for (std::int32_t dz : geom_->tower_dz()) mark({h.x, h.y, h.z + dz});
      for (const Vec3i& p : geom_->plate_half())
        mark({h.x + p.x, h.y + p.y, h.z});
    }
  }
  // Owner-node grouping: the multicast and compute phases below run node
  // by node so a tracer sees one span per virtual node. Within a node the
  // subbox order is preserved, and all accumulation is per-node state
  // combined with wrapping adds, so the regrouping is unobservable in the
  // returned forces.
  std::vector<std::vector<std::int32_t>> node_subboxes(nnodes);
  for (std::int32_t sb = 0; sb < nsub; ++sb)
    node_subboxes[geom_->node_index_of(geom_->coords_of(sb))].push_back(sb);

  CommLedger st;
  {
    obs::Tracer::Span phase_span(tracer_, "vm.position_multicast");
    for (int owner = 0; owner < nnodes; ++owner) {
      obs::Tracer::Span node_span(tracer_, "vm.node.multicast", owner + 1);
      for (std::int32_t sb : node_subboxes[owner]) {
        const auto& payload = nodes[owner].subbox_atoms[sb];
        for (int dst : consumers[sb]) {
          if (dst == owner) continue;
          // One multicast message per (subbox, consumer): id + 3x32-bit
          // pos.
          nodes[dst].subbox_atoms[sb] = payload;  // message delivery
          ++st.position.messages;
          ++sent_msgs[owner];
          st.position.bytes +=
              kPosRecord * static_cast<std::int64_t>(payload.size()) +
              kMsgHeader;
        }
      }
    }
  }

  // --- phase 2: local interactions ---
  // Partial force accumulators live per node, keyed by atom id; purely
  // local state. The pairs run through the same match-unit -> PPIP kernel
  // the engine and the dynamics runtime execute.
  std::vector<std::map<std::int32_t, Vec3l>> partials(nnodes);
  {
    obs::Tracer::Span compute_span(tracer_, "vm.compute");
    for (int node = 0; node < nnodes; ++node) {
      obs::Tracer::Span node_span(tracer_, "vm.node.compute", node + 1);
      NodeMemory& mem = nodes[node];
      auto& acc = partials[node];
      for (std::int32_t hidx : node_subboxes[node]) {
        const Vec3i h = geom_->coords_of(hidx);
        for (std::int32_t dz : geom_->tower_dz()) {
          const std::int32_t tidx =
              geom_->index_of(geom_->wrap_coords({h.x, h.y, h.z + dz}));
          const auto t_it = mem.subbox_atoms.find(tidx);
          if (t_it == mem.subbox_atoms.end() || t_it->second.empty())
            continue;
          const auto& tower = t_it->second;
          for (const Vec3i& poff : geom_->plate_half()) {
            if (!geom_->owns_pair(h, dz, poff)) continue;
            const std::int32_t pidx = geom_->index_of(
                geom_->wrap_coords({h.x + poff.x, h.y + poff.y, h.z}));
            const auto p_it = mem.subbox_atoms.find(pidx);
            if (p_it == mem.subbox_atoms.end() || p_it->second.empty())
              continue;
            const auto& plate = p_it->second;
            const bool same = tidx == pidx;
            for (std::size_t a = 0; a < tower.size(); ++a) {
              for (std::size_t b = same ? a + 1 : 0; b < plate.size(); ++b) {
                ++st.pairs_considered;
                const PairResult pr =
                    eval_pair(np_, tower[a].id, plate[b].id, tower[a].pos,
                              plate[b].pos, false);
                if (pr.status != PairStatus::kComputed) continue;
                ++st.interactions;
                Vec3l& fa = acc[pr.lo];
                acc3(fa, pr.f);
                Vec3l& fb = acc[pr.hi];
                sub3(fb, pr.f);
              }
            }
          }
        }
      }
    }
  }

  // --- phase 3 + 4: force return and reduction ---
  // Home node of each atom (by position binning above).
  std::vector<int> home_node(top.natoms);
  for (std::int32_t sb = 0; sb < nsub; ++sb) {
    const int owner = geom_->node_index_of(geom_->coords_of(sb));
    for (std::int32_t a : bins[sb]) home_node[a] = owner;
  }
  std::vector<Vec3l> total(top.natoms, {0, 0, 0});
  obs::Tracer::Span return_span(tracer_, "vm.force_return");
  for (int n = 0; n < nnodes; ++n) {
    obs::Tracer::Span node_span(tracer_, "vm.node.force_return", n + 1);
    // Group this node's non-home contributions by destination: one force
    // message per (node, destination) pair with all its records.
    std::map<int, std::int64_t> batch_count;
    for (const auto& [id, f] : partials[n]) {
      const int dst = home_node[id];
      if (dst != n) ++batch_count[dst];
      // Delivery: the destination's accumulator combines with wrap adds.
      acc3(total[id], f);
    }
    for (const auto& [dst, count] : batch_count) {
      ++st.force.messages;
      ++sent_msgs[n];
      st.force.bytes += kForceRecord * count + kMsgHeader;
    }
  }

  for (int n = 0; n < nnodes; ++n)
    st.max_messages_per_node = std::max(st.max_messages_per_node,
                                        sent_msgs[n]);
  if (stats) *stats = st;
  return total;
}

}  // namespace anton::parallel
