// Pluggable byte-level transports under the SPMD virtual-node runtime.
//
// Since the SPMD split (DESIGN.md §5h) the VirtualMachine no longer runs
// the physics in the coordinator process: each rank executes its own
// NodeProgram loop (a WorkerRuntime) against its own memory, and every
// delivery is a genuine one-way frame. The transport topology is
// hub-and-spoke: workers connect only to the coordinator, which routes
// rank-to-rank frames, counts barrier arrivals and folds diagnostics.
// Three backends run the SAME worker code:
//
//  * InProcTransport  -- ranks are std::threads in the coordinator
//                        process; frames cross mutex/condvar queues.
//  * ShmForkTransport -- one forked OS process per rank; frames stream
//                        through a pair of shared-memory SPSC byte rings
//                        per rank.
//  * TcpTransport     -- same forked workers behind real TCP loopback
//                        sockets.
//
// Coordinator discipline: send_to() NEVER blocks (frames that do not fit
// the wire are buffered per rank and drained opportunistically), and
// recv_any() always keeps draining every rank's upstream while making
// write progress -- so a rank blocked writing to the hub can never
// deadlock against a hub blocked writing to a rank. Workers use plain
// blocking sends/receives. A SIGKILL-ed worker genuinely takes its
// endpoint down: the next recv_any() throws TransportError carrying the
// dead rank, which the VM turns into the same coordinated-rollback
// recovery an injected crash uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace anton::parallel {

/// The endpoint for a rank is gone (worker process died, socket closed).
/// The reliable layer cannot mask this -- in-flight state is lost -- so it
/// propagates to the VM, which recovers by coordinated rollback.
class TransportError : public std::runtime_error {
 public:
  TransportError(int node, const std::string& what)
      : std::runtime_error("transport: " + what), node_(node) {}
  int node() const { return node_; }

 private:
  int node_;
};

enum class TransportKind {
  kInProc,   // ranks are threads in this process
  kShmFork,  // forked worker per rank over shared-memory rings
  kTcp,      // forked worker per rank behind a TCP loopback socket
};

struct TransportOptions {
  TransportKind kind = TransportKind::kInProc;
  /// Validate (magic/version/length/CRC) every frame the hub routes, even
  /// on the in-process path (conformance mode: proves the coordinator
  /// forwards exactly what was encoded).
  bool verify = false;
  /// Shared-memory ring capacity per direction (kShmFork).
  std::size_t ring_bytes = std::size_t{1} << 20;
};

/// Cumulative traffic through the hub. `roundtrips` counts frames the
/// coordinator received from ranks (the historic name is kept for the
/// vm.wire.* metrics); `bytes` counts frame bytes in both directions.
struct WireStats {
  std::int64_t roundtrips = 0;
  std::int64_t bytes = 0;
};

/// A rank's two-way channel to the coordinator hub. Blocking on both
/// sides; used only from the worker (thread or forked process).
class WorkerEndpoint {
 public:
  virtual ~WorkerEndpoint() = default;
  /// Sends one frame to the hub. Blocks while the upstream is full.
  virtual void send(const std::vector<std::uint8_t>& frame) = 0;
  /// Receives the next frame from the hub, blocking until one arrives.
  /// Throws TransportError when the hub side is gone.
  virtual std::vector<std::uint8_t> recv() = 0;
};

/// The rank body: runs the full worker event loop against its endpoint.
/// Stored by the transport so restart_node() can relaunch a dead rank.
using WorkerMain = std::function<void(int rank, WorkerEndpoint& ep)>;

/// The coordinator's side of the hub.
class ByteTransport {
 public:
  virtual ~ByteTransport() = default;

  virtual const char* name() const = 0;

  /// Launches one worker per rank running `main`. Called exactly once,
  /// after the coordinator has built the world the workers inherit.
  virtual void spawn_workers(const WorkerMain& main) = 0;

  /// Queues `frame` for rank `dst` and makes as much write progress as
  /// the wire allows without blocking. A dead rank's frames are buffered
  /// silently (the death surfaces in recv_any).
  virtual void send_to(int dst, const std::vector<std::uint8_t>& frame) = 0;

  /// Blocks until one frame arrives from any rank (draining every rank's
  /// upstream and flushing pending downstream writes meanwhile). Sets
  /// *src to the sending rank. Throws TransportError carrying the rank
  /// when a worker is discovered dead.
  virtual std::vector<std::uint8_t> recv_any(int* src) = 0;

  /// Drops queued downstream frames and partial upstream bytes for rank
  /// `n` (rollback support: the rank is about to be restarted/restored).
  virtual void clear_pending(int n) { (void)n; }

  /// SIGKILLs rank `n`'s worker process and reaps it (no-op in-process).
  virtual void kill_node(int n) { (void)n; }

  /// Brings rank `n`'s endpoint back up after a kill, re-running the
  /// stored WorkerMain (no-op in-process: the thread never died).
  virtual void restart_node(int n) { (void)n; }

  /// OS pid of rank `n`'s worker, or -1 if it has none. Tests use this to
  /// SIGKILL a real worker mid-run from outside the fault schedule.
  virtual long worker_pid(int n) const {
    (void)n;
    return -1;
  }

  /// Graceful teardown: flush pending writes and reap/join every worker.
  /// The VM calls this after broadcasting Shutdown; the destructor falls
  /// back to a hard kill for workers still alive.
  virtual void join_workers() {}

  const WireStats& stats() const { return stats_; }

 protected:
  WireStats stats_;
};

/// Builds the requested backend for an `nnodes`-rank machine. The
/// returned transport owns its workers (deterministically reaped on
/// join_workers()/destruction -- no zombies survive the coordinator).
std::unique_ptr<ByteTransport> make_transport(int nnodes,
                                              const TransportOptions& opts);

}  // namespace anton::parallel
