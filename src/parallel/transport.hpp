// Pluggable byte-level transports under the reliable delivery layer.
//
// The VirtualMachine executes every virtual node's program in the
// coordinator process (that is what keeps the bitwise-vs-AntonEngine
// acceptance tractable), but the *wire* is real: each remote frame is a
// serialized byte string (parallel/wire.hpp) that traverses a
// ByteTransport to the destination node's endpoint and back. Three
// backends:
//
//  * InProcTransport  -- the endpoint is a function call; zero-copy echo
//                        (CRC-validated), the fast path that preserves the
//                        pre-wire performance envelope.
//  * ShmForkTransport -- one forked OS process per virtual node, acting as
//                        that node's network interface. Frames stream
//                        through a pair of shared-memory SPSC byte rings;
//                        the worker validates the frame (magic / version /
//                        length / CRC, allocation-free) and echoes it.
//  * TcpTransport     -- same worker processes behind TCP loopback
//                        sockets: the frame crosses a real kernel socket
//                        boundary in each direction.
//
// The roundtrip discipline (send to the destination's endpoint, get the
// validated bytes back, decode, dispatch) keeps delivery synchronous and
// ordered, so all three backends produce bitwise-identical trajectories --
// that is the conformance contract the cross-backend matrix asserts. A
// SIGKILL-ed worker genuinely takes its endpoint down: the next roundtrip
// to that node throws TransportError, which the VM turns into the same
// coordinated-rollback recovery an injected crash uses. Full SPMD
// execution (physics in the workers too) is future work; the wire format,
// framing and failure semantics established here are what it will ride on.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace anton::parallel {

/// The destination endpoint is gone (worker process died, socket closed).
/// The reliable layer cannot mask this -- in-flight state is lost -- so it
/// propagates to the VM, which recovers by coordinated rollback.
class TransportError : public std::runtime_error {
 public:
  TransportError(int node, const std::string& what)
      : std::runtime_error("transport: " + what), node_(node) {}
  int node() const { return node_; }

 private:
  int node_;
};

enum class TransportKind {
  kInProc,   // endpoint is a function call in this process
  kShmFork,  // forked worker per node over shared-memory rings
  kTcp,      // forked worker per node behind a TCP loopback socket
};

struct TransportOptions {
  TransportKind kind = TransportKind::kInProc;
  /// Decode-verify every echoed frame even on the in-process fast path
  /// (conformance mode: proves encode -> wire -> decode -> dispatch is the
  /// identity the fast path skips).
  bool verify = false;
  /// Shared-memory ring capacity per direction (kShmFork).
  std::size_t ring_bytes = std::size_t{1} << 20;
};

/// Cumulative traffic through a transport (measured at the byte level;
/// bytes counts each direction once, i.e. frame bytes, not frame echoes).
struct WireStats {
  std::int64_t roundtrips = 0;
  std::int64_t bytes = 0;
};

/// One byte-level wire: frames go to a node's endpoint and come back
/// validated. Implementations are synchronous and single-threaded.
class ByteTransport {
 public:
  virtual ~ByteTransport() = default;

  virtual const char* name() const = 0;

  /// Sends `frame` to node `dst`'s endpoint; returns the bytes the
  /// endpoint echoed after validating them. Throws TransportError if the
  /// endpoint is dead, WireError if the endpoint rejected the frame.
  virtual const std::vector<std::uint8_t>& roundtrip(
      int dst, const std::vector<std::uint8_t>& frame) = 0;

  /// True when the endpoint shares this address space (enables the
  /// decode-skipping fast path in the reliable layer).
  virtual bool local() const { return false; }

  /// SIGKILLs node `n`'s worker process (no-op for in-process).
  virtual void kill_node(int n) { (void)n; }

  /// Brings node `n`'s endpoint back up after a kill (no-op in-process).
  virtual void restart_node(int n) { (void)n; }

  /// OS pid of node `n`'s worker, or -1 if it has none. Tests use this to
  /// SIGKILL a real worker mid-run from outside the fault schedule.
  virtual long worker_pid(int n) const {
    (void)n;
    return -1;
  }

  const WireStats& stats() const { return stats_; }

 protected:
  WireStats stats_;
};

/// Builds the requested backend for an `nnodes`-node machine. Fork-based
/// backends spawn their workers here; the returned transport owns them
/// (reaped on destruction).
std::unique_ptr<ByteTransport> make_transport(int nnodes,
                                              const TransportOptions& opts);

}  // namespace anton::parallel
