#include "parallel/fault.hpp"

#include <utility>

namespace anton::parallel {

FaultCounters& FaultCounters::operator+=(const FaultCounters& o) {
  drops += o.drops;
  duplicates += o.duplicates;
  reorders += o.reorders;
  delays += o.delays;
  crashes += o.crashes;
  retransmits += o.retransmits;
  retransmit_bytes += o.retransmit_bytes;
  dups_suppressed += o.dups_suppressed;
  out_of_order_held += o.out_of_order_held;
  rollbacks += o.rollbacks;
  replayed_cycles += o.replayed_cycles;
  return *this;
}

wire::Frame ReliableTransport::through_wire(const Bytes& bytes,
                                            wire::Frame* inhand) {
  if (inhand && !verify_) return std::move(*inhand);
  return wire::decode_frame(*bytes);
}

void ReliableTransport::receive(Channel& c, std::uint64_t seq,
                                wire::Frame&& frame) {
  // Any arriving copy acknowledges the message: the sender stops
  // retransmitting it (cumulative-ack model; a later retransmit racing a
  // delayed original is caught by the sequence check below).
  for (std::size_t i = 0; i < c.unacked.size(); ++i) {
    if (c.unacked[i].first == seq) {
      c.unacked.erase(c.unacked.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (seq < c.expect_seq) {
    ++counters_.dups_suppressed;  // stale copy of an applied message
    return;
  }
  if (seq > c.expect_seq) {
    // Arrived ahead of a gap: park until the gap fills. A second copy of
    // a parked message is a duplicate too.
    auto [it, inserted] = c.reorder_buf.emplace(seq, std::move(frame));
    (void)it;
    if (inserted)
      ++counters_.out_of_order_held;
    else
      ++counters_.dups_suppressed;
    return;
  }
  if (sink_) sink_(frame);
  ++c.expect_seq;
  // The gap closed: drain the consecutive prefix of the reorder buffer.
  auto it = c.reorder_buf.begin();
  while (it != c.reorder_buf.end() && it->first == c.expect_seq) {
    if (sink_) sink_(it->second);
    ++c.expect_seq;
    it = c.reorder_buf.erase(it);
  }
}

bool ReliableTransport::transmit(std::uint64_t ch, std::uint64_t seq,
                                 const Bytes& bytes, wire::Frame* inhand) {
  Channel& c = channels_[ch];
  const WireFault f =
      injector_ ? injector_->next_fault() : WireFault::kNone;
  switch (f) {
    case WireFault::kNone:
      receive(c, seq, through_wire(bytes, inhand));
      return true;
    case WireFault::kDrop:
      // Lost before it reached the wire; stays unacked, flush()
      // retransmits.
      ++counters_.drops;
      return false;
    case WireFault::kDuplicate: {
      ++counters_.duplicates;
      // Two physical copies; the decode proves both.
      receive(c, seq, through_wire(bytes, nullptr));
      receive(c, seq, through_wire(bytes, inhand));
      return true;
    }
    case WireFault::kReorder:
      ++counters_.reorders;
      break;
    case WireFault::kDelay:
      ++counters_.delays;
      break;
  }
  // kReorder / kDelay: the encoded copy is in flight but parked; later
  // transmissions overtake it. It traverses the wire during the flush
  // sweep (and the sender, having seen no ack, may race it with a
  // retransmit -- the sequence check deduplicates).
  parked_.push_back({ch, seq, bytes});
  return false;
}

std::int64_t ReliableTransport::send(int src, int dst, int phase,
                                     wire::Payload payload) {
  const std::uint64_t ch = channel(src, dst, phase);
  Channel& c = channels_[ch];
  const std::uint64_t seq = c.next_seq++;
  auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
      wire::encode_frame(phase, src, dst, seq, payload));
  const std::int64_t frame_bytes = static_cast<std::int64_t>(bytes->size());
  c.unacked.emplace_back(seq, bytes);
  // The sender still holds the typed message: hand it to transmit so the
  // local fast path can dispatch it without re-decoding the echo.
  wire::Frame inhand;
  inhand.header.phase = static_cast<std::uint8_t>(phase);
  inhand.header.msg_type = wire::type_of(payload);
  inhand.header.src = static_cast<std::uint16_t>(src);
  inhand.header.dst = static_cast<std::uint16_t>(dst);
  inhand.header.seq = seq;
  inhand.header.payload_len =
      static_cast<std::uint32_t>(bytes->size() - wire::kHeaderBytes);
  inhand.payload = std::move(payload);
  transmit(ch, seq, bytes, &inhand);
  return frame_bytes;
}

void ReliableTransport::flush() {
  const int max_attempts =
      injector_ ? injector_->config().max_attempts : 1;
  for (int round = 0;; ++round) {
    // Parked copies finally arrive (in the order the wire held them).
    if (!parked_.empty()) {
      auto parked = std::move(parked_);
      parked_.clear();
      for (Parked& p : parked)
        receive(channels_[p.ch], p.seq, through_wire(p.bytes, nullptr));
    }
    bool pending = false;
    for (auto& [id, c] : channels_)
      if (!c.unacked.empty()) pending = true;
    if (!pending && parked_.empty()) break;
    if (round >= max_attempts)
      throw std::runtime_error(
          "ReliableTransport: message exceeded retry budget (link dead)");
    // Timeout fired: retransmit every unacknowledged frame, oldest first,
    // per channel in deterministic channel order. Each attempt faces the
    // injector again.
    std::vector<std::uint64_t> ids;
    ids.reserve(channels_.size());
    for (auto& [id, c] : channels_) ids.push_back(id);
    for (std::uint64_t id : ids) {
      // receive() mutates unacked; walk a snapshot.
      auto snapshot = channels_[id].unacked;
      for (auto& [seq, bytes] : snapshot) {
        ++counters_.retransmits;
        counters_.retransmit_bytes += static_cast<std::int64_t>(bytes->size());
        transmit(id, seq, bytes, nullptr);
      }
    }
  }
  if (!quiescent())
    throw std::logic_error("ReliableTransport: flush left residual state");
}

void ReliableTransport::reset_channels() {
  channels_.clear();
  parked_.clear();
}

bool ReliableTransport::quiescent() const {
  if (!parked_.empty()) return false;
  for (const auto& [id, c] : channels_)
    if (!c.unacked.empty() || !c.reorder_buf.empty()) return false;
  return true;
}

// ---------------------------------------------------------------------------
// ReliableLink: the same protocol split across real ranks.
// ---------------------------------------------------------------------------

bool ReliableLink::attempt(std::uint64_t ch, std::uint64_t seq,
                           const Bytes& bytes) {
  const WireFault f = injector_ ? injector_->next_fault() : WireFault::kNone;
  switch (f) {
    case WireFault::kNone:
      raw_(*bytes);
      return true;
    case WireFault::kDrop:
      ++counters_.drops;
      dropped_.push_back({ch, seq, bytes});
      return false;
    case WireFault::kDuplicate:
      ++counters_.duplicates;
      raw_(*bytes);
      raw_(*bytes);
      return true;
    case WireFault::kReorder:
      ++counters_.reorders;
      parked_.push_back({ch, seq, bytes});
      return false;
    case WireFault::kDelay:
      ++counters_.delays;
      parked_.push_back({ch, seq, bytes});
      return false;
  }
  return false;
}

std::int64_t ReliableLink::send(int dst, int phase, wire::Payload payload) {
  const std::uint64_t ch = ReliableTransport::channel(self_, dst, phase);
  SendChannel& c = out_[ch];
  const std::uint64_t seq = c.next_seq++;
  auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
      wire::encode_frame(phase, self_, dst, seq, std::move(payload)));
  const std::int64_t frame_bytes = static_cast<std::int64_t>(bytes->size());
  c.unacked.emplace_back(seq, bytes);
  attempt(ch, seq, bytes);
  return frame_bytes;
}

void ReliableLink::flush() {
  const int max_attempts = injector_ ? injector_->config().max_attempts : 1;
  int round = 0;
  for (;;) {
    // Parked copies finally reach the wire, in the order it held them;
    // the injector already had its shot at these.
    if (!parked_.empty()) {
      auto held = std::move(parked_);
      parked_.clear();
      for (Held& h : held) raw_(*h.bytes);
    }
    if (dropped_.empty()) break;
    if (++round > max_attempts)
      throw std::runtime_error(
          "ReliableLink: message exceeded retry budget (link dead)");
    // Timeout fired: retransmit every lost frame. Each attempt faces the
    // injector again.
    auto lost = std::move(dropped_);
    dropped_.clear();
    for (Held& h : lost) {
      ++counters_.retransmits;
      counters_.retransmit_bytes += static_cast<std::int64_t>(h.bytes->size());
      attempt(h.ch, h.seq, h.bytes);
    }
  }
}

void ReliableLink::on_data(const wire::Frame& frame, const Apply& apply) {
  // Every received copy is acknowledged back to its sender (dups too, so
  // a retransmit racing a delayed original still gets pruned).
  wire::Ack ack;
  ack.phase = frame.header.phase;
  ack.seq = frame.header.seq;
  raw_(wire::encode_frame(wire::kChControl, self_, frame.header.src,
                          ack_seq_++, wire::Payload{ack}));
  RecvChannel& c = in_[ReliableTransport::channel(
      frame.header.src, self_, frame.header.phase)];
  const std::uint64_t seq = frame.header.seq;
  if (seq < c.expect_seq) {
    ++counters_.dups_suppressed;
    return;
  }
  if (seq > c.expect_seq) {
    auto [it, inserted] = c.reorder_buf.emplace(seq, frame);
    (void)it;
    if (inserted)
      ++counters_.out_of_order_held;
    else
      ++counters_.dups_suppressed;
    return;
  }
  apply(frame);
  ++c.expect_seq;
  auto it = c.reorder_buf.begin();
  while (it != c.reorder_buf.end() && it->first == c.expect_seq) {
    apply(it->second);
    ++c.expect_seq;
    it = c.reorder_buf.erase(it);
  }
}

void ReliableLink::on_ack(int from, const wire::Ack& ack) {
  auto it = out_.find(ReliableTransport::channel(self_, from, ack.phase));
  if (it == out_.end()) return;
  auto& un = it->second.unacked;
  for (std::size_t i = 0; i < un.size(); ++i) {
    if (un[i].first == ack.seq) {
      un.erase(un.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

void ReliableLink::reset_channels() {
  out_.clear();
  in_.clear();
  parked_.clear();
  dropped_.clear();
  ack_seq_ = 0;
}

}  // namespace anton::parallel
