#include "parallel/fault.hpp"

#include <utility>

#include "parallel/transport.hpp"

namespace anton::parallel {

FaultCounters& FaultCounters::operator+=(const FaultCounters& o) {
  drops += o.drops;
  duplicates += o.duplicates;
  reorders += o.reorders;
  delays += o.delays;
  crashes += o.crashes;
  retransmits += o.retransmits;
  retransmit_bytes += o.retransmit_bytes;
  dups_suppressed += o.dups_suppressed;
  out_of_order_held += o.out_of_order_held;
  rollbacks += o.rollbacks;
  replayed_cycles += o.replayed_cycles;
  return *this;
}

wire::Frame ReliableTransport::through_wire(const Bytes& bytes, int dst,
                                            wire::Frame* inhand) {
  // The encoded frame traverses the byte wire to the destination node's
  // endpoint and comes back validated. With no wire attached (unit tests)
  // the frame loops back as-is.
  const std::vector<std::uint8_t>& echoed =
      wire_ ? wire_->roundtrip(dst, *bytes) : *bytes;
  const bool fast = inhand && !verify_ && (!wire_ || wire_->local());
  if (fast) return std::move(*inhand);
  return wire::decode_frame(echoed);
}

void ReliableTransport::receive(Channel& c, std::uint64_t seq,
                                wire::Frame&& frame) {
  // Any arriving copy acknowledges the message: the sender stops
  // retransmitting it (cumulative-ack model; a later retransmit racing a
  // delayed original is caught by the sequence check below).
  for (std::size_t i = 0; i < c.unacked.size(); ++i) {
    if (c.unacked[i].first == seq) {
      c.unacked.erase(c.unacked.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (seq < c.expect_seq) {
    ++counters_.dups_suppressed;  // stale copy of an applied message
    return;
  }
  if (seq > c.expect_seq) {
    // Arrived ahead of a gap: park until the gap fills. A second copy of
    // a parked message is a duplicate too.
    auto [it, inserted] = c.reorder_buf.emplace(seq, std::move(frame));
    (void)it;
    if (inserted)
      ++counters_.out_of_order_held;
    else
      ++counters_.dups_suppressed;
    return;
  }
  if (sink_) sink_(frame);
  ++c.expect_seq;
  // The gap closed: drain the consecutive prefix of the reorder buffer.
  auto it = c.reorder_buf.begin();
  while (it != c.reorder_buf.end() && it->first == c.expect_seq) {
    if (sink_) sink_(it->second);
    ++c.expect_seq;
    it = c.reorder_buf.erase(it);
  }
}

bool ReliableTransport::transmit(std::uint64_t ch, std::uint64_t seq,
                                 const Bytes& bytes, wire::Frame* inhand) {
  Channel& c = channels_[ch];
  const int dst = dst_of(ch);
  const WireFault f =
      injector_ ? injector_->next_fault() : WireFault::kNone;
  switch (f) {
    case WireFault::kNone:
      receive(c, seq, through_wire(bytes, dst, inhand));
      return true;
    case WireFault::kDrop:
      // Lost before it reached the wire; stays unacked, flush()
      // retransmits.
      ++counters_.drops;
      return false;
    case WireFault::kDuplicate: {
      ++counters_.duplicates;
      // Two physical copies, two wire traversals; the decode proves both.
      receive(c, seq, through_wire(bytes, dst, nullptr));
      receive(c, seq, through_wire(bytes, dst, inhand));
      return true;
    }
    case WireFault::kReorder:
      ++counters_.reorders;
      break;
    case WireFault::kDelay:
      ++counters_.delays;
      break;
  }
  // kReorder / kDelay: the encoded copy is in flight but parked; later
  // transmissions overtake it. It traverses the wire during the flush
  // sweep (and the sender, having seen no ack, may race it with a
  // retransmit -- the sequence check deduplicates).
  parked_.push_back({ch, seq, bytes});
  return false;
}

std::int64_t ReliableTransport::send(int src, int dst, int phase,
                                     wire::Payload payload) {
  const std::uint64_t ch = channel(src, dst, phase);
  Channel& c = channels_[ch];
  const std::uint64_t seq = c.next_seq++;
  auto bytes = std::make_shared<const std::vector<std::uint8_t>>(
      wire::encode_frame(phase, src, dst, seq, payload));
  const std::int64_t frame_bytes = static_cast<std::int64_t>(bytes->size());
  c.unacked.emplace_back(seq, bytes);
  // The sender still holds the typed message: hand it to transmit so the
  // local fast path can dispatch it without re-decoding the echo.
  wire::Frame inhand;
  inhand.header.phase = static_cast<std::uint8_t>(phase);
  inhand.header.msg_type = wire::type_of(payload);
  inhand.header.src = static_cast<std::uint16_t>(src);
  inhand.header.dst = static_cast<std::uint16_t>(dst);
  inhand.header.seq = seq;
  inhand.header.payload_len =
      static_cast<std::uint32_t>(bytes->size() - wire::kHeaderBytes);
  inhand.payload = std::move(payload);
  transmit(ch, seq, bytes, &inhand);
  return frame_bytes;
}

void ReliableTransport::flush() {
  const int max_attempts =
      injector_ ? injector_->config().max_attempts : 1;
  for (int round = 0;; ++round) {
    // Parked copies finally arrive (in the order the wire held them).
    if (!parked_.empty()) {
      auto parked = std::move(parked_);
      parked_.clear();
      for (Parked& p : parked)
        receive(channels_[p.ch], p.seq,
                through_wire(p.bytes, dst_of(p.ch), nullptr));
    }
    bool pending = false;
    for (auto& [id, c] : channels_)
      if (!c.unacked.empty()) pending = true;
    if (!pending && parked_.empty()) break;
    if (round >= max_attempts)
      throw std::runtime_error(
          "ReliableTransport: message exceeded retry budget (link dead)");
    // Timeout fired: retransmit every unacknowledged frame, oldest first,
    // per channel in deterministic channel order. Each attempt faces the
    // injector again.
    std::vector<std::uint64_t> ids;
    ids.reserve(channels_.size());
    for (auto& [id, c] : channels_) ids.push_back(id);
    for (std::uint64_t id : ids) {
      // receive() mutates unacked; walk a snapshot.
      auto snapshot = channels_[id].unacked;
      for (auto& [seq, bytes] : snapshot) {
        ++counters_.retransmits;
        counters_.retransmit_bytes += static_cast<std::int64_t>(bytes->size());
        transmit(id, seq, bytes, nullptr);
      }
    }
  }
  if (!quiescent())
    throw std::logic_error("ReliableTransport: flush left residual state");
}

void ReliableTransport::reset_channels() {
  channels_.clear();
  parked_.clear();
}

bool ReliableTransport::quiescent() const {
  if (!parked_.empty()) return false;
  for (const auto& [id, c] : channels_)
    if (!c.unacked.empty() || !c.reorder_buf.empty()) return false;
  return true;
}

}  // namespace anton::parallel
