#include "parallel/fault.hpp"

#include <utility>

namespace anton::parallel {

FaultCounters& FaultCounters::operator+=(const FaultCounters& o) {
  drops += o.drops;
  duplicates += o.duplicates;
  reorders += o.reorders;
  delays += o.delays;
  crashes += o.crashes;
  retransmits += o.retransmits;
  retransmit_bytes += o.retransmit_bytes;
  dups_suppressed += o.dups_suppressed;
  out_of_order_held += o.out_of_order_held;
  rollbacks += o.rollbacks;
  replayed_cycles += o.replayed_cycles;
  return *this;
}

void ReliableTransport::receive(Channel& c, std::uint64_t seq,
                                const Apply& apply) {
  // Any arriving copy acknowledges the message: the sender stops
  // retransmitting it (cumulative-ack model; a later retransmit racing a
  // delayed original is caught by the sequence check below).
  for (std::size_t i = 0; i < c.unacked.size(); ++i) {
    if (c.unacked[i].first == seq) {
      c.unacked.erase(c.unacked.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (seq < c.expect_seq) {
    ++counters_.dups_suppressed;  // stale copy of an applied message
    return;
  }
  if (seq > c.expect_seq) {
    // Arrived ahead of a gap: park until the gap fills. A second copy of
    // a parked message is a duplicate too.
    auto [it, inserted] = c.reorder_buf.emplace(seq, apply);
    (void)it;
    if (inserted)
      ++counters_.out_of_order_held;
    else
      ++counters_.dups_suppressed;
    return;
  }
  apply();
  ++c.expect_seq;
  // The gap closed: drain the consecutive prefix of the reorder buffer.
  auto it = c.reorder_buf.begin();
  while (it != c.reorder_buf.end() && it->first == c.expect_seq) {
    it->second();
    ++c.expect_seq;
    it = c.reorder_buf.erase(it);
  }
}

bool ReliableTransport::transmit(std::uint64_t ch, std::uint64_t seq,
                                 std::int64_t bytes, const Apply& apply) {
  (void)bytes;
  Channel& c = channels_[ch];
  const WireFault f =
      injector_ ? injector_->next_fault() : WireFault::kNone;
  switch (f) {
    case WireFault::kNone:
      receive(c, seq, apply);
      return true;
    case WireFault::kDrop:
      ++counters_.drops;
      return false;  // stays unacked; flush() retransmits
    case WireFault::kDuplicate:
      ++counters_.duplicates;
      receive(c, seq, apply);
      receive(c, seq, apply);
      return true;
    case WireFault::kReorder:
      ++counters_.reorders;
      break;
    case WireFault::kDelay:
      ++counters_.delays;
      break;
  }
  // kReorder / kDelay: the copy is in flight but parked; later
  // transmissions overtake it. It lands during the flush sweep (and the
  // sender, having seen no ack, may race it with a retransmit -- the
  // sequence check deduplicates).
  parked_.emplace_back(ch, seq, apply);
  return false;
}

void ReliableTransport::send(std::uint64_t ch, std::int64_t bytes,
                             Apply apply) {
  Channel& c = channels_[ch];
  const std::uint64_t seq = c.next_seq++;
  c.unacked.emplace_back(seq, std::make_pair(bytes, apply));
  transmit(ch, seq, bytes, apply);
}

void ReliableTransport::flush() {
  const int max_attempts =
      injector_ ? injector_->config().max_attempts : 1;
  for (int round = 0;; ++round) {
    // Parked copies finally arrive (in the order the wire held them).
    if (!parked_.empty()) {
      auto parked = std::move(parked_);
      parked_.clear();
      for (auto& [ch, seq, apply] : parked)
        receive(channels_[ch], seq, apply);
    }
    bool pending = false;
    for (auto& [id, c] : channels_)
      if (!c.unacked.empty()) pending = true;
    if (!pending && parked_.empty()) break;
    if (round >= max_attempts)
      throw std::runtime_error(
          "ReliableTransport: message exceeded retry budget (link dead)");
    // Timeout fired: retransmit every unacknowledged message, oldest
    // first, per channel in deterministic channel order. Each attempt
    // faces the injector again.
    std::vector<std::uint64_t> ids;
    ids.reserve(channels_.size());
    for (auto& [id, c] : channels_) ids.push_back(id);
    for (std::uint64_t id : ids) {
      // receive() mutates unacked; walk a snapshot.
      auto snapshot = channels_[id].unacked;
      for (auto& [seq, payload] : snapshot) {
        ++counters_.retransmits;
        counters_.retransmit_bytes += payload.first;
        transmit(id, seq, payload.first, payload.second);
      }
    }
  }
  if (!quiescent())
    throw std::logic_error("ReliableTransport: flush left residual state");
}

void ReliableTransport::reset_channels() {
  channels_.clear();
  parked_.clear();
}

bool ReliableTransport::quiescent() const {
  if (!parked_.empty()) return false;
  for (const auto& [id, c] : channels_)
    if (!c.unacked.empty() || !c.reorder_buf.empty()) return false;
  return true;
}

}  // namespace anton::parallel
