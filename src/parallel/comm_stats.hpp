// Communication accounting for the virtual-node runtime (Section 3.2).
//
// "A typical time step on Anton involves thousands of inter-node messages
// per ASIC"; messages as small as four bytes are efficient because
// inter-node latency is tens of nanoseconds. This module turns the
// engine's workload counters into per-phase message/byte estimates, which
// the machine model prices against the torus links. Multicast (a subbox's
// atoms sent once to the whole set of consuming nodes) is modelled as a
// per-link replication discount.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geom/vec3.hpp"

namespace anton::parallel {

struct PhaseComm {
  std::size_t messages = 0;  // messages sent per node
  std::size_t bytes = 0;     // payload bytes sent per node
  int max_hops = 1;          // furthest torus distance
};

struct CommConfig {
  /// Payload bytes for one atom position (3 x 32-bit lattice coordinates +
  /// id/charge tag).
  std::size_t bytes_per_position = 16;
  /// Payload for one force contribution (3 x 32-bit fixed point).
  std::size_t bytes_per_force = 12;
  /// Payload for one mesh charge/potential value.
  std::size_t bytes_per_mesh_value = 4;
  /// Atoms per multicast message (one subbox's worth batched per target).
  std::size_t atoms_per_message = 16;
};

/// Position import for the range-limited + spreading phases: the node
/// receives its (tower + plate) import-region atoms; by symmetry it sends
/// the same volume. Message count reflects subbox-granular multicast.
PhaseComm position_import(std::int64_t import_atoms, int imported_subboxes,
                          const CommConfig& cfg);

/// Force export back to home nodes (equal and opposite of the import).
PhaseComm force_export(std::int64_t import_atoms, int imported_subboxes,
                       const CommConfig& cfg);

/// Mesh charge export / potential import around the FFT.
PhaseComm mesh_exchange(std::int64_t mesh_points_touched,
                        const CommConfig& cfg);

}  // namespace anton::parallel
