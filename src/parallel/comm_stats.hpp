// Communication accounting for the virtual-node runtime (Section 3.2).
//
// "A typical time step on Anton involves thousands of inter-node messages
// per ASIC"; messages as small as four bytes are efficient because
// inter-node latency is tens of nanoseconds. This module holds the ONE
// message/byte accounting vocabulary shared by both producers:
//
//  * the estimators below turn the engine's workload counters into
//    per-phase message/byte estimates, which the machine model prices
//    against the torus links;
//  * the VirtualMachine's explicit mailbox choreography MEASURES the same
//    quantities per phase into a CommLedger, which tests cross-validate
//    against the estimators and fft::DistFftPlan.
//
// Multicast (a subbox's atoms sent once to the whole set of consuming
// nodes) is modelled as a per-link replication discount.
//
// Measured vs modelled bytes: since the serialized wire landed
// (DESIGN.md §5f), the VirtualMachine's ledger bytes are the REAL frame
// sizes that traversed the byte transport -- the 28-byte wire header plus
// the typed payload encoding (per-type sizes in parallel/wire.hpp) -- not
// the CommConfig byte model below. The estimators keep the analytic model
// (idealized payload bytes, no framing): they price Anton's wire-count
// formats on the modelled torus, while the ledger reports what this
// implementation's wire actually carried. Tests that compare the two
// account for the framing delta explicitly (e.g. the distributed-FFT
// traffic check in test_virtual_machine.cpp).
#pragma once

#include <cstdint>

#include "geom/vec3.hpp"

namespace anton::parallel {

struct PhaseComm {
  std::int64_t messages = 0;  // messages sent per node (estimators) or
                              // total across nodes (measured ledger)
  std::int64_t bytes = 0;     // payload bytes sent
  int max_hops = 1;           // furthest torus distance

  PhaseComm& operator+=(const PhaseComm& o) {
    messages += o.messages;
    bytes += o.bytes;
    if (o.max_hops > max_hops) max_hops = o.max_hops;
    return *this;
  }
};

/// Measured message/byte accounting for one distributed execution,
/// per choreography phase. This is the single stats struct the
/// VirtualMachine reports (it replaced the old VmStats): the range-limited
/// phases fill `position`/`force`, the full time-step runtime additionally
/// fills `bond` (bond-destination and correction dispatch), `mesh` (charge
/// halo + potential halo-back), `fft` (distributed-transform segment
/// exchange), `migration` (unit moves + directory announcements) and
/// `reduce` (ordered diagnostic gathers: thermostat, reciprocal energy).
struct CommLedger {
  PhaseComm position;   // subbox position multicast
  PhaseComm force;      // force return to home nodes
  PhaseComm bond;       // bond-destination + correction position dispatch
  PhaseComm mesh;       // mesh charge export / potential import
  PhaseComm fft;        // distributed-FFT line segment exchange
  PhaseComm migration;  // migration units + directory announcements
  PhaseComm reduce;     // ordered scalar reductions (thermostat, energy)
  /// Extra transmissions the reliable-delivery layer sent to mask injected
  /// faults (timeout retransmits, across all phases). Zero on a healthy
  /// network: the phase counters above count each logical message once, so
  /// this phase isolates the price of recovery.
  PhaseComm retransmit;

  std::int64_t interactions = 0;
  std::int64_t pairs_considered = 0;
  /// Maximum over nodes of messages sent in one evaluation/cycle window.
  std::int64_t max_messages_per_node = 0;

  std::int64_t total_messages() const {
    return position.messages + force.messages + bond.messages +
           mesh.messages + fft.messages + migration.messages +
           reduce.messages + retransmit.messages;
  }
  std::int64_t total_bytes() const {
    return position.bytes + force.bytes + bond.bytes + mesh.bytes +
           fft.bytes + migration.bytes + reduce.bytes + retransmit.bytes;
  }
};

struct CommConfig {
  /// Payload bytes for one atom position (3 x 32-bit lattice coordinates +
  /// id/charge tag).
  std::int64_t bytes_per_position = 16;
  /// Payload for one force contribution (3 x 32-bit fixed point).
  std::int64_t bytes_per_force = 12;
  /// Payload for one mesh charge/potential value.
  std::int64_t bytes_per_mesh_value = 4;
  /// Atoms per multicast message (one subbox's worth batched per target).
  std::int64_t atoms_per_message = 16;
};

/// Position import for the range-limited + spreading phases: the node
/// receives its (tower + plate) import-region atoms; by symmetry it sends
/// the same volume. Message count reflects subbox-granular multicast.
PhaseComm position_import(std::int64_t import_atoms, int imported_subboxes,
                          const CommConfig& cfg);

/// Force export back to home nodes (equal and opposite of the import).
PhaseComm force_export(std::int64_t import_atoms, int imported_subboxes,
                       const CommConfig& cfg);

/// Mesh charge export / potential import around the FFT.
PhaseComm mesh_exchange(std::int64_t mesh_points_touched,
                        const CommConfig& cfg);

}  // namespace anton::parallel
