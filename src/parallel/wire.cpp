#include "parallel/wire.hpp"

#include <type_traits>

#include "io/crc32.hpp"
#include "io/endian.hpp"

namespace anton::parallel::wire {

namespace {

using io::load_f64le;
using io::load_i32le;
using io::load_i64le;
using io::load_u16le;
using io::load_u32le;
using io::load_u64le;
using io::store_f64le;
using io::store_i32le;
using io::store_i64le;
using io::store_u16le;
using io::store_u32le;
using io::store_u64le;

// --- payload writer ---------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& buf) : buf_(buf) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put(4, [&](unsigned char* p) { store_u32le(p, v); }); }
  void u64(std::uint64_t v) { put(8, [&](unsigned char* p) { store_u64le(p, v); }); }
  void i32(std::int32_t v) { put(4, [&](unsigned char* p) { store_i32le(p, v); }); }
  void i64(std::int64_t v) { put(8, [&](unsigned char* p) { store_i64le(p, v); }); }
  void f64(double v) { put(8, [&](unsigned char* p) { store_f64le(p, v); }); }

  void vec3i(const Vec3i& v) {
    i32(v.x);
    i32(v.y);
    i32(v.z);
  }
  void vec3l(const Vec3l& v) {
    i64(v.x);
    i64(v.y);
    i64(v.z);
  }
  void count(std::size_t n) { u32(static_cast<std::uint32_t>(n)); }

 private:
  template <class F>
  void put(std::size_t n, F&& store) {
    const std::size_t off = buf_.size();
    buf_.resize(off + n);
    store(buf_.data() + off);
  }
  std::vector<std::uint8_t>& buf_;
};

// --- payload reader ---------------------------------------------------------

/// Bounds-checked cursor over the payload bytes. Every read is validated
/// before it happens; record counts are validated against the remaining
/// bytes before any container is sized.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : p_(data), end_(data + len) {}

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = load_u32le(p_);
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = load_u64le(p_);
    p_ += 8;
    return v;
  }
  std::int32_t i32() {
    need(4);
    const std::int32_t v = load_i32le(p_);
    p_ += 4;
    return v;
  }
  std::int64_t i64() {
    need(8);
    const std::int64_t v = load_i64le(p_);
    p_ += 8;
    return v;
  }
  double f64() {
    need(8);
    const double v = load_f64le(p_);
    p_ += 8;
    return v;
  }
  Vec3i vec3i() {
    const std::int32_t x = i32(), y = i32(), z = i32();
    return {x, y, z};
  }
  Vec3l vec3l() {
    const std::int64_t x = i64(), y = i64(), z = i64();
    return {x, y, z};
  }

  /// Reads a record count and validates it against the bytes still in the
  /// buffer at `bytes_per_record` each -- a corrupt count can never force
  /// an allocation larger than the payload that arrived.
  std::size_t count(std::size_t bytes_per_record) {
    const std::uint32_t n = u32();
    if (static_cast<std::size_t>(end_ - p_) / bytes_per_record < n)
      throw WireError(WireError::Kind::kBadPayload,
                      "record count exceeds payload");
    return n;
  }

  void finish() const {
    if (p_ != end_)
      throw WireError(WireError::Kind::kBadPayload,
                      "payload longer than its message");
  }

 private:
  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end_ - p_) < n)
      throw WireError(WireError::Kind::kBadPayload,
                      "payload shorter than its message");
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// --- per-type payload codecs ------------------------------------------------

void encode_payload(Writer& w, const PositionBatch& m) {
  w.i32(m.sb);
  w.count(m.recs.size());
  for (const PosRec& r : m.recs) {
    w.i32(r.id);
    w.vec3i(r.pos);
  }
}

PositionBatch decode_position_batch(Reader& r) {
  PositionBatch m;
  m.sb = r.i32();
  const std::size_t n = r.count(kPosRecBytes);
  m.recs.resize(n);
  for (PosRec& rec : m.recs) {
    rec.id = r.i32();
    rec.pos = r.vec3i();
  }
  return m;
}

void encode_payload(Writer& w, const BondPositions& m) {
  w.count(m.recs.size());
  for (const PosRec& r : m.recs) {
    w.i32(r.id);
    w.vec3i(r.pos);
  }
}

BondPositions decode_bond_positions(Reader& r) {
  BondPositions m;
  const std::size_t n = r.count(kPosRecBytes);
  m.recs.resize(n);
  for (PosRec& rec : m.recs) {
    rec.id = r.i32();
    rec.pos = r.vec3i();
  }
  return m;
}

void encode_payload(Writer& w, const ForceBatch& m) {
  w.u8(m.long_range ? 1 : 0);
  w.count(m.recs.size());
  for (const ForceRec& r : m.recs) {
    w.i32(r.id);
    w.vec3l(r.f);
  }
}

ForceBatch decode_force_batch(Reader& r) {
  ForceBatch m;
  const std::uint8_t lr = r.u8();
  if (lr > 1)
    throw WireError(WireError::Kind::kBadPayload, "bad long_range flag");
  m.long_range = lr != 0;
  const std::size_t n = r.count(kForceRecBytes);
  m.recs.resize(n);
  for (ForceRec& rec : m.recs) {
    rec.id = r.i32();
    rec.f = r.vec3l();
  }
  return m;
}

void encode_mesh_values(Writer& w, const std::vector<std::int32_t>& idx,
                        const std::vector<std::int64_t>& val) {
  w.count(idx.size());
  for (std::int32_t i : idx) w.i32(i);
  for (std::int64_t v : val) w.i64(v);
}

template <class M>
M decode_mesh_values(Reader& r) {
  M m;
  const std::size_t n = r.count(kMeshRecBytes);
  m.idx.resize(n);
  for (std::int32_t& i : m.idx) i = r.i32();
  auto& val = [&]() -> std::vector<std::int64_t>& {
    if constexpr (std::is_same_v<M, MeshCharge>)
      return m.q;
    else
      return m.phi;
  }();
  val.resize(n);
  for (std::int64_t& v : val) v = r.i64();
  return m;
}

void encode_payload(Writer& w, const MeshCharge& m) {
  encode_mesh_values(w, m.idx, m.q);
}

void encode_payload(Writer& w, const MeshPhi& m) {
  encode_mesh_values(w, m.idx, m.phi);
}

void encode_payload(Writer& w, const FftSegment& m) {
  w.u8(m.axis);
  w.u8(m.kind);
  w.i32(m.a);
  w.i32(m.b);
  w.i32(m.s0);
  w.count(m.pts.size());
  for (const std::complex<double>& c : m.pts) {
    w.f64(c.real());
    w.f64(c.imag());
  }
}

FftSegment decode_fft_segment(Reader& r) {
  FftSegment m;
  m.axis = r.u8();
  m.kind = r.u8();
  if (m.axis > 2 || m.kind > 1)
    throw WireError(WireError::Kind::kBadPayload, "bad FFT segment tag");
  m.a = r.i32();
  m.b = r.i32();
  m.s0 = r.i32();
  const std::size_t n = r.count(kFftPointBytes);
  m.pts.resize(n);
  for (std::complex<double>& c : m.pts) {
    const double re = r.f64();
    const double im = r.f64();
    c = {re, im};
  }
  return m;
}

void encode_payload(Writer& w, const MeshEnergyBlock& m) {
  w.count(m.gidx.size());
  for (std::uint64_t g : m.gidx) w.u64(g);
  for (double q : m.q) w.f64(q);
  for (double phi : m.phi) w.f64(phi);
}

MeshEnergyBlock decode_energy_block(Reader& r) {
  MeshEnergyBlock m;
  const std::size_t n = r.count(kEnergyRecBytes);
  m.gidx.resize(n);
  for (std::uint64_t& g : m.gidx) g = r.u64();
  m.q.resize(n);
  for (double& q : m.q) q = r.f64();
  m.phi.resize(n);
  for (double& phi : m.phi) phi = r.f64();
  return m;
}

void encode_payload(Writer& w, const KineticTerms& m) {
  w.count(m.id.size());
  for (std::int32_t i : m.id) w.i32(i);
  for (double t : m.term) w.f64(t);
}

KineticTerms decode_kinetic_terms(Reader& r) {
  KineticTerms m;
  const std::size_t n = r.count(kKineticRecBytes);
  m.id.resize(n);
  for (std::int32_t& i : m.id) i = r.i32();
  m.term.resize(n);
  for (double& t : m.term) t = r.f64();
  return m;
}

void encode_payload(Writer& w, const ScaleVelocities& m) { w.f64(m.lambda); }

ScaleVelocities decode_scale_velocities(Reader& r) {
  ScaleVelocities m;
  m.lambda = r.f64();
  return m;
}

void encode_payload(Writer& w, const MigrationBatch& m) {
  w.count(m.id.size());
  for (std::size_t k = 0; k < m.id.size(); ++k) {
    w.i32(m.id[k]);
    const AtomDyn& a = m.atoms[k];
    w.vec3i(a.pos);
    w.vec3l(a.vel);
    w.vec3l(a.f_short);
    w.vec3l(a.f_long);
  }
}

MigrationBatch decode_migration_batch(Reader& r) {
  MigrationBatch m;
  const std::size_t n = r.count(kMigrationRecBytes);
  m.id.resize(n);
  m.atoms.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    m.id[k] = r.i32();
    AtomDyn& a = m.atoms[k];
    a.pos = r.vec3i();
    a.vel = r.vec3l();
    a.f_short = r.vec3l();
    a.f_long = r.vec3l();
  }
  return m;
}

void encode_payload(Writer& w, const DirectoryUpdate& m) {
  w.count(m.id.size());
  for (std::int32_t i : m.id) w.i32(i);
  for (std::int32_t h : m.home) w.i32(h);
}

DirectoryUpdate decode_directory_update(Reader& r) {
  DirectoryUpdate m;
  const std::size_t n = r.count(kDirectoryRecBytes);
  m.id.resize(n);
  for (std::int32_t& i : m.id) i = r.i32();
  m.home.resize(n);
  for (std::int32_t& h : m.home) h = r.i32();
  return m;
}

void encode_payload(Writer& w, const Control& m) {
  w.u8(static_cast<std::uint8_t>(m.op));
  w.i64(m.i0);
  w.i64(m.i1);
  w.f64(m.f0);
  w.f64(m.f1);
  w.f64(m.f2);
  w.f64(m.f3);
}

Control decode_control(Reader& r) {
  Control m;
  const std::uint8_t op = r.u8();
  if (op < 1 || op > static_cast<std::uint8_t>(CtrlOp::kShutdown))
    throw WireError(WireError::Kind::kBadPayload, "bad control op");
  m.op = static_cast<CtrlOp>(op);
  m.i0 = r.i64();
  m.i1 = r.i64();
  m.f0 = r.f64();
  m.f1 = r.f64();
  m.f2 = r.f64();
  m.f3 = r.f64();
  return m;
}

void encode_payload(Writer& w, const Barrier& m) { w.u32(m.id); }

Barrier decode_barrier(Reader& r) {
  Barrier m;
  m.id = r.u32();
  return m;
}

void encode_payload(Writer& w, const Ack& m) {
  w.u8(m.phase);
  w.u64(m.seq);
}

Ack decode_ack(Reader& r) {
  Ack m;
  m.phase = r.u8();
  m.seq = r.u64();
  return m;
}

void encode_payload(Writer& w, const RankReport& m) {
  w.i64(m.pid);
  w.i64(m.sent);
  w.f64(m.e_recip);
  w.count(m.counters.size());
  for (std::int64_t v : m.counters) w.i64(v);
  w.count(m.ledger.size());
  for (std::int64_t v : m.ledger) w.i64(v);
  w.count(m.faults.size());
  for (std::int64_t v : m.faults) w.i64(v);
  w.count(m.span_id.size());
  for (std::uint16_t v : m.span_id) w.u32(v);
  for (double v : m.span_us) w.f64(v);
}

RankReport decode_rank_report(Reader& r) {
  RankReport m;
  m.pid = r.i64();
  m.sent = r.i64();
  m.e_recip = r.f64();
  m.counters.resize(r.count(8));
  for (std::int64_t& v : m.counters) v = r.i64();
  m.ledger.resize(r.count(8));
  for (std::int64_t& v : m.ledger) v = r.i64();
  m.faults.resize(r.count(8));
  for (std::int64_t& v : m.faults) v = r.i64();
  const std::size_t nspans = r.count(12);  // u32 id + f64 dur per span
  m.span_id.resize(nspans);
  for (std::uint16_t& v : m.span_id) v = static_cast<std::uint16_t>(r.u32());
  m.span_us.resize(nspans);
  for (double& v : m.span_us) v = r.f64();
  return m;
}

void encode_payload(Writer& w, const StateBlock& m) {
  w.u64(m.steps);
  w.f64(m.e_recip);
  w.count(m.directory.size());
  for (std::int32_t v : m.directory) w.i32(v);
  w.count(m.unit_sb.size());
  for (std::int32_t v : m.unit_sb) w.i32(v);
  w.count(m.unit_id.size());
  for (std::int32_t v : m.unit_id) w.i32(v);
  w.count(m.atom_id.size());
  for (std::size_t k = 0; k < m.atom_id.size(); ++k) {
    w.i32(m.atom_id[k]);
    const AtomDyn& a = m.atoms[k];
    w.vec3i(a.pos);
    w.vec3l(a.vel);
    w.vec3l(a.f_short);
    w.vec3l(a.f_long);
  }
}

StateBlock decode_state_block(Reader& r) {
  StateBlock m;
  m.steps = r.u64();
  m.e_recip = r.f64();
  m.directory.resize(r.count(4));
  for (std::int32_t& v : m.directory) v = r.i32();
  m.unit_sb.resize(r.count(4));
  for (std::int32_t& v : m.unit_sb) v = r.i32();
  m.unit_id.resize(r.count(4));
  for (std::int32_t& v : m.unit_id) v = r.i32();
  const std::size_t n = r.count(kMigrationRecBytes);
  m.atom_id.resize(n);
  m.atoms.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    m.atom_id[k] = r.i32();
    AtomDyn& a = m.atoms[k];
    a.pos = r.vec3i();
    a.vel = r.vec3l();
    a.f_short = r.vec3l();
    a.f_long = r.vec3l();
  }
  return m;
}

void encode_payload(Writer& w, const WorkerError& m) {
  w.u8(m.code);
  w.u32(m.detail);
}

WorkerError decode_worker_error(Reader& r) {
  WorkerError m;
  m.code = r.u8();
  m.detail = r.u32();
  return m;
}

Payload decode_payload(MsgType t, const std::uint8_t* data, std::size_t len) {
  Reader r(data, len);
  Payload p;
  switch (t) {
    case MsgType::kPositionBatch: p = decode_position_batch(r); break;
    case MsgType::kBondPositions: p = decode_bond_positions(r); break;
    case MsgType::kForceBatch: p = decode_force_batch(r); break;
    case MsgType::kMeshCharge: p = decode_mesh_values<MeshCharge>(r); break;
    case MsgType::kMeshPhi: p = decode_mesh_values<MeshPhi>(r); break;
    case MsgType::kFftSegment: p = decode_fft_segment(r); break;
    case MsgType::kMeshEnergyBlock: p = decode_energy_block(r); break;
    case MsgType::kKineticTerms: p = decode_kinetic_terms(r); break;
    case MsgType::kScaleVelocities: p = decode_scale_velocities(r); break;
    case MsgType::kMigrationBatch: p = decode_migration_batch(r); break;
    case MsgType::kDirectoryUpdate: p = decode_directory_update(r); break;
    case MsgType::kControl: p = decode_control(r); break;
    case MsgType::kBarrier: p = decode_barrier(r); break;
    case MsgType::kAck: p = decode_ack(r); break;
    case MsgType::kRankReport: p = decode_rank_report(r); break;
    case MsgType::kStateBlock: p = decode_state_block(r); break;
    case MsgType::kWorkerError: p = decode_worker_error(r); break;
    default:
      throw WireError(WireError::Kind::kBadMsgType,
                      "unknown message type " +
                          std::to_string(static_cast<unsigned>(t)));
  }
  r.finish();
  return p;
}

}  // namespace

MsgType type_of(const Payload& p) {
  struct V {
    MsgType operator()(const PositionBatch&) { return MsgType::kPositionBatch; }
    MsgType operator()(const BondPositions&) { return MsgType::kBondPositions; }
    MsgType operator()(const ForceBatch&) { return MsgType::kForceBatch; }
    MsgType operator()(const MeshCharge&) { return MsgType::kMeshCharge; }
    MsgType operator()(const MeshPhi&) { return MsgType::kMeshPhi; }
    MsgType operator()(const FftSegment&) { return MsgType::kFftSegment; }
    MsgType operator()(const MeshEnergyBlock&) {
      return MsgType::kMeshEnergyBlock;
    }
    MsgType operator()(const KineticTerms&) { return MsgType::kKineticTerms; }
    MsgType operator()(const ScaleVelocities&) {
      return MsgType::kScaleVelocities;
    }
    MsgType operator()(const MigrationBatch&) {
      return MsgType::kMigrationBatch;
    }
    MsgType operator()(const DirectoryUpdate&) {
      return MsgType::kDirectoryUpdate;
    }
    MsgType operator()(const Control&) { return MsgType::kControl; }
    MsgType operator()(const Barrier&) { return MsgType::kBarrier; }
    MsgType operator()(const Ack&) { return MsgType::kAck; }
    MsgType operator()(const RankReport&) { return MsgType::kRankReport; }
    MsgType operator()(const StateBlock&) { return MsgType::kStateBlock; }
    MsgType operator()(const WorkerError&) { return MsgType::kWorkerError; }
  };
  return std::visit(V{}, p);
}

std::vector<std::uint8_t> encode_frame(int phase, int src, int dst,
                                       std::uint64_t seq, const Payload& p) {
  std::vector<std::uint8_t> buf(kHeaderBytes);
  Writer w(buf);
  std::visit([&](const auto& m) { encode_payload(w, m); }, p);
  const std::size_t payload_len = buf.size() - kHeaderBytes;
  if (payload_len > kMaxPayloadBytes)
    throw WireError(WireError::Kind::kBadLength, "payload exceeds cap");
  unsigned char* h = buf.data();
  store_u32le(h, kWireMagic);
  h[4] = kWireVersion;
  h[5] = static_cast<std::uint8_t>(phase);
  store_u16le(h + 6, static_cast<std::uint16_t>(type_of(p)));
  store_u16le(h + 8, static_cast<std::uint16_t>(src));
  store_u16le(h + 10, static_cast<std::uint16_t>(dst));
  store_u64le(h + 12, seq);
  store_u32le(h + 20, static_cast<std::uint32_t>(payload_len));
  std::uint32_t crc = io::crc32(0, h, 24);
  crc = io::crc32(crc, h + kHeaderBytes, payload_len);
  store_u32le(h + 24, crc);
  return buf;
}

int validate_frame(const std::uint8_t* data, std::size_t len) {
  if (len < kHeaderBytes) return 1;
  if (load_u32le(data) != kWireMagic) return 2;
  if (data[4] != kWireVersion) return 3;
  const std::uint32_t payload_len = load_u32le(data + 20);
  if (payload_len > kMaxPayloadBytes) return 4;
  if (len != kHeaderBytes + payload_len) return 4;
  std::uint32_t crc = io::crc32(0, data, 24);
  crc = io::crc32(crc, data + kHeaderBytes, payload_len);
  if (crc != load_u32le(data + 24)) return 5;
  return 0;
}

Frame decode_frame(const std::vector<std::uint8_t>& bytes) {
  const std::uint8_t* d = bytes.data();
  if (bytes.size() < kHeaderBytes)
    throw WireError(WireError::Kind::kTruncated, "buffer shorter than header");
  if (load_u32le(d) != kWireMagic)
    throw WireError(WireError::Kind::kBadMagic, "bad magic");
  if (d[4] != kWireVersion)
    throw WireError(WireError::Kind::kBadVersion,
                    "unsupported wire version " + std::to_string(d[4]));
  const std::uint32_t payload_len = load_u32le(d + 20);
  if (payload_len > kMaxPayloadBytes)
    throw WireError(WireError::Kind::kBadLength, "payload length over cap");
  if (bytes.size() < kHeaderBytes + payload_len)
    throw WireError(WireError::Kind::kTruncated,
                    "buffer shorter than declared frame");
  if (bytes.size() > kHeaderBytes + payload_len)
    throw WireError(WireError::Kind::kBadLength,
                    "trailing bytes after frame");
  std::uint32_t crc = io::crc32(0, d, 24);
  crc = io::crc32(crc, d + kHeaderBytes, payload_len);
  if (crc != load_u32le(d + 24))
    throw WireError(WireError::Kind::kBadCrc, "frame CRC mismatch");

  Frame f;
  f.header.version = d[4];
  f.header.phase = d[5];
  f.header.msg_type = static_cast<MsgType>(load_u16le(d + 6));
  f.header.src = load_u16le(d + 8);
  f.header.dst = load_u16le(d + 10);
  f.header.seq = load_u64le(d + 12);
  f.header.payload_len = payload_len;
  f.payload = decode_payload(f.header.msg_type, d + kHeaderBytes, payload_len);
  return f;
}

}  // namespace anton::parallel::wire
