// The SPMD rank body of the virtual-node runtime.
//
// Since the full-SPMD split (DESIGN.md §5h) the physics no longer runs in
// the coordinator: every rank -- a thread under the in-process transport,
// a forked OS process under shm-fork/tcp -- executes its own WorkerRuntime
// event loop against its own private memory (units, atoms, bins, mesh
// slabs). Deliveries are genuine one-way frames consumed by the
// destination rank; reliable-delivery acknowledgments ride the return
// path as real kAck frames; end-of-phase synchronization is an explicit
// Barrier exchange with the coordinator, which also routes rank-to-rank
// frames (hub-and-spoke) and folds each rank's RankReport diagnostics.
//
// The choreography phases here are the SAME algorithms the coordinator
// used to run over all nodes at once, restricted to `self`: every kernel
// call, accumulation order and quantization is unchanged, so the
// distributed trajectory stays bitwise identical to AntonEngine's on any
// node grid and any backend.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/anton_engine.hpp"
#include "fft/fft1d.hpp"
#include "nt/nt_geometry.hpp"
#include "parallel/comm_stats.hpp"
#include "parallel/fault.hpp"
#include "parallel/node_program.hpp"
#include "parallel/transport.hpp"
#include "parallel/wire.hpp"

namespace anton::parallel {

/// One position record (id + lattice position) -- exactly the wire
/// record, so mailboxes hold what the frames carry.
using AtomRecord = wire::PosRec;

/// Dynamic state of one home atom, owned by exactly one rank at a time
/// and moved whole during migration; the wire's migration record.
using AtomState = wire::AtomDyn;

/// One virtual node's private memory. Under SPMD this lives inside the
/// rank that owns it (the coordinator keeps a mirror copy for diagnostics
/// and checkpoint capture only). Nothing here is ever read by another
/// rank: inter-node data flow happens only through wire frames, applied
/// into the RECEIVER's mailbox fields.
struct NodeState {
  // Home ownership.
  std::vector<std::int32_t> units;  // unit ids homed here
  std::unordered_map<std::int32_t, AtomState> atoms;
  std::map<std::int32_t, std::vector<std::int32_t>> bins;  // sb -> ids

  // Mailboxes (refilled every step).
  std::map<std::int32_t, std::vector<AtomRecord>> recs;  // pair phase
  // SoA mirror of recs plus batch scratch for the vectorized pair-block
  // and mesh kernels (rank-private, rebuilt from recs each pair phase).
  std::map<std::int32_t, BinSoA> soa;
  PairBlockScratch pscr;
  MeshScratch mscr;
  std::vector<Vec3i> rpos;         // dispatched positions, by atom id
  std::vector<Vec3l> partial;      // force partials, by atom id
  std::vector<char> ptouched;      // partial[i] valid flags
  std::vector<std::int32_t> plist; // touched partial ids

  // Term ownership (rebuilt at migration; destination atom lives here).
  std::vector<std::int32_t> bonds, angles, dihedrals, exclusions, vsites;

  // Mesh state: node-local spread accumulator over the full mesh plus
  // the block-owned FFT slab (block origin/extent in the members below).
  std::vector<std::int64_t> spread_q;   // full mesh, wrapping accum
  std::vector<char> stouched;           // spread_q[i] touched flags
  std::vector<std::int32_t> touched;    // touched mesh indices
  std::vector<std::int64_t> mesh_q;     // owned block, quantized charge
  std::vector<double> scratch_q;        // owned block, double charge
  std::vector<fft::cplx> fft_grid;      // owned block, transform state
  std::vector<std::int64_t> mesh_phi;   // owned block, quantized phi
  std::vector<std::int64_t> halo_phi;   // full mesh, phi at touched pts
  std::vector<std::vector<std::int32_t>> halo_req;  // per src: indices
  std::vector<fft::cplx> fft_line;      // assembled line (as FFT owner)

  Vec3i block_lo{0, 0, 0};  // owned mesh block origin
  Vec3i block_sz{0, 0, 0};  // owned mesh block extent

  std::int64_t sent = 0;  // messages sent in the current cycle window
};

/// Channel tags for the reliable layer (one stream per
/// (src, dst, phase) triple; wire::kChControl = 7 is the control plane).
enum Phase : int {
  kChPosition = 0,
  kChForce,
  kChBond,
  kChMesh,
  kChFft,
  kChMigration,
  kChReduce,
};

/// Rebuilds one rank's subbox bins and owned term-index lists from the
/// replicated directory/unit tables. Shared by the worker (after
/// migration / restore) and the coordinator (for its diagnostic mirror);
/// both must bin identically, so there is exactly one implementation.
void rebuild_node_bins_and_terms(
    const Topology& top, const std::vector<std::vector<std::int32_t>>& units,
    const std::vector<std::int32_t>& unit_sb,
    const std::vector<std::int32_t>& directory, int self, NodeState& nd);

/// The immutable world a rank computes against: replicated static context
/// built once by the coordinator before spawn_workers(). Under shm-fork /
/// tcp the fork image carries it; under in-process transport the worker
/// threads read it through these const pointers (never written after
/// spawn, so the sharing is race-free).
struct VmWorld {
  const NodeProgram* np = nullptr;        // kernels + top/box/lat/gse
  const nt::NtGeometry* geom = nullptr;
  const IntegrationCoefs* coefs = nullptr;
  const core::AntonConfig* acfg = nullptr;
  const std::vector<std::vector<std::int32_t>>* units = nullptr;
  const std::vector<std::vector<ConstraintBond>>* group_constraints = nullptr;
  const std::vector<std::vector<int>>* consumers = nullptr;
  const std::vector<std::vector<std::int32_t>>* node_subboxes = nullptr;
  const std::vector<std::vector<std::int32_t>>* dest_feed = nullptr;
  const std::vector<std::vector<std::int32_t>>* vsite_feed = nullptr;
  const std::vector<int>* mesh_owner = nullptr;  // array of 3 (per axis)
  const std::vector<int>* mesh_start = nullptr;  // array of 3 (per axis)
  int nnodes = 0;
};

/// One rank's event loop: receives Control/data frames from its endpoint,
/// executes the MTS-cycle choreography on command, and reports
/// diagnostics (workload counters, comm ledger, fault counters, phase
/// timings) back to the coordinator as RankReport frames.
class WorkerRuntime {
 public:
  /// Span-table indices a RankReport's span_id entries refer to; the
  /// coordinator maps them back to tracer span names.
  enum SpanId : int {
    kSpanPositionMulticast = 0,
    kSpanCompute,
    kSpanBondDispatch,
    kSpanBondTerms,
    kSpanForceReturn,
    kSpanSpread,
    kSpanFft,
    kSpanInterpolate,
    kSpanCorrection,
    kSpanIntegrate,
    kSpanMigrate,
    kSpanMtsCycle,
    kNumSpans,
  };
  static const char* const kSpanNames[kNumSpans];

  /// Fixed element counts of the flat RankReport vectors (the coordinator
  /// validates and unpacks against these).
  static constexpr int kReportCounters = 7;  // NodeCounters deltas
  static constexpr int kReportLedger = 23;   // 7 phases x 3 + 2 totals
  static constexpr int kReportFaults = 8;    // FaultCounters deltas

  WorkerRuntime(const VmWorld& w, int rank, WorkerEndpoint& ep,
                NodeState initial, std::vector<std::int32_t> directory,
                std::vector<std::int32_t> unit_sb, std::int64_t steps);

  /// The worker event loop. Returns on Shutdown; TransportError (hub
  /// gone) propagates to the transport's worker wrapper.
  void run();

 private:
  /// RAII wall-clock accumulator feeding the RankReport span table
  /// (microseconds; the coordinator rescales into tracer spans).
  class SpanTimer {
   public:
    explicit SpanTimer(double& acc)
        : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
    ~SpanTimer() {
      acc_ += std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0_)
                  .count();
    }
    SpanTimer(const SpanTimer&) = delete;
    SpanTimer& operator=(const SpanTimer&) = delete;

   private:
    double& acc_;
    std::chrono::steady_clock::time_point t0_;
  };

  const Topology& top() const { return *np_.top; }
  const fixed::PositionLattice& lat() const { return *np_.lat; }

  // --- event loop ---
  wire::Frame recv_frame();
  void handle(const wire::Frame& f);
  void send_ctl(wire::Payload payload);
  void send_report();
  void send_state_block();
  void report_error(const wire::WireError& we);
  void await_rollback();
  void ack_abort();
  void restore(const wire::StateBlock& b);
  void init_forces();
  void run_cycle();

  // --- delivery + barrier ---
  int torus_hops(int dst) const;
  /// Delivers one typed message: local (dst == self) applies immediately
  /// with no accounting; remote goes through the reliable link as a
  /// one-way frame and is accounted at its measured size.
  void deliver(PhaseComm& phase, int channel_phase, int dst,
               wire::Payload payload);
  /// Applies one delivered message to this rank's state -- the
  /// receiver-side half of every choreography phase.
  void apply_payload(int src, const wire::Payload& p);
  /// End-of-phase synchronization: announce arrival to the coordinator,
  /// then consume inbound frames (applying data, pruning acks) until the
  /// matching release. Abort/Shutdown controls unwind via exceptions.
  void barrier();

  // --- choreography phases (the coordinator's old bodies, self-only) ---
  std::vector<AtomRecord>& records_of(std::int32_t sb);
  void touch_partial(std::int32_t id);
  Vec3i pos_of(std::int32_t id) const;
  void position_multicast();
  void pair_phase();
  void bond_dispatch_and_terms(bool long_range);
  void force_return(bool long_range);
  void vsite_force_round(bool long_range);
  void compute_short_forces();
  void compute_long_forces();
  void spread_and_halo();
  void distributed_fft_stage(int axis, bool inverse);
  void convolve_and_energy();
  void phi_halo_back_and_interpolate();
  void kick_all(bool long_kick);
  void drift_and_constrain();
  void finish_drift();
  void rattle_groups();
  void apply_thermostat();
  void migrate_by_message();

  // --- static world ---
  VmWorld w_;
  int rank_;
  WorkerEndpoint& ep_;
  NodeProgram np_;  // by-value copy: kernel calls look exactly like the
                    // coordinator's old ones
  fft::Fft1D fft1_;

  // --- reliable delivery ---
  ReliableLink link_;

  // --- owned dynamic state ---
  NodeState nd_;
  std::vector<std::int32_t> directory_;  // atom -> home rank (replica)
  std::vector<std::int32_t> unit_sb_;    // unit -> subbox (own units live)
  std::int64_t steps_ = 0;
  double e_recip_ = 0.0;
  /// Assembled FFT lines this rank owns in the current stage, keyed by
  /// the line's (a, b) coordinates on the stage axis.
  std::map<std::pair<int, int>, std::vector<fft::cplx>> fft_lines_;

  // Rank-0 reduction scratch (the ordered reduce destinations; only
  // allocated on rank 0).
  std::vector<double> red_kin_;
  std::vector<double> master_q_full_;
  std::vector<double> master_phi_full_;

  // --- diagnostics (lifetime totals; bases advance at each report) ---
  CommLedger led_, led_base_;
  core::NodeCounters nc_, nc_base_;
  FaultCounters fc_base_;
  std::int64_t sent_ = 0;  // messages sent since cycle/init start
  double span_acc_[kNumSpans] = {};

  // --- control-plane sequencing ---
  std::uint32_t bar_id_ = 0;   // next barrier id (resets on restore)
  std::uint64_t ctl_seq_ = 0;  // raw control-frame sequence
};

}  // namespace anton::parallel
