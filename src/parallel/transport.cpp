#include "parallel/transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <new>

#include "io/crc32.hpp"
#include "io/endian.hpp"
#include "parallel/wire.hpp"

namespace anton::parallel {

namespace {

constexpr std::size_t kMaxFrameBytes =
    wire::kHeaderBytes + wire::kMaxPayloadBytes;

[[noreturn]] void throw_rejected(int dst, int code) {
  using K = wire::WireError::Kind;
  const K kind = code == 1   ? K::kTruncated
                 : code == 2 ? K::kBadMagic
                 : code == 3 ? K::kBadVersion
                 : code == 4 ? K::kBadLength
                             : K::kBadCrc;
  throw wire::WireError(kind, "endpoint for node " + std::to_string(dst) +
                                  " rejected frame (code " +
                                  std::to_string(code) + ")");
}

// ---------------------------------------------------------------------------
// In-process backend: the endpoint is a function call. The frame is still
// a fully serialized byte string and still gets endpoint validation; the
// echo is the input buffer itself (zero-copy).
// ---------------------------------------------------------------------------

class InProcTransport final : public ByteTransport {
 public:
  const char* name() const override { return "inproc"; }
  bool local() const override { return true; }

  const std::vector<std::uint8_t>& roundtrip(
      int dst, const std::vector<std::uint8_t>& frame) override {
    const int code = wire::validate_frame(frame.data(), frame.size());
    if (code != 0) throw_rejected(dst, code);
    ++stats_.roundtrips;
    stats_.bytes += static_cast<std::int64_t>(frame.size());
    return frame;
  }
};

// ---------------------------------------------------------------------------
// Shared-memory rings. One worker process per node; frames stream through
// a request/response pair of SPSC byte rings in an anonymous MAP_SHARED
// mapping. The worker is allocation-free after fork: it validates each
// frame in a buffer preallocated by the parent and echoes it back.
// ---------------------------------------------------------------------------

struct alignas(64) Cursor {
  std::atomic<std::uint64_t> v{0};
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory rings require lock-free 64-bit atomics");

struct Ring {
  Cursor head;  // producer byte cursor
  Cursor tail;  // consumer byte cursor
};

struct ShmControl {
  Ring req;  // coordinator -> worker
  Ring rsp;  // worker -> coordinator
  std::atomic<std::uint32_t> stop{0};
};

/// Copies `n` bytes into the ring, spinning via `idle` while full.
template <class Idle>
void ring_write(Ring& r, unsigned char* data, std::size_t cap,
                const std::uint8_t* src, std::size_t n, Idle&& idle) {
  std::size_t off = 0;
  while (off < n) {
    const std::uint64_t head = r.head.v.load(std::memory_order_relaxed);
    const std::uint64_t tail = r.tail.v.load(std::memory_order_acquire);
    const std::size_t space = cap - static_cast<std::size_t>(head - tail);
    if (space == 0) {
      idle();
      continue;
    }
    const std::size_t chunk = std::min(space, n - off);
    const std::size_t pos = static_cast<std::size_t>(head % cap);
    const std::size_t first = std::min(chunk, cap - pos);
    std::memcpy(data + pos, src + off, first);
    std::memcpy(data, src + off + first, chunk - first);
    r.head.v.store(head + chunk, std::memory_order_release);
    off += chunk;
  }
}

/// Copies `n` bytes out of the ring, spinning via `idle` while empty.
template <class Idle>
void ring_read(Ring& r, const unsigned char* data, std::size_t cap,
               std::uint8_t* dst, std::size_t n, Idle&& idle) {
  std::size_t off = 0;
  while (off < n) {
    const std::uint64_t tail = r.tail.v.load(std::memory_order_relaxed);
    const std::uint64_t head = r.head.v.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(head - tail);
    if (avail == 0) {
      idle();
      continue;
    }
    const std::size_t chunk = std::min(avail, n - off);
    const std::size_t pos = static_cast<std::size_t>(tail % cap);
    const std::size_t first = std::min(chunk, cap - pos);
    std::memcpy(dst + off, data + pos, first);
    std::memcpy(dst + off + first, data, chunk - first);
    r.tail.v.store(tail + chunk, std::memory_order_release);
    off += chunk;
  }
}

/// The worker body: read [len][frame], validate, echo [len][frame][status].
/// Runs in the forked child; everything it touches was mapped or allocated
/// before the fork, so it never calls malloc (fork from a multithreaded
/// parent must not).
[[noreturn]] void shm_worker_loop(ShmControl* c, unsigned char* req_data,
                                  unsigned char* rsp_data, std::size_t cap,
                                  std::uint8_t* buf) {
  std::uint64_t spins = 0;
  auto idle = [&] {
    if (c->stop.load(std::memory_order_acquire)) _exit(0);
    if ((++spins & 0x3FFu) == 0) sched_yield();
  };
  for (;;) {
    std::uint8_t n4[4];
    ring_read(c->req, req_data, cap, n4, 4, idle);
    const std::uint32_t len = io::load_u32le(n4);
    if (len > kMaxFrameBytes) _exit(3);  // framing broken; cannot resync
    ring_read(c->req, req_data, cap, buf, len, idle);
    const int status = wire::validate_frame(buf, len);
    io::store_u32le(n4, len);
    ring_write(c->rsp, rsp_data, cap, n4, 4, idle);
    ring_write(c->rsp, rsp_data, cap, buf, len, idle);
    io::store_u32le(n4, static_cast<std::uint32_t>(status));
    ring_write(c->rsp, rsp_data, cap, n4, 4, idle);
  }
}

class ShmForkTransport final : public ByteTransport {
 public:
  ShmForkTransport(int nnodes, std::size_t ring_bytes)
      : cap_(std::max<std::size_t>(ring_bytes, 4096)) {
    io::crc32(0, "", 0);  // warm the CRC table before any fork
    child_buf_.resize(kMaxFrameBytes);
    nodes_.resize(static_cast<std::size_t>(nnodes));
    for (int n = 0; n < nnodes; ++n) {
      void* mem = mmap(nullptr, map_len(), PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
      if (mem == MAP_FAILED)
        throw TransportError(n, "mmap failed: " +
                                    std::string(std::strerror(errno)));
      new (mem) ShmControl{};
      nodes_[static_cast<std::size_t>(n)].mem = mem;
      spawn(n);
    }
  }

  ~ShmForkTransport() override {
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) shutdown(n);
    for (Node& nd : nodes_)
      if (nd.mem) munmap(nd.mem, map_len());
  }

  const char* name() const override { return "shm-fork"; }

  const std::vector<std::uint8_t>& roundtrip(
      int dst, const std::vector<std::uint8_t>& frame) override {
    Node& nd = nodes_[static_cast<std::size_t>(dst)];
    if (nd.pid < 0)
      throw TransportError(dst, "worker for node " + std::to_string(dst) +
                                    " is down");
    if (frame.size() > kMaxFrameBytes)
      throw wire::WireError(wire::WireError::Kind::kBadLength,
                            "frame exceeds transport cap");
    ShmControl* c = ctl(dst);
    std::uint64_t spins = 0;
    auto idle = [&] {
      if ((++spins & 0xFFu) == 0) {
        check_alive(dst);
        sched_yield();
      }
    };
    std::uint8_t n4[4];
    io::store_u32le(n4, static_cast<std::uint32_t>(frame.size()));
    ring_write(c->req, req_data(dst), cap_, n4, 4, idle);
    ring_write(c->req, req_data(dst), cap_, frame.data(), frame.size(), idle);
    ring_read(c->rsp, rsp_data(dst), cap_, n4, 4, idle);
    const std::uint32_t rlen = io::load_u32le(n4);
    if (rlen != frame.size())
      throw TransportError(dst, "echo length mismatch from node " +
                                    std::to_string(dst));
    echo_.resize(rlen);
    ring_read(c->rsp, rsp_data(dst), cap_, echo_.data(), rlen, idle);
    ring_read(c->rsp, rsp_data(dst), cap_, n4, 4, idle);
    const std::uint32_t status = io::load_u32le(n4);
    if (status != 0) throw_rejected(dst, static_cast<int>(status));
    ++stats_.roundtrips;
    stats_.bytes += static_cast<std::int64_t>(frame.size());
    return echo_;
  }

  void kill_node(int n) override {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid < 0) return;
    ::kill(nd.pid, SIGKILL);
    int st = 0;
    waitpid(nd.pid, &st, 0);
    nd.pid = -1;
  }

  void restart_node(int n) override {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid >= 0) {
      int st = 0;
      if (waitpid(nd.pid, &st, WNOHANG) != nd.pid) return;  // still alive
      nd.pid = -1;  // externally killed; reaped just now
    }
    // The dead worker may have been mid-frame: reset both rings.
    ShmControl* c = ctl(n);
    c->req.head.v.store(0);
    c->req.tail.v.store(0);
    c->rsp.head.v.store(0);
    c->rsp.tail.v.store(0);
    c->stop.store(0);
    spawn(n);
  }

  long worker_pid(int n) const override {
    return nodes_[static_cast<std::size_t>(n)].pid;
  }

 private:
  struct Node {
    void* mem = nullptr;
    pid_t pid = -1;
  };

  std::size_t map_len() const { return sizeof(ShmControl) + 2 * cap_; }
  ShmControl* ctl(int n) {
    return static_cast<ShmControl*>(nodes_[static_cast<std::size_t>(n)].mem);
  }
  unsigned char* req_data(int n) {
    return reinterpret_cast<unsigned char*>(ctl(n)) + sizeof(ShmControl);
  }
  unsigned char* rsp_data(int n) { return req_data(n) + cap_; }

  void spawn(int n) {
    ShmControl* c = ctl(n);
    const pid_t pid = fork();
    if (pid < 0)
      throw TransportError(n,
                           "fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0)
      shm_worker_loop(c, req_data(n), rsp_data(n), cap_, child_buf_.data());
    nodes_[static_cast<std::size_t>(n)].pid = pid;
  }

  /// Reaps the worker if it exited; an exited worker mid-roundtrip is an
  /// endpoint loss, surfaced as TransportError.
  void check_alive(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid < 0)
      throw TransportError(n, "worker for node " + std::to_string(n) +
                                  " is down");
    int st = 0;
    if (waitpid(nd.pid, &st, WNOHANG) == nd.pid) {
      nd.pid = -1;
      throw TransportError(n, "worker for node " + std::to_string(n) +
                                  " died mid-roundtrip");
    }
  }

  void shutdown(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid < 0) return;
    ctl(n)->stop.store(1, std::memory_order_release);
    int st = 0;
    for (int i = 0; i < 200; ++i) {
      if (waitpid(nd.pid, &st, WNOHANG) == nd.pid) {
        nd.pid = -1;
        return;
      }
      usleep(1000);
    }
    ::kill(nd.pid, SIGKILL);
    waitpid(nd.pid, &st, 0);
    nd.pid = -1;
  }

  std::size_t cap_;
  std::vector<Node> nodes_;
  std::vector<std::uint8_t> child_buf_;  // preallocated pre-fork per child
  std::vector<std::uint8_t> echo_;
};

// ---------------------------------------------------------------------------
// TCP loopback. Same worker protocol, but every frame crosses a real
// kernel socket boundary in each direction. One listening socket and one
// accepted connection per node; workers are forked children that connect
// back over 127.0.0.1.
// ---------------------------------------------------------------------------

bool read_full(int fd, std::uint8_t* dst, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = recv(fd, dst + off, n - off, 0);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error: the peer is gone
  }
  return true;
}

bool write_full(int fd, const std::uint8_t* src, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = send(fd, src + off, n - off, MSG_NOSIGNAL);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

[[noreturn]] void tcp_worker_loop(int fd, std::uint8_t* buf) {
  for (;;) {
    std::uint8_t n4[4];
    if (!read_full(fd, n4, 4)) _exit(0);  // coordinator closed: shut down
    const std::uint32_t len = io::load_u32le(n4);
    if (len > kMaxFrameBytes) _exit(3);
    if (!read_full(fd, buf, len)) _exit(0);
    const int status = wire::validate_frame(buf, len);
    io::store_u32le(n4, len);
    if (!write_full(fd, n4, 4) || !write_full(fd, buf, len)) _exit(0);
    io::store_u32le(n4, static_cast<std::uint32_t>(status));
    if (!write_full(fd, n4, 4)) _exit(0);
  }
}

class TcpTransport final : public ByteTransport {
 public:
  explicit TcpTransport(int nnodes) {
    io::crc32(0, "", 0);  // warm the CRC table before any fork
    child_buf_.resize(kMaxFrameBytes);
    nodes_.resize(static_cast<std::size_t>(nnodes));
    for (int n = 0; n < nnodes; ++n) {
      listen_on(n);
      spawn(n);
    }
  }

  ~TcpTransport() override {
    for (Node& nd : nodes_) {
      if (nd.fd >= 0) close(nd.fd);  // EOF tells the worker to exit
    }
    for (Node& nd : nodes_) {
      if (nd.pid >= 0) {
        int st = 0;
        if (waitpid(nd.pid, &st, WNOHANG) != nd.pid) {
          ::kill(nd.pid, SIGKILL);
          waitpid(nd.pid, &st, 0);
        }
      }
      if (nd.listen_fd >= 0) close(nd.listen_fd);
    }
  }

  const char* name() const override { return "tcp-loopback"; }

  const std::vector<std::uint8_t>& roundtrip(
      int dst, const std::vector<std::uint8_t>& frame) override {
    Node& nd = nodes_[static_cast<std::size_t>(dst)];
    if (nd.fd < 0)
      throw TransportError(dst, "connection to node " + std::to_string(dst) +
                                    " is down");
    if (frame.size() > kMaxFrameBytes)
      throw wire::WireError(wire::WireError::Kind::kBadLength,
                            "frame exceeds transport cap");
    std::uint8_t n4[4];
    io::store_u32le(n4, static_cast<std::uint32_t>(frame.size()));
    if (!write_full(nd.fd, n4, 4) ||
        !write_full(nd.fd, frame.data(), frame.size()))
      return drop_connection(dst, "send failed");
    if (!read_full(nd.fd, n4, 4)) return drop_connection(dst, "echo lost");
    const std::uint32_t rlen = io::load_u32le(n4);
    if (rlen != frame.size())
      return drop_connection(dst, "echo length mismatch");
    echo_.resize(rlen);
    if (!read_full(nd.fd, echo_.data(), rlen) || !read_full(nd.fd, n4, 4))
      return drop_connection(dst, "echo lost");
    const std::uint32_t status = io::load_u32le(n4);
    if (status != 0) throw_rejected(dst, static_cast<int>(status));
    ++stats_.roundtrips;
    stats_.bytes += static_cast<std::int64_t>(frame.size());
    return echo_;
  }

  void kill_node(int n) override {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid >= 0) {
      ::kill(nd.pid, SIGKILL);
      int st = 0;
      waitpid(nd.pid, &st, 0);
      nd.pid = -1;
    }
    if (nd.fd >= 0) {
      close(nd.fd);
      nd.fd = -1;
    }
  }

  void restart_node(int n) override {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid >= 0 && nd.fd >= 0) return;  // still up
    if (nd.pid >= 0) {  // externally killed: reap
      int st = 0;
      if (waitpid(nd.pid, &st, WNOHANG) != nd.pid) {
        ::kill(nd.pid, SIGKILL);
        waitpid(nd.pid, &st, 0);
      }
      nd.pid = -1;
    }
    if (nd.fd >= 0) {
      close(nd.fd);
      nd.fd = -1;
    }
    spawn(n);
  }

  long worker_pid(int n) const override {
    return nodes_[static_cast<std::size_t>(n)].pid;
  }

 private:
  struct Node {
    int listen_fd = -1;
    int fd = -1;
    pid_t pid = -1;
    std::uint16_t port = 0;
  };

  void listen_on(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    nd.listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    if (nd.listen_fd < 0)
      throw TransportError(n, "socket failed: " +
                                  std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (bind(nd.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
        listen(nd.listen_fd, 1) != 0)
      throw TransportError(n, "bind/listen failed: " +
                                  std::string(std::strerror(errno)));
    socklen_t alen = sizeof addr;
    if (getsockname(nd.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &alen) != 0)
      throw TransportError(n, "getsockname failed: " +
                                  std::string(std::strerror(errno)));
    nd.port = ntohs(addr.sin_port);
  }

  void spawn(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    const pid_t pid = fork();
    if (pid < 0)
      throw TransportError(n,
                           "fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0) {
      // The worker owns exactly one socket: its connection back to the
      // coordinator. Drop every inherited descriptor first.
      for (const Node& o : nodes_) {
        if (o.listen_fd >= 0 && o.listen_fd != nd.listen_fd)
          close(o.listen_fd);
        if (o.fd >= 0) close(o.fd);
      }
      const int s = socket(AF_INET, SOCK_STREAM, 0);
      if (s < 0) _exit(2);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(nd.port);
      if (connect(s, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0)
        _exit(2);
      close(nd.listen_fd);
      const int one = 1;
      setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      tcp_worker_loop(s, child_buf_.data());
    }
    nd.pid = pid;
    // Accept with a timeout so a worker that died before connecting (or a
    // sandbox that blocks loopback) fails cleanly instead of hanging.
    pollfd pfd{nd.listen_fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, 10000);
    if (pr <= 0) {
      ::kill(pid, SIGKILL);
      int st = 0;
      waitpid(pid, &st, 0);
      nd.pid = -1;
      throw TransportError(n, "worker for node " + std::to_string(n) +
                                  " never connected");
    }
    nd.fd = accept(nd.listen_fd, nullptr, nullptr);
    if (nd.fd < 0)
      throw TransportError(n, "accept failed: " +
                                  std::string(std::strerror(errno)));
    const int one = 1;
    setsockopt(nd.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  [[noreturn]] const std::vector<std::uint8_t>& drop_connection(
      int n, const std::string& why) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.fd >= 0) {
      close(nd.fd);
      nd.fd = -1;
    }
    throw TransportError(n, why + " for node " + std::to_string(n) +
                                " (worker gone)");
  }

  std::vector<Node> nodes_;
  std::vector<std::uint8_t> child_buf_;  // preallocated pre-fork per child
  std::vector<std::uint8_t> echo_;
};

}  // namespace

std::unique_ptr<ByteTransport> make_transport(int nnodes,
                                              const TransportOptions& opts) {
  switch (opts.kind) {
    case TransportKind::kInProc:
      return std::make_unique<InProcTransport>();
    case TransportKind::kShmFork:
      return std::make_unique<ShmForkTransport>(nnodes, opts.ring_bytes);
    case TransportKind::kTcp:
      return std::make_unique<TcpTransport>(nnodes);
  }
  throw std::invalid_argument("make_transport: unknown kind");
}

}  // namespace anton::parallel
