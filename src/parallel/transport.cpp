#include "parallel/transport.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <new>
#include <thread>

#include "io/crc32.hpp"
#include "io/endian.hpp"
#include "parallel/wire.hpp"

namespace anton::parallel {

namespace {

using Bytes = std::vector<std::uint8_t>;

constexpr std::size_t kMaxFrameBytes =
    wire::kHeaderBytes + wire::kMaxPayloadBytes;

// ---------------------------------------------------------------------------
// Length-prefixed frame streams. Both fork backends move frames as
// [u32 len][frame bytes]; the coordinator reassembles frames from
// whatever byte chunks the wire yields.
// ---------------------------------------------------------------------------

/// Reassembly buffer for one rank's upstream byte flow.
struct FrameBuf {
  Bytes buf;
  std::size_t off = 0;

  void append(const std::uint8_t* p, std::size_t n) {
    buf.insert(buf.end(), p, p + n);
  }

  /// Extracts one complete frame if present. Throws TransportError when
  /// the stream framing itself is broken (unrecoverable desync).
  bool pop_frame(Bytes* frame, int rank) {
    const std::size_t avail = buf.size() - off;
    if (avail < 4) return false;
    const std::uint32_t len = io::load_u32le(buf.data() + off);
    if (len > kMaxFrameBytes)
      throw TransportError(rank, "frame stream from rank " +
                                     std::to_string(rank) + " desynced");
    if (avail < 4 + static_cast<std::size_t>(len)) return false;
    frame->assign(buf.data() + off + 4, buf.data() + off + 4 + len);
    off += 4 + static_cast<std::size_t>(len);
    if (off == buf.size() || off > (std::size_t{1} << 20)) {
      buf.erase(buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(off));
      off = 0;
    }
    return true;
  }

  void clear() {
    buf.clear();
    off = 0;
  }
};

/// Pending downstream bytes for one rank (send_to never blocks).
struct OutBuf {
  Bytes buf;
  std::size_t off = 0;

  void append_frame(const Bytes& frame) {
    std::uint8_t n4[4];
    io::store_u32le(n4, static_cast<std::uint32_t>(frame.size()));
    buf.insert(buf.end(), n4, n4 + 4);
    buf.insert(buf.end(), frame.begin(), frame.end());
  }

  bool empty() const { return off == buf.size(); }
  const std::uint8_t* data() const { return buf.data() + off; }
  std::size_t size() const { return buf.size() - off; }

  void consume(std::size_t n) {
    off += n;
    if (empty()) {
      buf.clear();
      off = 0;
    }
  }

  void clear() {
    buf.clear();
    off = 0;
  }
};

/// Runs the rank body in a forked child and exits without touching the
/// parent's atexit handlers.
[[noreturn]] void run_child(int rank, WorkerEndpoint& ep,
                            const WorkerMain& main) {
  try {
    main(rank, ep);
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

/// Child-side post-fork setup: die with the coordinator instead of
/// lingering as an orphan.
void arm_pdeathsig(pid_t parent) {
  prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (getppid() != parent) _exit(0);  // parent already gone
}

// ---------------------------------------------------------------------------
// In-process backend: ranks are threads; frames cross mutex/condvar
// queues. kill/restart are no-ops (a thread cannot be SIGKILLed), so a
// scheduled "crash" on this backend exercises the rollback protocol with
// the rank thread still alive.
// ---------------------------------------------------------------------------

class InProcTransport final : public ByteTransport {
 public:
  explicit InProcTransport(int nnodes) {
    down_.reserve(static_cast<std::size_t>(nnodes));
    for (int n = 0; n < nnodes; ++n)
      down_.push_back(std::make_unique<DownQueue>());
  }

  ~InProcTransport() override { join_workers(); }

  const char* name() const override { return "inproc"; }

  void spawn_workers(const WorkerMain& main) override {
    main_ = main;
    for (int n = 0; n < static_cast<int>(down_.size()); ++n)
      threads_.emplace_back([this, n] {
        Ep ep(this, n);
        try {
          main_(n, ep);
        } catch (...) {
          // The rank body handles its own faults; anything escaping here
          // means the hub is being torn down.
        }
      });
  }

  void send_to(int dst, const Bytes& frame) override {
    stats_.bytes += static_cast<std::int64_t>(frame.size());
    DownQueue& d = *down_[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(d.mu);
      d.q.push_back(frame);
    }
    d.cv.notify_one();
  }

  Bytes recv_any(int* src) override {
    std::unique_lock<std::mutex> lock(up_mu_);
    up_cv_.wait(lock, [&] { return !up_.empty(); });
    UpMsg m = std::move(up_.front());
    up_.pop_front();
    lock.unlock();
    ++stats_.roundtrips;
    stats_.bytes += static_cast<std::int64_t>(m.frame.size());
    *src = m.rank;
    return std::move(m.frame);
  }

  void clear_pending(int n) override {
    DownQueue& d = *down_[static_cast<std::size_t>(n)];
    std::lock_guard<std::mutex> lock(d.mu);
    d.q.clear();
  }

  void join_workers() override {
    for (auto& d : down_) {
      {
        std::lock_guard<std::mutex> lock(d->mu);
        d->closed = true;
      }
      d->cv.notify_all();
    }
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
  }

 private:
  struct DownQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> q;
    bool closed = false;
  };
  struct UpMsg {
    int rank;
    Bytes frame;
  };

  class Ep final : public WorkerEndpoint {
   public:
    Ep(InProcTransport* t, int rank) : t_(t), rank_(rank) {}

    void send(const Bytes& frame) override {
      {
        std::lock_guard<std::mutex> lock(t_->up_mu_);
        t_->up_.push_back({rank_, frame});
      }
      t_->up_cv_.notify_one();
    }

    Bytes recv() override {
      DownQueue& d = *t_->down_[static_cast<std::size_t>(rank_)];
      std::unique_lock<std::mutex> lock(d.mu);
      d.cv.wait(lock, [&] { return !d.q.empty() || d.closed; });
      if (d.q.empty())
        throw TransportError(rank_, "hub closed");
      Bytes f = std::move(d.q.front());
      d.q.pop_front();
      return f;
    }

   private:
    InProcTransport* t_;
    int rank_;
  };

  WorkerMain main_;
  std::vector<std::unique_ptr<DownQueue>> down_;
  std::mutex up_mu_;
  std::condition_variable up_cv_;
  std::deque<UpMsg> up_;
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// Shared-memory rings. One worker process per rank; frames stream through
// a down (coordinator -> rank) and an up (rank -> coordinator) SPSC byte
// ring in an anonymous MAP_SHARED mapping per rank.
// ---------------------------------------------------------------------------

struct alignas(64) Cursor {
  std::atomic<std::uint64_t> v{0};
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shared-memory rings require lock-free 64-bit atomics");

struct Ring {
  Cursor head;  // producer byte cursor
  Cursor tail;  // consumer byte cursor
};

struct ShmControl {
  Ring down;  // coordinator -> worker
  Ring up;    // worker -> coordinator
  std::atomic<std::uint32_t> stop{0};
};

/// Copies `n` bytes into the ring, spinning via `idle` while full.
template <class Idle>
void ring_write(Ring& r, unsigned char* data, std::size_t cap,
                const std::uint8_t* src, std::size_t n, Idle&& idle) {
  std::size_t off = 0;
  while (off < n) {
    const std::uint64_t head = r.head.v.load(std::memory_order_relaxed);
    const std::uint64_t tail = r.tail.v.load(std::memory_order_acquire);
    const std::size_t space = cap - static_cast<std::size_t>(head - tail);
    if (space == 0) {
      idle();
      continue;
    }
    const std::size_t chunk = std::min(space, n - off);
    const std::size_t pos = static_cast<std::size_t>(head % cap);
    const std::size_t first = std::min(chunk, cap - pos);
    std::memcpy(data + pos, src + off, first);
    std::memcpy(data, src + off + first, chunk - first);
    r.head.v.store(head + chunk, std::memory_order_release);
    off += chunk;
  }
}

/// Copies `n` bytes out of the ring, spinning via `idle` while empty.
template <class Idle>
void ring_read(Ring& r, const unsigned char* data, std::size_t cap,
               std::uint8_t* dst, std::size_t n, Idle&& idle) {
  std::size_t off = 0;
  while (off < n) {
    const std::uint64_t tail = r.tail.v.load(std::memory_order_relaxed);
    const std::uint64_t head = r.head.v.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(head - tail);
    if (avail == 0) {
      idle();
      continue;
    }
    const std::size_t chunk = std::min(avail, n - off);
    const std::size_t pos = static_cast<std::size_t>(tail % cap);
    const std::size_t first = std::min(chunk, cap - pos);
    std::memcpy(dst + off, data + pos, first);
    std::memcpy(dst + off + first, data, chunk - first);
    r.tail.v.store(tail + chunk, std::memory_order_release);
    off += chunk;
  }
}

/// Writes at most what fits right now; returns bytes written (no spin).
std::size_t try_ring_write(Ring& r, unsigned char* data, std::size_t cap,
                           const std::uint8_t* src, std::size_t n) {
  const std::uint64_t head = r.head.v.load(std::memory_order_relaxed);
  const std::uint64_t tail = r.tail.v.load(std::memory_order_acquire);
  const std::size_t space = cap - static_cast<std::size_t>(head - tail);
  const std::size_t chunk = std::min(space, n);
  if (chunk == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(head % cap);
  const std::size_t first = std::min(chunk, cap - pos);
  std::memcpy(data + pos, src, first);
  std::memcpy(data, src + first, chunk - first);
  r.head.v.store(head + chunk, std::memory_order_release);
  return chunk;
}

/// Reads at most `n` of whatever is available; returns bytes read.
std::size_t try_ring_read(Ring& r, const unsigned char* data, std::size_t cap,
                          std::uint8_t* dst, std::size_t n) {
  const std::uint64_t tail = r.tail.v.load(std::memory_order_relaxed);
  const std::uint64_t head = r.head.v.load(std::memory_order_acquire);
  const std::size_t avail = static_cast<std::size_t>(head - tail);
  const std::size_t chunk = std::min(avail, n);
  if (chunk == 0) return 0;
  const std::size_t pos = static_cast<std::size_t>(tail % cap);
  const std::size_t first = std::min(chunk, cap - pos);
  std::memcpy(dst, data + pos, first);
  std::memcpy(dst + first, data, chunk - first);
  r.tail.v.store(tail + chunk, std::memory_order_release);
  return chunk;
}

/// Worker side of the shm rings: blocking, with the stop flag as the
/// hard-teardown escape (the graceful path is a Shutdown control frame).
class ShmWorkerEndpoint final : public WorkerEndpoint {
 private:
  // Defined before its uses: the deduced return type must be known by the
  // time send()/recv() call it.
  auto make_idle() {
    return [this, spins = std::uint64_t{0}]() mutable {
      if (c_->stop.load(std::memory_order_acquire)) _exit(0);
      if ((++spins & 0x3FFu) == 0) sched_yield();
    };
  }

 public:
  ShmWorkerEndpoint(ShmControl* c, unsigned char* down_data,
                    unsigned char* up_data, std::size_t cap)
      : c_(c), down_data_(down_data), up_data_(up_data), cap_(cap) {}

  void send(const Bytes& frame) override {
    std::uint8_t n4[4];
    io::store_u32le(n4, static_cast<std::uint32_t>(frame.size()));
    auto idle = make_idle();
    ring_write(c_->up, up_data_, cap_, n4, 4, idle);
    ring_write(c_->up, up_data_, cap_, frame.data(), frame.size(), idle);
  }

  Bytes recv() override {
    std::uint8_t n4[4];
    auto idle = make_idle();
    ring_read(c_->down, down_data_, cap_, n4, 4, idle);
    const std::uint32_t len = io::load_u32le(n4);
    if (len > kMaxFrameBytes) _exit(3);  // framing broken; cannot resync
    Bytes frame(len);
    ring_read(c_->down, down_data_, cap_, frame.data(), len, idle);
    return frame;
  }

 private:
  ShmControl* c_;
  unsigned char* down_data_;
  unsigned char* up_data_;
  std::size_t cap_;
};

class ShmForkTransport final : public ByteTransport {
 public:
  ShmForkTransport(int nnodes, std::size_t ring_bytes)
      : cap_(std::max<std::size_t>(ring_bytes, 4096)) {
    io::crc32(0, "", 0);  // warm the CRC table before any fork
    nodes_.resize(static_cast<std::size_t>(nnodes));
    io_.resize(static_cast<std::size_t>(nnodes));
    for (int n = 0; n < nnodes; ++n) {
      void* mem = mmap(nullptr, map_len(), PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
      if (mem == MAP_FAILED)
        throw TransportError(n, "mmap failed: " +
                                    std::string(std::strerror(errno)));
      new (mem) ShmControl{};
      nodes_[static_cast<std::size_t>(n)].mem = mem;
    }
  }

  ~ShmForkTransport() override {
    join_workers();
    for (Node& nd : nodes_)
      if (nd.mem) munmap(nd.mem, map_len());
  }

  const char* name() const override { return "shm-fork"; }

  void spawn_workers(const WorkerMain& main) override {
    main_ = main;
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) spawn(n);
  }

  void send_to(int dst, const Bytes& frame) override {
    if (frame.size() > kMaxFrameBytes)
      throw wire::WireError(wire::WireError::Kind::kBadLength,
                            "frame exceeds transport cap");
    stats_.bytes += static_cast<std::int64_t>(frame.size());
    io_[static_cast<std::size_t>(dst)].out.append_frame(frame);
    pump(dst);
  }

  Bytes recv_any(int* src) override {
    const int nn = static_cast<int>(nodes_.size());
    std::uint64_t spins = 0;
    Bytes frame;
    for (;;) {
      bool progress = false;
      for (int k = 0; k < nn; ++k) {
        const int r = (next_ + k) % nn;
        pump(r);
        progress |= slurp(r);
        if (io_[static_cast<std::size_t>(r)].in.pop_frame(&frame, r)) {
          next_ = (r + 1) % nn;
          ++stats_.roundtrips;
          stats_.bytes += static_cast<std::int64_t>(frame.size());
          *src = r;
          return frame;
        }
      }
      if (!progress && (++spins & 0xFFu) == 0) {
        check_dead();
        sched_yield();
      }
    }
  }

  void clear_pending(int n) override {
    io_[static_cast<std::size_t>(n)].out.clear();
    io_[static_cast<std::size_t>(n)].in.clear();
  }

  void kill_node(int n) override {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid < 0) return;
    ::kill(nd.pid, SIGKILL);
    int st = 0;
    waitpid(nd.pid, &st, 0);
    nd.pid = -1;
  }

  void restart_node(int n) override {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid >= 0) {
      int st = 0;
      if (waitpid(nd.pid, &st, WNOHANG) != nd.pid) return;  // still alive
      nd.pid = -1;  // externally killed; reaped just now
    }
    // The dead worker may have been mid-frame: reset both rings and any
    // coordinator-side partial state.
    ShmControl* c = ctl(n);
    c->down.head.v.store(0);
    c->down.tail.v.store(0);
    c->up.head.v.store(0);
    c->up.tail.v.store(0);
    c->stop.store(0);
    clear_pending(n);
    spawn(n);
  }

  long worker_pid(int n) const override {
    return nodes_[static_cast<std::size_t>(n)].pid;
  }

  void join_workers() override {
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
      // Give the graceful Shutdown path its last bytes.
      pump(n);
      shutdown(n);
    }
  }

 private:
  struct Node {
    void* mem = nullptr;
    pid_t pid = -1;
  };
  struct RankIo {
    OutBuf out;
    FrameBuf in;
  };

  std::size_t map_len() const { return sizeof(ShmControl) + 2 * cap_; }
  ShmControl* ctl(int n) {
    return static_cast<ShmControl*>(nodes_[static_cast<std::size_t>(n)].mem);
  }
  unsigned char* down_data(int n) {
    return reinterpret_cast<unsigned char*>(ctl(n)) + sizeof(ShmControl);
  }
  unsigned char* up_data(int n) { return down_data(n) + cap_; }

  void pump(int n) {
    RankIo& io = io_[static_cast<std::size_t>(n)];
    while (!io.out.empty()) {
      const std::size_t w = try_ring_write(ctl(n)->down, down_data(n), cap_,
                                           io.out.data(), io.out.size());
      if (w == 0) break;
      io.out.consume(w);
    }
  }

  bool slurp(int n) {
    std::uint8_t chunk[65536];
    const std::size_t r =
        try_ring_read(ctl(n)->up, up_data(n), cap_, chunk, sizeof chunk);
    if (r == 0) return false;
    io_[static_cast<std::size_t>(n)].in.append(chunk, r);
    return true;
  }

  void spawn(int n) {
    ShmControl* c = ctl(n);
    const pid_t parent = getpid();
    const pid_t pid = fork();
    if (pid < 0)
      throw TransportError(n,
                           "fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0) {
      arm_pdeathsig(parent);
      ShmWorkerEndpoint ep(c, down_data(n), up_data(n), cap_);
      run_child(n, ep, main_);
    }
    nodes_[static_cast<std::size_t>(n)].pid = pid;
  }

  /// Reaps any worker that exited; a dead rank surfaces as TransportError
  /// into the VM's rollback path.
  void check_dead() {
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
      Node& nd = nodes_[static_cast<std::size_t>(n)];
      if (nd.pid < 0)
        throw TransportError(n, "worker for rank " + std::to_string(n) +
                                    " is down");
      int st = 0;
      if (waitpid(nd.pid, &st, WNOHANG) == nd.pid) {
        nd.pid = -1;
        throw TransportError(n, "worker for rank " + std::to_string(n) +
                                    " died");
      }
    }
  }

  void shutdown(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid < 0) return;
    ctl(n)->stop.store(1, std::memory_order_release);
    int st = 0;
    for (int i = 0; i < 200; ++i) {
      if (waitpid(nd.pid, &st, WNOHANG) == nd.pid) {
        nd.pid = -1;
        return;
      }
      usleep(1000);
    }
    ::kill(nd.pid, SIGKILL);
    waitpid(nd.pid, &st, 0);
    nd.pid = -1;
  }

  std::size_t cap_;
  std::vector<Node> nodes_;
  std::vector<RankIo> io_;
  WorkerMain main_;
  int next_ = 0;
};

// ---------------------------------------------------------------------------
// TCP loopback. Same worker bodies, but every frame crosses a real kernel
// socket boundary. The coordinator's accepted sockets are non-blocking
// (send_to buffers; recv_any polls); worker sockets stay blocking.
// ---------------------------------------------------------------------------

bool read_full(int fd, std::uint8_t* dst, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = recv(fd, dst + off, n - off, 0);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error: the peer is gone
  }
  return true;
}

bool write_full(int fd, const std::uint8_t* src, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = send(fd, src + off, n - off, MSG_NOSIGNAL);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

class TcpWorkerEndpoint final : public WorkerEndpoint {
 public:
  explicit TcpWorkerEndpoint(int fd) : fd_(fd) {}

  void send(const Bytes& frame) override {
    std::uint8_t n4[4];
    io::store_u32le(n4, static_cast<std::uint32_t>(frame.size()));
    if (!write_full(fd_, n4, 4) ||
        !write_full(fd_, frame.data(), frame.size()))
      _exit(0);  // coordinator gone
  }

  Bytes recv() override {
    std::uint8_t n4[4];
    if (!read_full(fd_, n4, 4)) _exit(0);
    const std::uint32_t len = io::load_u32le(n4);
    if (len > kMaxFrameBytes) _exit(3);
    Bytes frame(len);
    if (!read_full(fd_, frame.data(), len)) _exit(0);
    return frame;
  }

 private:
  int fd_;
};

class TcpTransport final : public ByteTransport {
 public:
  explicit TcpTransport(int nnodes) {
    io::crc32(0, "", 0);  // warm the CRC table before any fork
    nodes_.resize(static_cast<std::size_t>(nnodes));
    io_.resize(static_cast<std::size_t>(nnodes));
    for (int n = 0; n < nnodes; ++n) listen_on(n);
  }

  ~TcpTransport() override {
    join_workers();
    for (Node& nd : nodes_) {
      if (nd.listen_fd >= 0) close(nd.listen_fd);
    }
  }

  const char* name() const override { return "tcp-loopback"; }

  void spawn_workers(const WorkerMain& main) override {
    main_ = main;
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) spawn(n);
  }

  void send_to(int dst, const Bytes& frame) override {
    if (frame.size() > kMaxFrameBytes)
      throw wire::WireError(wire::WireError::Kind::kBadLength,
                            "frame exceeds transport cap");
    stats_.bytes += static_cast<std::int64_t>(frame.size());
    io_[static_cast<std::size_t>(dst)].out.append_frame(frame);
    pump(dst);
  }

  Bytes recv_any(int* src) override {
    const int nn = static_cast<int>(nodes_.size());
    Bytes frame;
    for (;;) {
      for (int k = 0; k < nn; ++k) {
        const int r = (next_ + k) % nn;
        if (io_[static_cast<std::size_t>(r)].in.pop_frame(&frame, r)) {
          next_ = (r + 1) % nn;
          ++stats_.roundtrips;
          stats_.bytes += static_cast<std::int64_t>(frame.size());
          *src = r;
          return frame;
        }
      }
      std::vector<pollfd> pfds;
      std::vector<int> ranks;
      for (int n = 0; n < nn; ++n) {
        Node& nd = nodes_[static_cast<std::size_t>(n)];
        if (nd.fd < 0) continue;
        short ev = POLLIN;
        if (!io_[static_cast<std::size_t>(n)].out.empty()) ev |= POLLOUT;
        pfds.push_back({nd.fd, ev, 0});
        ranks.push_back(n);
      }
      if (pfds.empty()) check_dead();  // throws: nothing left to wait on
      const int pr = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
      if (pr < 0) {
        if (errno == EINTR) continue;
        throw TransportError(-1, "poll failed: " +
                                     std::string(std::strerror(errno)));
      }
      if (pr == 0) {
        check_dead();
        continue;
      }
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        const int n = ranks[i];
        if (pfds[i].revents & POLLOUT) pump(n);
        if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          if (!slurp(n)) {
            reap(n);
            throw TransportError(n, "worker for rank " + std::to_string(n) +
                                        " disconnected");
          }
        }
      }
    }
  }

  void clear_pending(int n) override {
    io_[static_cast<std::size_t>(n)].out.clear();
    io_[static_cast<std::size_t>(n)].in.clear();
  }

  void kill_node(int n) override {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid >= 0) {
      ::kill(nd.pid, SIGKILL);
      int st = 0;
      waitpid(nd.pid, &st, 0);
      nd.pid = -1;
    }
    if (nd.fd >= 0) {
      close(nd.fd);
      nd.fd = -1;
    }
  }

  void restart_node(int n) override {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid >= 0 && nd.fd >= 0) return;  // still up
    reap(n);
    if (nd.fd >= 0) {
      close(nd.fd);
      nd.fd = -1;
    }
    clear_pending(n);
    spawn(n);
  }

  long worker_pid(int n) const override {
    return nodes_[static_cast<std::size_t>(n)].pid;
  }

  void join_workers() override {
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
      Node& nd = nodes_[static_cast<std::size_t>(n)];
      pump(n);
      if (nd.fd >= 0) {
        close(nd.fd);  // EOF tells a still-reading worker to exit
        nd.fd = -1;
      }
      if (nd.pid < 0) continue;
      int st = 0;
      bool reaped = false;
      for (int i = 0; i < 200; ++i) {
        if (waitpid(nd.pid, &st, WNOHANG) == nd.pid) {
          reaped = true;
          break;
        }
        usleep(1000);
      }
      if (!reaped) {
        ::kill(nd.pid, SIGKILL);
        waitpid(nd.pid, &st, 0);
      }
      nd.pid = -1;
    }
  }

 private:
  struct Node {
    int listen_fd = -1;
    int fd = -1;
    pid_t pid = -1;
    std::uint16_t port = 0;
  };
  struct RankIo {
    OutBuf out;
    FrameBuf in;
  };

  void listen_on(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    nd.listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    if (nd.listen_fd < 0)
      throw TransportError(n, "socket failed: " +
                                  std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (bind(nd.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
        listen(nd.listen_fd, 1) != 0)
      throw TransportError(n, "bind/listen failed: " +
                                  std::string(std::strerror(errno)));
    socklen_t alen = sizeof addr;
    if (getsockname(nd.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &alen) != 0)
      throw TransportError(n, "getsockname failed: " +
                                  std::string(std::strerror(errno)));
    nd.port = ntohs(addr.sin_port);
  }

  void spawn(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    const pid_t parent = getpid();
    const pid_t pid = fork();
    if (pid < 0)
      throw TransportError(n,
                           "fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0) {
      arm_pdeathsig(parent);
      // The worker owns exactly one socket: its connection back to the
      // coordinator. Drop every inherited descriptor first.
      for (const Node& o : nodes_) {
        if (o.listen_fd >= 0 && o.listen_fd != nd.listen_fd)
          close(o.listen_fd);
        if (o.fd >= 0) close(o.fd);
      }
      const int s = socket(AF_INET, SOCK_STREAM, 0);
      if (s < 0) _exit(2);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(nd.port);
      if (connect(s, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0)
        _exit(2);
      close(nd.listen_fd);
      const int one = 1;
      setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      TcpWorkerEndpoint ep(s);
      run_child(n, ep, main_);
    }
    nd.pid = pid;
    // Accept with a timeout so a worker that died before connecting (or a
    // sandbox that blocks loopback) fails cleanly instead of hanging.
    pollfd pfd{nd.listen_fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, 10000);
    if (pr <= 0) {
      ::kill(pid, SIGKILL);
      int st = 0;
      waitpid(pid, &st, 0);
      nd.pid = -1;
      throw TransportError(n, "worker for rank " + std::to_string(n) +
                                  " never connected");
    }
    nd.fd = accept(nd.listen_fd, nullptr, nullptr);
    if (nd.fd < 0)
      throw TransportError(n, "accept failed: " +
                                  std::string(std::strerror(errno)));
    const int one = 1;
    setsockopt(nd.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    fcntl(nd.fd, F_SETFL, O_NONBLOCK);
  }

  void pump(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    RankIo& io = io_[static_cast<std::size_t>(n)];
    while (nd.fd >= 0 && !io.out.empty()) {
      const ssize_t w =
          send(nd.fd, io.out.data(), io.out.size(), MSG_NOSIGNAL);
      if (w > 0) {
        io.out.consume(static_cast<std::size_t>(w));
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (w < 0 && errno == EINTR) continue;
      close(nd.fd);  // dead connection; the death surfaces in recv_any
      nd.fd = -1;
    }
  }

  /// Reads whatever is available; false means the peer is gone.
  bool slurp(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.fd < 0) return false;
    std::uint8_t chunk[65536];
    for (;;) {
      const ssize_t r = recv(nd.fd, chunk, sizeof chunk, 0);
      if (r > 0) {
        io_[static_cast<std::size_t>(n)].in.append(chunk,
                                                   static_cast<std::size_t>(r));
        if (static_cast<std::size_t>(r) < sizeof chunk) return true;
        continue;
      }
      if (r == 0) return false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  void reap(int n) {
    Node& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pid < 0) return;
    int st = 0;
    if (waitpid(nd.pid, &st, WNOHANG) != nd.pid) {
      ::kill(nd.pid, SIGKILL);
      waitpid(nd.pid, &st, 0);
    }
    nd.pid = -1;
  }

  void check_dead() {
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
      Node& nd = nodes_[static_cast<std::size_t>(n)];
      if (nd.pid < 0 || nd.fd < 0)
        throw TransportError(n, "worker for rank " + std::to_string(n) +
                                    " is down");
      int st = 0;
      if (waitpid(nd.pid, &st, WNOHANG) == nd.pid) {
        nd.pid = -1;
        throw TransportError(n, "worker for rank " + std::to_string(n) +
                                    " died");
      }
    }
  }

  std::vector<Node> nodes_;
  std::vector<RankIo> io_;
  WorkerMain main_;
  int next_ = 0;
};

}  // namespace

std::unique_ptr<ByteTransport> make_transport(int nnodes,
                                              const TransportOptions& opts) {
  switch (opts.kind) {
    case TransportKind::kInProc:
      return std::make_unique<InProcTransport>(nnodes);
    case TransportKind::kShmFork:
      return std::make_unique<ShmForkTransport>(nnodes, opts.ring_bytes);
    case TransportKind::kTcp:
      return std::make_unique<TcpTransport>(nnodes);
  }
  throw std::invalid_argument("make_transport: unknown kind");
}

}  // namespace anton::parallel
