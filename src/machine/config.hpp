// Anton machine configuration (Section 2.2) and the performance-model
// calibration constants.
//
// Hardware constants come straight from the paper: 90-nm ASICs clocked at
// 485 MHz with the 32-PPIP HTIS array at 970 MHz; each PPIP fed by eight
// match units (a plate atom tested against eight tower atoms per cycle);
// a flexible subsystem with eight geometry cores; six 50.6 Gbit/s
// channels to torus neighbors with tens-of-nanosecond latency; machines
// of any power-of-two node count from 1 to 32768, with 512 = 8x8x8 the
// configuration evaluated.
//
// Calibration constants (per-task fixed overheads and per-op cycle
// counts) are free parameters of the model; they are fitted ONCE against
// the Anton column of Table 2 (DHFR, both parameter sets) and then held
// fixed for every other experiment -- Table 4 rates, the Figure 5 sweep,
// and the ablations. EXPERIMENTS.md records the calibration residuals.
#pragma once

#include "geom/vec3.hpp"

namespace anton::machine {

struct MachineConfig {
  Vec3i nodes{8, 8, 8};

  // --- hardware constants (from the paper) ---
  double core_clock_hz = 485e6;
  double ppip_clock_hz = 970e6;
  int ppips_per_node = 32;
  int match_units_per_ppip = 8;
  double link_gbit_s = 50.6;  // per direction, per channel
  int links_per_node = 6;
  double hop_latency_s = 50e-9;
  int geometry_cores = 8;

  // --- calibration constants (fitted to Table 2, then frozen) ---
  double msg_overhead_s = 5e-9;        // per-message fixed cost
  double htis_pass_overhead_s = 0.85e-6; // HTIS fill/drain + import window
  double mesh_pass_overhead_s = 0.25e-6; // per spreading/interp pass
  double mesh_op_ppip_cycles = 1.6;     // per (atom, mesh point) op
  double fft_point_gc_cycles = 14.0;    // per mesh point per 1-D stage
  double fft_stage_overhead_s = 0.40e-6;
  double gc_cycles_per_bond_term = 140.0;
  double bonded_overhead_s = 1.0e-6;    // bond-destination distribution
  double corr_cycles_per_pair = 3.0;
  double correction_overhead_s = 2.0e-6;  // single-pipeline serialization
  double gc_cycles_per_atom_integration = 25.0;
  double integration_overhead_s = 0.7e-6; // sync + bookkeeping
  double step_overhead_s = 1.6e-6;      // host/ring/global barrier per step

  int node_count() const { return nodes.x * nodes.y * nodes.z; }
  double link_bytes_per_s() const { return link_gbit_s * 1e9 / 8.0; }
  double match_checks_per_s() const {
    return static_cast<double>(ppips_per_node) * match_units_per_ppip *
           core_clock_hz;
  }
  double ppip_interactions_per_s() const {
    return static_cast<double>(ppips_per_node) * ppip_clock_hz;
  }

  /// The 512-node machine evaluated in the paper.
  static MachineConfig anton_512() { return MachineConfig{}; }

  /// A 128-node partition (Section 5.1: 512 nodes partition into four
  /// 128-node machines).
  static MachineConfig anton_128() {
    MachineConfig m;
    m.nodes = {8, 4, 4};
    return m;
  }

  /// Arbitrary power-of-two torus.
  static MachineConfig with_nodes(const Vec3i& n) {
    MachineConfig m;
    m.nodes = n;
    return m;
  }
};

}  // namespace anton::machine
