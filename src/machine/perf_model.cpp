#include "machine/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "fft/dist_plan.hpp"
#include "parallel/comm_stats.hpp"
#include "util/units.hpp"

namespace anton::machine {

double StepTimeReport::us_per_day(double dt_fs) const {
  if (avg_step_s <= 0) return 0.0;
  const double steps_per_day = 86400.0 / avg_step_s;
  return steps_per_day * dt_fs * units::kUsPerFs;
}

std::vector<std::pair<std::string, double>> StepTimeReport::table2_rows()
    const {
  return {
      {"Range-limited forces", tasks.import_s + tasks.range_limited_s},
      {"FFT & inverse FFT", tasks.fft_s},
      {"Mesh interpolation", tasks.mesh_interp_s},
      {"Correction forces", tasks.correction_s},
      {"Bonded forces", tasks.bonded_s},
      {"Integration", tasks.integration_s + tasks.force_reduce_s},
  };
}

double PerfModel::comm_time(double bytes, double messages, int hops) const {
  return messages * cfg_.msg_overhead_s +
         bytes / (cfg_.links_per_node * cfg_.link_bytes_per_s()) +
         hops * cfg_.hop_latency_s;
}

double PerfModel::fft_time(int mesh, const Vec3i& nodes) const {
  fft::DistFftPlan plan;
  plan.mesh = static_cast<std::size_t>(mesh);
  plan.nodes = nodes;
  plan.bytes_per_point = 8;  // 32-bit fixed-point complex on the wire
  double t = 0.0;
  for (int axis = 0; axis < 3; ++axis) {
    const fft::FftStageComm s = plan.stage(axis);
    const double comm = comm_time(static_cast<double>(s.bytes_per_node),
                                  static_cast<double>(s.messages_per_node),
                                  s.max_hops);
    const double flops_cycles =
        static_cast<double>(s.points_per_node) * cfg_.fft_point_gc_cycles;
    const double compute =
        flops_cycles / (cfg_.geometry_cores * cfg_.core_clock_hz);
    t += cfg_.fft_stage_overhead_s + comm + compute;
  }
  return 2.0 * t;  // forward + inverse
}

StepTimeReport PerfModel::evaluate(const StepWorkload& w,
                                   int long_range_every) const {
  StepTimeReport r;
  TaskTimes& t = r.tasks;
  const parallel::CommConfig cc;

  // Position import / force export around the range-limited phase.
  const parallel::PhaseComm imp = parallel::position_import(
      static_cast<std::int64_t>(w.import_atoms),
      static_cast<int>(w.imported_subboxes), cc);
  t.import_s = comm_time(static_cast<double>(imp.bytes),
                         static_cast<double>(imp.messages), imp.max_hops);
  const parallel::PhaseComm exp = parallel::force_export(
      static_cast<std::int64_t>(w.import_atoms),
      static_cast<int>(w.imported_subboxes), cc);
  t.force_reduce_s = comm_time(static_cast<double>(exp.bytes),
                               static_cast<double>(exp.messages),
                               exp.max_hops);

  // Range-limited: match-unit and PPIP throughput race; HTIS fill/drain
  // overhead on top.
  const double match_s = w.pairs_considered / cfg_.match_checks_per_s();
  const double ppip_s = w.interactions / cfg_.ppip_interactions_per_s();
  t.range_limited_s = cfg_.htis_pass_overhead_s + std::max(match_s, ppip_s);

  // Mesh interactions run on the same HTIS (spreading before the FFT,
  // interpolation after), plus the mesh charge/potential exchange.
  const double spread_s =
      w.spread_ops * cfg_.mesh_op_ppip_cycles / cfg_.ppip_interactions_per_s();
  const double interp_s =
      w.interp_ops * cfg_.mesh_op_ppip_cycles / cfg_.ppip_interactions_per_s();
  const parallel::PhaseComm mex = parallel::mesh_exchange(
      static_cast<std::int64_t>(w.spread_ops / 8.0), cc);
  const double mesh_comm = comm_time(static_cast<double>(mex.bytes),
                                     static_cast<double>(mex.messages),
                                     mex.max_hops);
  t.mesh_interp_s =
      2.0 * cfg_.mesh_pass_overhead_s + spread_s + interp_s + 2.0 * mesh_comm;

  t.fft_s = fft_time(w.mesh, w.node_grid);

  t.correction_s = cfg_.correction_overhead_s +
                   w.correction_pairs_max * cfg_.corr_cycles_per_pair /
                       cfg_.core_clock_hz;

  t.bonded_s = cfg_.bonded_overhead_s +
               w.bond_terms_max * cfg_.gc_cycles_per_bond_term /
                   (cfg_.geometry_cores * cfg_.core_clock_hz);

  t.integration_s =
      cfg_.integration_overhead_s +
      (w.atoms + 2.0 * w.constraint_bonds_max) *
          cfg_.gc_cycles_per_atom_integration /
          (cfg_.geometry_cores * cfg_.core_clock_hz);

  // Long step: the HTIS/FFT chain is the critical path; bonded and
  // correction forces execute on the flexible subsystem in parallel and
  // only extend the step if they outlast that chain.
  const double htis_chain = t.import_s + t.range_limited_s +
                            t.mesh_interp_s + t.fft_s;
  const double flexible_chain = t.import_s +
                                std::max(t.bonded_s, t.correction_s);
  r.long_step_s = std::max(htis_chain, flexible_chain) + t.force_reduce_s +
                  t.integration_s + cfg_.step_overhead_s;

  // Short step: no mesh work; bonded often dominates (Section 5.1 notes
  // bond-term computation is sometimes on the critical path).
  const double short_htis = t.import_s + t.range_limited_s;
  const double short_flex = t.import_s + t.bonded_s;
  r.short_step_s = std::max(short_htis, short_flex) + t.force_reduce_s +
                   t.integration_s + cfg_.step_overhead_s;

  const int k = std::max(1, long_range_every);
  r.avg_step_s = (r.long_step_s + (k - 1) * r.short_step_s) / k;
  return r;
}

}  // namespace anton::machine
