#include "machine/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace anton::machine {

double schedule(std::vector<Task>& tasks) {
  std::map<Resource, double> resource_free;
  std::vector<char> done(tasks.size(), 0);
  std::size_t remaining = tasks.size();
  double makespan = 0.0;
  while (remaining > 0) {
    // Pick the ready task with the earliest feasible start (ties by index).
    int best = -1;
    double best_start = 0.0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (done[i]) continue;
      bool ready = true;
      double dep_end = 0.0;
      for (int d : tasks[i].deps) {
        if (!done[d]) {
          ready = false;
          break;
        }
        dep_end = std::max(dep_end, tasks[d].end_s);
      }
      if (!ready) continue;
      const double start =
          std::max(dep_end, resource_free[tasks[i].resource]);
      if (best < 0 || start < best_start) {
        best = static_cast<int>(i);
        best_start = start;
      }
    }
    if (best < 0) return -1.0;  // dependency cycle
    Task& t = tasks[best];
    t.start_s = best_start;
    t.end_s = best_start + t.duration_s;
    resource_free[t.resource] = t.end_s;
    makespan = std::max(makespan, t.end_s);
    done[best] = 1;
    --remaining;
  }
  return makespan;
}

std::vector<Task> long_step_tasks(const PerfModel& model,
                                  const StepWorkload& w) {
  const StepTimeReport r = model.evaluate(w, 2);
  const TaskTimes& t = r.tasks;
  std::vector<Task> tasks;
  // 0: position import (multicast over the torus)
  tasks.push_back({"position import", Resource::kNetwork, t.import_s, {}});
  // 1: range-limited pass (HTIS)
  tasks.push_back(
      {"range-limited (HTIS)", Resource::kHtis, t.range_limited_s, {0}});
  // 2: charge spreading (HTIS; serializes after range-limited)
  tasks.push_back({"charge spreading (HTIS)", Resource::kHtis,
                   0.5 * t.mesh_interp_s, {0}});
  // 3: FFT forward + inverse (communication-dominated)
  tasks.push_back({"FFT fwd+inv", Resource::kNetwork, t.fft_s, {2}});
  // 4: force interpolation (HTIS, after the inverse FFT)
  tasks.push_back({"force interp (HTIS)", Resource::kHtis,
                   0.5 * t.mesh_interp_s, {3}});
  // 5: bonded forces (geometry cores)
  tasks.push_back({"bonded (GCs)", Resource::kFlexible, t.bonded_s, {0}});
  // 6: correction forces (dedicated correction pipeline)
  tasks.push_back({"correction (pipe)", Resource::kHost, t.correction_s, {0}});
  // 7: force reduction back to home nodes
  tasks.push_back({"force export/reduce", Resource::kNetwork,
                   t.force_reduce_s, {1, 4, 5, 6}});
  // 8: integration + constraints
  tasks.push_back(
      {"integration (GCs)", Resource::kFlexible, t.integration_s, {7}});
  // 9: per-step overheads (host/ring/barrier)
  tasks.push_back({"sync/host", Resource::kHost,
                   model.config().step_overhead_s, {8}});
  return tasks;
}

std::string render_gantt(const std::vector<Task>& tasks, int width) {
  double makespan = 0.0;
  std::size_t name_w = 0;
  for (const Task& t : tasks) {
    makespan = std::max(makespan, t.end_s);
    name_w = std::max(name_w, t.name.size());
  }
  if (makespan <= 0.0) return "";
  std::ostringstream os;
  for (const Task& t : tasks) {
    const int a = static_cast<int>(std::floor(t.start_s / makespan * width));
    const int b = std::max(
        a + 1, static_cast<int>(std::ceil(t.end_s / makespan * width)));
    os << t.name;
    os << std::string(name_w - t.name.size() + 1, ' ') << '|';
    for (int c = 0; c < width; ++c)
      os << (c >= a && c < b ? '#' : (c % 8 == 0 ? '.' : ' '));
    char buf[48];
    std::snprintf(buf, sizeof buf, "| %6.2f - %6.2f us", t.start_s * 1e6,
                  t.end_s * 1e6);
    os << buf << '\n';
  }
  char total[64];
  std::snprintf(total, sizeof total, "%*s makespan: %.2f us\n",
                static_cast<int>(name_w) + 1, "", makespan * 1e6);
  os << total;
  return os.str();
}

}  // namespace anton::machine
