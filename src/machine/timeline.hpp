// Discrete-event scheduling of one Anton time step.
//
// The closed-form model in perf_model.cpp computes step times from a
// hand-derived critical path. This module makes the schedule explicit: a
// small list scheduler over named tasks with dependencies and exclusive
// resource classes (the HTIS can run one pass at a time; the flexible
// subsystem's cores are a second resource; the network a third), plus an
// ASCII Gantt rendering that shows WHY "the individual Anton task times
// sum up to more than the total time per time step" (Table 2's note) --
// bonded and correction forces hide under the HTIS/FFT critical path.
#pragma once

#include <string>
#include <vector>

#include "machine/perf_model.hpp"

namespace anton::machine {

enum class Resource { kNetwork, kHtis, kFlexible, kHost };

struct Task {
  std::string name;
  Resource resource = Resource::kHost;
  double duration_s = 0.0;
  std::vector<int> deps;  // indices of prerequisite tasks
  // Filled by the scheduler:
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Schedules tasks: each starts at the max of its dependencies' end times
/// and its resource's free time (tasks on one resource serialize in the
/// order they become ready; ties break by index). Returns the makespan.
double schedule(std::vector<Task>& tasks);

/// The long-range step's task graph for a workload, built from the same
/// component times as PerfModel::evaluate.
std::vector<Task> long_step_tasks(const PerfModel& model,
                                  const StepWorkload& w);

/// Renders the scheduled tasks as an ASCII Gantt chart (one row per task,
/// `width` columns spanning the makespan).
std::string render_gantt(const std::vector<Task>& tasks, int width = 64);

}  // namespace anton::machine
