// Per-step, per-node workload quantities that drive the performance model.
//
// Two sources produce a StepWorkload:
//  * from_profile(): measured counters from an actual AntonEngine run
//    (exact, including load imbalance -- e.g. bond terms concentrate on
//    the nodes holding the protein);
//  * estimate(): a closed-form estimator from system size, density and
//    parameters, used for wide sweeps (Figure 5) where running the
//    functional engine at every size would be wasteful.
#pragma once

#include <cstdint>

#include "core/engine_types.hpp"
#include "ewald/gse.hpp"
#include "machine/config.hpp"

namespace anton::machine {

struct StepWorkload {
  // Per-node, per-inner-step quantities. *_max are maxima over nodes (the
  // machine waits for its slowest node); others are node means.
  double atoms = 0;
  double import_atoms = 0;          // tower+plate region atoms
  double imported_subboxes = 0;     // multicast streams
  double pairs_considered = 0;      // match-unit checks
  double interactions = 0;          // PPIP interactions computed
  double bond_terms_max = 0;
  double correction_pairs_max = 0;
  double constraint_bonds_max = 0;
  // Per-long-step mesh quantities.
  double spread_ops = 0;
  double interp_ops = 0;
  int mesh = 32;

  int natoms_total = 0;
  Vec3i node_grid{8, 8, 8};
};

struct WorkloadParams {
  double cutoff = 13.0;
  ewald::GseParams gse;
  int long_range_every = 2;
  Vec3i subbox_div{2, 2, 2};
  /// Fraction of total atoms that carry bonded terms (protein fraction);
  /// bonded work concentrates on the nodes overlapping the solute.
  double protein_fraction = 0.10;
  /// Bonded terms per protein atom (bonds+angles+dihedrals; ~2.6 for our
  /// generic force field and for typical all-atom force fields).
  double bond_terms_per_protein_atom = 2.6;
  /// Exclusions per atom (water: 3 per molecule; protein: ~5 per atom).
  double exclusions_per_atom = 1.3;
};

/// Builds a workload from engine counters. The profile's dynamic counters
/// must cover >= 1 inner step; long-step mesh counters are rescaled to
/// per-long-step values using params.long_range_every.
StepWorkload workload_from_profile(const core::WorkloadProfile& profile,
                                   const WorkloadParams& p,
                                   const Vec3i& node_grid, int natoms,
                                   int mesh);

/// Closed-form estimate at uniform density for a cubic box of side L.
StepWorkload estimate_workload(int natoms, double box_side,
                               const WorkloadParams& p,
                               const Vec3i& node_grid);

}  // namespace anton::machine
