// The Anton performance model.
//
// Produces per-task times (the Anton column of Table 2), long/short step
// times with the paper's task overlap (bonded and correction forces hide
// under the HTIS + FFT critical path; "the individual Anton task times
// sum up to more than the total time per time step"), and simulation
// rates in us/day under the multiple-time-step schedule.
//
// Throughput terms derive from hardware constants (PPIP/match rates, link
// bandwidth, hop latency); fixed per-task overheads are calibrated once
// against Table 2 and frozen (see machine/config.hpp).
#pragma once

#include "core/engine_types.hpp"
#include "machine/config.hpp"
#include "machine/workload_model.hpp"

namespace anton::machine {

struct TaskTimes {
  double import_s = 0;       // position import (part of range-limited row)
  double range_limited_s = 0;
  double fft_s = 0;          // forward + inverse
  double mesh_interp_s = 0;  // charge spreading + force interpolation
  double correction_s = 0;
  double bonded_s = 0;
  double integration_s = 0;
  double force_reduce_s = 0;
};

struct StepTimeReport {
  TaskTimes tasks;
  double long_step_s = 0;   // step that evaluates long-range forces
  double short_step_s = 0;  // step that does not
  double avg_step_s = 0;

  /// Simulated microseconds per wall-clock day at time step dt (fs).
  double us_per_day(double dt_fs) const;

  /// Table-2-style rows: {name, seconds, fraction of long-step total}.
  std::vector<std::pair<std::string, double>> table2_rows() const;
};

class PerfModel {
 public:
  explicit PerfModel(const MachineConfig& cfg) : cfg_(cfg) {}

  const MachineConfig& config() const { return cfg_; }

  /// Evaluates the model for a workload under an MTS schedule.
  StepTimeReport evaluate(const StepWorkload& w, int long_range_every) const;

 private:
  double comm_time(double bytes, double messages, int hops) const;
  double fft_time(int mesh, const Vec3i& nodes) const;

  MachineConfig cfg_;
};

}  // namespace anton::machine
