#include "machine/workload_model.hpp"

#include <algorithm>
#include <cmath>

#include "nt/import_region.hpp"
#include "nt/match_efficiency.hpp"

namespace anton::machine {

StepWorkload workload_from_profile(const core::WorkloadProfile& profile,
                                   const WorkloadParams& p,
                                   const Vec3i& node_grid, int natoms,
                                   int mesh) {
  StepWorkload w;
  w.node_grid = node_grid;
  w.natoms_total = natoms;
  w.mesh = mesh;
  const double steps =
      std::max<double>(1.0, static_cast<double>(profile.steps_accumulated));
  const double long_steps =
      std::max(1.0, steps / std::max(1, p.long_range_every));
  const core::NodeCounters mean = profile.mean_node();
  const core::NodeCounters mx = profile.max_node();
  w.atoms = static_cast<double>(mx.atoms);
  w.import_atoms = static_cast<double>(mx.tower_import_atoms);
  w.imported_subboxes = 32;  // refreshed by caller if it knows better
  w.pairs_considered = static_cast<double>(mx.pairs_considered) / steps;
  w.interactions = static_cast<double>(mean.interactions) / steps;
  w.bond_terms_max = static_cast<double>(mx.bond_terms) / steps;
  w.correction_pairs_max =
      static_cast<double>(mx.correction_pairs) / long_steps;
  w.constraint_bonds_max = static_cast<double>(mx.constraint_bonds);
  w.spread_ops = static_cast<double>(mx.spread_ops) / long_steps;
  w.interp_ops = static_cast<double>(mx.interp_ops) / long_steps;
  return w;
}

StepWorkload estimate_workload(int natoms, double box_side,
                               const WorkloadParams& p,
                               const Vec3i& node_grid) {
  StepWorkload w;
  w.node_grid = node_grid;
  w.natoms_total = natoms;
  w.mesh = p.gse.mesh;

  const double rho = natoms / (box_side * box_side * box_side);
  const int nnodes = node_grid.x * node_grid.y * node_grid.z;
  const double node_side = box_side / node_grid.x;  // cubic-ish grids
  const double subbox_side = node_side / p.subbox_div.x;
  const double R = p.cutoff;

  w.atoms = static_cast<double>(natoms) / nnodes;

  // Import region (continuous NT regions at subbox granularity, scaled to
  // the node's set of subboxes; the whole-subbox rounding of Figure 3f
  // adds roughly one subbox shell, folded into the 1.25 factor).
  nt::RegionInput ri{node_side, R};
  const double import_vol = 1.25 * nt::nt_import_volume(ri);
  w.import_atoms = rho * import_vol;
  const double sb_vol = subbox_side * subbox_side * subbox_side;
  w.imported_subboxes = std::max(1.0, import_vol / sb_vol);

  // Pair counts: every in-range pair is computed once somewhere, so the
  // per-node mean is N rho (4/3 pi R^3) / 2 / nodes; the match units
  // consider interactions / efficiency pairs.
  const double total_interactions =
      natoms * rho * (4.0 / 3.0) * M_PI * R * R * R / 2.0;
  w.interactions = total_interactions / nnodes;
  nt::MatchEfficiencyInput mi{node_side, p.subbox_div.x, R};
  const double eff =
      std::clamp(nt::match_efficiency_analytic(mi), 0.01, 1.0);
  w.pairs_considered = w.interactions / eff;

  // Bonded terms concentrate on the nodes overlapping the solute: the
  // solute is a globule of ~protein_fraction of the atoms at ~1.35x bulk
  // density, so it covers roughly protein_fraction of the volume.
  const double bond_terms_total =
      p.protein_fraction * natoms * p.bond_terms_per_protein_atom;
  const double protein_nodes =
      std::max(1.0, p.protein_fraction * nnodes * 1.5);
  w.bond_terms_max = bond_terms_total / protein_nodes;

  const double excl_total = p.exclusions_per_atom * natoms;
  w.correction_pairs_max = 2.0 * excl_total / nnodes;  // mild imbalance
  w.constraint_bonds_max = 1.2 * natoms / nnodes;      // mostly rigid water

  // Mesh interactions: points within rs of an atom, two passes.
  const double h = box_side / p.gse.mesh;
  const double pts_per_atom =
      (4.0 / 3.0) * M_PI * std::pow(p.gse.rs / h, 3.0);
  w.spread_ops = w.atoms * pts_per_atom;
  w.interp_ops = w.spread_ops;
  return w;
}

}  // namespace anton::machine
