// The 32-bit position lattice.
//
// Each coordinate axis of the periodic box is mapped onto the full range of
// a signed 32-bit integer: lattice value i represents physical coordinate
// i * (L / 2^32), so the box [-L/2, L/2) corresponds exactly to
// [INT32_MIN, INT32_MAX+1). Two's-complement wrap on this lattice IS the
// periodic boundary condition, and the wrapping difference of two lattice
// coordinates is the minimum-image displacement whenever the physical
// separation is below L/2. This mirrors Anton's [-1, 1) fixed-point
// position convention and gives bit-exact, decomposition-independent PBC.
#pragma once

#include <cstdint>

#include "fixed/fixed.hpp"
#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::fixed {

class PositionLattice {
 public:
  PositionLattice() = default;
  explicit PositionLattice(const PeriodicBox& box);

  const PeriodicBox& box() const { return box_; }

  /// Physical length of one lattice step on each axis (A).
  const Vec3d& lsb() const { return lsb_; }

  /// Quantizes a physical coordinate (anywhere in space) onto the lattice;
  /// wrap into the primary box is implicit in the int32 conversion.
  Vec3i to_lattice(const Vec3d& r) const;

  /// Physical coordinate in [-L/2, L/2) of a lattice point.
  Vec3d to_phys(const Vec3i& p) const;

  /// Minimum-image displacement a - b on the lattice (wrapping subtract).
  static Vec3i delta(const Vec3i& a, const Vec3i& b) {
    return {wrap_sub32(a.x, b.x), wrap_sub32(a.y, b.y), wrap_sub32(a.z, b.z)};
  }

  /// Physical displacement vector of a lattice delta (A).
  Vec3d delta_to_phys(const Vec3i& d) const {
    return {d.x * lsb_.x, d.y * lsb_.y, d.z * lsb_.z};
  }

  /// Squared physical distance (A^2) of the minimum-image displacement.
  double dist2(const Vec3i& a, const Vec3i& b) const;

  /// Advances a lattice position by a physical displacement, quantizing the
  /// displacement with RNE. Used by the drift step of the integrator; the
  /// quantization is odd-symmetric, which the reversibility proof needs.
  Vec3i advance(const Vec3i& p, const Vec3d& dr) const;

 private:
  PeriodicBox box_;
  Vec3d lsb_{0, 0, 0};
  Vec3d inv_lsb_{0, 0, 0};
};

}  // namespace anton::fixed
