#include "fixed/lattice.hpp"

#include <cmath>

namespace anton::fixed {

namespace {
constexpr double kTwo32 = 4294967296.0;  // 2^32

// Quantize one coordinate and wrap it into int32 (two's-complement wrap is
// well-defined via the uint64 intermediate).
inline std::int32_t to_lat1(double r, double inv_lsb) {
  const long long v = std::llrint(r * inv_lsb);
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(v));
}
}  // namespace

PositionLattice::PositionLattice(const PeriodicBox& box) : box_(box) {
  const Vec3d s = box.side();
  lsb_ = {s.x / kTwo32, s.y / kTwo32, s.z / kTwo32};
  inv_lsb_ = {kTwo32 / s.x, kTwo32 / s.y, kTwo32 / s.z};
}

Vec3i PositionLattice::to_lattice(const Vec3d& r) const {
  return {to_lat1(r.x, inv_lsb_.x), to_lat1(r.y, inv_lsb_.y),
          to_lat1(r.z, inv_lsb_.z)};
}

Vec3d PositionLattice::to_phys(const Vec3i& p) const {
  return {p.x * lsb_.x, p.y * lsb_.y, p.z * lsb_.z};
}

double PositionLattice::dist2(const Vec3i& a, const Vec3i& b) const {
  const Vec3i d = delta(a, b);
  const Vec3d dr = delta_to_phys(d);
  return dr.norm2();
}

Vec3i PositionLattice::advance(const Vec3i& p, const Vec3d& dr) const {
  const std::int32_t dx =
      static_cast<std::int32_t>(static_cast<std::uint64_t>(std::llrint(dr.x * inv_lsb_.x)));
  const std::int32_t dy =
      static_cast<std::int32_t>(static_cast<std::uint64_t>(std::llrint(dr.y * inv_lsb_.y)));
  const std::int32_t dz =
      static_cast<std::int32_t>(static_cast<std::uint64_t>(std::llrint(dr.z * inv_lsb_.z)));
  return {wrap_add32(p.x, dx), wrap_add32(p.y, dy), wrap_add32(p.z, dz)};
}

}  // namespace anton::fixed
