// Order-invariant accumulators.
//
// Force and energy sums use 64-bit wrapping accumulators; virial (pressure)
// sums use 128-bit accumulators, mirroring the 86-bit multiply/accumulators
// in the HTIS (Figure 4c) that let Anton guarantee determinism and parallel
// invariance for pressure-controlled simulations.
#pragma once

#include <cstdint>

#include "fixed/fixed.hpp"
#include "geom/vec3.hpp"

namespace anton::fixed {

/// A wrapping 64-bit accumulator for one fixed-point quantity.
class Accum64 {
 public:
  constexpr Accum64() = default;
  constexpr void add(std::int64_t v) { sum_ = wrap_add(sum_, v); }
  constexpr void sub(std::int64_t v) { sum_ = wrap_sub(sum_, v); }
  constexpr std::int64_t value() const { return sum_; }
  constexpr void reset() { sum_ = 0; }

 private:
  std::int64_t sum_ = 0;
};

/// A wrapping 3-vector of 64-bit accumulators (forces).
struct ForceAccum {
  Vec3l f{0, 0, 0};
  constexpr void add(const Vec3l& v) {
    f.x = wrap_add(f.x, v.x);
    f.y = wrap_add(f.y, v.y);
    f.z = wrap_add(f.z, v.z);
  }
  constexpr void sub(const Vec3l& v) {
    f.x = wrap_sub(f.x, v.x);
    f.y = wrap_sub(f.y, v.y);
    f.z = wrap_sub(f.z, v.z);
  }
};

/// A wrapping 128-bit accumulator (virial tensor components).
class Accum128 {
 public:
  constexpr Accum128() = default;
  constexpr void add(__int128 v) {
    sum_ = static_cast<__int128>(static_cast<unsigned __int128>(sum_) +
                                 static_cast<unsigned __int128>(v));
  }
  constexpr __int128 value() const { return sum_; }
  double to_double() const { return static_cast<double>(sum_); }

 private:
  __int128 sum_ = 0;
};

}  // namespace anton::fixed
