// Fixed-point arithmetic primitives (Section 4 of the paper).
//
// Anton represents every physical quantity as a B-bit signed fixed-point
// number, with two key consequences this module reproduces exactly:
//
//  * Addition/subtraction WRAP in the natural two's-complement way, which
//    makes summation associative and commutative: a collection of values
//    sums to the correct result regardless of order, as long as the final
//    sum is representable, even when intermediate partial sums wrap
//    (footnote 2 of the paper). This is the root of Anton's determinism
//    and parallel invariance.
//
//  * All rounding uses round-to-nearest/even (RNE), which is odd-symmetric
//    (RNE(-x) == -RNE(x)). Combined with wrap addition this makes the
//    fixed-point integrator bitwise time reversible.
//
// Signed overflow is UB in C++, so wrapping ops are implemented in unsigned
// arithmetic and converted back; the conversions are value-preserving on
// all two's-complement targets (guaranteed since C++20).
#pragma once

#include <cmath>
#include <cstdint>

namespace anton::fixed {

/// Wrapping 64-bit add (associative, commutative; may wrap like hardware).
inline constexpr std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

/// Wrapping 64-bit subtract; exact inverse of wrap_add.
inline constexpr std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

/// Wrapping 32-bit add. On the position lattice this steps across the
/// periodic boundary.
inline constexpr std::int32_t wrap_add32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}

/// Wrapping 32-bit subtract. On the position lattice, a - b wraps to the
/// minimum-image displacement whenever the true separation is below L/2.
inline constexpr std::int32_t wrap_sub32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}

/// Quantizes a real value onto the integer grid x -> round(x * scale),
/// rounding to nearest with ties to even (IEEE default mode). The result
/// is odd-symmetric: quantize(-x, s) == -quantize(x, s).
inline std::int64_t quantize(double x, double scale) {
  return std::llrint(x * scale);
}

/// Arithmetic right shift by k with round-to-nearest/even; the fixed-point
/// equivalent of dividing by 2^k. k == 0 returns v unchanged.
inline constexpr std::int64_t rshift_rne(std::int64_t v, int k) {
  if (k <= 0) return v;
  const std::int64_t q = v >> k;  // floor division by 2^k
  const std::int64_t mask = (std::int64_t{1} << k) - 1;
  const std::int64_t r = v & mask;
  const std::int64_t half = std::int64_t{1} << (k - 1);
  if (r > half || (r == half && (q & 1))) return q + 1;
  return q;
}

/// Rounds a double to an integer-valued double with ties to even, via the
/// classic magic-number trick: adding 2^52 + 2^51 pushes the value into a
/// binade whose ULP is exactly 1, so the add itself performs the rounding
/// (in the default IEEE mode), and the subtract is exact. Bitwise equal to
/// (double)llrint(x) for |x| < 2^51 -- the domain every batched kernel in
/// this codebase proves before using it. Unlike llrint this is a pure
/// add/sub data operation, so compilers vectorize loops around it.
inline double rne_round(double x) {
  constexpr double kMagic = 6755399441055744.0;  // 2^52 + 2^51
  return (x + kMagic) - kMagic;
}

/// Wraps a value into the range of a B-bit signed integer (the natural
/// hardware behaviour of a B-bit datapath).
inline constexpr std::int64_t wrap_to_bits(std::int64_t v, int bits) {
  const std::uint64_t u = static_cast<std::uint64_t>(v) << (64 - bits);
  return static_cast<std::int64_t>(u) >> (64 - bits);
}

/// Clamps a value to the range of a B-bit signed integer (used by datapath
/// stages that saturate instead of wrapping).
inline constexpr std::int64_t saturate_to_bits(std::int64_t v, int bits) {
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  return v < lo ? lo : (v > hi ? hi : v);
}

// ---------------------------------------------------------------------------
// Engine-wide fixed-point scales. A value of physical magnitude m is stored
// as round(m * kScale). Ranges are generous: velocities up to ~2^23 A/fs
// and forces up to ~2^31 kcal/mol/A before the accumulator wraps -- far
// beyond anything a stable simulation produces.
// ---------------------------------------------------------------------------

/// Velocity grid: counts per (A/fs).
inline constexpr double kVelScale = 1099511627776.0;  // 2^40

/// Force grid: counts per (kcal/mol/A).
inline constexpr double kForceScale = 4294967296.0;  // 2^32

/// Energy grid: counts per (kcal/mol).
inline constexpr double kEnergyScale = 4294967296.0;  // 2^32

/// Virial grid (128-bit accumulators, cf. the paper's 86-bit units):
/// counts per (kcal/mol).
inline constexpr double kVirialScale = 4294967296.0;  // 2^32

inline std::int64_t quantize_force(double f) { return quantize(f, kForceScale); }
inline std::int64_t quantize_energy(double e) { return quantize(e, kEnergyScale); }
inline double force_to_phys(std::int64_t f) {
  return static_cast<double>(f) / kForceScale;
}
inline double energy_to_phys(std::int64_t e) {
  return static_cast<double>(e) / kEnergyScale;
}
inline double vel_to_phys(std::int64_t v) {
  return static_cast<double>(v) / kVelScale;
}

}  // namespace anton::fixed
