#include "integrate/minimize.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "constraints/shake.hpp"
#include "core/reference_engine.hpp"

namespace anton::integrate {

MinimizeResult minimize_fire(System& sys, const core::SimParams& params,
                             const MinimizeParams& mp) {
  MinimizeResult res;
  core::ReferenceEngine eng(sys, params);
  res.initial_energy = eng.measure_energy().potential();

  const std::int32_t n = sys.top.natoms;
  std::vector<Vec3d> x = eng.positions();
  std::vector<Vec3d> v(n, {0, 0, 0});

  // FIRE parameters (standard values from Bitzek et al. 2006).
  double dt = mp.dt_init;
  double alpha = 0.1;
  int steps_since_uphill = 0;

  for (res.steps = 0; res.steps < mp.max_steps; ++res.steps) {
    eng.set_positions(x);
    const std::vector<Vec3d> f = eng.compute_forces_now();

    double fmax = 0.0, power = 0.0, fnorm = 0.0, vnorm = 0.0;
    for (std::int32_t i = 0; i < n; ++i) {
      if (sys.top.mass[i] == 0.0) continue;  // virtual sites follow parents
      fmax = std::max(fmax, f[i].norm());
      power += f[i].dot(v[i]);
      fnorm += f[i].norm2();
      vnorm += v[i].norm2();
    }
    res.max_force = fmax;
    if (fmax < mp.force_tol) {
      res.converged = true;
      break;
    }

    // FIRE velocity mixing.
    fnorm = std::sqrt(fnorm);
    vnorm = std::sqrt(vnorm);
    if (power > 0.0) {
      const double mix = alpha * vnorm / std::max(fnorm, 1e-12);
      for (std::int32_t i = 0; i < n; ++i)
        v[i] = v[i] * (1.0 - alpha) + f[i] * mix;
      if (++steps_since_uphill > 5) {
        dt = std::min(dt * 1.1, mp.dt_max);
        alpha *= 0.99;
      }
    } else {
      for (auto& vi : v) vi = {0, 0, 0};
      dt *= 0.5;
      alpha = 0.1;
      steps_since_uphill = 0;
    }

    // Semi-implicit Euler with a per-atom displacement cap.
    std::vector<Vec3d> ref = x;
    for (std::int32_t i = 0; i < n; ++i) {
      if (sys.top.mass[i] == 0.0) continue;
      v[i] += f[i] * (dt * 1e-3);  // gentle force scaling
      Vec3d move = v[i] * dt;
      const double m = move.norm();
      if (m > mp.max_move) move = move * (mp.max_move / m);
      x[i] = sys.box.wrap(x[i] + move);
    }
    if (!sys.top.constraints.empty()) {
      constraints::shake(sys.top.constraints, sys.top.mass, ref, x, sys.box,
                         {200, 1e-8});
    }
  }

  eng.set_positions(x);
  res.final_energy = eng.measure_energy().potential();
  sys.positions = eng.positions();
  return res;
}

}  // namespace anton::integrate
