#include "integrate/kinetic.hpp"

#include <cmath>

#include "util/units.hpp"

namespace anton::integrate {

double kinetic_energy(std::span<const Vec3d> vel,
                      std::span<const double> mass) {
  // KE = 1/2 m v^2; v in A/fs, m in amu -> convert to kcal/mol by
  // dividing by kForceToAccel (amu A^2/fs^2 -> kcal/mol).
  double s = 0.0;
  for (std::size_t i = 0; i < vel.size(); ++i) s += mass[i] * vel[i].norm2();
  return 0.5 * s / units::kForceToAccel;
}

double temperature(double kinetic, double dof) {
  if (dof <= 0.0) return 0.0;
  return 2.0 * kinetic / (dof * units::kB);
}

double berendsen_lambda(double current_T, double target_T, double dt,
                        double tau) {
  if (current_T <= 0.0) return 1.0;
  return std::sqrt(1.0 + (dt / tau) * (target_T / current_T - 1.0));
}

void remove_com_drift(std::span<Vec3d> vel, std::span<const double> mass) {
  Vec3d p{0, 0, 0};
  double m = 0.0;
  for (std::size_t i = 0; i < vel.size(); ++i) {
    p += vel[i] * mass[i];
    m += mass[i];
  }
  if (m == 0.0) return;
  const Vec3d v_com = p / m;
  for (auto& v : vel) v -= v_com;
}

}  // namespace anton::integrate
