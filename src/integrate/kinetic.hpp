// Kinetic energy, temperature, thermostats and the multiple-time-step
// schedule shared by both engines.
#pragma once

#include <cstdint>
#include <span>

#include "geom/vec3.hpp"

namespace anton::integrate {

/// Kinetic energy (kcal/mol) from velocities (A/fs) and masses (amu).
double kinetic_energy(std::span<const Vec3d> vel, std::span<const double> mass);

/// Instantaneous temperature (K) given degrees of freedom.
double temperature(double kinetic, double dof);

/// Berendsen weak-coupling thermostat scale factor for one step:
/// lambda = sqrt(1 + (dt/tau)(T0/T - 1)). The caller multiplies all
/// velocities by lambda. (The BPTI run in Section 5.3 used Berendsen
/// temperature control.)
double berendsen_lambda(double current_T, double target_T, double dt,
                        double tau);

/// Multiple-time-step (RESPA-style) schedule: "long-range interactions are
/// typically evaluated only every two or three time steps" (Table 2 note).
/// Long-range forces computed on a long step are applied with weight
/// `long_range_every` so the average impulse matches.
struct MtsSchedule {
  int long_range_every = 2;
  bool is_long_step(std::int64_t step) const {
    return long_range_every <= 1 || step % long_range_every == 0;
  }
};

/// Removes center-of-mass drift (velocity of the total momentum).
void remove_com_drift(std::span<Vec3d> vel, std::span<const double> mass);

}  // namespace anton::integrate
