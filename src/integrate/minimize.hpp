// Energy minimization: FIRE (fast inertial relaxation engine) over the
// reference-engine force field, with constraint re-projection.
//
// Used to prepare synthetic systems for dynamics (a structure-preparation
// step the paper's users performed with their MD packages before handing
// systems to Anton) and available as a public API for library users.
#pragma once

#include "core/engine_types.hpp"
#include "ff/topology.hpp"

namespace anton::integrate {

struct MinimizeParams {
  int max_steps = 200;
  double force_tol = 5.0;    // stop when max |F| below this (kcal/mol/A)
  double dt_init = 0.4;      // fs-like step (FIRE units)
  double dt_max = 2.0;
  double max_move = 0.2;     // per-step displacement cap (A)
};

struct MinimizeResult {
  int steps = 0;
  double initial_energy = 0.0;
  double final_energy = 0.0;
  double max_force = 0.0;
  bool converged = false;
};

/// Minimizes the system's potential energy in place (positions updated;
/// velocities untouched). Constraints are re-satisfied with SHAKE after
/// every move, and virtual sites rebuilt.
MinimizeResult minimize_fire(System& sys, const core::SimParams& params,
                             const MinimizeParams& mp = {});

}  // namespace anton::integrate
