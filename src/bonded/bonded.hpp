// Bonded-force kernels (bond terms, Section 3.2.3).
//
// Each kernel evaluates one term and reports per-atom force contributions
// separately, because the two engines consume them differently: the
// double-precision reference engine accumulates them directly, while the
// Anton engine (geometry-core model) quantizes each contribution onto the
// fixed-point force grid before the order-invariant wrapping accumulation.
//
// All kernels take minimum-image displacements through the periodic box,
// matching how a bond term whose atoms straddle a box boundary is
// evaluated on the node that owns the term.
#pragma once

#include <span>

#include "ff/topology.hpp"
#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::bonded {

/// Per-atom force contributions of a single term (up to 4 atoms).
struct TermForces {
  int n = 0;
  std::int32_t atom[4] = {0, 0, 0, 0};
  Vec3d f[4];
  double energy = 0.0;

  void add(std::int32_t a, const Vec3d& fa) {
    atom[n] = a;
    f[n] = fa;
    ++n;
  }
};

// Explicit-position kernels: positions are passed term-locally (ri is
// t.atom i's position, etc.), so a caller that holds only a node-local
// window of atoms -- the message-passing VirtualMachine -- can evaluate a
// term from its mailbox without a global array. The span overloads below
// delegate here; there is exactly one implementation of each functional
// form.
TermForces eval_bond(const BondTerm& b, const Vec3d& ri, const Vec3d& rj,
                     const PeriodicBox& box);

TermForces eval_angle(const AngleTerm& a, const Vec3d& ri, const Vec3d& rj,
                      const Vec3d& rk, const PeriodicBox& box);

TermForces eval_dihedral(const DihedralTerm& d, const Vec3d& ri,
                         const Vec3d& rj, const Vec3d& rk, const Vec3d& rl,
                         const PeriodicBox& box);

inline TermForces eval_bond(const BondTerm& b, std::span<const Vec3d> pos,
                            const PeriodicBox& box) {
  return eval_bond(b, pos[b.i], pos[b.j], box);
}

inline TermForces eval_angle(const AngleTerm& a, std::span<const Vec3d> pos,
                             const PeriodicBox& box) {
  return eval_angle(a, pos[a.i], pos[a.j], pos[a.k], box);
}

inline TermForces eval_dihedral(const DihedralTerm& d,
                                std::span<const Vec3d> pos,
                                const PeriodicBox& box) {
  return eval_dihedral(d, pos[d.i], pos[d.j], pos[d.k], pos[d.l], box);
}

/// Evaluates every bonded term of a topology into a force array (reference
/// path); returns the total bonded energy.
double eval_all_bonded(const Topology& top, std::span<const Vec3d> pos,
                       const PeriodicBox& box, std::span<Vec3d> forces);

}  // namespace anton::bonded
