#include "bonded/bonded.hpp"

#include <algorithm>
#include <cmath>

namespace anton::bonded {

TermForces eval_bond(const BondTerm& b, const Vec3d& ri, const Vec3d& rj,
                     const PeriodicBox& box) {
  TermForces out;
  const Vec3d dr = box.min_image(ri, rj);
  const double r = dr.norm();
  const double dev = r - b.r0;
  out.energy = b.k * dev * dev;
  // F_i = -dE/dr_i = -2k (r - r0) * dr/r
  const double coef = (r > 0.0) ? -2.0 * b.k * dev / r : 0.0;
  const Vec3d fi = coef * dr;
  out.add(b.i, fi);
  out.add(b.j, -fi);
  return out;
}

TermForces eval_angle(const AngleTerm& a, const Vec3d& ri, const Vec3d& rj,
                      const Vec3d& rk, const PeriodicBox& box) {
  TermForces out;
  const Vec3d u = box.min_image(ri, rj);
  const Vec3d v = box.min_image(rk, rj);
  const double nu = u.norm(), nv = v.norm();
  if (nu == 0.0 || nv == 0.0) return out;
  double cost = u.dot(v) / (nu * nv);
  cost = std::clamp(cost, -1.0, 1.0);
  const double theta = std::acos(cost);
  const double dev = theta - a.theta0;
  out.energy = a.kf * dev * dev;
  const double sint = std::sqrt(std::max(1.0 - cost * cost, 1e-12));
  // F_i = (2 kf dev / sin) * (v/(|u||v|) - cos * u/|u|^2), and symmetrically
  // for k; j balances.
  const double pref = 2.0 * a.kf * dev / sint;
  const Vec3d fi = pref * (v / (nu * nv) - u * (cost / (nu * nu)));
  const Vec3d fk = pref * (u / (nu * nv) - v * (cost / (nv * nv)));
  out.add(a.i, fi);
  out.add(a.k, fk);
  out.add(a.j, -(fi + fk));
  return out;
}

TermForces eval_dihedral(const DihedralTerm& d, const Vec3d& ri,
                         const Vec3d& rj, const Vec3d& rk, const Vec3d& rl,
                         const PeriodicBox& box) {
  TermForces out;
  const Vec3d b1 = box.min_image(rj, ri);
  const Vec3d b2 = box.min_image(rk, rj);
  const Vec3d b3 = box.min_image(rl, rk);
  const Vec3d n1 = b1.cross(b2);
  const Vec3d n2 = b2.cross(b3);
  const double n1sq = n1.norm2(), n2sq = n2.norm2();
  const double b2n = b2.norm();
  if (n1sq < 1e-12 || n2sq < 1e-12 || b2n < 1e-12) return out;  // collinear
  const double phi = std::atan2(n1.cross(n2).dot(b2) / b2n, n1.dot(n2));
  out.energy = d.kf * (1.0 + std::cos(d.n * phi - d.phase));
  const double dEdphi = d.kf * d.n * std::sin(d.n * phi - d.phase);
  // Blondel & Karplus force distribution.
  const Vec3d fi = n1 * (-dEdphi * b2n / n1sq);
  const Vec3d fl = n2 * (dEdphi * b2n / n2sq);
  const double c1 = b1.dot(b2) / (b2n * b2n);
  const double c2 = b3.dot(b2) / (b2n * b2n);
  const Vec3d s = fl * c2 - fi * c1;
  out.add(d.i, fi);
  out.add(d.l, fl);
  out.add(d.j, -fi + s);
  out.add(d.k, -fl - s);
  return out;
}

double eval_all_bonded(const Topology& top, std::span<const Vec3d> pos,
                       const PeriodicBox& box, std::span<Vec3d> forces) {
  double energy = 0.0;
  auto apply = [&](const TermForces& t) {
    energy += t.energy;
    for (int i = 0; i < t.n; ++i) forces[t.atom[i]] += t.f[i];
  };
  for (const BondTerm& b : top.bonds) apply(eval_bond(b, pos, box));
  for (const AngleTerm& a : top.angles) apply(eval_angle(a, pos, box));
  for (const DihedralTerm& d : top.dihedrals)
    apply(eval_dihedral(d, pos, box));
  return energy;
}

}  // namespace anton::bonded
