#include "pairlist/exclusion_table.hpp"

#include <algorithm>

namespace anton::pairlist {

ExclusionTable::ExclusionTable(const Topology& top) {
  per_atom_.resize(top.natoms);
  for (const ExclusionPair& e : top.exclusions) {
    per_atom_[e.i].push_back({e.j, {e.lj_scale, e.coul_scale}});
    per_atom_[e.j].push_back({e.i, {e.lj_scale, e.coul_scale}});
    ++count_;
  }
  for (auto& v : per_atom_) {
    std::sort(v.begin(), v.end(),
              [](const Entry& a, const Entry& b) { return a.other < b.other; });
  }
}

bool ExclusionTable::excluded(std::int32_t i, std::int32_t j) const {
  return find(i, j).has_value();
}

std::optional<PairScale> ExclusionTable::find(std::int32_t i,
                                              std::int32_t j) const {
  if (i < 0 || i >= static_cast<std::int32_t>(per_atom_.size()))
    return std::nullopt;
  const auto& v = per_atom_[i];
  auto it = std::lower_bound(
      v.begin(), v.end(), j,
      [](const Entry& e, std::int32_t x) { return e.other < x; });
  if (it != v.end() && it->other == j) return it->scale;
  return std::nullopt;
}

}  // namespace anton::pairlist
