// Fast lookup of excluded / scaled nonbonded pairs.
//
// The direct (range-limited) sum must skip every excluded pair; both
// engines query this table inside their pair loops, and the Anton engine's
// match-unit emulation uses it the way Anton's hardware uses exclusion
// tags. Lookups are O(log d) in the per-atom exclusion degree (tiny).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ff/topology.hpp"

namespace anton::pairlist {

struct PairScale {
  double lj = 1.0;
  double coul = 1.0;
};

class ExclusionTable {
 public:
  ExclusionTable() = default;
  explicit ExclusionTable(const Topology& top);

  /// True if the (i, j) interaction is removed from the direct sum (i.e.
  /// the pair appears in the exclusion list with any scale).
  bool excluded(std::int32_t i, std::int32_t j) const;

  /// The scales for a listed pair, or nullopt if the pair is not listed
  /// (full interaction).
  std::optional<PairScale> find(std::int32_t i, std::int32_t j) const;

  std::size_t size() const { return count_; }

 private:
  struct Entry {
    std::int32_t other;
    PairScale scale;
  };
  std::vector<std::vector<Entry>> per_atom_;  // sorted by `other`
  std::size_t count_ = 0;
};

}  // namespace anton::pairlist
