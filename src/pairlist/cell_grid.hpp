// Cell grid and pair enumeration for the conventional (reference) engine.
//
// "High-performance MD codes for conventional processors typically
// organize the computation of range-limited interactions by assembling a
// pair list" (Section 3.2.1). This module provides that baseline: a
// link-cell binning of the box and deterministic enumeration of all
// unordered pairs within a cutoff. It is the foil against which the NT
// method's communication advantage is measured.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton::pairlist {

class CellGrid {
 public:
  /// Chooses the finest grid whose cells are at least `min_cell` on a side
  /// (so a cutoff of min_cell is covered by the 27-cell neighborhood).
  CellGrid(const PeriodicBox& box, double min_cell);

  const Vec3i& dims() const { return dims_; }
  bool brute_force() const { return brute_force_; }

  /// Rebins atoms; positions must be wrapped into [-L/2, L/2).
  void bin(std::span<const Vec3d> pos);

  /// Visits every unordered pair (i < j) with minimum-image separation
  /// r2 <= cutoff^2, in a deterministic order. f(i, j, dr, r2) where dr is
  /// the minimum-image displacement pos[i] - pos[j].
  template <typename F>
  void for_each_pair(std::span<const Vec3d> pos, double cutoff, F&& f) const {
    const double cut2 = cutoff * cutoff;
    if (brute_force_) {
      const std::int32_t n = static_cast<std::int32_t>(pos.size());
      for (std::int32_t i = 0; i < n; ++i) {
        for (std::int32_t j = i + 1; j < n; ++j) {
          const Vec3d dr = box_.min_image(pos[i], pos[j]);
          const double r2 = dr.norm2();
          if (r2 <= cut2) f(i, j, dr, r2);
        }
      }
      return;
    }
    for (std::int32_t cz = 0; cz < dims_.z; ++cz)
      for (std::int32_t cy = 0; cy < dims_.y; ++cy)
        for (std::int32_t cx = 0; cx < dims_.x; ++cx)
          visit_cell_pairs(pos, {cx, cy, cz}, cut2, f);
  }

  /// Count of atoms binned most recently.
  std::size_t atom_count() const { return cell_of_.size(); }

 private:
  std::int32_t cell_index(const Vec3i& c) const {
    return (c.z * dims_.y + c.y) * dims_.x + c.x;
  }
  Vec3i cell_coords(const Vec3d& r) const;

  template <typename F>
  void visit_cell_pairs(std::span<const Vec3d> pos, const Vec3i& c,
                        double cut2, F&& f) const {
    const auto& home = cells_[cell_index(c)];
    // Half-neighborhood stencil: self cell (i<j) plus 13 forward neighbors,
    // so each cell pair is visited exactly once.
    for (std::size_t a = 0; a < home.size(); ++a) {
      for (std::size_t b = a + 1; b < home.size(); ++b) {
        emit(pos, home[a], home[b], cut2, f);
      }
    }
    for (const Vec3i& off : kHalfStencil) {
      Vec3i nb{(c.x + off.x + dims_.x) % dims_.x,
               (c.y + off.y + dims_.y) % dims_.y,
               (c.z + off.z + dims_.z) % dims_.z};
      if (nb == c) continue;  // tiny grids: neighbor wraps onto self
      const auto& other = cells_[cell_index(nb)];
      for (std::int32_t i : home)
        for (std::int32_t j : other) emit(pos, i, j, cut2, f);
    }
  }

  template <typename F>
  void emit(std::span<const Vec3d> pos, std::int32_t i, std::int32_t j,
            double cut2, F&& f) const {
    const Vec3d dr = box_.min_image(pos[i], pos[j]);
    const double r2 = dr.norm2();
    if (r2 <= cut2) {
      if (i < j)
        f(i, j, dr, r2);
      else
        f(j, i, -dr, r2);
    }
  }

  static const Vec3i kHalfStencil[13];

  PeriodicBox box_;
  Vec3i dims_{1, 1, 1};
  bool brute_force_ = false;
  std::vector<std::vector<std::int32_t>> cells_;
  std::vector<std::int32_t> cell_of_;
};

/// A stored Verlet pair list (cutoff + skin), for kernels that want random
/// access to the pair set or reuse across steps.
///
/// The skin-reuse invariant: the list built at `ref_pos` contains every
/// pair that can come within `cutoff` as long as no atom has moved more
/// than skin/2 from its build-time position (two atoms approaching each
/// other close the gap at most 2 * skin/2 = skin, which the list covers).
/// Callers that reuse across steps must check needs_rebuild(); debug
/// builds assert it on every reuse.
struct VerletList {
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
  double cutoff = 0.0;       // interaction cutoff the list guarantees
  double skin = 0.0;         // extra shell captured at build
  double list_cutoff = 0.0;  // cutoff + skin
  std::vector<Vec3d> ref_pos;  // positions the list was built from

  static VerletList build(const PeriodicBox& box, std::span<const Vec3d> pos,
                          double cutoff, double skin);

  /// Largest minimum-image displacement of any atom from its build-time
  /// position.
  double max_displacement(const PeriodicBox& box,
                          std::span<const Vec3d> pos) const;

  /// True when the list may no longer cover every pair within `cutoff`.
  bool needs_rebuild(double max_disp) const { return 2.0 * max_disp > skin; }
  bool needs_rebuild(const PeriodicBox& box,
                     std::span<const Vec3d> pos) const {
    return needs_rebuild(max_displacement(box, pos));
  }

  /// Visits the stored pairs currently within `cutoff` at the given
  /// positions: f(i, j, dr, r2) with dr = pos[i] - pos[j] (minimum
  /// image), i < j. Reusing a stale list silently drops pairs, so debug
  /// builds assert the skin invariant here.
  template <typename F>
  void for_each_pair(const PeriodicBox& box, std::span<const Vec3d> pos,
                     F&& f) const {
    assert(!needs_rebuild(box, pos) &&
           "VerletList reused past skin/2 displacement; rebuild required");
    const double cut2 = cutoff * cutoff;
    for (const auto& [i, j] : pairs) {
      const Vec3d dr = box.min_image(pos[i], pos[j]);
      const double r2 = dr.norm2();
      if (r2 <= cut2) f(i, j, dr, r2);
    }
  }
};

}  // namespace anton::pairlist
