#include "pairlist/cell_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace anton::pairlist {

const Vec3i CellGrid::kHalfStencil[13] = {
    {1, 0, 0},  {0, 1, 0},   {1, 1, 0},   {-1, 1, 0}, {0, 0, 1},
    {1, 0, 1},  {-1, 0, 1},  {0, 1, 1},   {1, 1, 1},  {-1, 1, 1},
    {0, -1, 1}, {1, -1, 1},  {-1, -1, 1},
};

CellGrid::CellGrid(const PeriodicBox& box, double min_cell) : box_(box) {
  if (min_cell <= 0.0) throw std::invalid_argument("CellGrid: bad cell size");
  const Vec3d s = box.side();
  dims_ = {static_cast<std::int32_t>(std::floor(s.x / min_cell)),
           static_cast<std::int32_t>(std::floor(s.y / min_cell)),
           static_cast<std::int32_t>(std::floor(s.z / min_cell))};
  if (dims_.x < 3 || dims_.y < 3 || dims_.z < 3) {
    brute_force_ = true;
    dims_ = {1, 1, 1};
  }
  cells_.resize(static_cast<std::size_t>(dims_.x) * dims_.y * dims_.z);
}

Vec3i CellGrid::cell_coords(const Vec3d& r) const {
  const Vec3d s = box_.side();
  auto coord = [](double x, double L, std::int32_t n) {
    // x in [-L/2, L/2) -> cell in [0, n)
    std::int32_t c = static_cast<std::int32_t>((x / L + 0.5) * n);
    if (c < 0) c = 0;
    if (c >= n) c = n - 1;
    return c;
  };
  return {coord(r.x, s.x, dims_.x), coord(r.y, s.y, dims_.y),
          coord(r.z, s.z, dims_.z)};
}

void CellGrid::bin(std::span<const Vec3d> pos) {
  for (auto& c : cells_) c.clear();
  cell_of_.resize(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const std::int32_t ci =
        brute_force_ ? 0 : cell_index(cell_coords(pos[i]));
    cells_[ci].push_back(static_cast<std::int32_t>(i));
    cell_of_[i] = ci;
  }
}

VerletList VerletList::build(const PeriodicBox& box,
                             std::span<const Vec3d> pos, double cutoff,
                             double skin) {
  VerletList list;
  list.cutoff = cutoff;
  list.skin = skin;
  list.list_cutoff = cutoff + skin;
  list.ref_pos.assign(pos.begin(), pos.end());
  CellGrid grid(box, list.list_cutoff);
  grid.bin(pos);
  grid.for_each_pair(pos, list.list_cutoff,
                     [&](std::int32_t i, std::int32_t j, const Vec3d&,
                         double) { list.pairs.emplace_back(i, j); });
  return list;
}

double VerletList::max_displacement(const PeriodicBox& box,
                                    std::span<const Vec3d> pos) const {
  double worst2 = 0.0;
  const std::size_t n = std::min(pos.size(), ref_pos.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d2 = box.min_image(pos[i], ref_pos[i]).norm2();
    if (d2 > worst2) worst2 = d2;
  }
  return std::sqrt(worst2);
}

}  // namespace anton::pairlist
