#include "geom/box.hpp"

#include <cmath>

namespace anton {

namespace {
inline double wrap1(double x, double L) {
  // Reduce to [-L/2, L/2). std::floor-based reduction is exact enough for
  // the double-precision reference path; the fixed-point path never calls
  // this (wrap happens in integer arithmetic).
  x -= L * std::floor(x / L + 0.5);
  if (x >= 0.5 * L) x -= L;  // guard against x/L + 0.5 rounding up
  return x;
}
}  // namespace

Vec3d PeriodicBox::wrap(Vec3d r) const {
  return {wrap1(r.x, side_.x), wrap1(r.y, side_.y), wrap1(r.z, side_.z)};
}

Vec3d PeriodicBox::min_image(const Vec3d& a, const Vec3d& b) const {
  return min_image(a - b);
}

Vec3d PeriodicBox::min_image(Vec3d dr) const { return wrap(dr); }

}  // namespace anton
