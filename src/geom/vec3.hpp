// Minimal 3-vector used for both real-valued (double) and lattice
// (integer) coordinates. Kept deliberately small: the fixed-point engine
// works on integer lattices where operator semantics (wrapping) are
// supplied by the fixed/ module, so this type provides only the plain
// component-wise algebra.
#pragma once

#include <cmath>
#include <cstdint>

namespace anton {

template <typename T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}

  constexpr T& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3 operator+(const Vec3& o) const {
    return {static_cast<T>(x + o.x), static_cast<T>(y + o.y),
            static_cast<T>(z + o.z)};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {static_cast<T>(x - o.x), static_cast<T>(y - o.y),
            static_cast<T>(z - o.z)};
  }
  constexpr Vec3 operator-() const {
    return {static_cast<T>(-x), static_cast<T>(-y), static_cast<T>(-z)};
  }
  constexpr Vec3 operator*(T s) const {
    return {static_cast<T>(x * s), static_cast<T>(y * s),
            static_cast<T>(z * s)};
  }
  constexpr Vec3 operator/(T s) const {
    return {static_cast<T>(x / s), static_cast<T>(y / s),
            static_cast<T>(z / s)};
  }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(T s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr bool operator==(const Vec3&) const = default;

  constexpr T dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr T norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(static_cast<double>(norm2())); }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
};

template <typename T>
constexpr Vec3<T> operator*(T s, const Vec3<T>& v) {
  return v * s;
}

using Vec3d = Vec3<double>;
using Vec3i = Vec3<std::int32_t>;
using Vec3l = Vec3<std::int64_t>;

}  // namespace anton
