// Orthorhombic periodic simulation box.
//
// The box is centered at the origin: physical coordinates live in
// [-L/2, L/2) per axis. This matches the fixed-point position convention
// (fixed/position.hpp) where an int32 lattice coordinate spans [-L/2, L/2)
// and two's-complement wrap implements the periodic boundary.
#pragma once

#include "geom/vec3.hpp"

namespace anton {

class PeriodicBox {
 public:
  PeriodicBox() : side_{0, 0, 0} {}
  explicit PeriodicBox(double cubic_side)
      : side_{cubic_side, cubic_side, cubic_side} {}
  explicit PeriodicBox(const Vec3d& side) : side_(side) {}

  const Vec3d& side() const { return side_; }
  double volume() const { return side_.x * side_.y * side_.z; }
  bool is_cubic() const { return side_.x == side_.y && side_.y == side_.z; }

  /// Wraps a physical coordinate into [-L/2, L/2) per axis.
  Vec3d wrap(Vec3d r) const;

  /// Minimum-image displacement a - b.
  Vec3d min_image(const Vec3d& a, const Vec3d& b) const;

  /// Minimum-image convention applied to a raw displacement.
  Vec3d min_image(Vec3d dr) const;

 private:
  Vec3d side_;
};

}  // namespace anton
