#include "ff/params.hpp"

#include <stdexcept>

namespace anton::ff {

LJType lj_for(AtomClass c) {
  switch (c) {
    case AtomClass::kCarbon:
      return {3.40, 0.086};
    case AtomClass::kNitrogen:
      return {3.25, 0.170};
    case AtomClass::kOxygen:
      return {2.96, 0.210};
    case AtomClass::kHydrogen:
      return {2.47, 0.016};
    case AtomClass::kPolarHydrogen:
      return {1.07, 0.016};
    case AtomClass::kSidechain:
      return {3.80, 0.115};
    case AtomClass::kWaterOxygen:
      return {3.15, 0.152};
    case AtomClass::kWaterHydrogen:
      return {1.00, 0.0};  // LJ on water hydrogens is zero in TIP models
    case AtomClass::kWaterMSite:
      return {1.00, 0.0};
    case AtomClass::kChloride:
      return {4.40, 0.100};
    default:
      throw std::invalid_argument("lj_for: bad atom class");
  }
}

double mass_for(AtomClass c) {
  switch (c) {
    case AtomClass::kCarbon:
      return 12.011;
    case AtomClass::kNitrogen:
      return 14.007;
    case AtomClass::kOxygen:
      return 15.999;
    case AtomClass::kHydrogen:
    case AtomClass::kPolarHydrogen:
      return 1.008;
    case AtomClass::kSidechain:
      return 15.0;  // united CH3-like bead
    case AtomClass::kWaterOxygen:
      return 15.999;
    case AtomClass::kWaterHydrogen:
      return 1.008;
    case AtomClass::kWaterMSite:
      return 1.0;  // token mass; see params.hpp
    case AtomClass::kChloride:
      return 35.453;
    default:
      throw std::invalid_argument("mass_for: bad atom class");
  }
}

BondParam backbone_bond() { return {317.0, 1.522}; }
BondParam sidechain_bond() { return {310.0, 1.526}; }
BondParam nh_bond() { return {434.0, 1.010}; }
AngleParam backbone_angle() { return {63.0, 1.939}; }  // ~111.1 degrees
DihedralParam backbone_dihedral() { return {0.75, 3, 0.0}; }

Water3Site water3() { return {}; }
Water4Site water4() { return {}; }

}  // namespace anton::ff
