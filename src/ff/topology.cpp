#include "ff/topology.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <tuple>
#include <queue>
#include <set>
#include <stdexcept>

namespace anton {

double Topology::degrees_of_freedom() const {
  return 3.0 * natoms - static_cast<double>(constraints.size()) -
         3.0 * static_cast<double>(virtual_sites.size()) - 3.0;
}

double Topology::total_charge() const {
  double q = 0.0;
  for (double c : charge) q += c;
  return q;
}

void Topology::build_exclusions(double lj14_scale, double coul14_scale) {
  exclusions.clear();
  // Adjacency over covalent bonds; constraints replace bonds to hydrogens,
  // so they count for connectivity too.
  std::vector<std::vector<std::int32_t>> adj(natoms);
  auto link = [&](std::int32_t a, std::int32_t b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  for (const BondTerm& b : bonds) link(b.i, b.j);
  for (const ConstraintBond& c : constraints) link(c.i, c.j);
  for (const VirtualSite& v : virtual_sites) link(v.site, v.o);

  // BFS to depth 3 from every atom; record the minimum bond distance of
  // each reachable pair.
  std::map<std::pair<std::int32_t, std::int32_t>, int> dist;
  for (std::int32_t s = 0; s < natoms; ++s) {
    std::vector<std::pair<std::int32_t, int>> frontier{{s, 0}};
    std::set<std::int32_t> seen{s};
    for (std::size_t qi = 0; qi < frontier.size(); ++qi) {
      auto [u, d] = frontier[qi];
      if (d == 3) continue;
      for (std::int32_t v : adj[u]) {
        if (seen.count(v)) continue;
        seen.insert(v);
        frontier.push_back({v, d + 1});
        if (v > s) {
          auto key = std::make_pair(s, v);
          auto it = dist.find(key);
          if (it == dist.end() || it->second > d + 1) dist[key] = d + 1;
        }
      }
    }
  }
  for (const auto& [pair, d] : dist) {
    ExclusionPair e;
    e.i = pair.first;
    e.j = pair.second;
    if (d <= 2) {
      e.lj_scale = 0.0;
      e.coul_scale = 0.0;
    } else {
      e.lj_scale = lj14_scale;
      e.coul_scale = coul14_scale;
    }
    exclusions.push_back(e);
  }
  std::sort(exclusions.begin(), exclusions.end(),
            [](const ExclusionPair& a, const ExclusionPair& b) {
              return std::tie(a.i, a.j) < std::tie(b.i, b.j);
            });
}

void Topology::build_constraint_groups() {
  constraint_groups.clear();
  std::vector<std::int32_t> parent(natoms);
  for (std::int32_t i = 0; i < natoms; ++i) parent[i] = i;
  std::function<std::int32_t(std::int32_t)> find = [&](std::int32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const ConstraintBond& c : constraints) {
    const std::int32_t a = find(c.i), b = find(c.j);
    if (a != b) parent[a] = b;
  }
  // Virtual sites migrate with (and are rebuilt from) their parents.
  for (const VirtualSite& v : virtual_sites) {
    const std::int32_t a = find(v.site), b = find(v.o);
    if (a != b) parent[a] = b;
  }
  std::map<std::int32_t, std::vector<std::int32_t>> groups;
  for (std::int32_t i = 0; i < natoms; ++i) groups[find(i)].push_back(i);
  for (auto& [root, members] : groups) {
    if (members.size() > 1) constraint_groups.push_back(std::move(members));
  }
}

void Topology::validate() const {
  auto check_atom = [&](std::int32_t a, const char* what) {
    if (a < 0 || a >= natoms)
      throw std::runtime_error(std::string("Topology: bad atom index in ") +
                               what);
  };
  if (static_cast<std::int32_t>(mass.size()) != natoms ||
      static_cast<std::int32_t>(charge.size()) != natoms ||
      static_cast<std::int32_t>(type.size()) != natoms)
    throw std::runtime_error("Topology: per-atom array size mismatch");
  for (std::int32_t t : type)
    if (t < 0 || t >= static_cast<std::int32_t>(lj_types.size()))
      throw std::runtime_error("Topology: bad LJ type index");
  for (const BondTerm& b : bonds) {
    check_atom(b.i, "bond");
    check_atom(b.j, "bond");
    if (b.i == b.j) throw std::runtime_error("Topology: degenerate bond");
  }
  for (const AngleTerm& a : angles) {
    check_atom(a.i, "angle");
    check_atom(a.j, "angle");
    check_atom(a.k, "angle");
  }
  for (const DihedralTerm& d : dihedrals) {
    check_atom(d.i, "dihedral");
    check_atom(d.j, "dihedral");
    check_atom(d.k, "dihedral");
    check_atom(d.l, "dihedral");
  }
  for (const ExclusionPair& e : exclusions) {
    check_atom(e.i, "exclusion");
    check_atom(e.j, "exclusion");
    if (e.i >= e.j) throw std::runtime_error("Topology: exclusion not i<j");
  }
  for (const ConstraintBond& c : constraints) {
    check_atom(c.i, "constraint");
    check_atom(c.j, "constraint");
    if (c.length <= 0.0)
      throw std::runtime_error("Topology: non-positive constraint length");
  }
  for (const VirtualSite& v : virtual_sites) {
    check_atom(v.site, "virtual site");
    check_atom(v.o, "virtual site");
    check_atom(v.h1, "virtual site");
    check_atom(v.h2, "virtual site");
    if (mass[v.site] != 0.0)
      throw std::runtime_error("Topology: virtual site must be massless");
  }
  std::vector<char> in_group(natoms, 0);
  for (const auto& g : constraint_groups) {
    for (std::int32_t a : g) {
      check_atom(a, "constraint group");
      if (in_group[a])
        throw std::runtime_error("Topology: overlapping constraint groups");
      in_group[a] = 1;
    }
  }
}

}  // namespace anton
