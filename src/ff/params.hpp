// Generic protein-like force-field parameter library.
//
// The paper's simulations used AMBER99SB and OPLS-AA with TIP3P / TIP4P-Ew
// water. We cannot redistribute those parameter sets, so this module
// provides a compact library with the same functional forms and physically
// representative magnitudes (bond stiffnesses ~300-500 kcal/mol/A^2, LJ
// well depths ~0.05-0.2 kcal/mol, partial charges ~ +-0.1-0.8 e). The
// quantities the paper measures -- step rates, force errors, energy drift,
// invariance properties -- depend on term counts, densities and functional
// forms, not on which published constants fill the tables (see DESIGN.md,
// substitution table).
#pragma once

#include "ff/topology.hpp"

namespace anton::ff {

/// Atom classes used by the synthetic builders.
enum class AtomClass : std::int32_t {
  kCarbon = 0,     // aliphatic / backbone carbon
  kNitrogen,       // backbone amide nitrogen
  kOxygen,         // carbonyl oxygen
  kHydrogen,       // nonpolar hydrogen
  kPolarHydrogen,  // amide hydrogen
  kSidechain,      // generic united side-chain bead
  kWaterOxygen,
  kWaterHydrogen,
  kWaterMSite,  // 4-site water virtual charge site
  kChloride,
  kCount
};

/// LJ parameters per atom class; combined by Lorentz-Berthelot.
LJType lj_for(AtomClass c);

/// Atomic mass (amu) per class. The 4-site water M particle carries a
/// token 1 amu borrowed from its oxygen so the fixed-point integrator can
/// treat all four particles as atoms (the paper: "each of the four
/// particles in this water model is treated computationally as an atom").
double mass_for(AtomClass c);

struct BondParam {
  double k;   // kcal/mol/A^2
  double r0;  // A
};
struct AngleParam {
  double kf;      // kcal/mol/rad^2
  double theta0;  // rad
};
struct DihedralParam {
  double kf;  // kcal/mol
  int n;
  double phase;  // rad
};

/// Representative backbone parameters used by the pseudo-protein builder.
BondParam backbone_bond();
BondParam sidechain_bond();
BondParam nh_bond();  // constrained in simulations (bond-to-hydrogen)
AngleParam backbone_angle();
DihedralParam backbone_dihedral();

/// Rigid 3-site water geometry (TIP3P-like): r(OH), angle HOH, charges.
struct Water3Site {
  double r_oh = 0.9572;
  double theta_hoh = 1.82421813;  // 104.52 degrees
  double q_o = -0.834;
  double q_h = 0.417;
};
Water3Site water3();

/// Rigid 4-site water geometry (TIP4P-Ew-like): adds the M charge site on
/// the HOH bisector, displaced r_om from the oxygen.
struct Water4Site {
  double r_oh = 0.9572;
  double theta_hoh = 1.82421813;
  double r_om = 0.125;
  double q_m = -1.04844;
  double q_h = 0.52422;
};
Water4Site water4();

/// Standard nonbonded 1-4 scaling factors (AMBER convention).
inline constexpr double kLJ14Scale = 0.5;
inline constexpr double kCoul14Scale = 1.0 / 1.2;

}  // namespace anton::ff
