// Molecular topology: the static description of a chemical system.
//
// This mirrors the structure of the biomolecular force fields the paper
// simulates (AMBER99SB / OPLS-AA with TIP3P / TIP4P-Ew water): bonded
// terms over small groups of covalently connected atoms, Lennard-Jones
// types, point charges, exclusions (electrostatic and van der Waals
// interactions between atoms separated by 1-3 covalent bonds are
// eliminated or scaled down -- Section 3.1), holonomic constraints on
// bonds to hydrogens and rigid waters, and the disjoint constraint groups
// the integrator keeps co-resident on one node (Section 3.2.4).
//
// We do not ship the (proprietary-licence-encumbered) literature parameter
// sets; src/ff/params.hpp provides a generic protein-like parameter
// library with the same functional forms, and DESIGN.md documents the
// substitution.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "geom/box.hpp"
#include "geom/vec3.hpp"

namespace anton {

/// Harmonic bond: E = k (r - r0)^2, k in kcal/mol/A^2.
struct BondTerm {
  std::int32_t i = 0, j = 0;
  double k = 0.0;
  double r0 = 0.0;
};

/// Harmonic angle: E = k (theta - theta0)^2, k in kcal/mol/rad^2.
struct AngleTerm {
  std::int32_t i = 0, j = 0, k = 0;  // j is the vertex
  double kf = 0.0;
  double theta0 = 0.0;
};

/// Periodic dihedral: E = kf (1 + cos(n phi - phase)).
struct DihedralTerm {
  std::int32_t i = 0, j = 0, k = 0, l = 0;
  double kf = 0.0;
  std::int32_t n = 1;
  double phase = 0.0;
};

/// Lennard-Jones type parameters; pairs combine by Lorentz-Berthelot.
struct LJType {
  double sigma = 1.0;    // A
  double epsilon = 0.0;  // kcal/mol
};

/// An excluded or scaled nonbonded pair (i < j). scale == 0 removes the
/// interaction entirely (1-2, 1-3); fractional scales implement the 1-4
/// scaling conventions. The direct-space sum skips these pairs; the
/// long-range (mesh) contribution for them is removed by the correction
/// pipeline (Section 3.1, "correction forces").
struct ExclusionPair {
  std::int32_t i = 0, j = 0;
  double lj_scale = 0.0;
  double coul_scale = 0.0;
};

/// Holonomic distance constraint |r_i - r_j| = length.
struct ConstraintBond {
  std::int32_t i = 0, j = 0;
  double length = 0.0;
};

/// A massless interaction site constructed linearly from three parents:
///   r_site = r_o + a * (r_h1 + r_h2 - 2 r_o).
/// Used for the M charge site of 4-site water. Because the construction
/// is linear, forces on the site redistribute exactly:
///   F_o += (1 - 2a) F_m,  F_h1 += a F_m,  F_h2 += a F_m.
struct VirtualSite {
  std::int32_t site = 0, o = 0, h1 = 0, h2 = 0;
  double a = 0.0;
};

struct Topology {
  std::int32_t natoms = 0;
  std::vector<double> mass;        // amu
  std::vector<double> charge;      // e
  std::vector<std::int32_t> type;  // index into lj_types
  std::vector<LJType> lj_types;

  /// Molecule id per atom. Exclusions only occur within a molecule, so
  /// engines use this to skip exclusion lookups for inter-molecular pairs.
  std::vector<std::int32_t> molecule;

  std::vector<BondTerm> bonds;
  std::vector<AngleTerm> angles;
  std::vector<DihedralTerm> dihedrals;
  std::vector<ExclusionPair> exclusions;
  std::vector<ConstraintBond> constraints;
  std::vector<VirtualSite> virtual_sites;

  /// Disjoint groups of atoms connected by constraints; every atom appears
  /// in at most one group. Atoms in a group always share a home node.
  std::vector<std::vector<std::int32_t>> constraint_groups;

  /// Number of protein (non-water, non-ion) atoms; used by reporting.
  std::int32_t protein_atoms = 0;

  /// Degrees of freedom after constraints and massless virtual sites
  /// (3N - n_constraints - 3 n_vsites - 3 for removed center-of-mass
  /// drift).
  double degrees_of_freedom() const;

  /// Net charge (e); builders keep systems neutral.
  double total_charge() const;

  /// Derives `exclusions` from the bond graph: full exclusion at bonded
  /// distances 1 and 2 (1-2, 1-3 pairs), scaled interaction at distance 3
  /// (1-4 pairs). Constraint bonds count as bonds for connectivity.
  void build_exclusions(double lj14_scale, double coul14_scale);

  /// Derives `constraint_groups` as connected components of the constraint
  /// graph.
  void build_constraint_groups();

  /// Basic structural validation (index ranges, i < j ordering, disjoint
  /// groups); throws std::runtime_error on violation.
  void validate() const;
};

/// A complete simulation input: topology + box + initial conditions.
struct System {
  Topology top;
  PeriodicBox box;
  std::vector<Vec3d> positions;   // A, wrapped into [-L/2, L/2)
  std::vector<Vec3d> velocities;  // A/fs
  std::string_view name() const { return name_; }
  std::string name_;
};

}  // namespace anton
