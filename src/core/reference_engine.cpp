#include "core/reference_engine.hpp"

#include <cmath>
#include <stdexcept>

#include "bonded/bonded.hpp"
#include "ewald/kernels.hpp"
#include "integrate/kinetic.hpp"
#include "util/units.hpp"

namespace anton::core {

// Phase timing goes through the shared obs::PhaseTimer: it accumulates
// into times_ (the Table 2 x86 column) AND emits the matching tracer span
// when a tracer is attached -- one timing source for tables and traces.

namespace {
void rebuild_vsites(System& sys) {
  for (const anton::VirtualSite& v : sys.top.virtual_sites) {
    const Vec3d o = sys.positions[v.o];
    const Vec3d d1 = sys.box.min_image(sys.positions[v.h1], o);
    const Vec3d d2 = sys.box.min_image(sys.positions[v.h2], o);
    sys.positions[v.site] = sys.box.wrap(o + (d1 + d2) * v.a);
    sys.velocities[v.site] = {0, 0, 0};
  }
}

void redistribute_vsite_forces(const Topology& top, std::vector<Vec3d>& f) {
  for (const anton::VirtualSite& v : top.virtual_sites) {
    const Vec3d fm = f[v.site];
    f[v.o] += fm * (1.0 - 2.0 * v.a);
    f[v.h1] += fm * v.a;
    f[v.h2] += fm * v.a;
    f[v.site] = {0, 0, 0};
  }
}
}  // namespace

ReferenceEngine::ReferenceEngine(System sys, const SimParams& p)
    : sys_(std::move(sys)), p_(p), gse_params_(p.resolved_gse()),
      excl_(sys_.top) {
  sys_.top.validate();
  rebuild_vsites(sys_);
  gse_ = std::make_unique<ewald::Gse>(sys_.box, gse_params_);
  if (p_.long_range == LongRangeMethod::kSpme) {
    spme_ = std::make_unique<ewald::Spme>(
        sys_.box,
        ewald::SpmeParams{gse_params_.beta, gse_params_.mesh, p_.spme_order});
  }
  ntypes_ = static_cast<int>(sys_.top.lj_types.size());
  ljA_.resize(static_cast<std::size_t>(ntypes_) * ntypes_);
  ljB_.resize(ljA_.size());
  for (int a = 0; a < ntypes_; ++a) {
    for (int b = 0; b < ntypes_; ++b) {
      const LJType& ta = sys_.top.lj_types[a];
      const LJType& tb = sys_.top.lj_types[b];
      const double sigma = 0.5 * (ta.sigma + tb.sigma);
      const double eps = std::sqrt(ta.epsilon * tb.epsilon);
      ljA_[a * ntypes_ + b] = ewald::lj_A(sigma, eps);
      ljB_[a * ntypes_ + b] = ewald::lj_B(sigma, eps);
    }
  }
  grid_ = std::make_unique<pairlist::CellGrid>(sys_.box, p_.cutoff);
  if (p_.ref_erfc_table) {
    // Cover beta * r for every pair the skin-padded list can hold, with
    // headroom so small post-construction parameter nudges stay in-table.
    erfc_ = ewald::ErfcTable(
        gse_params_.beta * (p_.cutoff + std::max(0.0, p_.ref_skin)) + 1.0);
  }
  f_short_.assign(sys_.top.natoms, {0, 0, 0});
  f_long_.assign(sys_.top.natoms, {0, 0, 0});
  Q_.assign(gse_->mesh_total(), 0.0);
  phi_.assign(gse_->mesh_total(), 0.0);
  compute_short(false);
  compute_long(false);
}

void ReferenceEngine::compute_short(bool with_energy) {
  const Topology& top = sys_.top;
  for (auto& f : f_short_) f = {0, 0, 0};
  double e_lj = 0, e_coul = 0;

  {
    obs::PhaseTimer t(times_, Phase::kRangeLimited, tracer_);
    const double beta = gse_params_.beta;
    const bool have_mol = !top.molecule.empty();
    const bool use_table = !erfc_.empty();
    // Potential-shifted energies: zero at the cutoff, so pairs crossing
    // the cutoff cause no energy discontinuity (forces unchanged).
    const double rc = p_.cutoff;
    const double rc2 = rc * rc;
    const double e_elec_rc = ewald::coul_direct_energy(rc, beta);
    auto pair = [&](std::int32_t i, std::int32_t j, const Vec3d& dr,
                    double r2) {
      if (!have_mol || top.molecule[i] == top.molecule[j]) {
        if (excl_.excluded(i, j)) return;
      }
      const double r = std::sqrt(r2);
      const double A = lj_a(i, j);
      const double B = lj_b(i, j);
      const double qq = top.charge[i] * top.charge[j];
      const double coef =
          (use_table ? qq * ewald::coul_direct_force_erfc(
                                r, beta, erfc_.value(beta * r))
                     : qq * ewald::coul_direct_force(r, beta)) +
          ewald::lj_force(r2, A, B);
      const Vec3d f = dr * coef;
      f_short_[i] += f;
      f_short_[j] -= f;
      if (with_energy) {
        e_lj += ewald::lj_energy(r2, A, B) - ewald::lj_energy(rc2, A, B);
        const double e_elec =
            use_table
                ? ewald::coul_direct_energy_erfc(r, erfc_.value(beta * r))
                : ewald::coul_direct_energy(r, beta);
        e_coul += qq * (e_elec - e_elec_rc);
      }
    };
    if (p_.ref_skin > 0.0) {
      if (!vlist_valid_ ||
          vlist_.needs_rebuild(sys_.box, sys_.positions)) {
        vlist_ = pairlist::VerletList::build(sys_.box, sys_.positions,
                                             p_.cutoff, p_.ref_skin);
        vlist_valid_ = true;
      }
      vlist_.for_each_pair(sys_.box, sys_.positions, pair);
    } else {
      grid_->bin(sys_.positions);
      grid_->for_each_pair(sys_.positions, p_.cutoff, pair);
    }
  }

  double e_bonded;
  {
    obs::PhaseTimer t(times_, Phase::kBonded, tracer_);
    e_bonded = bonded::eval_all_bonded(top, sys_.positions, sys_.box,
                                       f_short_);
  }

  // Scaled 1-4 direct interactions (the stiff part of the correction
  // terms; evaluated every step alongside the bonded forces).
  double e_corr = 0;
  {
    obs::PhaseTimer t(times_, Phase::kCorrection, tracer_);
    for (const ExclusionPair& e : top.exclusions) {
      if (e.lj_scale == 0.0 && e.coul_scale == 0.0) continue;
      const Vec3d dr = sys_.box.min_image(sys_.positions[e.i],
                                          sys_.positions[e.j]);
      const double r2 = dr.norm2();
      const double r = std::sqrt(r2);
      const double A = lj_a(e.i, e.j);
      const double B = lj_b(e.i, e.j);
      const double qq = top.charge[e.i] * top.charge[e.j];
      const double coef = e.lj_scale * ewald::lj_force(r2, A, B) +
                          e.coul_scale * qq * ewald::coul_bare_force(r);
      f_short_[e.i] += dr * coef;
      f_short_[e.j] -= dr * coef;
      if (with_energy) {
        e_corr += e.lj_scale * ewald::lj_energy(r2, A, B) +
                  e.coul_scale * qq * ewald::coul_bare_energy(r);
      }
    }
  }

  redistribute_vsite_forces(top, f_short_);

  if (with_energy) {
    e_lj_ = e_lj;
    e_coul_dir_ = e_coul;
    e_bonded_ = e_bonded;
    e_corr_short_ = e_corr;
  }
}

void ReferenceEngine::compute_long(bool with_energy) {
  const Topology& top = sys_.top;
  for (auto& f : f_long_) f = {0, 0, 0};

  double e_recip;
  if (spme_) {
    // SPME folds assignment, convolution and interpolation into one pass;
    // attribute it to the FFT/mesh phases by its dominant cost.
    obs::PhaseTimer t(times_, Phase::kFft, tracer_);
    e_recip = spme_->compute(sys_.positions, top.charge, f_long_);
  } else {
    {
      obs::PhaseTimer t(times_, Phase::kMeshInterpolation, tracer_);
      std::fill(Q_.begin(), Q_.end(), 0.0);
      gse_->spread(sys_.positions, top.charge, Q_);
    }
    {
      obs::PhaseTimer t(times_, Phase::kFft, tracer_);
      e_recip = gse_->convolve(Q_, phi_);
    }
    {
      obs::PhaseTimer t(times_, Phase::kMeshInterpolation, tracer_);
      gse_->interpolate(sys_.positions, top.charge, phi_, f_long_);
    }
  }

  // Reciprocal-space subtraction for excluded pairs (the correction
  // pipeline's -erf terms).
  double e_corr = 0;
  {
    obs::PhaseTimer t(times_, Phase::kCorrection, tracer_);
    const double beta = gse_params_.beta;
    for (const ExclusionPair& e : top.exclusions) {
      const Vec3d dr = sys_.box.min_image(sys_.positions[e.i],
                                          sys_.positions[e.j]);
      const double r2 = dr.norm2();
      const double r = std::sqrt(r2);
      const double qq = top.charge[e.i] * top.charge[e.j];
      const double coef = -qq * ewald::coul_recip_force(r, beta);
      f_long_[e.i] += dr * coef;
      f_long_[e.j] -= dr * coef;
      if (with_energy) e_corr -= qq * ewald::coul_recip_energy(r, beta);
    }
  }

  redistribute_vsite_forces(top, f_long_);

  if (with_energy) {
    e_recip_ = e_recip;
    e_corr_long_ = e_corr;
    e_self_ = gse_->self_energy(top.charge);
  }
}

void ReferenceEngine::kick(double scale_dt, const std::vector<Vec3d>& f) {
  obs::PhaseTimer t(times_, Phase::kIntegration, tracer_);
  const Topology& top = sys_.top;
  for (std::int32_t i = 0; i < top.natoms; ++i) {
    if (top.mass[i] == 0.0) continue;  // massless virtual site
    const double c = scale_dt * units::kForceToAccel / top.mass[i];
    sys_.velocities[i] += f[i] * c;
  }
}

void ReferenceEngine::drift_and_constrain() {
  obs::PhaseTimer t(times_, Phase::kIntegration, tracer_);
  const Topology& top = sys_.top;
  std::vector<Vec3d> ref = sys_.positions;
  for (std::int32_t i = 0; i < top.natoms; ++i)
    sys_.positions[i] = sys_.box.wrap(sys_.positions[i] +
                                      sys_.velocities[i] * p_.dt);
  if (!top.constraints.empty()) {
    const std::vector<Vec3d> unconstrained = sys_.positions;
    if (constraints::shake(top.constraints, top.mass, ref, sys_.positions,
                           sys_.box) < 0)
      throw std::runtime_error("ReferenceEngine: SHAKE failed to converge");
    // SHAKE's position correction implies the matching velocity change.
    const double inv_dt = 1.0 / p_.dt;
    for (std::int32_t i = 0; i < top.natoms; ++i) {
      if (top.mass[i] == 0.0) continue;
      sys_.velocities[i] +=
          sys_.box.min_image(sys_.positions[i], unconstrained[i]) * inv_dt;
    }
  }
  rebuild_vsites(sys_);
}

void ReferenceEngine::run_cycles(int ncycles) {
  const Topology& top = sys_.top;
  const int k = std::max(1, p_.long_range_every);
  for (int c = 0; c < ncycles; ++c) {
    kick(0.5 * k * p_.dt, f_long_);
    for (int s = 0; s < k; ++s) {
      kick(0.5 * p_.dt, f_short_);
      drift_and_constrain();
      compute_short(false);
      kick(0.5 * p_.dt, f_short_);
      if (!top.constraints.empty()) {
        obs::PhaseTimer t(times_, Phase::kIntegration, tracer_);
        if (constraints::rattle(top.constraints, top.mass, sys_.positions,
                                sys_.velocities, sys_.box) < 0)
          throw std::runtime_error("ReferenceEngine: RATTLE failed");
      }
      ++steps_;
    }
    compute_long(false);
    kick(0.5 * k * p_.dt, f_long_);
    if (!top.constraints.empty()) {
      obs::PhaseTimer t(times_, Phase::kIntegration, tracer_);
      if (constraints::rattle(top.constraints, top.mass, sys_.positions,
                              sys_.velocities, sys_.box) < 0)
        throw std::runtime_error("ReferenceEngine: RATTLE failed");
    }
    if (p_.thermostat) {
      obs::PhaseTimer t(times_, Phase::kIntegration, tracer_);
      const double ke =
          integrate::kinetic_energy(sys_.velocities, top.mass);
      const double T =
          integrate::temperature(ke, top.degrees_of_freedom());
      const double lambda = integrate::berendsen_lambda(
          T, p_.target_temperature, k * p_.dt, p_.berendsen_tau);
      for (auto& v : sys_.velocities) v *= lambda;
    }
  }
}

void ReferenceEngine::set_positions(std::span<const Vec3d> pos) {
  for (std::int32_t i = 0; i < sys_.top.natoms; ++i)
    sys_.positions[i] = sys_.box.wrap(pos[i]);
  rebuild_vsites(sys_);
  // Arbitrary teleports void the skin-displacement bound; force a rebuild.
  vlist_valid_ = false;
}

std::vector<Vec3d> ReferenceEngine::compute_forces_now() {
  compute_short(false);
  compute_long(false);
  std::vector<Vec3d> f(sys_.top.natoms);
  for (std::int32_t i = 0; i < sys_.top.natoms; ++i)
    f[i] = f_short_[i] + f_long_[i];
  return f;
}

PressureReport ReferenceEngine::measure_pressure() {
  const Topology& top = sys_.top;
  PressureReport r;
  r.volume = sys_.box.volume();

  // Pairwise virial: direct nonbonded + scaled 1-4 + (-erf) corrections.
  grid_->bin(sys_.positions);
  const double beta = gse_params_.beta;
  const bool have_mol = !top.molecule.empty();
  double w_pair = 0.0;
  grid_->for_each_pair(
      sys_.positions, p_.cutoff,
      [&](std::int32_t i, std::int32_t j, const Vec3d&, double r2) {
        if (!have_mol || top.molecule[i] == top.molecule[j]) {
          if (excl_.excluded(i, j)) return;
        }
        const double rr = std::sqrt(r2);
        const double coef =
            top.charge[i] * top.charge[j] * ewald::coul_direct_force(rr, beta) +
            ewald::lj_force(r2, lj_a(i, j), lj_b(i, j));
        w_pair += coef * r2;
      });
  for (const ExclusionPair& e : top.exclusions) {
    const Vec3d dr =
        sys_.box.min_image(sys_.positions[e.i], sys_.positions[e.j]);
    const double r2 = dr.norm2();
    const double rr = std::sqrt(r2);
    const double qq = top.charge[e.i] * top.charge[e.j];
    double coef = -qq * ewald::coul_recip_force(rr, beta);
    if (e.lj_scale != 0.0 || e.coul_scale != 0.0) {
      coef += e.lj_scale * ewald::lj_force(r2, lj_a(e.i, e.j), lj_b(e.i, e.j)) +
              e.coul_scale * qq * ewald::coul_bare_force(rr);
    }
    w_pair += coef * r2;
  }
  r.virial_pair = w_pair;

  // Bonded-term virial.
  double w_bonded = 0.0;
  auto add_term = [&](const bonded::TermForces& t) {
    if (t.n == 0) return;
    const Vec3d ref = sys_.positions[t.atom[0]];
    for (int i = 0; i < t.n; ++i)
      w_bonded += t.f[i].dot(
          sys_.box.min_image(sys_.positions[t.atom[i]], ref));
  };
  for (const BondTerm& b : top.bonds)
    add_term(bonded::eval_bond(b, sys_.positions, sys_.box));
  for (const AngleTerm& a : top.angles)
    add_term(bonded::eval_angle(a, sys_.positions, sys_.box));
  for (const DihedralTerm& d : top.dihedrals)
    add_term(bonded::eval_dihedral(d, sys_.positions, sys_.box));
  r.virial_bonded = w_bonded;

  // Reciprocal virial by symmetric volume perturbation (fractional
  // coordinates held fixed), minus the -erf pair share already counted.
  const double delta = 1e-4;
  auto recip_energy_at = [&](double lambda) {
    const PeriodicBox scaled_box(sys_.box.side().x * lambda);
    ewald::Gse gse(scaled_box, gse_params_);
    std::vector<Vec3d> scaled(sys_.positions.size());
    for (std::size_t i = 0; i < scaled.size(); ++i)
      scaled[i] = sys_.positions[i] * lambda;
    std::vector<double> Q(gse.mesh_total(), 0.0), phi(gse.mesh_total(), 0.0);
    gse.spread(scaled, top.charge, Q);
    double e = gse.convolve(Q, phi);
    for (const ExclusionPair& ex : top.exclusions) {
      const Vec3d dr = scaled_box.min_image(scaled[ex.i], scaled[ex.j]);
      e -= top.charge[ex.i] * top.charge[ex.j] *
           ewald::coul_recip_energy(dr.norm(), gse_params_.beta);
    }
    return e;
  };
  const double V = r.volume;
  const double dV = V * (std::pow(1.0 + delta, 3) - std::pow(1.0 - delta, 3));
  r.virial_recip =
      -3.0 * V * (recip_energy_at(1.0 + delta) - recip_energy_at(1.0 - delta)) /
      dV;
  double w_corr_pair = 0.0;
  for (const ExclusionPair& ex : top.exclusions) {
    const Vec3d dr =
        sys_.box.min_image(sys_.positions[ex.i], sys_.positions[ex.j]);
    const double rr = dr.norm();
    w_corr_pair += -top.charge[ex.i] * top.charge[ex.j] *
                   ewald::coul_recip_force(rr, beta) * rr * rr;
  }
  r.virial_recip -= w_corr_pair;

  r.kinetic = integrate::kinetic_energy(sys_.velocities, top.mass);
  return r;
}

EnergyReport ReferenceEngine::measure_energy() {
  compute_short(true);
  compute_long(true);
  EnergyReport r;
  r.bonded = e_bonded_;
  r.lj = e_lj_;
  r.coul_direct = e_coul_dir_;
  r.coul_recip = e_recip_;
  r.coul_self = e_self_;
  r.correction = e_corr_short_ + e_corr_long_;
  r.kinetic = integrate::kinetic_energy(sys_.velocities, sys_.top.mass);
  r.temperature =
      integrate::temperature(r.kinetic, sys_.top.degrees_of_freedom());
  return r;
}

}  // namespace anton::core
