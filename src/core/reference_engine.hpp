// The conventional MD engine: double-precision floating point, link-cell
// pair enumeration, GSE mesh electrostatics evaluated in IEEE arithmetic.
//
// This engine plays three roles from the paper:
//  * the "x86 core" profile of Table 2 (its per-phase wall-clock times are
//    what bench_table2 reports for the CPU column);
//  * the Desmond-style double-precision accuracy baseline of Section 5.2
//    (run with conservative parameters it defines the "total force error",
//    with matched parameters the "numerical force error");
//  * the second, independently implemented engine of Figure 6.
#pragma once

#include <memory>
#include <vector>

#include "constraints/shake.hpp"
#include "core/engine_types.hpp"
#include "ewald/erfc_table.hpp"
#include "ewald/gse.hpp"
#include "ewald/spme.hpp"
#include "ff/topology.hpp"
#include "obs/trace.hpp"
#include "pairlist/cell_grid.hpp"
#include "pairlist/exclusion_table.hpp"

namespace anton::core {

class ReferenceEngine {
 public:
  ReferenceEngine(System sys, const SimParams& p);

  const System& system() const { return sys_; }
  const SimParams& params() const { return p_; }

  /// Runs n multiple-time-step cycles (n * long_range_every inner steps).
  void run_cycles(int ncycles);
  std::int64_t steps_done() const { return steps_; }

  /// Full instantaneous forces (short + long at weight 1) at the current
  /// positions; used for force-accuracy comparisons.
  std::vector<Vec3d> compute_forces_now();

  /// Energies at the current state.
  EnergyReport measure_energy();

  /// Instantaneous pressure (double-precision virial; reciprocal part by
  /// numerical volume derivative, matching AntonEngine::measure_pressure).
  PressureReport measure_pressure();

  /// Per-phase accumulated wall-clock seconds (Table 2 x86 column).
  /// Accumulated by the same obs::PhaseTimer that emits tracer spans, so
  /// this table and an attached tracer always agree.
  const PhaseTimes& phase_times() const { return times_; }
  void reset_phase_times() { times_ = PhaseTimes{}; }

  /// Attaches a phase tracer (nullptr detaches); spans mirror the
  /// phase_times() rows plus mts_cycle/step structure.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

  const std::vector<Vec3d>& positions() const { return sys_.positions; }
  const std::vector<Vec3d>& velocities() const { return sys_.velocities; }
  void set_velocities(std::vector<Vec3d> v) { sys_.velocities = std::move(v); }

  /// Replaces positions (wrapped into the box); used by the minimizer.
  void set_positions(std::span<const Vec3d> pos);

 private:
  void compute_short(bool with_energy);
  void compute_long(bool with_energy);
  void kick(double scale_dt, const std::vector<Vec3d>& f);
  void drift_and_constrain();

  double lj_a(std::int32_t i, std::int32_t j) const {
    return ljA_[sys_.top.type[i] * ntypes_ + sys_.top.type[j]];
  }
  double lj_b(std::int32_t i, std::int32_t j) const {
    return ljB_[sys_.top.type[i] * ntypes_ + sys_.top.type[j]];
  }

  int ntypes_ = 0;
  std::vector<double> ljA_, ljB_;  // precombined type-pair LJ coefficients

  System sys_;
  SimParams p_;
  ewald::GseParams gse_params_;
  std::unique_ptr<ewald::Gse> gse_;
  std::unique_ptr<ewald::Spme> spme_;  // used when long_range == kSpme
  pairlist::ExclusionTable excl_;
  std::unique_ptr<pairlist::CellGrid> grid_;

  // Skin-based Verlet list (ref_skin > 0): rebuilt only when an atom has
  // moved more than skin/2 since the list was taken, otherwise reused.
  pairlist::VerletList vlist_;
  bool vlist_valid_ = false;
  ewald::ErfcTable erfc_;  // empty when ref_erfc_table is off

  std::vector<Vec3d> f_short_, f_long_;
  std::vector<double> Q_, phi_;
  std::int64_t steps_ = 0;
  PhaseTimes times_;
  obs::Tracer* tracer_ = nullptr;

  // Energy pieces captured by the last with_energy passes.
  double e_bonded_ = 0, e_lj_ = 0, e_coul_dir_ = 0, e_corr_short_ = 0;
  double e_recip_ = 0, e_corr_long_ = 0, e_self_ = 0;
};

}  // namespace anton::core
