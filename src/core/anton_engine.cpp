#include "core/anton_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bonded/bonded.hpp"
#include "constraints/shake.hpp"
#include "ewald/kernels.hpp"
#include "fixed/fixed.hpp"
#include "htis/match_unit.hpp"
#include "integrate/kinetic.hpp"
#include "util/units.hpp"

namespace anton::core {

using parallel::kMeshChargeScale;
using parallel::kPhiScale;

AntonEngine::AntonEngine(System sys, const AntonConfig& cfg)
    : AntonEngine(std::move(sys), cfg,
                  std::make_unique<util::ThreadPool>(cfg.nthreads), nullptr,
                  0) {}

AntonEngine::AntonEngine(System sys, const AntonConfig& cfg,
                         util::ThreadPool& shared_pool, int budget)
    : AntonEngine(std::move(sys), cfg, nullptr, &shared_pool, budget) {}

AntonEngine::AntonEngine(System sys, const AntonConfig& cfg,
                         std::unique_ptr<util::ThreadPool> owned,
                         util::ThreadPool* shared, int budget)
    : sys_(std::move(sys)), cfg_(cfg),
      gse_params_(cfg.sim.resolved_gse()), lat_(sys_.box),
      excl_(sys_.top), owned_pool_(std::move(owned)),
      lanes_(owned_pool_ ? owned_pool_->group(owned_pool_->lanes())
                         : shared->group(budget)) {
  sys_.top.validate();
  if (!sys_.box.is_cubic())
    throw std::invalid_argument("AntonEngine: requires a cubic box");

  const Topology& top = sys_.top;
  const std::int32_t n = top.natoms;

  // Quantize the initial conditions onto the fixed-point grids.
  pos_.resize(n);
  vel_.resize(n);
  for (std::int32_t i = 0; i < n; ++i) {
    pos_[i] = lat_.to_lattice(sys_.positions[i]);
    vel_[i] = {fixed::quantize(sys_.velocities[i].x, fixed::kVelScale),
               fixed::quantize(sys_.velocities[i].y, fixed::kVelScale),
               fixed::quantize(sys_.velocities[i].z, fixed::kVelScale)};
  }
  f_short_.assign(n, {0, 0, 0});
  f_long_.assign(n, {0, 0, 0});
  pos_phys_.resize(n);

  // Integration coefficients. dv[counts] = F[counts] * kick_coef;
  // dx[counts] = v[counts] * drift_coef.
  coefs_ = parallel::make_integration_coefs(top, cfg_.sim.dt,
                                            cfg_.sim.long_range_every, lat_);
  const Vec3d lsb = lat_.lsb();

  // PPIP tables.
  htis::PairKernelParams tp;
  tp.cutoff = cfg_.sim.cutoff;
  tp.beta = gse_params_.beta;
  tp.sigma_s = gse_params_.sigma_s;
  tp.rs = gse_params_.rs;
  tp.mantissa_bits = cfg_.table_mantissa_bits;
  kernels_ = htis::PairKernels(tp, top.lj_types);

  gse_ = std::make_unique<ewald::Gse>(sys_.box, gse_params_);
  mesh_q_.assign(gse_->mesh_total(), 0);
  mesh_phi_.assign(gse_->mesh_total(), 0);
  scratch_q_.assign(gse_->mesh_total(), 0.0);
  scratch_phi_.assign(gse_->mesh_total(), 0.0);

  // Per-lane accumulator shards (wl_shards_ is sized per node count in
  // build_decomposition below).
  const int lanes = lanes_.lanes();
  f_shards_.assign(lanes, std::vector<Vec3l>(n, Vec3l{0, 0, 0}));
  mesh_shards_.assign(lanes,
                      std::vector<std::int64_t>(gse_->mesh_total(), 0));
  acc_shards_.assign(lanes, LaneAccums{});
  pair_scratch_.resize(lanes);
  mesh_scratch_.resize(lanes);

  // Cutoff thresholds in lattice units (cubic box: lsb identical per axis).
  const double cut_lat = cfg_.sim.cutoff / lsb.x;
  r2_limit_lattice_ = static_cast<std::uint64_t>(cut_lat * cut_lat);
  lat2_to_phys2_ = lsb.x * lsb.x;

  np_.top = &sys_.top;
  np_.box = &sys_.box;
  np_.lat = &lat_;
  np_.kernels = &kernels_;
  np_.excl = &excl_;
  np_.gse = gse_.get();
  np_.gse_params = gse_params_;
  np_.r2_limit_lattice = r2_limit_lattice_;
  np_.lat2_to_phys2 = lat2_to_phys2_;
  np_.have_molecules = !top.molecule.empty();

  build_decomposition();
  refresh_phys_positions();
  rebuild_virtual_sites();
  migrate();
  e_self_ = gse_->self_energy(top.charge);

  compute_short_forces(false);
  compute_long_forces(false);
}

void AntonEngine::build_decomposition() {
  nt::NtConfig nc;
  nc.node_grid = cfg_.node_grid;
  nc.subbox_div = cfg_.subbox_div;
  nc.cutoff = cfg_.sim.cutoff;
  nc.margin = cfg_.import_margin;
  nc.box = sys_.box;
  geom_ = std::make_unique<nt::NtGeometry>(nc);

  const Topology& top = sys_.top;
  bins_.assign(geom_->subbox_count(), {});
  assigned_subbox_.assign(top.natoms, 0);

  // Migration units (shared with the VM): constraint groups move as one;
  // all other atoms are singleton units.
  parallel::MigrationUnits mu = parallel::build_migration_units(top);
  units_ = std::move(mu.atoms);
  group_constraints_ = std::move(mu.constraints);

  // Per-node import subbox lists (tower / plate, home subboxes removed),
  // used for the import-volume counters the machine model consumes.
  const std::int64_t nnodes = std::int64_t{1} * cfg_.node_grid.x *
                              cfg_.node_grid.y * cfg_.node_grid.z;
  node_import_subboxes_.assign(nnodes, {});
  std::vector<std::vector<char>> seen(nnodes);
  for (auto& s : seen) s.assign(geom_->subbox_count(), 0);
  for (std::int32_t sb = 0; sb < geom_->subbox_count(); ++sb) {
    const Vec3i h = geom_->coords_of(sb);
    const std::int32_t node = geom_->node_index_of(h);
    auto add = [&](const Vec3i& c) {
      const std::int32_t idx = geom_->index_of(geom_->wrap_coords(c));
      if (seen[node][idx]) return;
      seen[node][idx] = 1;
      if (geom_->node_index_of(geom_->coords_of(idx)) != node)
        node_import_subboxes_[node].push_back(idx);
    };
    for (std::int32_t dz : geom_->tower_dz()) add({h.x, h.y, h.z + dz});
    for (const Vec3i& p : geom_->plate_half())
      add({h.x + p.x, h.y + p.y, h.z});
  }

  workload_.nodes.assign(nnodes, {});
  workload_.steps_accumulated = 0;
  wl_shards_.assign(lanes_.lanes(),
                    std::vector<NodeCounters>(nnodes, NodeCounters{}));
}

void AntonEngine::zero_force_shards() {
  lanes_.run_lanes([&](int lane) {
    std::fill(f_shards_[lane].begin(), f_shards_[lane].end(),
              Vec3l{0, 0, 0});
    acc_shards_[lane] = LaneAccums{};
  });
}

void AntonEngine::reduce_force_shards(std::vector<Vec3l>& into) {
  // Each destination atom is reduced by exactly one lane; wrapping adds
  // make the sum independent of shard order.
  lanes_.parallel_for(
      static_cast<std::int64_t>(into.size()),
      [&](int, std::int64_t a0, std::int64_t a1) {
        for (std::int64_t i = a0; i < a1; ++i) {
          Vec3l s{0, 0, 0};
          for (const auto& fsh : f_shards_) {
            s.x = fixed::wrap_add(s.x, fsh[i].x);
            s.y = fixed::wrap_add(s.y, fsh[i].y);
            s.z = fixed::wrap_add(s.z, fsh[i].z);
          }
          into[i] = s;
        }
      });
}

void AntonEngine::reduce_energy_shards() {
  for (LaneAccums& a : acc_shards_) {
    e_lj_acc_.add(a.lj.value());
    e_coul_acc_.add(a.coul.value());
    e_bonded_acc_.add(a.bonded.value());
    e_corr_acc_.add(a.corr.value());
    w_pair_acc_.add(a.w_pair.value());
    w_bonded_acc_.add(a.w_bonded.value());
    a = LaneAccums{};
  }
}

void AntonEngine::set_metrics(obs::MetricsRegistry* m) {
  if (m && m->lanes() < lanes_.lanes())
    throw std::invalid_argument(
        "AntonEngine::set_metrics: registry has fewer lanes than the "
        "engine's thread pool");
  metrics_ = m;
  if (!m) return;
  mid_.steps = m->counter("engine.steps");
  mid_.cycles = m->counter("engine.mts_cycles");
  mid_.migrations = m->counter("engine.migrations");
  mid_.lane_chunks = m->counter("engine.lane_chunks");
  mid_.pairs_considered = m->counter("engine.pairs_considered");
  mid_.ppip_queue = m->counter("engine.ppip_queue");
  mid_.interactions = m->counter("engine.interactions");
  mid_.spread_ops = m->counter("engine.spread_ops");
  mid_.interp_ops = m->counter("engine.interp_ops");
  mid_.bond_terms = m->counter("engine.bond_terms");
  mid_.correction_pairs = m->counter("engine.correction_pairs");
}

void AntonEngine::flush_counter_shards() {
  // Single source of truth: the metrics registry's per-phase counters are
  // published from the exact same lane shards the workload profile
  // aggregates, at the same (serial) flush point.
  NodeCounters delta;
  for (auto& lane : wl_shards_) {
    for (std::size_t node = 0; node < lane.size(); ++node) {
      delta += lane[node];
      workload_.nodes[node] += lane[node];
      lane[node] = NodeCounters{};
    }
  }
  if (metrics_) {
    metrics_->count(mid_.pairs_considered, 0, delta.pairs_considered);
    metrics_->count(mid_.ppip_queue, 0, delta.ppip_queue);
    metrics_->count(mid_.interactions, 0, delta.interactions);
    metrics_->count(mid_.spread_ops, 0, delta.spread_ops);
    metrics_->count(mid_.interp_ops, 0, delta.interp_ops);
    metrics_->count(mid_.bond_terms, 0, delta.bond_terms);
    metrics_->count(mid_.correction_pairs, 0, delta.correction_pairs);
  }
}

void AntonEngine::refresh_phys_positions() {
  for (std::size_t i = 0; i < pos_.size(); ++i)
    pos_phys_[i] = lat_.to_phys(pos_[i]);
}

void AntonEngine::rebuild_virtual_sites() {
  // r_site = r_o + a (r_h1 + r_h2 - 2 r_o), assembled from minimum-image
  // displacements so molecules straddling the boundary stay intact. A pure
  // function of the parent lattice positions: bitwise decomposition-
  // independent.
  for (const VirtualSite& v : sys_.top.virtual_sites) {
    pos_[v.site] = parallel::rebuild_virtual_site(
        np_, v, pos_phys_[v.o], pos_phys_[v.h1], pos_phys_[v.h2]);
    pos_phys_[v.site] = lat_.to_phys(pos_[v.site]);
    vel_[v.site] = {0, 0, 0};
  }
}

void AntonEngine::redistribute_virtual_site_forces(std::vector<Vec3l>& f) {
  // F_o += (1-2a) F_m, F_h += a F_m; the oxygen share is computed as the
  // exact remainder so the redistribution conserves the total force
  // bit-for-bit.
  for (const VirtualSite& v : sys_.top.virtual_sites) {
    const parallel::VsiteForceShare s =
        parallel::split_virtual_site_force(v, f[v.site]);
    f[v.h1].x = fixed::wrap_add(f[v.h1].x, s.fh.x);
    f[v.h1].y = fixed::wrap_add(f[v.h1].y, s.fh.y);
    f[v.h1].z = fixed::wrap_add(f[v.h1].z, s.fh.z);
    f[v.h2].x = fixed::wrap_add(f[v.h2].x, s.fh.x);
    f[v.h2].y = fixed::wrap_add(f[v.h2].y, s.fh.y);
    f[v.h2].z = fixed::wrap_add(f[v.h2].z, s.fh.z);
    f[v.o].x = fixed::wrap_add(f[v.o].x, s.fo.x);
    f[v.o].y = fixed::wrap_add(f[v.o].y, s.fo.y);
    f[v.o].z = fixed::wrap_add(f[v.o].z, s.fo.z);
    f[v.site] = {0, 0, 0};
  }
}

void AntonEngine::migrate() {
  for (auto& b : bins_) b.clear();
  for (const auto& unit : units_) {
    const Vec3i sb = geom_->subbox_of(pos_phys_[unit[0]]);
    const std::int32_t idx = geom_->index_of(sb);
    for (std::int32_t a : unit) {
      assigned_subbox_[a] = idx;
      bins_[idx].push_back(a);
    }
  }
  // Keep bin contents sorted by atom index: deterministic and independent
  // of unit enumeration order.
  for (auto& b : bins_) std::sort(b.begin(), b.end());
  pack_bin_soa();
}

void AntonEngine::pack_bin_soa() {
  bin_soa_.resize(bins_.size());
  for (std::size_t sb = 0; sb < bins_.size(); ++sb) {
    parallel::BinSoA& s = bin_soa_[sb];
    s.clear();
    s.reserve(bins_[sb].size());
    for (std::int32_t a : bins_[sb]) s.push_atom(sys_.top, a, pos_[a]);
  }
}

void AntonEngine::refresh_bin_soa_positions() {
  lanes_.parallel_for(
      static_cast<std::int64_t>(bins_.size()),
      [&](int, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t sb = lo; sb < hi; ++sb) {
          parallel::BinSoA& s = bin_soa_[sb];
          const auto& ids = bins_[sb];
          for (std::size_t k = 0; k < ids.size(); ++k)
            s.set_pos(k, pos_[ids[k]]);
        }
      });
}

void AntonEngine::range_limited_pass(bool with_energy) {
  // Parallel over home subboxes. Each lane owns a force shard, a counter
  // shard and an energy shard; a pair's quantized force is a pure function
  // of the two lattice positions, so which lane computes it cannot change
  // the value, and the wrapping shard reduction cannot change the sum.
  //
  // The stepping path (with_energy == false, gated by the golden
  // fixtures) runs the SoA block datapath: positions refreshed into the
  // bin lanes, then eval_pair_block per (tower, plate) bin pair -- bitwise
  // identical to the scalar loop. The energy path (measure_energy only)
  // keeps the scalar per-pair loop, which also evaluates energy tables.
  if (!with_energy) refresh_bin_soa_positions();
  const std::int64_t nsub = geom_->subbox_count();
  lanes_.parallel_for(nsub, [&](int lane, std::int64_t h0, std::int64_t h1) {
    // Lane-tagged, lock-free: each lane writes only its own registry
    // shard, reduced at the next flush (never on the hot pair path).
    if (metrics_) metrics_->count(mid_.lane_chunks, lane, 1);
    std::vector<Vec3l>& fsh = f_shards_[lane];
    LaneAccums& acc = acc_shards_[lane];
    for (std::int64_t hidx = h0; hidx < h1; ++hidx) {
      const Vec3i h = geom_->coords_of(static_cast<std::int32_t>(hidx));
      NodeCounters& nc = wl_shards_[lane][geom_->node_index_of(h)];
      for (std::int32_t dz : geom_->tower_dz()) {
        const std::int32_t tidx =
            geom_->index_of(geom_->wrap_coords({h.x, h.y, h.z + dz}));
        const auto& tower = bins_[tidx];
        if (tower.empty()) continue;
        for (const Vec3i& poff : geom_->plate_half()) {
          if (!geom_->owns_pair(h, dz, poff)) continue;
          const std::int32_t pidx = geom_->index_of(
              geom_->wrap_coords({h.x + poff.x, h.y + poff.y, h.z}));
          const auto& plate = bins_[pidx];
          if (plate.empty()) continue;
          const bool same = tidx == pidx;
          if (!with_energy) {
            parallel::PairBlockCounters pc;
            parallel::eval_pair_block(np_, bin_soa_[tidx], bin_soa_[pidx],
                                      same, pair_scratch_[lane], pc);
            nc.pairs_considered += pc.considered;
            nc.ppip_queue += pc.queued;
            nc.interactions += pc.computed;
            for (const parallel::PairHit& ph : pair_scratch_[lane].hits) {
              fsh[ph.lo].x = fixed::wrap_add(fsh[ph.lo].x, ph.f.x);
              fsh[ph.lo].y = fixed::wrap_add(fsh[ph.lo].y, ph.f.y);
              fsh[ph.lo].z = fixed::wrap_add(fsh[ph.lo].z, ph.f.z);
              fsh[ph.hi].x = fixed::wrap_sub(fsh[ph.hi].x, ph.f.x);
              fsh[ph.hi].y = fixed::wrap_sub(fsh[ph.hi].y, ph.f.y);
              fsh[ph.hi].z = fixed::wrap_sub(fsh[ph.hi].z, ph.f.z);
            }
            continue;
          }
          for (std::size_t a = 0; a < tower.size(); ++a) {
            const std::int32_t i0 = tower[a];
            const Vec3i pi = pos_[i0];
            const std::size_t b0 = same ? a + 1 : 0;
            for (std::size_t b = b0; b < plate.size(); ++b) {
              const std::int32_t j0 = plate[b];
              ++nc.pairs_considered;
              const parallel::PairResult pr = parallel::eval_pair(
                  np_, i0, j0, pi, pos_[j0], with_energy);
              if (pr.status == parallel::PairStatus::kFailedMatch) continue;
              ++nc.ppip_queue;
              if (pr.status != parallel::PairStatus::kComputed) continue;
              ++nc.interactions;
              fsh[pr.lo].x = fixed::wrap_add(fsh[pr.lo].x, pr.f.x);
              fsh[pr.lo].y = fixed::wrap_add(fsh[pr.lo].y, pr.f.y);
              fsh[pr.lo].z = fixed::wrap_add(fsh[pr.lo].z, pr.f.z);
              fsh[pr.hi].x = fixed::wrap_sub(fsh[pr.hi].x, pr.f.x);
              fsh[pr.hi].y = fixed::wrap_sub(fsh[pr.hi].y, pr.f.y);
              fsh[pr.hi].z = fixed::wrap_sub(fsh[pr.hi].z, pr.f.z);
              if (with_energy) {
                acc.coul.add(pr.e_coul_q);
                acc.lj.add(pr.e_lj_q);
                acc.w_pair.add(pr.virial_q);
              }
            }
          }
        }
      }
    }
  });
}

void AntonEngine::bonded_pass(bool with_energy) {
  const Topology& top = sys_.top;
  // Parallel over bond destinations: each term's quantized forces are a
  // pure function of its atoms' positions and land in the evaluating
  // lane's shard, so the totals are lane-count invariant.
  auto apply = [&](const bonded::TermForces& t, int lane,
                   std::int32_t dest_atom) {
    NodeCounters& nc = wl_shards_[lane][geom_->node_index_of(
        geom_->coords_of(assigned_subbox_[dest_atom]))];
    ++nc.bond_terms;
    LaneAccums& acc = acc_shards_[lane];
    Vec3d tp[4];
    for (int i = 0; i < t.n; ++i) tp[i] = pos_phys_[t.atom[i]];
    const parallel::QuantizedTerm qt =
        parallel::quantize_term(np_, t, tp, with_energy);
    if (with_energy) acc.w_bonded.add(qt.virial_q);
    std::vector<Vec3l>& fsh = f_shards_[lane];
    for (int i = 0; i < qt.n; ++i) {
      Vec3l& f = fsh[qt.atom[i]];
      f.x = fixed::wrap_add(f.x, qt.f[i].x);
      f.y = fixed::wrap_add(f.y, qt.f[i].y);
      f.z = fixed::wrap_add(f.z, qt.f[i].z);
    }
    if (with_energy) acc.bonded.add(qt.energy_q);
  };
  lanes_.parallel_for(
      static_cast<std::int64_t>(top.bonds.size()),
      [&](int lane, std::int64_t k0, std::int64_t k1) {
        for (std::int64_t k = k0; k < k1; ++k) {
          const BondTerm& b = top.bonds[k];
          apply(bonded::eval_bond(b, pos_phys_, sys_.box), lane, b.i);
        }
      });
  lanes_.parallel_for(
      static_cast<std::int64_t>(top.angles.size()),
      [&](int lane, std::int64_t k0, std::int64_t k1) {
        for (std::int64_t k = k0; k < k1; ++k) {
          const AngleTerm& a = top.angles[k];
          apply(bonded::eval_angle(a, pos_phys_, sys_.box), lane, a.i);
        }
      });
  lanes_.parallel_for(
      static_cast<std::int64_t>(top.dihedrals.size()),
      [&](int lane, std::int64_t k0, std::int64_t k1) {
        for (std::int64_t k = k0; k < k1; ++k) {
          const DihedralTerm& d = top.dihedrals[k];
          apply(bonded::eval_dihedral(d, pos_phys_, sys_.box), lane, d.i);
        }
      });
}

void AntonEngine::correction_short_pass(bool with_energy) {
  // Scaled 1-4 interactions: the stiff, every-step half of the correction
  // pipeline's work. Parallel over exclusion pairs, sharded like the
  // range-limited pass.
  const Topology& top = sys_.top;
  lanes_.parallel_for(
      static_cast<std::int64_t>(top.exclusions.size()),
      [&](int lane, std::int64_t k0, std::int64_t k1) {
        std::vector<Vec3l>& fsh = f_shards_[lane];
        LaneAccums& acc = acc_shards_[lane];
        for (std::int64_t k = k0; k < k1; ++k) {
          const ExclusionPair& e = top.exclusions[k];
          const parallel::CorrectionResult cr = parallel::eval_correction_short(
              np_, e, pos_[e.i], pos_[e.j], with_energy);
          if (!cr.computed) continue;
          fsh[e.i].x = fixed::wrap_add(fsh[e.i].x, cr.f.x);
          fsh[e.i].y = fixed::wrap_add(fsh[e.i].y, cr.f.y);
          fsh[e.i].z = fixed::wrap_add(fsh[e.i].z, cr.f.z);
          fsh[e.j].x = fixed::wrap_sub(fsh[e.j].x, cr.f.x);
          fsh[e.j].y = fixed::wrap_sub(fsh[e.j].y, cr.f.y);
          fsh[e.j].z = fixed::wrap_sub(fsh[e.j].z, cr.f.z);
          if (with_energy) {
            acc.corr.add(cr.energy_q);
            acc.w_pair.add(cr.virial_q);
          }
        }
      });
}

void AntonEngine::correction_long_pass(bool with_energy) {
  // Reciprocal-space subtraction (-erf terms) for every excluded pair;
  // parallel over exclusion pairs.
  const Topology& top = sys_.top;
  lanes_.parallel_for(
      static_cast<std::int64_t>(top.exclusions.size()),
      [&](int lane, std::int64_t k0, std::int64_t k1) {
        std::vector<Vec3l>& fsh = f_shards_[lane];
        LaneAccums& acc = acc_shards_[lane];
        for (std::int64_t k = k0; k < k1; ++k) {
          const ExclusionPair& e = top.exclusions[k];
          NodeCounters& nc = wl_shards_[lane][geom_->node_index_of(
              geom_->coords_of(assigned_subbox_[e.i]))];
          ++nc.correction_pairs;
          const parallel::CorrectionResult cr = parallel::eval_correction_long(
              np_, e, pos_[e.i], pos_[e.j], with_energy);
          fsh[e.i].x = fixed::wrap_add(fsh[e.i].x, cr.f.x);
          fsh[e.i].y = fixed::wrap_add(fsh[e.i].y, cr.f.y);
          fsh[e.i].z = fixed::wrap_add(fsh[e.i].z, cr.f.z);
          fsh[e.j].x = fixed::wrap_sub(fsh[e.j].x, cr.f.x);
          fsh[e.j].y = fixed::wrap_sub(fsh[e.j].y, cr.f.y);
          fsh[e.j].z = fixed::wrap_sub(fsh[e.j].z, cr.f.z);
          if (with_energy) {
            acc.corr.add(cr.energy_q);
            acc.w_pair.add(cr.virial_q);
          }
        }
      });
}

void AntonEngine::mesh_pass(bool with_energy) {
  (void)with_energy;  // reciprocal energy is a by-product of the convolve
  const Topology& top = sys_.top;
  const std::int64_t mesh_total =
      static_cast<std::int64_t>(mesh_q_.size());

  // Charge spreading: HTIS atom-mesh interactions through the Gaussian
  // table; each contribution quantized, accumulated with wrapping adds
  // into per-lane mesh shards so the mesh is bitwise independent of
  // traversal order AND of which lane spread which atom.
  if (tracer_) tracer_->begin("gse.spread");
  lanes_.run_lanes([&](int lane) {
    std::fill(mesh_shards_[lane].begin(), mesh_shards_[lane].end(), 0);
  });
  lanes_.parallel_for(
      top.natoms, [&](int lane, std::int64_t i0, std::int64_t i1) {
        std::vector<std::int64_t>& msh = mesh_shards_[lane];
        for (std::int64_t i = i0; i < i1; ++i) {
          const double qi = top.charge[i];
          if (qi == 0.0) continue;
          NodeCounters& nc = wl_shards_[lane][geom_->node_index_of(
              geom_->coords_of(assigned_subbox_[i]))];
          parallel::spread_atom(np_, qi, pos_phys_[i], mesh_scratch_[lane],
                                [&](std::size_t idx, std::int64_t dq) {
                                  ++nc.spread_ops;
                                  msh[idx] = fixed::wrap_add(msh[idx], dq);
                                });
        }
      });
  // Mesh-slab reduction: each lane reduces a disjoint slab of mesh points
  // across all shards (wrap adds: shard order is irrelevant).
  lanes_.parallel_for(mesh_total,
                     [&](int, std::int64_t m0, std::int64_t m1) {
                       for (std::int64_t m = m0; m < m1; ++m) {
                         std::int64_t s = 0;
                         for (const auto& msh : mesh_shards_)
                           s = fixed::wrap_add(s, msh[m]);
                         mesh_q_[m] = s;
                         scratch_q_[m] =
                             static_cast<double>(s) / kMeshChargeScale;
                       }
                     });
  if (tracer_) tracer_->end();  // gse.spread

  // FFT + k-space convolution (geometry cores / flexible subsystem): the
  // canonical line-ordered transform, bitwise identical on any node
  // decomposition; result quantized back onto the fixed phi grid. Kept
  // serial: the transform's value is already decomposition-invariant.
  if (tracer_) tracer_->begin("gse.fft");
  e_recip_ = gse_->convolve(scratch_q_, scratch_phi_);
  lanes_.parallel_for(mesh_total,
                     [&](int, std::int64_t m0, std::int64_t m1) {
                       for (std::int64_t m = m0; m < m1; ++m)
                         mesh_phi_[m] =
                             fixed::quantize(scratch_phi_[m], kPhiScale);
                     });
  if (tracer_) tracer_->end();  // gse.fft

  // Force interpolation: the mirrored atom-mesh interaction. Atoms are
  // partitioned disjointly, and each atom's whole contribution is
  // accumulated locally, so lanes write disjoint shard entries.
  obs::Tracer::Span interp_span(tracer_, "gse.interpolate");
  lanes_.parallel_for(
      top.natoms, [&](int lane, std::int64_t i0, std::int64_t i1) {
        std::vector<Vec3l>& fsh = f_shards_[lane];
        for (std::int64_t i = i0; i < i1; ++i) {
          const double qi = top.charge[i];
          if (qi == 0.0) continue;
          NodeCounters& nc = wl_shards_[lane][geom_->node_index_of(
              geom_->coords_of(assigned_subbox_[i]))];
          const Vec3l acc = parallel::interpolate_atom(
              np_, qi, pos_phys_[i], mesh_scratch_[lane],
              [&](std::size_t idx) { return mesh_phi_[idx]; },
              &nc.interp_ops);
          fsh[i].x = fixed::wrap_add(fsh[i].x, acc.x);
          fsh[i].y = fixed::wrap_add(fsh[i].y, acc.y);
          fsh[i].z = fixed::wrap_add(fsh[i].z, acc.z);
        }
      });
}

void AntonEngine::compute_short_forces(bool with_energy) {
  if (with_energy) {
    e_lj_acc_.reset();
    e_coul_acc_.reset();
    e_bonded_acc_.reset();
    e_corr_acc_.reset();
    w_pair_acc_ = fixed::Accum128{};
    w_bonded_acc_ = fixed::Accum128{};
  }
  zero_force_shards();
  {
    obs::Tracer::Span sp(tracer_, "range_limited");
    range_limited_pass(with_energy);
  }
  {
    obs::Tracer::Span sp(tracer_, "bonded");
    bonded_pass(with_energy);
  }
  {
    obs::Tracer::Span sp(tracer_, "correction");
    correction_short_pass(with_energy);
  }
  obs::Tracer::Span sp(tracer_, "force_reduce");
  reduce_force_shards(f_short_);
  if (with_energy) reduce_energy_shards();
  flush_counter_shards();
  redistribute_virtual_site_forces(f_short_);
}

void AntonEngine::compute_long_forces(bool with_energy) {
  zero_force_shards();
  mesh_pass(with_energy);
  {
    obs::Tracer::Span sp(tracer_, "correction");
    correction_long_pass(with_energy);
  }
  obs::Tracer::Span sp(tracer_, "force_reduce");
  reduce_force_shards(f_long_);
  if (with_energy) reduce_energy_shards();
  flush_counter_shards();
  redistribute_virtual_site_forces(f_long_);
}

void AntonEngine::kick(const std::vector<Vec3l>& f, bool long_kick) {
  const auto& coef = long_kick ? coefs_.kick_long : coefs_.kick_short;
  for (std::size_t i = 0; i < vel_.size(); ++i)
    parallel::kick_atom(vel_[i], f[i], coef[i]);
}

void AntonEngine::drift_and_constrain() {
  const Topology& top = sys_.top;
  const bool constrained = !top.constraints.empty();
  std::vector<Vec3d> ref;
  if (constrained) ref = pos_phys_;

  for (std::size_t i = 0; i < pos_.size(); ++i)
    pos_[i] = parallel::drift_atom(pos_[i], vel_[i], coefs_.drift);
  refresh_phys_positions();

  if (constrained) {
    // Unit-local gather/scatter around shake_unit. Constraint groups are
    // disjoint, so the unit-local views read exactly the doubles a global
    // solve would read: bitwise-neutral, and identical to what a VM node
    // computes for a co-resident unit it hosts.
    std::vector<Vec3d> uref, upos;
    std::vector<Vec3i> ulat;
    std::vector<Vec3l> uvel;
    for (std::size_t g = 0; g < units_.size(); ++g) {
      if (group_constraints_[g].empty()) continue;
      const auto& unit = units_[g];
      const std::size_t n = unit.size();
      uref.resize(n);
      upos.resize(n);
      ulat.resize(n);
      uvel.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        uref[k] = ref[unit[k]];
        upos[k] = pos_phys_[unit[k]];
        ulat[k] = pos_[unit[k]];
        uvel[k] = vel_[unit[k]];
      }
      if (!parallel::shake_unit(np_, unit, group_constraints_[g], cfg_.sim.dt,
                                uref, upos, ulat, uvel))
        throw std::runtime_error("AntonEngine: SHAKE failed to converge");
      for (std::size_t k = 0; k < n; ++k) {
        pos_phys_[unit[k]] = upos[k];
        pos_[unit[k]] = ulat[k];
        vel_[unit[k]] = uvel[k];
      }
    }
  }
}

void AntonEngine::finish_drift() { rebuild_virtual_sites(); }

void AntonEngine::rattle_groups() {
  if (sys_.top.constraints.empty()) return;
  std::vector<Vec3d> upos;
  std::vector<Vec3l> uvel;
  for (std::size_t g = 0; g < units_.size(); ++g) {
    if (group_constraints_[g].empty()) continue;
    const auto& unit = units_[g];
    const std::size_t n = unit.size();
    upos.resize(n);
    uvel.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      upos[k] = pos_phys_[unit[k]];
      uvel[k] = vel_[unit[k]];
    }
    if (!parallel::rattle_unit(np_, unit, group_constraints_[g], upos, uvel))
      throw std::runtime_error("AntonEngine: RATTLE failed to converge");
    for (std::size_t k = 0; k < n; ++k) vel_[unit[k]] = uvel[k];
  }
}

void AntonEngine::apply_thermostat() {
  const Topology& top = sys_.top;
  // Kinetic energy in a canonical (atom-index) order: deterministic and
  // decomposition-independent.
  double mv2 = 0.0;
  for (std::size_t i = 0; i < vel_.size(); ++i)
    mv2 += parallel::kinetic_term(top.mass[i], vel_[i]);
  const int k = std::max(1, cfg_.sim.long_range_every);
  const double lambda =
      parallel::thermostat_lambda(top, mv2, k * cfg_.sim.dt,
                                  cfg_.sim.target_temperature,
                                  cfg_.sim.berendsen_tau);
  for (auto& v : vel_) parallel::scale_velocity(v, lambda);
}

void AntonEngine::run_cycles(int ncycles) {
  const int k = std::max(1, cfg_.sim.long_range_every);
  for (int c = 0; c < ncycles; ++c) {
    // All spans begin/end on this thread in program order: the span
    // sequence is deterministic and independent of nthreads.
    obs::Tracer::Span cycle_span(tracer_, "mts_cycle");
    if (cfg_.migration_interval > 0 &&
        steps_ % cfg_.migration_interval == 0) {
      obs::Tracer::Span sp(tracer_, "migrate");
      migrate();
      if (metrics_) metrics_->count(mid_.migrations, 0, 1);
    }
    {
      obs::Tracer::Span sp(tracer_, "integrate");
      kick(f_long_, true);
    }
    for (int s = 0; s < k; ++s) {
      obs::Tracer::Span step_span(tracer_, "step");
      {
        obs::Tracer::Span sp(tracer_, "integrate");
        kick(f_short_, false);
        drift_and_constrain();
        finish_drift();
      }
      compute_short_forces(false);
      {
        obs::Tracer::Span sp(tracer_, "integrate");
        kick(f_short_, false);
        rattle_groups();
      }
      ++steps_;
      ++workload_.steps_accumulated;
      if (metrics_) metrics_->count(mid_.steps, 0, 1);
    }
    compute_long_forces(false);
    {
      obs::Tracer::Span sp(tracer_, "integrate");
      kick(f_long_, true);
      rattle_groups();
      if (cfg_.sim.thermostat) apply_thermostat();
    }
    if (metrics_) {
      metrics_->count(mid_.cycles, 0, 1);
      metrics_->flush();  // step-boundary shard reduction
    }
  }
  // The tracer carries the measured counters to the perf model
  // (obs::cross_validate); snapshot them exactly as workload() reports.
  if (tracer_ && ncycles > 0) tracer_->capture_workload(workload());
}

std::vector<Vec3d> AntonEngine::positions() const {
  std::vector<Vec3d> out(pos_.size());
  for (std::size_t i = 0; i < pos_.size(); ++i) out[i] = lat_.to_phys(pos_[i]);
  return out;
}

std::vector<Vec3d> AntonEngine::velocities() const {
  std::vector<Vec3d> out(vel_.size());
  for (std::size_t i = 0; i < vel_.size(); ++i)
    out[i] = {fixed::vel_to_phys(vel_[i].x), fixed::vel_to_phys(vel_[i].y),
              fixed::vel_to_phys(vel_[i].z)};
  return out;
}

std::uint64_t AntonEngine::state_hash() const {
  return parallel::state_hash(pos_, vel_);
}

void AntonEngine::negate_velocities() {
  for (auto& v : vel_) {
    v.x = fixed::wrap_sub(0, v.x);
    v.y = fixed::wrap_sub(0, v.y);
    v.z = fixed::wrap_sub(0, v.z);
  }
}

std::vector<Vec3d> AntonEngine::compute_forces_now() {
  compute_short_forces(false);
  compute_long_forces(false);
  std::vector<Vec3d> out(pos_.size());
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    out[i] = {
        fixed::force_to_phys(fixed::wrap_add(f_short_[i].x, f_long_[i].x)),
        fixed::force_to_phys(fixed::wrap_add(f_short_[i].y, f_long_[i].y)),
        fixed::force_to_phys(fixed::wrap_add(f_short_[i].z, f_long_[i].z))};
  }
  return out;
}

EnergyReport AntonEngine::measure_energy() {
  compute_short_forces(true);
  compute_long_forces(true);
  EnergyReport r;
  r.bonded = fixed::energy_to_phys(e_bonded_acc_.value());
  r.lj = fixed::energy_to_phys(e_lj_acc_.value());
  r.coul_direct = fixed::energy_to_phys(e_coul_acc_.value());
  r.coul_recip = e_recip_;
  r.coul_self = e_self_;
  r.correction = fixed::energy_to_phys(e_corr_acc_.value());
  const Topology& top = sys_.top;
  double ke = 0.0;
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    const Vec3d v{fixed::vel_to_phys(vel_[i].x), fixed::vel_to_phys(vel_[i].y),
                  fixed::vel_to_phys(vel_[i].z)};
    ke += top.mass[i] * v.norm2();
  }
  r.kinetic = 0.5 * ke / units::kForceToAccel;
  r.temperature =
      integrate::temperature(r.kinetic, top.degrees_of_freedom());
  return r;
}

PressureReport AntonEngine::measure_pressure() {
  compute_short_forces(true);
  compute_long_forces(true);
  PressureReport r;
  r.volume = sys_.box.volume();
  r.virial_pair = w_pair_acc_.to_double() / fixed::kVirialScale;
  r.virial_bonded = w_bonded_acc_.to_double() / fixed::kVirialScale;

  // Reciprocal-space virial: W_rec = -3 V dE_rec/dV, via a symmetric
  // volume perturbation with atoms at fixed fractional coordinates. Pure
  // double-precision function of the state: deterministic.
  const double delta = 1e-4;
  const Topology& top = sys_.top;
  auto recip_energy_at = [&](double lambda) {
    const PeriodicBox scaled_box(sys_.box.side().x * lambda);
    ewald::GseParams gp = gse_params_;
    ewald::Gse gse(scaled_box, gp);
    std::vector<Vec3d> scaled(pos_phys_.size());
    for (std::size_t i = 0; i < scaled.size(); ++i)
      scaled[i] = pos_phys_[i] * lambda;
    std::vector<double> Q(gse.mesh_total(), 0.0), phi(gse.mesh_total(), 0.0);
    gse.spread(scaled, top.charge, Q);
    double e = gse.convolve(Q, phi);
    // Exclusion corrections and self energy also depend on the geometry.
    for (const ExclusionPair& ex : top.exclusions) {
      const Vec3d dr = scaled_box.min_image(scaled[ex.i], scaled[ex.j]);
      e -= top.charge[ex.i] * top.charge[ex.j] *
           ewald::coul_recip_energy(dr.norm(), gp.beta);
    }
    return e;
  };
  const double e_plus = recip_energy_at(1.0 + delta);
  const double e_minus = recip_energy_at(1.0 - delta);
  const double V = r.volume;
  const double dV = V * (std::pow(1.0 + delta, 3) - std::pow(1.0 - delta, 3));
  r.virial_recip = -3.0 * V * (e_plus - e_minus) / dV;
  // The pairwise -erf corrections were already counted in virial_pair;
  // remove their double-counted share from the perturbation estimate.
  // (recip_energy_at included them so the derivative is of the full
  // reciprocal class; subtract the pair part measured exactly above.)
  double w_corr_pair = 0.0;
  for (const ExclusionPair& ex : top.exclusions) {
    const Vec3i d = fixed::PositionLattice::delta(pos_[ex.i], pos_[ex.j]);
    const Vec3d drp = lat_.delta_to_phys(d);
    const double rr = drp.norm();
    w_corr_pair += -top.charge[ex.i] * top.charge[ex.j] *
                   ewald::coul_recip_force(rr, gse_params_.beta) * rr * rr;
  }
  r.virial_recip -= w_corr_pair;

  double ke = 0.0;
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    const Vec3d v{fixed::vel_to_phys(vel_[i].x), fixed::vel_to_phys(vel_[i].y),
                  fixed::vel_to_phys(vel_[i].z)};
    ke += top.mass[i] * v.norm2();
  }
  r.kinetic = 0.5 * ke / units::kForceToAccel;
  return r;
}

const WorkloadProfile& AntonEngine::workload() {
  // Refresh the per-node snapshots (atoms, imports, static term counts are
  // instantaneous; the dynamic counters accumulated over
  // steps_accumulated inner steps).
  for (auto& nc : workload_.nodes) {
    nc.atoms = 0;
    nc.tower_import_atoms = 0;
    nc.plate_import_atoms = 0;
    nc.constraint_bonds = 0;
  }
  for (std::int32_t sb = 0; sb < geom_->subbox_count(); ++sb) {
    const std::int32_t node = geom_->node_index_of(geom_->coords_of(sb));
    workload_.nodes[node].atoms +=
        static_cast<std::int64_t>(bins_[sb].size());
  }
  for (std::size_t node = 0; node < node_import_subboxes_.size(); ++node) {
    for (std::int32_t sb : node_import_subboxes_[node]) {
      workload_.nodes[node].tower_import_atoms +=
          static_cast<std::int64_t>(bins_[sb].size());
    }
  }
  for (std::size_t g = 0; g < units_.size(); ++g) {
    if (group_constraints_[g].empty()) continue;
    const std::int32_t node = geom_->node_index_of(
        geom_->coords_of(assigned_subbox_[units_[g][0]]));
    workload_.nodes[node].constraint_bonds +=
        static_cast<std::int64_t>(group_constraints_[g].size());
  }
  return workload_;
}

void AntonEngine::reset_workload() {
  for (auto& nc : workload_.nodes) nc = NodeCounters{};
  for (auto& lane : wl_shards_)
    for (auto& nc : lane) nc = NodeCounters{};
  workload_.steps_accumulated = 0;
}

double AntonEngine::assignment_slack() const {
  const Vec3d sb = geom_->subbox_size();
  double worst = 0.0;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    const Vec3i c = geom_->coords_of(assigned_subbox_[i]);
    // Subbox bounds in [-L/2, L/2) coordinates.
    const Vec3d s = sys_.box.side();
    const Vec3d lo{-0.5 * s.x + c.x * sb.x, -0.5 * s.y + c.y * sb.y,
                   -0.5 * s.z + c.z * sb.z};
    const Vec3d r = pos_phys_[i];
    double d2 = 0.0;
    for (int a = 0; a < 3; ++a) {
      // Distance outside the subbox along each axis, periodic-aware.
      double x = r[a] - lo[a];
      const double L = s[a];
      x -= L * std::floor(x / L);  // into [0, L)
      double gap = 0.0;
      if (x > sb[a]) gap = std::min(x - sb[a], L - x);
      d2 += gap * gap;
    }
    worst = std::max(worst, std::sqrt(d2));
  }
  return worst;
}

}  // namespace anton::core
