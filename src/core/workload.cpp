#include "core/engine_types.hpp"

namespace anton::core {

NodeCounters WorkloadProfile::max_node() const {
  NodeCounters m;
  auto mx = [](std::int64_t& a, std::int64_t b) {
    if (b > a) a = b;
  };
  for (const NodeCounters& n : nodes) {
    mx(m.atoms, n.atoms);
    mx(m.pairs_considered, n.pairs_considered);
    mx(m.ppip_queue, n.ppip_queue);
    mx(m.interactions, n.interactions);
    mx(m.tower_import_atoms, n.tower_import_atoms);
    mx(m.plate_import_atoms, n.plate_import_atoms);
    mx(m.spread_ops, n.spread_ops);
    mx(m.interp_ops, n.interp_ops);
    mx(m.bond_terms, n.bond_terms);
    mx(m.correction_pairs, n.correction_pairs);
    mx(m.constraint_bonds, n.constraint_bonds);
  }
  return m;
}

NodeCounters WorkloadProfile::mean_node() const {
  NodeCounters m;
  if (nodes.empty()) return m;
  for (const NodeCounters& n : nodes) m += n;
  const auto d = static_cast<std::int64_t>(nodes.size());
  m.atoms /= d;
  m.pairs_considered /= d;
  m.ppip_queue /= d;
  m.interactions /= d;
  m.tower_import_atoms /= d;
  m.plate_import_atoms /= d;
  m.spread_ops /= d;
  m.interp_ops /= d;
  m.bond_terms /= d;
  m.correction_pairs /= d;
  m.constraint_bonds /= d;
  return m;
}

}  // namespace anton::core
