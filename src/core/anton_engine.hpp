// The Anton engine: a functional emulation of how Anton executes MD.
//
// The chemical system is spatially decomposed over a (virtual) torus of
// nodes, each holding a home box divided into subboxes (Section 3.2).
// Per time step the engine performs, exactly as Anton choreographs them:
//
//   * range-limited interactions via the NT method at subbox granularity,
//     through a match-unit (low-precision distance check) -> PPIP
//     (tiered-table piecewise-cubic kernel) datapath, with exclusion tags;
//   * GSE long-range electrostatics: Gaussian charge spreading onto the
//     mesh (HTIS atom-mesh interactions), distributed-order 3D FFT,
//     k-space convolution, inverse FFT, Gaussian force interpolation;
//   * correction forces for excluded/scaled pairs (correction pipeline);
//   * bonded terms computed at static "bond destinations" (geometry
//     cores), each contribution quantized to the fixed-point force grid;
//   * multiple-time-step velocity-Verlet integration in pure fixed point,
//     with SHAKE/RATTLE constraint groups kept co-resident on one node and
//     atom migration performed only every N steps behind an expanded
//     import margin (Section 3.2.4).
//
// Numerics (Section 4): positions are 32-bit lattice coordinates whose
// two's-complement wrap is the periodic boundary; velocities and force
// accumulators are 64-bit fixed point with wrapping (hence associative)
// addition; every force contribution is quantized before accumulation.
// Consequently the engine is deterministic, bitwise invariant to the
// node/subbox decomposition, and -- without constraints or thermostat --
// exactly time reversible. Tests assert all three properties.
//
// Substitution note: geometry-core arithmetic (bonded terms, FFT twiddles,
// k-space multiply, constraint solves) is IEEE double internally, with
// outputs quantized onto the fixed grids. IEEE ops are deterministic pure
// functions, so all three headline properties are preserved; only the
// in-pipeline bit widths differ from the 32-bit GC hardware (DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine_types.hpp"
#include "ewald/gse.hpp"
#include "ff/topology.hpp"
#include "fixed/accum.hpp"
#include "fixed/lattice.hpp"
#include "htis/pair_kernels.hpp"
#include "nt/nt_geometry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pairlist/exclusion_table.hpp"
#include "parallel/node_program.hpp"
#include "util/thread_pool.hpp"

namespace anton::core {

struct AntonConfig {
  SimParams sim;
  Vec3i node_grid{2, 2, 2};
  Vec3i subbox_div{2, 2, 2};
  /// Migration every N inner steps (paper: N typically 4-8).
  int migration_interval = 4;
  /// Import-region expansion covering constraint-group straddle plus
  /// inter-migration drift (Section 3.2.4).
  double import_margin = 3.0;
  /// PPIP table precision.
  int table_mantissa_bits = 22;
  /// Worker threads for the force passes (clamped to >= 1). Because every
  /// contribution is quantized before wrapping (associative) accumulation
  /// into per-thread shards, the trajectory is bitwise identical for any
  /// value -- the same invariance the paper claims across node counts.
  int nthreads = 1;
};

class AntonEngine {
 public:
  /// Standalone engine: owns a private ThreadPool of cfg.nthreads lanes.
  AntonEngine(System sys, const AntonConfig& cfg);

  /// Multi-tenant engine: borrows `budget` lanes from a shared pool (the
  /// job runtime's). The engine sizes every per-lane shard by `budget`,
  /// so its trajectory is bitwise identical to a standalone engine with
  /// nthreads == budget -- and bitwise independent of whatever the other
  /// tenants of `shared_pool` are doing, because all accumulation state
  /// is engine-private. cfg.nthreads is ignored in this mode.
  AntonEngine(System sys, const AntonConfig& cfg,
              util::ThreadPool& shared_pool, int budget);

  const AntonConfig& config() const { return cfg_; }
  const Topology& topology() const { return sys_.top; }
  const PeriodicBox& box() const { return sys_.box; }
  const fixed::PositionLattice& lattice() const { return lat_; }

  /// Runs n MTS cycles (n * long_range_every inner time steps).
  void run_cycles(int ncycles);
  std::int64_t steps_done() const { return steps_; }

  /// Resets the step counter to a checkpointed value (resume path). The
  /// counter gates migration cadence and labels output frames; migration
  /// is bitwise-unobservable, so restoring it does not perturb the
  /// trajectory -- it keeps step numbering continuous across restarts.
  void restore_step_counter(std::int64_t steps) { steps_ = steps; }

  /// Physical-unit views of the current state.
  std::vector<Vec3d> positions() const;
  std::vector<Vec3d> velocities() const;

  /// Raw fixed-point state (bit-exact checkpointing / comparisons).
  const std::vector<Vec3i>& lattice_positions() const { return pos_; }
  const std::vector<Vec3l>& fixed_velocities() const { return vel_; }

  /// FNV-1a hash over the fixed-point state; equal hashes on two runs
  /// mean bitwise-identical trajectories.
  std::uint64_t state_hash() const;

  /// Negates all velocities (exact in fixed point); with constraints and
  /// thermostat off, running forward again retraces the trajectory.
  void negate_velocities();

  /// Full instantaneous forces (short + long), physical units.
  std::vector<Vec3d> compute_forces_now();

  /// Energies at the current state (recomputes both force classes with
  /// energy accumulation on; does not advance time).
  EnergyReport measure_energy();

  /// Instantaneous pressure. Pairwise and bonded virials are summed in
  /// wrapping 128-bit fixed-point accumulators (order-invariant -- the
  /// Figure 4c design); the reciprocal-space virial is a numerical volume
  /// derivative of the mesh energy (deterministic double arithmetic).
  PressureReport measure_pressure();

  /// Workload counters accumulated since the last reset.
  const WorkloadProfile& workload();
  void reset_workload();

  /// Attaches a phase tracer (nullptr detaches). The tracer receives one
  /// nested span per phase per step, plus a workload snapshot at the end
  /// of every run_cycles call. Tracing writes only to tracer-owned
  /// memory, never engine state: the trajectory with a tracer attached is
  /// bitwise identical to without (asserted in test_obs).
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry (nullptr detaches). Per-phase work
  /// counters are published from the same per-lane counter shards the
  /// workload profile aggregates; lane-tagged counts are written
  /// lock-free from worker lanes, reduced at step boundaries. The
  /// registry must have at least as many lanes as the engine's pool.
  void set_metrics(obs::MetricsRegistry* m);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Diagnostics: largest distance between any atom and its assigned
  /// subbox center, minus half the subbox diagonal (how much of the
  /// import margin is consumed). Must stay below import_margin.
  double assignment_slack() const;

  const htis::PairKernels& kernels() const { return kernels_; }

 private:
  AntonEngine(System sys, const AntonConfig& cfg,
              std::unique_ptr<util::ThreadPool> owned,
              util::ThreadPool* shared, int budget);

  /// Per-lane accumulator shards for one parallel pass group. Every lane
  /// writes only its own shard; shards are reduced with wrapping adds,
  /// which are associative and commutative, so the reduced totals are
  /// bitwise independent of the lane count and of which lane computed
  /// which contribution.
  struct LaneAccums {
    fixed::Accum64 lj, coul, bonded, corr;
    fixed::Accum128 w_pair, w_bonded;
  };

  void build_decomposition();
  void migrate();
  void refresh_phys_positions();
  void pack_bin_soa();
  void refresh_bin_soa_positions();
  void zero_force_shards();
  void reduce_force_shards(std::vector<Vec3l>& into);
  void reduce_energy_shards();
  void flush_counter_shards();
  void compute_short_forces(bool with_energy);
  void compute_long_forces(bool with_energy);
  void range_limited_pass(bool with_energy);
  void bonded_pass(bool with_energy);
  void correction_short_pass(bool with_energy);
  void correction_long_pass(bool with_energy);
  void mesh_pass(bool with_energy);
  void kick(const std::vector<Vec3l>& f, bool long_kick);
  void drift_and_constrain();
  void finish_drift();
  void rebuild_virtual_sites();
  void redistribute_virtual_site_forces(std::vector<Vec3l>& f);
  void rattle_groups();
  void apply_thermostat();

  System sys_;
  AntonConfig cfg_;
  ewald::GseParams gse_params_;

  fixed::PositionLattice lat_;
  std::vector<Vec3i> pos_;       // lattice positions
  std::vector<Vec3l> vel_;       // fixed-point velocities
  std::vector<Vec3l> f_short_;   // fixed-point force accumulators
  std::vector<Vec3l> f_long_;
  std::vector<Vec3d> pos_phys_;  // cache of lat_.to_phys(pos_)

  // Integration coefficients (pure per-atom constants; shared with the
  // VM through the node-program layer).
  parallel::IntegrationCoefs coefs_;

  htis::PairKernels kernels_;
  std::unique_ptr<ewald::Gse> gse_;
  pairlist::ExclusionTable excl_;
  std::unique_ptr<nt::NtGeometry> geom_;

  /// The node-program context both runtimes execute phase kernels
  /// against (pointers into the members above).
  parallel::NodeProgram np_;

  // Decomposition state.
  std::vector<std::int32_t> assigned_subbox_;         // per atom
  std::vector<std::vector<std::int32_t>> bins_;       // per subbox
  std::vector<std::vector<std::int32_t>> units_;      // migration units
  std::vector<std::vector<ConstraintBond>> group_constraints_;
  std::vector<std::vector<std::int32_t>> node_import_subboxes_;

  // Fixed-point mesh state.
  std::vector<std::int64_t> mesh_q_;    // quantized charge density
  std::vector<std::int64_t> mesh_phi_;  // quantized potential
  std::vector<double> scratch_q_, scratch_phi_;

  // Cutoff thresholds in lattice units.
  std::uint64_t r2_limit_lattice_ = 0;
  double lat2_to_phys2_ = 0.0;  // lattice r^2 -> A^2

  std::int64_t steps_ = 0;
  WorkloadProfile workload_;

  // Observability (optional, borrowed; see set_tracer/set_metrics).
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct MetricIds {
    int steps = -1, cycles = -1, migrations = -1, lane_chunks = -1;
    int pairs_considered = -1, ppip_queue = -1, interactions = -1;
    int spread_ops = -1, interp_ops = -1, bond_terms = -1;
    int correction_pairs = -1;
  } mid_;

  // Deterministic task parallelism: a budgeted lane group plus the
  // per-lane shards the parallel passes accumulate into (see LaneAccums
  // above). Standalone engines own their pool; engines under the job
  // runtime borrow lanes from a shared pool (owned_pool_ stays null).
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool::TaskGroup lanes_;
  std::vector<std::vector<Vec3l>> f_shards_;            // [lane][atom]
  std::vector<std::vector<std::int64_t>> mesh_shards_;  // [lane][mesh pt]
  std::vector<std::vector<NodeCounters>> wl_shards_;    // [lane][node]
  std::vector<LaneAccums> acc_shards_;                  // [lane]

  // SoA mirrors of bins_ (ids/charges/types packed at migration,
  // positions refreshed per pass) plus per-lane batch scratch for the
  // vectorized pair-block and mesh kernels.
  std::vector<parallel::BinSoA> bin_soa_;               // [subbox]
  std::vector<parallel::PairBlockScratch> pair_scratch_;  // [lane]
  std::vector<parallel::MeshScratch> mesh_scratch_;       // [lane]

  // Energy accumulators (fixed point where summation order matters).
  fixed::Accum64 e_lj_acc_, e_coul_acc_, e_bonded_acc_, e_corr_acc_;
  double e_recip_ = 0.0, e_self_ = 0.0;

  // Virial accumulators (128-bit wrapping; Figure 4c).
  fixed::Accum128 w_pair_acc_, w_bonded_acc_;
};

}  // namespace anton::core
