#include "core/simulation.hpp"

#include <stdexcept>

namespace anton::core {

Simulation::Simulation(System sys, const SimulationConfig& cfg,
                       util::ThreadPool* shared_pool, int thread_budget)
    : Simulation(std::move(sys), cfg, std::nullopt, shared_pool,
                 thread_budget) {}

Simulation Simulation::resume(System sys, const SimulationConfig& cfg,
                              const std::string& checkpoint_path,
                              util::ThreadPool* shared_pool,
                              int thread_budget) {
  return Simulation(std::move(sys), cfg,
                    io::Checkpoint::load(checkpoint_path), shared_pool,
                    thread_budget);
}

Simulation::Simulation(System sys, const SimulationConfig& cfg,
                       const std::optional<io::Checkpoint>& restore,
                       util::ThreadPool* shared_pool, int thread_budget)
    : cfg_(cfg) {
  if (restore) {
    // Seed the engine's fixed-point state bit-exactly: positions and
    // velocities pass through the same quantization they came from.
    if (static_cast<std::int32_t>(restore->positions.size()) !=
        sys.top.natoms)
      throw std::runtime_error("Simulation::resume: atom count mismatch");
    const fixed::PositionLattice lat(sys.box);
    for (std::int32_t i = 0; i < sys.top.natoms; ++i) {
      sys.positions[i] = lat.to_phys(restore->positions[i]);
      sys.velocities[i] = {
          fixed::vel_to_phys(restore->velocities[i].x),
          fixed::vel_to_phys(restore->velocities[i].y),
          fixed::vel_to_phys(restore->velocities[i].z)};
    }
  }
  engine_ = shared_pool
                ? std::make_unique<AntonEngine>(std::move(sys), cfg.engine,
                                                *shared_pool, thread_budget)
                : std::make_unique<AntonEngine>(std::move(sys), cfg.engine);
  if (restore) {
    // Verify the round trip really is bit-exact (to_lattice(to_phys(p))
    // must return p; quantize(vel_to_phys(v)) must return v).
    for (std::size_t i = 0; i < restore->positions.size(); ++i) {
      if (!(engine_->lattice_positions()[i] == restore->positions[i]) ||
          !(engine_->fixed_velocities()[i] == restore->velocities[i]))
        throw std::runtime_error(
            "Simulation::resume: state failed bit-exact restoration");
    }
    // Continue the run's step numbering where the checkpoint left it:
    // the engine counter, frame labels and the output cursors must all
    // pick up at Checkpoint::step, or a resumed run would relabel (and
    // rewrite) frames the original leg already emitted.
    engine_->restore_step_counter(restore->step);
    if (cfg_.trajectory_every > 0)
      last_frame_index_ = restore->step / cfg_.trajectory_every;
    if (cfg_.checkpoint_every > 0)
      last_ckpt_index_ = restore->step / cfg_.checkpoint_every;
  }
  if (cfg_.trajectory_every > 0) {
    traj_ = std::make_unique<io::TrajectoryWriter>(
        cfg_.trajectory_path, engine_->topology().natoms);
  }
}

void Simulation::maybe_output() {
  const std::int64_t step = engine_->steps_done();
  if (traj_ && cfg_.trajectory_every > 0 &&
      step / cfg_.trajectory_every > last_frame_index_) {
    last_frame_index_ = step / cfg_.trajectory_every;
    traj_->append(step, engine_->lattice_positions());
  }
  if (cfg_.checkpoint_every > 0 &&
      step / cfg_.checkpoint_every > last_ckpt_index_) {
    last_ckpt_index_ = step / cfg_.checkpoint_every;
    io::Checkpoint ck;
    ck.step = step;
    ck.positions.assign(engine_->lattice_positions().begin(),
                        engine_->lattice_positions().end());
    ck.velocities.assign(engine_->fixed_velocities().begin(),
                         engine_->fixed_velocities().end());
    ck.save(cfg_.checkpoint_path);
  }
}

void Simulation::run_cycles(int ncycles, const Callback& per_cycle) {
  for (int c = 0; c < ncycles; ++c) {
    engine_->run_cycles(1);
    maybe_output();
    if (per_cycle && !per_cycle(*engine_)) break;
  }
}

}  // namespace anton::core
