// Shared engine vocabulary: configuration, energy reports, per-phase
// timings (Table 2 rows) and workload counters (machine-model inputs).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ewald/gse.hpp"
#include "geom/vec3.hpp"

namespace anton::core {

/// The Table 2 task taxonomy. Anton accelerates the first, third and
/// fourth with special-purpose pipelines; FFT, bonded and integration run
/// on the flexible subsystem.
enum class Phase : int {
  kRangeLimited = 0,
  kFft,
  kMeshInterpolation,  // charge spreading + force interpolation
  kCorrection,
  kBonded,
  kIntegration,
  kCount
};

inline const char* phase_name(Phase p) {
  static const char* names[] = {"Range-limited forces", "FFT & inverse FFT",
                                "Mesh interpolation",   "Correction forces",
                                "Bonded forces",        "Integration"};
  return names[static_cast<int>(p)];
}

struct PhaseTimes {
  std::array<double, static_cast<int>(Phase::kCount)> seconds{};
  double& operator[](Phase p) { return seconds[static_cast<int>(p)]; }
  double operator[](Phase p) const { return seconds[static_cast<int>(p)]; }
  double total() const {
    double s = 0;
    for (double x : seconds) s += x;
    return s;
  }
};

struct EnergyReport {
  double bonded = 0.0;
  double lj = 0.0;
  double coul_direct = 0.0;
  double coul_recip = 0.0;
  double coul_self = 0.0;
  double correction = 0.0;  // scaled 1-4 terms + reciprocal exclusions
  double kinetic = 0.0;
  double potential() const {
    return bonded + lj + coul_direct + coul_recip + coul_self + correction;
  }
  double total() const { return potential() + kinetic; }
  double temperature = 0.0;
};

/// Instantaneous pressure decomposition. The pairwise virial is summed in
/// 128-bit fixed-point accumulators on the Anton engine (the paper's
/// 86-bit multiply/accumulators, Figure 4c, which let Anton guarantee
/// determinism and parallel invariance for pressure-controlled runs);
/// the reciprocal-space contribution comes from a volume derivative of
/// the mesh energy.
struct PressureReport {
  double virial_pair = 0.0;   // sum r_ij . F_ij over pair terms (kcal/mol)
  double virial_bonded = 0.0; // bonded-term virial (kcal/mol)
  double virial_recip = 0.0;  // reciprocal-space virial (kcal/mol)
  double kinetic = 0.0;       // kcal/mol
  double volume = 0.0;        // A^3

  double virial_total() const {
    return virial_pair + virial_bonded + virial_recip;
  }
  /// Pressure in kcal/(mol A^3): P V = (2/3) KE + (1/3) W.
  double pressure() const {
    return volume > 0.0
               ? (2.0 / 3.0 * kinetic + virial_total() / 3.0) / volume
               : 0.0;
  }
  /// Pressure in atmospheres (1 kcal/(mol A^3) = 68568.4 atm).
  double pressure_atm() const { return pressure() * 68568.4; }
};

/// Per-virtual-node workload counters for one time step (or accumulated
/// over several); consumed by the machine performance model.
struct NodeCounters {
  std::int64_t atoms = 0;
  std::int64_t pairs_considered = 0;  // match-unit checks
  std::int64_t ppip_queue = 0;        // passed the low-precision check
  std::int64_t interactions = 0;      // within cutoff, not excluded
  std::int64_t tower_import_atoms = 0;
  std::int64_t plate_import_atoms = 0;
  std::int64_t spread_ops = 0;  // (atom, mesh point) interactions
  std::int64_t interp_ops = 0;
  std::int64_t bond_terms = 0;
  std::int64_t correction_pairs = 0;
  std::int64_t constraint_bonds = 0;

  NodeCounters& operator+=(const NodeCounters& o) {
    atoms += o.atoms;
    pairs_considered += o.pairs_considered;
    ppip_queue += o.ppip_queue;
    interactions += o.interactions;
    tower_import_atoms += o.tower_import_atoms;
    plate_import_atoms += o.plate_import_atoms;
    spread_ops += o.spread_ops;
    interp_ops += o.interp_ops;
    bond_terms += o.bond_terms;
    correction_pairs += o.correction_pairs;
    constraint_bonds += o.constraint_bonds;
    return *this;
  }
};

struct WorkloadProfile {
  std::vector<NodeCounters> nodes;
  /// Steps over which the dynamic counters were accumulated.
  std::int64_t steps_accumulated = 0;

  NodeCounters max_node() const;
  NodeCounters mean_node() const;
};

/// Which mesh-Ewald method evaluates long-range electrostatics.
/// Anton requires GSE (radially symmetric kernels fit the HTIS); the
/// conventional engine defaults to GSE for apples-to-apples numerics but
/// can run SPME, the commodity standard the paper contrasts (Section 3.1).
enum class LongRangeMethod { kGse, kSpme };

/// Simulation parameters common to both engines.
struct SimParams {
  double cutoff = 13.0;  // range-limited cutoff (A)
  ewald::GseParams gse;  // if gse.mesh == 0, derived from the cutoff
  int mesh = 32;         // used when gse is derived
  double dt = 2.5;       // fs
  int long_range_every = 2;
  LongRangeMethod long_range = LongRangeMethod::kGse;
  int spme_order = 6;  // B-spline order when long_range == kSpme

  bool thermostat = false;
  double target_temperature = 300.0;  // K
  double berendsen_tau = 1000.0;      // fs

  // Reference-engine pair-loop options (AntonEngine ignores both; its NT
  // pipeline has no pair list and its erfc lives in the tiered tables).
  // A positive skin enables Verlet-list reuse across steps: the list is
  // rebuilt only when some atom has moved more than skin/2 since build.
  double ref_skin = 1.0;       // A; 0 disables list reuse (rebin per call)
  bool ref_erfc_table = true;  // spline erfc in the direct-space sum

  /// Resolves gse from cutoff/mesh when not explicitly set.
  ewald::GseParams resolved_gse() const {
    if (gse.mesh != 0) return gse;
    return ewald::GseParams::for_cutoff(cutoff, mesh);
  }
};

}  // namespace anton::core
