// The simulation driver: the "host computer" role.
//
// Anton's ASICs talk to an external host "for input, output, and general
// control" (Section 2.2); multi-month runs like the BPTI millisecond
// live and die by periodic checkpoints and streamed trajectory frames.
// This driver wraps an AntonEngine with that operational shell: run in
// blocks, write bit-exact checkpoints on a cadence, stream compressed
// trajectory frames, invoke analysis callbacks, and resume a run from its
// latest checkpoint with a bitwise-identical continuation.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/anton_engine.hpp"
#include "io/io.hpp"
#include "io/trajectory.hpp"
#include "util/thread_pool.hpp"

namespace anton::core {

struct SimulationConfig {
  AntonConfig engine;
  /// Inner steps between trajectory frames (0 disables output).
  int trajectory_every = 0;
  std::string trajectory_path = "trajectory.antj";
  /// Inner steps between checkpoints (0 disables).
  int checkpoint_every = 0;
  std::string checkpoint_path = "simulation.ckpt";
};

class Simulation {
 public:
  /// Starts a fresh simulation from the System's initial conditions.
  /// With a `shared_pool`, the engine borrows `thread_budget` lanes from
  /// it instead of owning threads -- the multi-tenant mode the job
  /// runtime uses to run many Simulations over one pool. The trajectory
  /// is bitwise identical either way (given nthreads == thread_budget).
  Simulation(System sys, const SimulationConfig& cfg,
             util::ThreadPool* shared_pool = nullptr, int thread_budget = 1);

  /// Resumes from a checkpoint written by an identically configured
  /// Simulation over the same System: the continuation is bitwise
  /// identical to the uninterrupted run.
  static Simulation resume(System sys, const SimulationConfig& cfg,
                           const std::string& checkpoint_path,
                           util::ThreadPool* shared_pool = nullptr,
                           int thread_budget = 1);

  AntonEngine& engine() { return *engine_; }
  std::int64_t steps_done() const { return engine_->steps_done(); }

  /// Called after every MTS cycle; return false to stop the run early.
  using Callback = std::function<bool(AntonEngine&)>;

  /// Runs n MTS cycles, honoring the trajectory/checkpoint cadences.
  void run_cycles(int ncycles, const Callback& per_cycle = {});

 private:
  Simulation(System sys, const SimulationConfig& cfg,
             const std::optional<io::Checkpoint>& restore,
             util::ThreadPool* shared_pool, int thread_budget);
  void maybe_output();

  SimulationConfig cfg_;
  std::unique_ptr<AntonEngine> engine_;
  std::unique_ptr<io::TrajectoryWriter> traj_;
  std::int64_t last_frame_index_ = 0;
  std::int64_t last_ckpt_index_ = 0;
};

}  // namespace anton::core
