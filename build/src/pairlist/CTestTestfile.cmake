# CMake generated Testfile for 
# Source directory: /root/repo/src/pairlist
# Build directory: /root/repo/build/src/pairlist
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
