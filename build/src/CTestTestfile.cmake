# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("fixed")
subdirs("tables")
subdirs("fft")
subdirs("ff")
subdirs("bonded")
subdirs("pairlist")
subdirs("ewald")
subdirs("nt")
subdirs("htis")
subdirs("constraints")
subdirs("integrate")
subdirs("sysgen")
subdirs("parallel")
subdirs("core")
subdirs("machine")
subdirs("analysis")
subdirs("io")
