file(REMOVE_RECURSE
  "libanton.a"
)
