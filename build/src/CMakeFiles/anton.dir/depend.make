# Empty dependencies file for anton.
# This may be replaced when dependencies are built.
