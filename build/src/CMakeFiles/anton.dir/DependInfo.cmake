
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analysis.cpp" "src/CMakeFiles/anton.dir/analysis/analysis.cpp.o" "gcc" "src/CMakeFiles/anton.dir/analysis/analysis.cpp.o.d"
  "/root/repo/src/analysis/structure.cpp" "src/CMakeFiles/anton.dir/analysis/structure.cpp.o" "gcc" "src/CMakeFiles/anton.dir/analysis/structure.cpp.o.d"
  "/root/repo/src/bonded/bonded.cpp" "src/CMakeFiles/anton.dir/bonded/bonded.cpp.o" "gcc" "src/CMakeFiles/anton.dir/bonded/bonded.cpp.o.d"
  "/root/repo/src/constraints/shake.cpp" "src/CMakeFiles/anton.dir/constraints/shake.cpp.o" "gcc" "src/CMakeFiles/anton.dir/constraints/shake.cpp.o.d"
  "/root/repo/src/core/anton_engine.cpp" "src/CMakeFiles/anton.dir/core/anton_engine.cpp.o" "gcc" "src/CMakeFiles/anton.dir/core/anton_engine.cpp.o.d"
  "/root/repo/src/core/reference_engine.cpp" "src/CMakeFiles/anton.dir/core/reference_engine.cpp.o" "gcc" "src/CMakeFiles/anton.dir/core/reference_engine.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/CMakeFiles/anton.dir/core/simulation.cpp.o" "gcc" "src/CMakeFiles/anton.dir/core/simulation.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/CMakeFiles/anton.dir/core/workload.cpp.o" "gcc" "src/CMakeFiles/anton.dir/core/workload.cpp.o.d"
  "/root/repo/src/ewald/gse.cpp" "src/CMakeFiles/anton.dir/ewald/gse.cpp.o" "gcc" "src/CMakeFiles/anton.dir/ewald/gse.cpp.o.d"
  "/root/repo/src/ewald/reference_ewald.cpp" "src/CMakeFiles/anton.dir/ewald/reference_ewald.cpp.o" "gcc" "src/CMakeFiles/anton.dir/ewald/reference_ewald.cpp.o.d"
  "/root/repo/src/ewald/spme.cpp" "src/CMakeFiles/anton.dir/ewald/spme.cpp.o" "gcc" "src/CMakeFiles/anton.dir/ewald/spme.cpp.o.d"
  "/root/repo/src/ff/params.cpp" "src/CMakeFiles/anton.dir/ff/params.cpp.o" "gcc" "src/CMakeFiles/anton.dir/ff/params.cpp.o.d"
  "/root/repo/src/ff/topology.cpp" "src/CMakeFiles/anton.dir/ff/topology.cpp.o" "gcc" "src/CMakeFiles/anton.dir/ff/topology.cpp.o.d"
  "/root/repo/src/fft/dist_plan.cpp" "src/CMakeFiles/anton.dir/fft/dist_plan.cpp.o" "gcc" "src/CMakeFiles/anton.dir/fft/dist_plan.cpp.o.d"
  "/root/repo/src/fft/fft1d.cpp" "src/CMakeFiles/anton.dir/fft/fft1d.cpp.o" "gcc" "src/CMakeFiles/anton.dir/fft/fft1d.cpp.o.d"
  "/root/repo/src/fft/fft3d.cpp" "src/CMakeFiles/anton.dir/fft/fft3d.cpp.o" "gcc" "src/CMakeFiles/anton.dir/fft/fft3d.cpp.o.d"
  "/root/repo/src/fixed/lattice.cpp" "src/CMakeFiles/anton.dir/fixed/lattice.cpp.o" "gcc" "src/CMakeFiles/anton.dir/fixed/lattice.cpp.o.d"
  "/root/repo/src/geom/box.cpp" "src/CMakeFiles/anton.dir/geom/box.cpp.o" "gcc" "src/CMakeFiles/anton.dir/geom/box.cpp.o.d"
  "/root/repo/src/htis/pair_kernels.cpp" "src/CMakeFiles/anton.dir/htis/pair_kernels.cpp.o" "gcc" "src/CMakeFiles/anton.dir/htis/pair_kernels.cpp.o.d"
  "/root/repo/src/integrate/kinetic.cpp" "src/CMakeFiles/anton.dir/integrate/kinetic.cpp.o" "gcc" "src/CMakeFiles/anton.dir/integrate/kinetic.cpp.o.d"
  "/root/repo/src/integrate/minimize.cpp" "src/CMakeFiles/anton.dir/integrate/minimize.cpp.o" "gcc" "src/CMakeFiles/anton.dir/integrate/minimize.cpp.o.d"
  "/root/repo/src/io/io.cpp" "src/CMakeFiles/anton.dir/io/io.cpp.o" "gcc" "src/CMakeFiles/anton.dir/io/io.cpp.o.d"
  "/root/repo/src/io/trajectory.cpp" "src/CMakeFiles/anton.dir/io/trajectory.cpp.o" "gcc" "src/CMakeFiles/anton.dir/io/trajectory.cpp.o.d"
  "/root/repo/src/machine/perf_model.cpp" "src/CMakeFiles/anton.dir/machine/perf_model.cpp.o" "gcc" "src/CMakeFiles/anton.dir/machine/perf_model.cpp.o.d"
  "/root/repo/src/machine/timeline.cpp" "src/CMakeFiles/anton.dir/machine/timeline.cpp.o" "gcc" "src/CMakeFiles/anton.dir/machine/timeline.cpp.o.d"
  "/root/repo/src/machine/workload_model.cpp" "src/CMakeFiles/anton.dir/machine/workload_model.cpp.o" "gcc" "src/CMakeFiles/anton.dir/machine/workload_model.cpp.o.d"
  "/root/repo/src/nt/import_region.cpp" "src/CMakeFiles/anton.dir/nt/import_region.cpp.o" "gcc" "src/CMakeFiles/anton.dir/nt/import_region.cpp.o.d"
  "/root/repo/src/nt/match_efficiency.cpp" "src/CMakeFiles/anton.dir/nt/match_efficiency.cpp.o" "gcc" "src/CMakeFiles/anton.dir/nt/match_efficiency.cpp.o.d"
  "/root/repo/src/nt/nt_geometry.cpp" "src/CMakeFiles/anton.dir/nt/nt_geometry.cpp.o" "gcc" "src/CMakeFiles/anton.dir/nt/nt_geometry.cpp.o.d"
  "/root/repo/src/pairlist/cell_grid.cpp" "src/CMakeFiles/anton.dir/pairlist/cell_grid.cpp.o" "gcc" "src/CMakeFiles/anton.dir/pairlist/cell_grid.cpp.o.d"
  "/root/repo/src/pairlist/exclusion_table.cpp" "src/CMakeFiles/anton.dir/pairlist/exclusion_table.cpp.o" "gcc" "src/CMakeFiles/anton.dir/pairlist/exclusion_table.cpp.o.d"
  "/root/repo/src/parallel/comm_stats.cpp" "src/CMakeFiles/anton.dir/parallel/comm_stats.cpp.o" "gcc" "src/CMakeFiles/anton.dir/parallel/comm_stats.cpp.o.d"
  "/root/repo/src/parallel/virtual_machine.cpp" "src/CMakeFiles/anton.dir/parallel/virtual_machine.cpp.o" "gcc" "src/CMakeFiles/anton.dir/parallel/virtual_machine.cpp.o.d"
  "/root/repo/src/sysgen/go_model.cpp" "src/CMakeFiles/anton.dir/sysgen/go_model.cpp.o" "gcc" "src/CMakeFiles/anton.dir/sysgen/go_model.cpp.o.d"
  "/root/repo/src/sysgen/protein.cpp" "src/CMakeFiles/anton.dir/sysgen/protein.cpp.o" "gcc" "src/CMakeFiles/anton.dir/sysgen/protein.cpp.o.d"
  "/root/repo/src/sysgen/systems.cpp" "src/CMakeFiles/anton.dir/sysgen/systems.cpp.o" "gcc" "src/CMakeFiles/anton.dir/sysgen/systems.cpp.o.d"
  "/root/repo/src/sysgen/water.cpp" "src/CMakeFiles/anton.dir/sysgen/water.cpp.o" "gcc" "src/CMakeFiles/anton.dir/sysgen/water.cpp.o.d"
  "/root/repo/src/tables/remez.cpp" "src/CMakeFiles/anton.dir/tables/remez.cpp.o" "gcc" "src/CMakeFiles/anton.dir/tables/remez.cpp.o.d"
  "/root/repo/src/tables/tiered_table.cpp" "src/CMakeFiles/anton.dir/tables/tiered_table.cpp.o" "gcc" "src/CMakeFiles/anton.dir/tables/tiered_table.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/anton.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/anton.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/anton.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/anton.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
