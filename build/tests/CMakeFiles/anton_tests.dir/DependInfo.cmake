
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/anton_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_bonded.cpp" "tests/CMakeFiles/anton_tests.dir/test_bonded.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_bonded.cpp.o.d"
  "/root/repo/tests/test_constraints.cpp" "tests/CMakeFiles/anton_tests.dir/test_constraints.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_constraints.cpp.o.d"
  "/root/repo/tests/test_engines.cpp" "tests/CMakeFiles/anton_tests.dir/test_engines.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_engines.cpp.o.d"
  "/root/repo/tests/test_ewald.cpp" "tests/CMakeFiles/anton_tests.dir/test_ewald.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_ewald.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/anton_tests.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_fixed.cpp" "tests/CMakeFiles/anton_tests.dir/test_fixed.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_fixed.cpp.o.d"
  "/root/repo/tests/test_geom.cpp" "tests/CMakeFiles/anton_tests.dir/test_geom.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_geom.cpp.o.d"
  "/root/repo/tests/test_htis.cpp" "tests/CMakeFiles/anton_tests.dir/test_htis.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_htis.cpp.o.d"
  "/root/repo/tests/test_integrate.cpp" "tests/CMakeFiles/anton_tests.dir/test_integrate.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_integrate.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/anton_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/anton_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_nt.cpp" "tests/CMakeFiles/anton_tests.dir/test_nt.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_nt.cpp.o.d"
  "/root/repo/tests/test_pairlist.cpp" "tests/CMakeFiles/anton_tests.dir/test_pairlist.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_pairlist.cpp.o.d"
  "/root/repo/tests/test_pressure.cpp" "tests/CMakeFiles/anton_tests.dir/test_pressure.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_pressure.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/anton_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_spme.cpp" "tests/CMakeFiles/anton_tests.dir/test_spme.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_spme.cpp.o.d"
  "/root/repo/tests/test_structure.cpp" "tests/CMakeFiles/anton_tests.dir/test_structure.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_structure.cpp.o.d"
  "/root/repo/tests/test_sysgen.cpp" "tests/CMakeFiles/anton_tests.dir/test_sysgen.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_sysgen.cpp.o.d"
  "/root/repo/tests/test_tables.cpp" "tests/CMakeFiles/anton_tests.dir/test_tables.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_tables.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/anton_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/anton_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_virtual_machine.cpp" "tests/CMakeFiles/anton_tests.dir/test_virtual_machine.cpp.o" "gcc" "tests/CMakeFiles/anton_tests.dir/test_virtual_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/anton.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
