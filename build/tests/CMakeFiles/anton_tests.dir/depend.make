# Empty dependencies file for anton_tests.
# This may be replaced when dependencies are built.
