file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gse.dir/bench_ablation_gse.cpp.o"
  "CMakeFiles/bench_ablation_gse.dir/bench_ablation_gse.cpp.o.d"
  "bench_ablation_gse"
  "bench_ablation_gse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
