# Empty compiler generated dependencies file for bench_ablation_gse.
# This may be replaced when dependencies are built.
