# Empty compiler generated dependencies file for bench_invariance.
# This may be replaced when dependencies are built.
