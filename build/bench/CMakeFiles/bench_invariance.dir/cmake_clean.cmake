file(REMOVE_RECURSE
  "CMakeFiles/bench_invariance.dir/bench_invariance.cpp.o"
  "CMakeFiles/bench_invariance.dir/bench_invariance.cpp.o.d"
  "bench_invariance"
  "bench_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
