file(REMOVE_RECURSE
  "CMakeFiles/bpti_millisecond.dir/bpti_millisecond.cpp.o"
  "CMakeFiles/bpti_millisecond.dir/bpti_millisecond.cpp.o.d"
  "bpti_millisecond"
  "bpti_millisecond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpti_millisecond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
