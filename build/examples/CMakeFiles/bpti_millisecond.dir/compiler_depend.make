# Empty compiler generated dependencies file for bpti_millisecond.
# This may be replaced when dependencies are built.
