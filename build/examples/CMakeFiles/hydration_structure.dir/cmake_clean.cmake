file(REMOVE_RECURSE
  "CMakeFiles/hydration_structure.dir/hydration_structure.cpp.o"
  "CMakeFiles/hydration_structure.dir/hydration_structure.cpp.o.d"
  "hydration_structure"
  "hydration_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydration_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
