# Empty dependencies file for hydration_structure.
# This may be replaced when dependencies are built.
