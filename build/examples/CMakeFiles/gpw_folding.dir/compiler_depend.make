# Empty compiler generated dependencies file for gpw_folding.
# This may be replaced when dependencies are built.
