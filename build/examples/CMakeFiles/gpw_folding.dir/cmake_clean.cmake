file(REMOVE_RECURSE
  "CMakeFiles/gpw_folding.dir/gpw_folding.cpp.o"
  "CMakeFiles/gpw_folding.dir/gpw_folding.cpp.o.d"
  "gpw_folding"
  "gpw_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpw_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
