# Empty dependencies file for order_parameters.
# This may be replaced when dependencies are built.
