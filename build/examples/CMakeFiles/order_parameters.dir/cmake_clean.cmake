file(REMOVE_RECURSE
  "CMakeFiles/order_parameters.dir/order_parameters.cpp.o"
  "CMakeFiles/order_parameters.dir/order_parameters.cpp.o.d"
  "order_parameters"
  "order_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
