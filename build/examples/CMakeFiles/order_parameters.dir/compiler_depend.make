# Empty compiler generated dependencies file for order_parameters.
# This may be replaced when dependencies are built.
