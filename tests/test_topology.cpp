// Topology: exclusion generation and constraint groups (Sections 3.1,
// 3.2.4).
#include <gtest/gtest.h>

#include "ff/params.hpp"
#include "ff/topology.hpp"

using anton::ConstraintBond;
using anton::Topology;

namespace {
Topology chain_of(int n) {
  // Linear chain 0-1-2-...-(n-1).
  Topology t;
  t.natoms = n;
  t.mass.assign(n, 12.0);
  t.charge.assign(n, 0.0);
  t.type.assign(n, 0);
  t.lj_types.push_back({3.4, 0.1});
  for (int i = 0; i + 1 < n; ++i)
    t.bonds.push_back({i, i + 1, 300.0, 1.5});
  return t;
}
}  // namespace

TEST(Topology, ExclusionsOnLinearChain) {
  Topology t = chain_of(6);
  t.build_exclusions(0.5, 0.8);
  // Pairs at bond distance 1 and 2 fully excluded; distance 3 scaled.
  auto find = [&](int i, int j) -> const anton::ExclusionPair* {
    for (const auto& e : t.exclusions)
      if (e.i == i && e.j == j) return &e;
    return nullptr;
  };
  ASSERT_NE(find(0, 1), nullptr);
  EXPECT_EQ(find(0, 1)->lj_scale, 0.0);
  ASSERT_NE(find(0, 2), nullptr);
  EXPECT_EQ(find(0, 2)->coul_scale, 0.0);
  ASSERT_NE(find(0, 3), nullptr);
  EXPECT_DOUBLE_EQ(find(0, 3)->lj_scale, 0.5);
  EXPECT_DOUBLE_EQ(find(0, 3)->coul_scale, 0.8);
  EXPECT_EQ(find(0, 4), nullptr);  // beyond 1-4: full interaction
  // Count: distance-1 pairs: 5, distance-2: 4, distance-3: 3.
  EXPECT_EQ(t.exclusions.size(), 12u);
}

TEST(Topology, ConstraintsCountForConnectivity) {
  Topology t = chain_of(3);
  t.bonds.clear();
  t.constraints.push_back({0, 1, 1.0});
  t.constraints.push_back({1, 2, 1.0});
  t.build_exclusions(0.5, 0.8);
  EXPECT_EQ(t.exclusions.size(), 3u);  // (0,1),(1,2) 1-2 and (0,2) 1-3
}

TEST(Topology, RingExclusionsUseShortestPath) {
  // 6-ring: opposite atoms are at distance 3 (scaled 1-4).
  Topology t = chain_of(6);
  t.bonds.push_back({5, 0, 300.0, 1.5});
  t.build_exclusions(0.5, 0.8);
  for (const auto& e : t.exclusions) {
    if (e.i == 0 && e.j == 3) {
      EXPECT_DOUBLE_EQ(e.lj_scale, 0.5);  // distance 3 both ways round
    }
    if (e.i == 0 && e.j == 5) {
      EXPECT_EQ(e.lj_scale, 0.0);  // direct bond via the ring closure
    }
  }
}

TEST(Topology, ConstraintGroupsAreConnectedComponents) {
  Topology t = chain_of(8);
  t.bonds.clear();
  t.constraints.push_back({0, 1, 1.0});
  t.constraints.push_back({1, 2, 1.0});
  t.constraints.push_back({4, 5, 1.0});
  t.build_constraint_groups();
  ASSERT_EQ(t.constraint_groups.size(), 2u);
  EXPECT_EQ(t.constraint_groups[0],
            (std::vector<std::int32_t>{0, 1, 2}));
  EXPECT_EQ(t.constraint_groups[1], (std::vector<std::int32_t>{4, 5}));
}

TEST(Topology, ValidateCatchesBadIndices) {
  Topology t = chain_of(4);
  t.bonds.push_back({2, 9, 300.0, 1.5});
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, ValidateCatchesOverlappingGroups) {
  Topology t = chain_of(4);
  t.constraint_groups = {{0, 1}, {1, 2}};
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, ValidateCatchesUnorderedExclusion) {
  Topology t = chain_of(4);
  t.exclusions.push_back({3, 1, 0.0, 0.0});
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Topology, DegreesOfFreedom) {
  Topology t = chain_of(10);
  t.constraints.push_back({0, 1, 1.0});
  EXPECT_DOUBLE_EQ(t.degrees_of_freedom(), 30.0 - 1.0 - 3.0);
}

TEST(Params, LJTypesArePhysical) {
  for (int c = 0; c < static_cast<int>(anton::ff::AtomClass::kCount); ++c) {
    const auto lj = anton::ff::lj_for(static_cast<anton::ff::AtomClass>(c));
    EXPECT_GT(lj.sigma, 0.5);
    EXPECT_LT(lj.sigma, 6.0);
    EXPECT_GE(lj.epsilon, 0.0);
    EXPECT_LT(lj.epsilon, 1.0);
    EXPECT_GT(anton::ff::mass_for(static_cast<anton::ff::AtomClass>(c)), 0.5);
  }
}

TEST(Params, WaterGeometry) {
  const auto w3 = anton::ff::water3();
  EXPECT_NEAR(w3.q_o + 2 * w3.q_h, 0.0, 1e-12);  // neutral molecule
  const auto w4 = anton::ff::water4();
  EXPECT_NEAR(w4.q_m + 2 * w4.q_h, 0.0, 1e-5);
  EXPECT_GT(w4.r_om, 0.0);
  EXPECT_LT(w4.r_om, w4.r_oh);
}
