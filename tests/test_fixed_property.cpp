// Property tests for the fixed-point substrate: seeded-random streams
// exercise the algebraic claims the engine's determinism rests on.
//
//  * Wrapping 64-bit accumulation is associative and commutative, so any
//    permutation of a contribution stream -- and any partition of it into
//    per-lane shards reduced afterwards -- yields the same bits. This is
//    the exact discipline AntonEngine's force/energy shards rely on.
//  * The 32-bit position lattice wraps exactly at the box boundary: a
//    full box length of accumulated displacement is a no-op, and
//    minimum-image deltas agree across the wrap seam.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "fixed/accum.hpp"
#include "fixed/fixed.hpp"
#include "fixed/lattice.hpp"
#include "geom/box.hpp"
#include "util/rng.hpp"

using anton::PeriodicBox;
using anton::Vec3d;
using anton::Vec3i;
namespace fx = anton::fixed;

namespace {

// A seeded stream of "force-like" contributions: a wide mix of small and
// huge magnitudes, both signs, including values that overflow int64 when
// summed naively.
std::vector<std::int64_t> random_stream(std::uint64_t seed, int n) {
  anton::Xoshiro256 rng(seed);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) {
    const std::uint64_t bits = rng();
    // Shift by a random amount so magnitudes span the full 64-bit range.
    const int shift = static_cast<int>(rng() % 64);
    x = static_cast<std::int64_t>(bits >> shift);
    if (rng() & 1) x = -x;
  }
  return v;
}

std::int64_t wrap_sum(const std::vector<std::int64_t>& v) {
  fx::Accum64 a;
  for (std::int64_t x : v) a.add(x);
  return a.value();
}

TEST(FixedProperty, WrappingSumIsPermutationInvariant) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const auto stream = random_stream(seed, 2000);
    const std::int64_t golden = wrap_sum(stream);

    std::mt19937_64 perm_rng(seed ^ 0x9e3779b97f4a7c15ull);
    auto shuffled = stream;
    for (int trial = 0; trial < 5; ++trial) {
      std::shuffle(shuffled.begin(), shuffled.end(), perm_rng);
      EXPECT_EQ(wrap_sum(shuffled), golden) << "seed " << seed;
    }
    // Reversal, a permutation float sums notoriously fail.
    auto rev = stream;
    std::reverse(rev.begin(), rev.end());
    EXPECT_EQ(wrap_sum(rev), golden);
  }
}

TEST(FixedProperty, ShardPartitionInvariance) {
  // Partition the stream into per-lane shards (any assignment), reduce
  // the shards, and require the same bits as the serial sum -- the
  // AntonEngine flush discipline in miniature.
  const auto stream = random_stream(7, 4096);
  const std::int64_t golden = wrap_sum(stream);

  anton::Xoshiro256 rng(99);
  for (int lanes : {1, 2, 3, 4, 7, 16}) {
    // Round-robin and random assignment both must agree.
    for (int mode = 0; mode < 2; ++mode) {
      std::vector<fx::Accum64> shard(lanes);
      for (std::size_t i = 0; i < stream.size(); ++i) {
        const int lane = mode == 0 ? static_cast<int>(i) % lanes
                                   : static_cast<int>(rng() % lanes);
        shard[lane].add(stream[i]);
      }
      fx::Accum64 total;
      for (const auto& s : shard) total.add(s.value());
      EXPECT_EQ(total.value(), golden)
          << lanes << " lanes, mode " << mode;
    }
  }
}

TEST(FixedProperty, WrapAddSubRoundTrip) {
  const auto a = random_stream(11, 500);
  const auto b = random_stream(12, 500);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(fx::wrap_sub(fx::wrap_add(a[i], b[i]), b[i]), a[i]);
    EXPECT_EQ(fx::wrap_add(fx::wrap_sub(a[i], b[i]), b[i]), a[i]);
  }
}

TEST(FixedProperty, LatticeWrapsExactlyAtBoxBoundary) {
  const PeriodicBox box(14.0);
  const fx::PositionLattice lat(box);

  // Advancing by the box length on any axis is an exact no-op: 2^32
  // lattice steps wrap to zero. Do it in two half-box hops (each half box
  // is exactly 2^31 steps, representable in the displacement quantizer).
  anton::Xoshiro256 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3i p{static_cast<std::int32_t>(rng()),
                  static_cast<std::int32_t>(rng()),
                  static_cast<std::int32_t>(rng())};
    Vec3i q = lat.advance(p, {box.side().x / 2, 0, 0});
    q = lat.advance(q, {box.side().x / 2, 0, 0});
    q = lat.advance(q, {0, -box.side().y / 2, box.side().z / 2});
    q = lat.advance(q, {0, -box.side().y / 2, box.side().z / 2});
    EXPECT_EQ(q, p);
  }

  // Minimum-image delta across the wrap seam: two points straddling the
  // boundary are a few lattice steps apart, not a box apart.
  const Vec3i near_max{INT32_MAX - 2, 0, 0};
  const Vec3i near_min{INT32_MIN + 3, 0, 0};
  const Vec3i d = fx::PositionLattice::delta(near_min, near_max);
  EXPECT_EQ(d.x, 6);  // wraps through the seam
  EXPECT_EQ(d.y, 0);
  EXPECT_EQ(d.z, 0);
  // And the physical distance is a few LSBs, not ~L.
  EXPECT_LT(lat.dist2(near_min, near_max), 1e-10);
}

TEST(FixedProperty, LatticeRoundTripsPhysicalPoints) {
  const PeriodicBox box(14.0);
  const fx::PositionLattice lat(box);
  anton::Xoshiro256 rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    auto unit = [&] {
      return (static_cast<double>(rng() >> 11) / 9007199254740992.0 -
              0.5);
    };
    const Vec3d r{unit() * box.side().x, unit() * box.side().y, unit() * box.side().z};
    const Vec3i p = lat.to_lattice(r);
    const Vec3d back = lat.to_phys(p);
    // to_phys(to_lattice(r)) is within half an LSB on each axis (modulo
    // the box).
    EXPECT_NEAR(back.x, r.x, lat.lsb().x);
    EXPECT_NEAR(back.y, r.y, lat.lsb().y);
    EXPECT_NEAR(back.z, r.z, lat.lsb().z);
    // And quantizing again is idempotent: the lattice point is a fixed
    // point of the round trip.
    EXPECT_EQ(lat.to_lattice(back), p);
  }
}

}  // namespace
