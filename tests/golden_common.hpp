// Shared definitions for the golden-trajectory fixtures: which systems,
// which engine configuration, and which step counts the committed hashes
// in tests/golden/ were generated with. Used by test_golden.cpp (compare)
// and golden_gen.cpp (regenerate via scripts/regen_golden.sh).
//
// The engine is bitwise invariant to thread count and node decomposition,
// so each (system, steps) pair has exactly ONE golden hash; the test runs
// every {threads} x {node grid} combination against the same fixture line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/anton_engine.hpp"
#include "parallel/virtual_machine.hpp"
#include "sysgen/systems.hpp"

namespace anton::golden {

/// Step counts the fixtures record. long_range_every is 1 in the golden
/// config, so MTS cycles == inner steps and any step count is reachable.
inline const std::vector<int>& golden_steps() {
  static const std::vector<int> s = {1, 8, 32};
  return s;
}

struct GoldenCase {
  std::string name;  // fixture file is tests/golden/<name>.txt
  System (*build)();
};

inline System build_peptide_solvated() {
  // ~230 atoms: 70 waters + a 20-atom peptide in a 14 A box.
  return sysgen::build_test_system(70, 14.0, 1234, true, 20);
}

inline System build_water_3site() {
  return sysgen::build_water_system(220, 14.0, sysgen::WaterModel::k3Site,
                                    77);
}

inline const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases = {
      {"peptide_solvated", &build_peptide_solvated},
      {"water_3site", &build_water_3site},
  };
  return cases;
}

/// The one configuration all fixtures use. Thread count and node grid are
/// parameters of the RUN, not the fixture: the hash must not depend on
/// them (that is the point of the test).
inline core::AntonConfig golden_config(const Vec3i& node_grid,
                                       int nthreads) {
  core::AntonConfig c;
  c.sim.cutoff = 7.0;
  c.sim.mesh = 16;
  c.sim.dt = 2.5;
  c.sim.long_range_every = 1;
  c.node_grid = node_grid;
  c.subbox_div = {1, 1, 1};
  c.migration_interval = 4;
  c.import_margin = 3.0;
  c.nthreads = nthreads;
  return c;
}

/// Runs one case at (node_grid, nthreads) and returns the state hash after
/// each entry of golden_steps(), hashing incrementally (1 -> 8 -> 32 steps
/// is one trajectory, not three).
inline std::vector<std::uint64_t> run_case(const GoldenCase& gc,
                                           const Vec3i& node_grid,
                                           int nthreads) {
  core::AntonEngine eng(gc.build(), golden_config(node_grid, nthreads));
  std::vector<std::uint64_t> hashes;
  int done = 0;
  for (int target : golden_steps()) {
    eng.run_cycles(target - done);
    done = target;
    hashes.push_back(eng.state_hash());
  }
  return hashes;
}

/// Same trajectory, executed by the message-passing VirtualMachine
/// runtime instead of the engine: the distributed choreography must land
/// on the SAME committed hashes (nthreads is not a VM parameter; the node
/// grid is). This is the cross-implementation half of the golden matrix.
/// The transport options select the byte wire the frames traverse --
/// every backend must land on the same hashes.
inline std::vector<std::uint64_t> run_case_vm(
    const GoldenCase& gc, const Vec3i& node_grid,
    const parallel::TransportOptions& topts = {}) {
  parallel::VirtualMachine vm(gc.build(), golden_config(node_grid, 1),
                              topts);
  std::vector<std::uint64_t> hashes;
  int done = 0;
  for (int target : golden_steps()) {
    vm.run_cycles(target - done);
    done = target;
    hashes.push_back(vm.state_hash());
  }
  return hashes;
}

}  // namespace anton::golden
