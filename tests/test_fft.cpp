// FFT correctness and the distributed-plan communication counts
// (Section 3.2.2).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "fft/dist_plan.hpp"
#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "util/rng.hpp"

using anton::fft::cplx;
using anton::fft::DistFftPlan;
using anton::fft::Fft1D;
using anton::fft::Fft3D;

namespace {
std::vector<cplx> naive_dft(const std::vector<cplx>& x, int sign) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx s{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * M_PI * k * j / n;
      s += x[j] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[k] = s;
  }
  return out;
}
}  // namespace

TEST(Fft1D, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Fft1D(12), std::invalid_argument);
  EXPECT_THROW(Fft1D(0), std::invalid_argument);
}

TEST(Fft1D, ImpulseGivesFlatSpectrum) {
  Fft1D fft(16);
  std::vector<cplx> x(16, cplx{0, 0});
  x[0] = {1, 0};
  fft.forward(x.data());
  for (const cplx& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

class Fft1DSizes : public ::testing::TestWithParam<int> {};

TEST_P(Fft1DSizes, MatchesNaiveDft) {
  const int n = GetParam();
  Fft1D fft(n);
  anton::Xoshiro256 rng(n);
  std::vector<cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<cplx> ref = naive_dft(x, -1);
  fft.forward(x.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), ref[i].real(), 1e-9 * n);
    EXPECT_NEAR(x[i].imag(), ref[i].imag(), 1e-9 * n);
  }
}

TEST_P(Fft1DSizes, RoundTripIsIdentity) {
  const int n = GetParam();
  Fft1D fft(n);
  anton::Xoshiro256 rng(n * 7 + 1);
  std::vector<cplx> x(n), orig;
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  orig = x;
  fft.forward(x.data());
  fft.inverse(x.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-12 * n);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-12 * n);
  }
}

TEST_P(Fft1DSizes, ParsevalHolds) {
  const int n = GetParam();
  Fft1D fft(n);
  anton::Xoshiro256 rng(n * 13 + 5);
  std::vector<cplx> x(n);
  double time_energy = 0;
  for (auto& v : x) {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    time_energy += std::norm(v);
  }
  fft.forward(x.data());
  double freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-9 * n * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fft1DSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(Fft1D, StridedMatchesContiguous) {
  Fft1D fft(32);
  anton::Xoshiro256 rng(3);
  std::vector<cplx> packed(32), strided(32 * 5);
  for (int i = 0; i < 32; ++i) {
    packed[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    strided[i * 5] = packed[i];
  }
  fft.forward(packed.data());
  fft.forward_strided(strided.data(), 5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(strided[i * 5], packed[i]);  // bitwise: same kernel, same data
  }
}

TEST(Fft3D, RoundTrip) {
  const int n = 16;
  Fft3D fft(n);
  anton::Xoshiro256 rng(9);
  std::vector<cplx> g(fft.total()), orig;
  for (auto& v : g) v = {rng.uniform(-1, 1), 0.0};
  orig = g;
  fft.forward(g);
  fft.inverse(g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g[i].real(), orig[i].real(), 1e-10 * n);
    EXPECT_NEAR(g[i].imag(), orig[i].imag(), 1e-10 * n);
  }
}

TEST(Fft3D, PlaneWaveHasSinglePeak) {
  const int n = 8;
  Fft3D fft(n);
  std::vector<cplx> g(fft.total());
  const int kx = 3, ky = 1, kz = 5;
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        const double ph = 2.0 * M_PI * (kx * x + ky * y + kz * z) / n;
        g[(z * n + y) * n + x] = {std::cos(ph), std::sin(ph)};
      }
  fft.forward(g);
  for (int z = 0; z < n; ++z)
    for (int y = 0; y < n; ++y)
      for (int x = 0; x < n; ++x) {
        const double mag = std::abs(g[(z * n + y) * n + x]);
        if (x == kx && y == ky && z == kz) {
          EXPECT_NEAR(mag, n * n * n, 1e-6);
        } else {
          EXPECT_NEAR(mag, 0.0, 1e-6);
        }
      }
}

TEST(Fft3D, Linearity) {
  const int n = 8;
  Fft3D fft(n);
  anton::Xoshiro256 rng(21);
  std::vector<cplx> a(fft.total()), b(fft.total()), sum(fft.total());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    b[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft.forward(a);
  fft.forward(b);
  fft.forward(sum);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Distributed FFT plan: message counts (Section 3.2.2: "hundreds of
// messages per node").
// ---------------------------------------------------------------------------

TEST(DistFftPlan, PaperConfigurationSendsHundredsOfMessages) {
  DistFftPlan plan;
  plan.mesh = 32;
  plan.nodes = {8, 8, 8};
  const auto total = plan.one_direction_total();
  // Forward + inverse doubles it; the paper quotes "hundreds per node".
  EXPECT_GT(2 * total.messages_per_node, 100u);
  EXPECT_LT(2 * total.messages_per_node, 2000u);
}

TEST(DistFftPlan, SingleNodeNeedsNoCommunication) {
  DistFftPlan plan;
  plan.mesh = 32;
  plan.nodes = {1, 1, 1};
  const auto total = plan.one_direction_total();
  EXPECT_EQ(total.messages_per_node, 0u);
  EXPECT_EQ(total.bytes_per_node, 0u);
}

TEST(DistFftPlan, AllPointsCoveredEachStage) {
  DistFftPlan plan;
  plan.mesh = 32;
  plan.nodes = {8, 8, 8};
  for (int axis = 0; axis < 3; ++axis) {
    const auto s = plan.stage(axis);
    // lines_per_node * nodes >= total lines (rounding up is allowed).
    EXPECT_GE(s.lines_per_node * 512, 32u * 32u);
    EXPECT_EQ(s.points_per_node, s.lines_per_node * 32);
  }
}

TEST(DistFftPlan, FinerMeshMovesMoreBytes) {
  DistFftPlan p32, p64;
  p32.mesh = 32;
  p64.mesh = 64;
  p32.nodes = p64.nodes = {8, 8, 8};
  EXPECT_GT(p64.one_direction_total().bytes_per_node,
            4 * p32.one_direction_total().bytes_per_node);
}
