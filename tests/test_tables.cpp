// Remez fitting and the tiered-index block-floating-point tables
// (Section 4: PPIP function evaluators).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <functional>
#include <vector>

#include "tables/remez.hpp"
#include "tables/tiered_table.hpp"
#include "util/rng.hpp"

using anton::tables::RemezResult;
using anton::tables::TieredLayout;
using anton::tables::TieredTable;

TEST(Remez, ExactForPolynomials) {
  // A cubic is reproduced (near) exactly by a cubic minimax fit.
  auto f = [](double t) { return 2.0 + 3.0 * t - t * t + 0.5 * t * t * t; };
  const RemezResult r = anton::tables::remez_minimax(f, 0.0, 1.0, 3);
  EXPECT_LT(r.max_error, 1e-12);
  EXPECT_NEAR(anton::tables::polyval(r.coeffs, 0.3), f(0.3), 1e-12);
}

TEST(Remez, ExpAccuracy) {
  const RemezResult r = anton::tables::remez_minimax(
      [](double t) { return std::exp(t); }, 0.0, 1.0, 3);
  // Known minimax error of cubic fit to e^x on [0,1] is ~5.5e-4; allow 2x.
  EXPECT_LT(r.max_error, 1.2e-3);
  // Error should be roughly equioscillating: check it beats a naive
  // Taylor fit by a wide margin.
  double taylor_worst = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double t = i / 100.0;
    const double taylor = 1 + t + t * t / 2 + t * t * t / 6;
    taylor_worst = std::max(taylor_worst, std::fabs(std::exp(t) - taylor));
  }
  EXPECT_LT(r.max_error, 0.25 * taylor_worst);
}

TEST(Remez, SteepFunction) {
  // 1/x-like behaviour over a narrow segment (what the LJ tables see).
  const RemezResult r = anton::tables::remez_minimax(
      [](double t) { return 1.0 / (0.1 + t * 0.01); }, 0.0, 1.0, 3);
  EXPECT_LT(r.max_error / 10.0, 1e-6);  // relative to f ~ 10
}

TEST(TieredLayout, AntonDefaultMatchesPaperExample) {
  // Section 4: 64 entries on [0,1/128), 96 on [1/128,1/32), 56 on
  // [1/32,1/4), 24 on [1/4,1) -- 240 total.
  const TieredLayout lay = TieredLayout::anton_default();
  EXPECT_EQ(lay.total_entries(), 240);
  ASSERT_EQ(lay.tiers.size(), 4u);
  EXPECT_EQ(lay.tiers[0].entries, 64);
  EXPECT_EQ(lay.tiers[1].entries, 96);
  EXPECT_EQ(lay.tiers[2].entries, 56);
  EXPECT_EQ(lay.tiers[3].entries, 24);
}

TEST(TieredLayout, SegmentLookupIsConsistent) {
  const TieredLayout lay = TieredLayout::anton_default();
  for (int k = 0; k < lay.total_entries(); ++k) {
    double lo, hi;
    lay.segment_bounds(k, lo, hi);
    ASSERT_LT(lo, hi);
    double t;
    // Midpoint maps back to segment k with t ~ 0.5.
    EXPECT_EQ(lay.find_segment(0.5 * (lo + hi), t), k);
    EXPECT_NEAR(t, 0.5, 1e-9);
    // Left edge maps to k with t ~ 0.
    EXPECT_EQ(lay.find_segment(lo, t), k);
    EXPECT_NEAR(t, 0.0, 1e-9);
  }
}

TEST(TieredLayout, SegmentsAreContiguous) {
  const TieredLayout lay = TieredLayout::anton_default();
  double prev_hi = 0.0;
  for (int k = 0; k < lay.total_entries(); ++k) {
    double lo, hi;
    lay.segment_bounds(k, lo, hi);
    EXPECT_DOUBLE_EQ(lo, prev_hi);
    prev_hi = hi;
  }
  EXPECT_DOUBLE_EQ(prev_hi, 1.0);
}

TEST(TieredLayout, NarrowerSegmentsNearZero) {
  // The tiered scheme allows "narrower segments where the function is
  // rapidly varying" -- near r^2 = 0.
  const TieredLayout lay = TieredLayout::anton_default();
  double lo0, hi0, loN, hiN;
  lay.segment_bounds(0, lo0, hi0);
  lay.segment_bounds(lay.total_entries() - 1, loN, hiN);
  EXPECT_LT(hi0 - lo0, (hiN - loN) / 100.0);
}

TEST(TieredTable, SmoothFunctionAccuracy) {
  auto f = [](double u) { return std::exp(-3.0 * u) * std::cos(4.0 * u); };
  const TieredTable t =
      TieredTable::build(f, TieredLayout::anton_default(), 22);
  for (int i = 1; i < 1000; ++i) {
    const double u = i / 1000.0;
    EXPECT_NEAR(t.eval_fixed(u), f(u), 5e-6) << "u=" << u;
  }
}

TEST(TieredTable, ErfcKernelAccuracy) {
  // The electrostatic kernel shape: erfc(beta R sqrt(u)) / (R sqrt(u)).
  const double R = 13.0, beta = 0.24;
  auto f = [&](double u) {
    const double r = R * std::sqrt(u);
    return std::erfc(beta * r) / r;
  };
  const TieredTable t =
      TieredTable::build(f, TieredLayout::anton_default(), 22, 0.003);
  for (int i = 0; i < 2000; ++i) {
    const double u = 0.003 + (1.0 - 0.004) * i / 2000.0;
    const double exact = f(u);
    EXPECT_NEAR(t.eval_fixed(u), exact, 4e-6 * std::max(1.0, exact))
        << "u=" << u;
  }
}

TEST(TieredTable, SteepLJKernelRelativeAccuracy) {
  // 12/r^14 over the table domain spans ~16 decades; block floating
  // point must hold per-segment relative accuracy.
  const double R = 13.0;
  const double u_min = 0.005;
  auto f = [&](double u) {
    const double r2 = u * R * R;
    return 12.0 / std::pow(r2, 7);
  };
  const TieredTable t =
      TieredTable::build(f, anton::tables::TieredLayout::anton_default(), 22,
                         u_min);
  // Start the scan one segment above the u_min clamp kink; the fit in the
  // segment containing the kink is intentionally degraded (the engine
  // clamps there anyway).
  for (int i = 0; i <= 500; ++i) {
    const double u = 1.15 * u_min + (0.999 - 1.15 * u_min) * i / 500.0;
    const double exact = f(u);
    const double got = t.eval_fixed(u);
    EXPECT_NEAR(got, exact, 1e-3 * exact + 1e-15) << "u=" << u;
  }
}

TEST(TieredTable, ClampsBelowUMin) {
  auto f = [](double u) { return 1.0 / u; };
  const TieredTable t =
      TieredTable::build(f, TieredLayout::uniform(64), 22, 0.1);
  EXPECT_NEAR(t.eval_fixed(0.01), t.eval_fixed(0.1), 1e-3 * f(0.1));
}

TEST(TieredTable, FixedPathIsDeterministic) {
  auto f = [](double u) { return std::sin(6.0 * u) + 2.0; };
  const TieredTable t =
      TieredTable::build(f, TieredLayout::anton_default(), 22);
  for (int i = 0; i < 100; ++i) {
    const double u = (i + 0.5) / 100.0;
    const double a = t.eval_fixed(u);
    const double b = t.eval_fixed(u);
    EXPECT_EQ(a, b);  // bitwise
  }
}

TEST(TieredTable, MantissaBitsControlAccuracy) {
  auto f = [](double u) { return std::exp(-2.0 * u); };
  const TieredTable t12 =
      TieredTable::build(f, TieredLayout::uniform(64), 12);
  const TieredTable t22 =
      TieredTable::build(f, TieredLayout::uniform(64), 22);
  EXPECT_GT(t12.max_fit_error(), 4.0 * t22.max_fit_error());
}

TEST(TieredTable, UniformVsTieredForSteepFunctions) {
  // Ablation: the tiered layout beats a uniform layout with the same
  // entry count on a steep kernel (the design rationale in Section 4).
  const double u_min = 0.004;
  auto f = [&](double u) { return 1.0 / (u * u * u); };
  const TieredTable tiered =
      TieredTable::build(f, TieredLayout::anton_default(), 22, u_min);
  const TieredTable uniform =
      TieredTable::build(f, TieredLayout::uniform(240), 22, u_min);
  double worst_t = 0, worst_u = 0;
  for (int i = 0; i <= 2000; ++i) {
    const double u = u_min + (0.999 - u_min) * i / 2000.0;
    worst_t = std::max(worst_t, std::fabs(tiered.eval_fixed(u) - f(u)) / f(u));
    worst_u =
        std::max(worst_u, std::fabs(uniform.eval_fixed(u) - f(u)) / f(u));
  }
  EXPECT_LT(worst_t, 0.2 * worst_u);
}

// Property: the batched evaluator is the scalar fixed-point path run over
// lanes -- bitwise identical for every input, across the full tier layout,
// edge clamps and both the fast-batch and scalar-fallback regimes.
TEST(TieredTable, BatchedMatchesScalarBitwise) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  struct Case {
    const char* name;
    std::function<double(double)> f;
    TieredLayout layout;
    int mantissa_bits;
    double u_min;
  };
  const std::vector<Case> cases = {
      {"erfc-like", [](double u) { return std::exp(-3.0 * u) / (u + 0.01); },
       TieredLayout::anton_default(), 22, 0.005},
      {"steep-lj", [](double u) { return 1.0 / (u * u * u + 1e-4); },
       TieredLayout::anton_default(), 26, 0.004},
      {"uniform", [](double u) { return std::sin(6.0 * u) + 2.0; },
       TieredLayout::uniform(64), 22, 0.0},
      // mantissa_bits > 26 disables the fast batch; eval_fixed_n must
      // fall back to the scalar path and still match.
      {"wide-mantissa", [](double u) { return std::exp(-2.0 * u); },
       TieredLayout::anton_default(), 28, 0.005}};
  for (const Case& c : cases) {
    const TieredTable t =
        TieredTable::build(c.f, c.layout, c.mantissa_bits, c.u_min);
    std::vector<double> u;
    // Edge inputs: clamps, tier boundaries, the open upper end.
    u.insert(u.end(), {-0.5, 0.0, c.u_min * 0.5, c.u_min,
                       std::nextafter(1.0, 0.0), 1.0, 1.5});
    for (const auto& tier : c.layout.tiers) {
      u.push_back(tier.lo);
      u.push_back(std::nextafter(tier.lo, 0.0));
      u.push_back(std::nextafter(tier.lo, 2.0));
    }
    anton::Xoshiro256 rng(99);
    for (int i = 0; i < 4000; ++i) u.push_back(rng.uniform(0.0, 1.0));
    std::vector<double> batched(u.size());
    t.eval_fixed_n(u.data(), batched.data(), u.size());
    for (std::size_t i = 0; i < u.size(); ++i)
      ASSERT_EQ(bits(t.eval_fixed(u[i])), bits(batched[i]))
          << c.name << " u=" << u[i];
  }
}
