// SPME -- the conventional mesh-Ewald baseline the paper contrasts GSE
// against (Section 3.1).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/analysis.hpp"
#include "ewald/reference_ewald.hpp"
#include "ewald/spme.hpp"
#include "util/rng.hpp"

using anton::PeriodicBox;
using anton::Vec3d;
using anton::ewald::ReferenceEwald;
using anton::ewald::Spme;
using anton::ewald::SpmeParams;

TEST(BSpline, PartitionOfUnity) {
  // Cardinal B-splines sum to 1 over the integer lattice for any offset.
  for (int n : {3, 4, 6}) {
    for (double frac = 0.05; frac < 1.0; frac += 0.1) {
      double sum = 0.0;
      for (int j = 0; j < n; ++j) sum += Spme::bspline(n, frac + j);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "order " << n << " frac " << frac;
    }
  }
}

TEST(BSpline, SupportAndPositivity) {
  for (int n : {3, 4, 6}) {
    EXPECT_EQ(Spme::bspline(n, 0.0), 0.0);
    EXPECT_EQ(Spme::bspline(n, static_cast<double>(n)), 0.0);
    for (double u = 0.1; u < n; u += 0.17)
      EXPECT_GT(Spme::bspline(n, u), 0.0);
  }
}

TEST(BSpline, DerivativeMatchesFiniteDifference) {
  const double h = 1e-6;
  for (int n : {4, 6}) {
    for (double u = 0.3; u < n - 0.3; u += 0.21) {
      const double fd =
          (Spme::bspline(n, u + h) - Spme::bspline(n, u - h)) / (2 * h);
      EXPECT_NEAR(Spme::bspline_deriv(n, u), fd, 1e-6);
    }
  }
}

namespace {
struct Charges {
  std::vector<Vec3d> pos;
  std::vector<double> q;
};
Charges neutral(int n, double L, std::uint64_t seed) {
  anton::Xoshiro256 rng(seed);
  Charges c;
  c.pos.resize(n);
  c.q.resize(n);
  for (int i = 0; i < n; ++i) {
    c.pos[i] = {rng.uniform(-L / 2, L / 2), rng.uniform(-L / 2, L / 2),
                rng.uniform(-L / 2, L / 2)};
    c.q[i] = (i % 2) ? 0.6 : -0.6;
  }
  return c;
}
}  // namespace

TEST(Spme, EnergyMatchesExactEwald) {
  const double L = 20.0;
  const PeriodicBox box(L);
  const Charges c = neutral(20, L, 3);
  SpmeParams p{0.4, 32, 6};
  Spme spme(box, p);
  std::vector<Vec3d> f(20, {0, 0, 0});
  const double e = spme.compute(c.pos, c.q, f);

  ReferenceEwald ref(box, p.beta, 14);
  std::vector<Vec3d> fr(20, {0, 0, 0});
  const double er = ref.compute(c.pos, c.q, fr);
  EXPECT_NEAR(e, er, 5e-3 * std::fabs(er) + 1e-3);
}

class SpmeOrders : public ::testing::TestWithParam<int> {};

TEST_P(SpmeOrders, ForcesMatchExactEwald) {
  const int order = GetParam();
  const double L = 20.0;
  const PeriodicBox box(L);
  const Charges c = neutral(24, L, 7);
  SpmeParams p{0.4, 32, order};
  Spme spme(box, p);
  std::vector<Vec3d> f(24, {0, 0, 0});
  spme.compute(c.pos, c.q, f);
  ReferenceEwald ref(box, p.beta, 14);
  std::vector<Vec3d> fr(24, {0, 0, 0});
  ref.compute(c.pos, c.q, fr);
  const double err = anton::analysis::rms_force_error(f, fr);
  EXPECT_LT(err, order >= 6 ? 2e-3 : 2e-2) << "order " << order;
}

INSTANTIATE_TEST_SUITE_P(Orders, SpmeOrders, ::testing::Values(4, 6));

TEST(Spme, HigherOrderIsMoreAccurate) {
  const double L = 20.0;
  const PeriodicBox box(L);
  const Charges c = neutral(24, L, 9);
  ReferenceEwald ref(box, 0.4, 14);
  std::vector<Vec3d> fr(24, {0, 0, 0});
  ref.compute(c.pos, c.q, fr);
  auto err_for = [&](int order) {
    Spme spme(box, SpmeParams{0.4, 32, order});
    std::vector<Vec3d> f(24, {0, 0, 0});
    spme.compute(c.pos, c.q, f);
    return anton::analysis::rms_force_error(f, fr);
  };
  EXPECT_LT(err_for(6), err_for(4));
}

TEST(Spme, ForceIsMinusGradient) {
  // Self-consistency: SPME forces vs finite differences of SPME energy.
  const double L = 16.0;
  const PeriodicBox box(L);
  Charges c = neutral(8, L, 11);
  Spme spme(box, SpmeParams{0.45, 32, 6});
  std::vector<Vec3d> f(8, {0, 0, 0});
  spme.compute(c.pos, c.q, f);
  const double h = 1e-5;
  for (int axis = 0; axis < 3; ++axis) {
    Charges cp = c, cm = c;
    cp.pos[3][axis] += h;
    cm.pos[3][axis] -= h;
    std::vector<Vec3d> scratch(8, {0, 0, 0});
    const double ep = spme.compute(cp.pos, cp.q, scratch);
    const double em = spme.compute(cm.pos, cm.q, scratch);
    EXPECT_NEAR(f[3][axis], -(ep - em) / (2 * h), 2e-4);
  }
}

TEST(Spme, NetForceIsSmallButNonzero) {
  // A documented SPME property: with analytic B-spline derivatives the
  // reciprocal forces do NOT sum exactly to zero (unlike GSE's symmetric
  // spread/interpolate, which conserves momentum bitwise in our engine).
  // The residual must be tiny relative to the typical per-atom force.
  const double L = 18.0;
  const PeriodicBox box(L);
  const Charges c = neutral(16, L, 13);
  Spme spme(box, SpmeParams{0.4, 32, 6});
  std::vector<Vec3d> f(16, {0, 0, 0});
  spme.compute(c.pos, c.q, f);
  Vec3d total{0, 0, 0};
  double typical = 0.0;
  for (const auto& fi : f) {
    total += fi;
    typical += fi.norm();
  }
  typical /= 16.0;
  EXPECT_LT(total.norm(), 0.05 * typical);
  EXPECT_GT(total.norm(), 0.0);  // ... and it genuinely is nonzero
}

TEST(Spme, RejectsBadParameters) {
  EXPECT_THROW(Spme(PeriodicBox(anton::Vec3d{10, 12, 14}),
                    SpmeParams{0.4, 32, 4}),
               std::invalid_argument);
  EXPECT_THROW(Spme(PeriodicBox(16.0), SpmeParams{0.4, 32, 2}),
               std::invalid_argument);
}
