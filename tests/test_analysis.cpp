// Analysis observables: drift, force error, order parameters, transitions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/analysis.hpp"
#include "util/rng.hpp"

using anton::Vec3d;
namespace an = anton::analysis;

TEST(EnergyDrift, RecoversLinearSlope) {
  an::EnergyDrift d;
  // energy = 1000 + 1e-4 kcal/mol per step, dt = 2.5 fs, dof = 100:
  // drift = 1e-4 / 2.5 * 1e9 / 100 = 400 kcal/mol/DoF/us.
  for (int s = 0; s <= 1000; s += 10) d.add(s, 1000.0 + 1e-4 * s);
  EXPECT_NEAR(d.drift(100.0, 2.5), 400.0, 1e-6);
  EXPECT_NEAR(d.fluctuation(), 0.0, 1e-9);
}

TEST(EnergyDrift, SignInsensitive) {
  an::EnergyDrift d;
  for (int s = 0; s <= 100; ++s) d.add(s, 50.0 - 2e-5 * s);
  EXPECT_GT(d.drift(10.0, 2.5), 0.0);
}

TEST(EnergyDrift, FluctuationAroundTrend) {
  an::EnergyDrift d;
  anton::Xoshiro256 rng(3);
  for (int s = 0; s <= 2000; ++s)
    d.add(s, 10.0 + 0.001 * s + 0.5 * rng.normal());
  EXPECT_NEAR(d.fluctuation(), 0.5, 0.1);
}

TEST(ForceError, ZeroForIdentical) {
  std::vector<Vec3d> f{{1, 2, 3}, {-4, 0, 2}};
  EXPECT_EQ(an::rms_force_error(f, f), 0.0);
}

TEST(ForceError, KnownRatio) {
  std::vector<Vec3d> ref{{3, 0, 0}, {0, 4, 0}};
  std::vector<Vec3d> test{{3.3, 0, 0}, {0, 4.4, 0}};  // 10% on each
  EXPECT_NEAR(an::rms_force_error(test, ref), 0.1, 1e-12);
}

TEST(OrderParameters, RigidVectorGivesOne) {
  an::OrderParameters op(1);
  std::vector<Vec3d> u{{0.0, 0.6, 0.8}};
  for (int f = 0; f < 50; ++f) op.add_frame(u);
  EXPECT_NEAR(op.s2()[0], 1.0, 1e-12);
}

TEST(OrderParameters, IsotropicVectorGivesZero) {
  an::OrderParameters op(1);
  anton::Xoshiro256 rng(17);
  for (int f = 0; f < 200000; ++f) {
    const double z = rng.uniform(-1, 1);
    const double phi = rng.uniform(0, 2 * M_PI);
    const double s = std::sqrt(1 - z * z);
    std::vector<Vec3d> u{{s * std::cos(phi), s * std::sin(phi), z}};
    op.add_frame(u);
  }
  EXPECT_NEAR(op.s2()[0], 0.0, 0.02);
}

TEST(OrderParameters, WobblingConeIsIntermediate) {
  // A vector wobbling in a cone of half-angle theta has the classic
  // S = cos(theta)(1+cos(theta))/2 order parameter.
  const double theta = 0.4;
  an::OrderParameters op(1);
  anton::Xoshiro256 rng(19);
  for (int f = 0; f < 400000; ++f) {
    // Uniform within the cone around z.
    const double c = 1.0 - rng.uniform() * (1.0 - std::cos(theta));
    const double s = std::sqrt(1 - c * c);
    const double phi = rng.uniform(0, 2 * M_PI);
    std::vector<Vec3d> u{{s * std::cos(phi), s * std::sin(phi), c}};
    op.add_frame(u);
  }
  const double S = std::cos(theta) * (1.0 + std::cos(theta)) / 2.0;
  EXPECT_NEAR(op.s2()[0], S * S, 0.01);
}

TEST(RadiusOfGyration, KnownConfiguration) {
  std::vector<Vec3d> pos{{1, 0, 0}, {-1, 0, 0}};
  EXPECT_NEAR(an::radius_of_gyration(pos), 1.0, 1e-12);
}

TEST(Rmsd, ZeroForIdentical) {
  std::vector<Vec3d> a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(an::rmsd_no_superposition(a, a), 0.0);
}

TEST(Transitions, CountsWithHysteresis) {
  // Crossing the middle without reaching the other basin is not counted.
  std::vector<double> q{0.9, 0.8, 0.5, 0.8, 0.9,   // stays folded
                        0.4, 0.1,                  // unfolds (1)
                        0.5, 0.6, 0.1,             // wiggles, stays unfolded
                        0.9,                       // refolds (2)
                        0.05, 0.95};               // unfold+fold (3, 4)
  EXPECT_EQ(an::count_transitions(q, 0.2, 0.8), 4);
}

TEST(Transitions, EmptyAndFlatSeries) {
  std::vector<double> empty;
  EXPECT_EQ(an::count_transitions(empty, 0.2, 0.8), 0);
  std::vector<double> flat(100, 0.5);
  EXPECT_EQ(an::count_transitions(flat, 0.2, 0.8), 0);
}
