// Utility substrate: deterministic RNG, statistics, units, comm stats.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parallel/comm_stats.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using anton::RunningStats;
using anton::Xoshiro256;

TEST(Rng, DeterministicUnderSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMomentsAreRight) {
  Xoshiro256 rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, NormalMomentsAreRight) {
  Xoshiro256 rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.variance(), 1.0, 0.02);
}

TEST(Rng, BelowIsUnbiased) {
  Xoshiro256 rng(17);
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, LinearFitExact) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y{1, 3, 5, 7, 9};  // y = 1 + 2x
  const auto f = anton::fit_line(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(Stats, FitDegenerateInputs) {
  std::vector<double> one{1.0};
  EXPECT_EQ(anton::fit_line(one, one).slope, 0.0);
  std::vector<double> same{2.0, 2.0, 2.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_EQ(anton::fit_line(same, y).slope, 0.0);  // vertical: no fit
}

TEST(Stats, Rms) {
  std::vector<double> v{3.0, 4.0};
  EXPECT_NEAR(anton::rms(v), std::sqrt(12.5), 1e-12);
  EXPECT_EQ(anton::rms({}), 0.0);
}

TEST(Units, ThermalVelocityOfWaterAt300K) {
  // v_rms per component for 18 amu at 300 K is ~0.0037 A/fs x sqrt(3).
  const double v2 = anton::units::kB * 300.0 * anton::units::kForceToAccel /
                    18.0;
  EXPECT_NEAR(std::sqrt(v2), 0.00372, 2e-4);
}

TEST(Units, CoulombConstantMagnitude) {
  // Two unit charges at 1 A: 332 kcal/mol -- the textbook number.
  EXPECT_NEAR(anton::units::kCoulomb, 332.06, 0.1);
}

TEST(CommStats, PositionImportScalesWithAtoms) {
  anton::parallel::CommConfig cfg;
  const auto small = anton::parallel::position_import(100, 10, cfg);
  const auto large = anton::parallel::position_import(1000, 10, cfg);
  EXPECT_EQ(small.bytes, 100u * cfg.bytes_per_position);
  EXPECT_GT(large.messages, small.messages);
}

TEST(CommStats, ForceExportMirrorsImport) {
  anton::parallel::CommConfig cfg;
  const auto imp = anton::parallel::position_import(500, 20, cfg);
  const auto exp = anton::parallel::force_export(500, 20, cfg);
  EXPECT_EQ(imp.messages, exp.messages);
  EXPECT_EQ(exp.bytes, 500u * cfg.bytes_per_force);
}
