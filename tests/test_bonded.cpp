// Bonded kernels: analytic forces must equal -grad E (finite differences)
// and obey Newton's third law.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bonded/bonded.hpp"
#include "util/rng.hpp"

using anton::AngleTerm;
using anton::BondTerm;
using anton::DihedralTerm;
using anton::PeriodicBox;
using anton::Vec3d;
using anton::bonded::TermForces;

namespace {

// Numerically differentiates the term energy with respect to each atom
// coordinate and compares with the reported forces.
template <typename EvalFn>
void check_gradient(EvalFn eval, std::vector<Vec3d> pos,
                    const PeriodicBox& box, double tol) {
  const TermForces base = eval(pos, box);
  // Forces must sum to zero (translation invariance).
  Vec3d total{0, 0, 0};
  for (int i = 0; i < base.n; ++i) total += base.f[i];
  EXPECT_NEAR(total.norm(), 0.0, 1e-9);

  const double h = 1e-6;
  for (int i = 0; i < base.n; ++i) {
    const int atom = base.atom[i];
    for (int axis = 0; axis < 3; ++axis) {
      std::vector<Vec3d> pp = pos, pm = pos;
      pp[atom][axis] += h;
      pm[atom][axis] -= h;
      const double ep = eval(pp, box).energy;
      const double em = eval(pm, box).energy;
      const double fd = -(ep - em) / (2 * h);
      EXPECT_NEAR(base.f[i][axis], fd, tol)
          << "atom " << atom << " axis " << axis;
    }
  }
}

}  // namespace

TEST(Bonded, BondEnergyAtEquilibriumIsZero) {
  const PeriodicBox box(50.0);
  std::vector<Vec3d> pos{{0, 0, 0}, {1.5, 0, 0}};
  const BondTerm b{0, 1, 300.0, 1.5};
  const TermForces t = anton::bonded::eval_bond(b, pos, box);
  EXPECT_NEAR(t.energy, 0.0, 1e-12);
  EXPECT_NEAR(t.f[0].norm(), 0.0, 1e-9);
}

TEST(Bonded, BondEnergyQuadratic) {
  const PeriodicBox box(50.0);
  std::vector<Vec3d> pos{{0, 0, 0}, {1.7, 0, 0}};
  const BondTerm b{0, 1, 300.0, 1.5};
  const TermForces t = anton::bonded::eval_bond(b, pos, box);
  EXPECT_NEAR(t.energy, 300.0 * 0.2 * 0.2, 1e-9);
  // Restoring force pulls atom 0 toward atom 1.
  EXPECT_GT(t.f[0].x, 0.0);
}

TEST(Bonded, BondAcrossPeriodicBoundary) {
  const PeriodicBox box(10.0);
  std::vector<Vec3d> pos{{4.8, 0, 0}, {-4.7, 0, 0}};  // true distance 0.5
  const BondTerm b{0, 1, 100.0, 0.5};
  const TermForces t = anton::bonded::eval_bond(b, pos, box);
  EXPECT_NEAR(t.energy, 0.0, 1e-9);
}

class BondedGradient : public ::testing::TestWithParam<int> {};

TEST_P(BondedGradient, BondMatchesFiniteDifference) {
  anton::Xoshiro256 rng(GetParam());
  const PeriodicBox box(30.0);
  std::vector<Vec3d> pos{{rng.uniform(-2, 2), rng.uniform(-2, 2),
                          rng.uniform(-2, 2)},
                         {rng.uniform(-2, 2), rng.uniform(-2, 2),
                          rng.uniform(-2, 2)}};
  const BondTerm b{0, 1, 250.0, 1.4};
  check_gradient(
      [&](const std::vector<Vec3d>& p, const PeriodicBox& bx) {
        return anton::bonded::eval_bond(b, p, bx);
      },
      pos, box, 1e-4);
}

TEST_P(BondedGradient, AngleMatchesFiniteDifference) {
  anton::Xoshiro256 rng(100 + GetParam());
  const PeriodicBox box(30.0);
  std::vector<Vec3d> pos(3);
  for (auto& r : pos)
    r = {rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
  // Keep atoms apart to avoid the degenerate (collinear) configuration.
  pos[0] = pos[1] + Vec3d{1.5, 0.1 * GetParam(), 0.2};
  pos[2] = pos[1] + Vec3d{-0.3, 1.4, -0.5};
  const AngleTerm a{0, 1, 2, 60.0, 1.9};
  check_gradient(
      [&](const std::vector<Vec3d>& p, const PeriodicBox& bx) {
        return anton::bonded::eval_angle(a, p, bx);
      },
      pos, box, 1e-4);
}

TEST_P(BondedGradient, DihedralMatchesFiniteDifference) {
  anton::Xoshiro256 rng(200 + GetParam());
  const PeriodicBox box(30.0);
  std::vector<Vec3d> pos(4);
  pos[0] = {0, 0, 0};
  pos[1] = {1.5, 0, 0};
  pos[2] = {2.0, 1.4, 0};
  pos[3] = {3.2, 1.6, 1.1};
  for (auto& r : pos)
    r += Vec3d{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
               rng.uniform(-0.3, 0.3)};
  const DihedralTerm d{0, 1, 2, 3, 1.2, 3, 0.4};
  check_gradient(
      [&](const std::vector<Vec3d>& p, const PeriodicBox& bx) {
        return anton::bonded::eval_dihedral(d, p, bx);
      },
      pos, box, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, BondedGradient,
                         ::testing::Range(1, 11));

TEST(Bonded, DihedralPeriodicity) {
  // E = k (1 + cos(n phi - phase)): rotating the last atom by 2 pi / n
  // around the central bond leaves the energy unchanged.
  const PeriodicBox box(50.0);
  std::vector<Vec3d> pos{{0, 0, 0}, {1.5, 0, 0}, {1.5, 1.5, 0},
                         {1.5 + std::cos(0.7), 1.5, std::sin(0.7)}};
  const DihedralTerm d{0, 1, 2, 3, 1.0, 3, 0.0};
  const double e0 = anton::bonded::eval_dihedral(d, pos, box).energy;
  // Rotate atom 3 about the y axis through (1.5, *, 0) by 2 pi / 3.
  const double ang = 2.0 * M_PI / 3.0;
  const Vec3d rel = pos[3] - Vec3d{1.5, 1.5, 0};
  pos[3] = Vec3d{1.5, 1.5, 0} +
           Vec3d{rel.x * std::cos(ang) + rel.z * std::sin(ang), rel.y,
                 -rel.x * std::sin(ang) + rel.z * std::cos(ang)};
  const double e1 = anton::bonded::eval_dihedral(d, pos, box).energy;
  EXPECT_NEAR(e0, e1, 1e-9);
}

TEST(Bonded, CollinearDihedralIsSafe) {
  const PeriodicBox box(50.0);
  std::vector<Vec3d> pos{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}};
  const DihedralTerm d{0, 1, 2, 3, 1.0, 2, 0.0};
  const TermForces t = anton::bonded::eval_dihedral(d, pos, box);
  EXPECT_EQ(t.n, 0);  // degenerate: skipped, no NaNs
}

TEST(Bonded, EvalAllAccumulates) {
  anton::Topology top;
  top.natoms = 3;
  top.mass.assign(3, 12.0);
  top.charge.assign(3, 0.0);
  top.type.assign(3, 0);
  top.lj_types.push_back({3.0, 0.1});
  top.bonds.push_back({0, 1, 100.0, 1.0});
  top.bonds.push_back({1, 2, 100.0, 1.0});
  top.angles.push_back({0, 1, 2, 50.0, M_PI / 2});
  const PeriodicBox box(20.0);
  std::vector<Vec3d> pos{{0, 0, 0}, {1.1, 0, 0}, {1.1, 0.9, 0}};
  std::vector<Vec3d> f(3, {0, 0, 0});
  const double e = anton::bonded::eval_all_bonded(top, pos, box, f);
  EXPECT_GT(e, 0.0);
  Vec3d sum{0, 0, 0};
  for (const auto& fi : f) sum += fi;
  EXPECT_NEAR(sum.norm(), 0.0, 1e-9);
}
