// The multi-tenant job runtime: fair scheduling, tenant isolation,
// crash recovery and ensembles.
//
// The load-bearing assertions are the determinism ones: a job's
// trajectory must be bitwise identical to running its spec alone
// (neighbors, budgets and scheduling interleavings must not leak into
// the physics), and a killed job must resume from its checkpoint into a
// frame-for-frame identical trajectory. Both reduce to engine
// invariants proven in earlier PRs (lane-count invariance, checkpoint
// resume) -- these tests assert the job runtime preserves them at fleet
// level.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "golden_common.hpp"
#include "io/trajectory.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/scheduler.hpp"
#include "test_tmp.hpp"

using anton::System;
using anton::Vec3i;
using anton::core::Simulation;
using anton::core::SimulationConfig;
using anton::jobs::EnsembleSpec;
using anton::jobs::FairScheduler;
using anton::jobs::JobId;
using anton::jobs::JobInfo;
using anton::jobs::JobManager;
using anton::jobs::JobSpec;
using anton::jobs::JobStatus;
using anton::jobs::Priority;
using anton::jobs::RuntimeConfig;
using anton::testing::TempDir;

namespace {

// The small test scenario most runtime tests use (the same system as
// test_simulation's small_system, expressed declaratively).
JobSpec small_job(std::uint64_t seed, int cycles) {
  JobSpec s;
  s.name = "small-" + std::to_string(seed);
  s.scenario.kind = "test";
  s.scenario.n_waters = 60;
  s.scenario.side = 13.0;
  s.scenario.seed = seed;
  s.scenario.constrained = true;
  s.scenario.protein_atoms = 12;
  s.engine.sim.cutoff = 6.0;
  s.engine.sim.mesh = 16;
  s.engine.node_grid = {2, 2, 2};
  s.cycles = cycles;
  return s;
}

// Runs the same spec as a solo, single-owner Simulation and returns
// (final hash, frames). This is the reference every managed job is
// compared against.
std::pair<std::uint64_t,
          std::vector<std::pair<std::int64_t, std::vector<Vec3i>>>>
run_solo(const JobSpec& spec, const std::string& dir) {
  SimulationConfig cfg;
  cfg.engine = spec.engine;
  cfg.trajectory_every = spec.trajectory_every;
  cfg.trajectory_path = dir + "/solo.antj";
  cfg.checkpoint_every = 0;  // the reference run never restarts
  std::uint64_t hash = 0;
  {
    // Scoped: the TrajectoryWriter must flush before we read back.
    Simulation sim(anton::jobs::build_system(spec.scenario), cfg);
    sim.run_cycles(spec.cycles);
    hash = sim.engine().state_hash();
  }
  std::vector<std::pair<std::int64_t, std::vector<Vec3i>>> frames;
  if (spec.trajectory_every > 0) {
    anton::io::TrajectoryReader r(cfg.trajectory_path);
    std::int64_t step = 0;
    std::vector<Vec3i> pos;
    while (r.next(step, pos)) frames.emplace_back(step, pos);
  }
  return {hash, std::move(frames)};
}

void expect_same_frames(
    const std::vector<std::pair<std::int64_t, std::vector<Vec3i>>>& got,
    const std::vector<std::pair<std::int64_t, std::vector<Vec3i>>>& want,
    const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t f = 0; f < got.size(); ++f) {
    EXPECT_EQ(got[f].first, want[f].first) << what << " frame " << f;
    ASSERT_EQ(got[f].second.size(), want[f].second.size())
        << what << " frame " << f;
    for (std::size_t i = 0; i < got[f].second.size(); ++i)
      ASSERT_EQ(got[f].second[i], want[f].second[i])
          << what << " frame " << f << " atom " << i;
  }
}

// Waits (bounded) until pred() holds; returns whether it did.
template <typename Pred>
bool wait_until(Pred pred, int timeout_ms = 60000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// FairScheduler units (pure state machine; no engine, no threads).
// ---------------------------------------------------------------------

TEST(JobsScheduler, EqualWeightsInterleaveRoundRobin) {
  FairScheduler s;
  s.add(0, Priority::kNormal);
  s.add(1, Priority::kNormal);
  s.add(2, Priority::kNormal);
  std::vector<int> order;
  for (int q = 0; q < 9; ++q) {
    auto j = s.pick();
    ASSERT_TRUE(j.has_value());
    order.push_back(*j);
    s.requeue(*j);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2, 0, 1, 2}));
}

TEST(JobsScheduler, SharesConvergeToPriorityWeights) {
  // low : normal : high = 1 : 2 : 4. Over 70 quanta (10 full rounds of
  // the 1+2+4 pattern) the shares are exact.
  FairScheduler s;
  s.add(0, Priority::kLow);
  s.add(1, Priority::kNormal);
  s.add(2, Priority::kHigh);
  std::map<int, int> runs;
  for (int q = 0; q < 70; ++q) {
    auto j = s.pick();
    ASSERT_TRUE(j.has_value());
    ++runs[*j];
    s.requeue(*j);
  }
  EXPECT_EQ(runs[0], 10);
  EXPECT_EQ(runs[1], 20);
  EXPECT_EQ(runs[2], 40);
}

TEST(JobsScheduler, LateJoinerEntersAtCurrentVirtualTime) {
  // A job submitted after the others have run for a while must not get
  // to "pay back" virtual time it never consumed: it joins at the
  // current minimum pass and from then on shares fairly.
  FairScheduler s;
  s.add(0, Priority::kNormal);
  s.add(1, Priority::kNormal);
  for (int q = 0; q < 20; ++q) {
    auto j = s.pick();
    ASSERT_TRUE(j.has_value());
    s.requeue(*j);
  }
  s.add(2, Priority::kNormal);
  EXPECT_GE(s.pass_of(2), std::min(s.pass_of(0), s.pass_of(1)));
  std::map<int, int> runs;
  for (int q = 0; q < 30; ++q) {
    auto j = s.pick();
    ASSERT_TRUE(j.has_value());
    ++runs[*j];
    s.requeue(*j);
  }
  EXPECT_EQ(runs[2], 10);  // exactly a 1/3 share, no catch-up burst
}

TEST(JobsScheduler, PickRemovesUntilRequeue) {
  FairScheduler s;
  s.add(7, Priority::kNormal);
  auto j = s.pick();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(*j, 7);
  EXPECT_FALSE(s.has_runnable());     // picked jobs are off the queue...
  EXPECT_FALSE(s.pick().has_value());
  s.requeue(7);
  EXPECT_TRUE(s.has_runnable());      // ...until the quantum is charged
  EXPECT_EQ(s.pass_of(7), FairScheduler::kStrideOne / 2);  // weight 2
}

TEST(JobsScheduler, RemoveForgetsJob) {
  FairScheduler s;
  s.add(0, Priority::kNormal);
  s.add(1, Priority::kNormal);
  s.remove(0);
  EXPECT_EQ(s.runnable_count(), 1);
  auto j = s.pick();
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(*j, 1);
  EXPECT_EQ(s.pass_of(0), 0);
}

// ---------------------------------------------------------------------
// Runtime integration.
// ---------------------------------------------------------------------

TEST(JobsRuntime, SixteenConcurrentJobsMatchSoloRunsBitwise) {
  // The headline acceptance test: 16 single-threaded tenants packed
  // onto an 8-lane pool, all running concurrently, and every one of
  // them produces the trajectory it would have produced alone.
  TempDir tmp;
  const int kJobs = 16, kCycles = 6;

  RuntimeConfig rc;
  rc.threads = 8;
  rc.executors = 8;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  std::vector<JobId> ids;
  for (int i = 0; i < kJobs; ++i) {
    JobSpec s = small_job(/*seed=*/100 + i, kCycles);
    s.trajectory_every = 2;  // inner steps
    ids.push_back(mgr.submit(s));
  }
  for (JobId id : ids) {
    const JobInfo fi = mgr.await(id);
    EXPECT_EQ(fi.status, JobStatus::kDone) << fi.error;
    EXPECT_EQ(fi.cycles_done, kCycles);
  }

  for (int i = 0; i < kJobs; ++i) {
    JobSpec s = small_job(100 + i, kCycles);
    s.trajectory_every = 2;
    const auto [solo_hash, solo_frames] = run_solo(s, tmp.str());
    const JobInfo fi = mgr.info(ids[i]);
    EXPECT_EQ(fi.final_hash, solo_hash) << "job " << i;
    expect_same_frames(mgr.stitched_frames(ids[i]), solo_frames,
                       "job " + std::to_string(i));
  }

  // Distinct seeds are distinct systems: the 16 hashes must differ
  // (guards against jobs silently sharing state).
  std::set<std::uint64_t> hashes;
  for (JobId id : ids) hashes.insert(mgr.info(id).final_hash);
  EXPECT_EQ(hashes.size(), static_cast<std::size_t>(kJobs));
}

namespace {
// "steps N hash HEX" lines, as committed by scripts/regen_golden.sh.
std::map<int, std::uint64_t> load_golden_fixture(const std::string& name) {
  const std::string path =
      std::string(ANTON_GOLDEN_DIR) + "/" + name + ".txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::map<int, std::uint64_t> fx;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kw_steps, kw_hash, hex;
    int steps = 0;
    ls >> kw_steps >> steps >> kw_hash >> hex;
    if (kw_steps == "steps" && kw_hash == "hash" && !hex.empty())
      fx[steps] = std::stoull(hex, nullptr, 16);
  }
  return fx;
}
}  // namespace

TEST(JobsRuntime, NoisyNeighborsDoNotPerturbGoldenTrajectory) {
  // Determinism audit against the committed golden fixture: the
  // peptide_solvated trajectory run as a managed job, with seven noisy
  // neighbor jobs churning on the same pool, must land on the same
  // fixture hash as the solo single-owner engine run does.
  const auto fixture = load_golden_fixture("peptide_solvated");
  ASSERT_TRUE(fixture.count(32));

  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 8;
  rc.executors = 4;
  rc.default_quantum = 2;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  JobSpec golden;
  golden.name = "golden";
  golden.scenario.kind = "test";
  golden.scenario.n_waters = 70;
  golden.scenario.side = 14.0;
  golden.scenario.seed = 1234;
  golden.scenario.constrained = true;
  golden.scenario.protein_atoms = 20;
  golden.engine = anton::golden::golden_config({2, 2, 2}, /*nthreads=*/1);
  golden.cycles = 32;  // long_range_every == 1: cycles == inner steps
  golden.thread_budget = 4;

  std::vector<JobId> neighbors;
  for (int i = 0; i < 7; ++i) {
    JobSpec n = small_job(/*seed=*/900 + i, /*cycles=*/8);
    n.thread_budget = 1 + i % 2;
    n.priority = i % 2 ? Priority::kHigh : Priority::kLow;
    neighbors.push_back(mgr.submit(n));
  }
  const JobId g = mgr.submit(golden);

  const JobInfo fi = mgr.await(g);
  EXPECT_EQ(fi.status, JobStatus::kDone) << fi.error;
  EXPECT_EQ(fi.final_hash, fixture.at(32))
      << "neighbors perturbed the golden trajectory";
  for (JobId id : neighbors)
    EXPECT_EQ(mgr.await(id).status, JobStatus::kDone);
}

TEST(JobsRuntime, KilledJobResumesBitwiseAndStitchesFrames) {
  // Crash mid-run, recover from checkpoint v2, and the stitched
  // trajectory is frame-for-frame the uninterrupted run.
  TempDir tmp;
  const int kCycles = 60;  // 120 inner steps: plenty of room to kill

  JobSpec spec = small_job(/*seed=*/4242, kCycles);
  spec.trajectory_every = 4;   // inner steps
  spec.checkpoint_every = 8;   // inner steps
  spec.quantum_cycles = 1;

  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 1;  // one executor: progress is easy to observe
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);
  const JobId id = mgr.submit(spec);

  // Let it make real progress (past at least one checkpoint), then
  // pull the plug.
  ASSERT_TRUE(wait_until([&] { return mgr.info(id).cycles_done >= 8; }));
  ASSERT_TRUE(mgr.kill(id));

  const JobInfo fi = mgr.await(id);
  EXPECT_EQ(fi.status, JobStatus::kDone) << fi.error;
  EXPECT_EQ(fi.cycles_done, kCycles);
  EXPECT_GE(fi.restarts, 1);   // it really did die...
  EXPECT_GE(fi.segments, 2);   // ...and wrote a second trajectory leg
  EXPECT_NE(fi.error, "");

  const auto [solo_hash, solo_frames] = run_solo(spec, tmp.str());
  EXPECT_EQ(fi.final_hash, solo_hash);
  expect_same_frames(mgr.stitched_frames(id), solo_frames, "stitched");
}

TEST(JobsRuntime, KillBeforeFirstCheckpointRestartsFromSpec) {
  // A job killed before it ever checkpointed has no prefix to resume:
  // the recovery sweep rebuilds the System from the declarative spec
  // and the job still completes with the solo-run hash.
  TempDir tmp;
  JobSpec spec = small_job(/*seed=*/77, /*cycles=*/5);
  spec.checkpoint_every = 1000;  // never reached

  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 1;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  const JobId id = mgr.submit(spec);
  mgr.kill(id);  // lands at the first cycle boundary
  const JobInfo fi = mgr.await(id);
  EXPECT_EQ(fi.status, JobStatus::kDone) << fi.error;
  EXPECT_GE(fi.restarts, 1);
  EXPECT_EQ(fi.final_hash, run_solo(spec, tmp.str()).first);
}

TEST(JobsRuntime, CrashPastMaxRestartsFails) {
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 1;
  rc.max_restarts = 0;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  const JobId id = mgr.submit(small_job(1, /*cycles=*/50));
  mgr.kill(id);
  const JobInfo fi = mgr.await(id);
  EXPECT_EQ(fi.status, JobStatus::kFailed);
  EXPECT_NE(fi.error, "");
  EXPECT_LT(fi.cycles_done, 50);
}

TEST(JobsRuntime, ManualRecoverySweepWhenAutoRecoveryOff) {
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 1;
  rc.recover_crashed = false;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  const JobId id = mgr.submit(small_job(5, /*cycles=*/20));
  mgr.kill(id);
  ASSERT_TRUE(wait_until(
      [&] { return mgr.info(id).status == JobStatus::kCrashed; }));
  EXPECT_EQ(mgr.recovery_sweep(), 1);
  const JobInfo fi = mgr.await(id);
  EXPECT_EQ(fi.status, JobStatus::kDone) << fi.error;
  EXPECT_EQ(fi.restarts, 1);
}

TEST(JobsRuntime, PauseHoldsAndUnpauseCompletes) {
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 1;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  const JobId id = mgr.submit(small_job(9, /*cycles=*/6));
  ASSERT_TRUE(mgr.pause(id));
  ASSERT_TRUE(wait_until(
      [&] { return mgr.info(id).status == JobStatus::kPaused; }));
  const int held_at = mgr.info(id).cycles_done;
  EXPECT_LT(held_at, 6);
  // Paused jobs are invisible to await_all (it waits for queued/running
  // work only) and to the executors.
  mgr.await_all();
  EXPECT_EQ(mgr.info(id).cycles_done, held_at);

  ASSERT_TRUE(mgr.unpause(id));
  const JobInfo fi = mgr.await(id);
  EXPECT_EQ(fi.status, JobStatus::kDone) << fi.error;
  EXPECT_EQ(fi.cycles_done, 6);
  // Pause/unpause did not fork the physics.
  EXPECT_EQ(fi.final_hash, run_solo(small_job(9, 6), tmp.str()).first);
}

TEST(JobsRuntime, CancelStopsAtCycleBoundary) {
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 1;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  // A long job that gets cancelled mid-run...
  const JobId a = mgr.submit(small_job(11, /*cycles=*/500));
  ASSERT_TRUE(wait_until([&] { return mgr.info(a).cycles_done >= 2; }));
  ASSERT_TRUE(mgr.cancel(a));
  const JobInfo fa = mgr.await(a);
  EXPECT_EQ(fa.status, JobStatus::kCancelled);
  EXPECT_LT(fa.cycles_done, 500);
  // ...is terminal: control verbs refuse it from here on.
  EXPECT_FALSE(mgr.cancel(a));
  EXPECT_FALSE(mgr.pause(a));
  EXPECT_FALSE(mgr.kill(a));

  // A job cancelled right after submission never completes; jobs
  // behind it in the queue are unaffected.
  const JobId b = mgr.submit(small_job(12, /*cycles=*/500));
  const JobId c = mgr.submit(small_job(13, /*cycles=*/2));
  ASSERT_TRUE(mgr.cancel(b));
  EXPECT_EQ(mgr.await(b).status, JobStatus::kCancelled);
  EXPECT_EQ(mgr.await(c).status, JobStatus::kDone);
}

TEST(JobsRuntime, EnsembleRunsKSeededReplicas) {
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 4;
  rc.executors = 4;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  EnsembleSpec ens;
  ens.base = small_job(/*seed=*/0, /*cycles=*/3);
  ens.base.name = "ens";
  ens.seeds = {11, 22, 33, 44};
  const std::vector<JobId> ids = mgr.submit_ensemble(ens);
  ASSERT_EQ(ids.size(), 4u);
  for (JobId id : ids) mgr.await(id);

  const auto st = mgr.stats_for(ids);
  EXPECT_EQ(st.replicas, 4);
  EXPECT_EQ(st.completed, 4);
  EXPECT_EQ(st.failed, 0);
  EXPECT_EQ(st.cancelled, 0);
  EXPECT_EQ(st.total_cycles, 12);
  ASSERT_EQ(st.final_hashes.size(), 4u);
  // Different seeds are different replicas: all hashes distinct.
  std::set<std::uint64_t> uniq(st.final_hashes.begin(),
                               st.final_hashes.end());
  EXPECT_EQ(uniq.size(), 4u);
  // Replica naming is deterministic: <base>/r<i> with seed seeds[i].
  EXPECT_EQ(mgr.info(ids[0]).name, "ens/r0");
  EXPECT_EQ(mgr.info(ids[3]).name, "ens/r3");
  // Each replica matches its own solo run.
  JobSpec solo = ens.base;
  solo.scenario.seed = 22;
  EXPECT_EQ(mgr.info(ids[1]).final_hash, run_solo(solo, tmp.str()).first);
}

TEST(JobsRuntime, MetricNamespacesAreIsolatedPerJob) {
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 2;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  const JobId a = mgr.submit(small_job(1, /*cycles=*/3));
  const JobId b = mgr.submit(small_job(2, /*cycles=*/5));
  mgr.await(a);
  mgr.await(b);

  std::map<std::string, std::int64_t> m;
  for (const auto& kv : mgr.metrics()) m[kv.first] = kv.second;
  // Fleet namespace.
  EXPECT_EQ(m.at("jobs.submitted"), 2);
  EXPECT_EQ(m.at("jobs.completed"), 2);
  EXPECT_EQ(m.at("jobs.mts_cycles"), 8);
  EXPECT_GE(m.at("jobs.quanta"), 8);
  // Per-job namespaces: each tenant's engine counters live under
  // job.<id>.* and count only that tenant's work (2 inner steps/cycle).
  EXPECT_EQ(m.at("job." + std::to_string(a) + ".engine.steps"), 6);
  EXPECT_EQ(m.at("job." + std::to_string(b) + ".engine.steps"), 10);
  EXPECT_EQ(m.at("job." + std::to_string(a) + ".engine.mts_cycles"), 3);
}

TEST(JobsRuntime, OutputPathsAreIsolatedPerJobAndPerManager) {
  // The checkpoint-collision regression: two tenants (or two managers)
  // must never share a checkpoint or trajectory path.
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 2;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);

  JobSpec s1 = small_job(1, /*cycles=*/2);
  s1.checkpoint_every = 2;
  s1.trajectory_every = 2;
  JobSpec s2 = small_job(2, /*cycles=*/2);
  s2.checkpoint_every = 2;
  s2.trajectory_every = 2;
  const JobId a = mgr.submit(s1);
  const JobId b = mgr.submit(s2);
  mgr.await(a);
  mgr.await(b);

  EXPECT_NE(mgr.job_dir(a), mgr.job_dir(b));
  EXPECT_NE(mgr.checkpoint_path(a), mgr.checkpoint_path(b));
  EXPECT_TRUE(std::filesystem::exists(mgr.checkpoint_path(a)));
  EXPECT_TRUE(std::filesystem::exists(mgr.checkpoint_path(b)));
  EXPECT_TRUE(std::filesystem::exists(mgr.trajectory_path(a, 0)));

  // Two managers with defaulted root_dir get distinct fresh roots.
  JobManager m1, m2;
  EXPECT_NE(m1.root_dir(), m2.root_dir());
}

TEST(JobsRuntime, IntrospectionTracksQueueAndProgress) {
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 1;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);
  EXPECT_EQ(mgr.jobs_total(), 0);

  const JobId a = mgr.submit(small_job(1, /*cycles=*/3));
  const JobId b = mgr.submit(small_job(2, /*cycles=*/3));
  EXPECT_EQ(mgr.jobs_total(), 2);
  EXPECT_THROW(mgr.info(99), std::out_of_range);

  mgr.await(a);
  mgr.await(b);
  const auto prog = mgr.progress();
  ASSERT_EQ(prog.size(), 2u);
  EXPECT_EQ(prog[0], (std::pair<JobId, int>{a, 3}));
  EXPECT_EQ(prog[1], (std::pair<JobId, int>{b, 3}));
  EXPECT_TRUE(mgr.queued_jobs().empty());
  EXPECT_TRUE(mgr.running_jobs().empty());
}

TEST(JobsRuntime, BudgetedJobMatchesSoloRunAcrossBudgets) {
  // Lane-count invariance at fleet level: the same spec run with
  // budgets 1, 2 and 3 lands on the same hash as the solo run.
  TempDir tmp;
  const auto [solo_hash, solo_frames] =
      run_solo(small_job(31, /*cycles=*/4), tmp.str());
  RuntimeConfig rc;
  rc.threads = 4;
  rc.executors = 2;
  rc.root_dir = tmp.file("fleet");
  JobManager mgr(rc);
  for (int budget : {1, 2, 3}) {
    JobSpec s = small_job(31, /*cycles=*/4);
    s.thread_budget = budget;
    const JobInfo fi = mgr.await(mgr.submit(s));
    EXPECT_EQ(fi.status, JobStatus::kDone) << fi.error;
    EXPECT_EQ(fi.final_hash, solo_hash) << "budget " << budget;
  }
}

TEST(JobsRuntime, TempRootIsRemovedOnCleanShutdown) {
  // A defaulted root_dir is mkdtemp'd by the manager; a clean run must
  // not leak anton-jobs-* directories into the system temp dir.
  std::string root;
  {
    JobManager mgr;
    root = mgr.root_dir();
    ASSERT_TRUE(std::filesystem::exists(root));
    const JobId id = mgr.submit(small_job(1, /*cycles=*/2));
    EXPECT_EQ(mgr.await(id).status, JobStatus::kDone);
  }
  EXPECT_FALSE(std::filesystem::exists(root)) << root;
}

TEST(JobsRuntime, TempRootIsKeptWhenAJobFailed) {
  // Failed jobs leave checkpoints/partial trajectories worth inspecting;
  // the destructor must keep the temp root (and say so on stderr).
  std::string root;
  {
    RuntimeConfig rc;
    rc.threads = 2;
    rc.executors = 1;
    rc.max_restarts = 0;  // first kill -> kFailed
    JobManager mgr(rc);
    root = mgr.root_dir();
    const JobId id = mgr.submit(small_job(2, /*cycles=*/50));
    mgr.kill(id);
    EXPECT_EQ(mgr.await(id).status, JobStatus::kFailed);
  }
  EXPECT_TRUE(std::filesystem::exists(root)) << root;
  std::filesystem::remove_all(root);  // don't leak from the test itself
}

TEST(JobsRuntime, ConfiguredRootIsNeverRemoved) {
  // A caller-provided root_dir belongs to the caller, clean run or not.
  TempDir tmp;
  RuntimeConfig rc;
  rc.threads = 2;
  rc.executors = 1;
  rc.root_dir = tmp.file("fleet");
  {
    JobManager mgr(rc);
    const JobId id = mgr.submit(small_job(3, /*cycles=*/2));
    EXPECT_EQ(mgr.await(id).status, JobStatus::kDone);
  }
  EXPECT_TRUE(std::filesystem::exists(rc.root_dir));
}
