// The engines: the paper's Section 4 / 5.2 headline properties.
//
//  * Determinism: repeated runs are bitwise identical.
//  * Parallel invariance: the trajectory is bitwise identical on any
//    node/subbox decomposition.
//  * Exact reversibility: without constraints or thermostat, negating
//    velocities retraces the trajectory bit-for-bit.
//  * Accuracy: Anton-engine forces agree with the double-precision
//    reference to ~1e-4 relative; NVE energy is conserved.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/analysis.hpp"
#include "constraints/shake.hpp"
#include "core/anton_engine.hpp"
#include "core/reference_engine.hpp"
#include "io/io.hpp"
#include "pairlist/cell_grid.hpp"
#include "pairlist/exclusion_table.hpp"
#include "sysgen/systems.hpp"

using anton::System;
using anton::Vec3d;
using anton::Vec3i;
using anton::core::AntonConfig;
using anton::core::AntonEngine;
using anton::core::ReferenceEngine;
using anton::core::SimParams;
namespace sg = anton::sysgen;

namespace {

SimParams small_params(double cutoff = 7.0, int mesh = 16) {
  SimParams p;
  p.cutoff = cutoff;
  p.mesh = mesh;
  p.dt = 2.5;
  p.long_range_every = 2;
  return p;
}

AntonConfig small_config(const Vec3i& nodes = {2, 2, 2},
                         const Vec3i& subdiv = {1, 1, 1}) {
  AntonConfig c;
  c.sim = small_params();
  c.node_grid = nodes;
  c.subbox_div = subdiv;
  c.migration_interval = 4;
  c.import_margin = 3.0;
  return c;
}

System small_system(bool constrained = true) {
  // ~230 atoms: 70 waters + a 20-atom peptide in a 14 A box.
  return sg::build_test_system(70, 14.0, 1234, constrained, 20);
}

}  // namespace

TEST(AntonEngine, PairSetMatchesBruteForce) {
  // The NT traversal must compute exactly the non-excluded pairs within
  // the cutoff -- compare interaction counts against an O(N^2) sweep.
  const System sys = small_system();
  AntonEngine eng(sys, small_config());
  eng.reset_workload();
  eng.run_cycles(1);  // two inner steps of counters
  const auto& wl = eng.workload();
  std::int64_t engine_pairs = 0;
  for (const auto& nc : wl.nodes) engine_pairs += nc.interactions;
  engine_pairs /= wl.steps_accumulated;

  // Brute force on the engine's positions.
  const auto pos = eng.positions();
  anton::pairlist::ExclusionTable excl(sys.top);
  std::int64_t expect = 0;
  for (int i = 0; i < sys.top.natoms; ++i)
    for (int j = i + 1; j < sys.top.natoms; ++j) {
      if (sys.box.min_image(pos[i], pos[j]).norm2() >
          eng.config().sim.cutoff * eng.config().sim.cutoff)
        continue;
      if (excl.excluded(i, j)) continue;
      ++expect;
    }
  // Counts per step can differ by a few pairs exactly at the cutoff
  // boundary (lattice rounding) and because positions move over the two
  // steps; allow a small relative slack.
  EXPECT_NEAR(static_cast<double>(engine_pairs), static_cast<double>(expect),
              0.02 * expect + 5.0);
}

TEST(AntonEngine, DeterministicAcrossRuns) {
  const System sys = small_system();
  AntonEngine a(sys, small_config());
  AntonEngine b(sys, small_config());
  a.run_cycles(10);
  b.run_cycles(10);
  EXPECT_EQ(a.state_hash(), b.state_hash());
}

struct DecompCase {
  Vec3i nodes;
  Vec3i subdiv;
  int migration;
};

class ParallelInvariance : public ::testing::TestWithParam<DecompCase> {};

TEST_P(ParallelInvariance, TrajectoryIsBitwiseIdentical) {
  // Section 4: "a given simulation will evolve in exactly the same way on
  // any single- or multi-node Anton configuration."
  const System sys = small_system();
  AntonEngine base(sys, small_config({1, 1, 1}, {1, 1, 1}));
  const DecompCase c = GetParam();
  AntonConfig cfg = small_config(c.nodes, c.subdiv);
  cfg.migration_interval = c.migration;
  AntonEngine other(sys, cfg);
  base.run_cycles(8);
  other.run_cycles(8);
  EXPECT_EQ(base.state_hash(), other.state_hash());
  // And not just the hash: every lattice coordinate.
  for (int i = 0; i < sys.top.natoms; ++i) {
    ASSERT_EQ(base.lattice_positions()[i], other.lattice_positions()[i]);
    ASSERT_EQ(base.fixed_velocities()[i], other.fixed_velocities()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, ParallelInvariance,
    ::testing::Values(DecompCase{{2, 2, 2}, {1, 1, 1}, 4},
                      DecompCase{{1, 1, 1}, {2, 2, 2}, 4},
                      DecompCase{{2, 2, 2}, {2, 2, 2}, 4},
                      DecompCase{{4, 2, 1}, {1, 1, 2}, 4},
                      DecompCase{{2, 1, 1}, {1, 2, 2}, 4},
                      // Migration cadence must not change the physics.
                      DecompCase{{2, 2, 2}, {1, 1, 1}, 2},
                      DecompCase{{2, 2, 2}, {1, 1, 1}, 1000000}));

struct ThreadCase {
  int nthreads;
};

class ThreadInvariance : public ::testing::TestWithParam<ThreadCase> {};

TEST_P(ThreadInvariance, StateHashIdenticalAcrossThreadCounts) {
  // Section 4 extended to intra-step task parallelism: per-thread force
  // shards reduced with wrapping (associative) adds make the trajectory
  // bitwise invariant to the thread count. Asserted on two generated
  // systems: waters + peptide with constraints, and pure water.
  const System systems[] = {
      small_system(),
      sg::build_water_system(220, 14.0, sg::WaterModel::k3Site, 77)};
  for (const System& sys : systems) {
    AntonConfig base_cfg = small_config();
    base_cfg.nthreads = 1;
    AntonEngine base(sys, base_cfg);
    base.run_cycles(20);

    AntonConfig cfg = small_config();
    cfg.nthreads = GetParam().nthreads;
    AntonEngine threaded(sys, cfg);
    threaded.run_cycles(20);

    EXPECT_EQ(base.state_hash(), threaded.state_hash())
        << "nthreads=" << cfg.nthreads;
    // And not just the hash: every lattice coordinate and velocity.
    for (int i = 0; i < sys.top.natoms; ++i) {
      ASSERT_EQ(base.lattice_positions()[i], threaded.lattice_positions()[i])
          << "atom " << i;
      ASSERT_EQ(base.fixed_velocities()[i], threaded.fixed_velocities()[i])
          << "atom " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ThreadInvariance,
                         ::testing::Values(ThreadCase{2}, ThreadCase{4},
                                           ThreadCase{8}));

TEST(AntonEngine, ThreadCountAndDecompositionInvarianceCompose) {
  // Varying both axes at once -- node/subbox decomposition AND thread
  // count -- must still land on the single-node single-thread hash.
  const System sys = small_system();
  AntonEngine base(sys, small_config({1, 1, 1}, {1, 1, 1}));
  AntonConfig cfg = small_config({2, 2, 2}, {2, 2, 2});
  cfg.nthreads = 4;
  AntonEngine other(sys, cfg);
  base.run_cycles(8);
  other.run_cycles(8);
  EXPECT_EQ(base.state_hash(), other.state_hash());
}

TEST(AntonEngine, ThreadedEnergiesAndForcesBitwiseMatchSingleThread) {
  // The with_energy path shards the energy and virial accumulators too;
  // the reduced fixed-point sums must be bitwise equal, so the physical
  // readouts are exactly equal doubles.
  const System sys = small_system();
  AntonConfig cfg1 = small_config();
  cfg1.nthreads = 1;
  AntonConfig cfg4 = small_config();
  cfg4.nthreads = 4;
  AntonEngine a(sys, cfg1);
  AntonEngine b(sys, cfg4);
  a.run_cycles(3);
  b.run_cycles(3);
  const auto ea = a.measure_energy();
  const auto eb = b.measure_energy();
  EXPECT_EQ(ea.bonded, eb.bonded);
  EXPECT_EQ(ea.lj, eb.lj);
  EXPECT_EQ(ea.coul_direct, eb.coul_direct);
  EXPECT_EQ(ea.coul_recip, eb.coul_recip);
  EXPECT_EQ(ea.correction, eb.correction);
  EXPECT_EQ(ea.kinetic, eb.kinetic);
  const auto pa = a.measure_pressure();
  const auto pb = b.measure_pressure();
  EXPECT_EQ(pa.virial_pair, pb.virial_pair);
  EXPECT_EQ(pa.virial_bonded, pb.virial_bonded);
  const auto fa = a.compute_forces_now();
  const auto fb = b.compute_forces_now();
  for (int i = 0; i < sys.top.natoms; ++i) {
    ASSERT_EQ(fa[i].x, fb[i].x) << "atom " << i;
    ASSERT_EQ(fa[i].y, fb[i].y) << "atom " << i;
    ASSERT_EQ(fa[i].z, fb[i].z) << "atom " << i;
  }
}

TEST(AntonEngine, BitwiseTimeReversibleWithFourThreads) {
  // Reversibility must survive threading: the threaded force computation
  // produces the same quantized forces, and the integrator is untouched.
  const System sys = small_system(/*constrained=*/false);
  AntonConfig cfg = small_config();
  cfg.nthreads = 4;
  AntonEngine eng(sys, cfg);
  const auto pos0 = eng.lattice_positions();
  const auto vel0 = eng.fixed_velocities();

  eng.run_cycles(25);
  eng.negate_velocities();
  eng.run_cycles(25);
  eng.negate_velocities();

  for (int i = 0; i < sys.top.natoms; ++i) {
    ASSERT_EQ(eng.lattice_positions()[i], pos0[i]) << "atom " << i;
    ASSERT_EQ(eng.fixed_velocities()[i], vel0[i]) << "atom " << i;
  }
}

TEST(AntonEngine, BitwiseTimeReversible) {
  // Section 4: run forward, negate velocities, run forward again, recover
  // the initial state bit-for-bit. Constraints and thermostat off.
  const System sys = small_system(/*constrained=*/false);
  AntonConfig cfg = small_config();
  AntonEngine eng(sys, cfg);
  const auto pos0 = eng.lattice_positions();
  const auto vel0 = eng.fixed_velocities();

  eng.run_cycles(25);
  eng.negate_velocities();
  eng.run_cycles(25);
  eng.negate_velocities();

  for (int i = 0; i < sys.top.natoms; ++i) {
    ASSERT_EQ(eng.lattice_positions()[i], pos0[i]) << "atom " << i;
    ASSERT_EQ(eng.fixed_velocities()[i], vel0[i]) << "atom " << i;
  }
}

TEST(AntonEngine, ReversibilityBrokenGracefullyByThermostat) {
  // With the thermostat on, reversal is NOT expected to be exact -- the
  // paper's reversibility claim is specifically for unthermostatted,
  // unconstrained runs. Verify the engine still runs and diverges.
  System sys = small_system(false);
  AntonConfig cfg = small_config();
  cfg.sim.thermostat = true;
  AntonEngine eng(sys, cfg);
  const auto pos0 = eng.lattice_positions();
  eng.run_cycles(10);
  eng.negate_velocities();
  eng.run_cycles(10);
  int same = 0;
  for (int i = 0; i < sys.top.natoms; ++i)
    if (eng.lattice_positions()[i] == pos0[i]) ++same;
  EXPECT_LT(same, sys.top.natoms);
}

TEST(AntonEngine, ForcesMatchReferenceEngine) {
  // "Numerical force error" (Table 4): same parameters, fixed point vs
  // IEEE double. The paper reports ~1e-5; our emulation's table precision
  // gives the same order.
  const System sys = small_system();
  AntonEngine anton(sys, small_config());
  ReferenceEngine ref(sys, small_params());
  const auto f_anton = anton.compute_forces_now();
  const auto f_ref = ref.compute_forces_now();
  const double err = anton::analysis::rms_force_error(f_anton, f_ref);
  EXPECT_LT(err, 2e-3) << "numerical force error " << err;
  EXPECT_GT(err, 0.0);  // the paths really are different arithmetic
}

TEST(AntonEngine, EnergiesMatchReferenceEngine) {
  const System sys = small_system();
  AntonEngine anton(sys, small_config());
  ReferenceEngine ref(sys, small_params());
  const auto ea = anton.measure_energy();
  const auto er = ref.measure_energy();
  EXPECT_NEAR(ea.bonded, er.bonded, 1e-3 * std::fabs(er.bonded) + 0.05);
  EXPECT_NEAR(ea.lj, er.lj, 2e-3 * std::fabs(er.lj) + 0.1);
  EXPECT_NEAR(ea.coul_direct, er.coul_direct,
              1e-3 * std::fabs(er.coul_direct) + 0.1);
  EXPECT_NEAR(ea.coul_recip, er.coul_recip,
              1e-3 * std::fabs(er.coul_recip) + 0.1);
  EXPECT_NEAR(ea.coul_self, er.coul_self, 1e-9);
  EXPECT_NEAR(ea.correction, er.correction,
              1e-3 * std::fabs(er.correction) + 0.1);
  EXPECT_NEAR(ea.kinetic, er.kinetic, 1e-6 * er.kinetic + 1e-4);
}

TEST(AntonEngine, EnergyConservationNve) {
  // NVE run: after the synthetic system's initial strain thermalizes, the
  // total energy must stay flat.
  const System sys = small_system();
  AntonEngine eng(sys, small_config());
  eng.run_cycles(30);  // settle the builder's residual strain
  const double e0 = eng.measure_energy().total();
  const double ke = eng.measure_energy().kinetic;
  for (int block = 1; block <= 10; ++block) eng.run_cycles(5);
  const double e1 = eng.measure_energy().total();
  // 100 steps: |dE| well under 2% of the kinetic energy scale.
  EXPECT_LT(std::fabs(e1 - e0), 0.02 * ke + 2.0)
      << "E0=" << e0 << " E1=" << e1 << " KE=" << ke;
}

TEST(AntonEngine, ThermostatPullsTemperature) {
  System sys = small_system();
  // Heat the initial velocities to 400 K equivalent.
  for (auto& v : sys.velocities) v *= std::sqrt(400.0 / 300.0);
  AntonConfig cfg = small_config();
  cfg.sim.thermostat = true;
  cfg.sim.target_temperature = 300.0;
  cfg.sim.berendsen_tau = 25.0;  // tight coupling for the test
  AntonEngine eng(sys, cfg);
  eng.run_cycles(150);  // long enough for the builder strain to bleed off
  const auto e = eng.measure_energy();
  EXPECT_NEAR(e.temperature, 300.0, 60.0);
}

TEST(AntonEngine, ConstraintsHoldDuringDynamics) {
  const System sys = small_system();
  AntonEngine eng(sys, small_config());
  eng.run_cycles(10);
  const auto pos = eng.positions();
  EXPECT_LT(anton::constraints::max_violation(sys.top.constraints, pos,
                                              sys.box),
            1e-6);
}

TEST(AntonEngine, MigrationKeepsAssignmentsTight) {
  const System sys = small_system();
  AntonConfig cfg = small_config({2, 2, 2}, {2, 2, 2});
  AntonEngine eng(sys, cfg);
  eng.run_cycles(12);
  EXPECT_LT(eng.assignment_slack(), cfg.import_margin);
}

TEST(AntonEngine, CheckpointRoundTripResumesBitwise) {
  const System sys = small_system();
  AntonEngine a(sys, small_config());
  a.run_cycles(5);
  anton::io::Checkpoint ck;
  ck.step = a.steps_done();
  ck.positions.assign(a.lattice_positions().begin(),
                      a.lattice_positions().end());
  ck.velocities.assign(a.fixed_velocities().begin(),
                       a.fixed_velocities().end());
  const std::string path = "/tmp/anton_engine_ckpt.bin";
  ck.save(path);
  // Continue the original.
  a.run_cycles(5);

  // Restore into a fresh engine via physical units? No -- bit-exact
  // restore requires the raw state; rebuild from the checkpoint through a
  // fresh System then overwrite. The public API path: construct with the
  // same System, then verify the checkpoint data matches after replaying.
  AntonEngine b(sys, small_config());
  b.run_cycles(5);
  const anton::io::Checkpoint back = anton::io::Checkpoint::load(path);
  for (int i = 0; i < sys.top.natoms; ++i) {
    EXPECT_EQ(back.positions[i], b.lattice_positions()[i]);
    EXPECT_EQ(back.velocities[i], b.fixed_velocities()[i]);
  }
  std::remove(path.c_str());
}

TEST(AntonEngine, WaterOnlyHasNoBondWork) {
  const System sys = sg::build_water_system(300, 14.5,
                                            sg::WaterModel::k3Site, 5);
  AntonEngine eng(sys, small_config());
  eng.reset_workload();
  eng.run_cycles(1);
  const auto mx = eng.workload().max_node();
  EXPECT_EQ(mx.bond_terms, 0);  // Section 5.1's water-vs-protein effect
  EXPECT_GT(mx.constraint_bonds, 0);
}

TEST(AntonEngine, RequiresCubicBox) {
  System sys = small_system();
  sys.box = anton::PeriodicBox(Vec3d{10, 12, 14});
  EXPECT_THROW(AntonEngine(sys, small_config()), std::invalid_argument);
}

TEST(ReferenceEngine, EnergyConservationNve) {
  const System sys = small_system();
  ReferenceEngine eng(sys, small_params());
  eng.run_cycles(15);  // settle the builder's residual strain
  const double e0 = eng.measure_energy().total();
  const double ke = eng.measure_energy().kinetic;
  eng.run_cycles(50);
  const double e1 = eng.measure_energy().total();
  EXPECT_LT(std::fabs(e1 - e0), 0.02 * ke + 2.0)
      << "E0=" << e0 << " E1=" << e1 << " KE=" << ke;
}

TEST(ReferenceEngine, PhaseTimersAccumulate) {
  const System sys = small_system();
  ReferenceEngine eng(sys, small_params());
  eng.reset_phase_times();
  eng.run_cycles(2);
  const auto& t = eng.phase_times();
  EXPECT_GT(t[anton::core::Phase::kRangeLimited], 0.0);
  EXPECT_GT(t[anton::core::Phase::kFft], 0.0);
  EXPECT_GT(t[anton::core::Phase::kMeshInterpolation], 0.0);
  EXPECT_GT(t[anton::core::Phase::kIntegration], 0.0);
  EXPECT_GT(t.total(), 0.0);
}

TEST(Engines, TrajectoriesTrackEachOtherBriefly) {
  // Independent implementations started from identical conditions stay
  // close for a short horizon (chaos separates them later) -- the spirit
  // of the Figure 6 cross-validation.
  const System sys = small_system();
  AntonEngine anton(sys, small_config());
  ReferenceEngine ref(sys, small_params());
  anton.run_cycles(5);
  ref.run_cycles(5);
  const auto pa = anton.positions();
  const auto& pr = ref.positions();
  double worst = 0.0;
  for (int i = 0; i < sys.top.natoms; ++i) {
    worst = std::max(worst, sys.box.min_image(pa[i], pr[i]).norm());
  }
  EXPECT_LT(worst, 1e-2);  // 10 steps in, still within 0.01 A
}

TEST(ReferenceEngine, SpmeModeAgreesWithGseMode) {
  // The two mesh-Ewald implementations are wholly independent (B-spline
  // vs Gaussian); their total forces must agree to mesh accuracy. This is
  // a strong cross-validation of both.
  const System sys = small_system();
  SimParams gse_p = small_params();
  SimParams spme_p = gse_p;
  spme_p.long_range = anton::core::LongRangeMethod::kSpme;
  spme_p.spme_order = 6;
  ReferenceEngine a(sys, gse_p);
  ReferenceEngine b(sys, spme_p);
  const double err = anton::analysis::rms_force_error(
      a.compute_forces_now(), b.compute_forces_now());
  EXPECT_LT(err, 5e-3) << "GSE-vs-SPME force mismatch " << err;
}

TEST(ReferenceEngine, SpmeModeConservesEnergy) {
  const System sys = small_system();
  SimParams p = small_params();
  p.long_range = anton::core::LongRangeMethod::kSpme;
  ReferenceEngine eng(sys, p);
  eng.run_cycles(15);
  const double e0 = eng.measure_energy().total();
  const double ke = eng.measure_energy().kinetic;
  eng.run_cycles(40);
  const double e1 = eng.measure_energy().total();
  EXPECT_LT(std::fabs(e1 - e0), 0.02 * ke + 2.0);
}
