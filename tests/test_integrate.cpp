// Kinetic energy, thermostat, and MTS schedule helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "integrate/kinetic.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using anton::Vec3d;
namespace in = anton::integrate;

TEST(Kinetic, SingleParticle) {
  std::vector<Vec3d> v{{0.01, 0, 0}};
  std::vector<double> m{10.0};
  // KE = 0.5 * 10 * 1e-4 amu A^2/fs^2 -> kcal/mol.
  const double expect = 0.5 * 10.0 * 1e-4 / anton::units::kForceToAccel;
  EXPECT_NEAR(in::kinetic_energy(v, m), expect, 1e-12);
}

TEST(Kinetic, TemperatureInverse) {
  // T = 2 KE / (dof kB): round trip.
  const double ke = 120.0;
  const double dof = 300.0;
  const double T = in::temperature(ke, dof);
  EXPECT_NEAR(2.0 * ke / (dof * anton::units::kB), T, 1e-12);
  EXPECT_EQ(in::temperature(ke, 0.0), 0.0);
}

TEST(Kinetic, MaxwellBoltzmannSampleTemperature) {
  // Velocities drawn at 300 K must measure ~300 K.
  anton::Xoshiro256 rng(12);
  const int n = 20000;
  std::vector<Vec3d> v(n);
  std::vector<double> m(n, 18.0);
  const double sigma =
      std::sqrt(anton::units::kB * 300.0 * anton::units::kForceToAccel / 18.0);
  for (auto& vi : v)
    vi = {sigma * rng.normal(), sigma * rng.normal(), sigma * rng.normal()};
  const double T = in::temperature(in::kinetic_energy(v, m), 3.0 * n);
  EXPECT_NEAR(T, 300.0, 5.0);
}

TEST(Berendsen, ScalesTowardTarget) {
  // Too cold -> lambda > 1; too hot -> lambda < 1; at target -> 1.
  EXPECT_GT(in::berendsen_lambda(250.0, 300.0, 2.5, 1000.0), 1.0);
  EXPECT_LT(in::berendsen_lambda(350.0, 300.0, 2.5, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(in::berendsen_lambda(300.0, 300.0, 2.5, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(in::berendsen_lambda(0.0, 300.0, 2.5, 1000.0), 1.0);
}

TEST(Berendsen, WeakCouplingLimit) {
  // Large tau barely changes velocities in one step.
  const double l = in::berendsen_lambda(200.0, 300.0, 2.5, 1e6);
  EXPECT_NEAR(l, 1.0, 1e-5);
}

TEST(Mts, Schedule) {
  in::MtsSchedule s{2};
  EXPECT_TRUE(s.is_long_step(0));
  EXPECT_FALSE(s.is_long_step(1));
  EXPECT_TRUE(s.is_long_step(2));
  in::MtsSchedule every{1};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(every.is_long_step(i));
}

TEST(Com, DriftRemoval) {
  anton::Xoshiro256 rng(13);
  const int n = 100;
  std::vector<Vec3d> v(n);
  std::vector<double> m(n);
  for (int i = 0; i < n; ++i) {
    v[i] = {rng.uniform(-1, 1) + 0.5, rng.uniform(-1, 1), rng.uniform(-1, 1)};
    m[i] = rng.uniform(1.0, 20.0);
  }
  in::remove_com_drift(v, m);
  Vec3d p{0, 0, 0};
  for (int i = 0; i < n; ++i) p += v[i] * m[i];
  EXPECT_NEAR(p.norm(), 0.0, 1e-10);
}
