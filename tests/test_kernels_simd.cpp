// SoA pair-block and batched mesh kernels against their scalar
// references: the bitwise-identity contract the engines rely on (the
// stepping path runs the batched kernels; the golden fixtures were
// recorded through the scalar ones).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "ewald/erfc_table.hpp"
#include "ewald/gse.hpp"
#include "fixed/fixed.hpp"
#include "fixed/lattice.hpp"
#include "htis/pair_kernels.hpp"
#include "pairlist/exclusion_table.hpp"
#include "parallel/node_program.hpp"
#include "sysgen/systems.hpp"
#include "util/rng.hpp"

using anton::System;
using anton::Vec3d;
using anton::Vec3i;
using anton::Vec3l;
namespace fixedp = anton::fixed;
namespace par = anton::parallel;

namespace {

/// NodeProgram context over a sysgen system, mirroring the engine setup.
struct Ctx {
  System sys;
  anton::fixed::PositionLattice lat;
  anton::ewald::GseParams gse_params;
  anton::htis::PairKernels kernels;
  anton::pairlist::ExclusionTable excl;
  std::unique_ptr<anton::ewald::Gse> gse;
  par::NodeProgram np;
  std::vector<Vec3i> lpos;

  Ctx(System s, double cutoff, int mesh)
      : sys(std::move(s)), lat(sys.box),
        gse_params(anton::ewald::GseParams::for_cutoff(cutoff, mesh)),
        excl(sys.top) {
    anton::htis::PairKernelParams tp;
    tp.cutoff = cutoff;
    tp.beta = gse_params.beta;
    tp.sigma_s = gse_params.sigma_s;
    tp.rs = gse_params.rs;
    kernels = anton::htis::PairKernels(tp, sys.top.lj_types);
    gse = std::make_unique<anton::ewald::Gse>(sys.box, gse_params);
    np.top = &sys.top;
    np.box = &sys.box;
    np.lat = &lat;
    np.kernels = &kernels;
    np.excl = &excl;
    np.gse = gse.get();
    np.gse_params = gse_params;
    const double cut_lat = cutoff / lat.lsb().x;
    np.r2_limit_lattice = static_cast<std::uint64_t>(cut_lat * cut_lat);
    np.lat2_to_phys2 = lat.lsb().x * lat.lsb().x;
    np.have_molecules = !sys.top.molecule.empty();
    lpos.resize(sys.positions.size());
    for (std::size_t i = 0; i < lpos.size(); ++i)
      lpos[i] = lat.to_lattice(sys.positions[i]);
  }
};

par::BinSoA pack(const Ctx& c, const std::vector<std::int32_t>& atoms) {
  par::BinSoA s;
  s.reserve(atoms.size());
  for (std::int32_t a : atoms)
    s.push_atom(c.sys.top, a, c.lpos[static_cast<std::size_t>(a)]);
  return s;
}

/// Scalar reference: the pre-SoA per-pair loop, recording hits in loop
/// order (the order eval_pair_block must reproduce exactly).
void scalar_block(const Ctx& c, const std::vector<std::int32_t>& tower,
                  const std::vector<std::int32_t>& plate, bool same_bin,
                  std::vector<par::PairHit>& hits,
                  par::PairBlockCounters& pc) {
  hits.clear();
  pc = {};
  for (std::size_t a = 0; a < tower.size(); ++a) {
    const std::int32_t i0 = tower[a];
    const Vec3i pi = c.lpos[static_cast<std::size_t>(i0)];
    for (std::size_t b = same_bin ? a + 1 : 0; b < plate.size(); ++b) {
      const std::int32_t j0 = plate[b];
      ++pc.considered;
      const par::PairResult pr = par::eval_pair(
          c.np, i0, j0, pi, c.lpos[static_cast<std::size_t>(j0)], false);
      if (pr.status == par::PairStatus::kFailedMatch) continue;
      ++pc.queued;
      if (pr.status != par::PairStatus::kComputed) continue;
      ++pc.computed;
      hits.push_back({pr.lo, pr.hi, pr.f});
    }
  }
}

void expect_block_matches(const Ctx& c,
                          const std::vector<std::int32_t>& tower,
                          const std::vector<std::int32_t>& plate,
                          bool same_bin) {
  std::vector<par::PairHit> ref;
  par::PairBlockCounters ref_pc;
  scalar_block(c, tower, plate, same_bin, ref, ref_pc);

  par::PairBlockScratch scr;
  par::PairBlockCounters pc;
  par::eval_pair_block(c.np, pack(c, tower), pack(c, plate), same_bin, scr,
                       pc);
  EXPECT_EQ(pc.considered, ref_pc.considered);
  EXPECT_EQ(pc.queued, ref_pc.queued);
  EXPECT_EQ(pc.computed, ref_pc.computed);
  ASSERT_EQ(scr.hits.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(scr.hits[i].lo, ref[i].lo) << "hit " << i;
    EXPECT_EQ(scr.hits[i].hi, ref[i].hi) << "hit " << i;
    EXPECT_EQ(scr.hits[i].f.x, ref[i].f.x) << "hit " << i;
    EXPECT_EQ(scr.hits[i].f.y, ref[i].f.y) << "hit " << i;
    EXPECT_EQ(scr.hits[i].f.z, ref[i].f.z) << "hit " << i;
  }
}

std::vector<std::int32_t> all_atoms(const Ctx& c) {
  std::vector<std::int32_t> v(c.sys.positions.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int32_t>(i);
  return v;
}

}  // namespace

TEST(KernelsSimd, BinSoAPackRoundTrip) {
  Ctx c(anton::sysgen::build_test_system(30, 10.0, 5, true, 8), 4.0, 16);
  const std::vector<std::int32_t> atoms = all_atoms(c);
  const par::BinSoA s = pack(c, atoms);
  ASSERT_EQ(s.size(), atoms.size());
  for (std::size_t k = 0; k < atoms.size(); ++k) {
    const std::int32_t a = atoms[k];
    EXPECT_EQ(s.id[k], a);
    EXPECT_EQ(s.x[k], c.lpos[static_cast<std::size_t>(a)].x);
    EXPECT_EQ(s.y[k], c.lpos[static_cast<std::size_t>(a)].y);
    EXPECT_EQ(s.z[k], c.lpos[static_cast<std::size_t>(a)].z);
    EXPECT_EQ(s.charge[k], c.sys.top.charge[static_cast<std::size_t>(a)]);
    EXPECT_EQ(s.type[k], c.sys.top.type[static_cast<std::size_t>(a)]);
  }
}

TEST(KernelsSimd, PairBlockMatchesScalarSameBin) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Ctx c(anton::sysgen::build_test_system(60, 12.0, seed, true, 10), 5.0,
          16);
    expect_block_matches(c, all_atoms(c), all_atoms(c), true);
  }
}

TEST(KernelsSimd, PairBlockMatchesScalarSplitBins) {
  Ctx c(anton::sysgen::build_test_system(80, 12.0, 4, true, 12), 5.0, 16);
  // A non-spatial random split: tower/plate bins need no geometric
  // coherence for the identity to hold.
  anton::Xoshiro256 rng(21);
  std::vector<std::int32_t> tower, plate;
  for (std::int32_t a : all_atoms(c))
    (rng() & 1 ? tower : plate).push_back(a);
  expect_block_matches(c, tower, plate, false);
  expect_block_matches(c, plate, tower, false);
}

TEST(KernelsSimd, PairBlockWrapsAcrossBoundary) {
  // Cluster atoms across the box corner so minimum-image wrap (int32
  // two's-complement subtraction) is exercised in the filter lanes.
  System sys = anton::sysgen::build_test_system(50, 10.0, 6, true, 0);
  anton::Xoshiro256 rng(22);
  for (auto& r : sys.positions) {
    r = {4.9 + rng.uniform(-0.6, 0.6), -4.9 + rng.uniform(-0.6, 0.6),
         4.9 + rng.uniform(-0.6, 0.6)};
    r = sys.box.wrap(r);
  }
  Ctx c(std::move(sys), 4.0, 16);
  expect_block_matches(c, all_atoms(c), all_atoms(c), true);
}

TEST(KernelsSimd, SpreadBatchMatchesScalar) {
  Ctx c(anton::sysgen::build_test_system(40, 10.0, 7, true, 6), 4.0, 16);
  par::MeshScratch ms;
  for (std::size_t i = 0; i < c.sys.positions.size(); ++i) {
    const double qi = c.sys.top.charge[i];
    std::vector<std::pair<std::size_t, std::int64_t>> ref, got;
    c.gse->for_each_mesh_point(
        c.sys.positions[i], [&](std::size_t idx, const Vec3d&, double r2) {
          ref.emplace_back(idx,
                           fixedp::quantize(qi * c.kernels.eval_spread(r2),
                                            par::kMeshChargeScale));
        });
    par::spread_atom(c.np, qi, c.sys.positions[i], ms,
                     [&](std::size_t idx, std::int64_t dq) {
                       got.emplace_back(idx, dq);
                     });
    ASSERT_EQ(got, ref) << "atom " << i;
  }
}

TEST(KernelsSimd, InterpolateBatchMatchesScalar) {
  Ctx c(anton::sysgen::build_test_system(40, 10.0, 8, true, 6), 4.0, 16);
  // Deterministic pseudo-potential on the mesh.
  std::vector<std::int64_t> phi_q(c.gse->mesh_total());
  anton::Xoshiro256 rng(23);
  for (auto& v : phi_q)
    v = static_cast<std::int64_t>(rng()) >> 24;  // O(2^39), physical-ish
  const double h3 = std::pow(c.gse->mesh_spacing(), 3);
  const double inv_s2 =
      1.0 / (c.gse_params.sigma_s * c.gse_params.sigma_s);
  par::MeshScratch ms;
  for (std::size_t i = 0; i < c.sys.positions.size(); ++i) {
    const double pref = c.sys.top.charge[i] * h3 * inv_s2;
    Vec3l ref{0, 0, 0};
    c.gse->for_each_mesh_point(
        c.sys.positions[i],
        [&](std::size_t idx, const Vec3d& d, double r2) {
          const double phi =
              static_cast<double>(phi_q[idx]) / par::kPhiScale;
          const double cf = pref * phi * c.kernels.eval_interp(r2);
          ref.x = fixedp::wrap_add(
              ref.x, fixedp::quantize(cf * d.x, fixedp::kForceScale));
          ref.y = fixedp::wrap_add(
              ref.y, fixedp::quantize(cf * d.y, fixedp::kForceScale));
          ref.z = fixedp::wrap_add(
              ref.z, fixedp::quantize(cf * d.z, fixedp::kForceScale));
        });
    std::int64_t ops = 0;
    const Vec3l got = par::interpolate_atom(
        c.np, c.sys.top.charge[i], c.sys.positions[i], ms,
        [&](std::size_t idx) { return phi_q[idx]; }, &ops);
    EXPECT_EQ(got.x, ref.x) << "atom " << i;
    EXPECT_EQ(got.y, ref.y) << "atom " << i;
    EXPECT_EQ(got.z, ref.z) << "atom " << i;
    EXPECT_EQ(ops, static_cast<std::int64_t>(ms.pts.size()));
  }
}

TEST(ErfcTableSpline, TracksLibmTightly) {
  const anton::ewald::ErfcTable t(4.0);
  // The cubic Hermite fit at dx = 1/256 is accurate to ~1e-11.
  EXPECT_LT(t.max_error(), 1e-10);
  for (int i = 0; i <= 1000; ++i) {
    const double x = 4.0 * i / 1000.0 * 0.999;
    EXPECT_NEAR(t.value(x), std::erfc(x), 1e-10) << "x=" << x;
  }
}

TEST(ErfcTableSpline, FallsBackOutsideDomain) {
  const anton::ewald::ErfcTable t(2.0);
  // volatile blocks constant folding: gcc folds erfc(literal) with
  // correct rounding, which can differ from runtime libm by an ulp --
  // the fallback must match the RUNTIME call exactly.
  volatile double lo = -0.5, hi = 3.0;
  EXPECT_EQ(t.value(-0.5), std::erfc(lo));  // exact: std::erfc fallback
  EXPECT_EQ(t.value(3.0), std::erfc(hi));
  EXPECT_TRUE(anton::ewald::ErfcTable().empty());
  EXPECT_FALSE(t.empty());
}
