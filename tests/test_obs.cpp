// The observability layer's contract, from the outside in:
//
//  * Zero cost disabled: the NullSink span is a compile-time empty no-op,
//    and an engine with no tracer/metrics attached takes no obs branches
//    that could change behavior.
//  * Zero perturbation enabled: the trajectory with tracing AND metrics
//    attached is bitwise identical to a bare run, at any thread count --
//    observation writes only to observer-owned memory.
//  * Deterministic spans: the span sequence (names, tracks, nesting) is
//    identical for 1 and 4 threads; only timestamps differ.
//  * Structure: every MTS cycle span contains its k step spans plus the
//    long-range phases; every step span contains the short-range phases.
//  * Metrics = workload: per-phase counter totals equal the engine's
//    WorkloadProfile aggregates -- same shards, same flush discipline.
//  * Cross-validation: the tracer-captured counters fed through
//    machine::workload_from_profile reproduce AntonEngine::workload()'s
//    StepWorkload exactly, so the perf model sees the measured machine.
//  * Export: chrome://tracing JSON round-trips through a parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/anton_engine.hpp"
#include "core/reference_engine.hpp"
#include "fixed/lattice.hpp"
#include "machine/config.hpp"
#include "machine/workload_model.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_xval.hpp"
#include "obs/trace.hpp"
#include "parallel/virtual_machine.hpp"
#include "sysgen/systems.hpp"

using anton::System;
using anton::Vec3i;
using anton::core::AntonConfig;
using anton::core::AntonEngine;
using anton::core::Phase;
namespace obs = anton::obs;
namespace sg = anton::sysgen;

namespace {

// --- compile-time zero-cost checks -----------------------------------
static_assert(std::is_empty_v<obs::NullSink>);
static_assert(std::is_trivially_destructible_v<obs::NullSink>);
static_assert(!obs::NullSink::kEnabled);
static_assert(obs::Tracer::kEnabled);

System small_system() {
  return sg::build_test_system(70, 14.0, 1234, true, 20);
}

AntonConfig obs_config(int nthreads) {
  AntonConfig c;
  c.sim.cutoff = 7.0;
  c.sim.mesh = 16;
  c.sim.dt = 2.5;
  c.sim.long_range_every = 2;
  c.node_grid = {2, 2, 2};
  c.subbox_div = {1, 1, 1};
  c.migration_interval = 4;
  c.import_margin = 3.0;
  c.nthreads = nthreads;
  return c;
}

// Reconstructs (parent -> children names) for one track from the begin
// order + depth; within a track this determines the span tree.
struct TreeNode {
  std::string name;
  std::vector<int> children;  // indices into nodes
};
std::vector<TreeNode> span_tree(const std::vector<obs::SpanRecord>& spans,
                                int tid) {
  std::vector<TreeNode> nodes;
  std::vector<int> stack;
  for (const auto& s : spans) {
    if (s.tid != tid) continue;
    while (static_cast<int>(stack.size()) > s.depth) stack.pop_back();
    const int idx = static_cast<int>(nodes.size());
    nodes.push_back({s.name, {}});
    if (!stack.empty()) nodes[stack.back()].children.push_back(idx);
    stack.push_back(idx);
  }
  return nodes;
}

std::vector<std::string> child_names(const std::vector<TreeNode>& nodes,
                                     const TreeNode& n) {
  std::vector<std::string> out;
  for (int c : n.children) out.push_back(nodes[c].name);
  return out;
}

// --- tracer / metrics unit behavior ----------------------------------

TEST(Tracer, NestsAndAggregates) {
  obs::Tracer tr;
  {
    obs::Tracer::Span a(&tr, "outer");
    obs::Tracer::Span b(&tr, "inner");
  }
  ASSERT_EQ(tr.spans().size(), 2u);
  EXPECT_EQ(tr.spans()[0].name, "outer");
  EXPECT_EQ(tr.spans()[0].depth, 0);
  EXPECT_EQ(tr.spans()[1].name, "inner");
  EXPECT_EQ(tr.spans()[1].depth, 1);
  EXPECT_THROW(tr.end(), std::logic_error);

  // Null tracer: the guard is a no-op, not a crash.
  obs::Tracer::Span none(nullptr, "ignored");
}

TEST(Tracer, PhaseMappingRoundTrips) {
  // Every Table 2 phase has a canonical span name that maps back to it.
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    const Phase ph = static_cast<Phase>(p);
    Phase back;
    ASSERT_TRUE(obs::phase_of_span(obs::span_name(ph), &back));
    EXPECT_EQ(back, ph);
  }
  Phase ignored;
  EXPECT_FALSE(obs::phase_of_span("mts_cycle", &ignored));
  EXPECT_FALSE(obs::phase_of_span("step", &ignored));
  EXPECT_FALSE(obs::phase_of_span("force_reduce", &ignored));
  EXPECT_FALSE(obs::phase_of_span("vm.compute", &ignored));
}

TEST(Metrics, ShardedCountersFlushAndAggregate) {
  obs::MetricsRegistry reg(4);
  const int id = reg.counter("test.ops");
  EXPECT_EQ(reg.counter("test.ops"), id);  // idempotent registration
  for (int lane = 0; lane < 4; ++lane) reg.count(id, lane, lane + 1);
  EXPECT_EQ(reg.counter_value(id), 0);  // not yet flushed
  reg.flush();
  EXPECT_EQ(reg.counter_value(id), 1 + 2 + 3 + 4);
  EXPECT_EQ(reg.counter_by_name("test.ops"), 10);
  EXPECT_THROW(reg.counter_by_name("nope"), std::out_of_range);

  const int g = reg.gauge("test.level");
  reg.set_gauge(g, 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), 2.5);

  const int h = reg.histogram("test.lat", {1.0, 10.0});
  reg.observe(h, 0.5);
  reg.observe(h, 5.0);
  reg.observe(h, 50.0);
  const auto& d = reg.histogram_data(h);
  EXPECT_EQ(d.counts[0], 1);
  EXPECT_EQ(d.counts[1], 1);
  EXPECT_EQ(d.counts[2], 1);
  EXPECT_EQ(d.total_count, 3);
  EXPECT_THROW(reg.histogram("bad", {3.0, 1.0}), std::invalid_argument);
}

// --- the central invariant: observation cannot move the trajectory ----

TEST(ObsInvariance, TracedAndMeteredRunIsBitwiseIdentical) {
  AntonEngine plain(small_system(), obs_config(1));
  plain.run_cycles(3);
  const std::uint64_t golden = plain.state_hash();

  for (int nthreads : {1, 4}) {
    AntonEngine eng(small_system(), obs_config(nthreads));
    obs::Tracer tracer;
    obs::MetricsRegistry metrics(4);
    eng.set_tracer(&tracer);
    eng.set_metrics(&metrics);
    eng.run_cycles(3);
    EXPECT_EQ(eng.state_hash(), golden)
        << "observability perturbed the trajectory at " << nthreads
        << " threads";
    EXPECT_FALSE(tracer.spans().empty());
  }
}

TEST(ObsInvariance, RegistryMustCoverEveryLane) {
  AntonEngine eng(small_system(), obs_config(4));
  obs::MetricsRegistry too_small(2);
  EXPECT_THROW(eng.set_metrics(&too_small), std::invalid_argument);
}

// --- span structure ---------------------------------------------------

TEST(ObsSpans, EveryCycleAndStepHasItsPhases) {
  AntonEngine eng(small_system(), obs_config(2));
  obs::Tracer tracer;
  eng.set_tracer(&tracer);
  const int ncycles = 3;
  eng.run_cycles(ncycles);
  const int k = eng.config().sim.long_range_every;

  const auto nodes = span_tree(tracer.spans(), 0);
  int cycles_seen = 0, steps_seen = 0;
  for (const auto& n : nodes) {
    if (n.name == "mts_cycle") {
      ++cycles_seen;
      auto kids = child_names(nodes, n);
      // Optional leading migrate; then the fixed cycle skeleton.
      std::vector<std::string> want;
      if (!kids.empty() && kids[0] == "migrate") want.push_back("migrate");
      want.push_back("integrate");
      for (int s = 0; s < k; ++s) want.push_back("step");
      want.insert(want.end(), {"gse.spread", "gse.fft", "gse.interpolate",
                               "correction", "force_reduce", "integrate"});
      EXPECT_EQ(kids, want);
    } else if (n.name == "step") {
      ++steps_seen;
      const std::vector<std::string> want = {
          "integrate", "range_limited", "bonded",
          "correction", "force_reduce", "integrate"};
      EXPECT_EQ(child_names(nodes, n), want);
    }
  }
  EXPECT_EQ(cycles_seen, ncycles);
  EXPECT_EQ(steps_seen, static_cast<int>(eng.steps_done()));
  // All spans were closed: the open-span stack is empty, so a stray end()
  // has nothing to pop.
  EXPECT_THROW(tracer.end(), std::logic_error);
}

TEST(ObsSpans, ReferenceEngineSharesTheTimingPrimitive) {
  anton::core::ReferenceEngine ref(small_system(), obs_config(1).sim);
  obs::Tracer tracer;
  ref.set_tracer(&tracer);
  ref.run_cycles(2);
  // The obs::PhaseTimer feeds phase_times() and the tracer from one
  // clock read pair, so every phase the table reports has spans too.
  const auto traced = tracer.phase_times();
  const auto& table = ref.phase_times();
  for (int p = 0; p < static_cast<int>(Phase::kCount); ++p) {
    if (table.seconds[p] > 0) {
      EXPECT_GT(traced.seconds[p], 0.0)
          << "no spans for phase " << anton::core::phase_name(
                 static_cast<Phase>(p));
    }
  }
}

TEST(ObsSpans, SequenceIsThreadCountInvariant) {
  auto sequence = [](int nthreads) {
    AntonEngine eng(small_system(), obs_config(nthreads));
    obs::Tracer tracer;
    eng.set_tracer(&tracer);
    eng.run_cycles(2);
    std::vector<std::tuple<std::string, int, int>> seq;
    for (const auto& s : tracer.spans())
      seq.emplace_back(s.name, s.tid, s.depth);
    return seq;
  };
  EXPECT_EQ(sequence(1), sequence(4));
}

// --- metrics vs. workload profile ------------------------------------

TEST(ObsMetrics, CounterTotalsEqualWorkloadAggregates) {
  AntonEngine eng(small_system(), obs_config(2));
  obs::MetricsRegistry metrics(2);
  eng.set_metrics(&metrics);
  eng.reset_workload();  // align both windows: from here on
  eng.run_cycles(3);

  const auto& profile = eng.workload();
  anton::core::NodeCounters sum;
  for (const auto& nc : profile.nodes) sum += nc;

  EXPECT_EQ(metrics.counter_by_name("engine.pairs_considered"),
            sum.pairs_considered);
  EXPECT_EQ(metrics.counter_by_name("engine.ppip_queue"), sum.ppip_queue);
  EXPECT_EQ(metrics.counter_by_name("engine.interactions"),
            sum.interactions);
  EXPECT_EQ(metrics.counter_by_name("engine.spread_ops"), sum.spread_ops);
  EXPECT_EQ(metrics.counter_by_name("engine.interp_ops"), sum.interp_ops);
  EXPECT_EQ(metrics.counter_by_name("engine.bond_terms"), sum.bond_terms);
  EXPECT_EQ(metrics.counter_by_name("engine.correction_pairs"),
            sum.correction_pairs);

  EXPECT_EQ(metrics.counter_by_name("engine.steps"),
            profile.steps_accumulated);
  EXPECT_EQ(metrics.counter_by_name("engine.mts_cycles"), 3);
  EXPECT_GT(metrics.counter_by_name("engine.lane_chunks"), 0);
}

// --- perf-model cross-validation --------------------------------------

TEST(ObsXval, TracerCountersReproduceEngineWorkloadExactly) {
  AntonConfig cfg = obs_config(1);
  AntonEngine eng(small_system(), cfg);
  obs::Tracer tracer;
  eng.set_tracer(&tracer);
  eng.reset_workload();
  eng.run_cycles(4);
  ASSERT_TRUE(tracer.has_workload());

  anton::machine::WorkloadParams wp;
  wp.cutoff = cfg.sim.cutoff;
  wp.gse = cfg.sim.resolved_gse();
  wp.long_range_every = cfg.sim.long_range_every;
  wp.subbox_div = cfg.subbox_div;
  const int natoms = eng.topology().natoms;
  const int mesh = cfg.sim.resolved_gse().mesh;

  const auto cv = obs::cross_validate(
      tracer, wp, anton::machine::MachineConfig::anton_512(),
      cfg.node_grid, natoms, mesh);

  // The tracer snapshot must feed the model the EXACT workload the
  // engine's own profile produces -- the two paths share every bit.
  const auto direct = anton::machine::workload_from_profile(
      eng.workload(), wp, cfg.node_grid, natoms, mesh);
  EXPECT_EQ(cv.workload.atoms, direct.atoms);
  EXPECT_EQ(cv.workload.import_atoms, direct.import_atoms);
  EXPECT_EQ(cv.workload.imported_subboxes, direct.imported_subboxes);
  EXPECT_EQ(cv.workload.pairs_considered, direct.pairs_considered);
  EXPECT_EQ(cv.workload.interactions, direct.interactions);
  EXPECT_EQ(cv.workload.bond_terms_max, direct.bond_terms_max);
  EXPECT_EQ(cv.workload.correction_pairs_max, direct.correction_pairs_max);
  EXPECT_EQ(cv.workload.constraint_bonds_max, direct.constraint_bonds_max);
  EXPECT_EQ(cv.workload.spread_ops, direct.spread_ops);
  EXPECT_EQ(cv.workload.interp_ops, direct.interp_ops);
  EXPECT_EQ(cv.workload.mesh, direct.mesh);
  EXPECT_EQ(cv.workload.natoms_total, direct.natoms_total);

  // Sanity of the report itself: every phase present, fractions sum to 1.
  ASSERT_EQ(cv.phases.size(),
            static_cast<std::size_t>(Phase::kCount));
  double pf = 0, mf = 0;
  for (const auto& d : cv.phases) {
    EXPECT_GE(d.predicted_s, 0.0);
    EXPECT_GE(d.measured_s, 0.0);
    pf += d.predicted_frac;
    mf += d.measured_frac;
  }
  EXPECT_NEAR(pf, 1.0, 1e-9);
  EXPECT_NEAR(mf, 1.0, 1e-9);
  EXPECT_FALSE(cv.summary().empty());

  obs::Tracer empty;
  EXPECT_THROW(obs::cross_validate(empty, wp,
                                   anton::machine::MachineConfig::anton_512(),
                                   cfg.node_grid, natoms, mesh),
               std::logic_error);
}

// --- chrome trace JSON round trip -------------------------------------

// Minimal parser for the exact event format chrome_json() emits: one
// complete event object per line, flat string/number fields.
struct TraceEvent {
  std::string name, ph;
  double ts = -1, dur = -1;
  int tid = -1;
  long long seq = -1;
};

std::string get_str(const std::string& obj, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const auto p = obj.find(pat);
  if (p == std::string::npos) return {};
  const auto e = obj.find('"', p + pat.size());
  return obj.substr(p + pat.size(), e - p - pat.size());
}

double get_num(const std::string& obj, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const auto p = obj.find(pat);
  if (p == std::string::npos) return -1;
  return std::stod(obj.substr(p + pat.size()));
}

std::vector<TraceEvent> parse_chrome_trace(const std::string& json) {
  std::vector<TraceEvent> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    const auto b = line.find('{');
    if (b == std::string::npos) continue;  // "[" / "]" framing lines
    TraceEvent ev;
    ev.name = get_str(line, "name");
    ev.ph = get_str(line, "ph");
    ev.ts = get_num(line, "ts");
    ev.dur = get_num(line, "dur");
    ev.tid = static_cast<int>(get_num(line, "tid"));
    ev.seq = static_cast<long long>(get_num(line, "seq"));
    events.push_back(ev);
  }
  return events;
}

TEST(ObsExport, ChromeJsonRoundTripsEverySpan) {
  AntonEngine eng(small_system(), obs_config(1));
  obs::Tracer tracer;
  eng.set_tracer(&tracer);
  eng.run_cycles(2);

  // Through a file, exactly as the benches write it.
  const std::string path =
      ::testing::TempDir() + "/anton_test_trace.json";
  {
    std::ofstream out(path);
    out << tracer.chrome_json();
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();

  const auto events = parse_chrome_trace(buf.str());
  const auto& spans = tracer.spans();
  ASSERT_EQ(events.size(), spans.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name, spans[i].name);
    EXPECT_EQ(events[i].ph, "X");
    EXPECT_EQ(events[i].tid, spans[i].tid);
    EXPECT_EQ(events[i].seq, spans[i].seq);
    EXPECT_GE(events[i].ts, 0.0);
    EXPECT_GE(events[i].dur, 0.0);
    if (i > 0) EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

// --- VM per-node spans -------------------------------------------------

TEST(ObsSpans, VirtualMachineEmitsPerNodeSpans) {
  const System sys = small_system();
  anton::parallel::VmConfig vc;
  vc.node_grid = {2, 2, 2};
  vc.cutoff = 7.0;
  anton::parallel::VirtualMachine vm(sys, vc);

  anton::fixed::PositionLattice lat(sys.box);
  std::vector<Vec3i> pos(sys.positions.size());
  for (std::size_t i = 0; i < pos.size(); ++i)
    pos[i] = lat.to_lattice(sys.positions[i]);

  const auto bare = vm.evaluate(pos);
  obs::Tracer tracer;
  vm.set_tracer(&tracer);
  const auto traced = vm.evaluate(pos);
  ASSERT_EQ(traced.size(), bare.size());
  for (std::size_t i = 0; i < traced.size(); ++i)
    ASSERT_EQ(traced[i], bare[i]) << "tracing changed VM forces";

  // One span per phase on track 0; one child span per node per phase.
  const auto totals = tracer.totals_by_name();
  ASSERT_TRUE(totals.count("vm.position_multicast"));
  ASSERT_TRUE(totals.count("vm.compute"));
  ASSERT_TRUE(totals.count("vm.force_return"));
  int multicast = 0, compute = 0, freturn = 0;
  for (const auto& s : tracer.spans()) {
    if (s.name == "vm.node.multicast") ++multicast;
    if (s.name == "vm.node.compute") ++compute;
    if (s.name == "vm.node.force_return") ++freturn;
    if (s.name.rfind("vm.node.", 0) == 0) {
      EXPECT_GE(s.tid, 1);
      EXPECT_LE(s.tid, vm.node_count());
    }
  }
  EXPECT_EQ(multicast, vm.node_count());
  EXPECT_EQ(compute, vm.node_count());
  EXPECT_EQ(freturn, vm.node_count());
}

}  // namespace
