// Virial / pressure instrumentation (Figure 4c: the wide accumulators
// that make pressure-controlled simulations deterministic and parallel-
// invariant).
#include <gtest/gtest.h>

#include <cmath>

#include "core/anton_engine.hpp"
#include "core/reference_engine.hpp"
#include "sysgen/systems.hpp"

using anton::System;
using anton::Vec3i;
using anton::core::AntonConfig;
using anton::core::AntonEngine;
using anton::core::PressureReport;
using anton::core::ReferenceEngine;
using anton::core::SimParams;

namespace {
SimParams params() {
  SimParams p;
  p.cutoff = 7.0;
  p.mesh = 16;
  return p;
}
AntonConfig config(const Vec3i& nodes = {2, 2, 2}) {
  AntonConfig c;
  c.sim = params();
  c.node_grid = nodes;
  return c;
}
System system() {
  return anton::sysgen::build_test_system(70, 14.0, 1234, true, 20);
}
}  // namespace

TEST(Pressure, EnginesAgree) {
  const System sys = system();
  AntonEngine a(sys, config());
  ReferenceEngine r(sys, params());
  const PressureReport pa = a.measure_pressure();
  const PressureReport pr = r.measure_pressure();
  EXPECT_NEAR(pa.virial_pair, pr.virial_pair,
              1e-3 * std::fabs(pr.virial_pair) + 0.5);
  EXPECT_NEAR(pa.virial_bonded, pr.virial_bonded,
              1e-3 * std::fabs(pr.virial_bonded) + 0.5);
  EXPECT_NEAR(pa.virial_recip, pr.virial_recip,
              2e-2 * std::fabs(pr.virial_recip) + 1.0);
  EXPECT_NEAR(pa.kinetic, pr.kinetic, 1e-6 * pr.kinetic + 1e-3);
  EXPECT_NEAR(pa.pressure_atm(), pr.pressure_atm(),
              0.02 * std::fabs(pr.pressure_atm()) + 50.0);
}

TEST(Pressure, DecompositionInvariant) {
  // The 128-bit wrapping virial accumulators make the pressure bitwise
  // independent of the decomposition -- the Figure 4c guarantee.
  const System sys = system();
  AntonEngine a(sys, config({1, 1, 1}));
  AntonEngine b(sys, config({2, 2, 2}));
  const PressureReport pa = a.measure_pressure();
  const PressureReport pb = b.measure_pressure();
  EXPECT_EQ(pa.virial_pair, pb.virial_pair);      // bitwise
  EXPECT_EQ(pa.virial_bonded, pb.virial_bonded);  // bitwise
}

TEST(Pressure, RepulsivePairGivesPositiveVirial) {
  // Two like charges: r . F > 0 (they push apart).
  System sys;
  sys.name_ = "two";
  sys.box = anton::PeriodicBox(20.0);
  sys.top.natoms = 2;
  sys.top.mass = {12.0, 12.0};
  sys.top.charge = {0.5, 0.5};
  sys.top.lj_types.push_back({3.0, 0.1});
  sys.top.type = {0, 0};
  sys.top.molecule = {0, 1};
  sys.positions = {{0, 0, 0}, {4.0, 0, 0}};
  sys.velocities = {{0, 0, 0}, {0, 0, 0}};
  ReferenceEngine eng(sys, params());
  const PressureReport p = eng.measure_pressure();
  EXPECT_GT(p.virial_pair, 0.0);
  EXPECT_EQ(p.virial_bonded, 0.0);
}

TEST(Pressure, AttractivePairGivesNegativeVirial) {
  System sys;
  sys.name_ = "two";
  sys.box = anton::PeriodicBox(20.0);
  sys.top.natoms = 2;
  sys.top.mass = {12.0, 12.0};
  sys.top.charge = {0.5, -0.5};
  sys.top.lj_types.push_back({3.0, 0.001});
  sys.top.type = {0, 0};
  sys.top.molecule = {0, 1};
  sys.positions = {{0, 0, 0}, {5.0, 0, 0}};
  sys.velocities = {{0, 0, 0}, {0, 0, 0}};
  ReferenceEngine eng(sys, params());
  const PressureReport p = eng.measure_pressure();
  EXPECT_LT(p.virial_pair, 0.0);
}

TEST(Pressure, IdealGasLimit) {
  // Non-interacting particles: P V = (2/3) KE = N kT.
  System sys;
  sys.name_ = "ideal";
  sys.box = anton::PeriodicBox(40.0);
  const int n = 64;
  sys.top.natoms = n;
  sys.top.mass.assign(n, 18.0);
  sys.top.charge.assign(n, 0.0);
  sys.top.lj_types.push_back({1.0, 0.0});  // no LJ
  sys.top.type.assign(n, 0);
  sys.top.molecule.resize(n);
  for (int i = 0; i < n; ++i) sys.top.molecule[i] = i;
  anton::Xoshiro256 rng(5);
  sys.positions.resize(n);
  for (auto& r : sys.positions)
    r = {rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-20, 20)};
  sys.velocities.assign(n, {0.01, 0.0, 0.0});
  ReferenceEngine eng(sys, params());
  const PressureReport p = eng.measure_pressure();
  EXPECT_NEAR(p.virial_total(), 0.0, 1e-6);
  EXPECT_NEAR(p.pressure() * p.volume, 2.0 / 3.0 * p.kinetic, 1e-9);
}

TEST(Pressure, WaterBoxIsPlausible) {
  // A freshly built (lattice-placed, unequilibrated) water box has a
  // large positive pressure -- the attractive network hasn't formed. It
  // must still be finite and physically signed, and relax downward after
  // some thermostatted dynamics.
  const System sys =
      anton::sysgen::build_water_system(600, 18.2, anton::sysgen::WaterModel::k3Site, 4);
  ReferenceEngine eng(sys, params());
  const PressureReport p0 = eng.measure_pressure();
  EXPECT_LT(std::fabs(p0.pressure_atm()), 3e5);
  EXPECT_GT(p0.kinetic, 0.0);
  SimParams therm = params();
  therm.thermostat = true;
  ReferenceEngine run(sys, therm);
  run.run_cycles(40);
  const PressureReport p1 = run.measure_pressure();
  EXPECT_LT(p1.pressure_atm(), p0.pressure_atm());
}
