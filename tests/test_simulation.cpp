// The host-side simulation driver and the compressed trajectory format.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "io/trajectory.hpp"
#include "sysgen/systems.hpp"
#include "test_tmp.hpp"
#include "util/rng.hpp"

using anton::System;
using anton::Vec3i;
using anton::core::Simulation;
using anton::core::SimulationConfig;
using anton::testing::TempDir;

namespace {
System small_system() {
  return anton::sysgen::build_test_system(60, 13.0, 555, true, 12);
}

SimulationConfig config() {
  SimulationConfig c;
  c.engine.sim.cutoff = 6.0;
  c.engine.sim.mesh = 16;
  c.engine.node_grid = {2, 2, 2};
  return c;
}
}  // namespace

TEST(Trajectory, RoundTripIsBitExact) {
  anton::Xoshiro256 rng(42);
  const int natoms = 500;
  std::vector<std::vector<Vec3i>> frames;
  std::vector<Vec3i> cur(natoms);
  for (auto& p : cur)
    p = {static_cast<std::int32_t>(rng()), static_cast<std::int32_t>(rng()),
         static_cast<std::int32_t>(rng())};
  TempDir tmp;
  const std::string path = tmp.file("traj_test.antj");
  {
    anton::io::TrajectoryWriter w(path, natoms, /*keyframe_every=*/4);
    for (int f = 0; f < 12; ++f) {
      frames.push_back(cur);
      w.append(f * 10, cur);
      // Small motions plus an occasional large jump (escape path).
      for (int i = 0; i < natoms; ++i) {
        cur[i].x += static_cast<std::int32_t>(rng.below(2001)) - 1000;
        cur[i].y += static_cast<std::int32_t>(rng.below(2001)) - 1000;
        cur[i].z += static_cast<std::int32_t>(rng.below(2001)) - 1000;
      }
      cur[f % natoms].x += 1 << 20;  // force an escape record
    }
  }
  anton::io::TrajectoryReader r(path);
  EXPECT_EQ(r.natoms(), natoms);
  std::int64_t step;
  std::vector<Vec3i> got;
  for (int f = 0; f < 12; ++f) {
    ASSERT_TRUE(r.next(step, got));
    EXPECT_EQ(step, f * 10);
    for (int i = 0; i < natoms; ++i)
      ASSERT_EQ(got[i], frames[f][i]) << "frame " << f << " atom " << i;
  }
  EXPECT_FALSE(r.next(step, got));
}

TEST(Trajectory, DeltaFramesCompress) {
  // MD-scale motion (a few thousand lattice steps per frame) packs into
  // 16-bit deltas: delta frames must be much smaller than keyframes.
  anton::Xoshiro256 rng(7);
  const int natoms = 2000;
  std::vector<Vec3i> cur(natoms);
  for (auto& p : cur)
    p = {static_cast<std::int32_t>(rng()), static_cast<std::int32_t>(rng()),
         static_cast<std::int32_t>(rng())};
  TempDir tmp;
  const std::string path = tmp.file("traj_size.antj");
  std::int64_t keyframe_bytes = 0, delta_bytes = 0;
  {
    anton::io::TrajectoryWriter w(path, natoms, /*keyframe_every=*/1000);
    w.append(0, cur);
    keyframe_bytes = w.bytes_written();
    for (int f = 1; f <= 8; ++f) {
      for (auto& p : cur) {
        p.x += static_cast<std::int32_t>(rng.below(4001)) - 2000;
        p.y += static_cast<std::int32_t>(rng.below(4001)) - 2000;
        p.z += static_cast<std::int32_t>(rng.below(4001)) - 2000;
      }
      w.append(f, cur);
    }
    delta_bytes = (w.bytes_written() - keyframe_bytes) / 8;
  }
  EXPECT_LT(delta_bytes, keyframe_bytes * 6 / 10);
}

TEST(Simulation, ResumeContinuesBitwise) {
  // The property that lets a millisecond run survive months of restarts:
  // checkpoint + resume == uninterrupted run, bit for bit.
  TempDir tmp;
  const System sys = small_system();
  SimulationConfig cfg = config();
  cfg.checkpoint_every = 10;  // inner steps
  cfg.checkpoint_path = tmp.file("sim_test.ckpt");

  // Uninterrupted run: 10 cycles (20 steps).
  Simulation full(sys, cfg);
  full.run_cycles(10);
  const auto full_hash = full.engine().state_hash();

  // Interrupted: 5 cycles, then resume from the checkpoint and finish.
  // The restarted leg runs with a different thread count: thread-count
  // invariance means the continuation is still bitwise identical.
  Simulation first(sys, cfg);
  first.run_cycles(5);
  SimulationConfig resumed_cfg = cfg;
  resumed_cfg.engine.nthreads = 4;
  Simulation second =
      Simulation::resume(sys, resumed_cfg, cfg.checkpoint_path);
  // The step counter continues from the checkpoint (frames/checkpoints
  // keep their absolute labels across the restart)...
  EXPECT_EQ(second.steps_done(), 10);
  second.run_cycles(5);
  EXPECT_EQ(second.steps_done(), 20);
  // ...and the state picks up exactly where the checkpoint left off.
  EXPECT_EQ(second.engine().state_hash(), full_hash);
}

TEST(Simulation, ResumeRestoresOutputCursors) {
  // A resumed run must not re-emit or relabel frames the original leg
  // already wrote: the output cursors restart from Checkpoint::step, so
  // the resumed leg's trajectory holds exactly the post-restart frames
  // with continuous absolute step labels.
  TempDir tmp;
  const System sys = small_system();
  SimulationConfig cfg = config();
  cfg.trajectory_every = 4;
  cfg.trajectory_path = tmp.file("sim_cursor_a.antj");
  cfg.checkpoint_every = 10;
  cfg.checkpoint_path = tmp.file("sim_cursor.ckpt");
  {
    Simulation first(sys, cfg);
    first.run_cycles(5);  // 10 steps -> frames 4, 8; checkpoint at 10
  }
  SimulationConfig resumed_cfg = cfg;
  resumed_cfg.trajectory_path = tmp.file("sim_cursor_b.antj");
  {
    Simulation second =
        Simulation::resume(sys, resumed_cfg, cfg.checkpoint_path);
    second.run_cycles(5);  // steps 11..20 -> frames 12, 16, 20
  }
  anton::io::TrajectoryReader r(resumed_cfg.trajectory_path);
  std::vector<std::int64_t> steps;
  std::int64_t step;
  std::vector<Vec3i> pos;
  while (r.next(step, pos)) steps.push_back(step);
  EXPECT_EQ(steps, (std::vector<std::int64_t>{12, 16, 20}));
}

TEST(Simulation, WritesTrajectoryFrames) {
  TempDir tmp;
  const System sys = small_system();
  SimulationConfig cfg = config();
  cfg.trajectory_every = 4;
  cfg.trajectory_path = tmp.file("sim_traj.antj");
  {
    Simulation sim(sys, cfg);
    sim.run_cycles(10);  // 20 inner steps -> frames at 4,8,12,16,20
  }
  anton::io::TrajectoryReader r(cfg.trajectory_path);
  int frames = 0;
  std::int64_t step;
  std::vector<Vec3i> pos;
  while (r.next(step, pos)) ++frames;
  EXPECT_EQ(frames, 5);
}

TEST(Simulation, CallbackCanStopEarly) {
  const System sys = small_system();
  Simulation sim(sys, config());
  int calls = 0;
  sim.run_cycles(50, [&](anton::core::AntonEngine&) {
    return ++calls < 3;
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sim.steps_done(), 6);  // 3 cycles x 2 steps
}

TEST(Simulation, ResumeRejectsWrongSystem) {
  TempDir tmp;
  const System sys = small_system();
  SimulationConfig cfg = config();
  cfg.checkpoint_path = tmp.file("sim_bad.ckpt");
  cfg.checkpoint_every = 2;
  {
    Simulation sim(sys, cfg);
    sim.run_cycles(2);
  }
  const System other = anton::sysgen::build_test_system(40, 12.0, 9, true, 6);
  EXPECT_THROW(Simulation::resume(other, cfg, cfg.checkpoint_path),
               std::runtime_error);
}
