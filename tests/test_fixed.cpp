// Fixed-point arithmetic: the properties Section 4 of the paper builds
// determinism, parallel invariance and reversibility on.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <cmath>
#include <random>
#include <vector>

#include "fixed/accum.hpp"
#include "fixed/fixed.hpp"
#include "fixed/lattice.hpp"
#include "util/rng.hpp"

namespace af = anton::fixed;
using anton::PeriodicBox;
using anton::Vec3d;
using anton::Vec3i;

TEST(Fixed, WrapAddSubRoundTrip) {
  const std::int64_t vals[] = {0, 1, -1, 123456789, -987654321,
                               INT64_MAX, INT64_MIN, INT64_MAX - 3};
  for (std::int64_t a : vals) {
    for (std::int64_t b : vals) {
      EXPECT_EQ(af::wrap_sub(af::wrap_add(a, b), b), a);
    }
  }
}

TEST(Fixed, WrapAddAssociativeAndCommutative) {
  anton::Xoshiro256 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::int64_t>(rng());
    const auto b = static_cast<std::int64_t>(rng());
    const auto c = static_cast<std::int64_t>(rng());
    EXPECT_EQ(af::wrap_add(a, b), af::wrap_add(b, a));
    EXPECT_EQ(af::wrap_add(af::wrap_add(a, b), c),
              af::wrap_add(a, af::wrap_add(b, c)));
  }
}

TEST(Fixed, PaperFootnoteWrapExample) {
  // Footnote 2: in 4-bit arithmetic, 3/8 + 7/8 + (-5/8) = 5/8 regardless
  // of order, even though 3/8 + 7/8 wraps. 4-bit values: 3, 7, -5 with
  // the representable range [-8, 8) standing for [-1, 1).
  auto wrap4 = [](std::int64_t v) { return af::wrap_to_bits(v, 4); };
  const std::int64_t x = 3, y = 7, z = -5;
  EXPECT_EQ(wrap4(wrap4(x + y) + z), 5);
  EXPECT_EQ(wrap4(wrap4(x + z) + y), 5);
  EXPECT_EQ(wrap4(wrap4(y + z) + x), 5);
  EXPECT_EQ(wrap4(x + y), -6);  // the intermediate really does wrap
}

TEST(Fixed, SumOrderInvarianceProperty) {
  // Any permutation of wrapped adds produces the same result -- the root
  // of Anton's parallel invariance.
  anton::Xoshiro256 rng(7);
  std::vector<std::int64_t> vals(500);
  for (auto& v : vals) v = static_cast<std::int64_t>(rng());
  auto sum_in_order = [](const std::vector<std::int64_t>& v) {
    std::int64_t s = 0;
    for (auto x : v) s = af::wrap_add(s, x);
    return s;
  };
  const std::int64_t expected = sum_in_order(vals);
  std::mt19937_64 shuffler(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(vals.begin(), vals.end(), shuffler);
    EXPECT_EQ(sum_in_order(vals), expected);
  }
}

TEST(Fixed, QuantizeRoundsToNearestEven) {
  EXPECT_EQ(af::quantize(0.5, 1.0), 0);   // tie -> even
  EXPECT_EQ(af::quantize(1.5, 1.0), 2);   // tie -> even
  EXPECT_EQ(af::quantize(2.5, 1.0), 2);   // tie -> even
  EXPECT_EQ(af::quantize(-0.5, 1.0), 0);
  EXPECT_EQ(af::quantize(-1.5, 1.0), -2);
  EXPECT_EQ(af::quantize(0.4999, 1.0), 0);
  EXPECT_EQ(af::quantize(0.5001, 1.0), 1);
}

TEST(Fixed, QuantizeIsOddSymmetric) {
  // RNE(-x) == -RNE(x): required for bitwise time reversibility.
  anton::Xoshiro256 rng(11);
  for (int trial = 0; trial < 1000; ++trial) {
    const double x = rng.uniform(-1e6, 1e6);
    const double s = rng.uniform(0.1, 1e6);
    EXPECT_EQ(af::quantize(-x, s), -af::quantize(x, s));
  }
}

TEST(Fixed, RshiftRneMatchesReference) {
  anton::Xoshiro256 rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    // Keep |v| below 2^52 so the double reference is exact.
    std::int64_t v = static_cast<std::int64_t>(rng() >> 12);
    if (rng() & 1) v = -v;
    const int k = 1 + static_cast<int>(rng.below(20));
    const double exact = static_cast<double>(v) / std::ldexp(1.0, k);
    const std::int64_t expected = std::llrint(exact);  // RNE
    EXPECT_EQ(af::rshift_rne(v, k), expected) << "v=" << v << " k=" << k;
  }
}

TEST(Fixed, RshiftRneOddSymmetric) {
  anton::Xoshiro256 rng(17);
  for (int trial = 0; trial < 2000; ++trial) {
    std::int64_t v = static_cast<std::int64_t>(rng() >> 2);
    if (rng() & 1) v = -v;
    const int k = 1 + static_cast<int>(rng.below(30));
    EXPECT_EQ(af::rshift_rne(-v, k), -af::rshift_rne(v, k));
  }
}

TEST(Fixed, WrapToBitsAndSaturate) {
  EXPECT_EQ(af::wrap_to_bits(7, 4), 7);
  EXPECT_EQ(af::wrap_to_bits(8, 4), -8);
  EXPECT_EQ(af::wrap_to_bits(-9, 4), 7);
  EXPECT_EQ(af::saturate_to_bits(100, 4), 7);
  EXPECT_EQ(af::saturate_to_bits(-100, 4), -8);
  EXPECT_EQ(af::saturate_to_bits(3, 4), 3);
}

TEST(Fixed, Accum128Wraps) {
  af::Accum128 acc;
  acc.add(static_cast<__int128>(1) << 100);
  acc.add(-(static_cast<__int128>(1) << 100));
  EXPECT_EQ(acc.value(), 0);
}

// ---------------------------------------------------------------------------
// Position lattice: wrap == periodic boundary.
// ---------------------------------------------------------------------------

TEST(Lattice, RoundTripAccuracy) {
  const PeriodicBox box(50.0);
  const af::PositionLattice lat(box);
  anton::Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Vec3d r{rng.uniform(-25, 25), rng.uniform(-25, 25),
                  rng.uniform(-25, 25)};
    const Vec3d back = lat.to_phys(lat.to_lattice(r));
    // LSB is 50/2^32 ~ 1.2e-8 A.
    EXPECT_NEAR(back.x, r.x, 1e-7);
    EXPECT_NEAR(back.y, r.y, 1e-7);
    EXPECT_NEAR(back.z, r.z, 1e-7);
  }
}

TEST(Lattice, WrapIsPeriodicBoundary) {
  const PeriodicBox box(50.0);
  const af::PositionLattice lat(box);
  // A coordinate just past +L/2 wraps to just past -L/2.
  const Vec3i a = lat.to_lattice({25.001, 0, 0});
  const Vec3d back = lat.to_phys(a);
  EXPECT_NEAR(back.x, -24.999, 1e-6);
}

TEST(Lattice, DeltaIsMinimumImage) {
  const PeriodicBox box(50.0);
  const af::PositionLattice lat(box);
  anton::Xoshiro256 rng(6);
  for (int i = 0; i < 500; ++i) {
    const Vec3d ra{rng.uniform(-25, 25), rng.uniform(-25, 25),
                   rng.uniform(-25, 25)};
    const Vec3d rb{rng.uniform(-25, 25), rng.uniform(-25, 25),
                   rng.uniform(-25, 25)};
    const Vec3i d = af::PositionLattice::delta(lat.to_lattice(ra),
                                               lat.to_lattice(rb));
    const Vec3d dp = lat.delta_to_phys(d);
    const Vec3d expect = box.min_image(ra, rb);
    EXPECT_NEAR(dp.x, expect.x, 1e-6);
    EXPECT_NEAR(dp.y, expect.y, 1e-6);
    EXPECT_NEAR(dp.z, expect.z, 1e-6);
  }
}

TEST(Lattice, AdvanceIsOddSymmetric) {
  const PeriodicBox box(64.0);
  const af::PositionLattice lat(box);
  anton::Xoshiro256 rng(8);
  for (int i = 0; i < 500; ++i) {
    const Vec3i p{static_cast<std::int32_t>(rng()),
                  static_cast<std::int32_t>(rng()),
                  static_cast<std::int32_t>(rng())};
    const Vec3d dr{rng.uniform(-1, 1), rng.uniform(-1, 1),
                   rng.uniform(-1, 1)};
    const Vec3i fwd = lat.advance(p, dr);
    const Vec3i back = lat.advance(fwd, -dr);
    EXPECT_EQ(back, p);  // exact reversal of a drift sub-step
  }
}

TEST(Lattice, Dist2MatchesDouble) {
  const PeriodicBox box(40.0);
  const af::PositionLattice lat(box);
  const Vec3d a{1.0, 2.0, 3.0}, b{-4.0, 19.5, -19.5};
  const double d2 = lat.dist2(lat.to_lattice(a), lat.to_lattice(b));
  const double expect = box.min_image(a, b).norm2();
  EXPECT_NEAR(d2, expect, 1e-5);
}
